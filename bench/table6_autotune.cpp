// Re-derives the paper's Table VI blocking winner with the autotuner
// (tc::tune) instead of hard-coding it: the candidate blocking space of
// Table VI is searched at the paper's square-GEMM scale on both devices,
// every candidate is ranked by the analytic pipe model and then evaluated
// with the measured-surrogate wave pipeline (PerfEstimator) — the same
// engine Figs. 6-7 use. The printed table shows model-vs-evaluated cycles
// per candidate; the run fails if the winning thread-block tile is not the
// paper's 256x256x32.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "tune/tune.hpp"

using namespace tc;

namespace {

/// The Table VI candidate space: thread-block/warp blocking only; layout,
/// interleave and prefetch are held at the paper's optimized settings.
tune::SearchSpace table_vi_space() {
  tune::SearchSpace s;
  s.bm = {128, 256};
  s.bn = {128, 256};
  s.bk = {32, 64};
  s.wm = {64, 128};
  s.wn = {64};
  s.layouts = {core::SmemLayout::kPaddedTile};
  s.sts_interleave = {5};
  s.prefetch = {true};
  return s;
}

int run_device(const std::string& name, bench::BenchJson* json) {
  const device::DeviceSpec spec = device::spec_by_name(name);
  tune::TuneOptions opt;
  opt.engine = tune::Engine::kWaveModel;
  opt.shape = {4096, 4096, 4096};
  opt.space = table_vi_space();
  opt.budget = 64;  // evaluate the whole (small) space
  opt.explore = 0;
  const tune::TuneResult r = tune::tune(spec, opt);

  std::cout << "\n" << spec.name << " @ 4096 x 4096 x 4096 (" << r.prune.legal
            << " legal candidates, engine=" << tune::engine_name(opt.engine) << ")\n";
  TablePrinter t({"config", "model rank", "model cycles", "evaluated cycles", "TFLOPS"});
  if (json != nullptr) {
    json->begin_series(name, {"bm", "bn", "bk", "wm", "wn", "model_rank", "model_cycles",
                              "sim_cycles", "tflops"});
  }
  for (const auto& c : r.ranked) {
    t.add_row({c.name, std::to_string(c.model_rank), fmt_fixed(c.model.cycles, 0),
               std::to_string(c.sim_cycles), fmt_fixed(c.tflops, 2)});
    if (json != nullptr) {
      json->row({static_cast<double>(c.cfg.bm), static_cast<double>(c.cfg.bn),
                 static_cast<double>(c.cfg.bk), static_cast<double>(c.cfg.wm),
                 static_cast<double>(c.cfg.wn), static_cast<double>(c.model_rank),
                 c.model.cycles, static_cast<double>(c.sim_cycles), c.tflops});
    }
  }
  t.print(std::cout);

  const tune::Candidate& best = r.best();
  const bool block_matches = best.cfg.bm == 256 && best.cfg.bn == 256 && best.cfg.bk == 32;
  std::cout << "winner: " << best.name << " -> "
            << (block_matches ? "matches the paper's Table VI blocking (256x256x32)"
                              : "DOES NOT match the paper's 256x256x32 blocking")
            << "\n";
  if (json != nullptr) {
    json->summary("winner_bm", best.cfg.bm);
    json->summary("winner_bn", best.cfg.bn);
    json->summary("winner_bk", best.cfg.bk);
    json->summary("winner_wm", best.cfg.wm);
    json->summary("winner_wn", best.cfg.wn);
    json->summary("winner_tflops", best.tflops);
    json->summary("block_matches_paper", block_matches ? 1.0 : 0.0);
  }
  return block_matches ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto json_path = bench::json_path_from_args(argc, argv);
  std::optional<bench::BenchJson> json;
  if (json_path) json.emplace("table6_autotune", "rtx2070+t4");

  std::cout << "Table VI re-derived by the autotuner (tc::tune)\n";
  int rc = 0;
  rc |= run_device("rtx2070", json ? &*json : nullptr);
  rc |= run_device("t4", json ? &*json : nullptr);

  if (json) {
    json->write_file(*json_path);
    std::cout << "json written to " << *json_path << "\n";
  }
  return rc;
}
