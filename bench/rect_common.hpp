// Shared driver for the rectangular-shape figures (paper Figs. 8 and 9):
// six shapes [2W,W,W], [W,2W,W], [W,W,2W], [4W,W,W], [W,4W,W], [W,W,4W].
#pragma once

#include <algorithm>

#include "bench_common.hpp"

namespace tc::bench {

struct ShapeRule {
  const char* name;
  std::size_t mf, nf, kf;  // multipliers of W
};

inline constexpr ShapeRule kRectRules[] = {
    {"[2W x W x W]", 2, 1, 1}, {"[W x 2W x W]", 1, 2, 1}, {"[W x W x 2W]", 1, 1, 2},
    {"[4W x W x W]", 4, 1, 1}, {"[W x 4W x W]", 1, 4, 1}, {"[W x W x 4W]", 1, 1, 4},
};

inline int run_rect(const device::DeviceSpec& spec, std::size_t step,
                    BenchJson* json = nullptr, const std::string& json_path = "") {
  core::PerfEstimator ours(spec, core::HgemmConfig::optimized());
  core::PerfEstimator baseline(spec, core::HgemmConfig::cublas_like());

  double total = 0.0;
  double overall_max = 0.0;
  std::size_t max_at = 0;
  const char* max_shape = "";
  int count = 0;
  for (const auto& rule : kRectRules) {
    std::vector<GemmShape> shapes;
    std::vector<std::size_t> labels;
    for (const auto w : size_sweep(step)) {
      // Cap the long dimension at the paper's evaluated range.
      if (std::max({rule.mf, rule.nf, rule.kf}) * w > 65536) continue;
      shapes.push_back({rule.mf * w, rule.nf * w, rule.kf * w});
      labels.push_back(w);
    }
    const auto st = run_versus_sweep(std::string(rule.name) + " on " + spec.name, ours,
                                     baseline, shapes, labels, json);
    total += st.avg_speedup * static_cast<double>(shapes.size());
    count += static_cast<int>(shapes.size());
    if (st.max_speedup > overall_max) {
      overall_max = st.max_speedup;
      max_at = st.max_at;
      max_shape = rule.name;
    }
  }
  std::cout << "== rectangular summary on " << spec.name << " ==\n"
            << "average speedup " << fmt_fixed(total / count, 2) << "x; max "
            << fmt_fixed(overall_max, 2) << "x at W=" << max_at << " shape " << max_shape
            << "\n";
  if (json != nullptr) {
    json->write_file(json_path);
    std::cout << "json written to " << json_path << "\n";
  }
  return 0;
}

}  // namespace tc::bench
