// GemmOp lowering payoff on the two shapes the single-kernel pipeline
// served badly: skinny-grid deep-K contractions and many small GEMMs.
//
//  * split_k_skinny: a {256, 256, 4096} contraction fills exactly one
//    256x256 output tile, so the classic launch puts a single CTA on one SM
//    and streams the whole k axis serially. Splitting k across CTAs trades
//    a cheap reduction pass (plus one extra launch) for a grid that finally
//    spans the machine; the sweep shows total cycles (reduction and launch
//    overhead included) dropping as split_k grows until the per-slice
//    mainloop is too short to hide its own prologue.
//  * batched_amortization: B small GEMMs as one z-batched launch versus a
//    loop of B single launches. One plan pays the launch overhead once and
//    gives the scheduler B CTAs to spread over SMs; the loop pays overhead
//    per plane and leaves all but one SM idle every time.
//
// Both series come straight from op::lower + op::time_gemm_op — the same
// path the tuner and the serving layer cost, so the golden fixtures pin the
// op layer's end-to-end cycle accounting per device spec.
//
// Usage: batched_splitk [--device rtx2070|t4] [--json path]
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "device/spec.hpp"
#include "op/op.hpp"

namespace tc::bench {
namespace {

/// The skinny-K operating point: one output tile under the optimized
/// 256x256x32 blocking, 128 slab iterations deep.
constexpr GemmShape kSkinny{256, 256, 4096};

/// The batched operating point: one tile per plane, shallow enough that
/// launch overhead is a visible fraction of a single plane's runtime.
constexpr GemmShape kPlane{256, 256, 512};

device::DeviceSpec device_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--device") return device::spec_by_name(argv[i + 1]);
  }
  return device::rtx2070();
}

op::OpTiming time_op(const device::DeviceSpec& spec, const op::GemmOp& gemm) {
  const op::OpPlan plan = op::lower(gemm, core::HgemmConfig::optimized());
  return op::time_gemm_op(spec, plan);
}

int run_split_k(const device::DeviceSpec& spec, BenchJson* json) {
  TablePrinter table({"split_k", "launches", "main_cycles", "reduce_cycles", "total", "speedup"});
  if (json != nullptr) {
    json->begin_series("split_k_skinny", {"split_k", "launches", "main_cycles", "reduce_cycles",
                                          "total_cycles", "speedup_vs_sk1"});
  }
  std::uint64_t sk1_total = 0;
  std::uint64_t best_total = 0;
  int best_split_k = 1;
  for (const int sk : {1, 2, 4, 8, 16, 32}) {
    op::GemmOp gemm;
    gemm.shape = kSkinny;
    gemm.split_k = sk;
    const op::OpTiming t = time_op(spec, gemm);
    // Every launch is charged its overhead: this is the user-visible cost
    // of the plan, and split-K must win *despite* the extra launch.
    const std::uint64_t total = t.total_with_overhead(spec.launch_overhead_cycles);
    const std::uint64_t reduce = t.launch_cycles.size() > 1 ? t.launch_cycles[1] : 0;
    if (sk == 1) sk1_total = total;
    if (best_total == 0 || total < best_total) {
      best_total = total;
      best_split_k = sk;
    }
    const double speedup = static_cast<double>(sk1_total) / static_cast<double>(total);
    table.add_row({std::to_string(sk), std::to_string(t.launch_cycles.size()),
                   std::to_string(t.launch_cycles[0]), std::to_string(reduce),
                   std::to_string(total), fmt_fixed(speedup, 2)});
    if (json != nullptr) {
      json->row({static_cast<double>(sk), static_cast<double>(t.launch_cycles.size()),
                 static_cast<double>(t.launch_cycles[0]), static_cast<double>(reduce),
                 static_cast<double>(total), speedup});
    }
  }
  const double best_speedup = static_cast<double>(sk1_total) / static_cast<double>(best_total);
  if (json != nullptr) {
    json->summary("best_split_k", best_split_k);
    json->summary("best_speedup", best_speedup);
    json->summary("sk1_total_cycles", static_cast<double>(sk1_total));
  }
  std::cout << "== split-K on " << kSkinny.m << "x" << kSkinny.n << "x" << kSkinny.k << " ("
            << spec.name << ") ==\n";
  table.print(std::cout);
  std::cout << "best: split_k=" << best_split_k << " at " << fmt_fixed(best_speedup, 2)
            << "x over the single-kernel launch\n\n";
  return best_speedup > 1.0 && best_split_k > 1 ? 0 : 1;
}

int run_batched(const device::DeviceSpec& spec, BenchJson* json) {
  TablePrinter table({"batch", "loop_cycles", "batched_cycles", "speedup"});
  if (json != nullptr) {
    json->begin_series("batched_amortization",
                       {"batch", "loop_cycles", "batched_cycles", "speedup"});
  }
  op::GemmOp single;
  single.shape = kPlane;
  const std::uint64_t single_total =
      time_op(spec, single).total_with_overhead(spec.launch_overhead_cycles);
  double speedup_at_max = 0.0;
  int max_batch = 1;
  for (const int b : {1, 2, 4, 8, 16, 32}) {
    op::GemmOp gemm;
    gemm.shape = kPlane;
    gemm.batch.count = b;
    const std::uint64_t batched =
        time_op(spec, gemm).total_with_overhead(spec.launch_overhead_cycles);
    const std::uint64_t loop = single_total * static_cast<std::uint64_t>(b);
    const double speedup = static_cast<double>(loop) / static_cast<double>(batched);
    speedup_at_max = speedup;
    max_batch = b;
    table.add_row({std::to_string(b), std::to_string(loop), std::to_string(batched),
                   fmt_fixed(speedup, 2)});
    if (json != nullptr) {
      json->row({static_cast<double>(b), static_cast<double>(loop),
                 static_cast<double>(batched), speedup});
    }
  }
  if (json != nullptr) {
    json->summary("speedup_at_batch_32", speedup_at_max);
    json->summary("launch_overhead_cycles", static_cast<double>(spec.launch_overhead_cycles));
  }
  std::cout << "== batched vs loop-of-singles on " << kPlane.m << "x" << kPlane.n << "x"
            << kPlane.k << " (" << spec.name << ") ==\n";
  table.print(std::cout);
  std::cout << "one z-batched launch at batch=" << max_batch << ": " << fmt_fixed(speedup_at_max, 2)
            << "x over " << max_batch << " single launches\n";
  return speedup_at_max > 1.0 ? 0 : 1;
}

}  // namespace
}  // namespace tc::bench

int main(int argc, char** argv) {
  const auto spec = tc::bench::device_from_args(argc, argv);
  const auto json_path = tc::bench::json_path_from_args(argc, argv);
  std::optional<tc::bench::BenchJson> json;
  if (json_path) json.emplace("batched_splitk", spec.name);
  std::cout << "GemmOp lowering payoff: split-K fills the machine on skinny-grid\n"
            << "deep-K shapes; one z-batched launch amortizes launch overhead that a\n"
            << "loop of single-plane launches pays " << spec.launch_overhead_cycles
            << " cycles at a time.\n\n";
  int rc = tc::bench::run_split_k(spec, json ? &*json : nullptr);
  rc |= tc::bench::run_batched(spec, json ? &*json : nullptr);
  if (json) json->write_file(*json_path);
  return rc;
}
