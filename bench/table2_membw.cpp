// Reproduces paper Table II: DRAM and L2 sustained bandwidth of RTX2070/T4.
//
// Methodology (Section V-A): thread blocks each stream 512 KB with
// LDG.128.CG (L1 bypassed). For DRAM every CTA reads a distinct region; for
// L2 every CTA re-reads the same region. The simulator runs one SM under its
// fair bandwidth share; device bandwidth = per-SM bytes/cycle x SMs x clock.
// Note: the device spec's sustained-bandwidth parameters are calibrated to
// the paper's measured values (see DESIGN.md), so this bench demonstrates
// that the measurement methodology recovers the calibration inputs.
#include <iostream>

#include "common/table.hpp"
#include "driver/device.hpp"
#include "kernels/micro.hpp"

using namespace tc;

namespace {

struct BwResult {
  double dram_gbps;
  double l2_gbps;
};

BwResult measure(const device::DeviceSpec& spec) {
  BwResult out{};

  // --- DRAM: distinct 512 KB regions per CTA ---
  {
    driver::Device dev(spec);
    // One pass over 2 MB per CTA: large enough that nothing is re-read from
    // L2 and the cold ramp is amortized.
    const std::uint32_t per_cta = 2 * 1024 * 1024;
    auto data = dev.alloc<std::uint8_t>(4 * per_cta);
    auto clocks = dev.alloc<std::uint32_t>(64);
    const auto prog = kernels::stream_load_kernel(per_cta, /*distinct_per_cta=*/true,
                                                  /*passes=*/1);
    sim::Launch launch;
    launch.program = &prog;
    launch.grid_x = 2;
    launch.params = {clocks.addr, data.addr};
    const sim::CtaCoord ctas[2] = {{0, 0}, {1, 0}};
    auto cfg = dev.timing_sm_share();
    cfg.model_l1 = false;  // .CG bypasses L1 anyway
    const auto stats = dev.run_timed(launch, std::span(ctas, 2), cfg);
    const double bytes_per_cycle = stats.dram_bytes / static_cast<double>(stats.cycles);
    out.dram_gbps = bytes_per_cycle * spec.num_sms * spec.sm_clock_ghz;
  }

  // --- L2: all CTAs share one 512 KB region; steady state is L2-resident ---
  {
    driver::Device dev(spec);
    const std::uint32_t per_cta = 512 * 1024;
    auto data = dev.alloc<std::uint8_t>(per_cta);
    auto clocks = dev.alloc<std::uint32_t>(64);
    const auto prog = kernels::stream_load_kernel(per_cta, /*distinct_per_cta=*/false,
                                                  /*passes=*/16);
    sim::Launch launch;
    launch.program = &prog;
    launch.grid_x = 2;
    launch.params = {clocks.addr, data.addr};
    const sim::CtaCoord ctas[2] = {{0, 0}, {1, 0}};
    const auto stats = dev.run_timed(launch, std::span(ctas, 2), dev.timing_sm_share());
    const double bytes_per_cycle =
        (stats.l2_bytes + stats.dram_bytes) / static_cast<double>(stats.cycles);
    out.l2_gbps = bytes_per_cycle * spec.num_sms * spec.sm_clock_ghz;
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "Table II: measured DRAM and L2 bandwidth (GB/s)\n";
  std::cout << "(paper: RTX2070 448 theo / 380 DRAM / 750 L2; T4 320 / 238 / 910)\n\n";

  const auto spec2070 = device::rtx2070();
  const auto spect4 = device::t4();
  const auto r2070 = measure(spec2070);
  const auto rt4 = measure(spect4);

  TablePrinter t({"", "RTX2070", "T4"});
  t.add_row({"DRAM theoretical", fmt_fixed(spec2070.dram_bw_theoretical_gbps, 0) + "GB/s",
             fmt_fixed(spect4.dram_bw_theoretical_gbps, 0) + "GB/s"});
  t.add_row({"DRAM measured", fmt_fixed(r2070.dram_gbps, 0) + "GB/s",
             fmt_fixed(rt4.dram_gbps, 0) + "GB/s"});
  t.add_row({"L2 measured", fmt_fixed(r2070.l2_gbps, 0) + "GB/s",
             fmt_fixed(rt4.l2_gbps, 0) + "GB/s"});
  t.add_row({"Tensor Core throughput", fmt_fixed(spec2070.tensor_peak_flops() / 1e12, 1) + " TFLOPS",
             fmt_fixed(spect4.tensor_peak_flops() / 1e12, 1) + " TFLOPS"});
  t.print(std::cout);
  return 0;
}
