// Reproduces paper Fig. 8: rectangular HGEMM on RTX2070.
// Paper: trends match the square case; max speedup 3.23x at W=14848 for
// [W x W x 4W]; average speedup 1.77x across rectangular shapes.
#include "rect_common.hpp"

int main(int argc, char** argv) {
  const auto step = tc::bench::step_from_args(argc, argv, 2048);
  const auto json_path = tc::bench::json_path_from_args(argc, argv);
  std::optional<tc::bench::BenchJson> json;
  if (json_path) json.emplace("fig8_rect_rtx2070", "rtx2070");
  std::cout << "Fig. 8: rectangular HGEMM on RTX2070 (step " << step << ")\n"
            << "(paper: max speedup 3.23x at W=14848 [W x W x 4W]; average 1.77x)\n\n";
  return tc::bench::run_rect(tc::device::rtx2070(), step, json ? &*json : nullptr,
                             json_path.value_or(""));
}
