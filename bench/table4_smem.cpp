// Reproduces paper Tables IV and V: CPI and throughput (bytes/cycle) of
// shared-memory load/store instructions, plus a bank-conflict sweep showing
// how conflicts scale the cost (the mechanism behind Fig. 5).
#include <iostream>

#include "common/table.hpp"
#include "driver/device.hpp"
#include "kernels/micro.hpp"

using namespace tc;

namespace {

double measure(sass::Opcode op, sass::MemWidth width) {
  driver::Device dev(device::rtx2070());
  auto clocks = dev.alloc<std::uint32_t>(64);
  const int unroll = 128;
  const int iters = 100;
  const auto prog = kernels::smem_cpi_kernel(op, width, unroll, iters);
  sim::Launch launch;
  launch.program = &prog;
  launch.params = {clocks.addr};
  const sim::CtaCoord cta{0, 0};
  dev.run_timed(launch, std::span(&cta, 1), dev.timing_whole_device());
  std::vector<std::uint32_t> host(64);
  dev.download(std::span(host.data(), host.size()), clocks);
  return kernels::cpi_from_clocks(host[0], host[32], unroll, iters);
}

double measure_conflict(int stride_words) {
  driver::Device dev(device::rtx2070());
  auto clocks = dev.alloc<std::uint32_t>(64);
  const int unroll = 128;
  const int iters = 50;
  const auto prog = kernels::lds_conflict_kernel(stride_words, unroll, iters);
  sim::Launch launch;
  launch.program = &prog;
  launch.params = {clocks.addr};
  const sim::CtaCoord cta{0, 0};
  dev.run_timed(launch, std::span(&cta, 1), dev.timing_whole_device());
  std::vector<std::uint32_t> host(64);
  dev.download(std::span(host.data(), host.size()), clocks);
  return kernels::cpi_from_clocks(host[0], host[32], unroll, iters);
}

}  // namespace

int main() {
  std::cout << "Table IV: CPI of shared memory load/store instructions\n";
  std::cout << "(paper: LDS 2.11/4.00/8.00; STS 4.06/6.00/10.00)\n\n";

  const sass::MemWidth widths[] = {sass::MemWidth::k32, sass::MemWidth::k64,
                                   sass::MemWidth::k128};
  double lds_cpi[3];
  double sts_cpi[3];
  TablePrinter t4({"Type", "32", "64", "128"});
  {
    std::vector<std::string> row{"LDS"};
    for (int i = 0; i < 3; ++i) {
      lds_cpi[i] = measure(sass::Opcode::kLds, widths[i]);
      row.push_back(fmt_fixed(lds_cpi[i], 2));
    }
    t4.add_row(row);
  }
  {
    std::vector<std::string> row{"STS"};
    for (int i = 0; i < 3; ++i) {
      sts_cpi[i] = measure(sass::Opcode::kSts, widths[i]);
      row.push_back(fmt_fixed(sts_cpi[i], 2));
    }
    t4.add_row(row);
  }
  t4.print(std::cout);

  std::cout << "\nTable V: throughput (bytes/cycle) of shared memory instructions\n";
  std::cout << "(paper: LDS 60.66/64.00/64.00; STS 31.53/42.67/51.20)\n\n";
  TablePrinter t5({"Type", "32", "64", "128"});
  {
    std::vector<std::string> row{"LDS"};
    for (int i = 0; i < 3; ++i) {
      row.push_back(fmt_fixed(32.0 * sass::width_bytes(widths[i]) / lds_cpi[i], 2));
    }
    t5.add_row(row);
  }
  {
    std::vector<std::string> row{"STS"};
    for (int i = 0; i < 3; ++i) {
      row.push_back(fmt_fixed(32.0 * sass::width_bytes(widths[i]) / sts_cpi[i], 2));
    }
    t5.add_row(row);
  }
  t5.print(std::cout);

  std::cout << "\nExtension: LDS.32 CPI under n-way bank conflicts\n\n";
  TablePrinter tc({"stride (words)", "conflict ways", "CPI"});
  for (int stride : {1, 2, 4, 8, 16, 32}) {
    const int ways = std::min(stride, 32);
    tc.add_row({std::to_string(stride), std::to_string(ways),
                fmt_fixed(measure_conflict(stride), 2)});
  }
  tc.print(std::cout);
  return 0;
}
