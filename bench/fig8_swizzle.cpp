// CTA launch-order sweep at the Fig. 8 cliff: supertile dispatch vs. the
// row-major baseline on square [W x W x 192] shapes.
//
// The operating point is chosen so launch order is the deciding factor:
//
//  * A shallow k (192 = 3 slab iterations) keeps one wave's k-sweep small
//    enough that consecutive waves replay the same A rows / B columns out
//    of L2 -- the cross-wave reuse regime where CTA order picks what stays
//    resident. One wave's window is ~2k(grid_x*bn + rows*bm) bytes, so
//    row-major keeps its whole footprint L2-resident only up to
//    grid_x ~ cap / (2 k bn) and falls off a cliff right at W = 12032
//    (the width where cuBLAS 10.1 loses its blocking in Fig. 8). Deep-k
//    shapes stream too many bytes between wave repeats, and every order
//    degrades alike.
//  * A 64x64x64 blocking (4 CTAs/SM) is DRAM-hungry enough -- traffic per
//    flop scales as (bm+bn)/(bm*bn) -- that the lost reuse actually costs
//    throughput instead of hiding under the tensor-pipe floor.
//
// A supertile launch order keeps each wave inside a narrow column panel, so
// its working set stays L2-resident at every grid width: the swept kernel
// holds the plateau through W = 12032 while the row-major dispatch
// reproduces the cliff. Per W the best panel width is picked by the
// estimator from a small palette, mirroring what tc::tune does with the
// launch-order dimension.
//
// Usage: fig8_swizzle [--device rtx2070|t4] [--step N] [--json path]
#include <algorithm>
#include <map>

#include "bench_common.hpp"
#include "common/table.hpp"

namespace tc::bench {
namespace {

const int kWidths[] = {2, 4, 6, 8, 12, 16};

/// The swept blocking: small tiles trade arithmetic intensity for DRAM
/// traffic, putting the kernel on the part of the roofline where L2
/// residency (and therefore launch order) moves end-to-end throughput.
core::HgemmConfig l2_stress_config() {
  core::HgemmConfig c;
  c.bm = 64;
  c.bn = 64;
  c.bk = 64;
  c.wm = 32;
  c.wn = 64;
  c.layout = core::SmemLayout::kTileMajor;
  return c;
}

/// Shallow k: 3 slab iterations, so one wave's L2 window is 2k(bm+bn) bytes
/// per grid column/row and cross-wave reuse survives exactly up to the
/// Fig. 8 cliff width on a 4 MiB L2 (see file comment).
constexpr std::size_t kDepth = 192;

device::DeviceSpec device_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--device") return device::spec_by_name(argv[i + 1]);
  }
  return device::rtx2070();
}

int run(const device::DeviceSpec& spec, std::size_t step, BenchJson* json) {
  core::HgemmConfig row_major = l2_stress_config();
  row_major.launch_order = model::LaunchOrder::kRowMajor;
  core::PerfEstimator baseline(spec, row_major);

  // One estimator per panel width; the steady-state cache inside each is
  // reused across the whole W sweep.
  std::map<int, core::PerfEstimator> swizzled;
  for (const int w : kWidths) {
    core::HgemmConfig cfg = l2_stress_config();
    cfg.launch_order = model::LaunchOrder::kSupertile;
    cfg.supertile_width = w;
    swizzled.emplace(w, core::PerfEstimator(spec, cfg));
  }

  // The paper's sweep, with the cliff width always present regardless of
  // step so the headline comparison never falls between samples.
  std::vector<std::size_t> sizes = size_sweep(step);
  if (std::find(sizes.begin(), sizes.end(), std::size_t{12032}) == sizes.end()) {
    sizes.push_back(12032);
    std::sort(sizes.begin(), sizes.end());
  }

  TablePrinter table({"W", "supertile_TFLOPS", "best_width", "rowmajor_TFLOPS", "speedup"});
  if (json != nullptr) {
    json->begin_series("supertile_vs_rowmajor",
                       {"W", "supertile_tflops", "best_width", "rowmajor_tflops", "speedup"});
  }
  double speedup_at_cliff = 0.0;
  double width_at_cliff = 0.0;
  double max_speedup = 0.0;
  double sum_speedup = 0.0;
  for (const std::size_t w : sizes) {
    const GemmShape shape{w, w, kDepth};
    double best_tflops = 0.0;
    int best_width = kWidths[0];
    for (auto& [width, est] : swizzled) {
      const double t = est.estimate(shape).tflops;
      if (t > best_tflops) {
        best_tflops = t;
        best_width = width;
      }
    }
    const double base_tflops = baseline.estimate(shape).tflops;
    const double speedup = best_tflops / base_tflops;
    sum_speedup += speedup;
    max_speedup = std::max(max_speedup, speedup);
    if (w == 12032) {
      speedup_at_cliff = speedup;
      width_at_cliff = best_width;
    }
    table.add_row({std::to_string(w), fmt_fixed(best_tflops, 2), std::to_string(best_width),
                   fmt_fixed(base_tflops, 2), fmt_fixed(speedup, 2)});
    if (json != nullptr) {
      json->row({static_cast<double>(w), best_tflops, static_cast<double>(best_width),
                 base_tflops, speedup});
    }
  }
  const double avg_speedup = sum_speedup / static_cast<double>(sizes.size());
  if (json != nullptr) {
    json->summary("speedup_at_12032", speedup_at_cliff);
    json->summary("best_width_at_12032", width_at_cliff);
    json->summary("max_speedup", max_speedup);
    json->summary("avg_speedup", avg_speedup);
  }

  std::cout << "== supertile vs rowmajor on " << spec.name << " ==\n";
  table.print(std::cout);
  std::cout << "at the cliff (W=12032): speedup " << fmt_fixed(speedup_at_cliff, 2)
            << "x with panel width " << static_cast<int>(width_at_cliff) << "; max "
            << fmt_fixed(max_speedup, 2) << "x; average " << fmt_fixed(avg_speedup, 2)
            << "x\n";
  return speedup_at_cliff > 1.0 ? 0 : 1;
}

}  // namespace
}  // namespace tc::bench

int main(int argc, char** argv) {
  const auto spec = tc::bench::device_from_args(argc, argv);
  const auto step = tc::bench::step_from_args(argc, argv, 2048);
  const auto json_path = tc::bench::json_path_from_args(argc, argv);
  std::optional<tc::bench::BenchJson> json;
  if (json_path) json.emplace("fig8_swizzle", spec.name);
  std::cout << "Fig. 8 launch-order sweep: supertile dispatch holds the tensor-bound\n"
            << "plateau through the W=12032 cliff; row-major reproduces the drop.\n\n";
  const int rc = tc::bench::run(spec, step, json ? &*json : nullptr);
  if (json) json->write_file(*json_path);
  return rc;
}
