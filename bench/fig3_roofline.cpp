// Reproduces paper Fig. 3: the global-memory roofline of RTX2070 and T4,
// with the Tensor Core and FP16-unit roofs and the computation intensities
// of the candidate thread-block blocking sizes (Section VI-A).
#include <iostream>

#include "common/table.hpp"
#include "device/spec.hpp"
#include "model/roofline.hpp"

using namespace tc;

namespace {

void print_device(const device::DeviceSpec& spec) {
  std::cout << "-- " << spec.name << " (DRAM " << fmt_fixed(spec.dram_bw_gbps, 0)
            << " GB/s measured, Tensor peak " << fmt_fixed(spec.tensor_peak_flops() / 1e12, 1)
            << " TF, FP16 peak " << fmt_fixed(spec.fp16_peak_flops() / 1e12, 1) << " TF) --\n";
  std::cout << "Tensor ridge at " << fmt_fixed(model::ridge_intensity(
                   spec.dram_bw_gbps * 1e9, spec.tensor_peak_flops()), 1)
            << " FLOP/B; FP16 ridge at "
            << fmt_fixed(model::ridge_intensity(spec.dram_bw_gbps * 1e9,
                                                spec.fp16_peak_flops()), 1)
            << " FLOP/B\n\n";

  const struct {
    int bm, bn;
  } blocks[] = {{64, 64}, {128, 64}, {128, 128}, {256, 128}, {256, 256}};

  TablePrinter t({"blocking (bm x bn)", "intensity FLOP/B", "attainable TF (Tensor)",
                  "attainable TF (FP16)", "Tensor bound"});
  std::vector<double> intensities;
  for (const auto& b : blocks) intensities.push_back(model::block_intensity(b.bm, b.bn));
  const auto series = model::roofline_series(spec, intensities);
  for (std::size_t i = 0; i < series.size(); ++i) {
    const auto& p = series[i];
    const bool mem_bound = p.tensor_flops < spec.tensor_peak_flops() * 0.999;
    t.add_row({std::to_string(blocks[i].bm) + "x" + std::to_string(blocks[i].bn),
               fmt_fixed(p.intensity, 1), fmt_fixed(p.tensor_flops / 1e12, 1),
               fmt_fixed(p.fp16_flops / 1e12, 1), mem_bound ? "DRAM-bound" : "compute-bound"});
  }
  t.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "Fig. 3: global memory roofline model\n";
  std::cout << "(paper: with FP16 units 128x128 suffices; with Tensor Cores even\n"
               " 256x256 leaves HGEMM close to the DRAM roof)\n\n";
  print_device(device::rtx2070());
  print_device(device::t4());

  // The roofline curves themselves (for plotting).
  std::cout << "roofline series (intensity, TF):\n";
  TablePrinter curve({"intensity", "RTX2070_tensor", "RTX2070_fp16", "T4_tensor", "T4_fp16"});
  const auto r2070 = device::rtx2070();
  const auto rt4 = device::t4();
  for (double i = 8.0; i <= 512.0; i *= 2.0) {
    curve.add_row(
        {fmt_fixed(i, 0),
         fmt_fixed(model::attainable_flops(i, r2070.dram_bw_gbps * 1e9, r2070.tensor_peak_flops()) / 1e12, 1),
         fmt_fixed(model::attainable_flops(i, r2070.dram_bw_gbps * 1e9, r2070.fp16_peak_flops()) / 1e12, 1),
         fmt_fixed(model::attainable_flops(i, rt4.dram_bw_gbps * 1e9, rt4.tensor_peak_flops()) / 1e12, 1),
         fmt_fixed(model::attainable_flops(i, rt4.dram_bw_gbps * 1e9, rt4.fp16_peak_flops()) / 1e12, 1)});
  }
  curve.print(std::cout);
  return 0;
}
