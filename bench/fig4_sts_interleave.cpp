// Reproduces paper Fig. 4: our HGEMM's throughput on RTX2070 when STS.128
// is interleaved with 2 HMMAs (STS2, cuBLAS's spacing) versus 5 HMMAs (STS5,
// the Eq. (6) minimum). Paper: average speedup 1.13x, maximum 1.26x.
#include "bench_common.hpp"

using namespace tc;

int main(int argc, char** argv) {
  const auto step = bench::step_from_args(argc, argv);
  std::cout << "Fig. 4: STS interleaving on RTX2070 (square W x W x W, step " << step << ")\n\n";

  auto sts5 = core::HgemmConfig::optimized();
  auto sts2 = core::HgemmConfig::optimized();
  sts2.sts_interleave = 2;
  core::PerfEstimator est5(device::rtx2070(), sts5);
  core::PerfEstimator est2(device::rtx2070(), sts2);

  TablePrinter t({"W", "STS5_TFLOPS", "STS2_TFLOPS", "speedup"});
  double sum = 0.0;
  double best = 0.0;
  const auto sizes = bench::size_sweep(step);
  for (const auto w : sizes) {
    const GemmShape s{w, w, w};
    const double t5 = est5.estimate(s).tflops;
    const double t2 = est2.estimate(s).tflops;
    const double speedup = t5 / t2;
    sum += speedup;
    best = std::max(best, speedup);
    t.add_row({std::to_string(w), fmt_fixed(t5, 2), fmt_fixed(t2, 2), fmt_fixed(speedup, 2)});
  }
  t.print(std::cout);
  std::cout << "average speedup of STS5 over STS2: "
            << fmt_fixed(sum / static_cast<double>(sizes.size()), 2) << "x (paper: 1.13x); max "
            << fmt_fixed(best, 2) << "x (paper: 1.26x)\n";
  return 0;
}
