// Reproduces paper Fig. 4: our HGEMM's throughput on RTX2070 when STS.128
// is interleaved with 2 HMMAs (STS2, cuBLAS's spacing) versus 5 HMMAs (STS5,
// the Eq. (6) minimum). Paper: average speedup 1.13x, maximum 1.26x.
// The trailing table shows the profiler's counter-derived pipe utilizations
// for both spacings (tighter interleaving leaves the MIO pipe hotter).
#include "bench_common.hpp"
#include "core/profile.hpp"

using namespace tc;

int main(int argc, char** argv) {
  const auto step = bench::step_from_args(argc, argv);
  const auto json_path = bench::json_path_from_args(argc, argv);
  std::optional<bench::BenchJson> json;
  if (json_path) json.emplace("fig4_sts_interleave", "rtx2070");
  std::cout << "Fig. 4: STS interleaving on RTX2070 (square W x W x W, step " << step << ")\n\n";

  auto sts5 = core::HgemmConfig::optimized();
  auto sts2 = core::HgemmConfig::optimized();
  sts2.sts_interleave = 2;
  core::PerfEstimator est5(device::rtx2070(), sts5);
  core::PerfEstimator est2(device::rtx2070(), sts2);

  TablePrinter t({"W", "STS5_TFLOPS", "STS2_TFLOPS", "speedup"});
  if (json) json->begin_series("throughput", {"W", "sts5_tflops", "sts2_tflops", "speedup"});
  double sum = 0.0;
  double best = 0.0;
  const auto sizes = bench::size_sweep(step);
  for (const auto w : sizes) {
    const GemmShape s{w, w, w};
    const double t5 = est5.estimate(s).tflops;
    const double t2 = est2.estimate(s).tflops;
    const double speedup = t5 / t2;
    sum += speedup;
    best = std::max(best, speedup);
    t.add_row({std::to_string(w), fmt_fixed(t5, 2), fmt_fixed(t2, 2), fmt_fixed(speedup, 2)});
    if (json) json->row({static_cast<double>(w), t5, t2, speedup});
  }
  t.print(std::cout);
  const double avg = sum / static_cast<double>(sizes.size());
  std::cout << "average speedup of STS5 over STS2: " << fmt_fixed(avg, 2)
            << "x (paper: 1.13x); max " << fmt_fixed(best, 2) << "x (paper: 1.26x)\n\n";
  if (json) {
    json->summary("avg_speedup", avg);
    json->summary("max_speedup", best);
  }

  const auto u5 = core::observe_pipe_cycles(device::rtx2070(), sts5);
  const auto u2 = core::observe_pipe_cycles(device::rtx2070(), sts2);
  TablePrinter ut({"config", "tensor_util", "mio_util"});
  ut.add_row({"STS5", fmt_fixed(u5.tensor_util * 100, 1) + "%",
              fmt_fixed(u5.mio_util * 100, 1) + "%"});
  ut.add_row({"STS2", fmt_fixed(u2.tensor_util * 100, 1) + "%",
              fmt_fixed(u2.mio_util * 100, 1) + "%"});
  std::cout << "observed steady-state pipe utilization (profiler counters):\n";
  ut.print(std::cout);
  if (json) {
    json->begin_series("pipe_utilization", {"sts_interleave", "tensor_util", "mio_util"});
    json->row({5, u5.tensor_util, u5.mio_util});
    json->row({2, u2.tensor_util, u2.mio_util});
    json->write_file(*json_path);
    std::cout << "json written to " << *json_path << "\n";
  }
  return 0;
}
