// Reproduces paper Table III: CPI of LDG on Turing by width and by serving
// level (L1 hit vs L2). Methodology: 128-instruction LDG loops fitting the
// L0 i-cache, timed with CS2R (Section V-A). Such loops are impossible at
// the CUDA C++ level (the compiler deletes effect-free loads) — the SASS
// generator in src/kernels emits them directly.
#include <iostream>

#include "common/table.hpp"
#include "driver/device.hpp"
#include "kernels/micro.hpp"

using namespace tc;

namespace {

double measure(sass::MemWidth width, sass::CacheOp cache, std::uint32_t window) {
  driver::Device dev(device::rtx2070());
  auto data = dev.alloc<std::uint8_t>(1 << 20);
  auto clocks = dev.alloc<std::uint32_t>(64);
  const int unroll = 128;
  const int iters = 100;
  const auto prog = kernels::ldg_cpi_kernel(width, cache, unroll, iters, window);
  sim::Launch launch;
  launch.program = &prog;
  launch.params = {clocks.addr, data.addr};
  const sim::CtaCoord cta{0, 0};
  dev.run_timed(launch, std::span(&cta, 1), dev.timing_whole_device());
  std::vector<std::uint32_t> host(64);
  dev.download(std::span(host.data(), host.size()), clocks);
  return kernels::cpi_from_clocks(host[0], host[32], unroll, iters);
}

}  // namespace

int main() {
  std::cout << "Table III: CPI of LDG on Turing GPUs\n";
  std::cout << "(paper: L1 4.04/4.04/8.00; L2 4.19/8.38/15.95)\n\n";

  TablePrinter t({"Type", "32", "64", "128"});
  {
    std::vector<std::string> row{"LDG (data in L1 cache)"};
    for (auto w : {sass::MemWidth::k32, sass::MemWidth::k64, sass::MemWidth::k128}) {
      row.push_back(fmt_fixed(measure(w, sass::CacheOp::kCa, 16 * 1024), 2));
    }
    t.add_row(row);
  }
  {
    std::vector<std::string> row{"LDG (data in L2 cache)"};
    for (auto w : {sass::MemWidth::k32, sass::MemWidth::k64, sass::MemWidth::k128}) {
      row.push_back(fmt_fixed(measure(w, sass::CacheOp::kCg, 256 * 1024), 2));
    }
    t.add_row(row);
  }
  t.print(std::cout);
  return 0;
}
