// GEMM-as-a-service traffic benchmark: the serving layer (tc::serve) under
// seeded LLM-inference-style load.
//
// Three stories, each a BENCH JSON series:
//   cold_vs_warm — the persistent tuning cache's payoff: the cold pass tunes
//     every bucket the traffic touches (tune_evals > 0), the warm pass on
//     the same server answers purely from the cache (tune_evals == 0,
//     hit rate 1.0) with identical latency metrics.
//   worker_sweep — fleet scaling at fixed load: p50/p99 latency, QPS and
//     utilization as the simulated device count grows.
//   batch_sweep — request batching: fusing compatible small GEMMs onto one
//     pass fills otherwise-idle SMs, shrinking the makespan.
//
// Everything is virtual-clock deterministic; run-to-run output is identical.
#include <iostream>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "serve/serve.hpp"
#include "serve/traffic.hpp"
#include "tune/space.hpp"

using namespace tc;

namespace {

// Narrowed search space: cold-bucket tuning stays cheap while the winners
// remain real tuned kernels (the full space is the CLI's job).
tune::SearchSpace bench_space() {
  tune::SearchSpace s;
  s.bm = {64, 128};
  s.bn = {64, 128};
  s.bk = {32, 64};
  s.wm = {32, 64};
  s.wn = {32, 64};
  s.layouts = {core::SmemLayout::kPaddedTile};
  s.sts_interleave = {5};
  s.prefetch = {true};
  return s;
}

serve::ServerOptions base_options() {
  serve::ServerOptions o;
  o.spec = device::rtx2070();
  o.space = bench_space();
  o.tune_budget = 2;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const auto json_path = bench::json_path_from_args(argc, argv);
    bench::BenchJson json("serve_traffic", "rtx2070");

    serve::TrafficOptions topt;
    topt.requests = 80;
    topt.tenants = 3;
    topt.seed = 42;
    const std::vector<serve::Request> traffic = serve::llm_traffic(topt);

    // --- cold vs warm: same server, two passes over the same stream ---
    std::cout << "== cold vs warm (persistent tuning cache) ==\n";
    json.begin_series("cold_vs_warm",
                      {"warm", "tune_evals", "cache_hit_rate", "p50_cycles", "p99_cycles",
                       "qps", "makespan_cycles"});
    serve::Server server(base_options());
    TablePrinter cw({"run", "tune evals", "hit rate", "p50 cycles", "p99 cycles", "QPS"});
    serve::Metrics cold;
    for (const int warm : {0, 1}) {
      const serve::Metrics m = server.run(traffic);
      if (warm == 0) cold = m;
      TC_CHECK(m.counters.hazard_diags == 0, "hazardous kernel served");
      if (warm == 1) {
        TC_CHECK(m.counters.tune_evals == 0, "warm server re-tuned a cached bucket");
        TC_CHECK(m.cache_hit_rate == 1.0, "warm server missed the cache");
      }
      cw.add_row({warm != 0 ? "warm" : "cold", std::to_string(m.counters.tune_evals),
                  fmt_fixed(m.cache_hit_rate, 3), fmt_fixed(m.p50_cycles, 0),
                  fmt_fixed(m.p99_cycles, 0), fmt_fixed(m.qps, 1)});
      json.row({static_cast<double>(warm), static_cast<double>(m.counters.tune_evals),
                m.cache_hit_rate, m.p50_cycles, m.p99_cycles, m.qps,
                static_cast<double>(m.makespan_cycles)});
    }
    cw.print(std::cout);
    json.summary("buckets_tuned", static_cast<double>(server.cache().size()));
    std::cout << "buckets tuned once, then served bit-for-bit: " << server.cache().size()
              << "\n\n";

    // --- worker sweep (warm cache reused across fleet sizes) ---
    std::cout << "== worker sweep (warm cache) ==\n";
    json.begin_series("worker_sweep",
                      {"workers", "p50_cycles", "p99_cycles", "qps", "utilization"});
    TablePrinter ws({"workers", "p50 cycles", "p99 cycles", "QPS", "utilization"});
    for (const int workers : {1, 2, 4, 8}) {
      serve::ServerOptions o = base_options();
      o.workers = workers;
      serve::Server s(o, server.cache());  // warm start from the tuned cache
      const serve::Metrics m = s.run(traffic);
      TC_CHECK(m.counters.tune_evals == 0, "warm worker sweep re-tuned");
      ws.add_row({std::to_string(workers), fmt_fixed(m.p50_cycles, 0),
                  fmt_fixed(m.p99_cycles, 0), fmt_fixed(m.qps, 1),
                  fmt_fixed(m.worker_utilization, 3)});
      json.row({static_cast<double>(workers), m.p50_cycles, m.p99_cycles, m.qps,
                m.worker_utilization});
    }
    ws.print(std::cout);
    std::cout << "\n";

    // --- batching: bursty small-GEMM load, batch_max 1 vs 4 ---
    std::cout << "== batching (bursty small GEMMs, one worker) ==\n";
    json.begin_series("batch_sweep", {"batch_max", "batches", "makespan_cycles", "qps"});
    serve::TrafficOptions burst;
    burst.requests = 32;
    burst.tenants = 1;
    burst.seed = 7;
    burst.mean_gap_cycles = 0.0;  // all requests arrive at once
    const std::vector<serve::Request> burst_traffic = serve::llm_traffic(burst);
    TablePrinter bs({"batch_max", "passes", "makespan cycles", "QPS"});
    for (const int batch_max : {1, 4}) {
      serve::ServerOptions o = base_options();
      o.workers = 1;
      o.batch_max = batch_max;
      o.queue_capacity = 64;
      serve::Server s(o, server.cache());
      const serve::Metrics m = s.run(burst_traffic);
      bs.add_row({std::to_string(batch_max), std::to_string(m.counters.batches),
                  std::to_string(m.makespan_cycles), fmt_fixed(m.qps, 1)});
      json.row({static_cast<double>(batch_max), static_cast<double>(m.counters.batches),
                static_cast<double>(m.makespan_cycles), m.qps});
    }
    bs.print(std::cout);

    if (json_path) {
      json.write_file(*json_path);
      std::cout << "json written to " << *json_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
