// Reproduces paper Table I: throughput (CPI) and latency of HMMA.1688.F16.
//
// Methodology (Section IV-C):
//  * CPI: a loop of HMMAs small enough for the L0 i-cache, timed with CS2R.
//  * Latency: one HMMA followed by an unprotected store after `stall`
//    cycles; the result is correct only once the stall covers the latency.
#include <cstdio>
#include <iostream>
#include <optional>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "driver/device.hpp"
#include "kernels/micro.hpp"
#include "sim/mma_exec.hpp"

using namespace tc;

namespace {

double measure_cpi(const device::DeviceSpec& spec) {
  driver::Device dev(spec);
  const int unroll = 128;
  const int iters = 100;
  const auto prog = kernels::hmma_cpi_kernel(unroll, iters);
  auto out = dev.alloc<std::uint32_t>(64);
  sim::Launch launch;
  launch.program = &prog;
  launch.params = {out.addr};
  const sim::CtaCoord cta{0, 0};
  dev.run_timed(launch, std::span(&cta, 1), dev.timing_whole_device());
  std::vector<std::uint32_t> clocks(64);
  dev.download(std::span(clocks.data(), clocks.size()), out);
  return kernels::cpi_from_clocks(clocks[0], clocks[32], unroll, iters);
}

/// Returns {lowest stall with a correct low half, ... high half}.
std::pair<int, int> measure_latency() {
  int lo_lat = -1;
  int hi_lat = -1;
  for (int stall = 1; stall <= 15; ++stall) {
    driver::Device dev(device::rtx2070());
    Rng rng(1234);
    sim::WarpRegs staging;
    sim::Tile8x8 tiles[5];
    for (auto& t : tiles) {
      for (auto& row : t.m) {
        for (auto& v : row) v = rng.next_half();
      }
    }
    scatter_row_major(staging, sass::Reg{0}, tiles[0]);
    scatter_row_major(staging, sass::Reg{1}, tiles[1]);
    scatter_col_major(staging, sass::Reg{2}, tiles[2]);
    scatter_row_major(staging, sass::Reg{3}, tiles[3]);
    scatter_row_major(staging, sass::Reg{4}, tiles[4]);
    std::vector<std::uint32_t> input(5 * 32);
    for (int r = 0; r < 5; ++r) {
      for (int lane = 0; lane < 32; ++lane) {
        input[static_cast<std::size_t>(r * 32 + lane)] =
            staging.read(sass::Reg{static_cast<std::uint8_t>(r)}, lane);
      }
    }
    auto din = dev.alloc<std::uint32_t>(input.size());
    auto dout = dev.alloc<std::uint32_t>(64);
    dev.upload(din, std::span<const std::uint32_t>(input));

    const auto prog = kernels::hmma_latency_kernel(stall);
    sim::Launch launch;
    launch.program = &prog;
    launch.params = {din.addr, dout.addr};
    const sim::CtaCoord cta{0, 0};
    dev.run_timed(launch, std::span(&cta, 1), dev.timing_whole_device());
    std::vector<std::uint32_t> out(64);
    dev.download(std::span(out.data(), out.size()), dout);

    bool lo_ok = true;
    bool hi_ok = true;
    for (int i = 0; i < 16; ++i) {
      for (int j = 0; j < 8; ++j) {
        float acc = tiles[3 + i / 8].m[i % 8][j].to_float();
        for (int kk = 0; kk < 8; ++kk) {
          acc += tiles[i / 8].m[i % 8][kk].to_float() * tiles[2].m[kk][j].to_float();
        }
        const auto pos = sim::row_major_pos(i % 8, j);
        const std::uint32_t word = out[static_cast<std::size_t>(2 * pos.lane + (i < 8 ? 0 : 1))];
        const half got = pos.part == 0 ? half2::unpack(word).lo : half2::unpack(word).hi;
        ((i < 8 ? lo_ok : hi_ok)) &= got.bits() == half(acc).bits();
      }
    }
    if (lo_ok && lo_lat < 0) lo_lat = stall;
    if (hi_ok && hi_lat < 0) hi_lat = stall;
  }
  return {lo_lat, hi_lat};
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "Table I: throughput and latency of HMMA.1688.F16\n";
  std::cout << "(paper: CPI theoretical 8.00, measured 8.06; latency 10 / 14 cycles)\n\n";

  const double cpi_2070 = measure_cpi(device::rtx2070());
  const double cpi_t4 = measure_cpi(device::t4());
  const auto [lo, hi] = measure_latency();

  TablePrinter t({"Metric", "Value"});
  t.add_row({"CPI theoretical", "8.00"});
  t.add_row({"CPI measured (RTX2070)", fmt_fixed(cpi_2070, 2)});
  t.add_row({"CPI measured (T4)", fmt_fixed(cpi_t4, 2)});
  t.add_row({"Latency for the first half of D16x8", std::to_string(lo)});
  t.add_row({"Latency for the second half of D16x8", std::to_string(hi)});
  t.print(std::cout);

  if (const auto json_path = bench::json_path_from_args(argc, argv)) {
    bench::BenchJson json("table1_hmma");
    json.begin_series("hmma_1688_f16",
                      {"cpi_theoretical", "cpi_rtx2070", "cpi_t4", "latency_lo", "latency_hi"});
    json.row({8.0, cpi_2070, cpi_t4, static_cast<double>(lo), static_cast<double>(hi)});
    json.write_file(*json_path);
    std::cout << "json written to " << *json_path << "\n";
  }
  return 0;
}
