// JIT throughput for the functional executor: interpreter vs compiled
// threaded code, on two workloads.
//
//  * alu_dispatch: a synthetic loop-heavy integer/float ALU kernel with no
//    MMA. Interpreter cost here is pure dispatch — per-lane guard checks, a
//    switch per instruction, a virtual sink call per register write — which
//    is exactly what the JIT's pre-bound operand rows and computed-goto
//    dispatch eliminate. This workload carries the PR's >= 10x acceptance
//    gate (tests/test_golden.cpp asserts it on the summary).
//  * hgemm_functional: the optimized HGEMM kernel run functionally. Most of
//    its time is in sim::exec_mma, which both engines share, so the speedup
//    is structurally smaller; it is reported to keep the claim honest on
//    real kernels.
//
// Series "static" is fully deterministic (instruction counts, block/pass
// statistics, bitwise-match flags) and is golden-pinned per device spec in
// tests/golden/jit_throughput_<device>.json. Series "timing" carries
// wall-clock rates and the measured speedups; it is written to --json
// output but NOT golden-compared (wall clock is not reproducible), except
// for the >= 10x inequality on alu_dispatch.
//
// Usage: jit_throughput [--device rtx2070|t4] [--json path] [--json-static path]
//
// --json-static writes a document containing ONLY the deterministic series,
// which is what the golden fixtures are regenerated from:
//
//   build/bench/jit_throughput --device rtx2070 \
//       --json-static tests/golden/jit_throughput_rtx2070.json
//   build/bench/jit_throughput --device t4 \
//       --json-static tests/golden/jit_throughput_t4.json
#include <chrono>
#include <cstdint>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/config.hpp"
#include "core/kernel_gen.hpp"
#include "device/spec.hpp"
#include "jit/jit.hpp"
#include "mem/global_mem.hpp"
#include "sass/builder.hpp"
#include "sim/engine.hpp"
#include "sim/functional.hpp"
#include "sim/probe.hpp"

namespace tc::bench {
namespace {

device::DeviceSpec device_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--device") return device::spec_by_name(argv[i + 1]);
  }
  return device::rtx2070();
}

std::optional<std::string> static_path_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json-static") return std::string(argv[i + 1]);
  }
  return std::nullopt;
}

/// The dispatch-bound workload: an unrolled integer/float ALU body inside a
/// counted loop, one store at the end so nothing is trivially dead. No MMA,
/// no shared memory — every cycle of interpreter time is dispatch overhead
/// the JIT can remove.
sass::Program alu_dispatch_kernel(int iterations) {
  using sass::CmpOp;
  using sass::MemWidth;
  using sass::Pred;
  using sass::Reg;
  sass::KernelBuilder b("alu_dispatch");
  b.threads(256);
  b.mov_param(Reg{2}, 0);                 // out pointer
  b.s2r(Reg{3}, sass::SpecialReg::kTidX);
  b.shl(Reg{4}, Reg{3}, 2);
  b.iadd3(Reg{5}, Reg{2}, Reg{4});        // per-thread slot
  b.mov_imm(Reg{6}, 0);                   // loop counter
  b.mov_imm(Reg{10}, 0x12345678);
  b.label("top");
  // Pure integer ALU + SEL: dispatch overhead (guard checks, per-inst
  // switch, per-write sink calls) is the whole interpreter cost here, which
  // is the quantity the JIT's pre-bound rows eliminate. Float/half lanes
  // share one compiled body between engines (sim/lane_ops.cpp) so they
  // dilute the ratio; the hgemm_functional workload covers them instead.
  b.iadd3(Reg{11}, Reg{10}, Reg{3});
  b.imad(Reg{12}, Reg{11}, Reg{10}, Reg{3});
  b.lxor(Reg{13}, Reg{12}, Reg{11});
  b.shl(Reg{14}, Reg{13}, 3);
  b.shr(Reg{15}, Reg{12}, 5);
  b.lor(Reg{16}, Reg{14}, Reg{15});
  b.land(Reg{17}, Reg{16}, Reg{13});
  b.iadd3(Reg{18}, Reg{17}, Reg{11});
  b.imad(Reg{19}, Reg{18}, Reg{16}, Reg{12});
  b.lxor(Reg{20}, Reg{19}, Reg{18});
  b.iadd3(Reg{21}, Reg{20}, Reg{14});
  b.shl(Reg{22}, Reg{21}, 1);
  b.lor(Reg{23}, Reg{22}, Reg{19});
  b.land(Reg{24}, Reg{23}, Reg{21});
  b.iadd3(Reg{25}, Reg{24}, Reg{22});
  b.sel(Reg{26}, Pred{0}, Reg{25}, Reg{24});
  b.lxor(Reg{27}, Reg{26}, Reg{25});
  b.iadd3(Reg{28}, Reg{27}, Reg{26});
  b.imad(Reg{29}, Reg{28}, Reg{27}, Reg{11});
  b.imad(Reg{10}, Reg{29}, Reg{23}, Reg{24});
  b.iadd_imm(Reg{6}, Reg{6}, 1);
  b.isetp_imm(Pred{0}, CmpOp::kLt, Reg{6}, iterations);
  b.bra("top").pred(Pred{0});
  b.stg(MemWidth::k32, Reg{5}, Reg{10});
  b.exit();
  return b.finalize();
}

struct EngineRun {
  sim::FunctionalStats stats;
  double seconds = 0.0;
};

/// Runs `launch` once with the given engine on a fresh copy of memory,
/// capturing the probe when provided. host_threads=1 keeps the timing
/// comparable and the probe capture deterministic.
EngineRun run_engine(const sass::Program& prog, mem::GlobalMemory& gmem,
                     sim::Launch launch, sim::ExecEngine engine,
                     sim::StateProbe* probe) {
  launch.program = &prog;
  launch.engine = engine;
  sim::FunctionalExecutor fx(gmem, /*host_threads=*/1);
  fx.set_probe(probe);
  const auto t0 = std::chrono::steady_clock::now();
  EngineRun r;
  r.stats = fx.run(launch);
  r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return r;
}

struct WorkloadResult {
  std::string name;
  jit::JitStats jstats;
  std::uint64_t instructions = 0;
  std::uint64_t hmma = 0;
  bool bitwise_match = false;
  double mips_interpret = 0.0;
  double mips_jit = 0.0;
  double speedup = 0.0;
};

WorkloadResult run_workload(const std::string& name, const sass::Program& prog,
                            std::uint32_t grid_x, std::uint32_t grid_y,
                            std::uint64_t out_bytes) {
  WorkloadResult w;
  w.name = name;
  w.jstats = jit::compile(prog).stats;

  sim::Launch launch;
  launch.grid_x = grid_x;
  launch.grid_y = grid_y;

  mem::GlobalMemory gmem_i, gmem_j;
  sim::Launch launch_i = launch, launch_j = launch;
  launch_i.params = {gmem_i.alloc(out_bytes)};
  launch_j.params = {gmem_j.alloc(out_bytes)};

  sim::StateProbe probe_i, probe_j;
  probe_i.set_num_regs(prog.num_regs);
  probe_j.set_num_regs(prog.num_regs);

  const EngineRun ri =
      run_engine(prog, gmem_i, launch_i, sim::ExecEngine::kInterpret, &probe_i);
  const EngineRun rj = run_engine(prog, gmem_j, launch_j, sim::ExecEngine::kJit, &probe_j);

  w.instructions = ri.stats.instructions;
  w.hmma = ri.stats.hmma_count;
  w.bitwise_match = ri.stats.instructions == rj.stats.instructions &&
                    ri.stats.hmma_count == rj.stats.hmma_count &&
                    sim::StateProbe::diff(probe_i, probe_j, 1, "interpret", "jit").empty();
  w.mips_interpret = static_cast<double>(ri.stats.instructions) / ri.seconds / 1e6;
  w.mips_jit = static_cast<double>(rj.stats.instructions) / rj.seconds / 1e6;
  w.speedup = ri.seconds / rj.seconds;
  return w;
}

int run(int argc, char** argv) {
  const auto spec = device_from_args(argc, argv);
  // Grid spans the device once: the static series (instruction totals) then
  // differs per spec, so each fixture actually pins something device-shaped.
  const auto grid = static_cast<std::uint32_t>(spec.num_sms);

  std::vector<WorkloadResult> results;
  {
    const sass::Program prog = alu_dispatch_kernel(/*iterations=*/4000);
    results.push_back(run_workload("alu_dispatch", prog, grid, 1, 256 * 4));
  }
  {
    const core::HgemmConfig cfg = core::HgemmConfig::optimized();
    const GemmShape shape{static_cast<std::size_t>(cfg.bm),
                          static_cast<std::size_t>(cfg.bn), 512};
    // The HGEMM kernel loads A/B and stores C through params 0..2; one
    // arena covers all three (contents are irrelevant to throughput, and
    // never-written memory reads as zeros).
    sass::Program prog = core::hgemm_kernel(cfg, shape);
    WorkloadResult w;
    w.name = "hgemm_functional";
    w.jstats = jit::compile(prog).stats;
    const std::uint64_t a_bytes = shape.m * shape.k * 2;
    const std::uint64_t b_bytes = shape.n * shape.k * 2;
    const std::uint64_t c_bytes = shape.m * shape.n * 2;
    mem::GlobalMemory gmem_i, gmem_j;
    sim::Launch launch_i, launch_j;
    launch_i.params = {gmem_i.alloc(a_bytes), gmem_i.alloc(b_bytes), gmem_i.alloc(c_bytes)};
    launch_j.params = {gmem_j.alloc(a_bytes), gmem_j.alloc(b_bytes), gmem_j.alloc(c_bytes)};
    sim::StateProbe probe_i, probe_j;
    probe_i.set_num_regs(prog.num_regs);
    probe_j.set_num_regs(prog.num_regs);
    const EngineRun ri =
        run_engine(prog, gmem_i, launch_i, sim::ExecEngine::kInterpret, &probe_i);
    const EngineRun rj = run_engine(prog, gmem_j, launch_j, sim::ExecEngine::kJit, &probe_j);
    w.instructions = ri.stats.instructions;
    w.hmma = ri.stats.hmma_count;
    w.bitwise_match = ri.stats.instructions == rj.stats.instructions &&
                      ri.stats.hmma_count == rj.stats.hmma_count &&
                      sim::StateProbe::diff(probe_i, probe_j, 1, "interpret", "jit").empty();
    w.mips_interpret = static_cast<double>(ri.stats.instructions) / ri.seconds / 1e6;
    w.mips_jit = static_cast<double>(rj.stats.instructions) / rj.seconds / 1e6;
    w.speedup = ri.seconds / rj.seconds;
    results.push_back(w);
  }

  const auto fill_static = [&](BenchJson& json) {
    json.begin_series("static",
                      {"sass_instructions", "ir_instructions", "emitted_ops", "blocks",
                       "forwarded", "folded", "removed", "executed", "hmma",
                       "bitwise_match"});
    for (const auto& w : results) {
      json.row({static_cast<double>(w.jstats.sass_instructions),
                static_cast<double>(w.jstats.ir_instructions),
                static_cast<double>(w.jstats.emitted_ops),
                static_cast<double>(w.jstats.blocks),
                static_cast<double>(w.jstats.passes.forwarded),
                static_cast<double>(w.jstats.passes.folded),
                static_cast<double>(w.jstats.passes.removed),
                static_cast<double>(w.instructions), static_cast<double>(w.hmma),
                w.bitwise_match ? 1.0 : 0.0});
    }
  };

  BenchJson json("jit_throughput", spec.name);
  fill_static(json);
  json.begin_series("timing", {"mips_interpret", "mips_jit", "speedup"});
  for (const auto& w : results) {
    json.row({w.mips_interpret, w.mips_jit, w.speedup});
    json.summary("speedup_" + w.name, w.speedup);
  }

  TablePrinter table({"workload", "instructions", "emitted_ops", "mips_interp", "mips_jit",
                      "speedup", "bitwise"});
  for (const auto& w : results) {
    table.add_row({w.name, std::to_string(w.instructions),
                   std::to_string(w.jstats.emitted_ops), fmt_fixed(w.mips_interpret, 1),
                   fmt_fixed(w.mips_jit, 1), fmt_fixed(w.speedup, 2),
                   w.bitwise_match ? "yes" : "NO"});
  }
  std::cout << "== jit_throughput (" << spec.name << ") ==\n";
  table.print(std::cout);
  std::cout << "\n";

  if (const auto path = json_path_from_args(argc, argv)) json.write_file(*path);
  if (const auto path = static_path_from_args(argc, argv)) {
    BenchJson fixture("jit_throughput", spec.name);
    fill_static(fixture);
    fixture.write_file(*path);
  }
  for (const auto& w : results) {
    if (!w.bitwise_match) {
      std::cerr << w.name << ": JIT diverged from the interpreter\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace tc::bench

int main(int argc, char** argv) { return tc::bench::run(argc, argv); }
