// Reproduces paper Fig. 7: square HGEMM on T4. Paper: ours plateaus near
// 49.7 TF (76% of the 65 TF peak — DRAM-bound) and falls off past W=12800;
// cuBLAS maxes at 45.43 TF (W=2560); max speedup 1.7x at 13312, avg 1.53x.
#include "bench_common.hpp"

using namespace tc;

int main(int argc, char** argv) {
  const auto step = bench::step_from_args(argc, argv);
  const auto json_path = bench::json_path_from_args(argc, argv);
  std::optional<bench::BenchJson> json;
  if (json_path) json.emplace("fig7_square_t4", "t4");
  std::cout << "Fig. 7: square HGEMM on T4 (step " << step << ")\n\n";

  core::PerfEstimator ours(device::t4(), core::HgemmConfig::optimized());
  core::PerfEstimator baseline(device::t4(), core::HgemmConfig::cublas_like());

  std::vector<GemmShape> shapes;
  std::vector<std::size_t> labels;
  for (const auto w : bench::size_sweep(step)) {
    shapes.push_back({w, w, w});
    labels.push_back(w);
  }
  bench::run_versus_sweep("ours vs cuBLAS-like, square, T4", ours, baseline, shapes, labels,
                          json ? &*json : nullptr);
  std::cout << "paper reference: ours ~49.7 TF plateau (DRAM-bound, 76% of peak), falling\n"
               "past 12800; cuBLAS max 45.43 TF; max speedup 1.7x; average 1.53x\n";
  if (json) {
    json->write_file(*json_path);
    std::cout << "json written to " << *json_path << "\n";
  }
  return 0;
}
