// Library-level performance benchmarks (google-benchmark): throughput of
// the building blocks the experiments lean on — FP16 conversion, MMA
// emulation, bank-conflict arbitration, functional and timed execution.
// These guard the simulator's own performance, not the paper's numbers.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/hgemm.hpp"
#include "core/kernel_gen.hpp"
#include "driver/device.hpp"
#include "mem/banked_smem.hpp"
#include "sim/exec_core.hpp"
#include "sim/mma_exec.hpp"

namespace {

using namespace tc;

void BM_HalfFromFloat(benchmark::State& state) {
  Rng rng(1);
  std::vector<float> src(4096);
  for (auto& f : src) f = rng.next_float(-100.0f, 100.0f);
  for (auto _ : state) {
    std::uint32_t acc = 0;
    for (const float f : src) acc += half(f).bits();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(src.size()));
}
BENCHMARK(BM_HalfFromFloat);

void BM_HalfToFloat(benchmark::State& state) {
  std::vector<half> src(4096);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = half::from_bits(static_cast<std::uint16_t>(i * 13));
  }
  for (auto _ : state) {
    float acc = 0;
    for (const half h : src) acc += h.is_nan() ? 0.0f : h.to_float();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(src.size()));
}
BENCHMARK(BM_HalfToFloat);

void BM_HmmaEmulation(benchmark::State& state) {
  sim::WarpRegs regs;
  Rng rng(2);
  for (int r = 0; r < 8; ++r) {
    for (int lane = 0; lane < 32; ++lane) {
      regs.write_now(sass::Reg{static_cast<std::uint8_t>(r)}, lane,
                     static_cast<std::uint32_t>(rng.next_u64()));
    }
  }
  sim::ImmediateSink sink(regs);
  for (auto _ : state) {
    sim::exec_mma(sass::Opcode::kHmma1688F16, regs, sass::Reg{8}, sass::Reg{2}, sass::Reg{6},
                  sass::Reg{4}, sink);
  }
  // 16x8x8 MACs * 2 flops per HMMA.
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_HmmaEmulation);

void BM_SmemConflictArbitration(benchmark::State& state) {
  std::array<std::uint32_t, 32> addrs{};
  std::array<bool, 32> active{};
  active.fill(true);
  for (int l = 0; l < 32; ++l) addrs[static_cast<std::size_t>(l)] = static_cast<std::uint32_t>(l) * 8;
  for (auto _ : state) {
    auto cost = mem::smem_access_cost(addrs, active, sass::MemWidth::k32, false);
    benchmark::DoNotOptimize(cost.beats);
  }
}
BENCHMARK(BM_SmemConflictArbitration);

void BM_FunctionalHgemm256(benchmark::State& state) {
  Rng rng(3);
  HalfMatrix a(256, 64), bt(256, 64);
  a.randomize(rng);
  bt.randomize(rng);
  for (auto _ : state) {
    driver::Device dev(device::rtx2070());
    auto c = core::run_hgemm(dev, a, bt);
    benchmark::DoNotOptimize(c.at(0, 0));
  }
  state.SetItemsProcessed(state.iterations() * 2 * 256 * 256 * 64);
}
BENCHMARK(BM_FunctionalHgemm256);

void BM_TimedSteadyIteration(benchmark::State& state) {
  const auto cfg = core::HgemmConfig::optimized();
  const GemmShape shape{256, 256, 192};
  const auto prog = core::hgemm_kernel(cfg, shape);
  for (auto _ : state) {
    mem::GlobalMemory gmem;
    sim::Launch launch;
    launch.program = &prog;
    launch.params = {gmem.alloc(shape.m * shape.k * 2), gmem.alloc(shape.n * shape.k * 2),
                     gmem.alloc(shape.m * shape.n * 2)};
    sim::TimedConfig tcfg;
    tcfg.spec = device::rtx2070();
    tcfg.skip_mma_math = true;
    tcfg.forced_l2_hit_rate = 0.5;
    sim::TimedSm sm(tcfg, gmem);
    const sim::CtaCoord cta{0, 0};
    auto stats = sm.run(launch, std::span(&cta, 1));
    benchmark::DoNotOptimize(stats.cycles);
  }
}
BENCHMARK(BM_TimedSteadyIteration);

}  // namespace

BENCHMARK_MAIN();
