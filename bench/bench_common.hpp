// Shared helpers for the bench binaries. Each binary regenerates one table
// or figure of the paper; this header provides the size sweeps, the
// ours-vs-baseline runner and the summary statistics the paper quotes
// (average and maximum speedup, position of the maximum).
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "common/table.hpp"
#include "core/hgemm.hpp"
#include "device/spec.hpp"

namespace tc::bench {

/// The paper's evaluation sweep: W = 1024 .. 16384 step 256 (Section VII).
/// `step` can be raised from the command line to make quick passes cheap.
inline std::vector<std::size_t> size_sweep(std::size_t step = 256) {
  std::vector<std::size_t> sizes;
  for (std::size_t w = 1024; w <= 16384; w += step) sizes.push_back(w);
  return sizes;
}

/// Parses an optional "--step N" argument (default 1024 for bench runs; the
/// full 256-step sweep of the paper is available with --step 256).
inline std::size_t step_from_args(int argc, char** argv, std::size_t def = 1024) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--step") return static_cast<std::size_t>(std::stoul(argv[i + 1]));
  }
  return def;
}

struct SweepStats {
  double avg_speedup = 0.0;
  double max_speedup = 0.0;
  std::size_t max_at = 0;
  double best_tflops = 0.0;
  std::size_t best_at = 0;
};

/// Runs one series of shapes through two estimators and prints
/// W, ours TFLOPS, baseline TFLOPS, speedup rows.
inline SweepStats run_versus_sweep(const std::string& title, core::PerfEstimator& ours,
                                   core::PerfEstimator& baseline,
                                   const std::vector<GemmShape>& shapes,
                                   const std::vector<std::size_t>& labels) {
  TablePrinter table({"W", "ours_TFLOPS", "cublas_like_TFLOPS", "speedup"});
  SweepStats st;
  double sum = 0.0;
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    const auto po = ours.estimate(shapes[i]);
    const auto pb = baseline.estimate(shapes[i]);
    const double speedup = po.tflops / pb.tflops;
    sum += speedup;
    if (speedup > st.max_speedup) {
      st.max_speedup = speedup;
      st.max_at = labels[i];
    }
    if (po.tflops > st.best_tflops) {
      st.best_tflops = po.tflops;
      st.best_at = labels[i];
    }
    table.add_row({std::to_string(labels[i]), fmt_fixed(po.tflops, 2), fmt_fixed(pb.tflops, 2),
                   fmt_fixed(speedup, 2)});
  }
  st.avg_speedup = sum / static_cast<double>(shapes.size());

  std::cout << "== " << title << " ==\n";
  table.print(std::cout);
  std::cout << "max speedup " << fmt_fixed(st.max_speedup, 2) << "x at W=" << st.max_at
            << "; average speedup " << fmt_fixed(st.avg_speedup, 2) << "x; our best "
            << fmt_fixed(st.best_tflops, 2) << " TFLOPS at W=" << st.best_at << "\n\n";
  return st;
}

}  // namespace tc::bench
