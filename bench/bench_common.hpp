// Shared helpers for the bench binaries. Each binary regenerates one table
// or figure of the paper; this header provides the size sweeps, the
// ours-vs-baseline runner and the summary statistics the paper quotes
// (average and maximum speedup, position of the maximum).
#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/matrix.hpp"
#include "common/table.hpp"
#include "core/hgemm.hpp"
#include "device/spec.hpp"

namespace tc::bench {

/// Machine-readable output shared by every bench binary (and mirrored by
/// tcgemm_cli --json): one document per run, one series per printed
/// table/figure line set.
///
///   { "schema": "tc-bench-v1", "bench": "<binary>", "device": "<name>",
///     "series": [ { "name": ..., "columns": [...],
///                   "rows": [[num, ...], ...], "summary": {k: num} } ] }
class BenchJson {
 public:
  BenchJson(std::string bench, std::string device = "")
      : bench_(std::move(bench)), device_(std::move(device)) {}

  /// Starts a new series; subsequent row()/summary() calls append to it.
  void begin_series(std::string name, std::vector<std::string> columns) {
    series_.push_back({std::move(name), std::move(columns), {}, {}});
  }
  void row(std::vector<double> values) {
    TC_CHECK(!series_.empty(), "BenchJson::row before begin_series");
    TC_CHECK(values.size() == series_.back().columns.size(), "BenchJson row arity mismatch");
    series_.back().rows.push_back(std::move(values));
  }
  void summary(std::string key, double value) {
    TC_CHECK(!series_.empty(), "BenchJson::summary before begin_series");
    series_.back().summary.emplace_back(std::move(key), value);
  }

  void write(std::ostream& os) const {
    JsonWriter j(os);
    j.begin_object();
    j.field("schema", "tc-bench-v1");
    j.field("bench", bench_);
    j.field("device", device_);
    j.key("series");
    j.begin_array();
    for (const auto& s : series_) {
      j.begin_object();
      j.field("name", s.name);
      j.key("columns");
      j.begin_array();
      for (const auto& c : s.columns) j.value(c);
      j.end_array();
      j.key("rows");
      j.begin_array();
      for (const auto& r : s.rows) {
        j.begin_array();
        for (const double v : r) j.value(v);
        j.end_array();
      }
      j.end_array();
      j.key("summary");
      j.begin_object();
      for (const auto& [k, v] : s.summary) j.field(k, v);
      j.end_object();
      j.end_object();
    }
    j.end_array();
    j.end_object();
    os << "\n";
  }

  void write_file(const std::string& path) const {
    std::ofstream os(path);
    TC_CHECK(os.good(), "cannot open " + path + " for writing");
    write(os);
  }

 private:
  struct Series {
    std::string name;
    std::vector<std::string> columns;
    std::vector<std::vector<double>> rows;
    std::vector<std::pair<std::string, double>> summary;
  };
  std::string bench_;
  std::string device_;
  std::vector<Series> series_;
};

/// Parses an optional "--json <path>" argument shared by all benches.
inline std::optional<std::string> json_path_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return std::string(argv[i + 1]);
  }
  return std::nullopt;
}

/// The paper's evaluation sweep: W = 1024 .. 16384 step 256 (Section VII).
/// `step` can be raised from the command line to make quick passes cheap.
inline std::vector<std::size_t> size_sweep(std::size_t step = 256) {
  std::vector<std::size_t> sizes;
  for (std::size_t w = 1024; w <= 16384; w += step) sizes.push_back(w);
  return sizes;
}

/// Parses an optional "--step N" argument (default 1024 for bench runs; the
/// full 256-step sweep of the paper is available with --step 256).
inline std::size_t step_from_args(int argc, char** argv, std::size_t def = 1024) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--step") return static_cast<std::size_t>(std::stoul(argv[i + 1]));
  }
  return def;
}

struct SweepStats {
  double avg_speedup = 0.0;
  double max_speedup = 0.0;
  std::size_t max_at = 0;
  double best_tflops = 0.0;
  std::size_t best_at = 0;
};

/// Runs one series of shapes through two estimators and prints
/// W, ours TFLOPS, baseline TFLOPS, speedup rows. When `json` is given the
/// same rows are appended to it as a series named `title`.
inline SweepStats run_versus_sweep(const std::string& title, core::PerfEstimator& ours,
                                   core::PerfEstimator& baseline,
                                   const std::vector<GemmShape>& shapes,
                                   const std::vector<std::size_t>& labels,
                                   BenchJson* json = nullptr) {
  TablePrinter table({"W", "ours_TFLOPS", "cublas_like_TFLOPS", "speedup"});
  if (json != nullptr) {
    json->begin_series(title, {"W", "ours_tflops", "cublas_like_tflops", "speedup"});
  }
  SweepStats st;
  double sum = 0.0;
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    const auto po = ours.estimate(shapes[i]);
    const auto pb = baseline.estimate(shapes[i]);
    const double speedup = po.tflops / pb.tflops;
    sum += speedup;
    if (speedup > st.max_speedup) {
      st.max_speedup = speedup;
      st.max_at = labels[i];
    }
    if (po.tflops > st.best_tflops) {
      st.best_tflops = po.tflops;
      st.best_at = labels[i];
    }
    table.add_row({std::to_string(labels[i]), fmt_fixed(po.tflops, 2), fmt_fixed(pb.tflops, 2),
                   fmt_fixed(speedup, 2)});
    if (json != nullptr) {
      json->row({static_cast<double>(labels[i]), po.tflops, pb.tflops, speedup});
    }
  }
  st.avg_speedup = sum / static_cast<double>(shapes.size());
  if (json != nullptr) {
    json->summary("avg_speedup", st.avg_speedup);
    json->summary("max_speedup", st.max_speedup);
    json->summary("max_at", static_cast<double>(st.max_at));
    json->summary("best_tflops", st.best_tflops);
  }

  std::cout << "== " << title << " ==\n";
  table.print(std::cout);
  std::cout << "max speedup " << fmt_fixed(st.max_speedup, 2) << "x at W=" << st.max_at
            << "; average speedup " << fmt_fixed(st.avg_speedup, 2) << "x; our best "
            << fmt_fixed(st.best_tflops, 2) << " TFLOPS at W=" << st.best_at << "\n\n";
  return st;
}

}  // namespace tc::bench
