// Reproduces paper Table VII: configuration and occupancy of our HGEMM
// versus cuBLAS 10.1's, computed by the occupancy calculator from the real
// generated kernels' resource usage.
#include <iostream>

#include "common/table.hpp"
#include "core/kernel_gen.hpp"
#include "device/occupancy.hpp"

using namespace tc;

int main() {
  std::cout << "Table VII: details of our HGEMM and cuBLAS 10.1's HGEMM\n";
  std::cout << "(paper: ours 256x256x32 / 128x64x8 / 36KB / 1 CTA / 8 warps;\n"
               " cuBLAS 128x128x64 / 64x64x8 / 32KB / 2 CTAs / 8 warps)\n\n";

  const auto spec = device::rtx2070();
  const auto ours_cfg = core::HgemmConfig::optimized();
  const auto cb_cfg = core::HgemmConfig::cublas_like();
  const auto ours = core::hgemm_kernel(ours_cfg, {256, 256, 64});
  const auto cublas = core::hgemm_kernel(cb_cfg, {128, 128, 128});
  const auto occ_ours = device::occupancy(spec, ours);
  const auto occ_cb = device::occupancy(spec, cublas);

  auto cfg_str = [](const core::HgemmConfig& c) {
    return "(" + std::to_string(c.bm) + "x" + std::to_string(c.bn) + "x" + std::to_string(c.bk) +
           ")";
  };
  auto warp_str = [](const core::HgemmConfig& c) {
    return "(" + std::to_string(c.wm) + "x" + std::to_string(c.wn) + "x" + std::to_string(c.wk) +
           ")";
  };

  TablePrinter t({"", "Ours", "cuBLAS 10.1"});
  t.add_row({"(bm x bn x bk)", cfg_str(ours_cfg), cfg_str(cb_cfg)});
  t.add_row({"(wm x wn x wk)", warp_str(ours_cfg), warp_str(cb_cfg)});
  t.add_row({"Shared memory/CTA", std::to_string(ours.smem_bytes / 1024) + "KB",
             std::to_string(cublas.smem_bytes / 1024) + "KB"});
  t.add_row({"Registers/thread (used)", std::to_string(ours.num_regs),
             std::to_string(cublas.num_regs)});
  t.add_row({"Active CTAs/SM", std::to_string(occ_ours.ctas_per_sm),
             std::to_string(occ_cb.ctas_per_sm)});
  t.add_row({"Active warps/SM", std::to_string(occ_ours.warps_per_sm),
             std::to_string(occ_cb.warps_per_sm)});
  t.add_row({"Occupancy limiter", device::limiter_name(occ_ours.limiter),
             device::limiter_name(occ_cb.limiter)});
  t.add_row({"STS interleave (HMMAs)", std::to_string(ours_cfg.sts_interleave),
             std::to_string(cb_cfg.sts_interleave)});
  t.print(std::cout);
  return 0;
}
