// Reproduces paper Fig. 6: throughput of our HGEMM and the cuBLAS-10.1-like
// baseline on square matrices on RTX2070, W = 1024..16384.
// Paper: ours climbs to the device peak (~60 TF); cuBLAS peaks at 52.75 TF
// (W=4096), declines past 4096, and collapses at W = 12032 when its L2
// blocking strategy fails. Max speedup 2.7x at W=16128, average 1.55x.
#include "bench_common.hpp"

using namespace tc;

int main(int argc, char** argv) {
  const auto step = bench::step_from_args(argc, argv);
  const auto json_path = bench::json_path_from_args(argc, argv);
  std::optional<bench::BenchJson> json;
  if (json_path) json.emplace("fig6_square_rtx2070", "rtx2070");
  std::cout << "Fig. 6: square HGEMM on RTX2070 (step " << step << ")\n\n";

  core::PerfEstimator ours(device::rtx2070(), core::HgemmConfig::optimized());
  core::PerfEstimator baseline(device::rtx2070(), core::HgemmConfig::cublas_like());

  std::vector<GemmShape> shapes;
  std::vector<std::size_t> labels;
  for (const auto w : bench::size_sweep(step)) {
    shapes.push_back({w, w, w});
    labels.push_back(w);
  }
  bench::run_versus_sweep("ours vs cuBLAS-like, square, RTX2070", ours, baseline, shapes,
                          labels, json ? &*json : nullptr);
  std::cout << "paper reference: ours up to 60.37 TF; cuBLAS max 52.75 TF at 4096 with a\n"
               "sharp drop at W=12032; max speedup 2.7x; average speedup 1.55x\n";
  if (json) {
    json->write_file(*json_path);
    std::cout << "json written to " << *json_path << "\n";
  }
  return 0;
}
