// Reproduces paper Fig. 9: rectangular HGEMM on T4.
// Paper: max speedup 2.17x at W=15360 for [W x W x 4W]; average 1.45x.
#include "rect_common.hpp"

int main(int argc, char** argv) {
  const auto step = tc::bench::step_from_args(argc, argv, 2048);
  const auto json_path = tc::bench::json_path_from_args(argc, argv);
  std::optional<tc::bench::BenchJson> json;
  if (json_path) json.emplace("fig9_rect_t4", "t4");
  std::cout << "Fig. 9: rectangular HGEMM on T4 (step " << step << ")\n"
            << "(paper: max speedup 2.17x at W=15360 [W x W x 4W]; average 1.45x)\n\n";
  return tc::bench::run_rect(tc::device::t4(), step, json ? &*json : nullptr,
                             json_path.value_or(""));
}
