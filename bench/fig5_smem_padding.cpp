// Reproduces paper Fig. 5: our HGEMM on RTX2070 with the conflict-free
// (padded) shared-memory layout versus the naive A[256][32]/B[256][32]
// layout. Paper: the naive layout roughly halves throughput.
// The trailing table shows the profiler's counter-derived utilizations and
// bank-conflict replays: the naive layout's replays saturate the MIO pipe.
#include "bench_common.hpp"
#include "core/profile.hpp"

using namespace tc;

int main(int argc, char** argv) {
  const auto step = bench::step_from_args(argc, argv);
  const auto json_path = bench::json_path_from_args(argc, argv);
  std::optional<bench::BenchJson> json;
  if (json_path) json.emplace("fig5_smem_padding", "rtx2070");
  std::cout << "Fig. 5: shared-memory layout on RTX2070 (square W x W x W, step " << step
            << ")\n\n";

  auto padded = core::HgemmConfig::optimized();
  auto naive = core::HgemmConfig::optimized();
  naive.layout = core::SmemLayout::kNaiveRowMajor;
  core::PerfEstimator est_pad(device::rtx2070(), padded);
  core::PerfEstimator est_naive(device::rtx2070(), naive);

  TablePrinter t({"W", "padded_TFLOPS", "naive_TFLOPS", "speedup"});
  if (json) json->begin_series("throughput", {"W", "padded_tflops", "naive_tflops", "speedup"});
  double sum = 0.0;
  const auto sizes = bench::size_sweep(step);
  for (const auto w : sizes) {
    const GemmShape s{w, w, w};
    const double tp = est_pad.estimate(s).tflops;
    const double tn = est_naive.estimate(s).tflops;
    sum += tp / tn;
    t.add_row({std::to_string(w), fmt_fixed(tp, 2), fmt_fixed(tn, 2), fmt_fixed(tp / tn, 2)});
    if (json) json->row({static_cast<double>(w), tp, tn, tp / tn});
  }
  t.print(std::cout);
  const double avg = sum / static_cast<double>(sizes.size());
  std::cout << "average speedup of the conflict-free layout: " << fmt_fixed(avg, 2)
            << "x (paper: ~2x)\n\n";
  if (json) json->summary("avg_speedup", avg);

  const auto up = core::observe_pipe_cycles(device::rtx2070(), padded);
  const auto un = core::observe_pipe_cycles(device::rtx2070(), naive);
  TablePrinter ut({"layout", "tensor_util", "mio_util"});
  ut.add_row({"padded", fmt_fixed(up.tensor_util * 100, 1) + "%",
              fmt_fixed(up.mio_util * 100, 1) + "%"});
  ut.add_row({"naive", fmt_fixed(un.tensor_util * 100, 1) + "%",
              fmt_fixed(un.mio_util * 100, 1) + "%"});
  std::cout << "observed steady-state pipe utilization (profiler counters):\n";
  ut.print(std::cout);
  if (json) {
    json->begin_series("pipe_utilization", {"padded", "tensor_util", "mio_util"});
    json->row({1, up.tensor_util, up.mio_util});
    json->row({0, un.tensor_util, un.mio_util});
    json->write_file(*json_path);
    std::cout << "json written to " << *json_path << "\n";
  }
  return 0;
}
