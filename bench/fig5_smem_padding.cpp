// Reproduces paper Fig. 5: our HGEMM on RTX2070 with the conflict-free
// (padded) shared-memory layout versus the naive A[256][32]/B[256][32]
// layout. Paper: the naive layout roughly halves throughput.
#include "bench_common.hpp"

using namespace tc;

int main(int argc, char** argv) {
  const auto step = bench::step_from_args(argc, argv);
  std::cout << "Fig. 5: shared-memory layout on RTX2070 (square W x W x W, step " << step
            << ")\n\n";

  auto padded = core::HgemmConfig::optimized();
  auto naive = core::HgemmConfig::optimized();
  naive.layout = core::SmemLayout::kNaiveRowMajor;
  core::PerfEstimator est_pad(device::rtx2070(), padded);
  core::PerfEstimator est_naive(device::rtx2070(), naive);

  TablePrinter t({"W", "padded_TFLOPS", "naive_TFLOPS", "speedup"});
  double sum = 0.0;
  const auto sizes = bench::size_sweep(step);
  for (const auto w : sizes) {
    const GemmShape s{w, w, w};
    const double tp = est_pad.estimate(s).tflops;
    const double tn = est_naive.estimate(s).tflops;
    sum += tp / tn;
    t.add_row({std::to_string(w), fmt_fixed(tp, 2), fmt_fixed(tn, 2), fmt_fixed(tp / tn, 2)});
  }
  t.print(std::cout);
  std::cout << "average speedup of the conflict-free layout: "
            << fmt_fixed(sum / static_cast<double>(sizes.size()), 2)
            << "x (paper: ~2x)\n";
  return 0;
}
