// Reproduces paper Table VI: Tensor-Core vs memory-IO pipe cycles per
// main-loop iteration under candidate blocking sizes (Eqs. (3)-(5)), using
// (a) the paper's measured CPIs, (b) this repository's own simulator
// measurements, and (c) the profiler's counters observed on the two
// runnable kernels — and cross-checks the Eq. (6) interleave rule.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/profile.hpp"
#include "driver/device.hpp"
#include "kernels/micro.hpp"
#include "model/blocking.hpp"

using namespace tc;

namespace {

double measured_cpi(sass::Opcode op, sass::MemWidth width, sass::CacheOp cache,
                    std::uint32_t window) {
  driver::Device dev(device::rtx2070());
  auto data = dev.alloc<std::uint8_t>(1 << 20);
  auto clocks = dev.alloc<std::uint32_t>(64);
  const int unroll = 128;
  const int iters = 100;
  sass::Program prog =
      op == sass::Opcode::kLdg
          ? kernels::ldg_cpi_kernel(width, cache, unroll, iters, window)
          : kernels::smem_cpi_kernel(op, width, unroll, iters);
  sim::Launch launch;
  launch.program = &prog;
  launch.params = {clocks.addr, data.addr};
  const sim::CtaCoord cta{0, 0};
  dev.run_timed(launch, std::span(&cta, 1), dev.timing_whole_device());
  std::vector<std::uint32_t> host(64);
  dev.download(std::span(host.data(), host.size()), clocks);
  return kernels::cpi_from_clocks(host[0], host[32], unroll, iters);
}

double measured_hmma_cpi() {
  driver::Device dev(device::rtx2070());
  auto clocks = dev.alloc<std::uint32_t>(64);
  const auto prog = kernels::hmma_cpi_kernel(128, 100);
  sim::Launch launch;
  launch.program = &prog;
  launch.params = {clocks.addr};
  const sim::CtaCoord cta{0, 0};
  dev.run_timed(launch, std::span(&cta, 1), dev.timing_whole_device());
  std::vector<std::uint32_t> host(64);
  dev.download(std::span(host.data(), host.size()), clocks);
  return kernels::cpi_from_clocks(host[0], host[32], 128, 100);
}

void print_table(const std::string& title, const model::CpiSet& cpi,
                 bench::BenchJson* json, const std::string& series) {
  std::cout << title << " (HMMA " << fmt_fixed(cpi.hmma, 2) << ", LDG.128 "
            << fmt_fixed(cpi.ldg128, 2) << ", STS.128 " << fmt_fixed(cpi.sts128, 2)
            << ", LDS.32 " << fmt_fixed(cpi.lds32, 2) << ")\n";
  TablePrinter t({"(bm x bn x bk)", "(wm x wn x wk)", "HMMA cycles", "Memory IO cycles",
                  "bound by"});
  if (json != nullptr) {
    json->begin_series(series, {"bm", "bn", "bk", "wm", "wn", "wk", "hmma", "memio"});
  }
  for (const auto& row : model::table_vi(cpi)) {
    t.add_row({"(" + std::to_string(row.config.bm) + "x" + std::to_string(row.config.bn) + "x" +
                   std::to_string(row.config.bk) + ")",
               "(" + std::to_string(row.config.wm) + "x" + std::to_string(row.config.wn) + "x" +
                   std::to_string(row.config.wk) + ")",
               fmt_fixed(row.hmma, 0), fmt_fixed(row.memio, 0),
               row.hmma >= row.memio ? "Tensor Core" : "memory IO"});
    if (json != nullptr) {
      json->row({static_cast<double>(row.config.bm), static_cast<double>(row.config.bn),
                 static_cast<double>(row.config.bk), static_cast<double>(row.config.wm),
                 static_cast<double>(row.config.wn), static_cast<double>(row.config.wk),
                 row.hmma, row.memio});
    }
  }
  t.print(std::cout);
  std::cout << "Eq. (6): minimum HMMAs between STS.128 = "
            << model::min_hmma_between_sts128(cpi) << " (paper: 5; cuBLAS 10.1 uses 2)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto json_path = bench::json_path_from_args(argc, argv);
  std::optional<bench::BenchJson> json;
  if (json_path) json.emplace("table6_blocking", "rtx2070");
  std::cout << "Table VI: cycles needed by the Tensor Core pipe vs the memory IO pipe\n\n";

  print_table("(a) with the paper's measured CPIs", model::CpiSet{},
              json ? &*json : nullptr, "paper_cpis");

  model::CpiSet ours;
  ours.hmma = measured_hmma_cpi();
  ours.ldg128 =
      measured_cpi(sass::Opcode::kLdg, sass::MemWidth::k128, sass::CacheOp::kCg, 256 * 1024);
  ours.sts128 = measured_cpi(sass::Opcode::kSts, sass::MemWidth::k128, sass::CacheOp::kCa, 0);
  ours.lds32 = measured_cpi(sass::Opcode::kLds, sass::MemWidth::k32, sass::CacheOp::kCa, 0);
  print_table("(b) with this simulator's measured CPIs", ours,
              json ? &*json : nullptr, "our_cpis");

  // (c) The same two quantities *observed* by the profiler's counters on the
  // two runnable kernels, per CTA main-loop iteration, plus the resulting
  // steady-state pipe utilizations. The analytic rows above derive the
  // bottleneck; these rows measure it.
  std::cout << "(c) observed by the profiler on the runnable kernels "
               "(per CTA iteration, LDGs from L2)\n";
  TablePrinter t({"kernel", "HMMA cycles", "Memory IO cycles", "tensor_util", "mio_util",
                  "bound by"});
  if (json) {
    json->begin_series("observed",
                       {"optimized", "hmma", "memio", "tensor_util", "mio_util"});
  }
  const struct {
    const char* label;
    core::HgemmConfig cfg;
    double opt;
  } rows[] = {{"ours (256x256x32)", core::HgemmConfig::optimized(), 1},
              {"cuBLAS-like (128x128x64)", core::HgemmConfig::cublas_like(), 0}};
  for (const auto& r : rows) {
    const auto o = core::observe_pipe_cycles(device::rtx2070(), r.cfg);
    t.add_row({r.label, fmt_fixed(o.tensor_cycles, 0), fmt_fixed(o.memio_cycles, 0),
               fmt_fixed(o.tensor_util * 100, 1) + "%", fmt_fixed(o.mio_util * 100, 1) + "%",
               o.tensor_cycles >= o.memio_cycles ? "Tensor Core" : "memory IO"});
    if (json) {
      json->row({r.opt, o.tensor_cycles, o.memio_cycles, o.tensor_util, o.mio_util});
    }
  }
  t.print(std::cout);
  if (json) {
    json->write_file(*json_path);
    std::cout << "json written to " << *json_path << "\n";
  }
  return 0;
}
