// Reproduces paper Table VI: Tensor-Core vs memory-IO pipe cycles per
// main-loop iteration under candidate blocking sizes (Eqs. (3)-(5)), using
// (a) the paper's measured CPIs and (b) this repository's own simulator
// measurements — and cross-checks the Eq. (6) interleave rule.
#include <iostream>

#include "common/table.hpp"
#include "driver/device.hpp"
#include "kernels/micro.hpp"
#include "model/blocking.hpp"

using namespace tc;

namespace {

double measured_cpi(sass::Opcode op, sass::MemWidth width, sass::CacheOp cache,
                    std::uint32_t window) {
  driver::Device dev(device::rtx2070());
  auto data = dev.alloc<std::uint8_t>(1 << 20);
  auto clocks = dev.alloc<std::uint32_t>(64);
  const int unroll = 128;
  const int iters = 100;
  sass::Program prog =
      op == sass::Opcode::kLdg
          ? kernels::ldg_cpi_kernel(width, cache, unroll, iters, window)
          : kernels::smem_cpi_kernel(op, width, unroll, iters);
  sim::Launch launch;
  launch.program = &prog;
  launch.params = {clocks.addr, data.addr};
  const sim::CtaCoord cta{0, 0};
  dev.run_timed(launch, std::span(&cta, 1), dev.timing_whole_device());
  std::vector<std::uint32_t> host(64);
  dev.download(std::span(host.data(), host.size()), clocks);
  return kernels::cpi_from_clocks(host[0], host[32], unroll, iters);
}

double measured_hmma_cpi() {
  driver::Device dev(device::rtx2070());
  auto clocks = dev.alloc<std::uint32_t>(64);
  const auto prog = kernels::hmma_cpi_kernel(128, 100);
  sim::Launch launch;
  launch.program = &prog;
  launch.params = {clocks.addr};
  const sim::CtaCoord cta{0, 0};
  dev.run_timed(launch, std::span(&cta, 1), dev.timing_whole_device());
  std::vector<std::uint32_t> host(64);
  dev.download(std::span(host.data(), host.size()), clocks);
  return kernels::cpi_from_clocks(host[0], host[32], 128, 100);
}

void print_table(const std::string& title, const model::CpiSet& cpi) {
  std::cout << title << " (HMMA " << fmt_fixed(cpi.hmma, 2) << ", LDG.128 "
            << fmt_fixed(cpi.ldg128, 2) << ", STS.128 " << fmt_fixed(cpi.sts128, 2)
            << ", LDS.32 " << fmt_fixed(cpi.lds32, 2) << ")\n";
  TablePrinter t({"(bm x bn x bk)", "(wm x wn x wk)", "HMMA cycles", "Memory IO cycles",
                  "bound by"});
  for (const auto& row : model::table_vi(cpi)) {
    t.add_row({"(" + std::to_string(row.config.bm) + "x" + std::to_string(row.config.bn) + "x" +
                   std::to_string(row.config.bk) + ")",
               "(" + std::to_string(row.config.wm) + "x" + std::to_string(row.config.wn) + "x" +
                   std::to_string(row.config.wk) + ")",
               fmt_fixed(row.hmma, 0), fmt_fixed(row.memio, 0),
               row.hmma >= row.memio ? "Tensor Core" : "memory IO"});
  }
  t.print(std::cout);
  std::cout << "Eq. (6): minimum HMMAs between STS.128 = "
            << model::min_hmma_between_sts128(cpi) << " (paper: 5; cuBLAS 10.1 uses 2)\n\n";
}

}  // namespace

int main() {
  std::cout << "Table VI: cycles needed by the Tensor Core pipe vs the memory IO pipe\n\n";

  print_table("(a) with the paper's measured CPIs", model::CpiSet{});

  model::CpiSet ours;
  ours.hmma = measured_hmma_cpi();
  ours.ldg128 =
      measured_cpi(sass::Opcode::kLdg, sass::MemWidth::k128, sass::CacheOp::kCg, 256 * 1024);
  ours.sts128 = measured_cpi(sass::Opcode::kSts, sass::MemWidth::k128, sass::CacheOp::kCa, 0);
  ours.lds32 = measured_cpi(sass::Opcode::kLds, sass::MemWidth::k32, sass::CacheOp::kCa, 0);
  print_table("(b) with this simulator's measured CPIs", ours);
  return 0;
}
