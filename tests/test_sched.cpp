// Unit tests for the automatic control-word scheduler (src/sched/schedule.*):
// virtual-input enforcement, latency-covering stall assignment, scoreboard
// allocation for loads, stall-shadow hoisting, and determinism. The
// whole-kernel acceptance gates (every kernel_gen config hazard-free and no
// slower than the hand-scheduled baseline) live in the Sched.KernelGen*
// tests below.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/fuzz.hpp"
#include "check/hazard.hpp"
#include "common/error.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/kernel_gen.hpp"
#include "driver/device.hpp"
#include "sass/builder.hpp"
#include "sass/latency.hpp"
#include "sched/fuzz.hpp"
#include "sched/schedule.hpp"

namespace tc::sched {
namespace {

using sass::KernelBuilder;
using sass::MemWidth;
using sass::Opcode;
using sass::Reg;

/// Index of the first instruction matching `pred`, or -1.
template <typename Fn>
int find_inst(const sass::Program& p, Fn&& pred) {
  for (std::size_t i = 0; i < p.code.size(); ++i) {
    if (pred(p.code[i])) return static_cast<int>(i);
  }
  return -1;
}

/// Sum of stall counts over [from, to): issue-cycle distance between the
/// instruction at `from` and the one at `to` in a straight-line region.
int stall_distance(const sass::Program& p, int from, int to) {
  int d = 0;
  for (int i = from; i < to; ++i) {
    d += p.code[static_cast<std::size_t>(i)].ctrl.stall;
  }
  return d;
}

TEST(Sched, RejectsManuallyScheduledInput) {
  KernelBuilder b("manual");
  b.mov_imm(Reg{8}, 1).stall(4);
  b.exit();
  EXPECT_THROW((void)schedule(b.finalize()), tc::Error);
}

TEST(Sched, UnscheduledBuilderRejectsManualControl) {
  KernelBuilder b("virtual", /*unscheduled=*/true);
  b.nop();
  EXPECT_THROW(b.stall(2), tc::Error);
  EXPECT_THROW(b.write_bar(0), tc::Error);
  EXPECT_THROW(b.read_bar(1), tc::Error);
  EXPECT_THROW(b.wait(0x3), tc::Error);
  EXPECT_THROW(b.wait_on(0), tc::Error);
  EXPECT_THROW(b.reuse(0x1), tc::Error);
  // Predicates and yield are semantic, not scheduling: still allowed.
  b.pred(sass::Pred{0});
  b.yield();
}

TEST(Sched, StraightLineChainGetsLatencyCoveringStalls) {
  KernelBuilder b("chain", /*unscheduled=*/true);
  b.mov_imm(Reg{8}, 7);
  b.iadd3(Reg{9}, Reg{8}, Reg{8});
  b.exit();
  ScheduleStats stats;
  const auto out = schedule(b.finalize(), ScheduleOptions{}, stats);
  const int prod = find_inst(out, [](const sass::Instruction& i) {
    return i.op == Opcode::kMov && i.has_imm;
  });
  const int cons = find_inst(out, [](const sass::Instruction& i) {
    return i.op == Opcode::kIadd3;
  });
  ASSERT_GE(prod, 0);
  ASSERT_GT(cons, prod);
  EXPECT_GE(stall_distance(out, prod, cons), sass::kAluLatency);
  EXPECT_EQ(stats.barriers_used, 0);
}

TEST(Sched, LoadConsumerGetsScoreboardBarrierAndWait) {
  KernelBuilder b("load", /*unscheduled=*/true);
  b.mov_param(Reg{2}, 0);
  b.ldg(MemWidth::k32, Reg{8}, Reg{2});
  b.iadd3(Reg{9}, Reg{8}, Reg{8});
  b.mov_param(Reg{3}, 1);
  b.stg(MemWidth::k32, Reg{3}, Reg{9});
  b.exit();
  ScheduleStats stats;
  const auto out = schedule(b.finalize(), ScheduleOptions{}, stats);
  const int ld = find_inst(out, [](const sass::Instruction& i) {
    return i.op == Opcode::kLdg;
  });
  const int cons = find_inst(out, [](const sass::Instruction& i) {
    return i.op == Opcode::kIadd3;
  });
  ASSERT_GE(ld, 0);
  ASSERT_GT(cons, ld);
  const auto bar = out.code[static_cast<std::size_t>(ld)].ctrl.write_barrier;
  ASSERT_LT(bar, sass::kNumBarriers);
  // Some instruction after the load and no later than the consumer must wait
  // on that barrier (the detector handles waits before reads).
  bool waited = false;
  for (int i = ld + 1; i <= cons; ++i) {
    waited |= (out.code[static_cast<std::size_t>(i)].ctrl.wait_mask >> bar) & 1u;
  }
  EXPECT_TRUE(waited);
  EXPECT_GE(stats.barriers_used, 1);
  EXPECT_GE(stats.waits_placed, 1);
}

TEST(Sched, ReorderHoistsIndependentWorkIntoStallShadows) {
  auto make = [] {
    KernelBuilder b("hoist", /*unscheduled=*/true);
    b.mov_imm(Reg{8}, 1);
    b.iadd3(Reg{9}, Reg{8}, Reg{8});  // 6-cycle shadow behind the MOV
    b.mov_imm(Reg{10}, 2);            // independent fillers
    b.mov_imm(Reg{11}, 3);
    b.mov_imm(Reg{12}, 4);
    b.mov_imm(Reg{13}, 5);
    b.exit();
    return b.finalize();
  };
  ScheduleStats base_stats;
  ScheduleStats reorder_stats;
  ScheduleOptions base_opts;
  base_opts.reorder = false;
  (void)schedule(make(), base_opts, base_stats);
  (void)schedule(make(), ScheduleOptions{}, reorder_stats);
  EXPECT_GT(reorder_stats.reordered, 0);
  EXPECT_LT(reorder_stats.static_issue_cycles, base_stats.static_issue_cycles);
}

TEST(Sched, SchedulingIsDeterministic) {
  const auto virt = generate_virtual_case(2026, SchedFuzzOptions{}).prog;
  const auto a = schedule(virt);
  const auto b = schedule(virt);
  EXPECT_EQ(a.disassemble(), b.disassemble());
}

TEST(Sched, ScheduledVirtualProgramsRunEquivalently) {
  // A handful of fixed seeds through the full pipeline: virtual generation,
  // both scheduling modes, hazard scan, functional-vs-timed bitwise
  // comparison. The broad sweep lives in the fuzz_smoke-labeled target.
  const auto rep = run_sched_fuzz(7, 8);
  EXPECT_EQ(rep.programs, 8);
  std::string why;
  for (const auto& f : rep.failures) {
    why += "seed " + std::to_string(f.seed) + " [" + f.phase +
           (f.reordered ? ", reordered" : "") + "]: " + f.detail + "\n" +
           f.program + "\n";
  }
  EXPECT_TRUE(rep.ok()) << why;
}

// --- whole-kernel acceptance gates -------------------------------------------

/// Every HgemmConfig variant kernel_gen can produce: the two headline
/// kernels plus one ablation per knob (shared-memory layout, STS interleave,
/// prefetch, warp-tile shape).
std::vector<core::HgemmConfig> all_hgemm_configs() {
  std::vector<core::HgemmConfig> cfgs;
  cfgs.push_back(core::HgemmConfig::optimized());
  cfgs.push_back(core::HgemmConfig::cublas_like());
  auto naive = core::HgemmConfig::optimized();
  naive.layout = core::SmemLayout::kNaiveRowMajor;
  cfgs.push_back(naive);
  auto tile = core::HgemmConfig::optimized();
  tile.layout = core::SmemLayout::kTileMajor;
  cfgs.push_back(tile);
  auto sts2 = core::HgemmConfig::optimized();
  sts2.sts_interleave = 2;
  cfgs.push_back(sts2);
  auto nopf = core::HgemmConfig::optimized();
  nopf.prefetch = false;
  cfgs.push_back(nopf);
  auto narrow = core::HgemmConfig::optimized();
  narrow.wm = 64;
  narrow.wn = 64;
  cfgs.push_back(narrow);
  return cfgs;
}

GemmShape shape_for(const core::HgemmConfig& cfg) {
  return {static_cast<std::size_t>(cfg.bm), static_cast<std::size_t>(cfg.bn),
          static_cast<std::size_t>(2 * cfg.bk)};
}

TEST(SchedKernelGen, VirtualProgramsCarryNoManualScheduling) {
  // The refactored generator emits pure semantic streams: every control word
  // at its default, no hand-picked stalls or barrier indices anywhere.
  auto expect_virtual = [](const sass::Program& virt) {
    for (std::size_t pc = 0; pc < virt.code.size(); ++pc) {
      const auto& c = virt.code[pc].ctrl;
      EXPECT_EQ(c.stall, 1) << virt.name << " pc " << pc;
      EXPECT_EQ(c.write_barrier, sass::kNoBarrier) << virt.name << " pc " << pc;
      EXPECT_EQ(c.read_barrier, sass::kNoBarrier) << virt.name << " pc " << pc;
      EXPECT_EQ(c.wait_mask, 0) << virt.name << " pc " << pc;
      EXPECT_EQ(c.reuse, 0) << virt.name << " pc " << pc;
    }
  };
  for (const auto& cfg : all_hgemm_configs()) {
    expect_virtual(core::hgemm_kernel_virtual(cfg, shape_for(cfg)));
  }
  expect_virtual(core::wmma_naive_kernel_virtual({16, 128, 64}));
}

TEST(SchedKernelGen, EveryConfigSchedulesHazardFree) {
  // schedule() already hard-gates through find_hazards; assert the oracle's
  // verdict independently here so a future verify=false shortcut cannot
  // silently ship a hazardous kernel.
  for (const auto& cfg : all_hgemm_configs()) {
    const auto prog = core::hgemm_kernel(cfg, shape_for(cfg));
    const auto diags = check::find_hazards(prog, check::LatencyModel{});
    EXPECT_TRUE(diags.empty()) << cfg.name() << ": " << diags.size() << " diagnostics, first: "
                               << (diags.empty() ? "" : diags.front().message);
  }
  const auto wmma = core::wmma_naive_kernel({16, 128, 64});
  EXPECT_TRUE(check::find_hazards(wmma, check::LatencyModel{}).empty());
}

/// Timed single-CTA cycles on `spec` for one grid-(1x1) launch, inputs from
/// Rng seed 7 — the harness the hand-scheduled baselines were recorded with.
std::uint64_t timed_cycles(const device::DeviceSpec& spec, const sass::Program& prog,
                           const GemmShape& s) {
  driver::Device dev(spec);
  Rng rng(7);
  HalfMatrix a(s.m, s.k), bt(s.n, s.k);
  a.randomize(rng, -0.5f, 0.5f);
  bt.randomize(rng, -0.5f, 0.5f);
  auto da = dev.alloc<half>(a.size());
  auto db = dev.alloc<half>(bt.size());
  auto dc = dev.alloc<half>(s.m * s.n);
  dev.upload(da, std::span<const half>(a.data(), a.size()));
  dev.upload(db, std::span<const half>(bt.data(), bt.size()));
  sim::Launch launch;
  launch.program = &prog;
  launch.params = {da.addr, db.addr, dc.addr};
  const sim::CtaCoord cta{0, 0};
  return dev.run_timed(launch, std::span(&cta, 1), dev.timing_whole_device()).cycles;
}

TEST(SchedKernelGen, NoSlowerThanHandScheduledBaselines) {
  // Cycle counts of the hand-scheduled generator (the pre-scheduler
  // implementation) on RTX 2070, same harness as timed_cycles(). The
  // scheduler must stay within 1% of each — it is currently strictly faster
  // on every shape.
  struct Case {
    const char* what;
    core::HgemmConfig cfg;
    GemmShape shape;
    std::uint64_t hand_cycles;
  };
  const Case cases[] = {
      {"optimized 256x256x64", core::HgemmConfig::optimized(), {256, 256, 64}, 16093},
      {"optimized 256x256x128", core::HgemmConfig::optimized(), {256, 256, 128}, 24999},
      {"cublas_like 128x128x128", core::HgemmConfig::cublas_like(), {128, 128, 128}, 9216},
      {"cublas_like 128x128x256", core::HgemmConfig::cublas_like(), {128, 128, 256}, 15074},
  };
  const auto spec = device::rtx2070();
  for (const auto& c : cases) {
    const auto prog = core::hgemm_kernel(c.cfg, c.shape);
    const auto got = timed_cycles(spec, prog, c.shape);
    EXPECT_LE(got, c.hand_cycles + c.hand_cycles / 100) << c.what;
  }
  const auto wmma = core::wmma_naive_kernel({16, 128, 64});
  EXPECT_LE(timed_cycles(spec, wmma, {16, 128, 64}), 2450u + 2450u / 100) << "wmma 16x128x64";
}

TEST(SchedKernelGen, OptimizedKernelRunsTimedOnBothSpecs) {
  // The scheduled kernel must complete (no deadlocked waits, no runaway
  // stalls) under both device timing models, not just the one it was tuned
  // against.
  const auto cfg = core::HgemmConfig::optimized();
  const GemmShape s{256, 256, 64};
  const auto prog = core::hgemm_kernel(cfg, s);
  const auto on_2070 = timed_cycles(device::rtx2070(), prog, s);
  const auto on_t4 = timed_cycles(device::t4(), prog, s);
  EXPECT_GT(on_2070, 0u);
  EXPECT_GT(on_t4, 0u);
  EXPECT_LT(on_t4, 200'000u);
  EXPECT_LT(on_2070, 200'000u);
}

}  // namespace
}  // namespace tc::sched
