// Unit tests for IEEE binary16 arithmetic (src/common/half.*).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>

#include "common/half.hpp"
#include "common/rng.hpp"
#include "numerics/numerics.hpp"

namespace tc {
namespace {

TEST(Half, ExactSmallIntegers) {
  for (int i = -2048; i <= 2048; ++i) {
    const half h(static_cast<float>(i));
    EXPECT_EQ(h.to_float(), static_cast<float>(i)) << "i=" << i;
  }
}

TEST(Half, KnownBitPatterns) {
  EXPECT_EQ(half(1.0f).bits(), 0x3C00);
  EXPECT_EQ(half(-2.0f).bits(), 0xC000);
  EXPECT_EQ(half(0.5f).bits(), 0x3800);
  EXPECT_EQ(half(65504.0f).bits(), 0x7BFF);  // max normal
  EXPECT_EQ(half(0.0f).bits(), 0x0000);
  EXPECT_EQ(half(-0.0f).bits(), 0x8000);
  EXPECT_EQ(half(6.103515625e-05f).bits(), 0x0400);  // min normal 2^-14
  EXPECT_EQ(half(5.960464477539063e-08f).bits(), 0x0001);  // min subnormal 2^-24
}

TEST(Half, OverflowToInfinity) {
  EXPECT_TRUE(half(65520.0f).is_inf());  // rounds up past max normal
  EXPECT_TRUE(half(1e30f).is_inf());
  EXPECT_TRUE(half(-1e30f).is_inf());
  EXPECT_TRUE(half(-1e30f).signbit());
  EXPECT_EQ(half(65519.0f).bits(), 0x7BFF);  // rounds down to max
}

TEST(Half, UnderflowToZero) {
  EXPECT_TRUE(half(1e-10f).is_zero());
  EXPECT_TRUE(half(-1e-10f).is_zero());
  EXPECT_TRUE(half(-1e-10f).signbit());  // signed zero preserved
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10: rounds to even (1.0).
  EXPECT_EQ(half(1.0f + 0x1.0p-11f).bits(), half(1.0f).bits());
  // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: rounds to even (1+2^-9).
  EXPECT_EQ(half(1.0f + 3 * 0x1.0p-11f).bits(), half(1.0f + 0x1.0p-9f).bits());
  // Slightly above the halfway point rounds up.
  EXPECT_EQ(half(1.0f + 0x1.0p-11f + 0x1.0p-20f).bits(), half(1.0f + 0x1.0p-10f).bits());
}

TEST(Half, NanPropagation) {
  const half n(std::nanf(""));
  EXPECT_TRUE(n.is_nan());
  EXPECT_FALSE(n == n);  // NaN != NaN
  EXPECT_TRUE(std::isnan(n.to_float()));
}

TEST(Half, RoundTripAllBitPatternsExact) {
  // Every one of the 65536 half patterns must survive to_float -> from_float
  // bit-exactly — including NaNs: to_float widens the 10-bit payload into the
  // float significand, and from_float narrows it back unchanged. (A previous
  // version of from_float_bits OR'd in the quiet bit unconditionally, which
  // corrupted signalling-NaN payloads on the round trip.)
  for (std::uint32_t b = 0; b <= 0xFFFF; ++b) {
    const half h = half::from_bits(static_cast<std::uint16_t>(b));
    const half back(h.to_float());
    EXPECT_EQ(back.bits(), h.bits()) << "bits=" << b;
  }
}

namespace {

/// Independent double-precision reference for float -> binary16 RNE: snap to
/// the binade's quantum with nearbyint (FE_TONEAREST is ties-to-even), then
/// assemble the bit pattern directly.
std::uint16_t ref_half_bits(float f) {
  const std::uint16_t sign = std::signbit(f) ? 0x8000u : 0u;
  if (std::isnan(f)) return 0;  // callers skip NaN inputs
  if (std::isinf(f)) return sign | 0x7C00u;
  const double mag = std::fabs(static_cast<double>(f));
  if (mag == 0.0) return sign;
  const int e = std::max(std::ilogb(mag), -14);
  const double quantum = std::ldexp(1.0, e - 10);
  const double r = std::nearbyint(mag / quantum) * quantum;  // exact: q is 2^k
  if (r == 0.0) return sign;
  if (r > 65504.0) return sign | 0x7C00u;
  if (r < std::ldexp(1.0, -14)) {  // subnormal
    return sign | static_cast<std::uint16_t>(r / std::ldexp(1.0, -24));
  }
  const int re = std::ilogb(r);
  const auto mant = static_cast<std::uint16_t>(r / std::ldexp(1.0, re - 10));
  return sign | static_cast<std::uint16_t>((re + 15) << 10) |
         static_cast<std::uint16_t>(mant - 1024u);
}

}  // namespace

TEST(Half, RandomizedConversionMatchesDoubleReference) {
  Rng rng(2024);
  int tested = 0;
  while (tested < 200000) {
    // Exponents drawn to hammer the interesting region: subnormal boundary
    // (2^-26..2^-14), normals, and the overflow boundary near 2^16.
    const int e = static_cast<int>(rng.next_int(-27, 17));
    const double mant = 1.0 + static_cast<double>(rng.next_u64() >> 11) * 0x1.0p-53;
    const double sign = rng.next_below(2) == 0 ? 1.0 : -1.0;
    const auto f = static_cast<float>(sign * mant * std::ldexp(1.0, e));
    ASSERT_EQ(half(f).bits(), ref_half_bits(f))
        << "f=" << f << " (exp " << e << ")";
    ++tested;
  }
}

TEST(Half, ConversionMatchesReferenceOnExactMidpoints) {
  // Ties between adjacent halves must go to even, in both binades and in the
  // subnormal range. Build the midpoint of every adjacent pair exactly.
  for (std::uint32_t b = 0; b < 0x7BFFu; ++b) {  // up to the last finite pair
    const float lo = half::from_bits(static_cast<std::uint16_t>(b)).to_float();
    const float hi = half::from_bits(static_cast<std::uint16_t>(b + 1)).to_float();
    const float mid = lo + (hi - lo) / 2.0f;  // exact: spacing is a power of two
    const std::uint16_t rounded = half(mid).bits();
    const std::uint16_t even = (b % 2 == 0) ? static_cast<std::uint16_t>(b)
                                            : static_cast<std::uint16_t>(b + 1);
    ASSERT_EQ(rounded, even) << "between bits " << b << " and " << b + 1;
    ASSERT_EQ(half(-mid).bits(), 0x8000u | even) << "negative mid, bits " << b;
  }
}

TEST(Half, SubnormalRoundTrip) {
  for (std::uint16_t b = 1; b < 0x0400; ++b) {  // all positive subnormals
    const half h = half::from_bits(b);
    EXPECT_EQ(half(h.to_float()).bits(), b);
    EXPECT_GT(h.to_float(), 0.0f);
  }
}

TEST(Half, Arithmetic) {
  EXPECT_EQ((half(1.5f) + half(2.5f)).to_float(), 4.0f);
  EXPECT_EQ((half(3.0f) * half(0.5f)).to_float(), 1.5f);
  EXPECT_EQ((half(1.0f) / half(4.0f)).to_float(), 0.25f);
  EXPECT_EQ((-half(2.0f)).to_float(), -2.0f);
  // FP16 addition loses low bits: 2048 + 1 == 2048 in binary16.
  EXPECT_EQ((half(2048.0f) + half(1.0f)).to_float(), 2048.0f);
}

TEST(Half, ComparisonsAndZeroEquality) {
  EXPECT_TRUE(half(0.0f) == half(-0.0f));
  EXPECT_TRUE(half(1.0f) < half(2.0f));
  EXPECT_TRUE(half(-1.0f) < half(1.0f));
  EXPECT_TRUE(half(3.0f) >= half(3.0f));
}

TEST(Half2, PackUnpack) {
  const half2 v{half(1.5f), half(-2.0f)};
  const auto word = v.pack();
  EXPECT_EQ(word & 0xFFFF, half(1.5f).bits());
  EXPECT_EQ(word >> 16, half(-2.0f).bits());
  const half2 u = half2::unpack(word);
  EXPECT_EQ(u.lo.bits(), v.lo.bits());
  EXPECT_EQ(u.hi.bits(), v.hi.bits());
}

TEST(Half, ExhaustiveFusedStepIdentitySweep) {
  // Every one of the 65536 half patterns through one bit-accurate fused
  // accumulate step as the sole product (h * 1 with c = 0). The F32 step
  // must reproduce the value EXACTLY for every finite input — binary32 is a
  // superset of binary16, including all subnormals — while specials follow
  // the unit's structural rules: NaNs canonicalize (payloads dropped),
  // infinities pass through, and +0 + (+/-0 product) is +0.
  for (std::uint32_t p = 0; p <= 0xFFFF; ++p) {
    const half hv = half::from_bits(static_cast<std::uint16_t>(p));
    const half one(1.0f);
    const float got = numerics::fdp_step_f32(0.0f, &hv, &one, 1);
    const auto got_bits = std::bit_cast<std::uint32_t>(got);
    if (hv.is_nan()) {
      ASSERT_EQ(got_bits, 0x7FC00000u) << "bits=" << p;
    } else if (hv.is_zero()) {
      ASSERT_EQ(got_bits, 0u) << "bits=" << p;  // (+0) + (h*1 = +/-0) = +0
    } else {
      ASSERT_EQ(got_bits, std::bit_cast<std::uint32_t>(hv.to_float())) << "bits=" << p;
    }
  }
}

TEST(Half, ExhaustiveFusedAccumulateSweepVsReference) {
  // Every half value h through one F16-accumulate fused step computing
  // h + h * 0.5 = 1.5 * h. The exact sum has at most 12 significant bits,
  // so float holds it exactly and the independent double-based RNE
  // reference (ref_half_bits above) is the oracle for the single rounding —
  // covering every binade, the subnormal range, and the overflow boundary.
  const half halfc(0.5f);
  for (std::uint32_t p = 0; p <= 0xFFFF; ++p) {
    const half hv = half::from_bits(static_cast<std::uint16_t>(p));
    const half got = numerics::fdp_step_f16(hv, &hv, &halfc, 1);
    if (hv.is_nan()) {
      ASSERT_EQ(got.bits(), 0x7E00) << "bits=" << p;
    } else if (hv.is_inf()) {
      ASSERT_EQ(got.bits(), hv.bits()) << "bits=" << p;  // inf + inf/2
    } else if (hv.is_zero()) {
      // (+/-0) + (+/-0): same-signed zeros keep the sign.
      ASSERT_EQ(got.bits(), hv.bits()) << "bits=" << p;
    } else {
      const float exact = 1.5f * hv.to_float();  // exact: 12-bit significand
      ASSERT_EQ(got.bits(), ref_half_bits(exact)) << "bits=" << p;
    }
  }
}

TEST(Half, FmaRoundsOnce) {
  // fma_round_half must use a single rounding: pick values where
  // round(round(a*b) + c) != round(a*b + c).
  const half a(1.0f + 0x1.0p-10f);
  const half b(1.0f - 0x1.0p-10f);
  const half c(-1.0f);
  // a*b = 1 - 2^-20 exactly. Fused: -2^-20 (a subnormal half).
  // Split: a*b rounds to 1.0 in fp16, so the sum is exactly 0.
  const half fused = fma_round_half(a, b, c);
  const half split = a * b + c;
  EXPECT_EQ(split.to_float(), 0.0f);
  EXPECT_LT(fused.to_float(), 0.0f);
  EXPECT_NE(fused.bits(), split.bits());
}

TEST(Rng, Deterministic) {
  Rng r1(42), r2(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r1.next_u64(), r2.next_u64());
}

TEST(Rng, BoundsRespected) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.next_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const float f = r.next_float(1.0f, 2.0f);
    EXPECT_GE(f, 1.0f);
    EXPECT_LT(f, 2.0f);
  }
}

}  // namespace
}  // namespace tc
