// Tests of the Tensor Core register layouts (paper Fig. 1/2) and the
// functional MMA semantics (Section IV).
#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"
#include "sim/exec_core.hpp"
#include "sim/mma_exec.hpp"

namespace tc::sim {
namespace {

// Fig. 1 left: the lane that owns element (row, col) in row-major order.
TEST(Layout, RowMajorMatchesFigure1) {
  // First row of the figure: lanes 0..3 hold columns 0..7 of row 0.
  EXPECT_EQ(row_major_pos(0, 0).lane, 0);
  EXPECT_EQ(row_major_pos(0, 1).lane, 0);
  EXPECT_EQ(row_major_pos(0, 2).lane, 1);
  EXPECT_EQ(row_major_pos(0, 7).lane, 3);
  EXPECT_EQ(row_major_pos(1, 0).lane, 4);
  EXPECT_EQ(row_major_pos(7, 6).lane, 31);
  EXPECT_EQ(row_major_pos(0, 0).part, 0);
  EXPECT_EQ(row_major_pos(0, 1).part, 1);
}

// Fig. 1 right: column-major order.
TEST(Layout, ColMajorMatchesFigure1) {
  EXPECT_EQ(col_major_pos(0, 0).lane, 0);
  EXPECT_EQ(col_major_pos(1, 0).lane, 0);
  EXPECT_EQ(col_major_pos(2, 0).lane, 1);
  EXPECT_EQ(col_major_pos(7, 0).lane, 3);
  EXPECT_EQ(col_major_pos(0, 1).lane, 4);
  EXPECT_EQ(col_major_pos(6, 7).lane, 31);
  EXPECT_EQ(col_major_pos(1, 0).part, 1);
}

TEST(Layout, InverseMapsAreConsistent) {
  for (int lane = 0; lane < 32; ++lane) {
    for (int part = 0; part < 2; ++part) {
      const Coord rm = row_major_coord(lane, part);
      EXPECT_EQ(row_major_pos(rm.row, rm.col).lane, lane);
      EXPECT_EQ(row_major_pos(rm.row, rm.col).part, part);
      const Coord cm = col_major_coord(lane, part);
      EXPECT_EQ(col_major_pos(cm.row, cm.col).lane, lane);
      EXPECT_EQ(col_major_pos(cm.row, cm.col).part, part);
    }
  }
}

TEST(Layout, OneWarpRegisterHoldsWholeTile) {
  // 32 lanes x 2 parts cover all 64 elements exactly once in both orders.
  bool seen[8][8] = {};
  for (int lane = 0; lane < 32; ++lane) {
    for (int part = 0; part < 2; ++part) {
      const Coord c = row_major_coord(lane, part);
      EXPECT_FALSE(seen[c.row][c.col]);
      seen[c.row][c.col] = true;
    }
  }
  for (auto& row : seen) {
    for (bool s : row) EXPECT_TRUE(s);
  }
}

TEST(Layout, GatherScatterRoundTrip) {
  Rng rng(1);
  Tile8x8 t;
  for (auto& row : t.m) {
    for (auto& v : row) v = rng.next_half();
  }
  WarpRegs regs;
  scatter_row_major(regs, sass::Reg{4}, t);
  const Tile8x8 back = gather_row_major(regs, sass::Reg{4});
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) EXPECT_EQ(back.m[i][j].bits(), t.m[i][j].bits());
  }
  scatter_col_major(regs, sass::Reg{5}, t);
  const Tile8x8 back2 = gather_col_major(regs, sass::Reg{5});
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) EXPECT_EQ(back2.m[i][j].bits(), t.m[i][j].bits());
  }
}

TEST(Layout, RowAndColMajorDifferInRegisters) {
  Tile8x8 t;
  t.m[0][1] = half(1.0f);
  WarpRegs r1, r2;
  scatter_row_major(r1, sass::Reg{0}, t);
  scatter_col_major(r2, sass::Reg{0}, t);
  // (0,1) row-major: lane 0 part 1. col-major: lane 4 part 0.
  EXPECT_EQ(half2::unpack(r1.read(sass::Reg{0}, 0)).hi.to_float(), 1.0f);
  EXPECT_EQ(half2::unpack(r2.read(sass::Reg{0}, 4)).lo.to_float(), 1.0f);
}

// --- HMMA semantics ---------------------------------------------------------

struct MmaFixture : ::testing::Test {
  WarpRegs regs;
  Rng rng{7};

  half a[16][8];
  half bmat[8][8];
  half c[16][8];

  void load_operands(bool zero_c = false) {
    Tile8x8 a_lo, a_hi, bt, c_lo, c_hi;
    for (int i = 0; i < 16; ++i) {
      for (int j = 0; j < 8; ++j) {
        a[i][j] = rng.next_half();
        c[i][j] = zero_c ? half(0.0f) : rng.next_half();
        (i < 8 ? a_lo : a_hi).m[i % 8][j] = a[i][j];
        (i < 8 ? c_lo : c_hi).m[i % 8][j] = c[i][j];
      }
    }
    for (int i = 0; i < 8; ++i) {
      for (int j = 0; j < 8; ++j) {
        bmat[i][j] = rng.next_half();
        bt.m[i][j] = bmat[i][j];
      }
    }
    scatter_row_major(regs, sass::Reg{2}, a_lo);
    scatter_row_major(regs, sass::Reg{3}, a_hi);
    scatter_col_major(regs, sass::Reg{6}, bt);
    scatter_row_major(regs, sass::Reg{4}, c_lo);
    scatter_row_major(regs, sass::Reg{5}, c_hi);
  }

  half expected(int i, int j) const {
    float acc = c[i][j].to_float();
    for (int kk = 0; kk < 8; ++kk) acc += a[i][kk].to_float() * bmat[kk][j].to_float();
    return half(acc);
  }
};

TEST_F(MmaFixture, Hmma1688F16MatchesScalarModel) {
  load_operands();
  ImmediateSink sink(regs);
  exec_mma(sass::Opcode::kHmma1688F16, regs, sass::Reg{8}, sass::Reg{2}, sass::Reg{6},
           sass::Reg{4}, sink);
  const Tile8x8 d_lo = gather_row_major(regs, sass::Reg{8});
  const Tile8x8 d_hi = gather_row_major(regs, sass::Reg{9});
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 8; ++j) {
      const half got = (i < 8 ? d_lo : d_hi).m[i % 8][j];
      EXPECT_EQ(got.bits(), expected(i, j).bits()) << "D(" << i << "," << j << ")";
    }
  }
}

TEST_F(MmaFixture, Hmma1688F16AccumulatesInPlace) {
  load_operands(true);
  ImmediateSink sink(regs);
  // D = A*B (C = RZ), then D += A*B again: result must be 2x with fp16
  // rounding applied per instruction.
  exec_mma(sass::Opcode::kHmma1688F16, regs, sass::Reg{8}, sass::Reg{2}, sass::Reg{6}, sass::RZ,
           sink);
  exec_mma(sass::Opcode::kHmma1688F16, regs, sass::Reg{8}, sass::Reg{2}, sass::Reg{6},
           sass::Reg{8}, sink);
  const Tile8x8 d_lo = gather_row_major(regs, sass::Reg{8});
  for (int j = 0; j < 8; ++j) {
    float once = 0.0f;
    for (int kk = 0; kk < 8; ++kk) once += a[0][kk].to_float() * bmat[kk][j].to_float();
    const half first(once);
    const half second(first.to_float() + once);
    EXPECT_EQ(d_lo.m[0][j].bits(), second.bits());
  }
}

TEST_F(MmaFixture, Hmma1688F32KeepsFullPrecision) {
  load_operands(true);
  ImmediateSink sink(regs);
  exec_mma(sass::Opcode::kHmma1688F32, regs, sass::Reg{12}, sass::Reg{2}, sass::Reg{6}, sass::RZ,
           sink);
  // FP32 accumulators: element (0,0) lives in reg 12 lane 0 as raw float.
  float got;
  const std::uint32_t bits = regs.read(sass::Reg{12}, 0);
  std::memcpy(&got, &bits, 4);
  float want = 0.0f;
  for (int kk = 0; kk < 8; ++kk) want += a[0][kk].to_float() * bmat[kk][0].to_float();
  EXPECT_FLOAT_EQ(got, want);
}

TEST_F(MmaFixture, Hmma884ComputesSingleTile) {
  load_operands(true);
  ImmediateSink sink(regs);
  exec_mma(sass::Opcode::kHmma884F16, regs, sass::Reg{10}, sass::Reg{2}, sass::Reg{6}, sass::RZ,
           sink);
  const Tile8x8 d = gather_row_major(regs, sass::Reg{10});
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      float acc = 0.0f;
      for (int kk = 0; kk < 8; ++kk) acc += a[i][kk].to_float() * bmat[kk][j].to_float();
      EXPECT_EQ(d.m[i][j].bits(), half(acc).bits());
    }
  }
}

TEST(Imma, Int8MatrixMultiply) {
  WarpRegs regs;
  // A[i][kk] = i + kk (mod 7) - 3, B[kk][j] = kk - j (mod 5) - 2.
  std::int8_t A[8][16], B[16][8];
  for (int i = 0; i < 8; ++i) {
    for (int kk = 0; kk < 16; ++kk) A[i][kk] = static_cast<std::int8_t>((i + kk) % 7 - 3);
  }
  for (int kk = 0; kk < 16; ++kk) {
    for (int j = 0; j < 8; ++j) B[kk][j] = static_cast<std::int8_t>((kk - j) % 5 - 2);
  }
  for (int lane = 0; lane < 32; ++lane) {
    std::uint32_t aw = 0, bw = 0;
    for (int byte = 0; byte < 4; ++byte) {
      aw |= static_cast<std::uint32_t>(
                static_cast<std::uint8_t>(A[lane / 4][(lane % 4) * 4 + byte]))
            << (8 * byte);
      bw |= static_cast<std::uint32_t>(
                static_cast<std::uint8_t>(B[(lane % 4) * 4 + byte][lane / 4]))
            << (8 * byte);
    }
    regs.write_now(sass::Reg{0}, lane, aw);
    regs.write_now(sass::Reg{1}, lane, bw);
  }
  ImmediateSink sink(regs);
  exec_mma(sass::Opcode::kImma8816S8, regs, sass::Reg{4}, sass::Reg{0}, sass::Reg{1}, sass::RZ,
           sink);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      std::int32_t want = 0;
      for (int kk = 0; kk < 16; ++kk) want += A[i][kk] * B[kk][j];
      const int lane = i * 4 + j / 2;
      const auto got = static_cast<std::int32_t>(
          regs.read(sass::Reg{static_cast<std::uint8_t>(4 + j % 2)}, lane));
      EXPECT_EQ(got, want) << i << "," << j;
    }
  }
}

TEST(RegFile, DelayedWritebackIsInvisibleUntilDue) {
  WarpRegs regs;
  regs.write_now(sass::Reg{0}, 0, 111);
  regs.write_at(sass::Reg{0}, 0, 222, /*due=*/10);
  regs.settle(9);
  EXPECT_EQ(regs.read(sass::Reg{0}, 0), 111u);  // stale value: the hazard
  EXPECT_TRUE(regs.has_pending(sass::Reg{0}));
  regs.settle(10);
  EXPECT_EQ(regs.read(sass::Reg{0}, 0), 222u);
  EXPECT_FALSE(regs.has_pending(sass::Reg{0}));
}

TEST(RegFile, RzReadsZeroAndDropsWrites) {
  WarpRegs regs;
  regs.write_now(sass::RZ, 3, 999);
  EXPECT_EQ(regs.read(sass::RZ, 3), 0u);
}

TEST(RegFile, PredicatesPerLane) {
  WarpRegs regs;
  EXPECT_TRUE(regs.read_pred(sass::PT, 5));
  regs.write_pred(sass::Pred{2}, 5, true);
  EXPECT_TRUE(regs.read_pred(sass::Pred{2}, 5));
  EXPECT_FALSE(regs.read_pred(sass::Pred{2}, 6));
  regs.write_pred(sass::PT, 5, false);  // PT immutable
  EXPECT_TRUE(regs.read_pred(sass::PT, 5));
}

}  // namespace
}  // namespace tc::sim
