// Direct coverage of the remaining instruction semantics in exec_core:
// FP32 math, packed FP16 math, conversions, logic, shifts, SEL, and the
// guard/predication machinery.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/half.hpp"
#include "sim/exec_core.hpp"

namespace tc::sim {
namespace {

std::uint32_t fbits(float f) {
  std::uint32_t b;
  std::memcpy(&b, &f, 4);
  return b;
}
float bitsf(std::uint32_t b) {
  float f;
  std::memcpy(&f, &b, 4);
  return f;
}

struct ExecFixture : ::testing::Test {
  WarpRegs regs;
  Launch launch;
  ExecContext ctx;
  ImmediateSink sink{regs};

  ExecFixture() {
    ctx.regs = &regs;
    ctx.launch = &launch;
  }

  StepResult run(const sass::Instruction& inst) { return exec_step(ctx, inst, sink); }

  sass::Instruction alu(sass::Opcode op, int d, int a, int b, int c = 255) {
    sass::Instruction i;
    i.op = op;
    i.dst = sass::Reg{static_cast<std::uint8_t>(d)};
    i.srca = sass::Reg{static_cast<std::uint8_t>(a)};
    i.srcb = sass::Reg{static_cast<std::uint8_t>(b)};
    i.srcc = sass::Reg{static_cast<std::uint8_t>(c)};
    return i;
  }
};

TEST_F(ExecFixture, FloatMath) {
  regs.write_now(sass::Reg{1}, 0, fbits(3.5f));
  regs.write_now(sass::Reg{2}, 0, fbits(-1.25f));
  regs.write_now(sass::Reg{3}, 0, fbits(10.0f));

  run(alu(sass::Opcode::kFadd, 4, 1, 2));
  EXPECT_FLOAT_EQ(bitsf(regs.read(sass::Reg{4}, 0)), 2.25f);
  run(alu(sass::Opcode::kFmul, 4, 1, 2));
  EXPECT_FLOAT_EQ(bitsf(regs.read(sass::Reg{4}, 0)), -4.375f);
  run(alu(sass::Opcode::kFfma, 4, 1, 2, 3));
  EXPECT_FLOAT_EQ(bitsf(regs.read(sass::Reg{4}, 0)), 5.625f);
}

TEST_F(ExecFixture, PackedHalfMath) {
  regs.write_now(sass::Reg{1}, 5, half2{half(1.5f), half(-2.0f)}.pack());
  regs.write_now(sass::Reg{2}, 5, half2{half(2.0f), half(0.5f)}.pack());
  regs.write_now(sass::Reg{3}, 5, half2{half(1.0f), half(1.0f)}.pack());

  run(alu(sass::Opcode::kHadd2, 4, 1, 2));
  auto v = half2::unpack(regs.read(sass::Reg{4}, 5));
  EXPECT_FLOAT_EQ(v.lo.to_float(), 3.5f);
  EXPECT_FLOAT_EQ(v.hi.to_float(), -1.5f);

  run(alu(sass::Opcode::kHmul2, 4, 1, 2));
  v = half2::unpack(regs.read(sass::Reg{4}, 5));
  EXPECT_FLOAT_EQ(v.lo.to_float(), 3.0f);
  EXPECT_FLOAT_EQ(v.hi.to_float(), -1.0f);

  run(alu(sass::Opcode::kHfma2, 4, 1, 2, 3));
  v = half2::unpack(regs.read(sass::Reg{4}, 5));
  EXPECT_FLOAT_EQ(v.lo.to_float(), 4.0f);
  EXPECT_FLOAT_EQ(v.hi.to_float(), 0.0f);
}

TEST_F(ExecFixture, Conversions) {
  regs.write_now(sass::Reg{1}, 0, fbits(1.5f));
  run(alu(sass::Opcode::kF2fF32ToF16, 2, 1, 255));
  EXPECT_EQ(regs.read(sass::Reg{2}, 0) & 0xFFFF, half(1.5f).bits());

  regs.write_now(sass::Reg{3}, 0, half2{half(-0.75f), half(9.0f)}.pack());
  run(alu(sass::Opcode::kF2fF16ToF32, 4, 3, 255));
  EXPECT_FLOAT_EQ(bitsf(regs.read(sass::Reg{4}, 0)), -0.75f);  // low half widened
}

TEST_F(ExecFixture, LogicAndShifts) {
  regs.write_now(sass::Reg{1}, 0, 0xF0F0F0F0u);
  regs.write_now(sass::Reg{2}, 0, 0x0FF00FF0u);
  run(alu(sass::Opcode::kLop3And, 3, 1, 2));
  EXPECT_EQ(regs.read(sass::Reg{3}, 0), 0x00F000F0u);
  run(alu(sass::Opcode::kLop3Or, 3, 1, 2));
  EXPECT_EQ(regs.read(sass::Reg{3}, 0), 0xFFF0FFF0u);
  run(alu(sass::Opcode::kLop3Xor, 3, 1, 2));
  EXPECT_EQ(regs.read(sass::Reg{3}, 0), 0xFF00FF00u);

  auto shl = alu(sass::Opcode::kShfL, 3, 1, 0);
  shl.has_imm = true;
  shl.imm = 4;
  run(shl);
  EXPECT_EQ(regs.read(sass::Reg{3}, 0), 0x0F0F0F00u);
  auto shr = alu(sass::Opcode::kShfR, 3, 1, 0);
  shr.has_imm = true;
  shr.imm = 8;
  run(shr);
  EXPECT_EQ(regs.read(sass::Reg{3}, 0), 0x00F0F0F0u);
}

TEST_F(ExecFixture, SelPicksBySourcePredicate) {
  regs.write_now(sass::Reg{1}, 0, 111);
  regs.write_now(sass::Reg{2}, 0, 222);
  regs.write_pred(sass::Pred{3}, 0, true);
  regs.write_pred(sass::Pred{3}, 1, false);
  regs.write_now(sass::Reg{1}, 1, 111);
  regs.write_now(sass::Reg{2}, 1, 222);

  auto sel = alu(sass::Opcode::kSel, 4, 1, 2);
  sel.pdst = sass::Pred{3};
  run(sel);
  EXPECT_EQ(regs.read(sass::Reg{4}, 0), 111u);
  EXPECT_EQ(regs.read(sass::Reg{4}, 1), 222u);
}

TEST_F(ExecFixture, IsetpAllComparisons) {
  regs.write_now(sass::Reg{1}, 0, static_cast<std::uint32_t>(-5));
  const struct {
    sass::CmpOp op;
    std::int32_t rhs;
    bool expect;
  } cases[] = {
      {sass::CmpOp::kLt, 0, true},  {sass::CmpOp::kLe, -5, true}, {sass::CmpOp::kGt, -6, true},
      {sass::CmpOp::kGe, -4, false}, {sass::CmpOp::kEq, -5, true}, {sass::CmpOp::kNe, -5, false},
  };
  for (const auto& c : cases) {
    sass::Instruction i;
    i.op = sass::Opcode::kIsetp;
    i.pdst = sass::Pred{0};
    i.cmp = c.op;
    i.srca = sass::Reg{1};
    i.has_imm = true;
    i.imm = c.rhs;
    run(i);
    EXPECT_EQ(regs.read_pred(sass::Pred{0}, 0), c.expect)
        << sass::cmp_name(c.op) << " " << c.rhs;
  }
}

TEST_F(ExecFixture, GuardSuppressesInactiveLanes) {
  regs.write_pred(sass::Pred{1}, 3, true);  // only lane 3 active
  for (int lane = 0; lane < 32; ++lane) regs.write_now(sass::Reg{2}, lane, 7);

  auto mov = alu(sass::Opcode::kMov, 5, 2, 255);
  mov.guard = sass::Pred{1};
  run(mov);
  EXPECT_EQ(regs.read(sass::Reg{5}, 3), 7u);
  EXPECT_EQ(regs.read(sass::Reg{5}, 4), 0u);  // untouched

  // Negated guard: everyone except lane 3.
  mov.dst = sass::Reg{6};
  mov.guard_negated = true;
  run(mov);
  EXPECT_EQ(regs.read(sass::Reg{6}, 3), 0u);
  EXPECT_EQ(regs.read(sass::Reg{6}, 4), 7u);
}

TEST_F(ExecFixture, SpecialRegisters) {
  launch.grid_x = 9;
  ctx.cta_x = 4;
  ctx.cta_y = 2;
  ctx.warp_in_cta = 3;

  sass::Instruction s2r;
  s2r.op = sass::Opcode::kS2r;
  s2r.dst = sass::Reg{1};
  s2r.sreg = sass::SpecialReg::kTidX;
  run(s2r);
  EXPECT_EQ(regs.read(sass::Reg{1}, 0), 96u);  // warp 3, lane 0
  EXPECT_EQ(regs.read(sass::Reg{1}, 31), 127u);

  s2r.sreg = sass::SpecialReg::kCtaIdX;
  run(s2r);
  EXPECT_EQ(regs.read(sass::Reg{1}, 0), 4u);
  s2r.sreg = sass::SpecialReg::kCtaIdY;
  run(s2r);
  EXPECT_EQ(regs.read(sass::Reg{1}, 0), 2u);
  s2r.sreg = sass::SpecialReg::kNCtaIdX;
  run(s2r);
  EXPECT_EQ(regs.read(sass::Reg{1}, 0), 9u);
  s2r.sreg = sass::SpecialReg::kLaneId;
  run(s2r);
  EXPECT_EQ(regs.read(sass::Reg{1}, 17), 17u);
}

TEST_F(ExecFixture, ClockReadsContextCycle) {
  ctx.clock = 0x1234'5678'9ABCull;
  sass::Instruction cs2r;
  cs2r.op = sass::Opcode::kCs2rClock;
  cs2r.dst = sass::Reg{1};
  run(cs2r);
  EXPECT_EQ(regs.read(sass::Reg{1}, 0), 0x5678'9ABCu);  // low 32 bits
}

TEST_F(ExecFixture, MisalignedMemoryAccessThrows) {
  mem::GlobalMemory gmem;
  ctx.gmem = &gmem;
  const auto base = gmem.alloc(256);
  for (int lane = 0; lane < 32; ++lane) regs.write_now(sass::Reg{1}, lane, base + 2);

  sass::Instruction ld;
  ld.op = sass::Opcode::kLdg;
  ld.width = sass::MemWidth::k32;
  ld.dst = sass::Reg{4};
  ld.srca = sass::Reg{1};
  EXPECT_THROW(run(ld), Error);
}

}  // namespace
}  // namespace tc::sim
