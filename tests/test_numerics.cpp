// Conformance suite for the bit-accurate HMMA numerics engine (ISSUE 8).
//
// Three layers, labelled numerics_smoke in CTest:
//
//  1. Hand-derived SMT-model test vectors: each pins one observable of the
//     step semantics — round-toward-zero vs nearest-even, single rounding
//     per fused step, double rounding at the k = 8 chunk boundary, chunk
//     (but not intra-step) order sensitivity, subnormal preservation and
//     the FTZ knob, NaN canonicalization, RZ overflow saturation, and the
//     signed-zero rules. Every expected value is derived by hand in the
//     comment next to it.
//  2. Property/metamorphic tests against an MPFR-free long-double oracle:
//     intra-step permutation invariance, monotonicity, and exactness of
//     the single rounding on operand ranges where the fused sum fits a
//     64-bit significand.
//  3. Golden error-vs-shape curve fixtures plus the end-to-end proof that
//     the functional executor in NumericsMode::kBitAccurate computes
//     exactly numerics::gemm_bitacc_f16, independent of kernel config.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cfloat>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/hgemm.hpp"
#include "core/reference.hpp"
#include "device/spec.hpp"
#include "driver/device.hpp"
#include "numerics/curves.hpp"
#include "numerics/numerics.hpp"

namespace tc::numerics {
namespace {

std::uint32_t f32_bits(float f) { return std::bit_cast<std::uint32_t>(f); }

half h(float f) { return half(f); }
half hb(std::uint16_t bits) { return half::from_bits(bits); }

/// fdp_step_f32 over explicit term lists (pads nothing; n = list size).
float step_f32(float c, std::vector<half> a, std::vector<half> b,
               const GenerationModel& model = GenerationModel{}) {
  EXPECT_EQ(a.size(), b.size());
  return fdp_step_f32(c, a.data(), b.data(), static_cast<int>(a.size()), model);
}

half step_f16(half c, std::vector<half> a, std::vector<half> b,
              const GenerationModel& model = GenerationModel{}) {
  EXPECT_EQ(a.size(), b.size());
  return fdp_step_f16(c, a.data(), b.data(), static_cast<int>(a.size()), model);
}

// ---------------------------------------------------------------------------
// 1. SMT-model test vectors.
// ---------------------------------------------------------------------------

TEST(NumericsVectors, F32StepRoundsTowardZero) {
  // c = 1, one product (2^-24) * (-2^-24) = -2^-48. The exact sum 1 - 2^-48
  // sits just below 1.0: RZ truncates to the predecessor of 1.0
  // (0x3F7FFFFF = 1 - 2^-24), while nearest-even would return 1.0 (the
  // discarded 2^-48 is far below the halfway point 2^-25).
  const float rz = step_f32(1.0f, {hb(0x0001)}, {hb(0x8001)});
  EXPECT_EQ(f32_bits(rz), 0x3F7FFFFFu);

  GenerationModel rne = turing_model();
  rne.f32_round_rz = false;
  const float ne = step_f32(1.0f, {hb(0x0001)}, {hb(0x8001)}, rne);
  EXPECT_EQ(f32_bits(ne), f32_bits(1.0f));
}

TEST(NumericsVectors, F32StepIsFusedNotSequential) {
  // c = 2^-30, products 1*1 and (-1)*1. The exact fused sum is 2^-30.
  // A sequential walk would first compute RZ(2^-30 + 1) = 1.0 (the 2^-30 is
  // below binary32 precision at that magnitude and RZ drops it), then
  // 1.0 - 1.0 = 0. The fused step must keep the exact 2^-30.
  const float r = step_f32(0x1.0p-30f, {h(1.0f), h(-1.0f)}, {h(1.0f), h(1.0f)});
  EXPECT_EQ(r, 0x1.0p-30f);
}

TEST(NumericsVectors, Dot8DoubleRoundsAtTheChunkBoundary) {
  // k = 8 runs as two 4-term steps. Place product 1*1 = 1 and
  // 2^-12 * 2^-12 = 2^-24 in the first chunk and another 2^-24 in the
  // second. 2^-24 is half an ulp of 1.0, so each step computes
  // RZ(1 + 2^-24) = 1.0 and the chunked result is exactly 1.0 — but a
  // single fused 8-term sum is 1 + 2^-23, which is representable
  // (0x3F800001) and survives one rounding.
  const std::vector<half> a = {h(1.0f), hb(0x0C00), h(0.0f), h(0.0f),
                               hb(0x0C00), h(0.0f), h(0.0f), h(0.0f)};
  const std::vector<half> b = {h(1.0f), hb(0x0C00), h(0.0f), h(0.0f),
                               hb(0x0C00), h(0.0f), h(0.0f), h(0.0f)};
  const float chunked = hmma_dot8_f32(0.0f, a.data(), b.data());
  EXPECT_EQ(f32_bits(chunked), f32_bits(1.0f));

  const float one_shot = fdp_step_f32(0.0f, a.data(), b.data(), 8);
  EXPECT_EQ(f32_bits(one_shot), 0x3F800001u);
}

TEST(NumericsVectors, OrderSensitiveAcrossChunksOnly) {
  // Same terms as above. Permuting WITHIN the first chunk cannot change the
  // result (the fused sum is exact, hence order-invariant)...
  const std::vector<half> a_sw = {hb(0x0C00), h(1.0f), h(0.0f), h(0.0f),
                                  hb(0x0C00), h(0.0f), h(0.0f), h(0.0f)};
  const std::vector<half> b_sw = {hb(0x0C00), h(1.0f), h(0.0f), h(0.0f),
                                  hb(0x0C00), h(0.0f), h(0.0f), h(0.0f)};
  EXPECT_EQ(f32_bits(hmma_dot8_f32(0.0f, a_sw.data(), b_sw.data())), f32_bits(1.0f));

  // ...but moving the second 2^-24 product across the boundary into chunk
  // one makes the first step RZ(1 + 2^-23) = 0x3F800001 and the result
  // changes: the model is accumulation-order sensitive exactly at chunk
  // granularity.
  const std::vector<half> a_mv = {h(1.0f), hb(0x0C00), hb(0x0C00), h(0.0f),
                                  h(0.0f), h(0.0f), h(0.0f), h(0.0f)};
  const std::vector<half> b_mv = {h(1.0f), hb(0x0C00), hb(0x0C00), h(0.0f),
                                  h(0.0f), h(0.0f), h(0.0f), h(0.0f)};
  EXPECT_EQ(f32_bits(hmma_dot8_f32(0.0f, a_mv.data(), b_mv.data())), 0x3F800001u);
}

TEST(NumericsVectors, F16SubnormalResultsAreExactUnlessFtz) {
  // 2^-14 * 0.5 = 2^-15, a subnormal half (0x0200): Turing keeps it.
  EXPECT_EQ(step_f16(h(0.0f), {hb(0x0400)}, {h(0.5f)}).bits(), 0x0200);
  // An FTZ generation flushes the same result to +0.
  GenerationModel ftz = turing_model();
  ftz.f16_ftz_out = true;
  EXPECT_EQ(step_f16(h(0.0f), {hb(0x0400)}, {h(0.5f)}, ftz).bits(), 0x0000);

  // The minimum subnormal survives: 2^-24 * 1 = 0x0001.
  EXPECT_EQ(step_f16(h(0.0f), {hb(0x0001)}, {h(1.0f)}).bits(), 0x0001);
  // Subnormal ties round to even: 1.5 * 2^-24 is halfway between 0x0001 and
  // 0x0002 and must land on 0x0002.
  EXPECT_EQ(step_f16(h(0.0f), {hb(0x0001)}, {h(1.5f)}).bits(), 0x0002);
  // 2^-12 * 2^-13 = 2^-25 is exactly half the smallest subnormal: the tie
  // rounds to even, i.e. +0.
  EXPECT_EQ(step_f16(h(0.0f), {hb(0x0C00)}, {hb(0x0800)}).bits(), 0x0000);
}

TEST(NumericsVectors, F32SubnormalAccumulatorParticipatesExactly) {
  // c is the minimum binary32 subnormal (2^-149); the product is
  // 2^-24 * 2^-24 = 2^-48. The sum 2^-48 + 2^-149 truncates (RZ) back to
  // 2^-48: the subnormal took part and was dropped by rounding, not by an
  // input flush.
  const float min_sub = std::bit_cast<float>(std::uint32_t{1});
  EXPECT_EQ(step_f32(min_sub, {hb(0x0001)}, {hb(0x0001)}), 0x1.0p-48f);
  // With c = -2^-149 the exact sum is just below 2^-48 and RZ must return
  // the predecessor of 2^-48 — the subnormal's full 2^-149 weight decides
  // the rounding.
  EXPECT_EQ(step_f32(-min_sub, {hb(0x0001)}, {hb(0x0001)}),
            std::nextafterf(0x1.0p-48f, 0.0f));
  // A subnormal step result is returned exactly (n = 0: the step is just a
  // re-rounding of c, which is already representable).
  EXPECT_EQ(f32_bits(step_f32(min_sub, {}, {})), 1u);
}

TEST(NumericsVectors, NanInputsCanonicalize) {
  // NaN payloads are NOT propagated: any NaN operand yields the canonical
  // quiet NaN of the output type.
  EXPECT_EQ(f32_bits(step_f32(0.0f, {hb(0x7C01)}, {h(1.0f)})), 0x7FC00000u);
  EXPECT_EQ(f32_bits(step_f32(0.0f, {hb(0xFFFF)}, {h(1.0f)})), 0x7FC00000u);
  EXPECT_EQ(step_f16(h(0.0f), {hb(0x7C01)}, {h(1.0f)}).bits(), 0x7E00);
  // NaN in the accumulator canonicalizes too.
  const float qnan_payload = std::bit_cast<float>(0x7F800001u + 0x1234u);
  EXPECT_EQ(f32_bits(step_f32(qnan_payload, {h(1.0f)}, {h(1.0f)})), 0x7FC00000u);
  EXPECT_EQ(step_f16(hb(0xFE00), {h(1.0f)}, {h(1.0f)}).bits(), 0x7E00);
}

TEST(NumericsVectors, InfinityRules) {
  const half pinf = hb(0x7C00), ninf = hb(0xFC00);
  // inf * 0 is invalid -> canonical qNaN.
  EXPECT_EQ(f32_bits(step_f32(0.0f, {pinf}, {h(0.0f)})), 0x7FC00000u);
  EXPECT_EQ(step_f16(h(0.0f), {pinf}, {h(0.0f)}).bits(), 0x7E00);
  // Opposing infinite products -> qNaN.
  EXPECT_EQ(f32_bits(step_f32(0.0f, {pinf, pinf}, {h(1.0f), h(-1.0f)})), 0x7FC00000u);
  // A single-signed infinity dominates any finite accumulator.
  EXPECT_EQ(f32_bits(step_f32(-65000.0f, {pinf}, {h(2.0f)})), 0x7F800000u);
  EXPECT_EQ(f32_bits(step_f32(65000.0f, {ninf}, {h(2.0f)})), 0xFF800000u);
  EXPECT_EQ(step_f16(h(-1000.0f), {pinf}, {h(2.0f)}).bits(), 0x7C00);
  // Infinite accumulator propagates through finite products.
  const float finf = std::bit_cast<float>(0x7F800000u);
  EXPECT_EQ(f32_bits(step_f32(finf, {h(-3.0f)}, {h(3.0f)})), 0x7F800000u);
  // ...and cancels against the opposite-signed infinite product.
  EXPECT_EQ(f32_bits(step_f32(finf, {ninf}, {h(1.0f)})), 0x7FC00000u);
}

TEST(NumericsVectors, RzNeverOverflowsToInfinity) {
  // FLT_MAX plus four maximal FP16 products (4 * 65504^2 ~ 1.7e10) exceeds
  // FLT_MAX but is far below the next representable magnitude: RZ truncates
  // back to the maximum finite value. The bit-accurate F32 path can never
  // round a finite sum up to infinity.
  const half big = hb(0x7BFF);  // 65504
  const float r = step_f32(FLT_MAX, {big, big, big, big}, {big, big, big, big});
  EXPECT_EQ(f32_bits(r), 0x7F7FFFFFu);
}

TEST(NumericsVectors, F16OverflowRoundsToInfinity) {
  // 65504 + 32*32 = 66528 >= 65520 (the RNE overflow threshold): infinity.
  EXPECT_EQ(step_f16(hb(0x7BFF), {h(32.0f)}, {h(32.0f)}).bits(), 0x7C00);
  EXPECT_EQ(step_f16(hb(0xFBFF), {h(-32.0f)}, {h(32.0f)}).bits(), 0xFC00);
  // 65504 + 2*4 = 65512 < 65520: rounds back down to the maximum finite.
  EXPECT_EQ(step_f16(hb(0x7BFF), {h(2.0f)}, {h(4.0f)}).bits(), 0x7BFF);
}

TEST(NumericsVectors, SignedZeroRules) {
  // All-negative-zero terms produce -0 (IEEE: (-0) + (-0) = -0)...
  EXPECT_EQ(step_f16(hb(0x8000), {hb(0x8000)}, {h(1.0f)}).bits(), 0x8000);
  EXPECT_EQ(f32_bits(step_f32(-0.0f, {hb(0x8000)}, {h(1.0f)})), 0x80000000u);
  // ...while any positive zero in the mix gives +0.
  EXPECT_EQ(step_f16(h(0.0f), {hb(0x8000)}, {h(1.0f)}).bits(), 0x0000);
  // Exact cancellation of nonzero terms is +0 under both RZ and RNE.
  EXPECT_EQ(f32_bits(step_f32(-0x1.0p-48f, {hb(0x0001)}, {hb(0x0001)})), 0u);
  EXPECT_EQ(step_f16(h(-2.0f), {h(1.0f)}, {h(2.0f)}).bits(), 0x0000);
}

// ---------------------------------------------------------------------------
// 2. Properties against a long-double oracle.
// ---------------------------------------------------------------------------

/// Round-toward-zero long double -> binary32, valid when |x| is within the
/// finite float range (the property tests keep it there). static_cast rounds
/// to nearest, so step back one ulp whenever the cast moved away from zero.
float rz32(long double x) {
  auto f = static_cast<float>(x);
  if (std::fabs(static_cast<long double>(f)) > std::fabs(x)) {
    f = std::nextafterf(f, 0.0f);
  }
  return f;
}

/// Nearest-even long double -> binary16 via exact quantum snapping, same
/// construction as test_half.cpp's float reference.
std::uint16_t rne16(long double x) {
  const std::uint16_t sign = x < 0.0L || (x == 0.0L && std::signbit(x)) ? 0x8000u : 0u;
  const long double mag = std::fabs(x);
  if (mag == 0.0L) return sign;
  const int e = std::max(std::ilogbl(mag), -14);
  const long double quantum = std::ldexp(1.0L, e - 10);
  const long double r = std::nearbyintl(mag / quantum) * quantum;
  if (r == 0.0L) return sign;
  if (r >= 65520.0L) return sign | 0x7C00u;
  if (r < std::ldexp(1.0L, -14)) {
    return sign | static_cast<std::uint16_t>(r / std::ldexp(1.0L, -24));
  }
  const int re = std::ilogbl(r);
  const auto mant = static_cast<std::uint16_t>(r / std::ldexp(1.0L, re - 10));
  return sign | static_cast<std::uint16_t>((re + 15) << 10) |
         static_cast<std::uint16_t>(mant - 1024u);
}

/// Random half in [0.25, 4): products land in [2^-4, 16], so a 5-term fused
/// sum spans < 64 bits of significand and the long-double sum is EXACT.
half narrow_half(Rng& rng, bool allow_negative) {
  float f = rng.next_float(0.25f, 4.0f);
  if (allow_negative && rng.next_below(2) == 0) f = -f;
  return half(f);
}

TEST(NumericsProperties, StepMatchesLongDoubleOracleExactly) {
  Rng rng(7001);
  for (int trial = 0; trial < 20000; ++trial) {
    const auto c32 = half(rng.next_float(-4.0f, 4.0f)).to_float();
    half a[4], b[4];
    long double exact = c32;
    for (int i = 0; i < 4; ++i) {
      a[i] = narrow_half(rng, true);
      b[i] = narrow_half(rng, true);
      exact += static_cast<long double>(a[i].to_float()) *
               static_cast<long double>(b[i].to_float());
    }
    ASSERT_EQ(f32_bits(fdp_step_f32(c32, a, b, 4)), f32_bits(rz32(exact)))
        << "trial " << trial;
    ASSERT_EQ(fdp_step_f16(half(c32), a, b, 4).bits(), rne16(exact))
        << "trial " << trial;
  }
}

TEST(NumericsProperties, PermutationWithinStepInvariant) {
  Rng rng(7002);
  for (int trial = 0; trial < 2000; ++trial) {
    half a[4], b[4];
    for (int i = 0; i < 4; ++i) {
      a[i] = half(rng.next_float(-8.0f, 8.0f));
      b[i] = half(rng.next_float(-8.0f, 8.0f));
    }
    const float c = rng.next_float(-8.0f, 8.0f);
    const float base32 = fdp_step_f32(c, a, b, 4);
    const std::uint16_t base16 = fdp_step_f16(half(c), a, b, 4).bits();
    int idx[4] = {0, 1, 2, 3};
    // All 24 permutations of the (a[i], b[i]) pairs.
    std::sort(idx, idx + 4);
    do {
      half pa[4], pb[4];
      for (int i = 0; i < 4; ++i) {
        pa[i] = a[idx[i]];
        pb[i] = b[idx[i]];
      }
      ASSERT_EQ(f32_bits(fdp_step_f32(c, pa, pb, 4)), f32_bits(base32));
      ASSERT_EQ(fdp_step_f16(half(c), pa, pb, 4).bits(), base16);
    } while (std::next_permutation(idx, idx + 4));
  }
}

TEST(NumericsProperties, MonotoneInEachOperand) {
  // With positive b[i], bumping a[i] up one half-ulp can never decrease the
  // step result: the exact sum is monotone and both RZ and RNE are monotone
  // roundings.
  Rng rng(7003);
  for (int trial = 0; trial < 5000; ++trial) {
    half a[4], b[4];
    for (int i = 0; i < 4; ++i) {
      a[i] = narrow_half(rng, true);
      b[i] = narrow_half(rng, false);  // strictly positive
    }
    const float c = half(rng.next_float(-16.0f, 16.0f)).to_float();
    const float base = fdp_step_f32(c, a, b, 4);
    const half base16 = fdp_step_f16(half(c), a, b, 4);
    const int i = static_cast<int>(rng.next_below(4));
    // Next representable half above a[i] (away from -inf): for negative
    // values the bit pattern decreases.
    const std::uint16_t bits = a[i].bits();
    a[i] = half::from_bits(static_cast<std::uint16_t>(
        a[i].signbit() ? bits - 1 : bits + 1));
    ASSERT_GE(fdp_step_f32(c, a, b, 4), base) << "trial " << trial;
    ASSERT_GE(fdp_step_f16(half(c), a, b, 4).to_float(), base16.to_float())
        << "trial " << trial;
  }
}

TEST(NumericsProperties, F32StepErrorBelowOneUlp) {
  // RZ error is strictly below 1 ulp of the result, toward zero.
  Rng rng(7004);
  for (int trial = 0; trial < 10000; ++trial) {
    half a[4], b[4];
    long double exact = 0.0L;
    const float c = half(rng.next_float(-2.0f, 2.0f)).to_float();
    exact += c;
    for (int i = 0; i < 4; ++i) {
      a[i] = narrow_half(rng, true);
      b[i] = narrow_half(rng, true);
      exact += static_cast<long double>(a[i].to_float()) *
               static_cast<long double>(b[i].to_float());
    }
    const float r = fdp_step_f32(c, a, b, 4);
    ASSERT_LE(std::fabs(static_cast<long double>(r)), std::fabs(exact));
    const float ulp = std::ldexp(1.0f, std::max(std::ilogb(r == 0.0f ? exact : r), -126) - 23);
    ASSERT_LT(std::fabs(static_cast<long double>(r) - exact), ulp) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// 3. Matrix level: idealized copy, golden curves, executor e2e.
// ---------------------------------------------------------------------------

TEST(NumericsMatrix, IdealizedCopyMatchesCoreReferenceBitwise) {
  // gemm_idealized_f16 is a dependency-layering copy of core::gemm_ref_tc;
  // they must agree bitwise, including on a non-multiple-of-8 k tail.
  Rng rng(8001);
  for (const std::size_t k : {8u, 72u, 129u}) {
    HalfMatrix a(48, k), bt(40, k);
    a.randomize(rng, -2.0f, 2.0f);
    bt.randomize(rng, -2.0f, 2.0f);
    const HalfMatrix ours = gemm_idealized_f16(a, bt);
    const HalfMatrix ref = core::gemm_ref_tc(a, bt);
    ASSERT_EQ(ours.rows(), ref.rows());
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < ours.size(); ++i) {
      mismatches += ours.data()[i].bits() != ref.data()[i].bits() ? 1 : 0;
    }
    EXPECT_EQ(mismatches, 0u) << "k=" << k;
  }
}

TEST(NumericsMatrix, GoldenErrorCurves) {
  // Golden fixture: default CurveOptions (64 x 64, k = 64..1024, seed 1).
  // The engine is pure integer arithmetic and the references are IEEE
  // float/double, so these values are deterministic; the tolerance only
  // absorbs cross-platform libm noise in the mean reduction.
  const std::vector<ErrorPoint> pts = error_curves(CurveOptions{});
  ASSERT_EQ(pts.size(), 5u);
  struct Expect {
    std::size_t k;
    double ideal_max, ideal_mean, f16_max, f16_mean, f32_max, f32_mean;
  };
  const Expect want[] = {
      {64, 0.0010898792651602184, 0.0002948357286554726, 0.0019457886667466986,
       0.0003891772794782199, 6.094550168832144e-07, 3.3404411770312046e-07},
      {128, 0.001638972195518843, 0.0003833157047246195, 0.00227714954875734,
       0.0005252729646425997, 9.89195166725555e-07, 6.609170732987556e-07},
      {256, 0.002863860817933199, 0.0005227526406719382, 0.0031677977637762493,
       0.0007228361688871739, 1.820035376847275e-06, 1.313838314796215e-06},
      {512, 0.0036443573716600716, 0.0007134366827181125, 0.004748096294937227,
       0.0010044739335923853, 3.2941370152596313e-06, 2.5904907696074987e-06},
      {1024, 0.004520416764116547, 0.0009911726410547358, 0.0061428098778989046,
       0.001414562645113243, 6.003449354852573e-06, 5.158188169862526e-06},
  };
  for (std::size_t i = 0; i < pts.size(); ++i) {
    SCOPED_TRACE("k=" + std::to_string(want[i].k));
    EXPECT_EQ(pts[i].k, want[i].k);
    const auto near = [](double got, double exp) {
      EXPECT_NEAR(got, exp, std::fabs(exp) * 1e-9 + 1e-30);
    };
    near(pts[i].idealized_f16.max_rel, want[i].ideal_max);
    near(pts[i].idealized_f16.mean_rel, want[i].ideal_mean);
    near(pts[i].bitacc_f16.max_rel, want[i].f16_max);
    near(pts[i].bitacc_f16.mean_rel, want[i].f16_mean);
    near(pts[i].bitacc_f32.max_rel, want[i].f32_max);
    near(pts[i].bitacc_f32.mean_rel, want[i].f32_mean);
  }
  // The shape of the curves is the headline result: FP16 accumulation error
  // grows with k; FP32 accumulation stays two-plus orders of magnitude
  // lower at every point.
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GT(pts[i].bitacc_f16.mean_rel, pts[i - 1].bitacc_f16.mean_rel);
  }
  for (const auto& p : pts) {
    EXPECT_LT(p.bitacc_f32.mean_rel * 100.0, p.bitacc_f16.mean_rel);
    // The idealized single-rounding model under-reports FP16-accumulate
    // error but stays in the same decade.
    EXPECT_GT(p.idealized_f16.mean_rel * 3.0, p.bitacc_f16.mean_rel);
  }
}

/// Runs the full HGEMM kernel through the functional executor in the given
/// mode and compares C bitwise against a host reference.
void expect_executor_matches(const core::HgemmConfig& base, std::size_t m, std::size_t n,
                             std::size_t k, NumericsMode mode, const HalfMatrix& want,
                             std::uint64_t seed) {
  core::HgemmConfig cfg = base;
  cfg.numerics = mode;
  Rng rng(seed);
  HalfMatrix a(m, k), bt(n, k);
  a.randomize(rng, -1.0f, 1.0f);
  bt.randomize(rng, -1.0f, 1.0f);
  driver::Device dev(device::rtx2070());
  const HalfMatrix got = core::run_hgemm(dev, a, bt, cfg);
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    mismatches += got.data()[i].bits() != want.data()[i].bits() ? 1 : 0;
  }
  EXPECT_EQ(mismatches, 0u) << cfg.name() << " mode=" << numerics_mode_name(mode);
}

TEST(NumericsExecutor, BitAccurateModeMatchesEngineBitwise) {
  // The kernel chains HMMA.1688 through a register accumulator in k order,
  // so the executor in kBitAccurate must reproduce gemm_bitacc_f16 exactly —
  // for ANY kernel config, since blocking changes the schedule but not the
  // per-element accumulation chain.
  const std::size_t k = 64;
  Rng rng(9001);
  HalfMatrix a(256, k), bt(256, k);
  a.randomize(rng, -1.0f, 1.0f);
  bt.randomize(rng, -1.0f, 1.0f);
  const HalfMatrix want = gemm_bitacc_f16(a, bt);

  driver::Device dev(device::rtx2070());
  core::HgemmConfig cfg = core::HgemmConfig::optimized();
  cfg.numerics = NumericsMode::kBitAccurate;
  const HalfMatrix got = core::run_hgemm(dev, a, bt, cfg);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    mismatches += got.data()[i].bits() != want.data()[i].bits() ? 1 : 0;
  }
  EXPECT_EQ(mismatches, 0u) << "optimized";
}

TEST(NumericsExecutor, BitAccurateModeIsConfigInvariant) {
  const std::size_t k = 128;
  Rng rng(9002);
  HalfMatrix a(128, k), bt(128, k);
  a.randomize(rng, -1.0f, 1.0f);
  bt.randomize(rng, -1.0f, 1.0f);
  const HalfMatrix want = gemm_bitacc_f16(a, bt);
  expect_executor_matches(core::HgemmConfig::cublas_like(), 128, 128, k,
                          NumericsMode::kBitAccurate, want, 9002);
}

TEST(NumericsExecutor, IdealizedModeMatchesHistoricReference) {
  const std::size_t k = 64;
  Rng rng(9003);
  HalfMatrix a(256, k), bt(256, k);
  a.randomize(rng, -1.0f, 1.0f);
  bt.randomize(rng, -1.0f, 1.0f);
  const HalfMatrix want = core::gemm_ref_tc(a, bt);
  expect_executor_matches(core::HgemmConfig::optimized(), 256, 256, k,
                          NumericsMode::kIdealized, want, 9003);
}

TEST(NumericsExecutor, ModesActuallyDiffer) {
  // Sanity that the plumbing switches semantics at all: on random data the
  // two modes must disagree on at least one output bit pattern.
  const std::size_t k = 64;
  Rng rng(9004);
  HalfMatrix a(256, k), bt(256, k);
  a.randomize(rng, -1.0f, 1.0f);
  bt.randomize(rng, -1.0f, 1.0f);
  const HalfMatrix ideal = gemm_idealized_f16(a, bt);
  const HalfMatrix bitacc = gemm_bitacc_f16(a, bt);
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < ideal.size(); ++i) {
    diffs += ideal.data()[i].bits() != bitacc.data()[i].bits() ? 1 : 0;
  }
  EXPECT_GT(diffs, 0u);
}

}  // namespace
}  // namespace tc::numerics
