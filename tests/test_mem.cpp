// Unit tests for the memory system: banked shared memory, sector caches,
// coalescer, token buckets, paged global memory.
#include <gtest/gtest.h>

#include <array>
#include <numeric>

#include "common/error.hpp"
#include "mem/banked_smem.hpp"
#include "mem/coalescer.hpp"
#include "mem/global_mem.hpp"
#include "mem/sector_cache.hpp"
#include "mem/token_bucket.hpp"

namespace tc::mem {
namespace {

std::array<bool, 32> all_active() {
  std::array<bool, 32> a{};
  a.fill(true);
  return a;
}

TEST(BankConflict, LaneLinear32IsConflictFree) {
  std::array<std::uint32_t, 32> addrs{};
  for (int l = 0; l < 32; ++l) addrs[static_cast<std::size_t>(l)] = static_cast<std::uint32_t>(l) * 4;
  const auto active = all_active();
  const auto cost = smem_access_cost(addrs, active, sass::MemWidth::k32, false);
  EXPECT_TRUE(cost.conflict_free());
  EXPECT_EQ(cost.phases, 1);
}

TEST(BankConflict, StrideTwoWordsIsTwoWay) {
  std::array<std::uint32_t, 32> addrs{};
  for (int l = 0; l < 32; ++l) addrs[static_cast<std::size_t>(l)] = static_cast<std::uint32_t>(l) * 8;
  const auto active = all_active();
  const auto cost = smem_access_cost(addrs, active, sass::MemWidth::k32, false);
  EXPECT_DOUBLE_EQ(cost.conflict_factor(), 2.0);
}

TEST(BankConflict, StrideThirtyTwoWordsIsFullSerialization) {
  std::array<std::uint32_t, 32> addrs{};
  for (int l = 0; l < 32; ++l) {
    addrs[static_cast<std::size_t>(l)] = static_cast<std::uint32_t>(l) * 32 * 4;
  }
  const auto active = all_active();
  const auto cost = smem_access_cost(addrs, active, sass::MemWidth::k32, false);
  EXPECT_DOUBLE_EQ(cost.conflict_factor(), 32.0);
}

TEST(BankConflict, BroadcastReadsAreFree) {
  std::array<std::uint32_t, 32> addrs{};  // all lanes read word 0
  const auto active = all_active();
  const auto load = smem_access_cost(addrs, active, sass::MemWidth::k32, false);
  EXPECT_TRUE(load.conflict_free());
  // Stores to the same word serialize instead.
  const auto store = smem_access_cost(addrs, active, sass::MemWidth::k32, true);
  EXPECT_GT(store.conflict_factor(), 1.0);
}

TEST(BankConflict, Width128LaneLinearConflictFree) {
  std::array<std::uint32_t, 32> addrs{};
  for (int l = 0; l < 32; ++l) addrs[static_cast<std::size_t>(l)] = static_cast<std::uint32_t>(l) * 16;
  const auto active = all_active();
  const auto cost = smem_access_cost(addrs, active, sass::MemWidth::k128, false);
  EXPECT_TRUE(cost.conflict_free());
  EXPECT_EQ(cost.phases, 4);
}

TEST(BankConflict, InactiveLanesIgnored) {
  std::array<std::uint32_t, 32> addrs{};
  for (int l = 0; l < 32; ++l) addrs[static_cast<std::size_t>(l)] = 0;  // would conflict as stores
  std::array<bool, 32> active{};
  active[0] = true;  // only one lane
  const auto cost = smem_access_cost(addrs, active, sass::MemWidth::k32, true);
  EXPECT_TRUE(cost.conflict_free());
}

TEST(BankConflict, MisalignedAccessThrows) {
  std::array<std::uint32_t, 32> addrs{};
  addrs[3] = 2;  // not 4-byte aligned
  const auto active = all_active();
  EXPECT_THROW(smem_access_cost(addrs, active, sass::MemWidth::k32, false), Error);
}

TEST(SharedMemory, ReadWriteRoundTrip) {
  SharedMemory smem(1024);
  smem.write_u32(64, 0xDEADBEEF);
  EXPECT_EQ(smem.read_u32(64), 0xDEADBEEF);
  EXPECT_EQ(smem.read_u32(68), 0u);  // untouched is zero
}

TEST(SharedMemory, OutOfRangeThrows) {
  SharedMemory smem(128);
  EXPECT_THROW(smem.read_u32(128), Error);
  EXPECT_THROW(smem.write_u32(126, 1), Error);
}

TEST(GlobalMemory, AllocAlignmentAndGrowth) {
  GlobalMemory g;
  const auto a = g.alloc(100);
  const auto b = g.alloc(100);
  EXPECT_EQ(a % 256, 0u);
  EXPECT_EQ(b % 256, 0u);
  EXPECT_GT(b, a);
}

TEST(GlobalMemory, NullPointerFaults) {
  GlobalMemory g;
  std::uint8_t buf[4];
  EXPECT_THROW(g.read(0, std::span(buf, 4)), Error);
}

TEST(GlobalMemory, SparsePagesStaySparse) {
  GlobalMemory g;
  const auto base = g.alloc(1ull << 30);  // 1 GiB logical
  std::uint8_t v = 42;
  g.write(base, std::span(&v, 1));
  g.write(base + (1u << 29), std::span(&v, 1));
  EXPECT_LE(g.resident_pages(), 2u);  // only touched pages exist
  std::uint8_t out = 0;
  g.read(base + (1u << 29), std::span(&out, 1));
  EXPECT_EQ(out, 42);
  g.read(base + 12345, std::span(&out, 1));
  EXPECT_EQ(out, 0);  // untouched reads as zero
}

TEST(GlobalMemory, CrossPageAccess) {
  GlobalMemory g;
  const auto base = g.alloc(2 * kPageBytes);
  std::vector<std::uint8_t> data(kPageBytes + 100, 0xAB);
  g.write(base + 50, std::span(data.data(), data.size()));
  std::vector<std::uint8_t> out(data.size());
  g.read(base + 50, std::span(out.data(), out.size()));
  EXPECT_EQ(out, data);
}

TEST(GlobalMemory, OutOfMemoryThrows) {
  GlobalMemory g(1 << 20);
  EXPECT_THROW(g.alloc(2 << 20), Error);
}

TEST(SectorCache, HitAfterFill) {
  SectorCache c(4096, 4);
  EXPECT_EQ(c.access(0x1000), HitLevel::kMiss);
  EXPECT_EQ(c.access(0x1000), HitLevel::kHit);
  EXPECT_EQ(c.access(0x1010), HitLevel::kHit);  // same 32B sector
  EXPECT_EQ(c.access(0x1020), HitLevel::kMiss);  // next sector, same line
  EXPECT_EQ(c.access(0x1020), HitLevel::kHit);
}

TEST(SectorCache, LruEviction) {
  SectorCache c(4096, 2);  // 16 sets, 2 ways
  const int sets = c.num_sets();
  const auto set_stride = static_cast<std::uint64_t>(sets) * kLineBytes;
  // Three lines mapping to set 0: third evicts the first.
  EXPECT_EQ(c.access(0 * set_stride), HitLevel::kMiss);
  EXPECT_EQ(c.access(1 * set_stride), HitLevel::kMiss);
  EXPECT_EQ(c.access(2 * set_stride), HitLevel::kMiss);
  EXPECT_FALSE(c.contains(0 * set_stride));
  EXPECT_TRUE(c.contains(1 * set_stride));
  EXPECT_TRUE(c.contains(2 * set_stride));
}

TEST(SectorCache, StatsTrackHitRate) {
  SectorCache c(4096, 4);
  c.access(0);
  c.access(0);
  c.access(0);
  EXPECT_DOUBLE_EQ(c.stats().hit_rate(), 2.0 / 3.0);
}

TEST(Coalescer, FullyCoalescedWarp128) {
  std::array<std::uint32_t, 32> addrs{};
  for (int l = 0; l < 32; ++l) addrs[static_cast<std::size_t>(l)] = static_cast<std::uint32_t>(l) * 16;
  std::array<bool, 32> active{};
  active.fill(true);
  const auto sectors = coalesce_sectors(addrs, active, sass::MemWidth::k128);
  EXPECT_EQ(sectors.size(), 16u);  // 512 B / 32 B
}

TEST(Coalescer, StridedAccessExplodes) {
  std::array<std::uint32_t, 32> addrs{};
  for (int l = 0; l < 32; ++l) {
    addrs[static_cast<std::size_t>(l)] = static_cast<std::uint32_t>(l) * 256;
  }
  std::array<bool, 32> active{};
  active.fill(true);
  const auto sectors = coalesce_sectors(addrs, active, sass::MemWidth::k32);
  EXPECT_EQ(sectors.size(), 32u);  // one sector per lane
}

TEST(Coalescer, DuplicateAddressesMergeAndInactiveSkip) {
  std::array<std::uint32_t, 32> addrs{};  // all lanes load address 0
  std::array<bool, 32> active{};
  active.fill(true);
  active[7] = false;
  const auto sectors = coalesce_sectors(addrs, active, sass::MemWidth::k32);
  EXPECT_EQ(sectors.size(), 1u);
}

TEST(TokenBucket, RateLimitsOverTime) {
  TokenBucket tb(8.0, 1.0);  // 8 B/cycle, tiny burst (floored to 1024)
  // Drain the initial burst credit.
  while (tb.try_consume(1024.0)) {
  }
  double consumed = 0;
  for (int cycle = 0; cycle < 1000; ++cycle) {
    tb.tick();
    if (tb.try_consume(32.0)) consumed += 32.0;
  }
  EXPECT_NEAR(consumed / 1000.0, 8.0, 1.0);  // ~rate
}

TEST(TokenBucket, RefundRestoresCredit) {
  TokenBucket tb(1.0);
  ASSERT_TRUE(tb.try_consume(512.0));
  const double before = tb.total_consumed();
  tb.refund(512.0);
  EXPECT_DOUBLE_EQ(tb.total_consumed(), before - 512.0);
  EXPECT_TRUE(tb.try_consume(512.0));
}

TEST(TokenBucket, CyclesUntilEstimates) {
  TokenBucket tb(4.0);
  while (tb.try_consume(256.0)) {
  }
  const double bytes = 40.0;
  const double wait = tb.cycles_until(bytes);
  EXPECT_GT(wait, 0.0);
  tb.tick(wait);
  EXPECT_TRUE(tb.try_consume(bytes));
}

}  // namespace
}  // namespace tc::mem
