// Unit tests for the static scoreboard hazard detector (src/check/hazard.*):
// seeded races must be caught with the right severity, protected schedules
// must be clean, and every built-in kernel must analyze error-free.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/hazard.hpp"
#include "core/config.hpp"
#include "core/kernel_gen.hpp"
#include "sass/builder.hpp"
#include "sim/pipes.hpp"

namespace tc::check {
namespace {

using sass::Instruction;
using sass::KernelBuilder;
using sass::MemWidth;
using sass::Opcode;
using sass::Pred;
using sass::Reg;

// Small deterministic latency table: FADD takes 6 cycles, everything else 4.
// branch_redirect is 1 so loop tests control the back-edge gap exactly.
int test_latency(const Instruction& inst, int /*dreg_offset*/) {
  return inst.op == Opcode::kFadd ? 6 : 4;
}

LatencyModel test_model() { return {&test_latency, /*branch_redirect=*/1, /*predicate_latency=*/6}; }

int count_kind(const std::vector<sass::Diag>& diags, const std::string& kind) {
  int n = 0;
  for (const auto& d : diags) n += d.kind == kind ? 1 : 0;
  return n;
}

TEST(Hazard, SeededMissingWriteBarrierRaceIsCaught) {
  // The acceptance case: a load consumed without waiting on its write
  // barrier. Stall counts never cover variable-latency loads, so this is a
  // true race no matter how large the stall is.
  KernelBuilder b("race");
  b.ldg(MemWidth::k32, Reg{8}, Reg{4}).write_bar(0).stall(15);
  b.iadd3(Reg{9}, Reg{8}, Reg{8}).stall(4);
  b.exit();
  const auto diags = find_hazards(b.finalize(), test_model());
  ASSERT_GE(sass::count_errors(diags), 1);
  EXPECT_EQ(count_kind(diags, "raw-load"), 1);
  EXPECT_EQ(diags[0].producer_pc, 0);
  EXPECT_EQ(diags[0].consumer_pc, 1);
}

TEST(Hazard, WaitOnWriteBarrierProtectsTheLoad) {
  KernelBuilder b("race_fixed");
  b.ldg(MemWidth::k32, Reg{8}, Reg{4}).write_bar(0).stall(1);
  b.iadd3(Reg{9}, Reg{8}, Reg{8}).wait_on(0).stall(4);
  b.exit();
  EXPECT_EQ(sass::count_errors(find_hazards(b.finalize(), test_model())), 0);
}

TEST(Hazard, LoadWithoutAnyWriteBarrierIsCaught) {
  KernelBuilder b("no_bar");
  b.ldg(MemWidth::k64, Reg{8}, Reg{4}).stall(15);
  b.mov(Reg{10}, Reg{9}).stall(4);  // reads the high half of the pair
  b.exit();
  const auto diags = find_hazards(b.finalize(), test_model());
  EXPECT_EQ(count_kind(diags, "raw-load"), 1);
  ASSERT_GE(sass::count_errors(diags), 1);
}

TEST(Hazard, RawOnFixedLatencyProducer) {
  KernelBuilder b("raw_fixed");
  b.fadd(Reg{8}, Reg{4}, Reg{5}).stall(1);  // result ready after 6
  b.mov(Reg{9}, Reg{8}).stall(4);
  b.exit();
  const auto diags = find_hazards(b.finalize(), test_model());
  EXPECT_EQ(count_kind(diags, "raw-fixed"), 1);

  KernelBuilder ok("raw_fixed_ok");
  ok.fadd(Reg{8}, Reg{4}, Reg{5}).stall(6);
  ok.mov(Reg{9}, Reg{8}).stall(4);
  ok.exit();
  EXPECT_EQ(sass::count_errors(find_hazards(ok.finalize(), test_model())), 0);
}

TEST(Hazard, SplitMmaWritebackHighHalfNeedsMoreTime) {
  // HMMA.1688.F32 commits D+0/D+1 after kMmaLatencyLow cycles and D+2/D+3
  // after kMmaLatencyHigh. A stall covering only the low half leaves reads
  // of the high half racy.
  KernelBuilder low("mma_low");
  low.hmma_1688_f32(Reg{8}, Reg{16}, Reg{20}, Reg{8}).stall(static_cast<int>(sim::kMmaLatencyLow));
  low.mov(Reg{12}, Reg{8}).stall(4);  // low half: committed exactly at issue
  low.exit();
  EXPECT_EQ(sass::count_errors(find_hazards(low.finalize())), 0);

  KernelBuilder high("mma_high");
  high.hmma_1688_f32(Reg{8}, Reg{16}, Reg{20}, Reg{8}).stall(static_cast<int>(sim::kMmaLatencyLow));
  high.mov(Reg{12}, Reg{11}).stall(4);  // high half: 4 cycles short
  high.exit();
  const auto diags = find_hazards(high.finalize());
  EXPECT_EQ(count_kind(diags, "raw-fixed"), 1);
}

TEST(Hazard, WawAgainstInFlightLoad) {
  // Overwriting the destination of an in-flight load: the late writeback
  // would bury the younger MOV value.
  KernelBuilder b("waw_load");
  b.ldg(MemWidth::k32, Reg{8}, Reg{4}).write_bar(0).stall(15);
  b.mov(Reg{8}, Reg{5}).stall(4);
  b.exit();
  const auto diags = find_hazards(b.finalize(), test_model());
  EXPECT_EQ(count_kind(diags, "waw-load"), 1);
  ASSERT_GE(sass::count_errors(diags), 1);
}

TEST(Hazard, WarOnStoreSourcesIsWarningOnly) {
  // tc::sim captures store operands at issue, so overwriting them before the
  // read barrier clears cannot corrupt the simulation — but it would race on
  // silicon, so the detector warns without failing the program.
  KernelBuilder b("war_mio");
  b.stg(MemWidth::k32, Reg{4}, Reg{8}).read_bar(1).stall(1);
  b.mov(Reg{8}, Reg{5}).stall(4);
  b.exit();
  const auto diags = find_hazards(b.finalize(), test_model());
  EXPECT_EQ(count_kind(diags, "war-mio"), 1);
  EXPECT_EQ(sass::count_errors(diags), 0);
}

TEST(Hazard, RedundantWaitOnClearBarrierIsWarning) {
  KernelBuilder b("redundant");
  b.ldg(MemWidth::k32, Reg{8}, Reg{4}).write_bar(0).stall(1);
  b.nop().wait_on(0).stall(1);
  b.mov(Reg{9}, Reg{8}).wait_on(0).stall(4);  // B0 is provably clear already
  b.exit();
  const auto diags = find_hazards(b.finalize(), test_model());
  EXPECT_EQ(count_kind(diags, "redundant-wait"), 1);
  EXPECT_EQ(sass::count_errors(diags), 0);
}

TEST(Hazard, PredicateConsumedTooEarly) {
  KernelBuilder b("pred_raw");
  b.isetp_imm(Pred{0}, sass::CmpOp::kLt, Reg{4}, 7).stall(1);
  b.mov(Reg{8}, Reg{5}).pred(Pred{0}).stall(4);
  b.exit();
  const auto diags = find_hazards(b.finalize(), test_model());
  EXPECT_EQ(count_kind(diags, "raw-pred"), 1);

  KernelBuilder ok("pred_ok");
  ok.isetp_imm(Pred{0}, sass::CmpOp::kLt, Reg{4}, 7).stall(6);
  ok.mov(Reg{8}, Reg{5}).pred(Pred{0}).stall(4);
  ok.exit();
  EXPECT_EQ(sass::count_errors(find_hazards(ok.finalize(), test_model())), 0);
}

TEST(Hazard, LoopCarriedRawAcrossBackEdge) {
  // Self-loop: FADD's 6-cycle result is consumed by itself on the next trip.
  // With branch_redirect = 1 the loop takes 2 cycles — a true race that only
  // an unrolled analysis of the back edge can see.
  KernelBuilder b("loop_raw");
  b.label("top");
  b.fadd(Reg{8}, Reg{8}, Reg{5}).stall(1);
  b.bra("top").stall(1);
  b.exit();
  const auto diags = find_hazards(b.finalize(), test_model());
  EXPECT_GE(count_kind(diags, "raw-fixed"), 1);

  // A covering stall makes the same loop clean (loop length 7 >= 6).
  KernelBuilder ok("loop_ok");
  ok.label("top");
  ok.fadd(Reg{8}, Reg{8}, Reg{5}).stall(6);
  ok.bra("top").stall(1);
  ok.exit();
  EXPECT_EQ(sass::count_errors(find_hazards(ok.finalize(), test_model())), 0);
}

TEST(Hazard, BuiltinKernelsAnalyzeErrorFree) {
  // The detector must agree with the timed simulator that the shipped
  // schedules are race-free, using the simulator's own latency table.
  struct Target {
    std::string name;
    sass::Program prog;
  };
  const std::vector<Target> targets = {
      {"hgemm_optimized",
       core::hgemm_kernel(core::HgemmConfig::optimized(), {256, 256, 64})},
      {"hgemm_cublas_like",
       core::hgemm_kernel(core::HgemmConfig::cublas_like(), {128, 128, 128})},
      {"wmma_naive", core::wmma_naive_kernel({16, 128, 16})},
  };
  for (const auto& t : targets) {
    const auto diags = find_hazards(t.prog);
    EXPECT_EQ(sass::count_errors(diags), 0) << t.name;
    for (const auto& d : diags) {
      if (d.severity == sass::DiagSeverity::kError) {
        ADD_FAILURE() << t.name << ": " << sass::format(d);
      }
    }
  }
}

}  // namespace
}  // namespace tc::check
