// tc::op regression suite (`op_smoke` CTest label): GemmOp lowering shapes
// (fusion legality, split-K main+reduce plans, batched z-planes), op-level
// execution against the bit-exact host reference, op-shaped serving
// (batch-axis requests, dtype gating, the new metrics distributions), the
// tuning-cache split_k/dtype defaulted-field contract, the split-K tuner
// acceptance (a split-K config must beat the best single-pass config on a
// skinny-grid deep-K shape on both device specs), and the `tcgemm_cli op`
// tc-cli-v1 contract.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json_parse.hpp"
#include "common/rng.hpp"
#include "core/config.hpp"
#include "device/spec.hpp"
#include "driver/device.hpp"
#include "op/op.hpp"
#include "serve/serve.hpp"
#include "tune/cache.hpp"
#include "tune/tune.hpp"

namespace tc {
namespace {

// ---------------------------------------------------------------------------
// Lowering shapes.
// ---------------------------------------------------------------------------

TEST(OpLowering, TrivialOpIsTheClassicSingleKernelLaunch) {
  op::GemmOp gemm;
  gemm.shape = {200, 200, 60};
  const auto cfg = core::HgemmConfig::optimized();
  const op::OpPlan plan = op::lower(gemm, cfg);

  EXPECT_TRUE(plan.fused);
  EXPECT_EQ(plan.workspace_elems, 0u);
  ASSERT_EQ(plan.launches.size(), 1u);
  const op::PlannedLaunch& l = plan.launches.front();
  EXPECT_EQ(l.role, op::LaunchRole::kMain);
  EXPECT_EQ(l.grid_z, 1u);
  // Byte-identical to the classic run_hgemm kernel: same name, same code.
  const sass::Program classic = core::hgemm_kernel(cfg, plan.contract);
  EXPECT_EQ(l.program.name, classic.name);
  EXPECT_EQ(l.program.disassemble(), classic.disassemble());
}

TEST(OpLowering, BatchedZPlanesShareOneProgram) {
  op::GemmOp two;
  two.shape = {256, 256, 64};
  two.batch.count = 2;
  op::GemmOp five = two;
  five.batch.count = 5;
  const auto cfg = core::HgemmConfig::optimized();
  const op::OpPlan p2 = op::lower(two, cfg);
  const op::OpPlan p5 = op::lower(five, cfg);

  ASSERT_EQ(p2.launches.size(), 1u);
  EXPECT_EQ(p2.launches[0].grid_z, 2u);
  EXPECT_EQ(p5.launches[0].grid_z, 5u);
  // The batch count rides in grid_z only — it is never baked into the SASS,
  // so every batch size launches the identical program.
  EXPECT_EQ(p2.launches[0].program.disassemble(), p5.launches[0].program.disassemble());
  EXPECT_NE(p2.launches[0].program.name.find("_bz"), std::string::npos);
}

TEST(OpLowering, SplitKLowersToMainPlusReduce) {
  op::GemmOp gemm;
  gemm.shape = {256, 256, 256};
  gemm.split_k = 4;
  const auto cfg = core::HgemmConfig::optimized();
  const op::OpPlan plan = op::lower(gemm, cfg);

  EXPECT_FALSE(plan.fused);
  ASSERT_EQ(plan.launches.size(), 2u);
  const op::PlannedLaunch& main = plan.launches[0];
  const op::PlannedLaunch& reduce = plan.launches[1];
  EXPECT_EQ(main.role, op::LaunchRole::kMain);
  EXPECT_EQ(reduce.role, op::LaunchRole::kReduce);
  EXPECT_EQ(main.grid_z, 4u);  // one z plane per K slice
  EXPECT_NE(main.program.name.find("_sk4"), std::string::npos);
  // Slices tile the padded K exactly.
  EXPECT_EQ(plan.slice_k * 4, plan.contract.k);
  // Workspace: one m x n half plane per slice.
  EXPECT_EQ(plan.workspace_elems, 4u * plan.contract.m * plan.contract.n);
  EXPECT_EQ(reduce.grid_y, static_cast<std::uint32_t>(plan.contract.m));
  EXPECT_EQ(reduce.grid_z, 1u);
}

TEST(OpLowering, BiasForcesTheReducePassEvenWithoutSplitK) {
  op::GemmOp gemm;
  gemm.shape = {256, 256, 64};
  gemm.epilogue.bias = true;
  EXPECT_TRUE(gemm.epilogue.fusible() == false);
  const op::OpPlan plan = op::lower(gemm, core::HgemmConfig::optimized());
  EXPECT_FALSE(plan.fused);
  ASSERT_EQ(plan.launches.size(), 2u);
  // parts == 1: the reduce kernel is a pure epilogue pass over one plane.
  EXPECT_EQ(plan.workspace_elems, plan.contract.m * plan.contract.n);
}

TEST(OpLowering, FusibleEpilogueRidesTheMainTail) {
  op::GemmOp gemm;
  gemm.shape = {256, 256, 64};
  gemm.epilogue = {2.0f, 1.0f, false, core::Activation::kRelu};
  const op::OpPlan plan = op::lower(gemm, core::HgemmConfig::optimized());
  EXPECT_TRUE(plan.fused);
  EXPECT_EQ(plan.launches.size(), 1u);
  EXPECT_EQ(plan.workspace_elems, 0u);
}

TEST(OpLowering, MismatchedConfigSplitKThrows) {
  op::GemmOp gemm;
  gemm.shape = {256, 256, 256};
  gemm.split_k = 4;
  auto cfg = core::HgemmConfig::optimized();
  cfg.split_k = 2;  // neither 1 (auto-adopt) nor the op's 4
  EXPECT_THROW((void)op::lower(gemm, cfg), Error);
}

// ---------------------------------------------------------------------------
// Execution: the everything-at-once op against the host reference.
// ---------------------------------------------------------------------------

TEST(OpExecution, StridedBatchedSplitKBiasGeluMatchesReferenceBitwise) {
  op::GemmOp gemm;
  gemm.shape = {100, 100, 72};
  gemm.batch.count = 2;
  gemm.batch.stride_a = 100 * 72 + 48;  // padded user planes
  gemm.batch.stride_b = 100 * 72 + 16;
  gemm.batch.stride_c = 100 * 100 + 32;
  gemm.split_k = 2;
  gemm.epilogue = {0.75f, 0.25f, true, core::Activation::kGelu};
  const auto cfg = core::HgemmConfig::cublas_like();

  Rng rng(77);
  const std::vector<half> a = rng.half_vector(gemm.batch.stride_a + 100 * 72, -0.5f, 0.5f);
  const std::vector<half> bt = rng.half_vector(gemm.batch.stride_b + 100 * 72, -0.5f, 0.5f);
  const std::vector<half> c_in =
      rng.half_vector(gemm.batch.stride_c + 100 * 100, -0.5f, 0.5f);
  const std::vector<half> bias = rng.half_vector(100, -0.5f, 0.5f);
  const op::OpInputs in{a, bt, c_in, bias};

  driver::Device dev(device::rtx2070());
  const std::vector<half> out = op::run_gemm_op(dev, gemm, in, cfg);
  const std::vector<half> ref = op::gemm_op_ref(gemm, in, cfg);
  ASSERT_EQ(out.size(), ref.size());
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    mismatches += out[i].bits() != ref[i].bits() ? 1 : 0;
  }
  EXPECT_EQ(mismatches, 0u);
}

// ---------------------------------------------------------------------------
// Op-shaped serving.
// ---------------------------------------------------------------------------

tune::SearchSpace serve_space() {
  tune::SearchSpace s;
  s.bm = {64, 128};
  s.bn = {64, 128};
  s.bk = {32, 64};
  s.wm = {32, 64};
  s.wn = {32, 64};
  s.layouts = {core::SmemLayout::kPaddedTile};
  s.sts_interleave = {5};
  s.prefetch = {true};
  return s;
}

serve::ServerOptions serve_options() {
  serve::ServerOptions o;
  o.spec = device::rtx2070();
  o.space = serve_space();
  o.tune_budget = 2;
  o.workers = 1;
  o.batch_max = 1;
  o.queue_capacity = 64;
  return o;
}

TEST(OpServe, BatchAxisRequestOutperformsALoopOfSingles) {
  // Four independent 64x64x64 problems: as four plain requests each pass
  // runs one CTA on a whole simulated device; as one batch-4 op request the
  // z planes fill four SMs concurrently, so the worker is busy for less
  // total virtual time.
  std::vector<serve::Request> singles;
  for (int i = 0; i < 4; ++i) {
    singles.push_back({static_cast<std::uint64_t>(i), 0, {64, 64, 64}, 0});
  }
  serve::Server loop_server(serve_options());
  const serve::Metrics loop = loop_server.run(singles);
  ASSERT_EQ(loop.counters.completed, 4u);

  std::vector<serve::Request> batched;
  batched.push_back({0, 0, {64, 64, 64}, 0, 4});
  serve::Server batch_server(serve_options());
  const serve::Metrics one = batch_server.run(batched);
  ASSERT_EQ(one.counters.completed, 1u);

  EXPECT_LT(one.counters.worker_busy_cycles, loop.counters.worker_busy_cycles);
}

TEST(OpServe, MetricsExposeBatchAndBucketDistributions) {
  // 6 requests in one bucket, batch_max 4 -> passes of 4 and 2; plus 2 in a
  // second bucket -> one pass of 2.
  std::vector<serve::Request> reqs;
  for (int i = 0; i < 6; ++i) {
    reqs.push_back({static_cast<std::uint64_t>(i), 0, {64, 64, 64}, 0});
  }
  reqs.push_back({6, 0, {128, 64, 64}, 0});
  reqs.push_back({7, 0, {128, 64, 64}, 0});
  serve::ServerOptions opt = serve_options();
  opt.batch_max = 4;
  serve::Server server(opt);
  const serve::Metrics m = server.run(reqs);
  ASSERT_EQ(m.counters.completed, 8u);

  // Per-request batch-size distribution: 4 requests rode a batch of 4, 4
  // rode a batch of 2 (6-request bucket splits 4+2, second bucket is 2).
  ASSERT_EQ(m.batch_size_hist.size(), 2u);
  EXPECT_EQ(m.batch_size_hist.at(4), 4u);
  EXPECT_EQ(m.batch_size_hist.at(2), 4u);

  // Bucket occupancy, keyed by CacheKey::str().
  ASSERT_EQ(m.bucket_occupancy.size(), 2u);
  const serve::BucketStats& small = m.bucket_occupancy.at("RTX2070:64x64x64");
  EXPECT_EQ(small.requests, 6u);
  EXPECT_EQ(small.batches, 2u);
  const serve::BucketStats& wide = m.bucket_occupancy.at("RTX2070:128x64x64");
  EXPECT_EQ(wide.requests, 2u);
  EXPECT_EQ(wide.batches, 1u);

  // And both land in the metrics JSON.
  std::ostringstream os;
  JsonWriter j(os);
  serve::write_metrics_json(j, m);
  const JsonValue doc = json_parse(os.str());
  ASSERT_TRUE(doc.at("batch_size_hist").is_array());
  EXPECT_EQ(doc.at("batch_size_hist").as_array().size(), 2u);
  const auto& buckets = doc.at("bucket_occupancy").as_array();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].at("bucket").as_string(), "RTX2070:128x64x64");
  EXPECT_EQ(buckets[1].at("bucket").as_string(), "RTX2070:64x64x64");
}

TEST(OpServe, MixedBatchAxisRequestsNeverFuse) {
  // Same bucket, alternating op batch 1 / 2: each run of equal batch is
  // length 1, so nothing fuses even with batch_max 4.
  std::vector<serve::Request> reqs;
  for (int i = 0; i < 6; ++i) {
    reqs.push_back({static_cast<std::uint64_t>(i), 0, {64, 64, 64}, 0, i % 2 == 0 ? 1 : 2});
  }
  serve::ServerOptions opt = serve_options();
  opt.batch_max = 4;
  serve::Server server(opt);
  const serve::Metrics m = server.run(reqs);
  EXPECT_EQ(m.counters.completed, 6u);
  EXPECT_EQ(m.counters.batches, 6u);
}

TEST(OpServe, UnsupportedRequestDtypeIsRejected) {
  serve::Server server(serve_options());
  std::vector<serve::Request> reqs;
  reqs.push_back({0, 0, {64, 64, 64}, 0, 1, "bf16"});
  EXPECT_THROW((void)server.run(reqs), Error);
}

// ---------------------------------------------------------------------------
// Tuning-cache contract: split_k and dtype as defaulted fields, no schema
// bump (tc-tune-cache-v1 stays tc-tune-cache-v1).
// ---------------------------------------------------------------------------

TEST(OpCache, SplitKWinnerRoundTripsThroughTheV1Schema) {
  tune::CacheEntry e;
  e.key = {"RTX2070", 256, 256, 64};
  e.cfg = core::HgemmConfig::optimized();
  e.cfg.split_k = 8;
  e.sim_cycles = 4242;
  e.budget = 2;
  e.seed = 1;
  e.engine = "timed-device";
  ASSERT_EQ(tune::validate_cache_entry(e), "");

  tune::TuneCache cache;
  cache.insert(e);
  tune::CacheLoadStats stats;
  const tune::TuneCache back = tune::TuneCache::from_json(cache.to_json(), &stats);
  EXPECT_EQ(stats.rejected, 0u);
  const tune::CacheEntry* hit = back.find(e.key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cfg.split_k, 8);
  EXPECT_EQ(hit->key.dtype, "f16");
  // The default dtype never marks the display form.
  EXPECT_EQ(hit->key.str(), "RTX2070:256x256x64");
}

TEST(OpCache, LegacyEntriesLoadWithDefaultedSplitKAndDtype) {
  // A pre-split_k / pre-dtype v1 document (the exact shape older builds
  // wrote): both fields must default rather than fail the parse.
  const std::string legacy =
      "{\"schema\":\"tc-tune-cache-v1\",\"entries\":["
      "{\"device\":\"RTX2070\",\"m\":256,\"n\":256,\"k\":64,\"config\":{\"bm\":256,"
      "\"bn\":256,\"bk\":32,\"wm\":128,\"wn\":64,\"wk\":8,\"layout\":\"padded_tile\","
      "\"sts_interleave\":5,\"prefetch\":true},\"sim_cycles\":16090,\"budget\":4,"
      "\"seed\":1,\"engine\":\"timed-device\"}]}\n";
  tune::CacheLoadStats stats;
  const tune::TuneCache cache = tune::TuneCache::from_json(legacy, &stats);
  EXPECT_EQ(stats.loaded, 1u);
  EXPECT_EQ(stats.rejected, 0u) << (stats.diagnostics.empty() ? "" : stats.diagnostics[0]);
  const tune::CacheEntry* e = cache.find({"RTX2070", 256, 256, 64});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->cfg.split_k, 1);
  EXPECT_EQ(e->key.dtype, "f16");
}

TEST(OpCache, NonF16DtypeIsUnservable) {
  tune::CacheEntry e;
  e.key = {"RTX2070", 256, 256, 64, "bf16"};
  e.cfg = core::HgemmConfig::optimized();
  e.engine = "timed-device";
  EXPECT_EQ(e.key.str(), "RTX2070:256x256x64:bf16");  // non-default marks the key
  const std::string diag = tune::validate_cache_entry(e);
  EXPECT_NE(diag.find("unsupported dtype"), std::string::npos) << diag;
  // And distinct dtypes are distinct buckets.
  EXPECT_FALSE(tune::cache_key(device::rtx2070(), {256, 256, 64}, "bf16") ==
               tune::cache_key(device::rtx2070(), {256, 256, 64}));
}

// ---------------------------------------------------------------------------
// Split-K tuner acceptance: on a skinny-grid deep-K shape (one CTA of work
// for the single-pass kernel on a 36+-SM device), a split-K candidate must
// beat the best non-split-K candidate even after paying for the reduction
// pass and the extra kernel launch.
// ---------------------------------------------------------------------------

void expect_split_k_wins(const device::DeviceSpec& spec) {
  tune::SearchSpace space;
  space.bm = {256};
  space.bn = {256};
  space.bk = {32};
  space.wm = {128};
  space.wn = {64};
  space.layouts = {core::SmemLayout::kPaddedTile};
  space.sts_interleave = {5};
  space.prefetch = {true};
  space.split_ks = {1, 8};

  tune::TuneOptions opt;
  opt.shape = {256, 256, 4096};
  opt.budget = 2;  // both candidates run on the timed device
  opt.explore = 0;
  opt.seed = 1;
  opt.space = space;
  opt.engine = tune::Engine::kTimedDevice;
  const tune::TuneResult r = tune::tune(spec, opt);

  const tune::Candidate& best = r.best();
  EXPECT_GT(best.cfg.split_k, 1) << best.name;
  const tune::Candidate* single = nullptr;
  for (const auto& c : r.ranked) {
    if (c.evaluated && c.cfg.split_k == 1) single = &c;
  }
  ASSERT_NE(single, nullptr);
  EXPECT_LT(best.sim_cycles, single->sim_cycles);
  EXPECT_EQ(best.hazard_diags, 0u);
}

TEST(OpTune, SplitKWinsSkinnyKShapeOnRtx2070) { expect_split_k_wins(device::rtx2070()); }

TEST(OpTune, SplitKWinsSkinnyKShapeOnT4) { expect_split_k_wins(device::t4()); }

// ---------------------------------------------------------------------------
// CLI contract: `tcgemm_cli op --json` emits the tc-cli-v1 header plus the
// op payload (plan + bitwise check).
// ---------------------------------------------------------------------------

std::string read_file(const std::filesystem::path& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

TEST(OpCliContract, OpCommandEmitsPlanAndBitwiseCheck) {
  const auto out = std::filesystem::temp_directory_path() / "tc_cli_op.json";
  std::filesystem::remove(out);
  const std::string cmd = std::string(TC_CLI_BIN) +
                          " op --m 96 --n 80 --k 200 --batch 2 --split-k 2 --alpha 1.25"
                          " --beta 0.5 --act relu --check --json " +
                          out.string() + " > /dev/null";
  const int rc = std::system(cmd.c_str());
  ASSERT_EQ(rc, 0) << cmd;
  const JsonValue doc = json_parse(read_file(out));
  std::filesystem::remove(out);

  EXPECT_EQ(doc.at("schema").as_string(), "tc-cli-v1");
  EXPECT_EQ(doc.at("command").as_string(), "op");
  const JsonValue& o = doc.at("op");
  EXPECT_EQ(o.at("batch").as_number(), 2.0);
  EXPECT_EQ(o.at("split_k").as_number(), 2.0);
  EXPECT_FALSE(o.at("fused").as_bool());
  EXPECT_GT(o.at("workspace_elems").as_number(), 0.0);
  EXPECT_EQ(o.at("mismatches").as_number(), 0.0);
  const auto& launches = o.at("launches").as_array();
  ASSERT_EQ(launches.size(), 2u);
  EXPECT_EQ(launches[0].at("role").as_string(), "main");
  EXPECT_EQ(launches[1].at("role").as_string(), "reduce");
  for (const auto& l : launches) {
    EXPECT_FALSE(l.at("kernel").as_string().empty());
    EXPECT_GT(l.at("instructions").as_number(), 0.0);
    EXPECT_GE(l.at("grid_z").as_number(), 1.0);
  }
}

}  // namespace
}  // namespace tc
