// Golden-file regression tests for the bench binaries' --json output.
//
// Each test runs a built bench binary with --json, parses the document, and
// compares it structurally against a checked-in fixture in tests/golden/.
// Strings and shapes (series names, columns, row counts) must match exactly;
// numbers within a relative tolerance that absorbs cross-platform libm
// drift while still catching any model or simulator behavior change.
//
// To regenerate fixtures after an *intentional* behavior change:
//
//   build/bench/table1_hmma        --json tests/golden/table1_hmma.json
//   build/bench/table6_blocking    --json tests/golden/table6_blocking.json
//   build/bench/fig4_sts_interleave --step 4096 \
//                                  --json tests/golden/fig4_sts_interleave.json
//   build/bench/fig8_swizzle --device rtx2070 --step 4096 \
//                                  --json tests/golden/fig8_swizzle_rtx2070.json
//   build/bench/fig8_swizzle --device t4 --step 4096 \
//                                  --json tests/golden/fig8_swizzle_t4.json
//   build/bench/batched_splitk --device rtx2070 \
//                                  --json tests/golden/batched_splitk_rtx2070.json
//   build/bench/batched_splitk --device t4 \
//                                  --json tests/golden/batched_splitk_t4.json
//   build/bench/jit_throughput --device rtx2070 \
//                                  --json-static tests/golden/jit_throughput_rtx2070.json
//   build/bench/jit_throughput --device t4 \
//                                  --json-static tests/golden/jit_throughput_t4.json
//
// and explain the delta in the commit message.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json_parse.hpp"

namespace tc {
namespace {

// Deterministic simulation: the only allowed drift is libm/format noise.
constexpr double kRelTol = 1e-6;

std::string read_file(const std::filesystem::path& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

/// Runs `<TC_BENCH_DIR>/<bench> <args> --json <tmp>` and parses the output.
JsonValue run_bench_json(const std::string& bench, const std::string& args = "") {
  const auto out = std::filesystem::temp_directory_path() / ("tc_golden_" + bench + ".json");
  std::filesystem::remove(out);
  const std::string cmd = std::string(TC_BENCH_DIR) + "/" + bench + " " + args + " --json " +
                          out.string() + " > /dev/null";
  const int rc = std::system(cmd.c_str());
  EXPECT_EQ(rc, 0) << cmd;
  const auto doc = json_parse(read_file(out));
  std::filesystem::remove(out);
  return doc;
}

JsonValue load_golden(const std::string& bench) {
  const auto path = std::filesystem::path(TC_GOLDEN_DIR) / (bench + ".json");
  return json_parse(read_file(path));
}

/// Recursive structural comparison: `path` names the location for failure
/// messages (e.g. "series[1].rows[3][2]").
void expect_json_near(const JsonValue& got, const JsonValue& want, const std::string& path) {
  if (want.is_number()) {
    ASSERT_TRUE(got.is_number()) << path << ": expected a number";
    const double g = got.as_number();
    const double w = want.as_number();
    const double tol = kRelTol * std::max(1.0, std::abs(w));
    EXPECT_NEAR(g, w, tol) << path;
    return;
  }
  if (want.is_string()) {
    ASSERT_TRUE(got.is_string()) << path << ": expected a string";
    EXPECT_EQ(got.as_string(), want.as_string()) << path;
    return;
  }
  if (want.is_array()) {
    ASSERT_TRUE(got.is_array()) << path << ": expected an array";
    const auto& ga = got.as_array();
    const auto& wa = want.as_array();
    ASSERT_EQ(ga.size(), wa.size()) << path << ": array length";
    for (std::size_t i = 0; i < wa.size(); ++i) {
      expect_json_near(ga[i], wa[i], path + "[" + std::to_string(i) + "]");
    }
    return;
  }
  if (want.is_object()) {
    ASSERT_TRUE(got.is_object()) << path << ": expected an object";
    const auto& go = got.as_object();
    const auto& wo = want.as_object();
    for (const auto& [k, v] : wo) {
      ASSERT_TRUE(got.has(k)) << path << ": missing key '" << k << "'";
      expect_json_near(got.at(k), v, path + "." + k);
    }
    for (const auto& [k, v] : go) {
      EXPECT_TRUE(want.has(k)) << path << ": unexpected key '" << k << "'";
    }
    return;
  }
  EXPECT_EQ(got.is_null(), want.is_null()) << path;
}

void golden_roundtrip(const std::string& bench, const std::string& args = "") {
  const auto got = run_bench_json(bench, args);
  const auto want = load_golden(bench);
  EXPECT_EQ(got.at("schema").as_string(), "tc-bench-v1");
  expect_json_near(got, want, bench);
}

/// Like golden_roundtrip, but the fixture name differs from the binary name
/// (one binary, several goldens — e.g. fig8_swizzle per device spec).
JsonValue golden_roundtrip_named(const std::string& golden, const std::string& bench,
                                 const std::string& args) {
  const auto got = run_bench_json(bench, args);
  const auto want = load_golden(golden);
  EXPECT_EQ(got.at("schema").as_string(), "tc-bench-v1");
  expect_json_near(got, want, golden);
  return got;
}

TEST(Golden, Table1Hmma) { golden_roundtrip("table1_hmma"); }

TEST(Golden, Table6Blocking) { golden_roundtrip("table6_blocking"); }

TEST(Golden, Fig4StsInterleave) { golden_roundtrip("fig4_sts_interleave", "--step 4096"); }

TEST(Golden, Fig8SwizzleRtx2070) {
  const auto doc = golden_roundtrip_named("fig8_swizzle_rtx2070", "fig8_swizzle",
                                          "--device rtx2070 --step 4096");
  // The PR's acceptance line: the tuned supertile dispatch is strictly
  // faster than the row-major baseline at the W=12032 cliff.
  const auto& summary = doc.at("series").as_array()[0].at("summary");
  EXPECT_GT(summary.at("speedup_at_12032").as_number(), 1.0);
}

TEST(Golden, Fig8SwizzleT4) {
  golden_roundtrip_named("fig8_swizzle_t4", "fig8_swizzle", "--device t4 --step 4096");
}

// The GemmOp PR's acceptance lines, per device spec: a split-K plan beats
// the single-kernel launch on the skinny-grid deep-K shape even after
// paying for the reduction pass and the extra launch, and one z-batched
// launch beats a loop of single-plane launches.
void expect_op_payoff(const JsonValue& doc) {
  const auto& series = doc.at("series").as_array();
  const auto& splitk = series[0].at("summary");
  EXPECT_GT(splitk.at("best_split_k").as_number(), 1.0);
  EXPECT_GT(splitk.at("best_speedup").as_number(), 1.0);
  const auto& batched = series[1].at("summary");
  EXPECT_GT(batched.at("speedup_at_batch_32").as_number(), 1.0);
}

TEST(Golden, BatchedSplitkRtx2070) {
  expect_op_payoff(
      golden_roundtrip_named("batched_splitk_rtx2070", "batched_splitk", "--device rtx2070"));
}

TEST(Golden, BatchedSplitkT4) {
  expect_op_payoff(golden_roundtrip_named("batched_splitk_t4", "batched_splitk", "--device t4"));
}

// The JIT throughput bench: the deterministic series (instruction counts,
// block/pass statistics, bitwise-match flags) is golden-pinned per device
// spec; the timing series is wall clock and can only be gated by the PR's
// acceptance inequality — the dispatch-bound workload must be at least 10x
// faster compiled than interpreted.
void expect_jit_throughput(const std::string& golden, const std::string& device) {
  const auto got = run_bench_json("jit_throughput", "--device " + device);
  const auto want = load_golden(golden);
  EXPECT_EQ(got.at("schema").as_string(), "tc-bench-v1");
  EXPECT_EQ(got.at("device").as_string(), want.at("device").as_string());

  const auto& got_series = got.at("series").as_array();
  const auto& want_series = want.at("series").as_array();
  ASSERT_GE(got_series.size(), 2u);
  ASSERT_EQ(want_series.size(), 1u);  // the fixture holds only "static"
  ASSERT_EQ(got_series[0].at("name").as_string(), "static");
  expect_json_near(got_series[0], want_series[0], golden + ".static");

  // Every workload row must report bitwise_match == 1.
  const auto& cols = got_series[0].at("columns").as_array();
  ASSERT_EQ(cols.back().as_string(), "bitwise_match");
  for (const auto& row : got_series[0].at("rows").as_array()) {
    EXPECT_EQ(row.as_array().back().as_number(), 1.0);
  }

  ASSERT_EQ(got_series[1].at("name").as_string(), "timing");
  EXPECT_GE(got_series[1].at("summary").at("speedup_alu_dispatch").as_number(), 10.0);
}

TEST(Golden, JitThroughputRtx2070) {
  expect_jit_throughput("jit_throughput_rtx2070", "rtx2070");
}

TEST(Golden, JitThroughputT4) { expect_jit_throughput("jit_throughput_t4", "t4"); }

// The parser itself: golden comparisons are only as trustworthy as the
// reader, so pin its behavior on the writer's own corner cases.
TEST(Golden, ParserRoundTripsWriterOutput) {
  const auto doc = json_parse(R"({"schema":"tc-bench-v1","n":-1.5e3,"flag":true,)"
                              R"("none":null,"s":"a\"b\\c\nd","rows":[[1,2],[]]})");
  EXPECT_EQ(doc.at("schema").as_string(), "tc-bench-v1");
  EXPECT_DOUBLE_EQ(doc.at("n").as_number(), -1500.0);
  EXPECT_TRUE(doc.at("flag").as_bool());
  EXPECT_TRUE(doc.at("none").is_null());
  EXPECT_EQ(doc.at("s").as_string(), "a\"b\\c\nd");
  EXPECT_EQ(doc.at("rows").as_array().size(), 2u);
  EXPECT_DOUBLE_EQ(doc.at("rows").as_array()[0].as_array()[1].as_number(), 2.0);
  EXPECT_TRUE(doc.at("rows").as_array()[1].as_array().empty());
}

TEST(Golden, ParserRejectsMalformedInput) {
  EXPECT_THROW((void)json_parse("{"), std::runtime_error);
  EXPECT_THROW((void)json_parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)json_parse("{\"a\":1} x"), std::runtime_error);
  EXPECT_THROW((void)json_parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW((void)json_parse("01a"), std::runtime_error);
}

}  // namespace
}  // namespace tc
