// Property-based sweeps: the kernels must agree with the bit-exact Tensor
// Core reference for randomized shapes, seeds and configurations, and the
// performance model must obey basic monotonicity/sanity invariants.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/hgemm.hpp"
#include "core/kernel_gen.hpp"
#include "core/reference.hpp"
#include "device/occupancy.hpp"
#include "driver/device.hpp"
#include "tune/space.hpp"

namespace tc {
namespace {

// --- randomized functional correctness ---------------------------------------

struct ShapeSeed {
  std::size_t m, n, k;
  std::uint64_t seed;
};

class HgemmRandomShapes : public ::testing::TestWithParam<ShapeSeed> {};

TEST_P(HgemmRandomShapes, KernelEqualsReference) {
  const auto p = GetParam();
  Rng rng(p.seed);
  HalfMatrix a(p.m, p.k), bt(p.n, p.k);
  a.randomize(rng, -0.5f, 0.5f);
  bt.randomize(rng, -0.5f, 0.5f);
  driver::Device dev(device::rtx2070());
  const HalfMatrix c = core::run_hgemm(dev, a, bt);
  const HalfMatrix ref = core::gemm_ref_tc(a, bt);
  EXPECT_EQ(core::mismatch_count(c, ref), 0u);
}

std::vector<ShapeSeed> random_shapes() {
  // Deterministic "random" shape set exercising ragged edges, 1-row/1-col
  // extremes and k padding.
  Rng rng(0xC0FFEE);
  std::vector<ShapeSeed> shapes = {
      {1, 1, 1, 1},        // degenerate
      {8, 8, 8, 2},        // single HMMA tile
      {17, 33, 9, 3},      // fully ragged
      {256, 256, 32, 4},   // exactly one block, minimum k (padded to 64)
      {300, 260, 70, 5},   // slightly over one block
  };
  for (std::uint64_t s = 10; s < 18; ++s) {
    shapes.push_back({static_cast<std::size_t>(rng.next_int(1, 400)),
                      static_cast<std::size_t>(rng.next_int(1, 400)),
                      static_cast<std::size_t>(rng.next_int(1, 150)), s});
  }
  return shapes;
}

INSTANTIATE_TEST_SUITE_P(Sweep, HgemmRandomShapes, ::testing::ValuesIn(random_shapes()),
                         [](const auto& info) {
                           const auto& p = info.param;
                           return "m" + std::to_string(p.m) + "_n" + std::to_string(p.n) +
                                  "_k" + std::to_string(p.k) + "_s" + std::to_string(p.seed);
                         });

TEST(HgemmProperty, AllConfigsAgreeWithEachOther) {
  // Every kernel configuration computes the same function (identical
  // accumulation order), so outputs must match bit for bit.
  Rng rng(77);
  HalfMatrix a(256, 96), bt(256, 96);
  a.randomize(rng, -0.5f, 0.5f);
  bt.randomize(rng, -0.5f, 0.5f);

  driver::Device dev(device::rtx2070());
  const HalfMatrix base = core::run_hgemm(dev, a, bt, core::HgemmConfig::optimized());
  for (core::SmemLayout layout :
       {core::SmemLayout::kTileMajor, core::SmemLayout::kNaiveRowMajor}) {
    auto cfg = core::HgemmConfig::optimized();
    cfg.layout = layout;
    const HalfMatrix c = core::run_hgemm(dev, a, bt, cfg);
    EXPECT_EQ(core::mismatch_count(c, base), 0u);
  }
  for (int interleave : {1, 2, 3, 8}) {
    auto cfg = core::HgemmConfig::optimized();
    cfg.sts_interleave = interleave;
    const HalfMatrix c = core::run_hgemm(dev, a, bt, cfg);
    EXPECT_EQ(core::mismatch_count(c, base), 0u);
  }
}

TEST(HgemmProperty, ZeroInputsGiveZeroOutput) {
  HalfMatrix a(256, 64), bt(256, 64);  // all zeros
  driver::Device dev(device::rtx2070());
  const HalfMatrix c = core::run_hgemm(dev, a, bt);
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = 0; j < c.cols(); ++j) EXPECT_TRUE(c.at(i, j).is_zero());
  }
}

TEST(HgemmProperty, IdentityMatrixActsAsIdentity) {
  const std::size_t n = 256;
  Rng rng(31);
  HalfMatrix a(n, n);
  a.randomize(rng, -1.0f, 1.0f);
  HalfMatrix identity_t(n, n);  // I^T == I
  for (std::size_t i = 0; i < n; ++i) identity_t.at(i, i) = half(1.0f);

  driver::Device dev(device::rtx2070());
  const HalfMatrix c = core::run_hgemm(dev, a, identity_t);
  // A * I: every element passes through one FP16 rounding chain (exact:
  // products are a*1 and additions accumulate one nonzero term).
  EXPECT_EQ(core::mismatch_count(c, a), 0u);
}

// --- performance model invariants --------------------------------------------

TEST(PerfProperty, ThroughputGrowsThenPlateausWithSize) {
  core::PerfEstimator est(device::rtx2070(), core::HgemmConfig::optimized());
  const double t1k = est.estimate({1024, 1024, 1024}).tflops;
  const double t4k = est.estimate({4096, 4096, 4096}).tflops;
  const double t8k = est.estimate({8192, 8192, 8192}).tflops;
  EXPECT_LT(t1k, t4k);
  EXPECT_LE(t4k, t8k * 1.15);  // roughly flat after 4096
  EXPECT_LE(t8k, device::rtx2070().tensor_peak_flops() / 1e12 * 1.02);
}

TEST(PerfProperty, TimeScalesLinearlyInK) {
  core::PerfEstimator est(device::rtx2070(), core::HgemmConfig::optimized());
  const double s1 = est.estimate({8192, 8192, 4096}).seconds;
  const double s2 = est.estimate({8192, 8192, 8192}).seconds;
  EXPECT_NEAR(s2 / s1, 2.0, 0.25);
}

TEST(PerfProperty, StsInterleaveFiveBeatsTwo) {
  auto five = core::HgemmConfig::optimized();
  auto two = core::HgemmConfig::optimized();
  two.sts_interleave = 2;
  core::PerfEstimator e5(device::rtx2070(), five);
  core::PerfEstimator e2(device::rtx2070(), two);
  const GemmShape s{8192, 8192, 8192};
  EXPECT_GE(e5.estimate(s).tflops, e2.estimate(s).tflops);
}

TEST(PerfProperty, PaddedLayoutBeatsNaive) {
  auto padded = core::HgemmConfig::optimized();
  auto naive = core::HgemmConfig::optimized();
  naive.layout = core::SmemLayout::kNaiveRowMajor;
  core::PerfEstimator ep(device::rtx2070(), padded);
  core::PerfEstimator en(device::rtx2070(), naive);
  const GemmShape s{8192, 8192, 8192};
  const double tp = ep.estimate(s).tflops;
  const double tn = en.estimate(s).tflops;
  EXPECT_GT(tp, 1.5 * tn);  // Fig. 5: roughly 2x
}

TEST(PerfProperty, Rtx2070BeatsT4DespiteLowerPeak) {
  // Paper Section VII-C: RTX2070's higher DRAM bandwidth wins even though
  // T4 has the higher compute peak.
  core::PerfEstimator e2070(device::rtx2070(), core::HgemmConfig::optimized());
  core::PerfEstimator et4(device::t4(), core::HgemmConfig::optimized());
  const GemmShape s{8192, 8192, 8192};
  EXPECT_GT(e2070.estimate(s).tflops, et4.estimate(s).tflops);
}

// --- tuner legality filter vs. the real builder and occupancy --------------

/// A uniformly random raw point of the tuner's search space (legal or not).
core::HgemmConfig random_raw_config(const tune::SearchSpace& s, Rng& rng) {
  const auto pick = [&](const auto& grid) { return grid[rng.next_below(grid.size())]; };
  core::HgemmConfig cfg;
  cfg.bm = pick(s.bm);
  cfg.bn = pick(s.bn);
  cfg.bk = pick(s.bk);
  cfg.wm = pick(s.wm);
  cfg.wn = pick(s.wn);
  cfg.layout = pick(s.layouts);
  cfg.sts_interleave = pick(s.sts_interleave);
  cfg.prefetch = pick(s.prefetch);
  cfg.launch_order = pick(s.launch_orders);
  cfg.supertile_width = pick(s.supertile_widths);
  return cfg;
}

TEST(OccupancyProperty, LegalRandomConfigsNeverExceedDeviceLimits) {
  // For every spec, any config the legality filter accepts must sit inside
  // the register-file, shared-memory, thread and CTA-slot capacities when
  // its claimed occupancy is resident.
  Rng rng(0xBEEF);
  const tune::SearchSpace space;
  for (const auto* name : {"rtx2070", "t4"}) {
    const device::DeviceSpec spec = device::spec_by_name(name);
    int legal = 0;
    for (int i = 0; i < 400; ++i) {
      const core::HgemmConfig cfg = random_raw_config(space, rng);
      const tune::Legality l = tune::classify(spec, cfg);
      if (!l.ok()) continue;
      ++legal;
      const int cps = l.occ.ctas_per_sm;
      ASSERT_GE(cps, 1);
      EXPECT_LE(cps, spec.max_ctas_per_sm);
      EXPECT_LE(device::allocated_regs_per_thread(l.regs) * cfg.threads() * cps,
                spec.regs_per_sm)
          << cfg.name();
      EXPECT_LE(cfg.smem_bytes() * static_cast<std::uint32_t>(cps), spec.smem_per_sm)
          << cfg.name();
      EXPECT_LE(cfg.threads() * cps, spec.max_threads_per_sm) << cfg.name();
      EXPECT_EQ(l.occ.warps_per_sm, cfg.warps() * cps) << cfg.name();
    }
    EXPECT_GT(legal, 0) << name;  // the sample must actually exercise the pass path
  }
}

TEST(OccupancyProperty, TunerLegalityAgreesExactlyWithTheBuilder) {
  // The filter's promise (space.hpp): every enumerated config builds and
  // schedules cleanly, with exactly the predicted register count and
  // occupancy. A deterministic random sample keeps the test fast; the full
  // 4k-config sweep was run once offline with zero mismatches.
  for (const auto* name : {"rtx2070", "t4"}) {
    const device::DeviceSpec spec = device::spec_by_name(name);
    const auto legal = tune::enumerate(spec, tune::SearchSpace{});
    ASSERT_FALSE(legal.empty());
    Rng rng(0xD1CE);
    for (int i = 0; i < 24; ++i) {
      const core::HgemmConfig& cfg = legal[rng.next_below(legal.size())];
      const tune::Legality l = tune::classify(spec, cfg);
      ASSERT_TRUE(l.ok()) << cfg.name();
      const sass::Program prog =
          core::hgemm_kernel(cfg, cfg.contract_shape({256, 256, 64}));
      EXPECT_EQ(prog.num_regs, l.regs) << cfg.name();
      const device::Occupancy built = device::occupancy(spec, prog);
      EXPECT_EQ(built.ctas_per_sm, l.occ.ctas_per_sm) << cfg.name();
      EXPECT_EQ(built.warps_per_sm, l.occ.warps_per_sm) << cfg.name();
    }
  }
}

TEST(OccupancyProperty, RejectReasonsAreStableAndNamed) {
  // Reject classification is part of the CLI contract (prune funnel); every
  // reason must have a printable name and rejected configs must never carry
  // a claimed occupancy.
  Rng rng(0xFEED);
  const tune::SearchSpace space;
  const device::DeviceSpec spec = device::rtx2070();
  for (int i = 0; i < 200; ++i) {
    const core::HgemmConfig cfg = random_raw_config(space, rng);
    const tune::Legality l = tune::classify(spec, cfg);
    EXPECT_NE(std::string(tune::reject_name(l.reject)), "");
    if (!l.ok()) EXPECT_EQ(l.occ.ctas_per_sm, 0);
  }
}

}  // namespace
}  // namespace tc
