// Launch-order machinery and reuse-distance L2 cross-validation (l2_xval).
//
// Three layers, cheapest first:
//
//  1. Property: the model-side trace generator (model::launch_trace) and the
//     simulator-side dispenser (sim::CtaOrderMap) are independent
//     implementations of every LaunchOrder; they must emit the *identical*
//     permutation of the grid, and that sequence must be a bijection, for
//     arbitrary grids including degenerate 1-row/1-col and non-pow2 sizes.
//  2. Dispatch: OrderedCtaSource dispenses CtaOrderMap's sequence under
//     contention, and the kSwizzled order remains bit-identical to the
//     row-major GridCtaSource dispatch (its analytic patch is a model
//     assumption, not a schedule change).
//  3. Band: the stack-distance sampler's predicted L2 hit rate must land
//     within 15 % of the TimedDevice's *emergent* sector-cache rate
//     (pin_l2_hit_rate = false) for row-major and supertile orders on three
//     whole-wave shapes per device spec. This is the end-to-end check that
//     the trace replay models the same locality the device simulates.
//
// docs/l2_model.md documents the sampler and the band; scripts/check.sh and
// CI run this file under the l2_xval ctest label.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "core/config.hpp"
#include "core/hgemm.hpp"
#include "core/kernel_gen.hpp"
#include "core/profile.hpp"
#include "device/spec.hpp"
#include "model/stack_distance.hpp"
#include "model/validate.hpp"
#include "sim/cta_order.hpp"
#include "sim/timed_sm.hpp"

namespace tc {
namespace {

using model::LaunchOrder;

const LaunchOrder kAllOrders[] = {LaunchOrder::kRowMajor, LaunchOrder::kSwizzled,
                                  LaunchOrder::kSupertile, LaunchOrder::kSerpentine,
                                  LaunchOrder::kHilbert};

std::vector<std::pair<std::uint32_t, std::uint32_t>> drain_map(LaunchOrder order,
                                                               std::uint32_t gx,
                                                               std::uint32_t gy, int width) {
  sim::CtaOrderMap map(order, gx, gy, width);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> seq;
  for (std::uint64_t i = 0; i < map.total(); ++i) seq.push_back(map.next());
  return seq;
}

TEST(LaunchOrderProperty, TraceAndSourceEmitTheSameBijection) {
  const std::pair<std::uint32_t, std::uint32_t> grids[] = {
      {1, 1}, {1, 7}, {7, 1}, {5, 3}, {16, 16}, {13, 29}, {47, 2}, {3, 32}};
  const int widths[] = {1, 3, 8, 64};
  for (const auto [gx, gy] : grids) {
    for (const LaunchOrder order : kAllOrders) {
      for (const int w : widths) {
        const auto trace = model::launch_trace(order, gx, gy, w);
        const auto dispatched = drain_map(order, gx, gy, w);
        ASSERT_EQ(trace.size(), static_cast<std::size_t>(gx) * gy)
            << sim::launch_order_name(order) << " " << gx << "x" << gy << " w" << w;
        ASSERT_EQ(trace, dispatched)
            << sim::launch_order_name(order) << " " << gx << "x" << gy << " w" << w;
        std::set<std::pair<std::uint32_t, std::uint32_t>> seen(trace.begin(), trace.end());
        EXPECT_EQ(seen.size(), trace.size())
            << sim::launch_order_name(order) << " repeats a CTA";
        for (const auto [x, y] : trace) {
          ASSERT_LT(x, gx);
          ASSERT_LT(y, gy);
        }
        if (order != LaunchOrder::kSupertile) break;  // width only matters here
      }
    }
  }
}

TEST(LaunchOrderProperty, SwizzledDispatchesExactlyRowMajor) {
  // kSwizzled's L2-friendly patch is an analytic model assumption; its
  // *dispatch* must stay the row-major baseline so recorded tuning results
  // and surrogate calibration are untouched by the launch-order machinery.
  const auto swizzled = model::launch_trace(LaunchOrder::kSwizzled, 13, 5, 8);
  const auto row_major = model::launch_trace(LaunchOrder::kRowMajor, 13, 5, 8);
  EXPECT_EQ(swizzled, row_major);
}

TEST(LaunchOrderProperty, NameRoundTrips) {
  for (const LaunchOrder order : kAllOrders) {
    EXPECT_EQ(sim::launch_order_from_name(sim::launch_order_name(order)), order);
  }
  EXPECT_THROW((void)sim::launch_order_from_name("zorder"), Error);
}

TEST(LaunchOrderDispatch, OrderedSourceDispensesMapSequenceThenStops) {
  sim::OrderedCtaSource src(LaunchOrder::kSupertile, 6, 4, 2);
  const auto expect = model::launch_trace(LaunchOrder::kSupertile, 6, 4, 2);
  for (const auto& [x, y] : expect) {
    const auto got = src.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->x, x);
    EXPECT_EQ(got->y, y);
  }
  EXPECT_FALSE(src.next().has_value());
  EXPECT_EQ(src.issued(), expect.size());
}

TEST(LaunchOrderDispatch, GridSourceIsXFastestOnArbitraryGrids) {
  // timed_device reasons about co-residency from GridCtaSource's documented
  // "hardware launch order (x fastest)"; pin the dispenser to the row-major
  // order map on a non-power-of-two grid so the swizzled sources can't
  // silently change the baseline dispatch.
  sim::GridCtaSource src(13, 7);
  const auto want = model::launch_trace(LaunchOrder::kRowMajor, 13, 7, 8);
  for (const auto& [x, y] : want) {
    const auto got = src.next();
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(got->x, x);
    ASSERT_EQ(got->y, y);
  }
  EXPECT_FALSE(src.next().has_value());
}

TEST(LaunchOrderDispatch, FactoryKeepsGridSourceForRowMajorOrders) {
  // make_cta_source must hand kRowMajor/kSwizzled to the plain grid
  // dispenser (the timed device's co-residency reasoning depends on the
  // x-fastest order; see test_scheduling's GridCtaSource regression).
  sim::Launch launch;
  launch.grid_x = 5;
  launch.grid_y = 3;
  for (const LaunchOrder order : {LaunchOrder::kRowMajor, LaunchOrder::kSwizzled}) {
    launch.launch_order = order;
    const auto src = sim::make_cta_source(launch);
    ASSERT_NE(dynamic_cast<sim::GridCtaSource*>(src.get()), nullptr);
  }
  launch.launch_order = LaunchOrder::kSerpentine;
  const auto ordered = sim::make_cta_source(launch);
  ASSERT_NE(dynamic_cast<sim::OrderedCtaSource*>(ordered.get()), nullptr);
}

// --- sampler vs. emergent L2: the 15 % band --------------------------------

constexpr double kSamplerBand = 0.15;

model::ValidateKernelInput band_input(const device::DeviceSpec& spec,
                                      const core::HgemmConfig& cfg) {
  model::ValidateKernelInput kin;
  kin.make_kernel = [cfg](const GemmShape& s) { return core::hgemm_kernel(cfg, s); };
  kin.name = cfg.name();
  kin.bm = cfg.bm;
  kin.bn = cfg.bn;
  kin.bk = cfg.bk;
  kin.ctas_per_sm = core::surrogate_ctas_per_sm(spec, cfg);
  kin.order = cfg.launch_order;
  kin.swizzle_max_grid_x = cfg.swizzle_max_grid_x;
  kin.supertile_width = cfg.supertile_width;
  kin.pin_l2_hit_rate = false;  // the emergent sector-cache rate is the point
  return kin;
}

void expect_sampler_band(const device::DeviceSpec& spec, LaunchOrder order, int width,
                         std::uint32_t grid_x, std::uint32_t grid_y) {
  core::HgemmConfig cfg = core::HgemmConfig::optimized();
  cfg.launch_order = order;
  cfg.supertile_width = width;
  const auto kin = band_input(spec, cfg);
  const GemmShape shape{static_cast<std::size_t>(grid_y) * cfg.bm,
                        static_cast<std::size_t>(grid_x) * cfg.bn, 256};
  const auto v = model::validate_wave(spec, kin, shape);
  ASSERT_GT(v.device_l2_hit_rate, 0.0)
      << cfg.name() << " on " << spec.name << ": no emergent hits at all";
  EXPECT_LE(std::abs(v.sampler_l2_hit_rate - v.device_l2_hit_rate) / v.device_l2_hit_rate,
            kSamplerBand)
      << cfg.name() << " on " << spec.name << " grid " << grid_x << "x" << grid_y << ":\n"
      << v.report();
}

TEST(L2SamplerBand, RowMajorRtx2070) {
  const auto spec = device::rtx2070();
  expect_sampler_band(spec, LaunchOrder::kRowMajor, 8, 6, 6);
  expect_sampler_band(spec, LaunchOrder::kRowMajor, 8, 12, 3);
  expect_sampler_band(spec, LaunchOrder::kRowMajor, 8, 36, 2);
}

TEST(L2SamplerBand, SupertileRtx2070) {
  const auto spec = device::rtx2070();
  expect_sampler_band(spec, LaunchOrder::kSupertile, 6, 6, 6);
  expect_sampler_band(spec, LaunchOrder::kSupertile, 6, 12, 3);
  expect_sampler_band(spec, LaunchOrder::kSupertile, 6, 36, 2);
}

TEST(L2SamplerBand, RowMajorT4) {
  const auto spec = device::t4();
  expect_sampler_band(spec, LaunchOrder::kRowMajor, 8, 5, 8);
  expect_sampler_band(spec, LaunchOrder::kRowMajor, 8, 10, 4);
  expect_sampler_band(spec, LaunchOrder::kRowMajor, 8, 40, 2);
}

TEST(L2SamplerBand, SupertileT4) {
  const auto spec = device::t4();
  expect_sampler_band(spec, LaunchOrder::kSupertile, 5, 5, 8);
  expect_sampler_band(spec, LaunchOrder::kSupertile, 5, 10, 4);
  expect_sampler_band(spec, LaunchOrder::kSupertile, 5, 40, 2);
}

TEST(L2SamplerBand, SupertileBeatsRowMajorAtTheCliff) {
  // The Fig. 8 cliff width on RTX 2070, at bench/fig8_swizzle's operating
  // point: a DRAM-hungry 64x64x64 blocking and a shallow k = 192, so one
  // wave's L2 window crosses the 4 MiB capacity right at W = 12032 under
  // row-major dispatch while a supertile panel stays resident. The tuned
  // supertile dispatch must be strictly faster — the model-side half of
  // the bench — and the row-major hit rate must visibly collapse.
  const auto spec = device::rtx2070();
  const GemmShape shape{12032, 12032, 192};
  core::HgemmConfig base;
  base.bm = 64;
  base.bn = 64;
  base.bk = 64;
  base.wm = 32;
  base.wn = 64;
  base.layout = core::SmemLayout::kTileMajor;
  core::HgemmConfig row = base;
  row.launch_order = LaunchOrder::kRowMajor;
  core::HgemmConfig super = base;
  super.launch_order = LaunchOrder::kSupertile;
  super.supertile_width = 16;
  core::PerfEstimator er(spec, row);
  core::PerfEstimator es(spec, super);
  const auto row_est = er.estimate(shape);
  const auto super_est = es.estimate(shape);
  EXPECT_GT(super_est.tflops, row_est.tflops * 1.02);
  EXPECT_GT(super_est.l2_hit_rate, row_est.l2_hit_rate + 0.1);
}

}  // namespace
}  // namespace tc
