// Timing-engine tests of the HGEMM kernels: schedule correctness under
// hazard-accurate writeback, pipe utilization consistent with the paper's
// Table VI analysis, and the ablation orderings (padding, interleave,
// prefetch) the paper measures in Figs. 4/5.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/hgemm.hpp"
#include "core/kernel_gen.hpp"
#include "core/reference.hpp"
#include "device/occupancy.hpp"
#include "driver/device.hpp"

namespace tc {
namespace {

/// Runs one CTA of a kernel in the timing engine with generous bandwidth and
/// returns (stats, C block) for a bm x bn x k problem.
struct TimedGemmRun {
  sim::TimedStats stats;
  HalfMatrix c;
};

TimedGemmRun run_one_cta_timed(const core::HgemmConfig& cfg, std::size_t k,
                               sim::TimedConfig tcfg, driver::Device& dev, Rng& rng) {
  const GemmShape shape{static_cast<std::size_t>(cfg.bm), static_cast<std::size_t>(cfg.bn), k};
  HalfMatrix a(shape.m, k), bt(shape.n, k);
  a.randomize(rng, -0.5f, 0.5f);
  bt.randomize(rng, -0.5f, 0.5f);

  const sass::Program prog = core::hgemm_kernel(cfg, shape);
  auto da = dev.alloc<half>(a.size());
  auto db = dev.alloc<half>(bt.size());
  auto dc = dev.alloc<half>(shape.m * shape.n);
  dev.upload(da, std::span<const half>(a.data(), a.size()));
  dev.upload(db, std::span<const half>(bt.data(), bt.size()));

  sim::Launch launch;
  launch.program = &prog;
  launch.grid_x = 1;
  launch.grid_y = 1;
  launch.params = {da.addr, db.addr, dc.addr};

  const sim::CtaCoord cta{0, 0};
  TimedGemmRun r{dev.run_timed(launch, std::span(&cta, 1), tcfg), HalfMatrix(shape.m, shape.n)};
  dev.download(std::span(r.c.data(), r.c.size()), dc);

  const HalfMatrix ref = core::gemm_ref_tc(a, bt);
  EXPECT_EQ(core::mismatch_count(r.c, ref), 0u)
      << "timed execution of " << cfg.name() << " diverged from the reference — "
      << "the stall/scoreboard schedule is wrong";
  return r;
}

TEST(TimedHgemm, OptimizedScheduleIsHazardCorrect) {
  // The strongest schedule test: under delayed writeback, any missing stall
  // or scoreboard wait corrupts the result.
  driver::Device dev(device::rtx2070());
  Rng rng(17);
  run_one_cta_timed(core::HgemmConfig::optimized(), 128, dev.timing_whole_device(), dev, rng);
}

TEST(TimedHgemm, CublasLikeScheduleIsHazardCorrect) {
  driver::Device dev(device::rtx2070());
  Rng rng(18);
  run_one_cta_timed(core::HgemmConfig::cublas_like(), 256, dev.timing_whole_device(), dev, rng);
}

TEST(TimedHgemm, ScheduleCorrectUnderTightBandwidth) {
  // Starving DRAM stretches load latencies; the scoreboard schedule must
  // still be correct (stalls alone would not be).
  driver::Device dev(device::rtx2070());
  Rng rng(19);
  auto tcfg = dev.timing_sm_share();
  tcfg.dram_bytes_per_cycle = 1.0;  // pathological
  run_one_cta_timed(core::HgemmConfig::optimized(), 96, tcfg, dev, rng);
}

TEST(TimedHgemm, TensorPipeDominatesForOptimizedConfig) {
  // Section VI-A: with (256x256x32)/(128x64) the HMMA cycles exceed the
  // memory-IO cycles, so the tensor pipe should be the busiest resource.
  driver::Device dev(device::rtx2070());
  Rng rng(20);
  auto tcfg = dev.timing_sm_share();
  tcfg.forced_l2_hit_rate = 0.5;
  const auto r = run_one_cta_timed(core::HgemmConfig::optimized(), 512, tcfg, dev, rng);
  // Tensor busy is per-partition-cycles; with 4 partitions the per-partition
  // average should dominate MIO busy time.
  EXPECT_GT(static_cast<double>(r.stats.tensor_busy) / 4.0,
            static_cast<double>(r.stats.mio_busy) * 0.9);
  // Utilization sanity: HMMA count = m*n*k / (16*8*8).
  EXPECT_EQ(r.stats.hmma_count, 256ull * 256 * 512 / 1024);
}

TEST(TimedHgemm, PaddedLayoutIsConflictFreeNaiveIsNot) {
  driver::Device dev(device::rtx2070());
  Rng rng(21);
  auto padded = core::HgemmConfig::optimized();
  auto naive = core::HgemmConfig::optimized();
  naive.layout = core::SmemLayout::kNaiveRowMajor;

  const auto rp = run_one_cta_timed(padded, 128, dev.timing_whole_device(), dev, rng);
  const auto rn = run_one_cta_timed(naive, 128, dev.timing_whole_device(), dev, rng);
  EXPECT_DOUBLE_EQ(rp.stats.smem_conflict_factor(), 1.0);
  EXPECT_GT(rn.stats.smem_conflict_factor(), 1.8);  // Fig. 5: ~halved throughput
  EXPECT_GT(static_cast<double>(rn.stats.cycles), 1.3 * static_cast<double>(rp.stats.cycles));
}

TEST(TimedHgemm, PrefetchHidesLoadLatency) {
  driver::Device dev(device::rtx2070());
  Rng rng(22);
  auto on = core::HgemmConfig::optimized();
  auto off = core::HgemmConfig::optimized();
  off.prefetch = false;
  const auto r_on = run_one_cta_timed(on, 256, dev.timing_sm_share(), dev, rng);
  const auto r_off = run_one_cta_timed(off, 256, dev.timing_sm_share(), dev, rng);
  EXPECT_LT(static_cast<double>(r_on.stats.cycles), static_cast<double>(r_off.stats.cycles));
}

TEST(TimedHgemm, TileMajorUsesLessSmemSameResult) {
  // The cuBLAS-style economical layout: 32 KB instead of 36 KB (Table VII),
  // still conflict-free.
  auto economical = core::HgemmConfig::optimized();
  economical.layout = core::SmemLayout::kTileMajor;
  EXPECT_EQ(economical.smem_bytes(), 32u * 1024);
  EXPECT_EQ(core::HgemmConfig::optimized().smem_bytes(), 36u * 1024);

  driver::Device dev(device::rtx2070());
  Rng rng(23);
  const auto r = run_one_cta_timed(economical, 128, dev.timing_whole_device(), dev, rng);
  EXPECT_DOUBLE_EQ(r.stats.smem_conflict_factor(), 1.0);
}

TEST(Occupancy, TableVII) {
  // Table VII: ours 36KB/CTA, 1 CTA/SM, 8 warps; cuBLAS 32KB, 2 CTAs, 8 warps.
  const auto spec = device::rtx2070();
  const GemmShape shape{256, 256, 64};
  const auto ours = core::hgemm_kernel(core::HgemmConfig::optimized(), shape);
  EXPECT_EQ(ours.smem_bytes, 36u * 1024);
  const auto occ_ours = device::occupancy(spec, ours);
  EXPECT_EQ(occ_ours.ctas_per_sm, 1);
  EXPECT_EQ(occ_ours.warps_per_sm, 8);

  const GemmShape shape_cb{128, 128, 128};
  const auto cublas = core::hgemm_kernel(core::HgemmConfig::cublas_like(), shape_cb);
  EXPECT_EQ(cublas.smem_bytes, 32u * 1024);
  const auto occ_cb = device::occupancy(spec, cublas);
  EXPECT_EQ(occ_cb.ctas_per_sm, 2);
  EXPECT_EQ(occ_cb.warps_per_sm, 8);
}

TEST(Occupancy, RegisterRounding) {
  EXPECT_EQ(device::allocated_regs_per_thread(1), 8);
  EXPECT_EQ(device::allocated_regs_per_thread(33), 40);
  EXPECT_EQ(device::allocated_regs_per_thread(255), 256);
}

TEST(PerfEstimator, OptimizedNearPeakOnRtx2070) {
  // Fig. 6: our kernel reaches ~device peak (59.7 TF) for large W.
  core::PerfEstimator est(device::rtx2070(), core::HgemmConfig::optimized());
  const auto p = est.estimate({8192, 8192, 8192});
  EXPECT_GT(p.tflops, 0.85 * device::rtx2070().tensor_peak_flops() / 1e12);
  EXPECT_LE(p.tflops, 1.02 * device::rtx2070().tensor_peak_flops() / 1e12);
}

TEST(PerfEstimator, OptimizedBeatsCublasLikeAtLargeSizes) {
  core::PerfEstimator ours(device::rtx2070(), core::HgemmConfig::optimized());
  core::PerfEstimator base(device::rtx2070(), core::HgemmConfig::cublas_like());
  const GemmShape big{12288, 12288, 12288};
  EXPECT_GT(ours.estimate(big).tflops, 1.2 * base.estimate(big).tflops);
}

TEST(PerfEstimator, T4IsDramBound) {
  // Fig. 7 / Section VII-C: T4 plateaus near ~50 TF, well under its 65 TF peak.
  core::PerfEstimator est(device::t4(), core::HgemmConfig::optimized());
  const auto p = est.estimate({8192, 8192, 8192});
  EXPECT_LT(p.tflops, 0.9 * device::t4().tensor_peak_flops() / 1e12);
  EXPECT_GT(p.tflops, 0.6 * device::t4().tensor_peak_flops() / 1e12);
}

}  // namespace
}  // namespace tc
