// Regression guards for the Table II methodology and for schedule hygiene:
// the streaming microbenchmarks must recover the device's sustained
// bandwidths, and every generated kernel must pass the scheduling lint.
#include <gtest/gtest.h>

#include "core/kernel_gen.hpp"
#include "driver/device.hpp"
#include "kernels/micro.hpp"
#include "sass/validator.hpp"

namespace tc {
namespace {

double measured_dram_gbps(const device::DeviceSpec& spec) {
  driver::Device dev(spec);
  const std::uint32_t per_cta = 1024 * 1024;
  auto data = dev.alloc<std::uint8_t>(4 * per_cta);
  auto clocks = dev.alloc<std::uint32_t>(64);
  const auto prog = kernels::stream_load_kernel(per_cta, /*distinct_per_cta=*/true, 1);
  sim::Launch launch;
  launch.program = &prog;
  launch.grid_x = 2;
  launch.params = {clocks.addr, data.addr};
  const sim::CtaCoord ctas[2] = {{0, 0}, {1, 0}};
  auto cfg = dev.timing_sm_share();
  cfg.model_l1 = false;
  const auto stats = dev.run_timed(launch, std::span(ctas, 2), cfg);
  return stats.dram_bytes / static_cast<double>(stats.cycles) * spec.num_sms *
         spec.sm_clock_ghz;
}

TEST(Bandwidth, StreamingRecoversSustainedDram) {
  // Paper Table II measured values are the calibration; the streaming
  // methodology must reproduce them within ~10%.
  EXPECT_NEAR(measured_dram_gbps(device::rtx2070()), 380.0, 38.0);
  EXPECT_NEAR(measured_dram_gbps(device::t4()), 238.0, 24.0);
}

TEST(Lint, AllGeneratedKernelsAreClean) {
  const GemmShape shape{256, 256, 128};
  const GemmShape shape_cb{128, 128, 256};
  const sass::Program kernels_to_check[] = {
      core::hgemm_kernel(core::HgemmConfig::optimized(), shape),
      core::hgemm_kernel(core::HgemmConfig::cublas_like(), shape_cb),
      core::hgemm_kernel(core::HgemmConfig::optimized(), shape, core::Epilogue{2.0f, 1.0f}),
      [] {
        auto cfg = core::HgemmConfig::optimized();
        cfg.prefetch = false;
        return core::hgemm_kernel(cfg, {256, 256, 128});
      }(),
      core::wmma_naive_kernel({64, 128, 64}),
  };
  for (const auto& prog : kernels_to_check) {
    const auto warnings = sass::lint(prog);
    EXPECT_TRUE(warnings.empty()) << prog.name << ": " << warnings.front();
  }
}

TEST(Lint, MicrobenchKernelsOnlyWarnDeliberately) {
  // CPI loop kernels intentionally leave loads unsynchronized; the lint must
  // flag them (that is the tool working), but they must still validate.
  const auto prog = kernels::ldg_cpi_kernel(sass::MemWidth::k128, sass::CacheOp::kCg, 32, 4,
                                            64 * 1024);
  EXPECT_FALSE(sass::lint(prog).empty());
}

}  // namespace
}  // namespace tc
