// Timing-engine tests built on the microbenchmark kernels: these reproduce
// the paper's Tables I, III, IV/V measurements on the simulator, and verify
// the hazard-accurate latency semantics (Section IV-C).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "driver/device.hpp"
#include "kernels/micro.hpp"
#include "sim/mma_exec.hpp"

namespace tc {
namespace {

struct ClockedRun {
  double cpi = 0.0;
  sim::TimedStats stats;
};

/// Runs a single-CTA clocked loop kernel and extracts lane 0's CPI.
ClockedRun run_clocked(driver::Device& dev, const sass::Program& prog, int unroll, int iters,
                       std::vector<std::uint32_t> extra_params = {}) {
  auto out = dev.alloc<std::uint32_t>(64);
  sim::Launch launch;
  launch.program = &prog;
  launch.params = {out.addr};
  for (auto p : extra_params) launch.params.push_back(p);

  const sim::CtaCoord cta{0, 0};
  ClockedRun r;
  r.stats = dev.run_timed(launch, std::span(&cta, 1), dev.timing_whole_device());

  std::vector<std::uint32_t> clocks(64);
  dev.download(std::span(clocks.data(), clocks.size()), out);
  r.cpi = kernels::cpi_from_clocks(clocks[0], clocks[32], unroll, iters);
  return r;
}

TEST(MicroHmma, CpiIsNearEight) {
  // Paper Table I: theoretical 8.00, measured 8.06.
  driver::Device dev(device::rtx2070());
  const auto prog = kernels::hmma_cpi_kernel(128, 50);
  const auto r = run_clocked(dev, prog, 128, 50);
  EXPECT_GE(r.cpi, 8.0);
  EXPECT_LE(r.cpi, 8.25);
}

TEST(MicroHmma, SameCpiOnT4) {
  // Paper: RTX2070 and T4 share the SM design, so the CPI matches.
  driver::Device dev(device::t4());
  const auto prog = kernels::hmma_cpi_kernel(128, 50);
  const auto r = run_clocked(dev, prog, 128, 50);
  EXPECT_GE(r.cpi, 8.0);
  EXPECT_LE(r.cpi, 8.25);
}

/// Latency probe harness: prepares random fragments, runs the probe at
/// `stall`, returns (low half correct, high half correct).
std::pair<bool, bool> latency_probe(int stall) {
  driver::Device dev(device::rtx2070());
  Rng rng(3 + stall);

  // Build operand buffers in the register-image layout the kernel loads.
  sim::WarpRegs staging;
  sim::Tile8x8 a_lo, a_hi, bt, c_lo, c_hi;
  half a[16][8], b[8][8], c[16][8];
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 8; ++j) {
      a[i][j] = rng.next_half();
      c[i][j] = rng.next_half();
      (i < 8 ? a_lo : a_hi).m[i % 8][j] = a[i][j];
      (i < 8 ? c_lo : c_hi).m[i % 8][j] = c[i][j];
    }
  }
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      b[i][j] = rng.next_half();
      bt.m[i][j] = b[i][j];
    }
  }
  scatter_row_major(staging, sass::Reg{0}, a_lo);
  scatter_row_major(staging, sass::Reg{1}, a_hi);
  scatter_col_major(staging, sass::Reg{2}, bt);
  scatter_row_major(staging, sass::Reg{3}, c_lo);
  scatter_row_major(staging, sass::Reg{4}, c_hi);

  std::vector<std::uint32_t> input(5 * 32);
  for (int r = 0; r < 5; ++r) {
    for (int lane = 0; lane < 32; ++lane) {
      input[static_cast<std::size_t>(r * 32 + lane)] =
          staging.read(sass::Reg{static_cast<std::uint8_t>(r)}, lane);
    }
  }

  auto din = dev.alloc<std::uint32_t>(input.size());
  auto dout = dev.alloc<std::uint32_t>(64);
  dev.upload(din, std::span<const std::uint32_t>(input));

  const auto prog = kernels::hmma_latency_kernel(stall);
  sim::Launch launch;
  launch.program = &prog;
  launch.params = {din.addr, dout.addr};
  const sim::CtaCoord cta{0, 0};
  dev.run_timed(launch, std::span(&cta, 1), dev.timing_whole_device());

  std::vector<std::uint32_t> out(64);
  dev.download(std::span(out.data(), out.size()), dout);

  // Expected D from the scalar model.
  sim::WarpRegs expect;
  scatter_row_major(expect, sass::Reg{0}, a_lo);  // reuse staging layout
  bool lo_ok = true;
  bool hi_ok = true;
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 8; ++j) {
      float acc = c[i][j].to_float();
      for (int kk = 0; kk < 8; ++kk) acc += a[i][kk].to_float() * b[kk][j].to_float();
      const half want(acc);
      // STG.64 interleaves the two destination registers per lane:
      // out[2*lane] = R8 (rows 0-7), out[2*lane+1] = R9 (rows 8-15).
      const auto pos = sim::row_major_pos(i % 8, j);
      const std::uint32_t word =
          out[static_cast<std::size_t>(2 * pos.lane + (i < 8 ? 0 : 1))];
      const half got = pos.part == 0 ? half2::unpack(word).lo : half2::unpack(word).hi;
      const bool ok = got.bits() == want.bits();
      (i < 8 ? lo_ok : hi_ok) &= ok;
    }
  }
  return {lo_ok, hi_ok};
}

TEST(MicroHmma, LatencyIsTenAndFourteen) {
  // The paper's methodology: sweep the stall count; the low half becomes
  // correct at 10 cycles, the high half at 14 (Table I).
  for (int stall = 6; stall <= 15; ++stall) {
    const auto [lo_ok, hi_ok] = latency_probe(stall);
    EXPECT_EQ(lo_ok, stall >= 10) << "stall=" << stall;
    EXPECT_EQ(hi_ok, stall >= 14) << "stall=" << stall;
  }
}

TEST(MicroSmem, LdsCpiMatchesTableIV) {
  driver::Device dev(device::rtx2070());
  const struct {
    sass::MemWidth width;
    double expect;
  } rows[] = {{sass::MemWidth::k32, 2.0},
              {sass::MemWidth::k64, 4.0},
              {sass::MemWidth::k128, 8.0}};
  for (const auto& row : rows) {
    const auto prog = kernels::smem_cpi_kernel(sass::Opcode::kLds, row.width, 128, 50);
    const auto r = run_clocked(dev, prog, 128, 50);
    EXPECT_GE(r.cpi, row.expect * 0.97) << "width " << static_cast<int>(row.width);
    EXPECT_LE(r.cpi, row.expect + 0.25) << "width " << static_cast<int>(row.width);
  }
}

TEST(MicroSmem, StsCpiMatchesTableIV) {
  driver::Device dev(device::rtx2070());
  const struct {
    sass::MemWidth width;
    double expect;
  } rows[] = {{sass::MemWidth::k32, 4.0},
              {sass::MemWidth::k64, 6.0},
              {sass::MemWidth::k128, 10.0}};
  for (const auto& row : rows) {
    const auto prog = kernels::smem_cpi_kernel(sass::Opcode::kSts, row.width, 128, 50);
    const auto r = run_clocked(dev, prog, 128, 50);
    EXPECT_GE(r.cpi, row.expect * 0.97);
    EXPECT_LE(r.cpi, row.expect + 0.25);
  }
}

TEST(MicroLdg, L1HitCpiMatchesTableIII) {
  driver::Device dev(device::rtx2070());
  auto buf = dev.alloc<std::uint8_t>(1 << 20);
  const struct {
    sass::MemWidth width;
    double expect;
  } rows[] = {{sass::MemWidth::k32, 4.0},
              {sass::MemWidth::k64, 4.0},
              {sass::MemWidth::k128, 8.0}};
  for (const auto& row : rows) {
    // Window small enough to live in L1 after the first pass.
    const auto prog =
        kernels::ldg_cpi_kernel(row.width, sass::CacheOp::kCa, 128, 50, 16 * 1024);
    const auto r = run_clocked(dev, prog, 128, 50, {buf.addr});
    EXPECT_GE(r.cpi, row.expect * 0.97) << "width " << static_cast<int>(row.width);
    EXPECT_LE(r.cpi, row.expect + 0.35) << "width " << static_cast<int>(row.width);
  }
}

TEST(MicroLdg, L2CpiMatchesTableIII) {
  driver::Device dev(device::rtx2070());
  auto buf = dev.alloc<std::uint8_t>(1 << 20);
  const struct {
    sass::MemWidth width;
    double expect;
  } rows[] = {{sass::MemWidth::k32, 4.0},
              {sass::MemWidth::k64, 8.0},
              {sass::MemWidth::k128, 16.0}};
  for (const auto& row : rows) {
    // .CG bypasses L1; the window fits in L2 so steady state is L2-resident.
    const auto prog =
        kernels::ldg_cpi_kernel(row.width, sass::CacheOp::kCg, 128, 50, 256 * 1024);
    const auto r = run_clocked(dev, prog, 128, 50, {buf.addr});
    EXPECT_GE(r.cpi, row.expect * 0.97) << "width " << static_cast<int>(row.width);
    EXPECT_LE(r.cpi, row.expect + 0.6) << "width " << static_cast<int>(row.width);
  }
}

TEST(MicroLds, ConflictScalesCost) {
  driver::Device dev(device::rtx2070());
  double cpi_by_stride[5] = {};
  const int strides[] = {1, 2, 4, 8, 16};
  for (int i = 0; i < 5; ++i) {
    const auto prog = kernels::lds_conflict_kernel(strides[i], 128, 30);
    cpi_by_stride[i] = run_clocked(dev, prog, 128, 30).cpi;
  }
  // Stride 1 conflict-free (~2.0); each doubling of the stride doubles ways.
  EXPECT_NEAR(cpi_by_stride[0], 2.0, 0.3);
  for (int i = 1; i < 5; ++i) {
    EXPECT_NEAR(cpi_by_stride[static_cast<std::size_t>(i)],
                2.0 * strides[i], 0.3 + 0.05 * strides[i])
        << "stride " << strides[i];
  }
}

TEST(MicroSmem, ThroughputBytesPerCycle) {
  // Paper Table V: LDS.64/128 reach the 64 B/cycle peak; STS.128 leads STS.
  driver::Device dev(device::rtx2070());
  auto bytes_per_cycle = [&](sass::Opcode op, sass::MemWidth w) {
    const auto prog = kernels::smem_cpi_kernel(op, w, 128, 50);
    const auto r = run_clocked(dev, prog, 128, 50);
    return 32.0 * sass::width_bytes(w) / r.cpi;
  };
  EXPECT_NEAR(bytes_per_cycle(sass::Opcode::kLds, sass::MemWidth::k64), 64.0, 2.0);
  EXPECT_NEAR(bytes_per_cycle(sass::Opcode::kLds, sass::MemWidth::k128), 64.0, 2.0);
  const double sts32 = bytes_per_cycle(sass::Opcode::kSts, sass::MemWidth::k32);
  const double sts128 = bytes_per_cycle(sass::Opcode::kSts, sass::MemWidth::k128);
  EXPECT_GT(sts128, 1.5 * sts32);  // paper: 62.4% higher (51.2 vs 31.5)
}

}  // namespace
}  // namespace tc
