// Functional-executor tests: small hand-written SASS programs, then the full
// HGEMM kernels against the bit-exact Tensor Core reference.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/hgemm.hpp"
#include "core/kernel_gen.hpp"
#include "core/reference.hpp"
#include "driver/device.hpp"
#include "sass/builder.hpp"
#include "sim/functional.hpp"

namespace tc {
namespace {

using sass::CmpOp;
using sass::KernelBuilder;
using sass::MemWidth;
using sass::Pred;
using sass::Reg;
using sass::SpecialReg;

driver::Device make_device() { return driver::Device(device::rtx2070()); }

TEST(Functional, TidAndParamPlumbing) {
  // out[tid] = tid * 3 + param.
  KernelBuilder b("plumb");
  b.threads(64);
  b.s2r(Reg{0}, SpecialReg::kTidX);
  b.mov_param(Reg{1}, 0);  // out base
  b.mov_param(Reg{2}, 1);  // addend
  b.imad_imm(Reg{3}, Reg{0}, 3, Reg{2});
  b.shl(Reg{4}, Reg{0}, 2);
  b.iadd3(Reg{4}, Reg{4}, Reg{1});
  b.stg(MemWidth::k32, Reg{4}, Reg{3});
  b.exit();
  const auto prog = b.finalize();

  auto dev = make_device();
  auto out = dev.alloc<std::uint32_t>(64);
  sim::Launch launch;
  launch.program = &prog;
  launch.params = {out.addr, 1000};
  dev.launch(launch);

  std::vector<std::uint32_t> host(64);
  dev.download(std::span(host.data(), host.size()), out);
  for (std::uint32_t t = 0; t < 64; ++t) EXPECT_EQ(host[t], t * 3 + 1000);
}

TEST(Functional, LoopAndPredication) {
  // out[tid] = sum over i<10 of (tid + i); even tids only.
  KernelBuilder b("loop");
  b.threads(32);
  b.s2r(Reg{0}, SpecialReg::kTidX);
  b.mov_param(Reg{1}, 0);
  b.mov_imm(Reg{2}, 0);   // acc
  b.mov_imm(Reg{3}, 0);   // i
  b.label("top");
  b.iadd3(Reg{4}, Reg{0}, Reg{3});
  b.iadd3(Reg{2}, Reg{2}, Reg{4});
  b.iadd_imm(Reg{3}, Reg{3}, 1);
  b.isetp_imm(Pred{0}, CmpOp::kLt, Reg{3}, 10);
  b.bra("top").pred(Pred{0});
  b.land_imm(Reg{5}, Reg{0}, 1);
  b.isetp_imm(Pred{1}, CmpOp::kEq, Reg{5}, 0);
  b.shl(Reg{6}, Reg{0}, 2);
  b.iadd3(Reg{6}, Reg{6}, Reg{1});
  b.stg(MemWidth::k32, Reg{6}, Reg{2}).pred(Pred{1});
  b.exit();
  const auto prog = b.finalize();

  auto dev = make_device();
  auto out = dev.alloc<std::uint32_t>(32);
  sim::Launch launch;
  launch.program = &prog;
  launch.params = {out.addr};
  dev.launch(launch);

  std::vector<std::uint32_t> host(32);
  dev.download(std::span(host.data(), host.size()), out);
  for (std::uint32_t t = 0; t < 32; ++t) {
    const std::uint32_t want = t % 2 == 0 ? 10 * t + 45 : 0;
    EXPECT_EQ(host[t], want) << "tid " << t;
  }
}

TEST(Functional, SharedMemoryBarrierAcrossWarps) {
  // Warp 0 stores tid*7 to smem; after BAR.SYNC warp 1 reads it back out.
  KernelBuilder b("smem_bar");
  b.threads(64);
  b.smem(256);
  b.s2r(Reg{0}, SpecialReg::kTidX);
  b.mov_param(Reg{1}, 0);
  b.land_imm(Reg{2}, Reg{0}, 31);  // lane
  b.shl(Reg{3}, Reg{2}, 2);        // lane*4
  b.isetp_imm(Pred{0}, CmpOp::kLt, Reg{0}, 32);  // warp 0
  b.imad_imm(Reg{4}, Reg{0}, 7, sass::RZ);
  b.sts(MemWidth::k32, Reg{3}, Reg{4}).pred(Pred{0});
  b.bar_sync();
  b.isetp_imm(Pred{1}, CmpOp::kGe, Reg{0}, 32);  // warp 1
  b.lds(MemWidth::k32, Reg{5}, Reg{3});
  b.write_bar(0).stall(1);
  b.shl(Reg{6}, Reg{2}, 2).wait_on(0);
  b.iadd3(Reg{6}, Reg{6}, Reg{1});
  b.stg(MemWidth::k32, Reg{6}, Reg{5}).pred(Pred{1});
  b.exit();
  const auto prog = b.finalize();

  auto dev = make_device();
  auto out = dev.alloc<std::uint32_t>(32);
  sim::Launch launch;
  launch.program = &prog;
  launch.params = {out.addr};
  dev.launch(launch);

  std::vector<std::uint32_t> host(32);
  dev.download(std::span(host.data(), host.size()), out);
  for (std::uint32_t l = 0; l < 32; ++l) EXPECT_EQ(host[l], l * 7);
}

TEST(Functional, DivergentBranchRejected) {
  KernelBuilder b("diverge");
  b.threads(32);
  b.s2r(Reg{0}, SpecialReg::kTidX);
  b.isetp_imm(Pred{0}, CmpOp::kLt, Reg{0}, 16);
  b.label("x");
  b.bra("x").pred(Pred{0});  // half the warp branches: unsupported
  b.exit();
  const auto prog = b.finalize();
  auto dev = make_device();
  sim::Launch launch;
  launch.program = &prog;
  EXPECT_THROW(dev.launch(launch), Error);
}

TEST(Functional, RunawayLoopGuard) {
  KernelBuilder b("forever");
  b.threads(32);
  b.label("x");
  b.bra("x");
  b.exit();
  const auto prog = b.finalize();
  auto dev = make_device();
  sim::Launch launch;
  launch.program = &prog;
  sim::FunctionalExecutor exec(dev.gmem());
  EXPECT_THROW(exec.run(launch, /*max_warp_instructions=*/10000), Error);
}

TEST(Functional, RunawayLoopGuardSpansBarriers) {
  // The instruction budget is per warp over its whole lifetime, not per
  // barrier-to-barrier stretch: an infinite loop whose body contains a
  // BAR.SYNC re-enters the executor's inner stretch each iteration and must
  // still trip the guard instead of spinning forever.
  KernelBuilder b("forever_bar");
  b.threads(32);
  b.label("x");
  b.bar_sync();
  b.bra("x");
  b.exit();
  const auto prog = b.finalize();
  auto dev = make_device();
  sim::Launch launch;
  launch.program = &prog;
  sim::FunctionalExecutor exec(dev.gmem());
  EXPECT_THROW(exec.run(launch, /*max_warp_instructions=*/10000), Error);
}

TEST(Functional, InstructionStatsSurviveBarrierStretches) {
  // Per-warp counts accumulate across barrier stretches into the run stats:
  // 2 warps x (s2r + 3x(bar + nop) + bar + exit) = 2 x 9 instructions.
  KernelBuilder b("bar_count");
  b.threads(64);
  b.s2r(Reg{0}, SpecialReg::kTidX);
  for (int i = 0; i < 3; ++i) {
    b.bar_sync();
    b.nop();
  }
  b.bar_sync();
  b.exit();
  const auto prog = b.finalize();
  auto dev = make_device();
  sim::Launch launch;
  launch.program = &prog;
  sim::FunctionalExecutor exec(dev.gmem());
  const auto stats = exec.run(launch, /*max_warp_instructions=*/1000);
  EXPECT_EQ(stats.instructions, 18u);
}

// --- full kernels -------------------------------------------------------------

class HgemmFunctional : public ::testing::TestWithParam<core::HgemmConfig> {};

TEST_P(HgemmFunctional, MatchesTensorCoreReference) {
  const core::HgemmConfig cfg = GetParam();
  Rng rng(99);
  const std::size_t m = static_cast<std::size_t>(cfg.bm);
  const std::size_t n = static_cast<std::size_t>(cfg.bn);
  const std::size_t k = static_cast<std::size_t>(cfg.bk) * 3;

  HalfMatrix a(m, k), bt(n, k);
  a.randomize(rng, -0.5f, 0.5f);
  bt.randomize(rng, -0.5f, 0.5f);

  auto dev = make_device();
  const HalfMatrix c = core::run_hgemm(dev, a, bt, cfg);
  const HalfMatrix ref = core::gemm_ref_tc(a, bt);
  EXPECT_EQ(core::mismatch_count(c, ref), 0u);

  const FloatMatrix ref32 = core::gemm_ref_f32(a, bt);
  EXPECT_LT(core::max_abs_diff(c, ref32), 0.25);  // fp16 accumulation tolerance
}

INSTANTIATE_TEST_SUITE_P(
    Configs, HgemmFunctional,
    ::testing::Values(core::HgemmConfig::optimized(), core::HgemmConfig::cublas_like(),
                      [] {
                        auto c = core::HgemmConfig::optimized();
                        c.layout = core::SmemLayout::kNaiveRowMajor;
                        return c;
                      }(),
                      [] {
                        auto c = core::HgemmConfig::optimized();
                        c.prefetch = false;
                        return c;
                      }(),
                      [] {
                        auto c = core::HgemmConfig::optimized();
                        c.sts_interleave = 2;
                        return c;
                      }()),
    [](const auto& info) {
      std::string n = info.param.name();
      for (auto& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n + "_" + std::to_string(info.index);
    });

TEST(HgemmFunctional, MultiBlockGrid) {
  auto cfg = core::HgemmConfig::optimized();
  Rng rng(5);
  HalfMatrix a(512, 64), bt(512, 64);
  a.randomize(rng, -0.5f, 0.5f);
  bt.randomize(rng, -0.5f, 0.5f);
  auto dev = make_device();
  const HalfMatrix c = core::run_hgemm(dev, a, bt, cfg);
  const HalfMatrix ref = core::gemm_ref_tc(a, bt);
  EXPECT_EQ(core::mismatch_count(c, ref), 0u);
}

TEST(HgemmFunctional, RaggedSizesArePadded) {
  auto cfg = core::HgemmConfig::optimized();
  Rng rng(6);
  HalfMatrix a(100, 72), bt(130, 72);
  a.randomize(rng, -0.5f, 0.5f);
  bt.randomize(rng, -0.5f, 0.5f);
  auto dev = make_device();
  const HalfMatrix c = core::run_hgemm(dev, a, bt, cfg);
  ASSERT_EQ(c.rows(), 100u);
  ASSERT_EQ(c.cols(), 130u);
  const HalfMatrix ref = core::gemm_ref_tc(a, bt);
  EXPECT_EQ(core::mismatch_count(c, ref), 0u);
}

TEST(WmmaNaive, MatchesReference) {
  Rng rng(11);
  HalfMatrix a(64, 64), bt(256, 64);
  a.randomize(rng, -0.5f, 0.5f);
  bt.randomize(rng, -0.5f, 0.5f);
  auto dev = make_device();
  const HalfMatrix c = core::run_wmma_naive(dev, a, bt);
  const HalfMatrix ref = core::gemm_ref_tc(a, bt);
  EXPECT_EQ(core::mismatch_count(c, ref), 0u);
}

}  // namespace
}  // namespace tc
