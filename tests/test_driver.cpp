// Driver API tests: allocation, transfers, launches, event timing, device
// specs and timing-config presets.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "driver/device.hpp"
#include "sass/builder.hpp"

namespace tc::driver {
namespace {

TEST(Device, UploadDownloadRoundTrip) {
  Device dev(device::rtx2070());
  Rng rng(1);
  std::vector<float> src(1000);
  for (auto& f : src) f = rng.next_float(-10, 10);
  auto ptr = dev.alloc<float>(src.size());
  dev.upload(ptr, std::span<const float>(src));
  std::vector<float> dst(src.size());
  dev.download(std::span<float>(dst), ptr);
  EXPECT_EQ(src, dst);
}

TEST(Device, TypedPointerArithmetic) {
  Device dev(device::rtx2070());
  auto ptr = dev.alloc<half>(100);
  EXPECT_EQ(ptr.at(10), ptr.addr + 20);  // 2 bytes per element
  EXPECT_FALSE(ptr.is_null());
  EXPECT_TRUE(DevPtr<half>{}.is_null());
}

TEST(Device, ResetReleasesArena) {
  Device dev(device::rtx2070());
  const auto before = dev.alloc<std::uint8_t>(1 << 20).addr;
  dev.reset();
  const auto after = dev.alloc<std::uint8_t>(1 << 20).addr;
  EXPECT_EQ(before, after);
}

TEST(Device, LaunchValidatesParams) {
  Device dev(device::rtx2070());
  sass::KernelBuilder b("needs_params");
  b.mov_param(sass::Reg{0}, 3);
  b.exit();
  const auto prog = b.finalize();
  sim::Launch launch;
  launch.program = &prog;
  launch.params = {1, 2};  // only 2 words; kernel reads word 3
  EXPECT_THROW(dev.launch(launch), tc::Error);
}

TEST(Device, TimingPresetsScaleBandwidth) {
  Device dev(device::rtx2070());
  const auto whole = dev.timing_whole_device();
  const auto share = dev.timing_sm_share();
  EXPECT_NEAR(whole.dram_bytes_per_cycle / share.dram_bytes_per_cycle, 36.0, 1e-9);
  EXPECT_NEAR(whole.l2_bytes_per_cycle / share.l2_bytes_per_cycle, 36.0, 1e-9);
}

TEST(EventPair, ConvertsCyclesToTime) {
  const auto spec = device::rtx2070();
  EventPair ev(spec);
  ev.record(1.62e9);  // one second worth of cycles at 1.62 GHz
  EXPECT_NEAR(ev.elapsed_s(), 1.0, 1e-9);
  EXPECT_NEAR(ev.elapsed_ms(), 1000.0, 1e-6);
}

TEST(Spec, PeaksMatchPaper) {
  // Paper Table II: 59.7 TFLOPS (RTX2070) and 65 TFLOPS (T4).
  EXPECT_NEAR(device::rtx2070().tensor_peak_flops() / 1e12, 59.7, 0.2);
  EXPECT_NEAR(device::t4().tensor_peak_flops() / 1e12, 65.0, 0.3);
  // FP16 units are 4x slower than tensor cores.
  EXPECT_NEAR(device::rtx2070().fp16_peak_flops() * 4, device::rtx2070().tensor_peak_flops(),
              1.0);
}

TEST(Spec, BandwidthConversions) {
  const auto spec = device::rtx2070();
  EXPECT_NEAR(spec.dram_bytes_per_cycle(), 380.0 / 1.62, 0.01);
  EXPECT_NEAR(spec.dram_bytes_per_cycle_per_sm() * 36, spec.dram_bytes_per_cycle(), 1e-9);
  EXPECT_NEAR(spec.cycles_to_seconds(1.62e9), 1.0, 1e-12);
}

TEST(Spec, LookupByName) {
  EXPECT_EQ(device::spec_by_name("rtx2070").name, "RTX2070");
  EXPECT_EQ(device::spec_by_name("T4").name, "T4");
  EXPECT_THROW(device::spec_by_name("a100"), tc::Error);
}

}  // namespace
}  // namespace tc::driver
