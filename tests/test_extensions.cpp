// Tests of the future-work extensions (paper Section VIII): FP32
// accumulators (HMMA.1688.F32), the Volta-style HMMA.884, the INT8
// IMMA.8816, and the L2-friendly launch order — each exercised through real
// SASS programs on the executor, not just the layout helpers.
#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"
#include "driver/device.hpp"
#include "sass/builder.hpp"
#include "sim/exec_core.hpp"
#include "sim/mma_exec.hpp"
#include "sim/pipes.hpp"

namespace tc {
namespace {

using sass::KernelBuilder;
using sass::MemWidth;
using sass::Reg;
using sass::RZ;
using sass::SpecialReg;

/// Builds a one-warp kernel: load A(2 regs), B(1 reg) fragments from
/// param[0], run `op`, store the D registers to param[1].
sass::Program single_mma_kernel(sass::Opcode op) {
  const auto counts = sass::mma_reg_counts(op);
  KernelBuilder b("ext_mma");
  b.threads(32);
  b.s2r(Reg{40}, SpecialReg::kLaneId).stall(1);
  b.mov_param(Reg{41}, 0).stall(1);
  b.mov_param(Reg{42}, 1).stall(13);
  b.shl(Reg{43}, Reg{40}, 2).stall(6);
  b.iadd3(Reg{44}, Reg{41}, Reg{43}).stall(6);  // in + lane*4
  b.iadd3(Reg{45}, Reg{42}, Reg{43}).stall(6);  // out + lane*4
  int offset = 0;
  for (int r = 0; r < counts.a; ++r, offset += 128) {
    b.ldg(MemWidth::k32, Reg{static_cast<std::uint8_t>(4 + r)}, Reg{44}, offset).write_bar(0).stall(1);
  }
  for (int r = 0; r < counts.b; ++r, offset += 128) {
    b.ldg(MemWidth::k32, Reg{static_cast<std::uint8_t>(8 + r)}, Reg{44}, offset).write_bar(0).stall(1);
  }
  sass::Instruction inst;
  inst.op = op;
  inst.dst = Reg{16};
  inst.srca = Reg{4};
  inst.srcb = Reg{8};
  inst.srcc = RZ;
  inst.ctrl.stall = 15;
  inst.ctrl.wait_mask = 1;  // wait barrier 0
  b.emit(inst);
  for (int r = 0; r < counts.d; ++r) {
    b.stg(MemWidth::k32, Reg{45}, Reg{static_cast<std::uint8_t>(16 + r)}, r * 128).stall(1);
  }
  b.exit();
  return b.finalize();
}

struct MmaIo {
  std::vector<std::uint32_t> input;   // A regs then B regs, 32 words each
  std::vector<std::uint32_t> output;  // D regs, 32 words each
};

MmaIo run_mma(sass::Opcode op, const std::vector<std::uint32_t>& input) {
  const auto counts = sass::mma_reg_counts(op);
  driver::Device dev(device::rtx2070());
  auto din = dev.alloc<std::uint32_t>(input.size());
  auto dout = dev.alloc<std::uint32_t>(static_cast<std::size_t>(counts.d) * 32);
  dev.upload(din, std::span<const std::uint32_t>(input));
  const auto prog = single_mma_kernel(op);
  sim::Launch launch;
  launch.program = &prog;
  launch.params = {din.addr, dout.addr};
  dev.launch(launch);
  MmaIo io;
  io.input = input;
  io.output.resize(static_cast<std::size_t>(counts.d) * 32);
  dev.download(std::span<std::uint32_t>(io.output), dout);
  return io;
}

TEST(Extensions, Hmma1688F32ThroughProgram) {
  Rng rng(5);
  sim::WarpRegs staging;
  sim::Tile8x8 a_lo, a_hi, bt;
  for (auto* t : {&a_lo, &a_hi, &bt}) {
    for (auto& row : t->m) {
      for (auto& v : row) v = rng.next_half();
    }
  }
  scatter_row_major(staging, sass::Reg{0}, a_lo);
  scatter_row_major(staging, sass::Reg{1}, a_hi);
  scatter_col_major(staging, sass::Reg{2}, bt);
  std::vector<std::uint32_t> input(3 * 32);
  for (int r = 0; r < 3; ++r) {
    for (int lane = 0; lane < 32; ++lane) {
      input[static_cast<std::size_t>(r * 32 + lane)] =
          staging.read(sass::Reg{static_cast<std::uint8_t>(r)}, lane);
    }
  }

  const auto io = run_mma(sass::Opcode::kHmma1688F32, input);

  // Check every element in full FP32 precision.
  for (int i = 0; i < 16; ++i) {
    const sim::Tile8x8& at = i < 8 ? a_lo : a_hi;
    for (int j = 0; j < 8; ++j) {
      float want = 0.0f;
      for (int kk = 0; kk < 8; ++kk) {
        want += at.m[i % 8][kk].to_float() * bt.m[kk][j].to_float();
      }
      const int g = i / 8;
      const int p = j % 2;
      const int lane = (i % 8) * 4 + j / 2;
      float got;
      std::memcpy(&got, &io.output[static_cast<std::size_t>((2 * g + p) * 32 + lane)], 4);
      EXPECT_FLOAT_EQ(got, want) << "D(" << i << "," << j << ")";
    }
  }
}

TEST(Extensions, F32AccumulatorBeatsF16OnCancellation) {
  // The reason for FP32 accumulators: accumulate many small contributions
  // onto a large value; FP16 accumulation loses them entirely.
  sim::WarpRegs regs;
  sim::Tile8x8 a_lo, a_hi, bt;
  a_lo.m[0][0] = half(1.0f);
  bt.m[0][0] = half(2048.0f);   // first product: 2048
  for (int kk = 1; kk < 8; ++kk) {
    a_lo.m[0][kk] = half(1.0f);
    bt.m[kk][0] = half(0.5f);   // seven small contributions
  }
  scatter_row_major(regs, sass::Reg{0}, a_lo);
  scatter_row_major(regs, sass::Reg{1}, a_hi);
  scatter_col_major(regs, sass::Reg{2}, bt);
  sim::ImmediateSink sink(regs);

  // F32 path keeps 2051.5 exactly.
  sim::exec_mma(sass::Opcode::kHmma1688F32, regs, sass::Reg{8}, sass::Reg{0}, sass::Reg{2},
                sass::RZ, sink);
  float f32;
  std::uint32_t bits = regs.read(sass::Reg{8}, 0);
  std::memcpy(&f32, &bits, 4);
  EXPECT_FLOAT_EQ(f32, 2051.5f);

  // F16 result rounds to the binary16 grid at 2048 (step 2.0 there): 2052.
  sim::exec_mma(sass::Opcode::kHmma1688F16, regs, sass::Reg{12}, sass::Reg{0}, sass::Reg{2},
                sass::RZ, sink);
  const half f16 = half2::unpack(regs.read(sass::Reg{12}, 0)).lo;
  EXPECT_EQ(f16.to_float(), 2052.0f);
}

TEST(Extensions, Hmma884ThroughProgram) {
  Rng rng(6);
  sim::WarpRegs staging;
  sim::Tile8x8 at, bt;
  for (auto* t : {&at, &bt}) {
    for (auto& row : t->m) {
      for (auto& v : row) v = rng.next_half();
    }
  }
  scatter_row_major(staging, sass::Reg{0}, at);
  scatter_col_major(staging, sass::Reg{1}, bt);
  std::vector<std::uint32_t> input(2 * 32);
  for (int r = 0; r < 2; ++r) {
    for (int lane = 0; lane < 32; ++lane) {
      input[static_cast<std::size_t>(r * 32 + lane)] =
          staging.read(sass::Reg{static_cast<std::uint8_t>(r)}, lane);
    }
  }
  const auto io = run_mma(sass::Opcode::kHmma884F16, input);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      float acc = 0.0f;
      for (int kk = 0; kk < 8; ++kk) acc += at.m[i][kk].to_float() * bt.m[kk][j].to_float();
      const auto pos = sim::row_major_pos(i, j);
      const half got =
          pos.part == 0
              ? half2::unpack(io.output[static_cast<std::size_t>(pos.lane)]).lo
              : half2::unpack(io.output[static_cast<std::size_t>(pos.lane)]).hi;
      EXPECT_EQ(got.bits(), half(acc).bits());
    }
  }
}

TEST(Extensions, Imma8816ThroughProgram) {
  Rng rng(7);
  std::int8_t A[8][16];
  std::int8_t B[16][8];
  for (auto& row : A) {
    for (auto& v : row) v = static_cast<std::int8_t>(rng.next_int(-128, 127));
  }
  for (auto& row : B) {
    for (auto& v : row) v = static_cast<std::int8_t>(rng.next_int(-128, 127));
  }
  std::vector<std::uint32_t> input(2 * 32);
  for (int lane = 0; lane < 32; ++lane) {
    std::uint32_t aw = 0;
    std::uint32_t bw = 0;
    for (int byte = 0; byte < 4; ++byte) {
      aw |= static_cast<std::uint32_t>(
                static_cast<std::uint8_t>(A[lane / 4][(lane % 4) * 4 + byte]))
            << (8 * byte);
      bw |= static_cast<std::uint32_t>(
                static_cast<std::uint8_t>(B[(lane % 4) * 4 + byte][lane / 4]))
            << (8 * byte);
    }
    input[static_cast<std::size_t>(lane)] = aw;
    input[static_cast<std::size_t>(32 + lane)] = bw;
  }
  const auto io = run_mma(sass::Opcode::kImma8816S8, input);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      std::int32_t want = 0;
      for (int kk = 0; kk < 16; ++kk) want += A[i][kk] * B[kk][j];
      const int lane = i * 4 + j / 2;
      const auto got = static_cast<std::int32_t>(
          io.output[static_cast<std::size_t>((j % 2) * 32 + lane)]);
      EXPECT_EQ(got, want);
    }
  }
}

TEST(Extensions, Hmma884TimingIsHalfOf1688) {
  // CPI 4 vs 8: .884 does half the MACs of .1688 per instruction.
  sass::Instruction i884;
  i884.op = sass::Opcode::kHmma884F16;
  sass::Instruction i1688;
  i1688.op = sass::Opcode::kHmma1688F16;
  EXPECT_EQ(sim::pipe_occupancy(i884) * 2, sim::pipe_occupancy(i1688));
}

}  // namespace
}  // namespace tc
