// CLI contract tests (ISSUE 5): every tcgemm_cli subcommand that advertises
// --json must exit zero and emit a parseable tc-cli-v1 document with the
// stable header plus its command-specific payload keys. These are the keys
// external tooling (and tests/test_golden.cpp-style goldens) anchor on, so
// renaming one is a breaking schema change and should fail here first.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json_parse.hpp"

namespace tc {
namespace {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

/// Runs `tcgemm_cli <args> --json <tmp>`, expects exit 0, returns the parsed
/// document.
JsonValue run_cli(const std::string& args) {
  const auto out = std::filesystem::temp_directory_path() /
                   ("tc_cli_" + std::to_string(std::hash<std::string>{}(args)) + ".json");
  std::filesystem::remove(out);
  const std::string cmd =
      std::string(TC_CLI_BIN) + " " + args + " --json " + out.string() + " > /dev/null";
  const int rc = std::system(cmd.c_str());
  EXPECT_EQ(rc, 0) << cmd;
  const auto doc = json_parse(read_file(out));
  std::filesystem::remove(out);
  return doc;
}

/// The tc-cli-v1 header every command writes before its payload.
void expect_header(const JsonValue& doc, const std::string& command) {
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("schema").as_string(), "tc-cli-v1");
  EXPECT_EQ(doc.at("command").as_string(), command);
  EXPECT_FALSE(doc.at("config").as_string().empty());
  EXPECT_FALSE(doc.at("device").as_string().empty());
  EXPECT_GT(doc.at("m").as_number(), 0.0);
  EXPECT_GT(doc.at("n").as_number(), 0.0);
  EXPECT_GT(doc.at("k").as_number(), 0.0);
}

TEST(CliContract, Perf) {
  const JsonValue doc = run_cli("perf --device rtx2070 --m 4096 --n 4096 --k 4096");
  expect_header(doc, "perf");
  const JsonValue& p = doc.at("perf");
  for (const char* key :
       {"tflops", "ms", "waves", "l2_hit_rate", "dram_efficiency", "cycles_per_iter",
        "ctas_per_sm"}) {
    EXPECT_TRUE(p.at(key).is_number()) << key;
  }
  EXPECT_GT(p.at("tflops").as_number(), 0.0);
}

TEST(CliContract, PerfDeviceEngine) {
  const JsonValue doc = run_cli("perf --engine device --m 256 --n 256 --k 64");
  expect_header(doc, "perf");
  const JsonValue& p = doc.at("device_perf");
  EXPECT_EQ(p.at("engine").as_string(), "device");
  for (const char* key : {"tflops", "ms", "device_cycles", "model_cycles", "rel_error",
                          "model_l2_hit_rate", "device_l2_hit_rate", "tail_imbalance",
                          "sms_used", "ctas_per_sm"}) {
    EXPECT_TRUE(p.at(key).is_number()) << key;
  }
}

TEST(CliContract, Lint) {
  const JsonValue doc = run_cli("lint");
  expect_header(doc, "lint");
  EXPECT_TRUE(doc.at("schedule_warnings").is_array());
  EXPECT_TRUE(doc.at("slack_findings").is_array());
}

TEST(CliContract, Check) {
  const JsonValue doc = run_cli("check");
  expect_header(doc, "check");
  const auto& kernels = doc.at("kernels").as_array();
  ASSERT_EQ(kernels.size(), 3u);  // optimized, cublas_like, wmma_naive
  for (const auto& k : kernels) {
    EXPECT_FALSE(k.at("kernel").as_string().empty());
    EXPECT_GT(k.at("instructions").as_number(), 0.0);
    EXPECT_EQ(k.at("errors").as_number(), 0.0) << k.at("kernel").as_string();
    EXPECT_TRUE(k.at("warnings").is_number());
    EXPECT_TRUE(k.at("diagnostics").is_array());
  }
}

TEST(CliContract, Fuzz) {
  const JsonValue doc = run_cli("fuzz --programs 5 --seed 3");
  expect_header(doc, "fuzz");
  EXPECT_EQ(doc.at("programs").as_number(), 5.0);
  EXPECT_TRUE(doc.at("divergences").is_number());
  EXPECT_TRUE(doc.at("failures").is_array());
  EXPECT_EQ(doc.at("failures").as_array().size(), 0u);
}

TEST(CliContract, Schedule) {
  const JsonValue doc = run_cli("schedule --m 256 --n 256 --k 64");
  expect_header(doc, "schedule");
  EXPECT_FALSE(doc.at("kernel").as_string().empty());
  for (const char* mode : {"minimal", "full"}) {
    const JsonValue& s = doc.at(mode);
    for (const char* key :
         {"instructions", "nops_inserted", "reordered", "barriers_used", "waits_placed",
          "waits_elided", "waits_dropped", "waits_hoisted", "reuse_flags",
          "static_issue_cycles", "timed_cycles"}) {
      EXPECT_TRUE(s.at(key).is_number()) << mode << "." << key;
    }
    EXPECT_GT(s.at("timed_cycles").as_number(), 0.0) << mode;
  }
  EXPECT_TRUE(doc.at("slack_findings").is_array());
}

TEST(CliContract, Tune) {
  const JsonValue doc = run_cli("tune --device rtx2070 --budget 4 --explore 1");
  expect_header(doc, "tune");
  // Default tune shape is the recorded-baseline probe shape.
  EXPECT_EQ(doc.at("m").as_number(), 256.0);
  EXPECT_EQ(doc.at("n").as_number(), 256.0);
  EXPECT_EQ(doc.at("k").as_number(), 64.0);

  const JsonValue& t = doc.at("tune");
  EXPECT_EQ(t.at("engine").as_string(), "timed-device");
  EXPECT_EQ(t.at("budget").as_number(), 4.0);
  EXPECT_TRUE(t.at("seed").is_number());
  EXPECT_TRUE(t.at("inversion_rate").is_number());

  const JsonValue& prune = t.at("prune");
  for (const char* key : {"raw", "tiling", "generator", "registers", "resources",
                          "launch_order", "legal", "evaluated"}) {
    EXPECT_TRUE(prune.at(key).is_number()) << key;
  }
  EXPECT_EQ(prune.at("evaluated").as_number(), 4.0);
  EXPECT_EQ(prune.at("raw").as_number(),
            prune.at("tiling").as_number() + prune.at("generator").as_number() +
                prune.at("registers").as_number() + prune.at("resources").as_number() +
                prune.at("launch_order").as_number() + prune.at("legal").as_number());

  const auto candidate_keys = {"config",       "regs",       "ctas_per_sm", "limiter",
                               "model_rank",   "model_cycles", "sim_cycles",  "tflops",
                               "sms_used",     "hazard_diags"};
  const JsonValue& best = t.at("best");
  for (const char* key : candidate_keys) EXPECT_TRUE(best.has(key)) << "best." << key;
  EXPECT_EQ(best.at("hazard_diags").as_number(), 0.0);

  const auto& cands = t.at("candidates").as_array();
  ASSERT_EQ(cands.size(), 4u);
  for (const auto& c : cands) {
    for (const char* key : candidate_keys) EXPECT_TRUE(c.has(key)) << "candidate." << key;
    EXPECT_EQ(c.at("hazard_diags").as_number(), 0.0) << c.at("config").as_string();
  }
  // Best is the first (lowest simulated cycles) candidate.
  EXPECT_EQ(best.at("config").as_string(), cands[0].at("config").as_string());
}

TEST(CliContract, TuneCacheMissThenHit) {
  const auto cache = std::filesystem::temp_directory_path() / "tc_cli_tune_cache.json";
  std::filesystem::remove(cache);

  // Cold: full search at the bucket shape, winner stored.
  const JsonValue miss =
      run_cli("tune --m 100 --n 100 --k 60 --budget 2 --cache " + cache.string());
  expect_header(miss, "tune");
  const JsonValue& mt = miss.at("tune");
  EXPECT_EQ(mt.at("engine").as_string(), "timed-device");
  EXPECT_FALSE(mt.at("cache").at("hit").as_bool());
  EXPECT_TRUE(mt.at("cache").at("stored").as_bool());
  EXPECT_EQ(mt.at("cache").at("bucket_m").as_number(), 128.0);
  EXPECT_EQ(mt.at("cache").at("bucket_n").as_number(), 128.0);
  EXPECT_EQ(mt.at("cache").at("bucket_k").as_number(), 64.0);

  // Warm: a different shape in the same bucket is answered without a search.
  const JsonValue hit =
      run_cli("tune --m 120 --n 97 --k 33 --budget 2 --cache " + cache.string());
  expect_header(hit, "tune");
  const JsonValue& ht = hit.at("tune");
  EXPECT_EQ(ht.at("engine").as_string(), "cache");
  EXPECT_TRUE(ht.at("cache").at("hit").as_bool());
  EXPECT_EQ(ht.at("cache").at("key").as_string(), mt.at("cache").at("key").as_string());
  EXPECT_EQ(ht.at("best").at("config").as_string(), mt.at("best").at("config").as_string());
  EXPECT_EQ(ht.at("best").at("sim_cycles").as_number(),
            mt.at("best").at("sim_cycles").as_number());
  std::filesystem::remove(cache);
}

TEST(CliContract, Serve) {
  const JsonValue doc =
      run_cli("serve --requests 12 --tenants 2 --workers 2 --budget 2 --seed 5");
  expect_header(doc, "serve");
  const JsonValue& s = doc.at("serve");

  const JsonValue& c = s.at("counters");
  for (const char* key :
       {"requests", "accepted", "shed", "completed", "batches", "batched_requests",
        "cache_lookups", "cache_hits", "cache_misses", "tune_evals", "hazard_diags",
        "sim_passes", "worker_busy_cycles"}) {
    EXPECT_TRUE(c.at(key).is_number()) << key;
  }
  EXPECT_EQ(c.at("requests").as_number(), 12.0);
  EXPECT_EQ(c.at("hazard_diags").as_number(), 0.0);
  EXPECT_EQ(c.at("accepted").as_number(),
            c.at("requests").as_number() - c.at("shed").as_number());

  for (const char* key : {"makespan_cycles", "mean_cycles", "p50_cycles", "p99_cycles",
                          "p50_ms", "p99_ms", "qps", "cache_hit_rate", "worker_utilization"}) {
    EXPECT_TRUE(s.at(key).is_number()) << key;
  }
  EXPECT_GT(s.at("qps").as_number(), 0.0);

  const auto& tenants = s.at("tenants").as_array();
  ASSERT_EQ(tenants.size(), 2u);
  for (const auto& t : tenants) {
    for (const char* key : {"tenant", "weight", "accepted", "shed", "completed",
                            "busy_cycles", "share", "p50_cycles", "p99_cycles"}) {
      EXPECT_TRUE(t.at(key).is_number()) << key;
    }
  }
}

TEST(CliContract, Numerics) {
  const JsonValue doc = run_cli("numerics --k 256 --seed 3");
  expect_header(doc, "numerics");
  const JsonValue& n = doc.at("numerics");
  EXPECT_EQ(n.at("seed").as_number(), 3.0);
  const auto& modes = n.at("modes").as_array();
  ASSERT_EQ(modes.size(), 2u);
  EXPECT_EQ(modes[0].as_string(), "idealized");
  EXPECT_EQ(modes[1].as_string(), "bitaccurate");

  // --k is the ladder ceiling: k doubles from 64, so 256 gives 3 points.
  const auto& points = n.at("points").as_array();
  ASSERT_EQ(points.size(), 3u);
  double prev_k = 0.0;
  for (const auto& p : points) {
    for (const char* key :
         {"k", "idealized_f16_max_rel", "idealized_f16_mean_rel", "bitacc_f16_max_rel",
          "bitacc_f16_mean_rel", "bitacc_f32_max_rel", "bitacc_f32_mean_rel"}) {
      EXPECT_TRUE(p.at(key).is_number()) << key;
    }
    EXPECT_GT(p.at("k").as_number(), prev_k);
    prev_k = p.at("k").as_number();
    // FP32 accumulation must beat FP16 accumulation at every point.
    EXPECT_LT(p.at("bitacc_f32_mean_rel").as_number(),
              p.at("bitacc_f16_mean_rel").as_number());
  }
  EXPECT_EQ(points.front().at("k").as_number(), 64.0);
  EXPECT_EQ(points.back().at("k").as_number(), 256.0);
}

TEST(CliContract, RunJitEngineCheckJson) {
  // `run --engine jit --check` executes the grid through the JIT and
  // bit-compares C against the host reference; the engine lands in the JSON
  // payload so tooling can tell which engine produced the artifact.
  const JsonValue doc = run_cli("run --m 64 --n 64 --k 64 --engine jit --check");
  expect_header(doc, "run");
  EXPECT_EQ(doc.at("engine").as_string(), "jit");
  EXPECT_EQ(doc.at("mismatches").as_number(), 0.0);
}

TEST(CliContract, RunJitEngineBitAccurateCheckJson) {
  const JsonValue doc = run_cli(
      "run --m 64 --n 64 --k 64 --engine jit --numerics bitaccurate --check");
  expect_header(doc, "run");
  EXPECT_EQ(doc.at("engine").as_string(), "jit");
  EXPECT_EQ(doc.at("numerics").as_string(), "bitaccurate");
  EXPECT_EQ(doc.at("mismatches").as_number(), 0.0);
}

TEST(CliContract, FuzzJitEngineJson) {
  const JsonValue doc = run_cli("fuzz --programs 5 --seed 50001 --engine jit");
  expect_header(doc, "fuzz");
  EXPECT_EQ(doc.at("engines").as_string(), "jit-vs-interpreter");
  EXPECT_EQ(doc.at("programs").as_number(), 5.0);
  EXPECT_EQ(doc.at("divergences").as_number(), 0.0);
  EXPECT_EQ(doc.at("failures").as_array().size(), 0u);
}

TEST(CliContract, FuzzDefaultEnginePairJson) {
  const JsonValue doc = run_cli("fuzz --programs 3 --seed 9");
  expect_header(doc, "fuzz");
  EXPECT_EQ(doc.at("engines").as_string(), "functional-vs-timed");
}

TEST(CliContract, EngineValidationIsPerCommand) {
  // --engine takes the union of the per-command vocabularies; each command
  // must still reject values that are not meaningful for it.
  const auto fails = [](const std::string& args) {
    const std::string cmd =
        std::string(TC_CLI_BIN) + " " + args + " > /dev/null 2>&1";
    return std::system(cmd.c_str()) != 0;
  };
  EXPECT_TRUE(fails("run --m 64 --n 64 --k 64 --engine bogus"));
  EXPECT_TRUE(fails("run --m 64 --n 64 --k 64 --engine model"));
  EXPECT_TRUE(fails("perf --m 256 --n 256 --k 64 --engine jit"));
  EXPECT_TRUE(fails("fuzz --programs 2 --engine model"));
}

TEST(CliContract, RunBitAccurateCheckJson) {
  // `run --numerics bitaccurate --check` verifies the executor against the
  // bit-accurate engine and must report zero mismatches.
  const JsonValue doc =
      run_cli("run --m 64 --n 64 --k 64 --numerics bitaccurate --check");
  expect_header(doc, "run");
  EXPECT_EQ(doc.at("numerics").as_string(), "bitaccurate");
  EXPECT_EQ(doc.at("mismatches").as_number(), 0.0);
}

}  // namespace
}  // namespace tc
