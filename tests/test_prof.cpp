// Profiler subsystem (src/prof): counter exactness on hand-built kernels,
// zero-perturbation of the timing engine, trace output sanity, and the
// cross-check between counter-observed pipe cycles and the paper's analytic
// blocking model (Table VI) that motivates the whole subsystem.
#include <gtest/gtest.h>

#include <sstream>

#include "core/profile.hpp"
#include "device/spec.hpp"
#include "mem/global_mem.hpp"
#include "model/blocking.hpp"
#include "prof/profiler.hpp"
#include "prof/trace.hpp"
#include "sass/builder.hpp"
#include "sim/timed_sm.hpp"

namespace tc {
namespace {

/// One warp, one CTA, full-device bandwidth, profiler attached.
sim::TimedStats run_program(const sass::Program& prog, prof::Profiler* profiler,
                            prof::TraceWriter* trace = nullptr) {
  if (profiler != nullptr) profiler->attach_trace(trace);
  mem::GlobalMemory gmem;
  sim::Launch launch;
  launch.program = &prog;
  sim::TimedConfig tc;
  tc.spec = device::rtx2070();
  tc.profiler = profiler;
  sim::TimedSm sm(tc, gmem);
  const sim::CtaCoord cta{0, 0};
  return sm.run(launch, std::span(&cta, 1));
}

sass::Program hmma_chain(int n) {
  sass::KernelBuilder b("hmma_chain");
  b.threads(32);
  for (int i = 0; i < n; ++i) {
    b.hmma_1688_f16(sass::Reg{8}, sass::Reg{2}, sass::Reg{4}, sass::RZ).stall(8);
  }
  b.exit();
  return b.finalize();
}

}  // namespace

TEST(Prof, TensorIssueCyclesAreExactly8PerHmma) {
  // HMMA.1688 occupies the tensor pipe for 8 cycles (Table I); N HMMAs must
  // be counted as exactly 8N busy cycles — the counter is causal, not
  // sampled.
  const int n = 17;
  const auto prog = hmma_chain(n);
  prof::Profiler p;
  const auto stats = run_program(prog, &p);
  const auto& c = p.counters();
  EXPECT_EQ(c.pipe_busy[prof::kPipeTensor], 8u * n);
  EXPECT_EQ(c.pipe_issue[prof::kPipeTensor], static_cast<std::uint64_t>(n));
  // Counters agree with the engine's own stats on every shared quantity.
  EXPECT_EQ(c.instructions, stats.instructions);
  EXPECT_EQ(c.cycles, stats.cycles);
  EXPECT_EQ(c.pipe_busy[prof::kPipeTensor], stats.tensor_busy);
  EXPECT_EQ(c.pipe_busy[prof::kPipeMio], stats.mio_busy);
}

TEST(Prof, TwoWayBankConflictCountsOneReplayPerLds) {
  // Lane i reads shared address 8*i: lanes i and i+16 hit the same bank in
  // different 4-byte words -> every LDS.32 needs 2 beats for 1 phase, i.e.
  // exactly one replay per instruction.
  const int n = 9;
  sass::KernelBuilder b("lds_conflict");
  b.threads(32);
  b.smem(512);
  b.s2r(sass::Reg{4}, sass::SpecialReg::kLaneId).stall(13);
  b.shl(sass::Reg{5}, sass::Reg{4}, 3).stall(6);
  for (int i = 0; i < n; ++i) {
    b.lds(sass::MemWidth::k32, sass::Reg{6}, sass::Reg{5}).write_bar(0).stall(1);
  }
  b.nop().wait_on(0).stall(1);
  b.exit();
  const auto prog = b.finalize();

  prof::Profiler p;
  run_program(prog, &p);
  const auto& c = p.counters();
  EXPECT_EQ(c.lds_count, static_cast<std::uint64_t>(n));
  EXPECT_EQ(c.smem_bank_replays, static_cast<std::uint64_t>(n));
  EXPECT_EQ(c.smem_phases, static_cast<std::uint64_t>(n));
}

TEST(Prof, ConflictFreeLdsCountsZeroReplays) {
  sass::KernelBuilder b("lds_clean");
  b.threads(32);
  b.smem(256);
  b.s2r(sass::Reg{4}, sass::SpecialReg::kLaneId).stall(13);
  b.shl(sass::Reg{5}, sass::Reg{4}, 2).stall(6);  // lane i -> bank i
  b.lds(sass::MemWidth::k32, sass::Reg{6}, sass::Reg{5}).write_bar(0).stall(1);
  b.nop().wait_on(0).stall(1);
  b.exit();
  prof::Profiler p;
  run_program(b.finalize(), &p);
  EXPECT_EQ(p.counters().smem_bank_replays, 0u);
}

TEST(Prof, AttachingProfilerDoesNotPerturbTiming) {
  // The ProfileHook contract: a profiled run is cycle-identical to an
  // unprofiled one. Use the real HGEMM surrogate so every hook site
  // (issue, MIO, smem, MSHR, barriers) is exercised.
  const auto spec = device::rtx2070();
  const auto cfg = core::HgemmConfig::optimized();
  core::SurrogateOptions opt;
  opt.iterations = 3;
  opt.l2_hit_rate = 0.5;
  const auto plain = core::run_steady_surrogate(spec, cfg, 1, opt);

  prof::Profiler p;
  opt.profiler = &p;
  const auto profiled = core::run_steady_surrogate(spec, cfg, 1, opt);

  EXPECT_EQ(plain.cycles, profiled.cycles);
  EXPECT_EQ(plain.instructions, profiled.instructions);
  EXPECT_EQ(plain.tensor_busy, profiled.tensor_busy);
  EXPECT_EQ(plain.mio_busy, profiled.mio_busy);
  EXPECT_EQ(plain.smem_beats, profiled.smem_beats);
}

TEST(Prof, SchedulerAccountingIsComplete) {
  // Every partition gets exactly one scheduler verdict per cycle, and the
  // issue verdicts sum to the instruction count.
  const auto spec = device::rtx2070();
  const auto cfg = core::HgemmConfig::optimized();
  core::SurrogateOptions opt;
  opt.iterations = 3;
  opt.l2_hit_rate = 0.5;
  prof::Profiler p;
  opt.profiler = &p;
  core::run_steady_surrogate(spec, cfg, 1, opt);

  const auto& c = p.counters();
  ASSERT_EQ(c.sched.size(), 4u);
  std::uint64_t issued = 0;
  for (const auto& s : c.sched) {
    EXPECT_EQ(s.issue_cycles + s.idle_cycles, c.cycles);
    std::uint64_t attributed = 0;
    for (const auto r : s.idle_by_reason) attributed += r;
    EXPECT_EQ(attributed, s.idle_cycles);
    issued += s.issue_cycles;
  }
  EXPECT_EQ(issued, c.instructions);
}

TEST(Prof, HotPcTableIsSortedAndBounded) {
  const auto spec = device::rtx2070();
  core::SurrogateOptions opt;
  opt.iterations = 3;
  opt.l2_hit_rate = 0.5;
  prof::Profiler p;
  opt.profiler = &p;
  core::run_steady_surrogate(spec, core::HgemmConfig::optimized(), 1, opt);

  const auto hot = p.hot_pcs(10);
  ASSERT_FALSE(hot.empty());
  EXPECT_LE(hot.size(), 10u);
  for (std::size_t i = 1; i < hot.size(); ++i) {
    EXPECT_GE(hot[i - 1].stall_cycles, hot[i].stall_cycles);
  }
  // The report renders without touching the (destroyed) Program.
  std::ostringstream os;
  p.print_report(os, 10);
  EXPECT_NE(os.str().find("pipe"), std::string::npos);
  EXPECT_NE(os.str().find("hot instructions"), std::string::npos);
}

TEST(Prof, TraceWriterEmitsChromeTraceJson) {
  const auto prog = hmma_chain(5);
  prof::Profiler p;
  prof::TraceWriter trace;
  run_program(prog, &p, &trace);

  std::ostringstream os;
  trace.write(os);
  const std::string s = os.str();
  EXPECT_EQ(s.front(), '{');
  EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(s.find("\"thread_name\""), std::string::npos);   // track metadata
  EXPECT_NE(s.find("\"HMMA.1688.F16\""), std::string::npos); // pipe events
  EXPECT_NE(s.find("\"ph\":\"X\""), std::string::npos);      // complete events
  // Balanced braces/brackets => structurally sound JSON.
  long depth = 0;
  for (const char ch : s) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Prof, ObservedPipeCyclesMatchBlockingModel) {
  // The tentpole cross-check: the counters must *observe* what Table VI
  // *derives*. Tensor cycles per CTA-iteration are deterministic (HMMA count
  // x CPI 8 vs the paper's measured 8.06); memory-IO cycles fold MIO pipe
  // occupancy plus L2-port serialization and land within modeling tolerance
  // of Eq. (4) + Eq. (5).
  const auto spec = device::rtx2070();
  const auto obs_opt = core::observe_pipe_cycles(spec, core::HgemmConfig::optimized());
  const auto obs_cub = core::observe_pipe_cycles(spec, core::HgemmConfig::cublas_like());

  const model::CpiSet cpi;  // paper values
  const model::BlockConfig bc_opt{256, 256, 32, 128, 64, 8};
  const model::BlockConfig bc_cub{128, 128, 64, 64, 64, 8};

  EXPECT_NEAR(obs_opt.tensor_cycles / model::hmma_cycles(bc_opt, cpi), 1.0, 0.05);
  EXPECT_NEAR(obs_cub.tensor_cycles / model::hmma_cycles(bc_cub, cpi), 1.0, 0.05);
  EXPECT_NEAR(obs_opt.memio_cycles / model::memio_cycles(bc_opt, cpi), 1.0, 0.35);
  EXPECT_NEAR(obs_cub.memio_cycles / model::memio_cycles(bc_cub, cpi), 1.0, 0.35);

  // Section VI-A's conclusion, observed rather than derived: the optimized
  // blocking keeps the tensor pipe the bottleneck; the cuBLAS-like blocking
  // is memory-IO bound.
  EXPECT_GT(obs_opt.tensor_cycles, obs_opt.memio_cycles);
  EXPECT_GT(obs_cub.memio_cycles, obs_cub.tensor_cycles);
}

TEST(Prof, CublasLikeKernelHasHigherMioUtilization) {
  // Acceptance check from the issue: observed MIO utilization must rank the
  // cuBLAS-like kernel above the optimized one.
  const auto spec = device::rtx2070();
  const auto obs_opt = core::observe_pipe_cycles(spec, core::HgemmConfig::optimized());
  const auto obs_cub = core::observe_pipe_cycles(spec, core::HgemmConfig::cublas_like());
  EXPECT_GT(obs_cub.mio_util, obs_opt.mio_util);
  EXPECT_GT(obs_opt.tensor_util, obs_cub.tensor_util);
}

TEST(Prof, ProfileHgemmReportsSteadyStateCounters) {
  const auto spec = device::rtx2070();
  prof::TraceWriter trace;
  const auto hp = core::profile_hgemm(spec, core::HgemmConfig::optimized(), {1024, 1024, 1024},
                                      &trace);
  EXPECT_EQ(hp.iterations, 32);  // k / bk
  EXPECT_GT(hp.profiler.counters().cycles, 0u);
  EXPECT_GT(hp.profiler.counters().utilization(prof::kPipeTensor, hp.profiler.partitions()),
            0.5);
  EXPECT_EQ(hp.profiler.counters().cycles, hp.stats.cycles);
  std::ostringstream os;
  trace.write(os);
  EXPECT_GT(os.str().size(), 1000u);
}

}  // namespace tc
