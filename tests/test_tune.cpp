// Tuner regression suite (ISSUE 5): determinism of the full search across
// runs and host thread counts, the recorded-baseline acceptance bar (the
// search must match or beat the optimized kernel's recorded simulated cycles
// on both devices within the default budget), the hard safety gates on every
// evaluated kernel, and a bound on model-vs-simulated rank inversions so
// model drift is caught by CI rather than by a silently worse winner.
#include <gtest/gtest.h>

#include <string>

#include "device/spec.hpp"
#include "tune/tune.hpp"

namespace tc {
namespace {

/// Bitwise-comparable digest of everything user-visible in a TuneResult.
std::string digest(const tune::TuneResult& r) {
  std::string d;
  for (const auto& c : r.ranked) {
    d += c.name + ":" + std::to_string(c.model_rank) + ":" +
         std::to_string(c.sim_cycles) + ":" + (c.evaluated ? "E" : "-") +
         (c.explored ? "X" : "-") + ";";
  }
  return d;
}

/// The optimized kernel evaluated alone through the tuner's own harness:
/// this is the recorded baseline the search has to match or beat.
tune::SearchSpace optimized_only_space() {
  tune::SearchSpace s;
  s.bm = {256};
  s.bn = {256};
  s.bk = {32};
  s.wm = {128};
  s.wn = {64};
  s.layouts = {core::SmemLayout::kPaddedTile};
  s.sts_interleave = {5};
  s.prefetch = {true};
  return s;
}

std::uint64_t optimized_sim_cycles(const device::DeviceSpec& spec) {
  tune::TuneOptions opt;
  opt.space = optimized_only_space();
  opt.budget = 1;
  const tune::TuneResult r = tune::tune(spec, opt);
  EXPECT_EQ(r.prune.legal, 1);
  EXPECT_EQ(r.prune.evaluated, 1);
  return r.best().sim_cycles;
}

TEST(TuneSpace, PruneCountersPartitionTheRawSpace) {
  tune::PruneStats st;
  const auto legal = tune::enumerate(device::rtx2070(), tune::SearchSpace{}, &st);
  EXPECT_EQ(st.raw, tune::SearchSpace{}.raw_points());
  EXPECT_EQ(st.raw, st.tiling + st.generator + st.registers + st.resources + st.legal);
  EXPECT_EQ(st.legal, static_cast<std::int64_t>(legal.size()));
  // Regression pin: the default space on rtx2070. If a legality rule or the
  // space itself changes, this number must be re-derived, not fudged.
  EXPECT_EQ(st.legal, 4168);
}

TEST(TuneSpace, EnumerationOrderIsDeterministic) {
  const auto a = tune::enumerate(device::rtx2070(), tune::SearchSpace{});
  const auto b = tune::enumerate(device::rtx2070(), tune::SearchSpace{});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(tune::candidate_name(a[i]), tune::candidate_name(b[i]));
  }
}

TEST(Tune, OptimizedConfigReproducesRecordedCyclesOnRtx2070) {
  // The recorded optimized-kernel number at the probe shape (see
  // tests/test_device_xval.cpp): 16090 device cycles at 256x256x64.
  EXPECT_EQ(optimized_sim_cycles(device::rtx2070()), 16090u);
}

class TuneOnSpec : public ::testing::TestWithParam<const char*> {};

TEST_P(TuneOnSpec, FindsRecordedOptimizedCyclesWithinBudget) {
  const device::DeviceSpec spec = device::spec_by_name(GetParam());
  const std::uint64_t recorded = optimized_sim_cycles(spec);

  tune::TuneOptions opt;  // default shape 256x256x64, budget 24, seed 1
  const tune::TuneResult r = tune::tune(spec, opt);
  ASSERT_LE(r.prune.evaluated, 64);  // the ISSUE 5 acceptance ceiling
  EXPECT_LE(r.best().sim_cycles, recorded)
      << r.best().name << " should match or beat the optimized kernel";

  // Every evaluated kernel went through sass::validate + check::find_hazards
  // with zero diagnostics (the evaluator throws otherwise; the field is the
  // visible contract).
  int evaluated = 0;
  for (const auto& c : r.ranked) {
    if (!c.evaluated) continue;
    ++evaluated;
    EXPECT_EQ(c.hazard_diags, 0u) << c.name;
    EXPECT_GT(c.sim_cycles, 0u) << c.name;
    EXPECT_GE(c.occ.ctas_per_sm, 1) << c.name;
  }
  EXPECT_EQ(evaluated, r.prune.evaluated);

  // Model ranking quality: bounded fraction of discordant evaluated pairs.
  // Measured 0.200 (rtx2070) / 0.323 (t4) at this budget; 0.45 leaves slack
  // for model tweaks while still catching a broken ranking (~0.5 = random).
  EXPECT_LE(tune::rank_inversion_rate(r), 0.45);

  // The seeded exploration picks exist and were actually evaluated.
  int explored = 0;
  for (const auto& c : r.ranked) {
    if (c.explored) {
      ++explored;
      EXPECT_TRUE(c.evaluated) << c.name;
    }
  }
  EXPECT_GT(explored, 0);
}

TEST_P(TuneOnSpec, FixedSeedIsBitwiseDeterministicAcrossRunsAndThreads) {
  const device::DeviceSpec spec = device::spec_by_name(GetParam());
  tune::TuneOptions opt;
  opt.budget = 12;  // smaller budget: three full searches below
  opt.threads = 1;
  const std::string run1 = digest(tune::tune(spec, opt));
  const std::string run2 = digest(tune::tune(spec, opt));
  EXPECT_EQ(run1, run2) << "same options must give identical results";
  opt.threads = 7;
  const std::string run7 = digest(tune::tune(spec, opt));
  EXPECT_EQ(run1, run7) << "host thread count must not affect results";
}

INSTANTIATE_TEST_SUITE_P(Specs, TuneOnSpec, ::testing::Values("rtx2070", "t4"),
                         [](const auto& info) { return std::string(info.param); });

TEST(Tune, DifferentSeedsMayChangeExplorationButKeepTheGates) {
  // A different seed changes which low-ranked candidates are explored, never
  // whether results are safe or the top model picks are evaluated.
  const device::DeviceSpec spec = device::rtx2070();
  tune::TuneOptions opt;
  opt.budget = 8;
  opt.seed = 99;
  const tune::TuneResult r = tune::tune(spec, opt);
  EXPECT_EQ(r.prune.evaluated, 8);
  for (const auto& c : r.ranked) {
    if (c.evaluated) EXPECT_EQ(c.hazard_diags, 0u);
  }
}

TEST(Tune, WaveModelEngineRanksThePaperWinnerFirst) {
  // The bench harness path (paper-scale shape, analytic+surrogate engine):
  // the Table VI blocking must win on rtx2070. Mirrors bench/table6_autotune
  // so a regression shows up in `ctest` even when benches aren't run.
  tune::TuneOptions opt;
  opt.engine = tune::Engine::kWaveModel;
  opt.shape = {4096, 4096, 4096};
  opt.space.bm = {128, 256};
  opt.space.bn = {128, 256};
  opt.space.bk = {32, 64};
  opt.space.wm = {128};
  opt.space.wn = {64};
  opt.space.layouts = {core::SmemLayout::kPaddedTile};
  opt.space.sts_interleave = {5};
  opt.space.prefetch = {true};
  opt.budget = 16;
  opt.explore = 0;
  const tune::TuneResult r = tune::tune(device::rtx2070(), opt);
  const auto& best = r.best().cfg;
  EXPECT_EQ(best.bm, 256);
  EXPECT_EQ(best.bn, 256);
  EXPECT_EQ(best.bk, 32);
}

}  // namespace
}  // namespace tc
