// Unit tests for the SASS ISA model: builder, validator, lint, disassembly.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sass/builder.hpp"
#include "sass/validator.hpp"

namespace tc::sass {
namespace {

KernelBuilder minimal(const std::string& name = "k") {
  KernelBuilder b(name);
  return b;
}

TEST(Builder, TracksRegisterUsage) {
  KernelBuilder b("regs");
  b.mov_imm(Reg{10}, 1);
  b.ldg(MemWidth::k128, Reg{20}, Reg{10});  // uses R20..R23
  b.exit();
  const Program p = b.finalize();
  EXPECT_EQ(p.num_regs, 24);
}

TEST(Builder, TracksParamWords) {
  KernelBuilder b("params");
  b.mov_param(Reg{0}, 5);
  b.exit();
  EXPECT_EQ(b.finalize().num_param_words, 6u);
}

TEST(Builder, ResolvesForwardAndBackwardLabels) {
  KernelBuilder b("labels");
  b.label("top");
  b.mov_imm(Reg{0}, 1);
  b.bra("bottom");
  b.bra("top");
  b.label("bottom");
  b.exit();
  const Program p = b.finalize();
  EXPECT_EQ(p.code[1].target, 3);  // "bottom"
  EXPECT_EQ(p.code[2].target, 0);  // "top"
}

TEST(Builder, UndefinedLabelThrows) {
  KernelBuilder b("bad");
  b.bra("nowhere");
  b.exit();
  EXPECT_THROW(b.finalize(), Error);
}

TEST(Builder, DuplicateLabelThrows) {
  KernelBuilder b("dup");
  b.label("x");
  EXPECT_THROW(b.label("x"), Error);
}

TEST(Builder, StallRangeChecked) {
  KernelBuilder b("stall");
  b.nop();
  EXPECT_THROW(b.stall(16), Error);
  EXPECT_THROW(b.stall(-1), Error);
  b.stall(15);  // ok
}

TEST(Validator, RejectsMissingExit) {
  KernelBuilder b("noexit");
  b.nop();
  EXPECT_THROW(b.finalize(), Error);
}

TEST(Validator, RejectsMisalignedPair) {
  KernelBuilder b("mis");
  b.ldg(MemWidth::k64, Reg{3}, Reg{0});  // odd destination pair
  b.exit();
  EXPECT_THROW(b.finalize(), Error);
}

TEST(Validator, RejectsMisalignedQuad) {
  KernelBuilder b("mis4");
  b.ldg(MemWidth::k128, Reg{6}, Reg{0});  // not 4-aligned
  b.exit();
  EXPECT_THROW(b.finalize(), Error);
}

TEST(Validator, RejectsMmaRegisterOverflow) {
  KernelBuilder b("over");
  // HMMA.1688.F32 D is a quad: R252..R255 overlaps RZ.
  b.hmma_1688_f32(Reg{252}, Reg{0}, Reg{2}, Reg{4});
  b.exit();
  EXPECT_THROW(b.finalize(), Error);
}

TEST(Validator, RejectsBarrierOnFixedLatencyOp) {
  KernelBuilder b("bar");
  b.mov_imm(Reg{0}, 1);
  EXPECT_NO_THROW(b.stall(1));
  b.last().ctrl.write_barrier = 0;  // MOV cannot signal a scoreboard barrier
  b.exit();
  EXPECT_THROW(b.finalize(), Error);
}

TEST(Validator, AcceptsRzAccumulator) {
  KernelBuilder b("rzc");
  b.hmma_1688_f16(Reg{8}, Reg{0}, Reg{2}, RZ);
  b.exit();
  EXPECT_NO_THROW(b.finalize());
}

TEST(Validator, RejectsRzMmaInputs) {
  KernelBuilder b("rza");
  b.hmma_1688_f16(Reg{8}, RZ, Reg{2}, Reg{4});
  b.exit();
  EXPECT_THROW(b.finalize(), Error);
}

TEST(Validator, SmemLimitEnforced) {
  KernelBuilder b("smem");
  b.smem(65 * 1024);
  b.exit();
  EXPECT_THROW(b.finalize(), Error);
}

TEST(Lint, WarnsOnUnsynchronizedLoad) {
  KernelBuilder b("lint1");
  b.ldg(MemWidth::k32, Reg{0}, Reg{4});
  b.exit();
  const auto warnings = lint(b.finalize());
  ASSERT_FALSE(warnings.empty());
  EXPECT_NE(warnings[0].find("without a write barrier"), std::string::npos);
}

TEST(Validator, RejectsWaitOnNeverSetBarrier) {
  // A wait on a scoreboard barrier no instruction ever sets can never clear
  // on hardware; the validator rejects it outright (it used to be a lint
  // warning only).
  KernelBuilder b("lint2");
  b.nop().wait_on(3);
  b.exit();
  EXPECT_THROW(b.finalize(), Error);
}

TEST(Validator, AcceptsWaitOnBarrierSetLaterInProgramOrder) {
  // Loop bodies legitimately wait at the top for a load issued at the bottom
  // of the previous iteration: the setter sits AFTER the waiter in program
  // order. Only barriers never set anywhere are rejected.
  KernelBuilder b("wait_later");
  b.label("top");
  b.mov(Reg{8}, Reg{0}).wait_on(2).stall(6);
  b.ldg(MemWidth::k32, Reg{0}, Reg{4}).write_bar(2).stall(1);
  b.bra("top").stall(1);
  b.exit();
  EXPECT_NO_THROW(b.finalize());
}

TEST(Lint, CleanScheduleHasNoWarnings) {
  KernelBuilder b("lint3");
  b.ldg(MemWidth::k32, Reg{0}, Reg{4});
  b.write_bar(0).stall(1);
  b.mov(Reg{8}, Reg{0}).wait_on(0);
  b.exit();
  EXPECT_TRUE(lint(b.finalize()).empty());
}

TEST(Lint, LoadToRzNeedsNoBarrier) {
  KernelBuilder b("lint4");
  b.ldg(MemWidth::k32, RZ, Reg{4});
  b.exit();
  EXPECT_TRUE(lint(b.finalize()).empty());
}

TEST(Disasm, RendersKeyFields) {
  KernelBuilder b("disasm");
  b.ldg(MemWidth::k128, Reg{8}, Reg{2}, 0x40, CacheOp::kCg).write_bar(1).stall(2);
  b.hmma_1688_f16(Reg{8}, Reg{2}, Reg{6}, Reg{4});
  b.exit();
  const Program p = b.finalize();
  const std::string text = p.disassemble();
  EXPECT_NE(text.find("LDG.128.CG R8, [R2+0x40]"), std::string::npos);
  EXPECT_NE(text.find("WB1"), std::string::npos);
  EXPECT_NE(text.find("HMMA.1688.F16 R8, R2, R6, R4"), std::string::npos);
  EXPECT_NE(text.find("EXIT"), std::string::npos);
}

TEST(Isa, PipeClasses) {
  EXPECT_EQ(pipe_class(Opcode::kHmma1688F16), PipeClass::kTensor);
  EXPECT_EQ(pipe_class(Opcode::kLds), PipeClass::kMio);
  EXPECT_EQ(pipe_class(Opcode::kLdg), PipeClass::kMio);
  EXPECT_EQ(pipe_class(Opcode::kFfma), PipeClass::kFma);
  EXPECT_EQ(pipe_class(Opcode::kIadd3), PipeClass::kAlu);
  EXPECT_EQ(pipe_class(Opcode::kBra), PipeClass::kControl);
}

TEST(Isa, MmaRegCounts) {
  const auto f16 = mma_reg_counts(Opcode::kHmma1688F16);
  EXPECT_EQ(f16.d, 2);
  EXPECT_EQ(f16.b, 1);
  const auto f32 = mma_reg_counts(Opcode::kHmma1688F32);
  EXPECT_EQ(f32.d, 4);
  EXPECT_EQ(f32.c, 4);
}

TEST(Isa, WidthHelpers) {
  EXPECT_EQ(width_bytes(MemWidth::k32), 4);
  EXPECT_EQ(width_bytes(MemWidth::k128), 16);
  EXPECT_EQ(width_regs(MemWidth::k64), 2);
}

// --- stall-slack analysis (lint with a latency table) ----------------------

// Deterministic oracle for the tests: FADD results take 6 cycles, everything
// else 4.
int test_latency(const Instruction& inst, int /*dreg_offset*/) {
  return inst.op == Opcode::kFadd ? 6 : 4;
}

TEST(LintSlack, ReportsExcessStallSlack) {
  KernelBuilder b("slack1");
  b.fadd(Reg{8}, Reg{4}, Reg{5}).stall(10);  // result ready after 6
  b.mov(Reg{9}, Reg{8}).stall(1);
  b.exit();
  const auto w = lint(b.finalize(), &test_latency);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_NE(w[0].find("excess stall slack"), std::string::npos);
  EXPECT_NE(w[0].find("4 cycles"), std::string::npos);
}

TEST(LintSlack, ExactStallIsClean) {
  KernelBuilder b("slack2");
  b.fadd(Reg{8}, Reg{4}, Reg{5}).stall(6);
  b.mov(Reg{9}, Reg{8}).stall(1);
  b.exit();
  EXPECT_TRUE(lint(b.finalize(), &test_latency).empty());
}

TEST(LintSlack, ReportsUnderProtectedConsumer) {
  KernelBuilder b("slack3");
  b.fadd(Reg{8}, Reg{4}, Reg{5}).stall(2);  // consumer issues 4 cycles early
  b.mov(Reg{9}, Reg{8}).stall(1);
  b.exit();
  const auto w = lint(b.finalize(), &test_latency);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_NE(w[0].find("under-protected by 4 cycles"), std::string::npos);
}

TEST(LintSlack, WaitMaskSuppressesUnderProtection) {
  // A scoreboard wait between producer and consumer can close any static
  // gap at run time, so the analysis must stay silent.
  KernelBuilder b("slack4");
  b.ldg(MemWidth::k32, Reg{0}, Reg{4}).write_bar(0).stall(2);
  b.fadd(Reg{8}, Reg{4}, Reg{5}).stall(1);
  b.nop().wait_on(0).stall(1);
  b.mov(Reg{9}, Reg{8}).stall(1);
  b.exit();
  for (const auto& w : lint(b.finalize(), &test_latency)) {
    EXPECT_EQ(w.find("under-protected"), std::string::npos) << w;
  }
}

TEST(LintSlack, OverwriteKillsDependency) {
  KernelBuilder b("slack5");
  b.fadd(Reg{8}, Reg{4}, Reg{5}).stall(1);
  b.mov_imm(Reg{8}, 0).stall(4);  // kills the FADD result before any read
  b.mov(Reg{9}, Reg{8}).stall(1);
  b.exit();
  // The 6-cycle FADD latency is irrelevant once R8 is overwritten; the only
  // live dependency (MOV.IMM -> MOV, 4 cycles) is exactly covered.
  EXPECT_TRUE(lint(b.finalize(), &test_latency).empty());
}

TEST(LintSlack, ChecksAcrossLoopBackEdge) {
  // Single-block loop: R8 is produced at the bottom and consumed at the top
  // of the next trip; the short loop body cannot cover the 6-cycle latency.
  KernelBuilder b("slack6");
  b.label("top");
  b.mov(Reg{9}, Reg{8}).stall(1);
  b.fadd(Reg{8}, Reg{4}, Reg{5}).stall(1);
  b.bra("top").stall(1);
  b.exit();
  const auto w = lint(b.finalize(), &test_latency);
  bool found = false;
  for (const auto& s : w) found |= s.find("back-edge") != std::string::npos;
  EXPECT_TRUE(found);
}

TEST(LintSlack, SingleInstructionLoopBodySelfRaw) {
  // A one-instruction loop body that reads its own result: the only producer
  // of R8 across the back edge is the consumer itself (j == i in the
  // loop-carried scan). The two-instruction loop takes 2 cycles per trip,
  // far short of FADD's 6-cycle latency.
  KernelBuilder b("slack7");
  b.label("top");
  b.fadd(Reg{8}, Reg{8}, Reg{5}).stall(1);
  b.bra("top").stall(1);
  b.exit();
  const auto w = lint(b.finalize(), &test_latency);
  bool found = false;
  for (const auto& s : w) found |= s.find("back-edge") != std::string::npos;
  EXPECT_TRUE(found);
}

TEST(LintSlack, SingleInstructionLoopBodyWithCoveringStallIsClean) {
  KernelBuilder b("slack8");
  b.label("top");
  b.fadd(Reg{8}, Reg{8}, Reg{5}).stall(5);
  b.bra("top").stall(1);
  b.exit();
  // Loop length 6 cycles covers the 6-cycle FADD latency exactly.
  const auto w = lint(b.finalize(), &test_latency);
  for (const auto& s : w) EXPECT_EQ(s.find("back-edge"), std::string::npos) << s;
}

}  // namespace
}  // namespace tc::sass
