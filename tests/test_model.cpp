// Unit tests for the analytical models: roofline (Fig. 3), blocking analysis
// (Table VI, Eqs. 3-6), L2 reuse, DRAM row efficiency and wave composition.
#include <gtest/gtest.h>

#include "device/spec.hpp"
#include "model/blocking.hpp"
#include "model/l2_reuse.hpp"
#include "model/roofline.hpp"
#include "model/wave_perf.hpp"

namespace tc::model {
namespace {

TEST(Roofline, BlockIntensities) {
  // Computation intensity bm*bn/(bm+bn) FLOP/byte (Section VI-A).
  EXPECT_DOUBLE_EQ(block_intensity(128, 128), 64.0);
  EXPECT_DOUBLE_EQ(block_intensity(256, 256), 128.0);
  EXPECT_NEAR(block_intensity(256, 128), 85.33, 0.01);
  EXPECT_DOUBLE_EQ(block_intensity(64, 64), 32.0);
}

TEST(Roofline, AttainableClampsAtPeak) {
  EXPECT_DOUBLE_EQ(attainable_flops(10.0, 100e9, 50e12), 1e12);
  EXPECT_DOUBLE_EQ(attainable_flops(1000.0, 100e9, 50e12), 50e12);
}

TEST(Roofline, PaperFig3Claims) {
  // With FP16 units, 128x128 blocking keeps the pipe busy; with Tensor Cores
  // even 256x256 stays below the DRAM roofline on RTX2070.
  const auto spec = device::rtx2070();
  const double bw = spec.dram_bw_gbps * 1e9;
  EXPECT_GE(attainable_flops(block_intensity(128, 128), bw, spec.fp16_peak_flops()),
            spec.fp16_peak_flops());
  EXPECT_LT(attainable_flops(block_intensity(128, 128), bw, spec.tensor_peak_flops()),
            spec.tensor_peak_flops());
  EXPECT_LT(attainable_flops(block_intensity(256, 256), bw, spec.tensor_peak_flops()),
            spec.tensor_peak_flops());
}

TEST(Roofline, RidgeOrdering) {
  const auto spec = device::t4();
  EXPECT_GT(ridge_intensity(spec.dram_bw_gbps * 1e9, spec.tensor_peak_flops()),
            ridge_intensity(spec.dram_bw_gbps * 1e9, spec.fp16_peak_flops()));
}

TEST(Blocking, TableVIReproducesPaperNumbers) {
  // Paper Table VI values with the paper's measured CPIs, within rounding.
  const auto rows = table_vi(CpiSet{});
  ASSERT_EQ(rows.size(), 6u);
  const double expect_hmma[] = {1031, 1031, 2063, 2063, 4126, 4126};
  const double expect_memio[] = {1370, 1235, 2325, 2055, 3821, 3281};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_NEAR(rows[i].hmma, expect_hmma[i], 2.0) << "row " << i;
    EXPECT_NEAR(rows[i].memio, expect_memio[i], 2.0) << "row " << i;
  }
  // Only (256x128)/(128x64) and the two 256x256 rows are Tensor-bound.
  EXPECT_FALSE(tensor_bound(rows[0].config, CpiSet{}));
  EXPECT_FALSE(tensor_bound(rows[1].config, CpiSet{}));
  EXPECT_FALSE(tensor_bound(rows[2].config, CpiSet{}));
  EXPECT_TRUE(tensor_bound(rows[3].config, CpiSet{}));
  EXPECT_TRUE(tensor_bound(rows[4].config, CpiSet{}));
  EXPECT_TRUE(tensor_bound(rows[5].config, CpiSet{}));
}

TEST(Blocking, Eq6InterleaveRule) {
  EXPECT_EQ(min_hmma_between_sts128(CpiSet{}), 5);  // paper Section VI-C
  CpiSet fast;
  fast.sts128 = 4.0;
  fast.hmma = 8.0;
  EXPECT_EQ(min_hmma_between_sts128(fast), 2);
}

TEST(Blocking, LargerWarpTileLowersLdsCycles) {
  CpiSet cpi;
  BlockConfig small{256, 256, 32, 64, 64, 8};
  BlockConfig large{256, 256, 32, 128, 64, 8};
  EXPECT_GT(lds_cycles(small, cpi), lds_cycles(large, cpi));
  // LDG/STS cycles are warp-tile independent.
  EXPECT_DOUBLE_EQ(ldg_sts_cycles(small, cpi), ldg_sts_cycles(large, cpi));
}

TEST(L2Reuse, SwizzledWaveSharesMoreThanRowMajor) {
  L2ReuseInput in;
  in.grid_x = 64;
  in.grid_y = 64;
  in.wave_ctas = 36;
  in.order = LaunchOrder::kSwizzled;
  const auto swizzled = l2_reuse(in);
  in.order = LaunchOrder::kRowMajor;
  const auto row_major = l2_reuse(in);
  EXPECT_GT(swizzled.ldg_l2_hit_rate, row_major.ldg_l2_hit_rate);
}

TEST(L2Reuse, FailedSwizzleIsWorseThanRowMajor) {
  // The cuBLAS-cliff model: past swizzle_max_grid_x a swizzled schedule
  // scatters and shares less than even a plain row-major launch.
  L2ReuseInput in;
  in.bm = 128;
  in.bn = 128;
  in.grid_x = 100;
  in.grid_y = 100;
  in.wave_ctas = 72;
  in.order = LaunchOrder::kSwizzled;
  in.swizzle_max_grid_x = 94;
  const auto failed = l2_reuse(in);
  in.order = LaunchOrder::kRowMajor;
  const auto row_major = l2_reuse(in);
  EXPECT_LT(failed.ldg_l2_hit_rate, row_major.ldg_l2_hit_rate);

  in.order = LaunchOrder::kSwizzled;
  in.grid_x = 90;  // below the limit the swizzle still works
  const auto ok = l2_reuse(in);
  EXPECT_GT(ok.ldg_l2_hit_rate, failed.ldg_l2_hit_rate + 0.1);
}

TEST(L2Reuse, HitRateBounds) {
  L2ReuseInput in;
  in.grid_x = 8;
  in.grid_y = 8;
  in.wave_ctas = 36;
  const auto r = l2_reuse(in);
  EXPECT_GE(r.ldg_l2_hit_rate, 0.0);
  EXPECT_LT(r.ldg_l2_hit_rate, 1.0);
  EXPECT_LE(r.dram_bytes_per_wave_iter, r.total_bytes_per_wave_iter);
}

TEST(L2Reuse, SingleCtaHasNoSharing) {
  L2ReuseInput in;
  in.grid_x = 1;
  in.grid_y = 1;
  in.wave_ctas = 36;
  const auto r = l2_reuse(in);
  EXPECT_DOUBLE_EQ(r.ldg_l2_hit_rate, 0.0);
}

TEST(L2Reuse, CapacityOverflowDegradesSharing) {
  L2ReuseInput big;
  big.grid_x = 256;
  big.grid_y = 256;
  big.wave_ctas = 72;
  big.bk = 64;
  big.bm = big.bn = 256;
  big.l2_capacity = 256 * 1024;  // tiny L2
  const auto constrained = l2_reuse(big);
  big.l2_capacity = 64ull << 20;  // huge L2
  const auto roomy = l2_reuse(big);
  EXPECT_LT(constrained.effective_sharing, roomy.effective_sharing);
}

TEST(DramRowEfficiency, DroopsWithStride) {
  EXPECT_DOUBLE_EQ(dram_row_efficiency(8 * 1024), 1.0);
  EXPECT_DOUBLE_EQ(dram_row_efficiency(16 * 1024), 1.0);
  EXPECT_LT(dram_row_efficiency(32 * 1024), 1.0);
  EXPECT_GE(dram_row_efficiency(1e9), 0.80);  // floored
  EXPECT_GT(dram_row_efficiency(24 * 1024), dram_row_efficiency(32 * 1024));
}

TEST(WavePerf, ComposesWaves) {
  WaveInput in;
  in.spec = device::rtx2070();
  in.shape = {2048, 2048, 2048};
  in.steady = {4126.0, 10000.0};
  const auto r = compose(in);
  EXPECT_EQ(r.grid_x, 8u);
  EXPECT_EQ(r.grid_y, 8u);
  EXPECT_DOUBLE_EQ(r.waves, 2.0);  // 64 CTAs / 36 per wave
  const double expect_cycles = 2.0 * (10000.0 + 64.0 * 4126.0);
  EXPECT_DOUBLE_EQ(r.kernel_cycles, expect_cycles);
  EXPECT_GT(r.tflops, 0.0);
}

TEST(WavePerf, WaveQuantizationSawtooth) {
  // 37 CTA columns need 2 waves where 36 need 1: throughput dips.
  WaveInput in;
  in.spec = device::rtx2070();
  in.steady = {4126.0, 10000.0};
  in.shape = {256, 256 * 36, 4096};
  const auto full = compose(in);
  in.shape = {256, 256 * 37, 4096};
  const auto spill = compose(in);
  EXPECT_GT(full.tflops, spill.tflops);
}

TEST(WavePerf, LaunchOverheadDominatesTinyGemms) {
  WaveInput in;
  in.spec = device::rtx2070();
  in.steady = {4126.0, 10000.0};
  in.shape = {256, 256, 64};
  in.launch_overhead_us = 3.0;
  const auto r = compose(in);
  EXPECT_LT(r.tflops, 1.0);  // tiny problem cannot amortize 3us
}

}  // namespace
}  // namespace tc::model
