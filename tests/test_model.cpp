// Unit tests for the analytical models: roofline (Fig. 3), blocking analysis
// (Table VI, Eqs. 3-6), L2 reuse, DRAM row efficiency and wave composition.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "device/spec.hpp"
#include "model/blocking.hpp"
#include "model/l2_reuse.hpp"
#include "model/roofline.hpp"
#include "model/stack_distance.hpp"
#include "model/wave_perf.hpp"

namespace tc::model {
namespace {

TEST(Roofline, BlockIntensities) {
  // Computation intensity bm*bn/(bm+bn) FLOP/byte (Section VI-A).
  EXPECT_DOUBLE_EQ(block_intensity(128, 128), 64.0);
  EXPECT_DOUBLE_EQ(block_intensity(256, 256), 128.0);
  EXPECT_NEAR(block_intensity(256, 128), 85.33, 0.01);
  EXPECT_DOUBLE_EQ(block_intensity(64, 64), 32.0);
}

TEST(Roofline, AttainableClampsAtPeak) {
  EXPECT_DOUBLE_EQ(attainable_flops(10.0, 100e9, 50e12), 1e12);
  EXPECT_DOUBLE_EQ(attainable_flops(1000.0, 100e9, 50e12), 50e12);
}

TEST(Roofline, PaperFig3Claims) {
  // With FP16 units, 128x128 blocking keeps the pipe busy; with Tensor Cores
  // even 256x256 stays below the DRAM roofline on RTX2070.
  const auto spec = device::rtx2070();
  const double bw = spec.dram_bw_gbps * 1e9;
  EXPECT_GE(attainable_flops(block_intensity(128, 128), bw, spec.fp16_peak_flops()),
            spec.fp16_peak_flops());
  EXPECT_LT(attainable_flops(block_intensity(128, 128), bw, spec.tensor_peak_flops()),
            spec.tensor_peak_flops());
  EXPECT_LT(attainable_flops(block_intensity(256, 256), bw, spec.tensor_peak_flops()),
            spec.tensor_peak_flops());
}

TEST(Roofline, RidgeOrdering) {
  const auto spec = device::t4();
  EXPECT_GT(ridge_intensity(spec.dram_bw_gbps * 1e9, spec.tensor_peak_flops()),
            ridge_intensity(spec.dram_bw_gbps * 1e9, spec.fp16_peak_flops()));
}

TEST(Blocking, TableVIReproducesPaperNumbers) {
  // Paper Table VI values with the paper's measured CPIs, within rounding.
  const auto rows = table_vi(CpiSet{});
  ASSERT_EQ(rows.size(), 6u);
  const double expect_hmma[] = {1031, 1031, 2063, 2063, 4126, 4126};
  const double expect_memio[] = {1370, 1235, 2325, 2055, 3821, 3281};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_NEAR(rows[i].hmma, expect_hmma[i], 2.0) << "row " << i;
    EXPECT_NEAR(rows[i].memio, expect_memio[i], 2.0) << "row " << i;
  }
  // Only (256x128)/(128x64) and the two 256x256 rows are Tensor-bound.
  EXPECT_FALSE(tensor_bound(rows[0].config, CpiSet{}));
  EXPECT_FALSE(tensor_bound(rows[1].config, CpiSet{}));
  EXPECT_FALSE(tensor_bound(rows[2].config, CpiSet{}));
  EXPECT_TRUE(tensor_bound(rows[3].config, CpiSet{}));
  EXPECT_TRUE(tensor_bound(rows[4].config, CpiSet{}));
  EXPECT_TRUE(tensor_bound(rows[5].config, CpiSet{}));
}

TEST(Blocking, Eq6InterleaveRule) {
  EXPECT_EQ(min_hmma_between_sts128(CpiSet{}), 5);  // paper Section VI-C
  CpiSet fast;
  fast.sts128 = 4.0;
  fast.hmma = 8.0;
  EXPECT_EQ(min_hmma_between_sts128(fast), 2);
}

TEST(Blocking, LargerWarpTileLowersLdsCycles) {
  CpiSet cpi;
  BlockConfig small{256, 256, 32, 64, 64, 8};
  BlockConfig large{256, 256, 32, 128, 64, 8};
  EXPECT_GT(lds_cycles(small, cpi), lds_cycles(large, cpi));
  // LDG/STS cycles are warp-tile independent.
  EXPECT_DOUBLE_EQ(ldg_sts_cycles(small, cpi), ldg_sts_cycles(large, cpi));
}

TEST(L2Reuse, SwizzledWaveSharesMoreThanRowMajor) {
  L2ReuseInput in;
  in.grid_x = 64;
  in.grid_y = 64;
  in.wave_ctas = 36;
  in.order = LaunchOrder::kSwizzled;
  const auto swizzled = l2_reuse(in);
  in.order = LaunchOrder::kRowMajor;
  const auto row_major = l2_reuse(in);
  EXPECT_GT(swizzled.ldg_l2_hit_rate, row_major.ldg_l2_hit_rate);
}

TEST(L2Reuse, FailedSwizzleIsWorseThanRowMajor) {
  // The cuBLAS-cliff model: past swizzle_max_grid_x a swizzled schedule
  // scatters and shares less than even a plain row-major launch.
  L2ReuseInput in;
  in.bm = 128;
  in.bn = 128;
  in.grid_x = 100;
  in.grid_y = 100;
  in.wave_ctas = 72;
  in.order = LaunchOrder::kSwizzled;
  in.swizzle_max_grid_x = 94;
  const auto failed = l2_reuse(in);
  in.order = LaunchOrder::kRowMajor;
  const auto row_major = l2_reuse(in);
  EXPECT_LT(failed.ldg_l2_hit_rate, row_major.ldg_l2_hit_rate);

  in.order = LaunchOrder::kSwizzled;
  in.grid_x = 90;  // below the limit the swizzle still works
  const auto ok = l2_reuse(in);
  EXPECT_GT(ok.ldg_l2_hit_rate, failed.ldg_l2_hit_rate + 0.1);
}

TEST(L2Reuse, HitRateBounds) {
  L2ReuseInput in;
  in.grid_x = 8;
  in.grid_y = 8;
  in.wave_ctas = 36;
  const auto r = l2_reuse(in);
  EXPECT_GE(r.ldg_l2_hit_rate, 0.0);
  EXPECT_LT(r.ldg_l2_hit_rate, 1.0);
  EXPECT_LE(r.dram_bytes_per_wave_iter, r.total_bytes_per_wave_iter);
}

TEST(L2Reuse, SingleCtaHasNoSharing) {
  L2ReuseInput in;
  in.grid_x = 1;
  in.grid_y = 1;
  in.wave_ctas = 36;
  const auto r = l2_reuse(in);
  EXPECT_DOUBLE_EQ(r.ldg_l2_hit_rate, 0.0);
}

TEST(L2Reuse, CapacityOverflowDegradesSharing) {
  L2ReuseInput big;
  big.grid_x = 256;
  big.grid_y = 256;
  big.wave_ctas = 72;
  big.bk = 64;
  big.bm = big.bn = 256;
  big.l2_capacity = 256 * 1024;  // tiny L2
  const auto constrained = l2_reuse(big);
  big.l2_capacity = 64ull << 20;  // huge L2
  const auto roomy = l2_reuse(big);
  EXPECT_LT(constrained.effective_sharing, roomy.effective_sharing);
}

TEST(L2Reuse, PartialWaveSharersClampRegression) {
  // A supertile panel wider than the wave (S = 40 > 36 resident CTAs) makes
  // the naive per-column sharer count wave/cols = 0.9 < 1. Without the
  // sharers >= 1 clamp, (sharers-1)*(1-eta) goes negative and the model
  // predicts 38 B slabs from DRAM against a compulsory minimum of 40,
  // inflating the hit rate to ~0.215. The clamped model charges exactly the
  // compulsory slabs: hit = 1 - (18.5*bm + 40*bn)/(36*(bm+bn)) = 0.1875.
  L2ReuseInput in;
  in.bm = in.bn = 256;
  in.bk = 32;
  in.grid_x = 64;
  in.grid_y = 4;
  in.wave_ctas = 36;
  in.order = LaunchOrder::kSupertile;
  in.supertile_width = 40;
  const auto r = l2_reuse(in);
  EXPECT_DOUBLE_EQ(r.wave_cols, 40.0);
  EXPECT_DOUBLE_EQ(r.wave_rows, 1.0);
  EXPECT_NEAR(r.ldg_l2_hit_rate, 0.1875, 1e-12);
  // The B-side traffic must never drop below one DRAM load per distinct
  // column slab in the patch.
  EXPECT_GE(r.dram_bytes_per_wave_iter,
            (r.wave_rows * in.bm + r.wave_cols * in.bn) * in.bk * 2.0 - 1e-9);
}

TEST(L2Reuse, ZeroDriftWindowLeavesSharingIntact) {
  // With no drift window and no C working set the footprint is zero: there
  // is nothing to thrash, so eta must survive untouched (and the capacity
  // ratio must not divide by zero) even on a tiny L2.
  L2ReuseInput in;
  in.grid_x = 64;
  in.grid_y = 64;
  in.wave_ctas = 36;
  in.drift_window_iters = 0.0;
  in.l2_capacity = 1024;
  const auto r = l2_reuse(in);
  EXPECT_TRUE(std::isfinite(r.ldg_l2_hit_rate));
  EXPECT_DOUBLE_EQ(r.effective_sharing, in.sharing_efficiency);
}

TEST(L2Reuse, CTileWorkingSetCompetesForCapacity) {
  // The epilogue's resident C tiles charge against the same drift-window
  // footprint as the A/B slabs: a large c_tile_bytes must degrade sharing
  // exactly like an oversized slab footprint would.
  L2ReuseInput in;
  in.bm = in.bn = 256;
  in.bk = 32;
  in.grid_x = 64;
  in.grid_y = 64;
  in.wave_ctas = 36;
  in.order = LaunchOrder::kRowMajor;
  const auto steady = l2_reuse(in);  // c_tile_bytes = 0: steady state
  in.c_tile_bytes = 32.0 * 1024 * 1024;
  const auto epilogue = l2_reuse(in);
  EXPECT_LT(epilogue.effective_sharing, steady.effective_sharing);
  EXPECT_LT(epilogue.ldg_l2_hit_rate, steady.ldg_l2_hit_rate);
}

// --- reuse-distance sampler ------------------------------------------------

TEST(StackDistance, ClassifiesKnownSequence) {
  StackDistance sd({100.0});
  EXPECT_EQ(sd.access(1, 60.0), StackDistance::kCold);
  EXPECT_EQ(sd.access(2, 60.0), StackDistance::kCold);
  EXPECT_EQ(sd.access(1, 60.0), 0);  // 60 bytes above: under the threshold
  EXPECT_EQ(sd.access(2, 60.0), 0);
  EXPECT_EQ(sd.access(3, 60.0), StackDistance::kCold);
  EXPECT_EQ(sd.access(1, 60.0), 1);  // blocks 3 and 2 above: 120 >= 100
  const auto& h = sd.histogram();
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h[0], 2u);
  EXPECT_EQ(h[1], 1u);
  EXPECT_EQ(h[2], 3u);  // cold misses
  EXPECT_EQ(sd.accesses(), 6u);
}

TEST(StackDistance, MatchesBruteForceOnRandomTrace) {
  // The marker-list stack must agree exactly with the O(N^2) definition:
  // the distance of a re-access is the sum of bytes strictly above the
  // block, classified by the number of thresholds <= that distance.
  const std::vector<double> thresholds{64.0, 256.0, 1024.0};
  StackDistance sd(thresholds);
  std::vector<std::uint64_t> recency;  // front = most recent
  const auto bytes_of = [](std::uint64_t id) {
    return 16.0 + static_cast<double>(id % 7) * 8.0;
  };
  std::uint64_t state = 0x5EED;
  for (int i = 0; i < 800; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t id = (state >> 33) % 60;
    int expect = StackDistance::kCold;
    const auto it = std::find(recency.begin(), recency.end(), id);
    if (it != recency.end()) {
      double above = 0.0;
      for (auto p = recency.begin(); p != it; ++p) above += bytes_of(*p);
      expect = 0;
      for (const double t : thresholds) {
        if (t <= above) ++expect;
      }
      recency.erase(it);
    }
    recency.insert(recency.begin(), id);
    ASSERT_EQ(sd.access(id, bytes_of(id)), expect) << "access " << i << " id " << id;
  }
}

TEST(Sampler, MatchesClosedFormLikeForLike) {
  // One whole wave covering the full grid, perfect sharing (eta = 1), all
  // footprints far under capacity: the closed form and the trace both reduce
  // to "each distinct slab is loaded once", so they must agree tightly.
  // rows = 4, cols = 8 of 64-wide tiles: hit = 1 - 12/64 = 0.8125.
  L2ReuseInput in;
  in.bm = in.bn = 64;
  in.bk = 32;
  in.grid_x = 8;
  in.grid_y = 4;
  in.wave_ctas = 36;  // > 32 total CTAs: a single wave
  in.order = LaunchOrder::kRowMajor;
  in.sharing_efficiency = 1.0;
  in.k_iters = 4.0;
  const auto closed = l2_reuse(in);
  const auto sampled = sample_l2_reuse(in);
  EXPECT_NEAR(closed.ldg_l2_hit_rate, 0.8125, 1e-12);
  EXPECT_NEAR(sampled.ldg_l2_hit_rate, closed.ldg_l2_hit_rate, 0.02);
  EXPECT_EQ(sampled.wave_rows, 4);
  EXPECT_EQ(sampled.wave_cols, 8);
}

TEST(Sampler, SupertileHoldsReuseWhereRowMajorLosesIt) {
  // The Fig. 8 cliff mechanism: on a wide grid a row-major wave spans every
  // column, so B slabs stop fitting; a narrow supertile panel keeps the
  // wave's working set inside L2.
  L2ReuseInput in;
  in.bm = in.bn = 256;
  in.bk = 32;
  in.grid_x = 47;  // W = 12032 / bn
  in.grid_y = 47;
  in.wave_ctas = 36;
  in.k_iters = 8.0;
  in.order = LaunchOrder::kRowMajor;
  const auto row_major = sample_l2_reuse(in);
  in.order = LaunchOrder::kSupertile;
  in.supertile_width = 6;
  const auto supertile = sample_l2_reuse(in);
  EXPECT_GT(supertile.ldg_l2_hit_rate, row_major.ldg_l2_hit_rate + 0.1);
}

TEST(Sampler, PredictDispatchesByOrder) {
  L2ReuseInput in;
  in.grid_x = 64;
  in.grid_y = 64;
  in.wave_ctas = 36;
  in.order = LaunchOrder::kSwizzled;
  // kSwizzled has no concrete dispatch realization: predict must return the
  // closed form bit for bit.
  EXPECT_DOUBLE_EQ(l2_reuse_predict(in).ldg_l2_hit_rate, l2_reuse(in).ldg_l2_hit_rate);
  in.order = LaunchOrder::kSupertile;
  in.supertile_width = 6;
  EXPECT_DOUBLE_EQ(l2_reuse_predict(in).ldg_l2_hit_rate,
                   sample_l2_reuse(in).ldg_l2_hit_rate);
}

TEST(DramRowEfficiency, DroopsWithStride) {
  EXPECT_DOUBLE_EQ(dram_row_efficiency(8 * 1024), 1.0);
  EXPECT_DOUBLE_EQ(dram_row_efficiency(16 * 1024), 1.0);
  EXPECT_LT(dram_row_efficiency(32 * 1024), 1.0);
  EXPECT_GE(dram_row_efficiency(1e9), 0.80);  // floored
  EXPECT_GT(dram_row_efficiency(24 * 1024), dram_row_efficiency(32 * 1024));
}

TEST(WavePerf, ComposesWaves) {
  WaveInput in;
  in.spec = device::rtx2070();
  in.shape = {2048, 2048, 2048};
  in.steady = {4126.0, 10000.0};
  const auto r = compose(in);
  EXPECT_EQ(r.grid_x, 8u);
  EXPECT_EQ(r.grid_y, 8u);
  EXPECT_DOUBLE_EQ(r.waves, 2.0);  // 64 CTAs / 36 per wave
  const double expect_cycles = 2.0 * (10000.0 + 64.0 * 4126.0);
  EXPECT_DOUBLE_EQ(r.kernel_cycles, expect_cycles);
  EXPECT_GT(r.tflops, 0.0);
}

TEST(WavePerf, WaveQuantizationSawtooth) {
  // 37 CTA columns need 2 waves where 36 need 1: throughput dips.
  WaveInput in;
  in.spec = device::rtx2070();
  in.steady = {4126.0, 10000.0};
  in.shape = {256, 256 * 36, 4096};
  const auto full = compose(in);
  in.shape = {256, 256 * 37, 4096};
  const auto spill = compose(in);
  EXPECT_GT(full.tflops, spill.tflops);
}

TEST(WavePerf, LaunchOverheadDominatesTinyGemms) {
  WaveInput in;
  in.spec = device::rtx2070();
  in.steady = {4126.0, 10000.0};
  in.shape = {256, 256, 64};
  in.launch_overhead_us = 3.0;
  const auto r = compose(in);
  EXPECT_LT(r.tflops, 1.0);  // tiny problem cannot amortize 3us
}

}  // namespace
}  // namespace tc::model
