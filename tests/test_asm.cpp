// Text assembler tests: hand-written kernels, error reporting, and full
// disassemble -> assemble round trips of the real HGEMM/microbenchmark
// kernels.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/hgemm.hpp"
#include "core/kernel_gen.hpp"
#include "driver/device.hpp"
#include "kernels/micro.hpp"
#include "sass/asm_parser.hpp"
#include "sched/fuzz.hpp"
#include "sched/schedule.hpp"

namespace tc {
namespace {

TEST(Asm, HandWrittenKernelRuns) {
  // out[tid] = tid * 5 + param[1], written as text.
  const char* src = R"(
    .kernel smoke
    .threads 64
    S2R R0, SR_TID.X ; {S:13}
    MOV R1, c[0x0][0] ; {S:1}
    MOV R2, c[0x0][1] ; {S:13}
    IMAD R3, R0, 0x5, R2 ; {S:6}
    SHF.L R4, R0, 0x2 ; {S:6}
    IADD3 R4, R4, R1, RZ ; {S:6}
    STG.32 [R4], R3 ; {S:1}
    EXIT
  )";
  const auto prog = sass::assemble(src);
  EXPECT_EQ(prog.name, "smoke");
  EXPECT_EQ(prog.cta_threads, 64u);
  EXPECT_EQ(prog.num_param_words, 2u);

  driver::Device dev(device::rtx2070());
  auto out = dev.alloc<std::uint32_t>(64);
  sim::Launch launch;
  launch.program = &prog;
  launch.params = {out.addr, 100};
  dev.launch(launch);
  std::vector<std::uint32_t> host(64);
  dev.download(std::span<std::uint32_t>(host), out);
  for (std::uint32_t t = 0; t < 64; ++t) EXPECT_EQ(host[t], t * 5 + 100);
}

TEST(Asm, LabelsAndGuardedBranches) {
  const char* src = R"(
    .kernel looped
    MOV R0, 0x0 ; {S:1}
    MOV R1, 0xa ; {S:6}
    top:
    IADD3 R0, R0, 0x3, RZ ; {S:6}
    IADD3 R1, R1, -0x1, RZ ; {S:6}
    ISETP.GT P0, R1, 0 ; {S:6}
    @P0 BRA top ; {S:1}
    MOV R2, c[0x0][0] ; {S:13}
    STG.32 [R2], R0 ; {S:1}
    EXIT
  )";
  const auto prog = sass::assemble(src);
  driver::Device dev(device::rtx2070());
  auto out = dev.alloc<std::uint32_t>(32);
  sim::Launch launch;
  launch.program = &prog;
  launch.params = {out.addr};
  dev.launch(launch);
  std::vector<std::uint32_t> host(32);
  dev.download(std::span<std::uint32_t>(host), out);
  EXPECT_EQ(host[0], 30u);  // 10 iterations of +3
}

TEST(Asm, ErrorsCarryLineNumbers) {
  try {
    sass::assemble(".kernel bad\nNOP\nFROB R1, R2\nEXIT\n");
    FAIL() << "expected a parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("FROB"), std::string::npos);
  }
}

TEST(Asm, RejectsBadOperands) {
  EXPECT_THROW(sass::assemble("LDG.32 R1, R2\nEXIT\n"), Error);       // not a memref
  EXPECT_THROW(sass::assemble("LDG.48 R1, [R2]\nEXIT\n"), Error);     // bad width
  EXPECT_THROW(sass::assemble("BRA nowhere\nEXIT\n"), Error);         // missing label
  EXPECT_THROW(sass::assemble("MOV R1 ; {S:99}\nEXIT\n"), Error);     // bad stall
  EXPECT_THROW(sass::assemble("ISETP.GT P7, R1, 0\nEXIT\n"), Error);  // PT not writable
}

// try_assemble's structured negative paths: each malformed input must produce
// a sass::Diag whose consumer_pc is the 1-based *source line* of the offense,
// so tools can anchor the finding without scraping exception text.
struct AsmDiagCase {
  const char* label;
  const char* source;
  int line;                   // expected Diag::consumer_pc
  const char* msg_substring;  // expected fragment of Diag::message
};

class AsmDiagTest : public ::testing::TestWithParam<AsmDiagCase> {};

TEST_P(AsmDiagTest, MalformedSourceYieldsAnchoredDiag) {
  const AsmDiagCase& c = GetParam();
  sass::Diag diag;
  const auto prog = sass::try_assemble(c.source, &diag);
  ASSERT_FALSE(prog.has_value()) << c.label;
  EXPECT_EQ(diag.kind, "asm-parse") << c.label;
  EXPECT_EQ(diag.severity, sass::DiagSeverity::kError) << c.label;
  EXPECT_EQ(diag.consumer_pc, c.line) << c.label;
  EXPECT_NE(diag.message.find(c.msg_substring), std::string::npos)
      << c.label << ": message was '" << diag.message << "'";
}

INSTANTIATE_TEST_SUITE_P(
    NegativePaths, AsmDiagTest,
    ::testing::Values(
        // Malformed control words.
        AsmDiagCase{"stall_range", "NOP\nMOV R1, R2 ; {S:99}\nEXIT\n", 2, "bad stall"},
        AsmDiagCase{"ctrl_token", "MOV R1, R2 ; {Q:1}\nNOP\nEXIT\n", 1, "unknown control"},
        AsmDiagCase{"wait_digits", "NOP\nNOP\nMOV R1, R2 ; {W:07}\nEXIT\n", 3, "bad wait mask"},
        // Out-of-range barrier indices (kNumBarriers == 6).
        AsmDiagCase{"write_barrier", "NOP\nLDG.128 R4, [R2] ; {WB6}\nEXIT\n", 2,
                    "bad write barrier"},
        AsmDiagCase{"read_barrier", "NOP\nNOP\nSTS.128 [R2], R4 ; {RB9}\nEXIT\n", 3,
                    "bad read barrier"},
        // Unknown opcodes and opcode-shaped mistakes.
        AsmDiagCase{"unknown_opcode", ".kernel k\nNOP\nFROB R1, R2\nEXIT\n", 3,
                    "unknown opcode 'FROB'"},
        AsmDiagCase{"unknown_mma", "HMMA.1684.F16 R0, R2, R4, R0\nEXIT\n", 1,
                    "unknown MMA variant"},
        AsmDiagCase{"unknown_directive", ".kernel k\n.regs 40\nNOP\nEXIT\n", 2,
                    "unknown directive"}),
    [](const auto& info) { return info.param.label; });

TEST(Asm, TryAssembleReportsValidateFailuresWithoutALine) {
  // Parses fine but trips the ISA validator (barrier waited on, never
  // signalled): the diag must be tagged asm-validate with no source anchor.
  sass::Diag diag;
  const auto prog = sass::try_assemble("NOP ; {W:3}\nEXIT\n", &diag);
  ASSERT_FALSE(prog.has_value());
  EXPECT_EQ(diag.kind, "asm-validate");
  EXPECT_EQ(diag.consumer_pc, -1);
}

TEST(Asm, TryAssembleSucceedsOnGoodSourceAndMatchesAssemble) {
  const std::string src = ".kernel ok\n.threads 64\nMOV R1, 0x7\nEXIT\n";
  sass::Diag diag;
  const auto prog = sass::try_assemble(src, &diag);
  ASSERT_TRUE(prog.has_value());
  EXPECT_EQ(prog->name, "ok");
  EXPECT_EQ(prog->code.size(), sass::assemble(src).code.size());
  EXPECT_EQ(diag.kind, "");  // untouched on success
}

void expect_same_program(const sass::Program& a, const sass::Program& b) {
  ASSERT_EQ(a.code.size(), b.code.size());
  EXPECT_EQ(a.num_regs, b.num_regs);
  EXPECT_EQ(a.num_param_words, b.num_param_words);
  for (std::size_t pc = 0; pc < a.code.size(); ++pc) {
    const auto& x = a.code[pc];
    const auto& y = b.code[pc];
    EXPECT_EQ(x.to_string(), y.to_string()) << "pc " << pc;
    EXPECT_EQ(x.op, y.op) << "pc " << pc;
    EXPECT_EQ(x.target, y.target) << "pc " << pc;
    EXPECT_EQ(x.ctrl.stall, y.ctrl.stall) << "pc " << pc;
    EXPECT_EQ(x.ctrl.wait_mask, y.ctrl.wait_mask) << "pc " << pc;
    EXPECT_EQ(x.ctrl.write_barrier, y.ctrl.write_barrier) << "pc " << pc;
    EXPECT_EQ(x.ctrl.read_barrier, y.ctrl.read_barrier) << "pc " << pc;
    EXPECT_EQ(x.ctrl.yield, y.ctrl.yield) << "pc " << pc;
    EXPECT_EQ(x.ctrl.reuse, y.ctrl.reuse) << "pc " << pc;
  }
}

class AsmRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(AsmRoundTrip, DisassembleAssembleIsIdentity) {
  sass::Program original;
  const std::string which = GetParam();
  if (which == "hgemm_optimized") {
    original = core::hgemm_kernel(core::HgemmConfig::optimized(), {256, 256, 128});
  } else if (which == "hgemm_cublas") {
    original = core::hgemm_kernel(core::HgemmConfig::cublas_like(), {128, 128, 128});
  } else if (which == "hgemm_axpby") {
    original = core::hgemm_kernel(core::HgemmConfig::optimized(), {256, 256, 64},
                                  core::Epilogue{2.0f, -0.5f});
  } else if (which == "wmma_naive") {
    original = core::wmma_naive_kernel({64, 128, 64});
  } else if (which == "micro_hmma") {
    original = kernels::hmma_cpi_kernel(128, 10);
  } else if (which == "micro_lds") {
    original = kernels::smem_cpi_kernel(sass::Opcode::kLds, sass::MemWidth::k128, 32, 10);
  } else {
    FAIL() << "unknown kernel " << which;
  }

  std::string text = ".kernel " + original.name + "\n.threads " +
                     std::to_string(original.cta_threads) + "\n.smem " +
                     std::to_string(original.smem_bytes) + "\n" + original.disassemble();
  const sass::Program back = sass::assemble(text);
  expect_same_program(original, back);
}

INSTANTIATE_TEST_SUITE_P(Kernels, AsmRoundTrip,
                         ::testing::Values("hgemm_optimized", "hgemm_cublas", "hgemm_axpby",
                                           "wmma_naive", "micro_hmma", "micro_lds"),
                         [](const auto& info) { return std::string(info.param); });

TEST(AsmRoundTripScheduled, ControlWordsSurviveOnFuzzCorpus) {
  // Scheduler output exercises the whole control-word surface — stalls 1-15,
  // NOP padding, multi-bit wait masks, both barrier kinds, hoisted loop
  // waits, reuse flags. Every one of them must survive disasm -> assemble
  // bit-exactly across a varied scheduled corpus.
  for (std::uint64_t seed = 900; seed < 925; ++seed) {
    const auto fuzz_case = sched::generate_virtual_case(seed, {});
    const auto scheduled = sched::schedule(fuzz_case.prog);
    const std::string text = ".kernel " + scheduled.name + "\n.threads " +
                             std::to_string(scheduled.cta_threads) + "\n.smem " +
                             std::to_string(scheduled.smem_bytes) + "\n" +
                             scheduled.disassemble();
    const sass::Program back = sass::assemble(text);
    expect_same_program(scheduled, back);
    if (::testing::Test::HasFailure()) FAIL() << "round trip broke at seed " << seed;
  }
}

TEST(Asm, AssembledHgemmComputesCorrectly) {
  // Round-trip the optimized kernel through text, then run the *assembled*
  // program functionally and compare against the reference.
  const GemmShape shape{256, 256, 64};
  const auto original = core::hgemm_kernel(core::HgemmConfig::optimized(), shape);
  const std::string text = ".threads " + std::to_string(original.cta_threads) + "\n.smem " +
                           std::to_string(original.smem_bytes) + "\n" + original.disassemble();
  const auto prog = sass::assemble(text);

  Rng rng(55);
  HalfMatrix a(shape.m, shape.k), bt(shape.n, shape.k);
  a.randomize(rng, -0.5f, 0.5f);
  bt.randomize(rng, -0.5f, 0.5f);

  driver::Device dev(device::rtx2070());
  auto da = dev.alloc<half>(a.size());
  auto db = dev.alloc<half>(bt.size());
  auto dc = dev.alloc<half>(shape.m * shape.n);
  dev.upload(da, std::span<const half>(a.data(), a.size()));
  dev.upload(db, std::span<const half>(bt.data(), bt.size()));
  sim::Launch launch;
  launch.program = &prog;
  launch.params = {da.addr, db.addr, dc.addr};
  dev.launch(launch);

  HalfMatrix c(shape.m, shape.n);
  dev.download(std::span<half>(c.data(), c.size()), dc);
  EXPECT_EQ(core::mismatch_count(c, core::gemm_ref_tc(a, bt)), 0u);
}

}  // namespace
}  // namespace tc
