// JIT compiler tests (src/jit): compile-level invariants, per-pass
// translation validation against the interpreter oracle, hand-written
// regression vectors for the block/guard corners (predicated stores, loop
// back edges, divergence and budget errors), and the fixed-seed
// JIT-vs-interpreter differential fuzz sweeps (labelled jit_smoke in CTest).
//
// Oracle discipline: the interpreter (sim/exec_core.cpp via functional
// run_cta) is the reference semantics for every test here. The JIT is never
// compared against hand-computed values when a divergence question arises —
// only against the interpreter, bitwise, over registers, predicates, and
// memory.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "check/fuzz.hpp"
#include "common/error.hpp"
#include "jit/ir.hpp"
#include "jit/jit.hpp"
#include "mem/global_mem.hpp"
#include "numerics/numerics.hpp"
#include "sass/builder.hpp"
#include "sim/engine.hpp"
#include "sim/functional.hpp"
#include "sim/probe.hpp"

namespace tc::jit {
namespace {

using sass::CmpOp;
using sass::KernelBuilder;
using sass::MemWidth;
using sass::Pred;
using sass::Reg;

constexpr std::uint64_t kBudget = 200'000'000;

/// Runs `prog` through the interpreter and through jit::compile(opts) +
/// jit::run_cta on separate memories, then bitwise-compares the per-warp
/// probes, the output buffer, and the (must-be-untouched) input buffer.
/// Returns the first difference, or nullopt on exact agreement.
std::optional<std::string> diff_engines(
    const sass::Program& prog, const JitOptions& opts, std::uint32_t in_bytes,
    std::uint32_t out_bytes, const std::vector<std::uint8_t>& in_data,
    numerics::NumericsMode mode = numerics::NumericsMode::kIdealized,
    std::uint64_t budget = kBudget) {
  mem::GlobalMemory gmem_i, gmem_j;
  const std::uint32_t in_i = in_bytes > 0 ? gmem_i.alloc(in_bytes) : 0;
  const std::uint32_t out_i = out_bytes > 0 ? gmem_i.alloc(out_bytes) : 0;
  const std::uint32_t in_j = in_bytes > 0 ? gmem_j.alloc(in_bytes) : 0;
  const std::uint32_t out_j = out_bytes > 0 ? gmem_j.alloc(out_bytes) : 0;
  if (in_bytes > 0) {
    gmem_i.write(in_i, std::span(in_data));
    gmem_j.write(in_j, std::span(in_data));
  }

  sim::StateProbe probe_i, probe_j;
  probe_i.set_num_regs(prog.num_regs);
  probe_j.set_num_regs(prog.num_regs);

  sim::Launch launch_i;
  launch_i.program = &prog;
  launch_i.params = {in_i, out_i};
  launch_i.numerics = mode;
  sim::FunctionalExecutor fx(gmem_i, /*host_threads=*/1);
  fx.set_probe(&probe_i);
  fx.run(launch_i, budget);

  sim::Launch launch_j;
  launch_j.program = &prog;
  launch_j.params = {in_j, out_j};
  launch_j.numerics = mode;
  const JitProgram jp = compile(prog, opts);
  run_cta(jp, gmem_j, launch_j, 0, 0, 0, budget, &probe_j);

  const std::string reg_diff =
      sim::StateProbe::diff(probe_i, probe_j, /*max_reports=*/4, "interpret", "jit");
  if (!reg_diff.empty()) return reg_diff;

  std::vector<std::uint8_t> buf_i(out_bytes), buf_j(out_bytes);
  gmem_i.read(out_i, std::span(buf_i));
  gmem_j.read(out_j, std::span(buf_j));
  for (std::uint32_t i = 0; i < out_bytes; ++i) {
    if (buf_i[i] != buf_j[i]) {
      return "output byte " + std::to_string(i) + ": interpret " +
             std::to_string(buf_i[i]) + " vs jit " + std::to_string(buf_j[i]);
    }
  }
  buf_i.assign(in_bytes, 0);
  buf_j.assign(in_bytes, 0);
  if (in_bytes > 0) {
    gmem_i.read(in_i, std::span(buf_i));
    gmem_j.read(in_j, std::span(buf_j));
    for (std::uint32_t i = 0; i < in_bytes; ++i) {
      if (buf_i[i] != in_data[i] || buf_j[i] != in_data[i]) {
        return "input buffer clobbered at byte " + std::to_string(i);
      }
    }
  }
  return std::nullopt;
}

// --------------------------------------------------------------- compile

TEST(Jit, CompileRejectsInvalidPrograms) {
  // compile() must gate through sass::validate even though the builder
  // already validated: a program with its EXIT stripped off is the
  // canonical structural error.
  KernelBuilder b("no_exit");
  b.mov_imm(Reg{1}, 42);
  b.exit();
  sass::Program prog = b.finalize();
  prog.code.pop_back();
  EXPECT_THROW((void)compile(prog), tc::Error);
}

TEST(Jit, CompileReportsStatsAndPassWork) {
  // A block with a constant chain feeding a live store: forwarding must
  // rewire the reads, folding must collapse the IADD3, and nothing live may
  // be removed.
  KernelBuilder b("const_chain");
  b.mov_param(Reg{2}, 1);              // out pointer
  b.mov_imm(Reg{4}, 3);
  b.mov_imm(Reg{5}, 4);
  b.iadd3(Reg{6}, Reg{4}, Reg{5});     // = 7, foldable after forwarding
  b.stg(MemWidth::k32, Reg{2}, Reg{6});
  b.exit();
  const sass::Program prog = b.finalize();

  const JitProgram jp = compile(prog);
  EXPECT_EQ(jp.stats.blocks, 1u);
  EXPECT_EQ(jp.stats.sass_instructions, prog.code.size());
  EXPECT_GT(jp.stats.ir_instructions, 0u);
  EXPECT_GE(jp.stats.passes.forwarded, 2u);  // both IADD3 operands
  EXPECT_GE(jp.stats.passes.folded, 1u);     // the IADD3 itself
  EXPECT_LE(jp.stats.emitted_ops, jp.stats.ir_instructions);
  ASSERT_FALSE(jp.blocks.empty());
  EXPECT_EQ(jp.block_of_pc[0], 0);

  // And the optimized block still behaves like the interpreter.
  const auto diff = diff_engines(prog, JitOptions{}, 0, 32, {});
  EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST(Jit, AllPassesOffEmitsEveryTranslatedOp) {
  KernelBuilder b("no_passes");
  b.mov_param(Reg{2}, 1);
  b.mov_imm(Reg{4}, 3);
  b.iadd3(Reg{6}, Reg{4}, Reg{4});
  b.stg(MemWidth::k32, Reg{2}, Reg{6});
  b.exit();
  const sass::Program prog = b.finalize();

  const JitOptions off{/*forward=*/false, /*fold=*/false, /*dce=*/false};
  const JitProgram jp = compile(prog, off);
  EXPECT_EQ(jp.stats.passes.forwarded, 0u);
  EXPECT_EQ(jp.stats.passes.folded, 0u);
  EXPECT_EQ(jp.stats.passes.removed, 0u);
  EXPECT_EQ(jp.stats.emitted_ops, jp.stats.ir_instructions);
}

TEST(Jit, LoopKernelSplitsIntoBlocksAtLeaders) {
  KernelBuilder b("loop_blocks");
  b.mov_imm(Reg{1}, 0);
  b.label("top");
  b.iadd_imm(Reg{1}, Reg{1}, 1);
  b.isetp_imm(Pred{0}, CmpOp::kLt, Reg{1}, 10);
  b.bra("top").pred(Pred{0});
  b.exit();
  const sass::Program prog = b.finalize();

  const JitProgram jp = compile(prog);
  // Leaders: pc 0, the branch target, and the instruction after the BRA.
  EXPECT_EQ(jp.stats.blocks, 3u);
  EXPECT_GE(jp.block_of_pc[1], 0);  // "top" is a leader
}

// ------------------------------------------------- translation validation

/// Every pass, alone and combined, must be bitwise-invisible: the same
/// randomized hazard-free programs the fuzzer generates, run pre-pass vs
/// post-pass semantics (interpreter vs JIT-with-opts), must agree exactly.
void validate_passes(const JitOptions& opts, const char* what) {
  check::FuzzOptions gen;
  gen.numeric_operands = true;  // steer float/half ops into edge cases
  for (std::uint64_t seed = 70001; seed < 70041; ++seed) {
    const check::FuzzCase c = check::generate_case(seed, gen);
    const auto diff =
        diff_engines(c.prog, opts, c.in_bytes, c.out_bytes, c.in_data);
    EXPECT_FALSE(diff.has_value())
        << what << " diverged at seed " << seed << ":\n"
        << *diff << "\n"
        << c.prog.disassemble();
    if (diff.has_value()) return;  // one repro is enough
  }
}

TEST(JitPassValidation, NoPasses) {
  validate_passes(JitOptions{false, false, false}, "bare translation");
}
TEST(JitPassValidation, ForwardingAlone) {
  validate_passes(JitOptions{true, false, false}, "forwarding");
}
TEST(JitPassValidation, FoldingAlone) {
  validate_passes(JitOptions{false, true, false}, "constant folding");
}
TEST(JitPassValidation, DceAlone) {
  validate_passes(JitOptions{false, false, true}, "dead-code elimination");
}
TEST(JitPassValidation, FullPipeline) {
  validate_passes(JitOptions{}, "full pipeline");
}

// ------------------------------------------------------ regression vectors

TEST(Jit, PredicatedStoreRegressionVector) {
  // Lanes below 16 store their lane id; the other lanes store a sentinel
  // through the negated guard. A masked-store bug (writing inactive lanes,
  // or folding the guard into the address) diverges from the interpreter
  // here before any fuzz seed would find it.
  KernelBuilder b("predicated_store");
  b.mov_param(Reg{2}, 1);                    // out pointer
  b.s2r(Reg{5}, sass::SpecialReg::kLaneId);
  b.shl(Reg{6}, Reg{5}, 2);
  b.iadd3(Reg{7}, Reg{2}, Reg{6});
  b.isetp_imm(Pred{0}, CmpOp::kLt, Reg{5}, 16);
  b.stg(MemWidth::k32, Reg{7}, Reg{5}).pred(Pred{0});
  b.mov_imm(Reg{8}, 0x0DDC0FFE);
  b.stg(MemWidth::k32, Reg{7}, Reg{8}).pred(Pred{0}, /*neg=*/true);
  b.exit();
  const sass::Program prog = b.finalize();

  const auto diff = diff_engines(prog, JitOptions{}, 0, 128, {});
  EXPECT_FALSE(diff.has_value()) << *diff;

  // Sanity against the intended semantics (not the oracle — just a tripwire
  // that the vector exercises what it claims to).
  mem::GlobalMemory gmem;
  const std::uint32_t out = gmem.alloc(128);
  sim::Launch launch;
  launch.program = &prog;
  launch.params = {0, out};
  const JitProgram jp = compile(prog);
  run_cta(jp, gmem, launch, 0, 0, 0, kBudget, nullptr);
  std::vector<std::uint8_t> buf(128);
  gmem.read(out, std::span(buf));
  std::uint32_t w0 = 0, w20 = 0;
  std::memcpy(&w0, buf.data(), 4);
  std::memcpy(&w20, buf.data() + 20 * 4, 4);
  EXPECT_EQ(w0, 0u);            // lane 0: active store of lane id
  EXPECT_EQ(w20, 0x0DDC0FFEu);  // lane 20: negated-guard sentinel
}

TEST(Jit, LoopBackEdgeRegressionVector) {
  // A counted loop whose induction variable is live across the back edge:
  // forwarding state must reset at the block boundary, and the loop must
  // execute the same trip count as the interpreter.
  KernelBuilder b("counted_loop");
  b.mov_param(Reg{2}, 1);
  b.mov_imm(Reg{1}, 0);
  b.label("top");
  b.iadd_imm(Reg{1}, Reg{1}, 3);
  b.isetp_imm(Pred{0}, CmpOp::kLt, Reg{1}, 30);
  b.bra("top").pred(Pred{0});
  b.stg(MemWidth::k32, Reg{2}, Reg{1});
  b.exit();
  const sass::Program prog = b.finalize();

  const auto diff = diff_engines(prog, JitOptions{}, 0, 32, {});
  EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST(Jit, DivergentBraMatchesInterpreterError) {
  KernelBuilder b("divergent_bra");
  b.s2r(Reg{5}, sass::SpecialReg::kLaneId);
  b.isetp_imm(Pred{0}, CmpOp::kLt, Reg{5}, 1);
  b.label("skip");
  b.bra("skip").pred(Pred{0});
  b.exit();
  const sass::Program prog = b.finalize();

  const auto grab = [&](auto&& run) {
    try {
      run();
      return std::string("<no exception>");
    } catch (const std::exception& e) {
      return std::string(e.what());
    }
  };
  mem::GlobalMemory gmem_i, gmem_j;
  sim::Launch launch;
  launch.program = &prog;
  const std::string msg_i = grab([&] {
    sim::FunctionalExecutor fx(gmem_i, 1);
    fx.run(launch);
  });
  const JitProgram jp = compile(prog);
  const std::string msg_j =
      grab([&] { run_cta(jp, gmem_j, launch, 0, 0, 0, kBudget, nullptr); });
  // TC_CHECK prefixes file:line, so compare the canonical message text both
  // engines must carry verbatim.
  const std::string want = "divergent BRA is not supported (warp-uniform branches only)";
  EXPECT_NE(msg_i.find(want), std::string::npos) << msg_i;
  EXPECT_NE(msg_j.find(want), std::string::npos) << msg_j;
}

TEST(Jit, InstructionBudgetMatchesInterpreterError) {
  KernelBuilder b("runaway");
  b.label("top");
  b.bra("top");
  b.exit();
  const sass::Program prog = b.finalize();

  const auto grab = [&](auto&& run) {
    try {
      run();
      return std::string("<no exception>");
    } catch (const std::exception& e) {
      return std::string(e.what());
    }
  };
  mem::GlobalMemory gmem_i, gmem_j;
  sim::Launch launch;
  launch.program = &prog;
  const std::string msg_i = grab([&] {
    sim::FunctionalExecutor fx(gmem_i, 1);
    fx.run(launch, /*max_warp_instructions=*/1000);
  });
  const JitProgram jp = compile(prog);
  const std::string msg_j =
      grab([&] { run_cta(jp, gmem_j, launch, 0, 0, 0, 1000, nullptr); });
  const std::string want =
      "warp exceeded instruction budget (runaway loop?) in kernel 'runaway'";
  EXPECT_NE(msg_i.find(want), std::string::npos) << msg_i;
  EXPECT_NE(msg_j.find(want), std::string::npos) << msg_j;
}

// ------------------------------------------------------- differential fuzz

/// The jit_smoke acceptance sweeps: 1000 fixed seeds per numerics mode
/// through the full fuzz pipeline with the engine axis flipped to
/// JIT-vs-interpreter. Seed bases are disjoint from the functional-vs-timed
/// sweeps (1 / 20001 / 30001) so the corpora don't overlap.
void run_jit_fuzz_sweep(numerics::NumericsMode mode, bool numeric_operands,
                        std::uint64_t base_seed) {
  check::FuzzOptions opts;
  opts.compare = check::FuzzCompare::kJitVsInterpreter;
  opts.numerics = mode;
  opts.numeric_operands = numeric_operands;
  const check::FuzzReport rep = check::run_fuzz(base_seed, /*count=*/1000, opts);
  EXPECT_EQ(rep.programs, 1000);
  EXPECT_EQ(rep.divergences, 0);
  for (const auto& f : rep.failures) {
    ADD_FAILURE() << "seed " << f.seed << " [" << f.phase << "] (shrunk "
                  << f.original_size << " -> " << f.shrunk_size << "):\n"
                  << f.detail << "\n"
                  << f.program;
  }
}

TEST(JitSmoke, ThousandSeedsIdealizedNoDivergence) {
  run_jit_fuzz_sweep(numerics::NumericsMode::kIdealized,
                     /*numeric_operands=*/false, /*base_seed=*/50001);
}

TEST(JitSmoke, ThousandSeedsBitAccurateNumericOperandsNoDivergence) {
  run_jit_fuzz_sweep(numerics::NumericsMode::kBitAccurate,
                     /*numeric_operands=*/true, /*base_seed=*/60001);
}

}  // namespace
}  // namespace tc::jit
