// Tests of the general GEMM form C = alpha*A*B + beta*C (paper Section II-A
// defines it; the evaluation fixes alpha=1, beta=0 — this library implements
// the full form with an FP16x2 scaling epilogue).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/hgemm.hpp"
#include "core/reference.hpp"
#include "driver/device.hpp"

namespace tc {
namespace {

struct AxpbyCase {
  float alpha;
  float beta;
};

class HgemmAxpby : public ::testing::TestWithParam<AxpbyCase> {};

TEST_P(HgemmAxpby, MatchesScaledReference) {
  const auto [alpha, beta] = GetParam();
  Rng rng(404);
  HalfMatrix a(256, 64), bt(256, 64), c0(256, 256);
  a.randomize(rng, -0.5f, 0.5f);
  bt.randomize(rng, -0.5f, 0.5f);
  c0.randomize(rng, -2.0f, 2.0f);

  driver::Device dev(device::rtx2070());
  const HalfMatrix c = core::run_hgemm_axpby(dev, a, bt, c0, alpha, beta);
  const HalfMatrix ref = core::gemm_ref_tc_axpby(a, bt, c0, alpha, beta);
  EXPECT_EQ(core::mismatch_count(c, ref), 0u);
}

INSTANTIATE_TEST_SUITE_P(Scalars, HgemmAxpby,
                         ::testing::Values(AxpbyCase{1.0f, 0.0f}, AxpbyCase{2.0f, 0.0f},
                                           AxpbyCase{1.0f, 1.0f}, AxpbyCase{0.5f, -1.5f},
                                           AxpbyCase{-1.0f, 0.25f}, AxpbyCase{0.0f, 1.0f}),
                         [](const auto& info) {
                           auto fmt = [](float v) {
                             std::string s = std::to_string(v);
                             for (auto& ch : s) {
                               if (ch == '.' || ch == '-') ch = '_';
                             }
                             return s;
                           };
                           return "a" + fmt(info.param.alpha) + "_b" + fmt(info.param.beta);
                         });

TEST(HgemmAxpby, DefaultScalarsMatchPlainPath) {
  Rng rng(405);
  HalfMatrix a(256, 64), bt(256, 64), c0(256, 256);
  a.randomize(rng, -0.5f, 0.5f);
  bt.randomize(rng, -0.5f, 0.5f);
  c0.randomize(rng, -1.0f, 1.0f);  // must be ignored: beta = 0
  driver::Device dev(device::rtx2070());
  const HalfMatrix plain = core::run_hgemm(dev, a, bt);
  const HalfMatrix scaled = core::run_hgemm_axpby(dev, a, bt, c0, 1.0f, 0.0f);
  EXPECT_EQ(core::mismatch_count(scaled, plain), 0u);
}

TEST(HgemmAxpby, BetaOneAccumulates) {
  Rng rng(406);
  HalfMatrix a(256, 64), bt(256, 64);
  a.randomize(rng, -0.3f, 0.3f);
  bt.randomize(rng, -0.3f, 0.3f);
  HalfMatrix zero(256, 256);

  driver::Device dev(device::rtx2070());
  // Two accumulation passes: C = AB; C = AB + C.
  const HalfMatrix once = core::run_hgemm_axpby(dev, a, bt, zero, 1.0f, 1.0f);
  const HalfMatrix twice = core::run_hgemm_axpby(dev, a, bt, once, 1.0f, 1.0f);
  // Element check against the epilogue semantics.
  const HalfMatrix ref = core::gemm_ref_tc_axpby(a, bt, once, 1.0f, 1.0f);
  EXPECT_EQ(core::mismatch_count(twice, ref), 0u);
  // And magnitudes roughly doubled.
  EXPECT_NEAR(twice.at(0, 0).to_float(), 2.0f * once.at(0, 0).to_float(),
              0.05f + std::abs(once.at(0, 0).to_float()) * 0.05f);
}

TEST(HgemmAxpby, AlphaZeroScalesOutC) {
  Rng rng(407);
  HalfMatrix a(256, 64), bt(256, 64), c0(256, 256);
  a.randomize(rng, -1.0f, 1.0f);
  bt.randomize(rng, -1.0f, 1.0f);
  c0.randomize(rng, -1.0f, 1.0f);
  driver::Device dev(device::rtx2070());
  const HalfMatrix c = core::run_hgemm_axpby(dev, a, bt, c0, 0.0f, 3.0f);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      EXPECT_EQ(c.at(i, j).bits(), (half(3.0f) * c0.at(i, j)).bits());
    }
  }
}

TEST(HgemmAxpby, RaggedShapesWithScaling) {
  Rng rng(408);
  HalfMatrix a(100, 70), bt(90, 70), c0(100, 90);
  a.randomize(rng, -0.5f, 0.5f);
  bt.randomize(rng, -0.5f, 0.5f);
  c0.randomize(rng, -1.0f, 1.0f);
  driver::Device dev(device::rtx2070());
  const HalfMatrix c = core::run_hgemm_axpby(dev, a, bt, c0, 1.5f, 0.5f);
  const HalfMatrix ref = core::gemm_ref_tc_axpby(a, bt, c0, 1.5f, 0.5f);
  EXPECT_EQ(core::mismatch_count(c, ref), 0u);
}

}  // namespace
}  // namespace tc
