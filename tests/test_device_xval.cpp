// Cross-validation of model::WavePerf against sim::TimedDevice.
//
// Every kernel_gen kernel runs at several small full-device shapes on both
// the analytic wave composition (surrogate steady state + ceil-quantized
// waves, fair-share bandwidth, l2_reuse hit rate) and the cycle-level
// multi-SM simulator (shared L2/DRAM buckets, dynamic CTA dispatch, emergent
// reuse/contention). Tolerance bands — documented in docs/device_sim.md:
//
//  * whole-wave shapes (grid == W * num_sms * ctas_per_sm), tensor-bound
//    smem-staged kernels: 10 %. Measured agreement is ~1-5 %; the band
//    leaves room for platform libm noise.
//  * whole-wave, DRAM-bound smem-staged operating points (cublas_like on
//    T4): 15 %. Measured ~10-13 %: once the shared DRAM bucket is the
//    bottleneck, queueing adds a per-SM finish spread (~2-5 %) on top of
//    the fair-share rate the model assumes.
//  * whole-wave, smem-less wmma_naive (DRAM-oversubscribed everywhere):
//    40 %. Measured ~17-34 %, dominated by an emergent feedback loop the
//    single-SM surrogate cannot represent: bandwidth-stalled SMs drift
//    apart in co-resident access interleaving, lose L1 reuse, fetch more
//    and stall more (probed: per-SM dram_bytes spread ~8 %, finish spread
//    ~12 % at a pinned L2 rate and identical per-CTA work). Device time is
//    the max over SMs; the model predicts the fast-SM time.
//  * non-integral waves: 20 %. The model charges the tail wave as a full
//    wave and ignores the wave-transition DRAM burst the device simulates;
//    measured drift is ~10-15 %.
//
// The matrix runs with the device's L2 hit rate pinned to the model's
// l2_reuse prediction (ValidateKernelInput::pin_l2_hit_rate, the default):
// at these validation-scale shapes the whole A+B working set fits in L2, so
// the emergent sector-cache rate runs ~2x the η-derated analytic rate that
// l2_reuse calibrates for paper-scale working sets, and DRAM-bound kernels
// (hgemm on T4, wmma everywhere) would diverge 20-70 % for reasons that are
// a property of the shapes, not a bug in either engine. Pinning isolates
// what the matrix is meant to validate — wave composition, shared-bandwidth
// contention and CTA scheduling. EmergentL2ExceedsDeratedModel asserts the
// divergence itself, so the live sector-cache path stays covered.
//
// On failure, WaveValidation::report() attributes the miss per component
// (L2 hit rate, DRAM traffic, tensor utilization, tail imbalance).
#include <gtest/gtest.h>

#include <cmath>

#include "core/config.hpp"
#include "core/kernel_gen.hpp"
#include "core/profile.hpp"
#include "device/occupancy.hpp"
#include "mem/global_mem.hpp"
#include "model/validate.hpp"
#include "sim/timed_device.hpp"

namespace tc {
namespace {

constexpr double kWholeWaveTol = 0.10;
constexpr double kDramBoundTol = 0.15;
constexpr double kMemBoundTol = 0.40;
constexpr double kTailWaveTol = 0.20;

model::ValidateKernelInput hgemm_input(const device::DeviceSpec& spec,
                                       const core::HgemmConfig& cfg) {
  model::ValidateKernelInput kin;
  kin.make_kernel = [cfg](const GemmShape& s) { return core::hgemm_kernel(cfg, s); };
  kin.name = cfg.name();
  kin.bm = cfg.bm;
  kin.bn = cfg.bn;
  kin.bk = cfg.bk;
  kin.ctas_per_sm = core::surrogate_ctas_per_sm(spec, cfg);
  kin.order = cfg.launch_order;
  kin.swizzle_max_grid_x = cfg.swizzle_max_grid_x;
  return kin;
}

model::ValidateKernelInput wmma_input(const device::DeviceSpec& spec) {
  model::ValidateKernelInput kin;
  kin.make_kernel = [](const GemmShape& s) { return core::wmma_naive_kernel(s); };
  kin.name = "wmma_naive";
  kin.bm = 16;
  kin.bn = 128;
  kin.bk = 16;
  const GemmShape probe{16, 128, 32};
  kin.ctas_per_sm = device::occupancy(spec, core::wmma_naive_kernel(probe)).ctas_per_sm;
  return kin;
}

/// A shape whose grid is exactly `waves` full device waves: num_sms factors
/// as a x b (a <= b), grid_y = a * ctas_per_sm * waves along m, grid_x = b
/// along n. `transpose` swaps the factor assignment for a different aspect
/// ratio at the same CTA count.
GemmShape whole_wave_shape(const device::DeviceSpec& spec,
                           const model::ValidateKernelInput& kin, std::size_t k,
                           int waves = 1, bool transpose = false) {
  int a = 1;
  for (int d = 1; d * d <= spec.num_sms; ++d) {
    if (spec.num_sms % d == 0) a = d;
  }
  int b = spec.num_sms / a;
  if (transpose) std::swap(a, b);
  const auto grid_y = static_cast<std::size_t>(a * kin.ctas_per_sm * waves);
  const auto grid_x = static_cast<std::size_t>(b);
  return {grid_y * static_cast<std::size_t>(kin.bm),
          grid_x * static_cast<std::size_t>(kin.bn), k};
}

void expect_xval(const device::DeviceSpec& spec, const model::ValidateKernelInput& kin,
                 const GemmShape& shape, double tol) {
  const auto v = model::validate_wave(spec, kin, shape);
  EXPECT_LE(std::abs(v.rel_error), tol)
      << kin.name << " on " << spec.name << " at " << shape.m << "x" << shape.n << "x"
      << shape.k << ":\n"
      << v.report();
}

/// Three whole-wave shapes per kernel/device: two k's at the default aspect
/// ratio plus the transposed factorization (>= 3 sizes per the harness
/// contract). `tol` is the regime band from the table above.
void xval_matrix(const device::DeviceSpec& spec, const model::ValidateKernelInput& kin,
                 std::size_t k_small, std::size_t k_large,
                 double tol = kWholeWaveTol) {
  expect_xval(spec, kin, whole_wave_shape(spec, kin, k_small), tol);
  expect_xval(spec, kin, whole_wave_shape(spec, kin, k_large), tol);
  expect_xval(spec, kin, whole_wave_shape(spec, kin, k_small, 1, true), tol);
}

TEST(DeviceXval, OptimizedRtx2070) {
  const auto spec = device::rtx2070();
  xval_matrix(spec, hgemm_input(spec, core::HgemmConfig::optimized()), 128, 256);
}

TEST(DeviceXval, OptimizedT4) {
  const auto spec = device::t4();
  xval_matrix(spec, hgemm_input(spec, core::HgemmConfig::optimized()), 128, 256);
}

TEST(DeviceXval, CublasLikeRtx2070) {
  const auto spec = device::rtx2070();
  xval_matrix(spec, hgemm_input(spec, core::HgemmConfig::cublas_like()), 128, 256);
}

TEST(DeviceXval, CublasLikeT4) {
  // The cublas_like config on T4 is DRAM-bound at these shapes (T4 has
  // ~45 % of the RTX 2070's per-SM DRAM share): shared-bucket queueing adds
  // a measured 2-5 % per-SM finish spread over the model's fair share.
  const auto spec = device::t4();
  xval_matrix(spec, hgemm_input(spec, core::HgemmConfig::cublas_like()), 128, 256,
              kDramBoundTol);
}

TEST(DeviceXval, WmmaNaiveRtx2070) {
  // wmma_naive is smem-less and DRAM-oversubscribed on both devices; see
  // the header for why the emergent per-SM spread forces the wide band.
  const auto spec = device::rtx2070();
  xval_matrix(spec, wmma_input(spec), 64, 128, kMemBoundTol);
}

TEST(DeviceXval, WmmaNaiveT4) {
  const auto spec = device::t4();
  xval_matrix(spec, wmma_input(spec), 64, 128, kMemBoundTol);
}

TEST(DeviceXval, EmergentL2ExceedsDeratedModel) {
  // With the sector cache live, a one-wave working set that fits in L2 must
  // beat the model's derated analytic rate — and the tensor-bound optimized
  // kernel must stay within the headline band regardless of which L2 rate
  // it sees (cycle count insensitive to the divergence).
  const auto spec = device::rtx2070();
  auto kin = hgemm_input(spec, core::HgemmConfig::optimized());
  kin.pin_l2_hit_rate = false;
  const auto v = model::validate_wave(spec, kin, whole_wave_shape(spec, kin, 128));
  EXPECT_GT(v.device_l2_hit_rate, v.model_l2_hit_rate) << v.report();
  EXPECT_LE(std::abs(v.rel_error), kWholeWaveTol) << v.report();
}

TEST(DeviceXval, TailWaveWithinWideBand) {
  // A non-integral second wave: the model's ceil() and the device's dynamic
  // refill disagree the most here; the drift must stay inside the wider
  // documented band.
  const auto spec = device::rtx2070();
  const auto kin = hgemm_input(spec, core::HgemmConfig::optimized());
  expect_xval(spec, kin, {2048, 2048, 256}, kTailWaveTol);
}

// ---------------------------------------------------------------------------
// Property tests re-asserted against TimedDevice (not just WavePerf): the
// wave-quantization sawtooth and k-linearity of tests/test_property.cpp must
// also hold for the emergent device simulation.

std::uint64_t device_cycles(const device::DeviceSpec& spec,
                            const model::ValidateKernelInput& kin, const GemmShape& shape) {
  const sass::Program prog = kin.make_kernel(shape);
  mem::GlobalMemory gmem;
  sim::Launch launch;
  launch.program = &prog;
  launch.grid_x = static_cast<std::uint32_t>(shape.n / static_cast<std::size_t>(kin.bn));
  launch.grid_y = static_cast<std::uint32_t>(shape.m / static_cast<std::size_t>(kin.bm));
  launch.params = {gmem.alloc(shape.m * shape.k * 2), gmem.alloc(shape.n * shape.k * 2),
                   gmem.alloc(shape.m * shape.n * 2)};
  sim::TimedDeviceConfig dc;
  dc.spec = spec;
  dc.ctas_per_sm = kin.ctas_per_sm;
  dc.skip_mma_math = true;
  sim::TimedDevice dev(dc, gmem);
  return dev.run(launch).device_cycles;
}

TEST(DeviceXval, WaveQuantizationSawtoothEmerges) {
  // One CTA row past a full wave costs nearly a whole extra wave.
  const auto spec = device::rtx2070();
  const auto kin = hgemm_input(spec, core::HgemmConfig::optimized());
  const auto full = device_cycles(spec, kin, {1536, 1536, 128});   // 36 CTAs, 1 wave
  const auto over = device_cycles(spec, kin, {1792, 1536, 128});   // 42 CTAs, 2 waves
  EXPECT_GT(static_cast<double>(over), 1.3 * static_cast<double>(full));
  EXPECT_LT(static_cast<double>(over), 2.6 * static_cast<double>(full));
}

TEST(DeviceXval, KLinearityEmerges) {
  // Device cycles grow linearly in k: equal k increments cost equal cycles.
  const auto spec = device::rtx2070();
  const auto kin = hgemm_input(spec, core::HgemmConfig::optimized());
  const auto c1 = device_cycles(spec, kin, {1536, 1536, 128});
  const auto c2 = device_cycles(spec, kin, {1536, 1536, 256});
  const auto c3 = device_cycles(spec, kin, {1536, 1536, 384});
  const double s12 = static_cast<double>(c2 - c1);
  const double s23 = static_cast<double>(c3 - c2);
  EXPECT_GT(c2, c1);
  EXPECT_GT(c3, c2);
  EXPECT_NEAR(s23 / s12, 1.0, 0.25);
}

TEST(DeviceXval, SubWaveGridPrimesEverySm) {
  // Regression: sms_used was min(num_sms, num_ctas) while priming filled SMs
  // depth-first (each SM draining up to ctas_per_sm CTAs from the source in
  // turn), so a sub-wave grid starved the trailing SMs and the launch aborted
  // with "CTA source drained". A 2x2 grid at ctas_per_sm=2 must instead run
  // on ceil(4 / 2) = 2 SMs, two CTAs each, every instantiated SM fed.
  const auto spec = device::rtx2070();
  const auto kin = hgemm_input(spec, core::HgemmConfig::optimized());
  const GemmShape shape{2 * static_cast<std::size_t>(kin.bm),
                        2 * static_cast<std::size_t>(kin.bn), 128};
  const sass::Program prog = kin.make_kernel(shape);
  mem::GlobalMemory gmem;
  sim::Launch launch;
  launch.program = &prog;
  launch.grid_x = 2;
  launch.grid_y = 2;
  launch.params = {gmem.alloc(shape.m * shape.k * 2), gmem.alloc(shape.n * shape.k * 2),
                   gmem.alloc(shape.m * shape.n * 2)};
  sim::TimedDeviceConfig dc;
  dc.spec = spec;
  dc.ctas_per_sm = 2;
  dc.skip_mma_math = true;
  sim::TimedDevice dev(dc, gmem);
  const auto res = dev.run(launch);
  EXPECT_EQ(res.sms_used, 2);
  EXPECT_EQ(res.ctas_run, 4u);
  ASSERT_EQ(res.per_sm.size(), 2u);
  for (const auto& s : res.per_sm) EXPECT_GT(s.instructions, 0u);

  // Odd remainder: 3 CTAs at 2/SM -> 2 SMs, the second primed with only one.
  const GemmShape odd{3 * static_cast<std::size_t>(kin.bm),
                      static_cast<std::size_t>(kin.bn), 128};
  const sass::Program oprog = kin.make_kernel(odd);
  mem::GlobalMemory ogmem;
  sim::Launch olaunch;
  olaunch.program = &oprog;
  olaunch.grid_x = 1;
  olaunch.grid_y = 3;
  olaunch.params = {ogmem.alloc(odd.m * odd.k * 2), ogmem.alloc(odd.n * odd.k * 2),
                    ogmem.alloc(odd.m * odd.n * 2)};
  sim::TimedDevice odev(dc, ogmem);
  const auto ores = odev.run(olaunch);
  EXPECT_EQ(ores.sms_used, 2);
  EXPECT_EQ(ores.ctas_run, 3u);
  for (const auto& s : ores.per_sm) EXPECT_GT(s.instructions, 0u);
}

TEST(DeviceXval, ThreadShardingAgreesWithLockstep) {
  // threads=2 reorders same-window shared-bucket withdrawals; bounded skew
  // must keep the result within a small band of the deterministic interleave.
  const auto spec = device::rtx2070();
  const auto kin = hgemm_input(spec, core::HgemmConfig::optimized());
  const GemmShape shape{1024, 512, 128};  // 8 CTAs
  const sass::Program prog = kin.make_kernel(shape);

  auto run = [&](int threads) {
    mem::GlobalMemory gmem;
    sim::Launch launch;
    launch.program = &prog;
    launch.grid_x = 2;
    launch.grid_y = 4;
    launch.params = {gmem.alloc(shape.m * shape.k * 2), gmem.alloc(shape.n * shape.k * 2),
                     gmem.alloc(shape.m * shape.n * 2)};
    sim::TimedDeviceConfig dc;
    dc.spec = spec;
    dc.ctas_per_sm = kin.ctas_per_sm;
    dc.skip_mma_math = true;
    dc.threads = threads;
    sim::TimedDevice dev(dc, gmem);
    return dev.run(launch).device_cycles;
  };

  const auto lockstep = run(1);
  const auto sharded = run(2);
  EXPECT_NEAR(static_cast<double>(sharded), static_cast<double>(lockstep),
              0.05 * static_cast<double>(lockstep));

  // threads=1 must be exactly reproducible.
  EXPECT_EQ(run(1), lockstep);
}

}  // namespace
}  // namespace tc
