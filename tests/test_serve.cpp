// tc::serve regression suite: the persistent shape-bucketed tuning cache
// (golden bucket edges, JSON round-trip, corrupt/stale rejection), the
// serving loop (warm-cache zero-retune guarantee, weighted fairness,
// admission control, batching) and the bitwise-determinism pin across host
// thread counts — the serving-layer analogue of test_tune's 1-vs-7 pin.
//
// The whole binary carries the `serve_smoke` CTest label; the two *Smoke
// tests at the bottom are the seeded-traffic acceptance runs on both device
// specs (hit rate >= 90% after warmup, zero hazard diagnostics).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/json_parse.hpp"
#include "serve/serve.hpp"
#include "serve/traffic.hpp"
#include "tune/cache.hpp"

namespace tc {
namespace {

/// Narrow space + tiny budget so every cold bucket tunes in well under a
/// second; winners are still real tuned kernels from a non-trivial grid.
tune::SearchSpace small_space() {
  tune::SearchSpace s;
  s.bm = {64, 128};
  s.bn = {64, 128};
  s.bk = {32, 64};
  s.wm = {32, 64};
  s.wn = {32, 64};
  s.layouts = {core::SmemLayout::kPaddedTile};
  s.sts_interleave = {5};
  s.prefetch = {true};
  return s;
}

serve::ServerOptions small_options(const device::DeviceSpec& spec) {
  serve::ServerOptions o;
  o.spec = spec;
  o.space = small_space();
  o.tune_budget = 2;
  return o;
}

std::string metrics_json(const serve::Metrics& m) {
  std::ostringstream os;
  JsonWriter j(os);
  serve::write_metrics_json(j, m);
  return os.str();
}

/// N identical-shape requests for one tenant, all arriving at cycle 0.
std::vector<serve::Request> burst(int n, int tenant, const GemmShape& shape,
                                  std::uint64_t first_id = 0) {
  std::vector<serve::Request> out;
  for (int i = 0; i < n; ++i) {
    out.push_back({first_id + static_cast<std::uint64_t>(i), tenant, shape, 0});
  }
  return out;
}

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() / name).string()) {
    std::filesystem::remove(path_);
  }
  ~TempFile() { std::filesystem::remove(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---------------------------------------------------------------------------
// CacheKey bucketing — golden pin of the bucket edges (docs/serving.md).
// Cache files persist across builds, so these edges are a compatibility
// contract: changing them orphans every stored winner.
// ---------------------------------------------------------------------------

TEST(TuneCacheKey, GoldenBucketEdges) {
  const struct {
    std::size_t dim, bucket;
  } golden[] = {
      {1, 64},    {63, 64},    {64, 64},     {65, 128},   {100, 128},
      {128, 128}, {129, 256},  {200, 256},   {256, 256},  {257, 512},
      {512, 512}, {1000, 1024}, {1024, 1024}, {1025, 2048},
  };
  for (const auto& g : golden) {
    EXPECT_EQ(tune::bucket_dim(g.dim), g.bucket) << "dim " << g.dim;
  }
}

TEST(TuneCacheKey, KeyBucketsEachDimensionIndependently) {
  const tune::CacheKey key = tune::cache_key(device::rtx2070(), {200, 65, 33});
  EXPECT_EQ(key.device, "RTX2070");
  EXPECT_EQ(key.m, 256u);
  EXPECT_EQ(key.n, 128u);
  EXPECT_EQ(key.k, 64u);
  EXPECT_EQ(key.str(), "RTX2070:256x128x64");
  EXPECT_EQ(tune::bucket_shape(key), (GemmShape{256, 128, 64}));

  // Every shape inside the bucket maps to the same key.
  EXPECT_EQ(tune::cache_key(device::rtx2070(), {256, 128, 64}), key);
  EXPECT_EQ(tune::cache_key(device::rtx2070(), {129, 127, 1}), key);
  // The spec is part of the identity.
  EXPECT_FALSE(tune::cache_key(device::t4(), {200, 65, 33}) == key);
}

// ---------------------------------------------------------------------------
// Cache file round-trip and defensive load.
// ---------------------------------------------------------------------------

tune::CacheEntry valid_entry() {
  tune::CacheEntry e;
  e.key = {"RTX2070", 256, 256, 64};
  e.cfg = core::HgemmConfig::optimized();
  e.sim_cycles = 16090;
  e.budget = 4;
  e.seed = 1;
  e.engine = "timed-device";
  return e;
}

TEST(TuneCache, JsonRoundTripIsByteStable) {
  tune::TuneCache cache;
  cache.insert(valid_entry());
  tune::CacheEntry second = valid_entry();
  second.key.m = 64;
  second.cfg = core::HgemmConfig::cublas_like();
  second.sim_cycles = 20000;
  cache.insert(second);

  const std::string text = cache.to_json();
  tune::CacheLoadStats stats;
  const tune::TuneCache back = tune::TuneCache::from_json(text, &stats);
  EXPECT_EQ(stats.loaded, 2u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(back.size(), 2u);
  EXPECT_EQ(back.to_json(), text);  // canonical: round-trip is identity

  const tune::CacheEntry* hit = back.find(valid_entry().key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cfg.bm, 256);
  EXPECT_EQ(hit->cfg.layout, core::SmemLayout::kPaddedTile);
  EXPECT_EQ(hit->sim_cycles, 16090u);
  EXPECT_EQ(hit->engine, "timed-device");

  // And through the generic parser: parse(dump(parse(x))) is stable.
  const JsonValue doc = json_parse(text);
  EXPECT_EQ(json_dump(doc), json_dump(json_parse(json_dump(doc))));
}

TEST(TuneCache, InsertReplacesExistingKey) {
  tune::TuneCache cache;
  cache.insert(valid_entry());
  tune::CacheEntry update = valid_entry();
  update.sim_cycles = 12345;
  cache.insert(update);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.find(update.key)->sim_cycles, 12345u);
}

TEST(TuneCache, MalformedDocumentIsColdStartNotCrash) {
  for (const char* bad : {"not json at all", "{\"schema\":\"wrong-schema\",\"entries\":[]}",
                          "{\"no_schema\":1}", "[1,2,3]"}) {
    tune::CacheLoadStats stats;
    const tune::TuneCache cache = tune::TuneCache::from_json(bad, &stats);
    EXPECT_EQ(cache.size(), 0u) << bad;
    ASSERT_FALSE(stats.diagnostics.empty()) << bad;
    EXPECT_NE(stats.diagnostics.front().find("unreadable tuning cache"), std::string::npos);
  }
  // Missing file: empty cache, no diagnostics (a cold start is not an error).
  tune::CacheLoadStats stats;
  const tune::TuneCache cache = tune::TuneCache::load("/nonexistent/tc_cache.json", &stats);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_TRUE(stats.diagnostics.empty());
}

TEST(TuneCache, CorruptAndStaleEntriesAreRejectedWithDiagnostics) {
  tune::TuneCache good;
  good.insert(valid_entry());
  std::string text = good.to_json();
  // Three bad entries alongside the good one: an illegal config (bm 100
  // fails the SearchSpace tiling rules), an unknown device, and a malformed
  // entry missing its config.
  ASSERT_EQ(text.rfind("]}\n"), text.size() - 3);
  text.insert(
      text.size() - 3,
      ",{\"device\":\"RTX2070\",\"m\":512,\"n\":512,\"k\":64,\"config\":{\"bm\":100,"
      "\"bn\":256,\"bk\":32,\"wm\":128,\"wn\":64,\"wk\":8,\"layout\":\"padded_tile\","
      "\"sts_interleave\":5,\"prefetch\":true},\"sim_cycles\":1,\"budget\":1,\"seed\":1,"
      "\"engine\":\"timed-device\"}"
      ",{\"device\":\"gtx1080\",\"m\":64,\"n\":64,\"k\":64,\"config\":{\"bm\":64,"
      "\"bn\":64,\"bk\":32,\"wm\":64,\"wn\":64,\"wk\":8,\"layout\":\"padded_tile\","
      "\"sts_interleave\":5,\"prefetch\":true},\"sim_cycles\":1,\"budget\":1,\"seed\":1,"
      "\"engine\":\"timed-device\"}"
      ",{\"device\":\"RTX2070\",\"m\":64,\"n\":64,\"k\":64}");

  tune::CacheLoadStats stats;
  const tune::TuneCache cache = tune::TuneCache::from_json(text, &stats);
  EXPECT_EQ(stats.loaded, 1u);
  EXPECT_EQ(stats.rejected, 3u);
  ASSERT_EQ(stats.diagnostics.size(), 3u);
  EXPECT_NE(stats.diagnostics[0].find("SearchSpace legality"), std::string::npos)
      << stats.diagnostics[0];
  EXPECT_NE(stats.diagnostics[1].find("unknown device"), std::string::npos)
      << stats.diagnostics[1];
  EXPECT_NE(stats.diagnostics[2].find("malformed cache entry"), std::string::npos)
      << stats.diagnostics[2];
  // The valid entry survived; the poisoned bucket is simply absent.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.find(valid_entry().key), nullptr);
  EXPECT_EQ(cache.find({"RTX2070", 512, 512, 64}), nullptr);
}

TEST(TuneCache, ServerRetunesRejectedEntryInsteadOfServingIt) {
  // A cache file whose only entry for the traffic's bucket is corrupt: the
  // server must reject it at load, re-tune the bucket, and overwrite the
  // file with a servable winner.
  TempFile file("tc_serve_stale_cache.json");
  {
    std::ofstream os(file.path());
    os << "{\"schema\":\"tc-tune-cache-v1\",\"entries\":["
          "{\"device\":\"RTX2070\",\"m\":64,\"n\":64,\"k\":64,\"config\":{\"bm\":100,"
          "\"bn\":64,\"bk\":32,\"wm\":64,\"wn\":64,\"wk\":8,\"layout\":\"padded_tile\","
          "\"sts_interleave\":5,\"prefetch\":true},\"sim_cycles\":1,\"budget\":1,"
          "\"seed\":1,\"engine\":\"timed-device\"}]}\n";
  }
  serve::ServerOptions opt = small_options(device::rtx2070());
  opt.cache_path = file.path();
  serve::Server server(opt);
  EXPECT_EQ(server.load_stats().rejected, 1u);
  ASSERT_EQ(server.load_stats().diagnostics.size(), 1u);
  EXPECT_NE(server.load_stats().diagnostics[0].find("SearchSpace legality"),
            std::string::npos);
  EXPECT_EQ(server.cache().size(), 0u);

  const serve::Metrics m = server.run(burst(2, 0, {64, 64, 64}));
  EXPECT_EQ(m.counters.completed, 2u);
  EXPECT_EQ(m.counters.cache_misses, 1u);  // re-tuned, not served stale
  EXPECT_GT(m.counters.tune_evals, 0u);
  EXPECT_EQ(m.counters.hazard_diags, 0u);

  // The rewritten file now loads clean and serves warm.
  tune::CacheLoadStats stats;
  const tune::TuneCache reloaded = tune::TuneCache::load(file.path(), &stats);
  EXPECT_EQ(stats.rejected, 0u);
  ASSERT_EQ(reloaded.size(), 1u);
  EXPECT_TRUE(tune::validate_cache_entry(reloaded.entries()[0]).empty());
}

// ---------------------------------------------------------------------------
// Serving loop.
// ---------------------------------------------------------------------------

TEST(Serve, WarmServerNeverSpendsTuneBudget) {
  serve::TrafficOptions topt;
  topt.requests = 40;
  topt.seed = 11;
  const auto traffic = serve::llm_traffic(topt);

  serve::Server server(small_options(device::rtx2070()));
  const serve::Metrics cold = server.run(traffic);
  EXPECT_GT(cold.counters.cache_misses, 0u);
  EXPECT_GT(cold.counters.tune_evals, 0u);
  EXPECT_EQ(cold.counters.completed, cold.counters.accepted);

  const serve::Metrics warm = server.run(traffic);
  EXPECT_EQ(warm.counters.tune_evals, 0u);  // the acceptance counter
  EXPECT_EQ(warm.counters.cache_misses, 0u);
  EXPECT_EQ(warm.cache_hit_rate, 1.0);
  // Tuning is control-plane work outside the virtual clock, so cold and
  // warm runs of the same stream have identical latency metrics.
  EXPECT_EQ(warm.makespan_cycles, cold.makespan_cycles);
  EXPECT_EQ(warm.p50_cycles, cold.p50_cycles);
  EXPECT_EQ(warm.p99_cycles, cold.p99_cycles);
}

TEST(Serve, CacheFilePersistsAcrossServerRestarts) {
  TempFile file("tc_serve_persist_cache.json");
  serve::TrafficOptions topt;
  topt.requests = 30;
  topt.seed = 3;
  const auto traffic = serve::llm_traffic(topt);

  serve::ServerOptions opt = small_options(device::rtx2070());
  opt.cache_path = file.path();
  serve::Metrics cold;
  {
    serve::Server first(opt);
    cold = first.run(traffic);
    EXPECT_GT(cold.counters.tune_evals, 0u);
  }
  // A fresh process loading the same file: warm from request one.
  serve::Server second(opt);
  EXPECT_EQ(second.load_stats().rejected, 0u);
  EXPECT_GT(second.cache().size(), 0u);
  const serve::Metrics warm = second.run(traffic);
  EXPECT_EQ(warm.counters.tune_evals, 0u);
  EXPECT_EQ(warm.cache_hit_rate, 1.0);
  // Bit-for-bit reuse: identical service metrics (only the hit/miss
  // counters may differ between the cold and warm documents).
  EXPECT_EQ(warm.makespan_cycles, cold.makespan_cycles);
  EXPECT_EQ(warm.p50_cycles, cold.p50_cycles);
  EXPECT_EQ(warm.p99_cycles, cold.p99_cycles);
  EXPECT_EQ(warm.qps, cold.qps);
  EXPECT_EQ(warm.counters.worker_busy_cycles, cold.counters.worker_busy_cycles);
  // And a third restart is byte-identical to the second (both fully warm).
  serve::Server third(opt);
  EXPECT_EQ(metrics_json(third.run(traffic)), metrics_json(warm));
}

TEST(Serve, MetricsAreBitwiseDeterministicAcrossHostThreads) {
  // The serving analogue of test_tune's 1-vs-7-thread pin: host threads
  // accelerate cold-bucket tuning only; the metrics document is byte-equal.
  serve::TrafficOptions topt;
  topt.requests = 30;
  topt.tenants = 3;
  topt.seed = 9;
  const auto traffic = serve::llm_traffic(topt);

  std::string first;
  for (const int threads : {1, 7}) {
    serve::ServerOptions opt = small_options(device::rtx2070());
    opt.threads = threads;
    opt.workers = 3;
    serve::Server server(opt);
    const std::string doc = metrics_json(server.run(traffic));
    if (threads == 1) {
      first = doc;
    } else {
      EXPECT_EQ(doc, first);
    }
  }
  // And across repeated identical runs.
  serve::ServerOptions opt = small_options(device::rtx2070());
  opt.workers = 3;
  serve::Server again(opt);
  EXPECT_EQ(metrics_json(again.run(traffic)), first);
}

TEST(Serve, WeightedFairSchedulingFavorsHeavyTenant) {
  // Two tenants, equal demand, weights 3:1, one worker, full backlog at
  // cycle 0. SFQ must interleave service 3:1, so the heavy tenant's
  // latencies are strictly better while both eventually complete.
  auto traffic = burst(12, 0, {64, 64, 64});
  const auto b = burst(12, 1, {64, 64, 64}, 100);
  traffic.insert(traffic.end(), b.begin(), b.end());

  serve::ServerOptions opt = small_options(device::rtx2070());
  opt.workers = 1;
  opt.batch_max = 1;
  opt.queue_capacity = 64;
  opt.tenant_weights = {3, 1};
  serve::Server server(opt);
  const serve::Metrics m = server.run(traffic);

  ASSERT_EQ(m.tenants.size(), 2u);
  EXPECT_EQ(m.tenants[0].completed, 12u);
  EXPECT_EQ(m.tenants[1].completed, 12u);
  EXPECT_LT(m.tenants[0].p50_cycles, m.tenants[1].p50_cycles);
  EXPECT_LT(m.tenants[0].p99_cycles, m.tenants[1].p99_cycles);

  // Early service is split ~3:1: of the first 8 completions, 6 belong to
  // the weight-3 tenant (the first pass seeds both vtags at 0, then SFQ
  // spaces tenant 1 at every 4th slot).
  int heavy_early = 0;
  for (std::size_t i = 0; i < 8; ++i) heavy_early += m.completions[i].tenant == 0 ? 1 : 0;
  EXPECT_EQ(heavy_early, 6);
}

TEST(Serve, EqualWeightsShareEvenly) {
  auto traffic = burst(10, 0, {64, 64, 64});
  const auto b = burst(10, 1, {64, 64, 64}, 100);
  traffic.insert(traffic.end(), b.begin(), b.end());

  serve::ServerOptions opt = small_options(device::rtx2070());
  opt.workers = 1;
  opt.batch_max = 1;
  opt.queue_capacity = 64;
  serve::Server server(opt);
  const serve::Metrics m = server.run(traffic);
  ASSERT_EQ(m.tenants.size(), 2u);
  EXPECT_EQ(m.tenants[0].share, 0.5);
  EXPECT_EQ(m.tenants[1].share, 0.5);
  // Identical costs and weights: p50s within one pass of each other.
  EXPECT_NEAR(m.tenants[0].p50_cycles, m.tenants[1].p50_cycles,
              static_cast<double>(m.makespan_cycles) / 10.0);
}

TEST(Serve, AdmissionControlShedsBeyondQueueCapacity) {
  serve::ServerOptions opt = small_options(device::rtx2070());
  opt.workers = 1;
  opt.batch_max = 1;
  opt.queue_capacity = 3;
  serve::Server server(opt);
  const serve::Metrics m = server.run(burst(10, 0, {64, 64, 64}));

  EXPECT_EQ(m.counters.requests, 10u);
  EXPECT_EQ(m.counters.accepted, 3u);  // capacity bounds simultaneous arrivals
  EXPECT_EQ(m.counters.shed, 7u);
  EXPECT_EQ(m.counters.completed, 3u);
  ASSERT_EQ(m.tenants.size(), 1u);
  EXPECT_EQ(m.tenants[0].shed, 7u);

  // Under a spread-out stream the same capacity sheds nothing.
  std::vector<serve::Request> spread;
  for (int i = 0; i < 10; ++i) {
    spread.push_back({static_cast<std::uint64_t>(i), 0, {64, 64, 64},
                      static_cast<std::uint64_t>(i) * 1000000});
  }
  serve::Server relaxed(small_options(device::rtx2070()));
  const serve::Metrics m2 = relaxed.run(spread);
  EXPECT_EQ(m2.counters.shed, 0u);
  EXPECT_EQ(m2.counters.completed, 10u);
}

TEST(Serve, BatchingFusesCompatibleRequestsAndShrinksMakespan) {
  const auto traffic = burst(8, 0, {64, 64, 64});

  serve::ServerOptions opt = small_options(device::rtx2070());
  opt.workers = 1;
  opt.queue_capacity = 64;
  opt.batch_max = 4;
  serve::Server batched(opt);
  const serve::Metrics mb = batched.run(traffic);
  EXPECT_EQ(mb.counters.completed, 8u);
  EXPECT_EQ(mb.counters.batches, 2u);  // 8 requests / batch_max 4
  EXPECT_EQ(mb.counters.batched_requests, 8u);
  for (const auto& c : mb.completions) EXPECT_EQ(c.batch, 4);

  opt.batch_max = 1;
  serve::Server serial(opt);
  const serve::Metrics ms = serial.run(traffic);
  EXPECT_EQ(ms.counters.batches, 8u);
  // A 64x64 GEMM is one CTA — a whole simulated device per request. Fusing
  // four onto one pass fills idle SMs, so the batched makespan is smaller.
  EXPECT_LT(mb.makespan_cycles, ms.makespan_cycles);

  // Mixed buckets never fuse: alternating shapes break the run of equal keys.
  std::vector<serve::Request> mixed;
  for (int i = 0; i < 6; ++i) {
    mixed.push_back({static_cast<std::uint64_t>(i), 0,
                     i % 2 == 0 ? GemmShape{64, 64, 64} : GemmShape{128, 64, 64}, 0});
  }
  opt.batch_max = 4;
  serve::Server alternating(opt);
  const serve::Metrics ma = alternating.run(mixed);
  EXPECT_EQ(ma.counters.batches, 6u);
}

// ---------------------------------------------------------------------------
// Traffic generator.
// ---------------------------------------------------------------------------

TEST(ServeTraffic, DeterministicSkewedAndWellFormed) {
  serve::TrafficOptions opt;
  opt.requests = 200;
  opt.tenants = 3;
  opt.seed = 17;
  const auto a = serve::llm_traffic(opt);
  const auto b = serve::llm_traffic(opt);
  ASSERT_EQ(a.size(), 200u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_EQ(a[i].shape, b[i].shape);
    EXPECT_EQ(a[i].arrival_cycle, b[i].arrival_cycle);
  }

  std::uint64_t prev = 0;
  std::vector<int> per_tenant(3, 0);
  for (const auto& r : a) {
    EXPECT_GE(r.arrival_cycle, prev);  // arrivals are non-decreasing
    prev = r.arrival_cycle;
    ASSERT_GE(r.tenant, 0);
    ASSERT_LT(r.tenant, 3);
    ++per_tenant[static_cast<std::size_t>(r.tenant)];
    EXPECT_GT(r.shape.m, 0u);
  }
  // Demand skew: tenant 0 draws with weight 3, tenant 2 with weight 1.
  EXPECT_GT(per_tenant[0], per_tenant[2]);

  opt.seed = 18;
  const auto c = serve::llm_traffic(opt);
  bool differs = false;
  for (std::size_t i = 0; i < c.size(); ++i) {
    differs = differs || !(c[i].shape == a[i].shape) || c[i].arrival_cycle != a[i].arrival_cycle;
  }
  EXPECT_TRUE(differs);
}

TEST(ServeTraffic, JitteredShapesStayInTheirBucket) {
  serve::TrafficOptions opt;
  opt.requests = 300;
  opt.seed = 1;
  std::set<std::string> buckets;
  for (const auto& r : serve::llm_traffic(opt)) {
    buckets.insert(tune::cache_key(device::rtx2070(), r.shape).str());
  }
  // The palette maps onto exactly its six bucket keys, jitter or not.
  EXPECT_LE(buckets.size(), 6u);
  EXPECT_GE(buckets.size(), 4u);
}

// ---------------------------------------------------------------------------
// Seeded-traffic smoke acceptance (both device specs): cache hit rate >= 90%
// after warmup, zero hazard diagnostics, zero warm tune evals.
// ---------------------------------------------------------------------------

void run_smoke(const device::DeviceSpec& spec) {
  serve::TrafficOptions topt;
  topt.requests = 60;
  topt.tenants = 2;
  topt.seed = 21;
  const auto traffic = serve::llm_traffic(topt);

  serve::ServerOptions opt = small_options(spec);
  opt.workers = 2;
  serve::Server server(opt);

  const serve::Metrics cold = server.run(traffic);
  EXPECT_EQ(cold.counters.hazard_diags, 0u);
  EXPECT_EQ(cold.counters.completed, cold.counters.accepted);
  EXPECT_GE(cold.cache_hit_rate, 0.9);  // a handful of buckets, many requests

  const serve::Metrics warm = server.run(traffic);
  EXPECT_EQ(warm.counters.hazard_diags, 0u);
  EXPECT_EQ(warm.counters.tune_evals, 0u);
  EXPECT_EQ(warm.cache_hit_rate, 1.0);
  EXPECT_GT(warm.qps, 0.0);
  EXPECT_GT(warm.p99_cycles, 0.0);
  EXPECT_GE(warm.p99_cycles, warm.p50_cycles);
}

TEST(ServeSmoke, Rtx2070SeededTraffic) { run_smoke(device::rtx2070()); }

TEST(ServeSmoke, T4SeededTraffic) { run_smoke(device::t4()); }

}  // namespace
}  // namespace tc
