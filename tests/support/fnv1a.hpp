// Shared FNV-1a 64 hashing over half-precision buffers, used by the
// regression pins in test_equivalence.cpp and the JIT engine-axis tests:
// a pinned hash recorded under one engine must reproduce bit-for-bit under
// every other engine, so all of them must hash the same way.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/half.hpp"
#include "common/matrix.hpp"

namespace tc::testsupport {

/// FNV-1a 64 over a half buffer's bytes (low byte of each element first).
inline std::uint64_t fnv1a_bits(const half* data, std::size_t count) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint16_t b = data[i].bits();
    for (const std::uint8_t byte : {static_cast<std::uint8_t>(b & 0xFF),
                                    static_cast<std::uint8_t>(b >> 8)}) {
      h = (h ^ byte) * 1099511628211ull;
    }
  }
  return h;
}

/// FNV-1a 64 over the output matrix bytes.
inline std::uint64_t fnv1a_bits(const HalfMatrix& m) {
  return fnv1a_bits(m.data(), m.size());
}

}  // namespace tc::testsupport
