// Scheduler-mode fuzz smoke (label: fuzz_smoke): a fixed-seed sweep of
// random virtual programs through generate -> schedule (both reorder modes)
// -> hazard scan -> functional-vs-timed differential run. Any failure means
// the scheduler under- or mis-synchronized a race-free program.
#include <gtest/gtest.h>

#include <string>

#include "sched/fuzz.hpp"

namespace tc::sched {
namespace {

TEST(SchedFuzzSmoke, FixedSeedSweepSchedulesCleanAndEquivalent) {
  SchedFuzzOptions opts;
  const auto rep = run_sched_fuzz(0x5eedULL, 250, opts);
  EXPECT_EQ(rep.programs, 250);
  EXPECT_EQ(rep.schedules, 500);
  std::string why;
  for (const auto& f : rep.failures) {
    why += "seed " + std::to_string(f.seed) + " [" + f.phase +
           (f.reordered ? ", reordered" : "") + "]: " + f.detail + "\n" +
           f.program + "\n";
    if (why.size() > 8000) break;  // keep the assertion message readable
  }
  EXPECT_TRUE(rep.ok()) << why;
}

}  // namespace
}  // namespace tc::sched
