// Instruction-scheduling behaviour at the SM level: the mechanisms behind
// the paper's Figs. 4/5 measured directly in cycles, plus negative tests
// proving that the hazard machinery actually bites.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/hgemm.hpp"
#include "core/kernel_gen.hpp"
#include "core/reference.hpp"
#include "driver/device.hpp"
#include "sass/builder.hpp"
#include "sim/probe.hpp"

namespace tc {
namespace {

/// Steady-state cycles for one CTA of `cfg` (timing only; MMA math skipped).
double steady_cycles(const core::HgemmConfig& cfg, int iters, double l2_hit = 0.5) {
  const GemmShape s{static_cast<std::size_t>(cfg.bm), static_cast<std::size_t>(cfg.bn),
                    static_cast<std::size_t>(cfg.bk) * static_cast<std::size_t>(iters)};
  const auto prog = core::hgemm_kernel(cfg, s);
  mem::GlobalMemory gmem;
  sim::Launch launch;
  launch.program = &prog;
  launch.params = {gmem.alloc(s.m * s.k * 2), gmem.alloc(s.n * s.k * 2),
                   gmem.alloc(s.m * s.n * 2)};
  sim::TimedConfig tc;
  tc.spec = device::rtx2070();
  tc.dram_bytes_per_cycle = tc.spec.dram_bytes_per_cycle_per_sm();
  tc.l2_bytes_per_cycle = tc.spec.l2_bytes_per_cycle_per_sm();
  tc.forced_l2_hit_rate = l2_hit;
  tc.skip_mma_math = true;
  sim::TimedSm sm(tc, gmem);
  const sim::CtaCoord cta{0, 0};
  return static_cast<double>(sm.run(launch, std::span(&cta, 1)).cycles);
}

double slope(const core::HgemmConfig& cfg) {
  return (steady_cycles(cfg, 14) - steady_cycles(cfg, 6)) / 8.0;
}

TEST(Scheduling, Sts5FasterThanSts2InCycles) {
  // Fig. 4's mechanism at SM level: interleave 2 bunches STS into the MIO
  // queue and stalls the issuing warps' HMMAs.
  auto sts5 = core::HgemmConfig::optimized();
  auto sts2 = core::HgemmConfig::optimized();
  sts2.sts_interleave = 2;
  EXPECT_LT(slope(sts5), slope(sts2));
}

TEST(Scheduling, WiderWarpTileBeatsNarrow) {
  // Section VI-A: (64x64) warp tiles need 1.5x the LDS traffic per HMMA.
  auto wide = core::HgemmConfig::optimized();  // 128x64
  auto narrow = core::HgemmConfig::optimized();
  narrow.wm = 64;
  narrow.wn = 64;  // 16 warps -> 512 threads; still valid
  EXPECT_LT(slope(wide), slope(narrow));
}

TEST(Scheduling, TensorUtilizationIsHigh) {
  // The optimized kernel should keep the tensor pipe > 85% busy in steady
  // state (ideal iteration = 4126 cycles per Table VI).
  const double per_iter = slope(core::HgemmConfig::optimized());
  EXPECT_LT(per_iter, 4126.0 / 0.85);
  EXPECT_GE(per_iter, 4126.0 * 0.99);
}

TEST(Scheduling, UnderStalledHmmaProducesStaleResult) {
  // Negative control for the whole hazard model: read D one cycle too early
  // and the value must be the poison, not the product.
  sass::KernelBuilder b("understalled");
  b.threads(32);
  b.mov_param(sass::Reg{10}, 0).stall(13);
  b.s2r(sass::Reg{11}, sass::SpecialReg::kLaneId).stall(13);
  b.shl(sass::Reg{12}, sass::Reg{11}, 2).stall(6);
  b.iadd3(sass::Reg{12}, sass::Reg{12}, sass::Reg{10}).stall(6);
  b.mov_imm(sass::Reg{2}, half2{half(1.0f), half(1.0f)}.pack()).stall(1);
  b.mov_imm(sass::Reg{3}, half2{half(1.0f), half(1.0f)}.pack()).stall(1);
  b.mov_imm(sass::Reg{6}, half2{half(1.0f), half(1.0f)}.pack()).stall(1);
  b.mov_imm(sass::Reg{8}, 0xDEADDEADu).stall(6);  // poison
  b.hmma_1688_f16(sass::Reg{8}, sass::Reg{2}, sass::Reg{6}, sass::RZ).stall(9);  // 1 short
  b.stg(sass::MemWidth::k32, sass::Reg{12}, sass::Reg{8}).stall(1);
  b.exit();
  const auto prog = b.finalize();

  driver::Device dev(device::rtx2070());
  auto out = dev.alloc<std::uint32_t>(32);
  sim::Launch launch;
  launch.program = &prog;
  launch.params = {out.addr};
  const sim::CtaCoord cta{0, 0};
  dev.run_timed(launch, std::span(&cta, 1), dev.timing_whole_device());
  std::vector<std::uint32_t> host(32);
  dev.download(std::span<std::uint32_t>(host), out);
  EXPECT_EQ(host[0], 0xDEADDEADu);  // stale poison: latency not covered

  // The same program runs correctly in the functional engine.
  dev.launch(launch);
  dev.download(std::span<std::uint32_t>(host), out);
  EXPECT_NE(host[0], 0xDEADDEADu);
}

TEST(Scheduling, MissingScoreboardWaitReadsStaleLoad) {
  sass::KernelBuilder b("nowait");
  b.threads(32);
  b.mov_param(sass::Reg{10}, 0).stall(1);
  b.mov_param(sass::Reg{11}, 1).stall(13);
  b.s2r(sass::Reg{12}, sass::SpecialReg::kLaneId).stall(13);
  b.shl(sass::Reg{13}, sass::Reg{12}, 2).stall(6);
  b.iadd3(sass::Reg{14}, sass::Reg{13}, sass::Reg{10}).stall(6);  // in + lane*4
  b.iadd3(sass::Reg{15}, sass::Reg{13}, sass::Reg{11}).stall(6);  // out + lane*4
  b.mov_imm(sass::Reg{4}, 0xCAFEBABEu).stall(6);
  b.ldg(sass::MemWidth::k32, sass::Reg{4}, sass::Reg{14}).write_bar(0).stall(2);
  b.stg(sass::MemWidth::k32, sass::Reg{15}, sass::Reg{4}).stall(1);  // no wait!
  b.nop().wait_on(0).stall(1);  // barrier consumed later (keeps lint clean)
  b.exit();
  const auto prog = b.finalize();

  driver::Device dev(device::rtx2070());
  auto in = dev.alloc<std::uint32_t>(32);
  auto out = dev.alloc<std::uint32_t>(32);
  std::vector<std::uint32_t> ones(32, 111u);
  dev.upload(in, std::span<const std::uint32_t>(ones));
  sim::Launch launch;
  launch.program = &prog;
  launch.params = {in.addr, out.addr};
  const sim::CtaCoord cta{0, 0};
  dev.run_timed(launch, std::span(&cta, 1), dev.timing_whole_device());
  std::vector<std::uint32_t> host(32);
  dev.download(std::span<std::uint32_t>(host), out);
  EXPECT_EQ(host[0], 0xCAFEBABEu);  // the load had not returned yet
}

/// Cycles to run `grid_ctas` CTAs through `resident` slots of one SM with
/// dynamic refill (the GigaThread path TimedDevice uses).
double refill_cycles(int grid_ctas, int resident) {
  const auto cfg = core::HgemmConfig::optimized();
  const GemmShape s{256ull * static_cast<std::size_t>(grid_ctas), 256, 64};
  const auto prog = core::hgemm_kernel(cfg, s);
  mem::GlobalMemory gmem;
  sim::Launch launch;
  launch.program = &prog;
  launch.grid_x = 1;
  launch.grid_y = static_cast<std::uint32_t>(grid_ctas);
  launch.params = {gmem.alloc(s.m * s.k * 2), gmem.alloc(s.n * s.k * 2),
                   gmem.alloc(s.m * s.n * 2)};
  sim::TimedConfig tc;
  tc.spec = device::rtx2070();
  tc.dram_bytes_per_cycle = tc.spec.dram_bytes_per_cycle_per_sm();
  tc.l2_bytes_per_cycle = tc.spec.l2_bytes_per_cycle_per_sm();
  tc.forced_l2_hit_rate = 0.5;
  tc.skip_mma_math = true;
  sim::TimedSm sm(tc, gmem);
  sim::GridCtaSource source(launch.grid_x, launch.grid_y);
  sm.begin(launch, source, resident);
  while (sm.step()) {
  }
  EXPECT_EQ(source.issued(), static_cast<std::uint64_t>(grid_ctas));
  return static_cast<double>(sm.finish().cycles);
}

TEST(Scheduling, UnevenTailWaveCostsAFullRound) {
  // 5 CTAs through 2 resident slots: the 5th CTA runs alone in round 3, but
  // still costs nearly the full round — the wave-quantization effect the
  // model's ceil() asserts, here emerging from dynamic refill on one SM.
  const double c4 = refill_cycles(4, 2);  // 2 even rounds
  const double c5 = refill_cycles(5, 2);  // tail round with 1 CTA
  const double c6 = refill_cycles(6, 2);  // 3 even rounds
  EXPECT_GT(c5, c4 * 1.2);
  EXPECT_LE(c5, c6 * 1.02);
}

TEST(Scheduling, RespawnProbeCapturesRetiringCtaCoords) {
  // Regression: respawn_slot used to relabel the slot with the incoming
  // CTA's coordinates before the divergence-probe capture, so a retiring
  // CTA's final registers were recorded under the wrong (x, y) — colliding
  // with the finish()-time capture of the CTA that ends up owning them.
  // A kernel that writes its own ctaid into registers makes any mis-keying
  // visible: every snapshot's R4/R5 must equal its recorded coordinates.
  sass::KernelBuilder b("ctaid_probe");
  b.threads(32);
  b.s2r(sass::Reg{4}, sass::SpecialReg::kCtaIdX).stall(13);
  b.s2r(sass::Reg{5}, sass::SpecialReg::kCtaIdY).stall(13);
  b.exit();
  const auto prog = b.finalize();

  mem::GlobalMemory gmem;
  sim::Launch launch;
  launch.program = &prog;
  launch.grid_x = 2;
  launch.grid_y = 2;

  sim::StateProbe probe;
  probe.set_num_regs(prog.num_regs);
  sim::TimedConfig tc;
  tc.spec = device::rtx2070();
  tc.probe = &probe;
  sim::TimedSm sm(tc, gmem);
  sim::GridCtaSource source(launch.grid_x, launch.grid_y);
  sm.begin(launch, source, 2);  // 4 CTAs through 2 slots -> 2 respawn captures
  while (sm.step()) {
  }
  sm.finish();

  const auto snaps = probe.sorted();
  ASSERT_EQ(snaps.size(), 4u);  // one per CTA, no coordinate collisions
  for (const auto& s : snaps) {
    ASSERT_GE(prog.num_regs, 6);
    for (std::size_t lane = 0; lane < 32; ++lane) {
      EXPECT_EQ(s.gprs[4 * 32 + lane], s.cta_x)
          << "CTA (" << s.cta_x << "," << s.cta_y << ") lane " << lane;
      EXPECT_EQ(s.gprs[5 * 32 + lane], s.cta_y)
          << "CTA (" << s.cta_x << "," << s.cta_y << ") lane " << lane;
    }
  }
}

TEST(Scheduling, GridCtaSourceDispensesInLaunchOrder) {
  sim::GridCtaSource src(3, 2);
  const std::pair<std::uint32_t, std::uint32_t> want[] = {{0, 0}, {1, 0}, {2, 0},
                                                          {0, 1}, {1, 1}, {2, 1}};
  for (const auto& [x, y] : want) {
    const auto c = src.next();
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->x, x);
    EXPECT_EQ(c->y, y);
  }
  EXPECT_FALSE(src.next().has_value());
  EXPECT_EQ(src.issued(), 6u);
}

TEST(Scheduling, CtaRefillMatchesFunctionalResult) {
  // Retirement + slot respawn must be functionally invisible: a 2x2 grid
  // pulled through 2 resident slots (so two CTAs run in respawned slots)
  // produces bit-identical C to the functional executor.
  const auto cfg = core::HgemmConfig::optimized();
  const GemmShape s{512, 512, 64};
  const auto prog = core::hgemm_kernel(cfg, s);
  Rng rng(7);
  HalfMatrix a(s.m, s.k), bt(s.n, s.k);
  a.randomize(rng, -0.5f, 0.5f);
  bt.randomize(rng, -0.5f, 0.5f);

  auto setup = [&](driver::Device& dev, sim::Launch& launch) {
    auto da = dev.alloc<half>(a.size());
    auto db = dev.alloc<half>(bt.size());
    auto dc = dev.alloc<half>(s.m * s.n);
    dev.upload(da, std::span<const half>(a.data(), a.size()));
    dev.upload(db, std::span<const half>(bt.data(), bt.size()));
    launch.program = &prog;
    launch.grid_x = 2;
    launch.grid_y = 2;
    launch.params = {da.addr, db.addr, dc.addr};
    return dc;
  };

  driver::Device fdev(device::rtx2070());
  sim::Launch flaunch;
  const auto fc = setup(fdev, flaunch);
  fdev.launch(flaunch);
  std::vector<half> fhost(s.m * s.n);
  fdev.download(std::span<half>(fhost), fc);

  driver::Device tdev(device::rtx2070());
  sim::Launch tlaunch;
  const auto tc_ptr = setup(tdev, tlaunch);
  sim::TimedConfig tc;
  tc.spec = tdev.spec();
  sim::TimedSm sm(tc, tdev.gmem());  // full math: results must be real
  sim::GridCtaSource source(2, 2);
  sm.begin(tlaunch, source, 2);
  while (sm.step()) {
  }
  sm.finish();
  std::vector<half> thost(s.m * s.n);
  tdev.download(std::span<half>(thost), tc_ptr);

  EXPECT_EQ(source.issued(), 4u);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < fhost.size(); ++i) {
    if (fhost[i].bits() != thost[i].bits()) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0u);
}

TEST(Scheduling, BarSyncSpansProcessingBlocks) {
  // 8 warps land on all 4 processing blocks (warp % 4). Each warp publishes
  // its id to shared memory, BAR.SYNCs, then reads its neighbour's slot —
  // correct results require the SM-wide barrier to gate warps in *different*
  // partitions, not just co-scheduled ones.
  sass::KernelBuilder b("xpartition_bar");
  b.threads(256);
  b.smem(32);
  b.s2r(sass::Reg{10}, sass::SpecialReg::kTidX).stall(13);
  b.shr(sass::Reg{11}, sass::Reg{10}, 5).stall(6);   // warp id
  b.shl(sass::Reg{12}, sass::Reg{11}, 2).stall(6);   // smem addr: warp*4
  b.sts(sass::MemWidth::k32, sass::Reg{12}, sass::Reg{11}).read_bar(0).stall(2);
  b.nop().wait_on(0).stall(1);
  b.bar_sync().stall(1);
  b.iadd_imm(sass::Reg{13}, sass::Reg{11}, 1).stall(6);
  b.land_imm(sass::Reg{13}, sass::Reg{13}, 7).stall(6);  // (warp+1) % 8
  b.shl(sass::Reg{14}, sass::Reg{13}, 2).stall(6);
  b.lds(sass::MemWidth::k32, sass::Reg{15}, sass::Reg{14}).write_bar(0).stall(2);
  b.mov_param(sass::Reg{16}, 0).stall(6);
  b.shl(sass::Reg{17}, sass::Reg{10}, 2).stall(6);
  b.iadd3(sass::Reg{18}, sass::Reg{17}, sass::Reg{16}).stall(6);
  b.nop().wait_on(0).stall(1);
  b.stg(sass::MemWidth::k32, sass::Reg{18}, sass::Reg{15}).stall(1);
  b.exit();
  const auto prog = b.finalize();

  driver::Device dev(device::rtx2070());
  auto out = dev.alloc<std::uint32_t>(256);
  sim::Launch launch;
  launch.program = &prog;
  launch.params = {out.addr};
  const sim::CtaCoord cta{0, 0};
  dev.run_timed(launch, std::span(&cta, 1), dev.timing_whole_device());
  std::vector<std::uint32_t> host(256);
  dev.download(std::span<std::uint32_t>(host), out);
  for (std::uint32_t tid = 0; tid < 256; ++tid) {
    EXPECT_EQ(host[tid], ((tid >> 5) + 1) & 7u) << "tid " << tid;
  }
}

TEST(Scheduling, ReuseFlagsHaveNoTimingEffect) {
  // Paper Section IV-C: "the register reuse flag has no impact".
  auto base = core::HgemmConfig::optimized();
  const GemmShape s{256, 256, 256};
  auto prog_plain = core::hgemm_kernel(base, s);
  auto prog_reuse = core::hgemm_kernel(base, s);
  for (auto& inst : prog_reuse.code) {
    if (sass::is_mma(inst.op)) inst.ctrl.reuse = 0xF;
  }

  auto run = [&](const sass::Program& prog) {
    mem::GlobalMemory gmem;
    sim::Launch launch;
    launch.program = &prog;
    launch.params = {gmem.alloc(s.m * s.k * 2), gmem.alloc(s.n * s.k * 2),
                     gmem.alloc(s.m * s.n * 2)};
    sim::TimedConfig tc;
    tc.spec = device::rtx2070();
    tc.skip_mma_math = true;
    sim::TimedSm sm(tc, gmem);
    const sim::CtaCoord cta{0, 0};
    return sm.run(launch, std::span(&cta, 1)).cycles;
  };
  EXPECT_EQ(run(prog_plain), run(prog_reuse));
}

}  // namespace
}  // namespace tc
