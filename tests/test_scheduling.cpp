// Instruction-scheduling behaviour at the SM level: the mechanisms behind
// the paper's Figs. 4/5 measured directly in cycles, plus negative tests
// proving that the hazard machinery actually bites.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/hgemm.hpp"
#include "core/kernel_gen.hpp"
#include "core/reference.hpp"
#include "driver/device.hpp"
#include "sass/builder.hpp"

namespace tc {
namespace {

/// Steady-state cycles for one CTA of `cfg` (timing only; MMA math skipped).
double steady_cycles(const core::HgemmConfig& cfg, int iters, double l2_hit = 0.5) {
  const GemmShape s{static_cast<std::size_t>(cfg.bm), static_cast<std::size_t>(cfg.bn),
                    static_cast<std::size_t>(cfg.bk) * static_cast<std::size_t>(iters)};
  const auto prog = core::hgemm_kernel(cfg, s);
  mem::GlobalMemory gmem;
  sim::Launch launch;
  launch.program = &prog;
  launch.params = {gmem.alloc(s.m * s.k * 2), gmem.alloc(s.n * s.k * 2),
                   gmem.alloc(s.m * s.n * 2)};
  sim::TimedConfig tc;
  tc.spec = device::rtx2070();
  tc.dram_bytes_per_cycle = tc.spec.dram_bytes_per_cycle_per_sm();
  tc.l2_bytes_per_cycle = tc.spec.l2_bytes_per_cycle_per_sm();
  tc.forced_l2_hit_rate = l2_hit;
  tc.skip_mma_math = true;
  sim::TimedSm sm(tc, gmem);
  const sim::CtaCoord cta{0, 0};
  return static_cast<double>(sm.run(launch, std::span(&cta, 1)).cycles);
}

double slope(const core::HgemmConfig& cfg) {
  return (steady_cycles(cfg, 14) - steady_cycles(cfg, 6)) / 8.0;
}

TEST(Scheduling, Sts5FasterThanSts2InCycles) {
  // Fig. 4's mechanism at SM level: interleave 2 bunches STS into the MIO
  // queue and stalls the issuing warps' HMMAs.
  auto sts5 = core::HgemmConfig::optimized();
  auto sts2 = core::HgemmConfig::optimized();
  sts2.sts_interleave = 2;
  EXPECT_LT(slope(sts5), slope(sts2));
}

TEST(Scheduling, WiderWarpTileBeatsNarrow) {
  // Section VI-A: (64x64) warp tiles need 1.5x the LDS traffic per HMMA.
  auto wide = core::HgemmConfig::optimized();  // 128x64
  auto narrow = core::HgemmConfig::optimized();
  narrow.wm = 64;
  narrow.wn = 64;  // 16 warps -> 512 threads; still valid
  EXPECT_LT(slope(wide), slope(narrow));
}

TEST(Scheduling, TensorUtilizationIsHigh) {
  // The optimized kernel should keep the tensor pipe > 85% busy in steady
  // state (ideal iteration = 4126 cycles per Table VI).
  const double per_iter = slope(core::HgemmConfig::optimized());
  EXPECT_LT(per_iter, 4126.0 / 0.85);
  EXPECT_GE(per_iter, 4126.0 * 0.99);
}

TEST(Scheduling, UnderStalledHmmaProducesStaleResult) {
  // Negative control for the whole hazard model: read D one cycle too early
  // and the value must be the poison, not the product.
  sass::KernelBuilder b("understalled");
  b.threads(32);
  b.mov_param(sass::Reg{10}, 0).stall(13);
  b.s2r(sass::Reg{11}, sass::SpecialReg::kLaneId).stall(13);
  b.shl(sass::Reg{12}, sass::Reg{11}, 2).stall(6);
  b.iadd3(sass::Reg{12}, sass::Reg{12}, sass::Reg{10}).stall(6);
  b.mov_imm(sass::Reg{2}, half2{half(1.0f), half(1.0f)}.pack()).stall(1);
  b.mov_imm(sass::Reg{3}, half2{half(1.0f), half(1.0f)}.pack()).stall(1);
  b.mov_imm(sass::Reg{6}, half2{half(1.0f), half(1.0f)}.pack()).stall(1);
  b.mov_imm(sass::Reg{8}, 0xDEADDEADu).stall(6);  // poison
  b.hmma_1688_f16(sass::Reg{8}, sass::Reg{2}, sass::Reg{6}, sass::RZ).stall(9);  // 1 short
  b.stg(sass::MemWidth::k32, sass::Reg{12}, sass::Reg{8}).stall(1);
  b.exit();
  const auto prog = b.finalize();

  driver::Device dev(device::rtx2070());
  auto out = dev.alloc<std::uint32_t>(32);
  sim::Launch launch;
  launch.program = &prog;
  launch.params = {out.addr};
  const sim::CtaCoord cta{0, 0};
  dev.run_timed(launch, std::span(&cta, 1), dev.timing_whole_device());
  std::vector<std::uint32_t> host(32);
  dev.download(std::span<std::uint32_t>(host), out);
  EXPECT_EQ(host[0], 0xDEADDEADu);  // stale poison: latency not covered

  // The same program runs correctly in the functional engine.
  dev.launch(launch);
  dev.download(std::span<std::uint32_t>(host), out);
  EXPECT_NE(host[0], 0xDEADDEADu);
}

TEST(Scheduling, MissingScoreboardWaitReadsStaleLoad) {
  sass::KernelBuilder b("nowait");
  b.threads(32);
  b.mov_param(sass::Reg{10}, 0).stall(1);
  b.mov_param(sass::Reg{11}, 1).stall(13);
  b.s2r(sass::Reg{12}, sass::SpecialReg::kLaneId).stall(13);
  b.shl(sass::Reg{13}, sass::Reg{12}, 2).stall(6);
  b.iadd3(sass::Reg{14}, sass::Reg{13}, sass::Reg{10}).stall(6);  // in + lane*4
  b.iadd3(sass::Reg{15}, sass::Reg{13}, sass::Reg{11}).stall(6);  // out + lane*4
  b.mov_imm(sass::Reg{4}, 0xCAFEBABEu).stall(6);
  b.ldg(sass::MemWidth::k32, sass::Reg{4}, sass::Reg{14}).write_bar(0).stall(2);
  b.stg(sass::MemWidth::k32, sass::Reg{15}, sass::Reg{4}).stall(1);  // no wait!
  b.nop().wait_on(0).stall(1);  // barrier consumed later (keeps lint clean)
  b.exit();
  const auto prog = b.finalize();

  driver::Device dev(device::rtx2070());
  auto in = dev.alloc<std::uint32_t>(32);
  auto out = dev.alloc<std::uint32_t>(32);
  std::vector<std::uint32_t> ones(32, 111u);
  dev.upload(in, std::span<const std::uint32_t>(ones));
  sim::Launch launch;
  launch.program = &prog;
  launch.params = {in.addr, out.addr};
  const sim::CtaCoord cta{0, 0};
  dev.run_timed(launch, std::span(&cta, 1), dev.timing_whole_device());
  std::vector<std::uint32_t> host(32);
  dev.download(std::span<std::uint32_t>(host), out);
  EXPECT_EQ(host[0], 0xCAFEBABEu);  // the load had not returned yet
}

TEST(Scheduling, ReuseFlagsHaveNoTimingEffect) {
  // Paper Section IV-C: "the register reuse flag has no impact".
  auto base = core::HgemmConfig::optimized();
  const GemmShape s{256, 256, 256};
  auto prog_plain = core::hgemm_kernel(base, s);
  auto prog_reuse = core::hgemm_kernel(base, s);
  for (auto& inst : prog_reuse.code) {
    if (sass::is_mma(inst.op)) inst.ctrl.reuse = 0xF;
  }

  auto run = [&](const sass::Program& prog) {
    mem::GlobalMemory gmem;
    sim::Launch launch;
    launch.program = &prog;
    launch.params = {gmem.alloc(s.m * s.k * 2), gmem.alloc(s.n * s.k * 2),
                     gmem.alloc(s.m * s.n * 2)};
    sim::TimedConfig tc;
    tc.spec = device::rtx2070();
    tc.skip_mma_math = true;
    sim::TimedSm sm(tc, gmem);
    const sim::CtaCoord cta{0, 0};
    return sm.run(launch, std::span(&cta, 1)).cycles;
  };
  EXPECT_EQ(run(prog_plain), run(prog_reuse));
}

}  // namespace
}  // namespace tc
