// Differential-fuzzer tests (src/check/fuzz.*): the generator must produce
// valid hazard-free programs, the runner must detect seeded executor-visible
// races, the shrinker must preserve divergence, and the fixed-seed smoke run
// (labelled fuzz_smoke in CTest) must show zero divergence between the
// functional and timed executors.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "check/fuzz.hpp"
#include "check/hazard.hpp"
#include "sass/builder.hpp"
#include "sass/validator.hpp"

namespace tc::check {
namespace {

using sass::KernelBuilder;
using sass::MemWidth;
using sass::Reg;

TEST(Fuzz, GenerationIsDeterministic) {
  const FuzzOptions opts;
  const FuzzCase a = generate_case(42, opts);
  const FuzzCase b = generate_case(42, opts);
  ASSERT_EQ(a.prog.code.size(), b.prog.code.size());
  EXPECT_EQ(a.prog.disassemble(), b.prog.disassemble());
  EXPECT_EQ(a.in_data, b.in_data);
  const FuzzCase c = generate_case(43, opts);
  EXPECT_NE(a.prog.disassemble(), c.prog.disassemble());
}

TEST(Fuzz, GeneratedProgramsAreHazardFree) {
  const FuzzOptions opts;
  for (std::uint64_t seed = 100; seed < 140; ++seed) {
    const FuzzCase c = generate_case(seed, opts);
    const auto diags = find_hazards(c.prog);
    EXPECT_EQ(sass::count_errors(diags), 0)
        << "seed " << seed << ":\n" << c.prog.disassemble();
  }
}

/// A hand-seeded race: the consumer never waits on the load's write barrier,
/// so the timed engine reads the stale (zero) register while the functional
/// engine sees the loaded bytes. This proves the probe/diff plumbing detects
/// real divergence end to end.
FuzzCase seeded_race_case() {
  KernelBuilder b("seeded_race");
  b.mov_param(Reg{2}, 0).stall(12);
  b.ldg(MemWidth::k32, Reg{8}, Reg{2}).write_bar(0).stall(1);
  b.iadd3(Reg{9}, Reg{8}, Reg{8}).stall(6);  // no wait: races on silicon too
  b.exit().stall(1);
  FuzzCase c;
  c.seed = 0;
  c.prog = b.finalize();
  c.in_bytes = 32;
  c.out_bytes = 32;
  c.in_data.assign(32, 0xAB);
  return c;
}

TEST(Fuzz, RunCaseDetectsSeededDivergence) {
  const FuzzOptions opts;
  const FuzzCase racy = seeded_race_case();
  // The static detector flags it...
  EXPECT_GE(sass::count_errors(find_hazards(racy.prog)), 1);
  // ...and the differential run observes it: R9 is 2x the loaded word in the
  // functional engine but 0 in the timed engine.
  const auto div = run_case(racy, opts);
  ASSERT_TRUE(div.has_value());
  EXPECT_NE(div->find("R9"), std::string::npos) << *div;
}

TEST(Fuzz, RunCaseAcceptsTheProtectedVariant) {
  KernelBuilder b("seeded_race_fixed");
  b.mov_param(Reg{2}, 0).stall(12);
  b.ldg(MemWidth::k32, Reg{8}, Reg{2}).write_bar(0).stall(1);
  b.iadd3(Reg{9}, Reg{8}, Reg{8}).wait_on(0).stall(6);
  b.exit().stall(1);
  FuzzCase c;
  c.prog = b.finalize();
  c.in_bytes = 32;
  c.out_bytes = 32;
  c.in_data.assign(32, 0xAB);
  EXPECT_FALSE(run_case(c, FuzzOptions{}).has_value());
}

TEST(Fuzz, ShrinkPreservesDivergence) {
  const FuzzOptions opts;
  const FuzzCase racy = seeded_race_case();
  const FuzzCase small = shrink_case(racy, opts);
  EXPECT_LE(small.prog.code.size(), racy.prog.code.size());
  EXPECT_TRUE(run_case(small, opts).has_value());
  // EXIT must survive shrinking.
  EXPECT_EQ(small.prog.code.back().op, sass::Opcode::kExit);
}

TEST(FuzzSmoke, FixedSeedProgramsNoDivergence) {
  // The acceptance run: 1500 deterministic programs through both executors.
  // Any failure prints the shrunken repro.
  const FuzzReport rep = run_fuzz(/*base_seed=*/1, /*count=*/1500);
  EXPECT_EQ(rep.programs, 1500);
  EXPECT_EQ(rep.divergences, 0);
  for (const auto& f : rep.failures) {
    ADD_FAILURE() << "seed " << f.seed << " [" << f.phase << "] (shrunk "
                  << f.original_size << " -> " << f.shrunk_size << "):\n"
                  << f.detail << "\n" << f.program;
  }
}

TEST(Fuzz, NumericOperandsChangeInputsDeterministically) {
  // The numerics operand class must actually replace the uniform input
  // bytes, and must stay reproducible seed-for-seed.
  FuzzOptions numeric;
  numeric.numeric_operands = true;
  const FuzzCase plain = generate_case(7, FuzzOptions{});
  const FuzzCase special = generate_case(7, numeric);
  const FuzzCase special2 = generate_case(7, numeric);
  EXPECT_EQ(special.in_data, special2.in_data);
  EXPECT_EQ(special.prog.disassemble(), special2.prog.disassemble());
  EXPECT_NE(plain.in_data, special.in_data);
}

TEST(Fuzz, NumericOperandsHitTheEdgeCaseClasses) {
  // Across a handful of seeds the operand class must produce halves from
  // each headline bucket: subnormals, NaNs, infinities, and signed zeros.
  FuzzOptions numeric;
  numeric.numeric_operands = true;
  int subnormal = 0, nan = 0, inf = 0, neg_zero = 0;
  for (std::uint64_t seed = 500; seed < 520; ++seed) {
    const FuzzCase c = generate_case(seed, numeric);
    for (std::size_t i = 0; i + 1 < c.in_data.size(); i += 2) {
      const auto bits = static_cast<std::uint16_t>(c.in_data[i] |
                                                   (c.in_data[i + 1] << 8));
      const std::uint16_t mag = bits & 0x7FFF;
      if (mag != 0 && mag < 0x0400) ++subnormal;
      if (mag > 0x7C00) ++nan;
      if (mag == 0x7C00) ++inf;
      if (bits == 0x8000) ++neg_zero;
    }
  }
  EXPECT_GT(subnormal, 0);
  EXPECT_GT(nan, 0);
  EXPECT_GT(inf, 0);
  EXPECT_GT(neg_zero, 0);
}

/// Functional-vs-timed differential sweep with numerics operands in the
/// given HMMA mode; both executors run the same mode, so any divergence is
/// an executor inconsistency in that mode's math path.
void run_numeric_mode_sweep(numerics::NumericsMode mode, std::uint64_t base_seed) {
  FuzzOptions opts;
  opts.numeric_operands = true;
  opts.numerics = mode;
  const FuzzReport rep = run_fuzz(base_seed, /*count=*/1500, opts);
  EXPECT_EQ(rep.programs, 1500);
  EXPECT_EQ(rep.divergences, 0);
  for (const auto& f : rep.failures) {
    ADD_FAILURE() << "seed " << f.seed << " [" << f.phase << "] (shrunk "
                  << f.original_size << " -> " << f.shrunk_size << "):\n"
                  << f.detail << "\n" << f.program;
  }
}

TEST(FuzzSmoke, NumericOperandsIdealizedSweep) {
  run_numeric_mode_sweep(numerics::NumericsMode::kIdealized, /*base_seed=*/20001);
}

TEST(FuzzSmoke, NumericOperandsBitAccurateSweep) {
  run_numeric_mode_sweep(numerics::NumericsMode::kBitAccurate, /*base_seed=*/30001);
}

}  // namespace
}  // namespace tc::check
