// Tests for the remaining common utilities and the HgemmConfig contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/json_parse.hpp"
#include "common/matrix.hpp"
#include "common/table.hpp"
#include "core/config.hpp"

namespace tc {
namespace {

TEST(Matrix, RowAndColMajorIndexing) {
  HostMatrix<int> rm(3, 4, Layout::kRowMajor);
  HostMatrix<int> cm(3, 4, Layout::kColMajor);
  EXPECT_EQ(rm.index(1, 2), 6u);
  EXPECT_EQ(cm.index(1, 2), 7u);
  rm.at(2, 3) = 42;
  EXPECT_EQ(rm.data()[11], 42);
  cm.at(2, 3) = 42;
  EXPECT_EQ(cm.data()[11], 42);
  EXPECT_THROW(rm.at(3, 0), Error);
  EXPECT_THROW(rm.at(0, 4), Error);
}

TEST(Matrix, SizeBytes) {
  HalfMatrix m(10, 20);
  EXPECT_EQ(m.size(), 200u);
  EXPECT_EQ(m.size_bytes(), 400u);
}

TEST(GemmShape, Flops) {
  const GemmShape s{100, 200, 300};
  EXPECT_DOUBLE_EQ(s.flops(), 2.0 * 100 * 200 * 300);
  EXPECT_EQ(s, (GemmShape{100, 200, 300}));
  EXPECT_NE(s, (GemmShape{100, 200, 301}));
}

TEST(TablePrinter, AlignsAndRendersCsv) {
  TablePrinter t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream text;
  t.print(text);
  EXPECT_NE(text.str().find("name    value"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "name,value\nx,1\nlonger,22\n");
}

TEST(TablePrinter, RejectsWrongArity) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
}

TEST(FmtFixed, Rounds) {
  EXPECT_EQ(fmt_fixed(8.057, 2), "8.06");
  EXPECT_EQ(fmt_fixed(59.7, 1), "59.7");
  EXPECT_EQ(fmt_fixed(-1.005, 1), "-1.0");
}

TEST(HgemmConfig, PresetsAreValid) {
  EXPECT_NO_THROW(core::HgemmConfig::optimized().check());
  EXPECT_NO_THROW(core::HgemmConfig::cublas_like().check());
  EXPECT_EQ(core::HgemmConfig::optimized().warps(), 8);
  EXPECT_EQ(core::HgemmConfig::optimized().threads(), 256);
  EXPECT_EQ(core::HgemmConfig::cublas_like().warps(), 4);
}

TEST(HgemmConfig, RejectsBadShapes) {
  auto c = core::HgemmConfig::optimized();
  c.wk = 16;  // HMMA.1688 depth is 8
  EXPECT_THROW(c.check(), Error);

  c = core::HgemmConfig::optimized();
  c.wm = 100;  // not HMMA-shaped
  EXPECT_THROW(c.check(), Error);

  c = core::HgemmConfig::optimized();
  c.bm = 192;  // 24 row groups don't divide among 8 warps... (192/128 not integral)
  EXPECT_THROW(c.check(), Error);

  c = core::HgemmConfig::optimized();
  c.sts_interleave = 0;
  EXPECT_THROW(c.check(), Error);
}

TEST(HgemmConfig, SmemFootprints) {
  // Table VII: 36 KB padded, 32 KB tile-major for 256x256x32; 32 KB for the
  // cuBLAS config.
  auto opt = core::HgemmConfig::optimized();
  EXPECT_EQ(opt.smem_bytes(), 36u * 1024);
  opt.layout = core::SmemLayout::kTileMajor;
  EXPECT_EQ(opt.smem_bytes(), 32u * 1024);
  opt.layout = core::SmemLayout::kNaiveRowMajor;
  EXPECT_EQ(opt.smem_bytes(), 32u * 1024);
  EXPECT_EQ(core::HgemmConfig::cublas_like().smem_bytes(), 32u * 1024);
}

TEST(HgemmConfig, NamesEncodeTheConfig) {
  EXPECT_EQ(core::HgemmConfig::optimized().name(), "hgemm_256x256x32_w128x64_i5_pad");
  EXPECT_EQ(core::HgemmConfig::cublas_like().name(), "hgemm_128x128x64_w64x64_i2_tile");
}

TEST(JsonWriter, NestedObjectsAndArrays) {
  std::ostringstream os;
  JsonWriter j(os);
  j.begin_object();
  j.field("tool", "tc");
  j.field("n", 3);
  j.field("ok", true);
  j.key("rows");
  j.begin_array();
  j.value(1.5);
  j.null();
  j.begin_object();
  j.field("u", std::uint64_t{18446744073709551615ull});
  j.end_object();
  j.end_array();
  j.end_object();
  EXPECT_TRUE(j.complete());
  EXPECT_EQ(os.str(),
            R"({"tool":"tc","n":3,"ok":true,"rows":[1.5,null,{"u":18446744073709551615}]})");
}

TEST(JsonWriter, EscapesStringsAndRejectsNonFinite) {
  std::ostringstream os;
  JsonWriter j(os);
  j.begin_array();
  j.value("a\"b\\c\nd\x01");
  j.value(std::numeric_limits<double>::infinity());
  j.value(std::numeric_limits<double>::quiet_NaN());
  j.end_array();
  EXPECT_EQ(os.str(), "[\"a\\\"b\\\\c\\nd\\u0001\",null,null]");
}

// json_dump(json_parse(x)) is the canonical form the persistent tuning
// cache relies on: stable under repeated round-trips, every value kind and
// escape the repo's writers emit survives intact.
TEST(JsonRoundTrip, DumpParseIsIdentityOnCanonicalForm) {
  const char* docs[] = {
      "null",
      "true",
      "[false,0,-1.5,\"\",[],{}]",
      "{\"a\":1,\"b\":[1,2,3],\"c\":{\"d\":\"e\"}}",
      "{\"schema\":\"tc-tune-cache-v1\",\"entries\":[{\"device\":\"RTX2070\",\"m\":256,"
      "\"config\":{\"prefetch\":true,\"sts_interleave\":5},\"sim_cycles\":16090}]}",
  };
  for (const char* doc : docs) {
    const std::string canonical = json_dump(json_parse(doc));
    EXPECT_EQ(json_dump(json_parse(canonical)), canonical) << doc;
  }
}

TEST(JsonRoundTrip, PreservesValueKindsAndEscapes) {
  const std::string src =
      "{\"s\":\"a\\\"b\\\\c\\nd\\t\",\"n\":-2.75,\"big\":123456789,\"t\":true,"
      "\"f\":false,\"z\":null,\"arr\":[1,\"two\",null]}";
  const JsonValue v = json_parse(json_dump(json_parse(src)));
  EXPECT_EQ(v.at("s").as_string(), "a\"b\\c\nd\t");
  EXPECT_EQ(v.at("n").as_number(), -2.75);
  EXPECT_EQ(v.at("big").as_number(), 123456789.0);
  EXPECT_TRUE(v.at("t").as_bool());
  EXPECT_FALSE(v.at("f").as_bool());
  EXPECT_TRUE(v.at("t").is_bool());
  EXPECT_FALSE(v.at("n").is_bool());
  EXPECT_TRUE(v.at("z").is_null());
  ASSERT_TRUE(v.at("arr").is_array());
  EXPECT_EQ(v.at("arr").as_array().size(), 3u);
}

TEST(JsonRoundTrip, CanonicalFormSortsObjectKeys) {
  // JsonObject is an ordered map, so dump() emits keys sorted — two
  // documents with the same content in different key order canonicalize to
  // the same bytes (what makes cache files diff-able).
  EXPECT_EQ(json_dump(json_parse("{\"b\":1,\"a\":2}")),
            json_dump(json_parse("{\"a\":2,\"b\":1}")));
  EXPECT_EQ(json_dump(json_parse("{\"b\":1,\"a\":2}")), "{\"a\":2,\"b\":1}");
}

TEST(JsonWriter, MisuseTripsCheck) {
  std::ostringstream os;
  JsonWriter j(os);
  j.begin_object();
  EXPECT_THROW(j.value(1), Error);       // value without key inside object
  EXPECT_THROW(j.end_array(), Error);    // mismatched closer
  j.key("k");
  EXPECT_THROW(j.key("k2"), Error);      // key after key
  EXPECT_THROW(j.end_object(), Error);   // dangling key
  EXPECT_FALSE(j.complete());
}

}  // namespace
}  // namespace tc
