// Engine-equivalence tests on every built-in kernel_gen kernel, at three
// problem sizes each: the final register file, predicate file and C matrix
// must agree BITWISE between the executors under test. Two axes are covered:
//
//   functional vs timed       — the strongest whole-kernel schedule test in
//                               the suite; a single missing stall cycle or
//                               scoreboard wait shows up as a register diff
//                               here before it ever corrupts C.
//   JIT vs interpreter        — the compiled functional engine against its
//                               interpreter oracle; a frontend, pass, or
//                               backend bug shows up the same way.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/config.hpp"
#include "core/hgemm.hpp"
#include "core/kernel_gen.hpp"
#include "numerics/numerics.hpp"
#include "device/spec.hpp"
#include "driver/device.hpp"
#include "op/op.hpp"
#include "sim/engine.hpp"
#include "sim/functional.hpp"
#include "sim/probe.hpp"
#include "support/fnv1a.hpp"

namespace tc {
namespace {

/// Runs `prog` on the full grid through both engines (identical allocation
/// order, separate memories) and compares probes and the C buffer bitwise.
void expect_equivalent(const sass::Program& prog, const GemmShape& shape,
                       std::uint32_t grid_x, std::uint32_t grid_y, Rng& rng,
                       numerics::NumericsMode mode = numerics::NumericsMode::kIdealized) {
  HalfMatrix a(shape.m, shape.k), bt(shape.n, shape.k);
  a.randomize(rng, -0.5f, 0.5f);
  bt.randomize(rng, -0.5f, 0.5f);

  driver::Device dev_f(device::rtx2070());
  driver::Device dev_t(device::rtx2070());

  const auto setup = [&](driver::Device& dev, sim::Launch& launch) {
    auto da = dev.alloc<half>(a.size());
    auto db = dev.alloc<half>(bt.size());
    auto dc = dev.alloc<half>(shape.m * shape.n);
    dev.upload(da, std::span<const half>(a.data(), a.size()));
    dev.upload(db, std::span<const half>(bt.data(), bt.size()));
    launch.program = &prog;
    launch.grid_x = grid_x;
    launch.grid_y = grid_y;
    launch.params = {da.addr, db.addr, dc.addr};
    launch.numerics = mode;
    return dc;
  };

  sim::Launch launch_f, launch_t;
  const auto dc_f = setup(dev_f, launch_f);
  const auto dc_t = setup(dev_t, launch_t);

  sim::StateProbe probe_f, probe_t;
  probe_f.set_num_regs(prog.num_regs);
  probe_t.set_num_regs(prog.num_regs);

  sim::FunctionalExecutor fx(dev_f.gmem());
  fx.set_probe(&probe_f);
  fx.run(launch_f);

  sim::TimedConfig cfg = dev_t.timing_whole_device();
  cfg.probe = &probe_t;
  std::vector<sim::CtaCoord> ctas;
  for (std::uint32_t y = 0; y < grid_y; ++y) {
    for (std::uint32_t x = 0; x < grid_x; ++x) ctas.push_back({x, y});
  }
  dev_t.run_timed(launch_t, ctas, cfg);

  const std::string diff = sim::StateProbe::diff(probe_f, probe_t);
  EXPECT_TRUE(diff.empty()) << prog.name << " " << shape.m << "x" << shape.n
                            << "x" << shape.k << ":\n" << diff;

  std::vector<half> c_f(shape.m * shape.n), c_t(shape.m * shape.n);
  dev_f.download(std::span(c_f.data(), c_f.size()), dc_f);
  dev_t.download(std::span(c_t.data(), c_t.size()), dc_t);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < c_f.size(); ++i) {
    mismatches += c_f[i].bits() != c_t[i].bits() ? 1 : 0;
  }
  EXPECT_EQ(mismatches, 0u) << prog.name << ": C buffers differ bitwise";
}

void run_hgemm_shape(const core::HgemmConfig& cfg, std::size_t k, Rng& rng) {
  const GemmShape shape{static_cast<std::size_t>(cfg.bm),
                        static_cast<std::size_t>(cfg.bn), k};
  expect_equivalent(core::hgemm_kernel(cfg, shape), shape, 1, 1, rng);
}

TEST(Equivalence, HgemmOptimizedThreeSizes) {
  Rng rng(101);
  for (const std::size_t k : {64u, 96u, 128u}) {
    run_hgemm_shape(core::HgemmConfig::optimized(), k, rng);
  }
}

TEST(Equivalence, HgemmCublasLikeThreeSizes) {
  Rng rng(102);
  for (const std::size_t k : {128u, 192u, 256u}) {
    run_hgemm_shape(core::HgemmConfig::cublas_like(), k, rng);
  }
}

TEST(Equivalence, WmmaNaiveThreeSizes) {
  Rng rng(103);
  const GemmShape shapes[] = {{16, 128, 16}, {32, 128, 32}, {16, 256, 48}};
  for (const GemmShape& s : shapes) {
    expect_equivalent(core::wmma_naive_kernel(s), s,
                      static_cast<std::uint32_t>(s.n / 128),
                      static_cast<std::uint32_t>(s.m / 16), rng);
  }
}

TEST(Equivalence, AllKernelsBitAccurateMode) {
  // The numerics-mode axis: every kernel_gen kernel must stay bitwise
  // self-consistent between the functional and timed executors when both
  // run the bit-accurate HMMA semantics. (The kIdealized axis is the three
  // tests above; one size per kernel keeps the added runtime bounded.)
  Rng rng(104);
  const auto mode = numerics::NumericsMode::kBitAccurate;
  {
    const core::HgemmConfig cfg = core::HgemmConfig::optimized();
    const GemmShape shape{static_cast<std::size_t>(cfg.bm),
                          static_cast<std::size_t>(cfg.bn), 64};
    expect_equivalent(core::hgemm_kernel(cfg, shape), shape, 1, 1, rng, mode);
  }
  {
    const core::HgemmConfig cfg = core::HgemmConfig::cublas_like();
    const GemmShape shape{static_cast<std::size_t>(cfg.bm),
                          static_cast<std::size_t>(cfg.bn), 128};
    expect_equivalent(core::hgemm_kernel(cfg, shape), shape, 1, 1, rng, mode);
  }
  {
    const GemmShape s{32, 128, 32};
    expect_equivalent(core::wmma_naive_kernel(s), s, 1, 2, rng, mode);
  }
}

void fill_random(std::vector<half>& v, Rng& rng, float lo = -0.5f, float hi = 0.5f) {
  for (auto& x : v) x = half(rng.next_float(lo, hi));
}

/// Runs one GemmOp through the functional engine and the cycle-level
/// TimedDevice (multi-launch plans run every kernel on both), and demands
/// the host reference, the functional output and the timed output agree
/// BITWISE. This is the op-level analogue of expect_equivalent: a split-K
/// workspace mistake, a z-offset slip or a reduction-order difference all
/// show up as a bit diff here.
void expect_op_equivalent(const device::DeviceSpec& spec, const tc::op::GemmOp& gemm,
                          core::HgemmConfig cfg, Rng& rng,
                          numerics::NumericsMode mode = numerics::NumericsMode::kIdealized) {
  cfg.numerics = mode;
  const auto batch = static_cast<std::size_t>(gemm.batch.count);
  const GemmShape& s = gemm.shape;
  std::vector<half> a((batch - 1) * gemm.batch.a_stride(s) + s.m * s.k);
  std::vector<half> bt((batch - 1) * gemm.batch.b_stride(s) + s.n * s.k);
  std::vector<half> c_in((batch - 1) * gemm.batch.c_stride(s) + s.m * s.n);
  std::vector<half> bias(s.n);
  fill_random(a, rng);
  fill_random(bt, rng);
  fill_random(c_in, rng, -1.0f, 1.0f);
  fill_random(bias, rng, -1.0f, 1.0f);
  tc::op::OpInputs in;
  in.a = std::span<const half>(a);
  in.bt = std::span<const half>(bt);
  in.c_in = std::span<const half>(c_in);
  in.bias = std::span<const half>(bias);

  const std::vector<half> ref = tc::op::gemm_op_ref(gemm, in, cfg, mode);

  driver::Device dev_f(spec);
  const std::vector<half> out_f = tc::op::run_gemm_op(dev_f, gemm, in, cfg);

  driver::Device dev_t(spec);
  std::vector<half> out_t(out_f.size());
  tc::op::OpExec exec;
  exec.timed = true;
  tc::op::run_gemm_op(dev_t, gemm, in, std::span<half>(out_t), cfg, exec);

  ASSERT_EQ(out_f.size(), ref.size());
  std::size_t vs_ref = 0;
  std::size_t vs_timed = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    vs_ref += out_f[i].bits() != ref[i].bits() ? 1 : 0;
    vs_timed += out_f[i].bits() != out_t[i].bits() ? 1 : 0;
  }
  const std::string what = spec.name + " b" + std::to_string(gemm.batch.count) + " sk" +
                           std::to_string(gemm.split_k);
  EXPECT_EQ(vs_ref, 0u) << what << ": functional output differs bitwise from gemm_op_ref";
  EXPECT_EQ(vs_timed, 0u) << what << ": timed output differs bitwise from functional";
}

tc::op::GemmOp op_variant(const char* kind, const core::HgemmConfig& cfg) {
  tc::op::GemmOp g;
  g.shape = {static_cast<std::size_t>(cfg.bm), static_cast<std::size_t>(cfg.bn), 128};
  const std::string k = kind;
  if (k == "batched") {
    g.batch.count = 2;
  } else if (k == "strided") {
    g.batch.count = 2;
    g.batch.stride_a = g.shape.m * g.shape.k + 64;
    g.batch.stride_b = g.shape.n * g.shape.k + 32;
    g.batch.stride_c = g.shape.m * g.shape.n + 96;
  } else if (k == "split_k") {
    g.split_k = 2;
  } else if (k == "fused_axpby_relu") {
    g.epilogue = {1.25f, -0.5f, false, core::Activation::kRelu};
  } else if (k == "bias_gelu") {
    g.epilogue = {1.0f, 0.0f, true, core::Activation::kGelu};
  } else if (k == "batched_split_scaled") {
    g.batch.count = 2;
    g.split_k = 2;
    g.epilogue = {0.75f, 0.25f, false, core::Activation::kNone};
  }
  return g;
}

TEST(Equivalence, GemmOpVariantsBothSpecs) {
  // Every GemmOp lowering variant — batched, strided-batched, split-K,
  // fused scaling+activation, unfused bias epilogue, and the combined
  // batched+split-K+scaling plan — functional vs timed vs host reference,
  // bitwise, on both evaluated devices.
  const char* kinds[] = {"batched",    "strided",   "split_k",
                         "fused_axpby_relu", "bias_gelu", "batched_split_scaled"};
  int seed = 900;
  for (const device::DeviceSpec& spec : {device::rtx2070(), device::t4()}) {
    for (const char* kind : kinds) {
      SCOPED_TRACE(spec.name + " " + kind);
      Rng rng(static_cast<std::uint64_t>(seed++));
      expect_op_equivalent(spec, op_variant(kind, core::HgemmConfig::cublas_like()),
                           core::HgemmConfig::cublas_like(), rng);
    }
  }
}

TEST(Equivalence, GemmOpVariantsBitAccurateMode) {
  // The numerics-mode axis over the op layer: one batched+split-K+epilogue
  // plan per spec under the bit-accurate HMMA model.
  int seed = 950;
  for (const device::DeviceSpec& spec : {device::rtx2070(), device::t4()}) {
    SCOPED_TRACE(spec.name);
    Rng rng(static_cast<std::uint64_t>(seed++));
    expect_op_equivalent(spec, op_variant("batched_split_scaled", core::HgemmConfig::cublas_like()),
                         core::HgemmConfig::cublas_like(), rng,
                         numerics::NumericsMode::kBitAccurate);
  }
}

using testsupport::fnv1a_bits;

// ------------------------------------------------------------------ JIT axis

/// Runs `prog` on the full grid through the functional executor twice — once
/// interpreting, once with ExecEngine::kJit — on separate memories, and
/// compares probes and the C buffer bitwise. The interpreter is the oracle;
/// any diff is a JIT bug.
void expect_jit_equivalent(const sass::Program& prog, const GemmShape& shape,
                           std::uint32_t grid_x, std::uint32_t grid_y, Rng& rng,
                           numerics::NumericsMode mode = numerics::NumericsMode::kIdealized) {
  HalfMatrix a(shape.m, shape.k), bt(shape.n, shape.k);
  a.randomize(rng, -0.5f, 0.5f);
  bt.randomize(rng, -0.5f, 0.5f);

  driver::Device dev_i(device::rtx2070());
  driver::Device dev_j(device::rtx2070());

  const auto setup = [&](driver::Device& dev, sim::Launch& launch) {
    auto da = dev.alloc<half>(a.size());
    auto db = dev.alloc<half>(bt.size());
    auto dc = dev.alloc<half>(shape.m * shape.n);
    dev.upload(da, std::span<const half>(a.data(), a.size()));
    dev.upload(db, std::span<const half>(bt.data(), bt.size()));
    launch.program = &prog;
    launch.grid_x = grid_x;
    launch.grid_y = grid_y;
    launch.params = {da.addr, db.addr, dc.addr};
    launch.numerics = mode;
    return dc;
  };

  sim::Launch launch_i, launch_j;
  const auto dc_i = setup(dev_i, launch_i);
  const auto dc_j = setup(dev_j, launch_j);
  launch_j.engine = sim::ExecEngine::kJit;

  sim::StateProbe probe_i, probe_j;
  probe_i.set_num_regs(prog.num_regs);
  probe_j.set_num_regs(prog.num_regs);

  sim::FunctionalExecutor fi(dev_i.gmem());
  fi.set_probe(&probe_i);
  fi.run(launch_i);
  sim::FunctionalExecutor fj(dev_j.gmem());
  fj.set_probe(&probe_j);
  fj.run(launch_j);

  const std::string diff =
      sim::StateProbe::diff(probe_i, probe_j, 4, "interpret", "jit");
  EXPECT_TRUE(diff.empty()) << prog.name << " " << shape.m << "x" << shape.n
                            << "x" << shape.k << ":\n" << diff;

  std::vector<half> c_i(shape.m * shape.n), c_j(shape.m * shape.n);
  dev_i.download(std::span(c_i.data(), c_i.size()), dc_i);
  dev_j.download(std::span(c_j.data(), c_j.size()), dc_j);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < c_i.size(); ++i) {
    mismatches += c_i[i].bits() != c_j[i].bits() ? 1 : 0;
  }
  EXPECT_EQ(mismatches, 0u) << prog.name << ": C buffers differ bitwise (jit vs interpret)";
}

TEST(Equivalence, JitHgemmOptimizedThreeSizesBothModes) {
  Rng rng(111);
  const core::HgemmConfig cfg = core::HgemmConfig::optimized();
  for (const auto mode : {numerics::NumericsMode::kIdealized,
                          numerics::NumericsMode::kBitAccurate}) {
    for (const std::size_t k : {64u, 96u, 128u}) {
      const GemmShape shape{static_cast<std::size_t>(cfg.bm),
                            static_cast<std::size_t>(cfg.bn), k};
      expect_jit_equivalent(core::hgemm_kernel(cfg, shape), shape, 1, 1, rng, mode);
    }
  }
}

TEST(Equivalence, JitHgemmCublasLikeThreeSizesBothModes) {
  Rng rng(112);
  const core::HgemmConfig cfg = core::HgemmConfig::cublas_like();
  for (const auto mode : {numerics::NumericsMode::kIdealized,
                          numerics::NumericsMode::kBitAccurate}) {
    for (const std::size_t k : {128u, 192u, 256u}) {
      const GemmShape shape{static_cast<std::size_t>(cfg.bm),
                            static_cast<std::size_t>(cfg.bn), k};
      expect_jit_equivalent(core::hgemm_kernel(cfg, shape), shape, 1, 1, rng, mode);
    }
  }
}

TEST(Equivalence, JitWmmaNaiveThreeSizesBothModes) {
  Rng rng(113);
  const GemmShape shapes[] = {{16, 128, 16}, {32, 128, 32}, {16, 256, 48}};
  for (const auto mode : {numerics::NumericsMode::kIdealized,
                          numerics::NumericsMode::kBitAccurate}) {
    for (const GemmShape& s : shapes) {
      expect_jit_equivalent(core::wmma_naive_kernel(s), s,
                            static_cast<std::uint32_t>(s.n / 128),
                            static_cast<std::uint32_t>(s.m / 16), rng, mode);
    }
  }
}

TEST(Equivalence, JitEngineReproducesTheBytePins) {
  // The FNV pins below were recorded under the interpreter; the JIT engine
  // must land on the exact same bytes. This closes the loop end to end
  // through the public run_hgemm/run_wmma_naive API rather than raw
  // launches.
  {
    Rng rng(501);
    driver::Device dev(device::rtx2070());
    core::HgemmConfig cfg = core::HgemmConfig::optimized();
    cfg.engine = sim::ExecEngine::kJit;
    HalfMatrix a(static_cast<std::size_t>(cfg.bm), 64);
    HalfMatrix bt(static_cast<std::size_t>(cfg.bn), 64);
    a.randomize(rng, -2.0f, 2.0f);
    bt.randomize(rng, -2.0f, 2.0f);
    EXPECT_EQ(fnv1a_bits(core::run_hgemm(dev, a, bt, cfg)), 0x060A54DCE7CE62E4ull);
  }
  {
    Rng rng(503);
    driver::Device dev(device::rtx2070());
    core::HgemmConfig cfg = core::HgemmConfig::cublas_like();
    cfg.engine = sim::ExecEngine::kJit;
    HalfMatrix a(static_cast<std::size_t>(cfg.bm), 128);
    HalfMatrix bt(static_cast<std::size_t>(cfg.bn), 128);
    a.randomize(rng, -2.0f, 2.0f);
    bt.randomize(rng, -2.0f, 2.0f);
    EXPECT_EQ(fnv1a_bits(core::run_hgemm(dev, a, bt, cfg)), 0x863DB8710C8A9CBAull);
  }
  {
    Rng rng(505);
    driver::Device dev(device::rtx2070());
    HalfMatrix a(32, 32), bt(128, 32);
    a.randomize(rng, -2.0f, 2.0f);
    bt.randomize(rng, -2.0f, 2.0f);
    EXPECT_EQ(fnv1a_bits(core::run_wmma_naive(dev, a, bt, sim::ExecEngine::kJit)),
              0x2565A8CC3E43BB92ull);
  }
}

TEST(Equivalence, IdealizedModeIsBytePinnedToPrePlumbingExecutor) {
  // Regression pin for the numerics-mode plumbing: these hashes were
  // recorded from run_hgemm/run_wmma_naive BEFORE NumericsMode existed, so
  // any drift here means the kIdealized path is no longer bit-identical to
  // the historic executor semantics and every golden fixture is suspect.
  struct Pin {
    const char* config;  // "optimized" | "cublas_like" | "wmma_naive"
    std::size_t k;
    std::uint64_t seed;
    std::uint64_t hash;
  };
  const Pin pins[] = {
      {"optimized", 64, 501, 0x060A54DCE7CE62E4ull},
      {"optimized", 128, 502, 0xD4D4EDF491ECAE4Eull},
      {"cublas_like", 128, 503, 0x863DB8710C8A9CBAull},
      {"cublas_like", 256, 504, 0xE527A4B8C9D9D969ull},
      {"wmma_naive", 32, 505, 0x2565A8CC3E43BB92ull},
  };
  for (const Pin& pin : pins) {
    SCOPED_TRACE(std::string(pin.config) + " k=" + std::to_string(pin.k));
    Rng rng(pin.seed);
    driver::Device dev(device::rtx2070());
    HalfMatrix out(0, 0);
    if (std::string(pin.config) == "wmma_naive") {
      HalfMatrix a(32, pin.k), bt(128, pin.k);
      a.randomize(rng, -2.0f, 2.0f);
      bt.randomize(rng, -2.0f, 2.0f);
      out = core::run_wmma_naive(dev, a, bt);
    } else {
      const core::HgemmConfig cfg = std::string(pin.config) == "optimized"
                                        ? core::HgemmConfig::optimized()
                                        : core::HgemmConfig::cublas_like();
      HalfMatrix a(static_cast<std::size_t>(cfg.bm), pin.k);
      HalfMatrix bt(static_cast<std::size_t>(cfg.bn), pin.k);
      a.randomize(rng, -2.0f, 2.0f);
      bt.randomize(rng, -2.0f, 2.0f);
      out = core::run_hgemm(dev, a, bt, cfg);
    }
    EXPECT_EQ(fnv1a_bits(out), pin.hash);
  }
}

}  // namespace
}  // namespace tc
