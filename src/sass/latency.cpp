#include "sass/latency.hpp"

#include "sass/isa.hpp"

namespace tc::sass {

int fixed_latency(const Instruction& inst, int dreg_offset) {
  switch (pipe_class(inst.op)) {
    case PipeClass::kTensor: {
      const auto counts = mma_reg_counts(inst.op);
      return dreg_offset < (counts.d + 1) / 2 ? kMmaLatencyLow : kMmaLatencyHigh;
    }
    case PipeClass::kFma:
      return kFmaLatency;
    case PipeClass::kSpecial:
      return kSpecialLatency;
    default:
      return kAluLatency;
  }
}

}  // namespace tc::sass
