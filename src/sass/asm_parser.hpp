// Text-form SASS assembler: parses the same syntax the disassembler emits
// (plus labels and resource directives), so kernels can be written or
// patched as text — the workflow of maxas/turingas the paper's SASS kernel
// was developed with. assemble(disassemble(p)) reproduces p exactly.
//
// Grammar (one instruction per line):
//
//   .kernel name          .threads N          .smem BYTES
//   label:
//   [@[!]Pn] OPCODE operands ; {S:n [Y] [WBk] [RBk] [W:digits] [RU:n]}
//
// Operands follow the disassembler: registers R0..R254/RZ, predicates
// P0..P6/PT, immediates 0x.. or decimal, memory [Rn+0x..], parameters
// c[0x0][i], special registers SR_*. Branch targets may be a label or an
// absolute instruction index. `//` starts a comment.
#pragma once

#include <optional>
#include <string>

#include "sass/diag.hpp"
#include "sass/program.hpp"

namespace tc::sass {

/// Parses a whole kernel; throws tc::Error with a line number on syntax
/// errors. The result is validated like KernelBuilder output.
[[nodiscard]] Program assemble(const std::string& source);

/// Non-throwing form for tooling: returns the program, or nullopt with a
/// structured diagnostic in *diag (if non-null). Parse/syntax failures get
/// kind "asm-parse" with consumer_pc holding the 1-based *source line*;
/// programs that parse but fail ISA validation get kind "asm-validate" with
/// consumer_pc -1 (the validator reports instruction pcs in its message).
[[nodiscard]] std::optional<Program> try_assemble(const std::string& source,
                                                  Diag* diag = nullptr);

}  // namespace tc::sass
