#include "sass/asm_parser.hpp"

#include <cctype>
#include <charconv>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "sass/validator.hpp"

namespace tc::sass {

namespace {

/// Internal parse failure carrying the 1-based source line; converted to a
/// throwing tc::Error by assemble() or a structured Diag by try_assemble().
struct AsmError {
  int line;
  std::string msg;
};

[[noreturn]] void fail(int line, const std::string& msg) { throw AsmError{line, msg}; }

/// Splits the instruction body into comma-separated operand strings.
std::vector<std::string> split_operands(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  int bracket = 0;
  for (const char c : s) {
    if (c == '[') ++bracket;
    if (c == ']') --bracket;
    if (c == ',' && bracket == 0) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  for (auto& op : out) {
    while (!op.empty() && std::isspace(static_cast<unsigned char>(op.front()))) op.erase(0, 1);
    while (!op.empty() && std::isspace(static_cast<unsigned char>(op.back()))) op.pop_back();
  }
  while (!out.empty() && out.back().empty()) out.pop_back();
  return out;
}

std::optional<Reg> try_reg(const std::string& tok) {
  if (tok == "RZ") return RZ;
  if (tok.size() >= 2 && tok[0] == 'R' && std::isdigit(static_cast<unsigned char>(tok[1]))) {
    int idx = 0;
    const auto [p, ec] = std::from_chars(tok.data() + 1, tok.data() + tok.size(), idx);
    if (ec == std::errc{} && p == tok.data() + tok.size() && idx >= 0 && idx < 255) {
      return Reg{static_cast<std::uint8_t>(idx)};
    }
  }
  return std::nullopt;
}

Reg parse_reg(const std::string& tok, int line) {
  const auto r = try_reg(tok);
  if (!r) fail(line, "expected register, got '" + tok + "'");
  return *r;
}

Pred parse_pred(const std::string& tok, int line) {
  if (tok == "PT") return PT;
  if (tok.size() == 2 && tok[0] == 'P' && tok[1] >= '0' && tok[1] <= '6') {
    return Pred{static_cast<std::uint8_t>(tok[1] - '0')};
  }
  fail(line, "expected predicate, got '" + tok + "'");
}

std::optional<std::int32_t> try_imm(const std::string& tok) {
  if (tok.empty()) return std::nullopt;
  std::size_t pos = 0;
  bool negative = false;
  if (tok[pos] == '-') {
    negative = true;
    ++pos;
  }
  std::uint32_t value = 0;
  if (tok.size() > pos + 1 && tok[pos] == '0' && (tok[pos + 1] == 'x' || tok[pos + 1] == 'X')) {
    const auto [p, ec] =
        std::from_chars(tok.data() + pos + 2, tok.data() + tok.size(), value, 16);
    if (ec != std::errc{} || p != tok.data() + tok.size()) return std::nullopt;
  } else if (std::isdigit(static_cast<unsigned char>(tok[pos]))) {
    const auto [p, ec] = std::from_chars(tok.data() + pos, tok.data() + tok.size(), value, 10);
    if (ec != std::errc{} || p != tok.data() + tok.size()) return std::nullopt;
  } else {
    return std::nullopt;
  }
  const auto signed_value = static_cast<std::int32_t>(value);
  return negative ? -signed_value : signed_value;
}

/// Memory reference "[Rn]", "[Rn+0x..]" or "[Rn-0x..]".
void parse_memref(const std::string& tok, Instruction& inst, int line) {
  if (tok.size() < 4 || tok.front() != '[' || tok.back() != ']') {
    fail(line, "expected memory reference, got '" + tok + "'");
  }
  const std::string inner = tok.substr(1, tok.size() - 2);
  std::size_t split = inner.find_first_of("+-", 1);
  if (split == std::string::npos) {
    inst.srca = parse_reg(inner, line);
    inst.imm = 0;
    return;
  }
  inst.srca = parse_reg(inner.substr(0, split), line);
  const auto off = try_imm(inner.substr(split + 1));
  if (!off) fail(line, "bad address offset in '" + tok + "'");
  inst.imm = inner[split] == '-' ? -*off : *off;
}

MemWidth parse_width(const std::string& part, int line) {
  if (part == "32") return MemWidth::k32;
  if (part == "64") return MemWidth::k64;
  if (part == "128") return MemWidth::k128;
  fail(line, "bad memory width ." + part);
}

SpecialReg parse_special(const std::string& tok, int line) {
  if (tok == "SR_LANEID") return SpecialReg::kLaneId;
  if (tok == "SR_TID.X") return SpecialReg::kTidX;
  if (tok == "SR_CTAID.X") return SpecialReg::kCtaIdX;
  if (tok == "SR_CTAID.Y") return SpecialReg::kCtaIdY;
  if (tok == "SR_NCTAID.X") return SpecialReg::kNCtaIdX;
  if (tok == "SR_SMID") return SpecialReg::kSmId;
  fail(line, "unknown special register '" + tok + "'");
}

CmpOp parse_cmp(const std::string& part, int line) {
  if (part == "LT") return CmpOp::kLt;
  if (part == "LE") return CmpOp::kLe;
  if (part == "GT") return CmpOp::kGt;
  if (part == "GE") return CmpOp::kGe;
  if (part == "EQ") return CmpOp::kEq;
  if (part == "NE") return CmpOp::kNe;
  fail(line, "bad ISETP comparison ." + part);
}

/// Parses the "{S:n Y WBk RBk W:digits RU:n}" control block.
ControlInfo parse_ctrl(const std::string& s, int line) {
  ControlInfo ctrl;
  std::istringstream in(s);
  std::string tok;
  while (in >> tok) {
    if (tok == "{" || tok == "}") continue;
    if (!tok.empty() && tok.front() == '{') tok.erase(0, 1);
    if (!tok.empty() && tok.back() == '}') tok.pop_back();
    if (tok.empty()) continue;
    if (tok.rfind("S:", 0) == 0) {
      const auto v = try_imm(tok.substr(2));
      if (!v || *v < 0 || *v > 15) fail(line, "bad stall in control info");
      ctrl.stall = static_cast<std::uint8_t>(*v);
    } else if (tok == "Y") {
      ctrl.yield = true;
    } else if (tok.rfind("WB", 0) == 0) {
      const auto v = try_imm(tok.substr(2));
      if (!v || *v < 0 || *v >= kNumBarriers) fail(line, "bad write barrier");
      ctrl.write_barrier = static_cast<std::uint8_t>(*v);
    } else if (tok.rfind("RB", 0) == 0) {
      const auto v = try_imm(tok.substr(2));
      if (!v || *v < 0 || *v >= kNumBarriers) fail(line, "bad read barrier");
      ctrl.read_barrier = static_cast<std::uint8_t>(*v);
    } else if (tok.rfind("W:", 0) == 0) {
      for (std::size_t i = 2; i < tok.size(); ++i) {
        if (tok[i] < '0' || tok[i] >= '0' + kNumBarriers) fail(line, "bad wait mask");
        ctrl.wait_mask |= static_cast<std::uint8_t>(1u << (tok[i] - '0'));
      }
    } else if (tok.rfind("RU:", 0) == 0) {
      const auto v = try_imm(tok.substr(3));
      if (!v) fail(line, "bad reuse flags");
      ctrl.reuse = static_cast<std::uint8_t>(*v);
    } else {
      fail(line, "unknown control token '" + tok + "'");
    }
  }
  return ctrl;
}

struct ParseState {
  Program prog;
  std::unordered_map<std::string, int> labels;
  std::vector<std::tuple<int, std::string, int>> fixups;  // (inst, label, line)
};

/// Reads "src2" for ALU forms: register or immediate.
void parse_alu_src2(Instruction& inst, const std::string& tok, int line) {
  if (const auto r = try_reg(tok)) {
    inst.srcb = *r;
  } else if (const auto v = try_imm(tok)) {
    inst.imm = *v;
    inst.has_imm = true;
  } else {
    fail(line, "expected register or immediate, got '" + tok + "'");
  }
}

void parse_instruction(ParseState& st, std::string body, const ControlInfo& ctrl, int line) {
  Instruction inst;
  inst.ctrl = ctrl;

  // Optional guard "@P0" / "@!P2".
  if (!body.empty() && body[0] == '@') {
    std::size_t sp = body.find(' ');
    if (sp == std::string::npos) fail(line, "guard without opcode");
    std::string g = body.substr(1, sp - 1);
    if (!g.empty() && g[0] == '!') {
      inst.guard_negated = true;
      g.erase(0, 1);
    }
    inst.guard = parse_pred(g, line);
    body.erase(0, sp + 1);
  }

  std::size_t sp = body.find(' ');
  const std::string opcode = body.substr(0, sp);
  const std::string rest = sp == std::string::npos ? "" : body.substr(sp + 1);
  auto ops = split_operands(rest);

  // Split the opcode into base and dot-suffixes.
  std::vector<std::string> parts;
  {
    std::size_t start = 0;
    while (start <= opcode.size()) {
      const std::size_t dot = opcode.find('.', start);
      parts.push_back(opcode.substr(start, dot - start));
      if (dot == std::string::npos) break;
      start = dot + 1;
    }
  }
  const std::string& base = parts[0];

  auto need = [&](std::size_t n) {
    if (ops.size() != n) {
      fail(line, opcode + " expects " + std::to_string(n) + " operands, got " +
                     std::to_string(ops.size()));
    }
  };

  if (base == "NOP") {
    inst.op = Opcode::kNop;
  } else if (base == "EXIT") {
    inst.op = Opcode::kExit;
  } else if (base == "BAR") {
    inst.op = Opcode::kBar;
  } else if (base == "BRA") {
    inst.op = Opcode::kBra;
    need(1);
    if (const auto v = try_imm(ops[0])) {
      inst.target = *v;
    } else {
      st.fixups.emplace_back(static_cast<int>(st.prog.code.size()), ops[0], line);
    }
  } else if (base == "LDG" || base == "LDS") {
    inst.op = base == "LDG" ? Opcode::kLdg : Opcode::kLds;
    if (parts.size() < 2) fail(line, base + " needs a width suffix");
    inst.width = parse_width(parts[1], line);
    if (parts.size() > 2 && parts[2] == "CG") inst.cache = CacheOp::kCg;
    need(2);
    inst.dst = parse_reg(ops[0], line);
    parse_memref(ops[1], inst, line);
  } else if (base == "STG" || base == "STS") {
    inst.op = base == "STG" ? Opcode::kStg : Opcode::kSts;
    if (parts.size() < 2) fail(line, base + " needs a width suffix");
    inst.width = parse_width(parts[1], line);
    need(2);
    parse_memref(ops[0], inst, line);
    inst.srcb = parse_reg(ops[1], line);
  } else if (base == "HMMA" || base == "IMMA") {
    if (parts.size() < 3) fail(line, "MMA needs shape and type suffixes");
    if (parts[1] == "1688" && parts[2] == "F16") {
      inst.op = Opcode::kHmma1688F16;
    } else if (parts[1] == "1688" && parts[2] == "F32") {
      inst.op = Opcode::kHmma1688F32;
    } else if (parts[1] == "884" && parts[2] == "F16") {
      inst.op = Opcode::kHmma884F16;
    } else if (parts[1] == "8816" && parts[2] == "S8") {
      inst.op = Opcode::kImma8816S8;
    } else {
      fail(line, "unknown MMA variant " + opcode);
    }
    need(4);
    inst.dst = parse_reg(ops[0], line);
    inst.srca = parse_reg(ops[1], line);
    inst.srcb = parse_reg(ops[2], line);
    inst.srcc = parse_reg(ops[3], line);
  } else if (base == "MOV") {
    need(2);
    inst.dst = parse_reg(ops[0], line);
    if (ops[1].rfind("c[0x0][", 0) == 0 && ops[1].back() == ']') {
      inst.op = Opcode::kMovParam;
      const auto v = try_imm(ops[1].substr(7, ops[1].size() - 8));
      if (!v || *v < 0) fail(line, "bad parameter index");
      inst.param_index = static_cast<std::uint16_t>(*v);
    } else if (const auto r = try_reg(ops[1])) {
      inst.op = Opcode::kMov;
      inst.srca = *r;
    } else if (const auto v = try_imm(ops[1])) {
      inst.op = Opcode::kMov;
      inst.imm = *v;
      inst.has_imm = true;
    } else {
      fail(line, "bad MOV source '" + ops[1] + "'");
    }
  } else if (base == "S2R") {
    inst.op = Opcode::kS2r;
    need(2);
    inst.dst = parse_reg(ops[0], line);
    inst.sreg = parse_special(ops[1], line);
  } else if (base == "CS2R") {
    inst.op = Opcode::kCs2rClock;
    need(2);
    inst.dst = parse_reg(ops[0], line);
    if (ops[1] != "SR_CLOCKLO") fail(line, "CS2R reads SR_CLOCKLO");
  } else if (base == "ISETP") {
    inst.op = Opcode::kIsetp;
    if (parts.size() < 2) fail(line, "ISETP needs a comparison suffix");
    inst.cmp = parse_cmp(parts[1], line);
    need(3);
    inst.pdst = parse_pred(ops[0], line);
    inst.srca = parse_reg(ops[1], line);
    parse_alu_src2(inst, ops[2], line);
  } else if (base == "SEL") {
    inst.op = Opcode::kSel;
    need(4);
    inst.dst = parse_reg(ops[0], line);
    inst.pdst = parse_pred(ops[1], line);
    inst.srca = parse_reg(ops[2], line);
    inst.srcb = parse_reg(ops[3], line);
  } else if (base == "F2F") {
    need(2);
    inst.op = (parts.size() > 2 && parts[1] == "F16") ? Opcode::kF2fF32ToF16
                                                      : Opcode::kF2fF16ToF32;
    inst.dst = parse_reg(ops[0], line);
    inst.srca = parse_reg(ops[1], line);
  } else {
    static const std::unordered_map<std::string, Opcode> kAlu = {
        {"IADD3", Opcode::kIadd3},   {"IMAD", Opcode::kImad},  {"LOP3", Opcode::kLop3And},
        {"SHF", Opcode::kShfL},      {"FADD", Opcode::kFadd},  {"FMUL", Opcode::kFmul},
        {"FFMA", Opcode::kFfma},     {"HADD2", Opcode::kHadd2}, {"HMUL2", Opcode::kHmul2},
        {"HFMA2", Opcode::kHfma2},  {"HMAX2", Opcode::kHmax2}, {"HGELU2", Opcode::kHgelu2},
    };
    const auto it = kAlu.find(base);
    if (it == kAlu.end()) fail(line, "unknown opcode '" + opcode + "'");
    inst.op = it->second;
    if (base == "LOP3") {
      if (parts.size() < 2) fail(line, "LOP3 needs .AND/.OR/.XOR");
      if (parts[1] == "AND") {
        inst.op = Opcode::kLop3And;
      } else if (parts[1] == "OR") {
        inst.op = Opcode::kLop3Or;
      } else if (parts[1] == "XOR") {
        inst.op = Opcode::kLop3Xor;
      } else {
        fail(line, "bad LOP3 suffix");
      }
    }
    if (base == "SHF") {
      if (parts.size() < 2) fail(line, "SHF needs .L/.R");
      inst.op = parts[1] == "L" ? Opcode::kShfL : Opcode::kShfR;
    }
    if (ops.size() < 2) fail(line, opcode + " needs at least 2 operands");
    inst.dst = parse_reg(ops[0], line);
    inst.srca = parse_reg(ops[1], line);
    if (ops.size() >= 3) parse_alu_src2(inst, ops[2], line);
    if (ops.size() >= 4) inst.srcc = parse_reg(ops[3], line);
    if (ops.size() > 4) fail(line, "too many operands for " + opcode);
  }

  st.prog.code.push_back(inst);
}

/// Parses and validates; throws AsmError on syntax errors, tc::Error on
/// post-parse ISA validation failures.
Program assemble_impl(const std::string& source) {
  ParseState st;
  st.prog.name = "asm";
  st.prog.cta_threads = 32;

  std::istringstream in(source);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = raw;
    // Strip /*..*/ comments (the disassembler's pc annotations) and //.
    for (std::size_t open = line.find("/*"); open != std::string::npos;
         open = line.find("/*")) {
      const std::size_t close = line.find("*/", open);
      if (close == std::string::npos) fail(line_no, "unterminated /* comment");
      line.erase(open, close - open + 2);
    }
    if (const std::size_t slashes = line.find("//"); slashes != std::string::npos) {
      line.erase(slashes);
    }
    // Trim.
    while (!line.empty() && std::isspace(static_cast<unsigned char>(line.front()))) {
      line.erase(0, 1);
    }
    while (!line.empty() && std::isspace(static_cast<unsigned char>(line.back()))) {
      line.pop_back();
    }
    if (line.empty()) continue;

    // Directives.
    if (line[0] == '.') {
      std::istringstream d(line);
      std::string name;
      d >> name;
      if (name == ".kernel") {
        d >> st.prog.name;
      } else if (name == ".threads") {
        d >> st.prog.cta_threads;
      } else if (name == ".smem") {
        d >> st.prog.smem_bytes;
      } else {
        fail(line_no, "unknown directive " + name);
      }
      continue;
    }

    // Labels.
    if (line.back() == ':' && line.find(' ') == std::string::npos) {
      const std::string label = line.substr(0, line.size() - 1);
      if (st.labels.contains(label)) fail(line_no, "duplicate label " + label);
      st.labels[label] = static_cast<int>(st.prog.code.size());
      continue;
    }

    // Body ; control.
    std::string body = line;
    ControlInfo ctrl;
    if (const std::size_t semi = line.find(';'); semi != std::string::npos) {
      body = line.substr(0, semi);
      ctrl = parse_ctrl(line.substr(semi + 1), line_no);
    }
    while (!body.empty() && std::isspace(static_cast<unsigned char>(body.back()))) {
      body.pop_back();
    }
    parse_instruction(st, body, ctrl, line_no);
  }

  for (const auto& [index, label, line] : st.fixups) {
    const auto it = st.labels.find(label);
    if (it == st.labels.end()) fail(line, "undefined label '" + label + "'");
    st.prog.code[static_cast<std::size_t>(index)].target = it->second;
  }

  // Resource bookkeeping identical to KernelBuilder::finalize.
  int max_reg = -1;
  std::uint32_t max_param = 0;
  for (const auto& inst : st.prog.code) {
    auto track = [&](Reg r, int count) {
      if (!r.is_rz()) max_reg = std::max(max_reg, static_cast<int>(r.idx) + count - 1);
    };
    if (is_mma(inst.op)) {
      const auto rc = mma_reg_counts(inst.op);
      track(inst.dst, rc.d);
      track(inst.srca, rc.a);
      track(inst.srcb, rc.b);
      track(inst.srcc, rc.c);
    } else if (inst.op == Opcode::kLdg || inst.op == Opcode::kLds) {
      track(inst.dst, width_regs(inst.width));
      track(inst.srca, 1);
    } else if (inst.op == Opcode::kStg || inst.op == Opcode::kSts) {
      track(inst.srca, 1);
      track(inst.srcb, width_regs(inst.width));
    } else {
      track(inst.dst, 1);
      track(inst.srca, 1);
      if (!inst.has_imm) track(inst.srcb, 1);
      track(inst.srcc, 1);
    }
    if (inst.op == Opcode::kMovParam) {
      max_param = std::max(max_param, static_cast<std::uint32_t>(inst.param_index) + 1);
    }
  }
  st.prog.num_regs = max_reg + 1;
  st.prog.num_param_words = max_param;

  validate(st.prog);
  return st.prog;
}

}  // namespace

Program assemble(const std::string& source) {
  try {
    return assemble_impl(source);
  } catch (const AsmError& e) {
    throw Error("asm line " + std::to_string(e.line) + ": " + e.msg);
  }
}

std::optional<Program> try_assemble(const std::string& source, Diag* diag) {
  try {
    return assemble_impl(source);
  } catch (const AsmError& e) {
    if (diag != nullptr) {
      *diag = Diag{DiagSeverity::kError, "asm-parse", -1, e.line,
                   "line " + std::to_string(e.line) + ": " + e.msg};
    }
    return std::nullopt;
  } catch (const Error& e) {
    if (diag != nullptr) {
      *diag = Diag{DiagSeverity::kError, "asm-validate", -1, -1, e.what()};
    }
    return std::nullopt;
  }
}

}  // namespace tc::sass
