// Structured diagnostics for the static checking layers.
//
// validate() throws on hard ISA violations and lint() returns loose strings,
// but the hazard detector (src/check) needs machine-readable findings: a
// severity, a stable kind tag, and the producer/consumer program counters so
// tools (tcgemm_cli --json, tests) can filter and anchor them. This header is
// the shared vocabulary; it deliberately lives in sass so check-level code
// can emit diagnostics about programs without a dependency cycle.
#pragma once

#include <string>
#include <vector>

namespace tc::sass {

enum class DiagSeverity {
  kWarning,  // legal and functionally safe, but wasteful or suspicious
  kError,    // a true race: some schedule-visible read observes a stale value
};

struct Diag {
  DiagSeverity severity = DiagSeverity::kWarning;
  std::string kind;      // stable tag, e.g. "raw-fixed", "raw-load", "redundant-wait"
  int producer_pc = -1;  // instruction that created the hazard (-1 = not applicable)
  int consumer_pc = -1;  // instruction that trips or carries it
  std::string message;   // self-contained human-readable description
};

inline std::string format(const Diag& d) {
  std::string s = d.severity == DiagSeverity::kError ? "error" : "warning";
  s += " [" + d.kind + "]";
  if (d.consumer_pc >= 0) s += " pc " + std::to_string(d.consumer_pc);
  s += ": " + d.message;
  return s;
}

inline bool has_errors(const std::vector<Diag>& diags) {
  for (const auto& d : diags) {
    if (d.severity == DiagSeverity::kError) return true;
  }
  return false;
}

inline int count_errors(const std::vector<Diag>& diags) {
  int n = 0;
  for (const auto& d : diags) n += d.severity == DiagSeverity::kError ? 1 : 0;
  return n;
}

}  // namespace tc::sass
