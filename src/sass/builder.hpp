// KernelBuilder: the programmatic SASS assembler.
//
// Kernel generators (src/core, src/kernels) construct programs through this
// fluent interface. The builder resolves labels, tracks register/parameter
// usage, applies per-instruction control info, and runs the static validator
// on finalize(). It plays the role of `turingas`/`maxas` in the paper's
// workflow: the author controls instruction order, stall counts, and
// scoreboard barriers precisely.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sass/instruction.hpp"
#include "sass/program.hpp"

namespace tc::sass {

class KernelBuilder {
 public:
  /// `unscheduled` puts the builder in *virtual emission* mode for the
  /// automatic scheduler (tc::sched): control words stay at their defaults
  /// and the manual scheduling setters (stall/write_bar/read_bar/wait/
  /// wait_on/reuse) throw. Predicates and yield hints remain allowed —
  /// they are semantic, not scheduling.
  explicit KernelBuilder(std::string name, bool unscheduled = false);

  // --- raw emission -------------------------------------------------------
  /// Appends an instruction verbatim and returns its index.
  int emit(Instruction inst);
  /// Returns the last emitted instruction for control-info adjustment.
  Instruction& last();
  /// Number of instructions emitted so far.
  [[nodiscard]] int size() const { return static_cast<int>(code_.size()); }

  // --- control info on the last instruction -------------------------------
  KernelBuilder& stall(int cycles);
  KernelBuilder& yield();
  KernelBuilder& write_bar(int idx);
  KernelBuilder& read_bar(int idx);
  KernelBuilder& wait(std::uint8_t mask);
  KernelBuilder& wait_on(int idx);
  KernelBuilder& reuse(std::uint8_t flags);
  /// Guard the last instruction with predicate p (negated if neg).
  KernelBuilder& pred(Pred p, bool neg = false);

  // --- typed emitters ------------------------------------------------------
  KernelBuilder& nop();
  KernelBuilder& mov(Reg d, Reg s);
  KernelBuilder& mov_imm(Reg d, std::int32_t imm);
  KernelBuilder& mov_param(Reg d, int param_word);
  KernelBuilder& s2r(Reg d, SpecialReg sr);
  KernelBuilder& cs2r_clock(Reg d);
  KernelBuilder& iadd3(Reg d, Reg a, Reg b, Reg c = RZ);
  KernelBuilder& iadd_imm(Reg d, Reg a, std::int32_t imm);
  KernelBuilder& imad(Reg d, Reg a, Reg b, Reg c = RZ);
  KernelBuilder& imad_imm(Reg d, Reg a, std::int32_t imm, Reg c = RZ);
  KernelBuilder& land(Reg d, Reg a, Reg b);
  KernelBuilder& land_imm(Reg d, Reg a, std::int32_t imm);
  KernelBuilder& lor(Reg d, Reg a, Reg b);
  KernelBuilder& lxor(Reg d, Reg a, Reg b);
  KernelBuilder& shl(Reg d, Reg a, int amount);
  KernelBuilder& shr(Reg d, Reg a, int amount);
  KernelBuilder& isetp(Pred p, CmpOp cmp, Reg a, Reg b);
  KernelBuilder& isetp_imm(Pred p, CmpOp cmp, Reg a, std::int32_t imm);
  KernelBuilder& sel(Reg d, Pred p, Reg a, Reg b);
  KernelBuilder& fadd(Reg d, Reg a, Reg b);
  KernelBuilder& fmul(Reg d, Reg a, Reg b);
  KernelBuilder& ffma(Reg d, Reg a, Reg b, Reg c);
  KernelBuilder& hfma2(Reg d, Reg a, Reg b, Reg c);
  KernelBuilder& hadd2(Reg d, Reg a, Reg b);
  KernelBuilder& hmul2(Reg d, Reg a, Reg b);
  KernelBuilder& hmax2(Reg d, Reg a, Reg b);
  KernelBuilder& hgelu2(Reg d, Reg a);
  KernelBuilder& f2f_f16_f32(Reg d, Reg a);
  KernelBuilder& f2f_f32_f16(Reg d, Reg a);

  KernelBuilder& hmma_1688_f16(Reg d, Reg a, Reg b, Reg c);
  KernelBuilder& hmma_1688_f32(Reg d, Reg a, Reg b, Reg c);
  KernelBuilder& hmma_884_f16(Reg d, Reg a, Reg b, Reg c);
  KernelBuilder& imma_8816_s8(Reg d, Reg a, Reg b, Reg c);

  /// Global load: dst[0..w) <- mem[addr_reg + offset]. addr_reg holds a
  /// 32-bit byte address into the simulated global space.
  KernelBuilder& ldg(MemWidth w, Reg d, Reg addr, std::int32_t offset = 0,
                     CacheOp cache = CacheOp::kCa);
  KernelBuilder& stg(MemWidth w, Reg addr, Reg src, std::int32_t offset = 0);
  KernelBuilder& lds(MemWidth w, Reg d, Reg addr, std::int32_t offset = 0);
  KernelBuilder& sts(MemWidth w, Reg addr, Reg src, std::int32_t offset = 0);

  KernelBuilder& bar_sync();
  /// Branch to `label`, which may be defined before or after this point.
  KernelBuilder& bra(const std::string& label);
  KernelBuilder& exit();

  /// Defines `label` at the current position.
  KernelBuilder& label(const std::string& name);

  // --- resources ----------------------------------------------------------
  KernelBuilder& smem(std::uint32_t bytes);
  KernelBuilder& threads(std::uint32_t n);

  /// Resolves labels, computes register usage, validates, and returns the
  /// finished program. The builder must not be reused afterwards.
  Program finalize();

 private:
  Instruction& push(Opcode op);
  void check_scheduled_mode(const char* what) const;

  std::string name_;
  std::vector<Instruction> code_;
  std::unordered_map<std::string, int> labels_;
  std::vector<std::pair<int, std::string>> fixups_;  // (inst index, label)
  std::uint32_t smem_bytes_ = 0;
  std::uint32_t cta_threads_ = 32;
  bool unscheduled_ = false;
  bool finalized_ = false;
};

}  // namespace tc::sass
