// Instruction word + Turing control information.
//
// On Volta/Turing every SASS instruction carries scheduling metadata encoded
// by the assembler: a stall count, a yield hint, one write scoreboard
// barrier, one read scoreboard barrier, a 6-bit wait mask and register reuse
// flags. Correctness depends on this metadata — the hardware does NOT
// interlock fixed-latency pipes — and tcgemm's executor honors that: reading
// a result before its latency elapsed (and without a protecting stall/wait)
// observes the stale register value, which is exactly how the paper measures
// HMMA latency (Section IV-C).
#pragma once

#include <cstdint>
#include <string>

#include "sass/isa.hpp"

namespace tc::sass {

inline constexpr int kNumBarriers = 6;
inline constexpr std::uint8_t kNoBarrier = 7;

/// Turing-style per-instruction control word.
struct ControlInfo {
  /// Cycles the scheduler must wait after issuing this instruction before
  /// issuing the next instruction of the same warp. 0..15.
  std::uint8_t stall = 1;
  /// Hint to switch to another warp after issue (no correctness effect).
  bool yield = false;
  /// Scoreboard barrier set when this instruction's writeback completes
  /// (variable-latency ops only). 0..5, or kNoBarrier.
  std::uint8_t write_barrier = kNoBarrier;
  /// Scoreboard barrier released once this instruction has read its source
  /// operands (used to protect registers consumed by stores). 0..5 or none.
  std::uint8_t read_barrier = kNoBarrier;
  /// Bitmask of barriers that must be clear before this instruction issues.
  std::uint8_t wait_mask = 0;
  /// Register reuse-cache flags for source operand slots. The paper reports
  /// they have no performance effect on HMMA.1688; we model them as inert
  /// but keep them representable so the finding is testable.
  std::uint8_t reuse = 0;
};

/// One SASS instruction. A plain aggregate: the builder fills in only the
/// fields an opcode uses; the validator rejects inconsistent combinations.
struct Instruction {
  Opcode op = Opcode::kNop;

  // Guard predicate: instruction is a no-op for lanes where it is false.
  Pred guard = PT;
  bool guard_negated = false;

  // Register operands (meaning depends on opcode).
  Reg dst = RZ;
  Reg srca = RZ;
  Reg srcb = RZ;
  Reg srcc = RZ;

  // Predicate destination (ISETP) / predicate source (SEL).
  Pred pdst = PT;

  // Immediate operand; for memory ops this is the address offset in bytes.
  std::int32_t imm = 0;
  bool has_imm = false;  // for IADD3/IMAD/ISETP/MOV: srcb is imm instead

  // Memory attributes.
  MemWidth width = MemWidth::k32;
  CacheOp cache = CacheOp::kCa;

  // ISETP comparison.
  CmpOp cmp = CmpOp::kLt;

  // S2R source.
  SpecialReg sreg = SpecialReg::kTidX;

  // MOV.PARAM source index (32-bit word within the parameter buffer).
  std::uint16_t param_index = 0;

  // Branch target as an instruction index (resolved by the builder).
  std::int32_t target = -1;

  ControlInfo ctrl;

  [[nodiscard]] std::string to_string() const;
};

}  // namespace tc::sass
