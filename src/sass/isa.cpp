#include "sass/isa.hpp"

#include "common/error.hpp"

namespace tc::sass {

PipeClass pipe_class(Opcode op) {
  switch (op) {
    case Opcode::kHmma1688F16:
    case Opcode::kHmma1688F32:
    case Opcode::kHmma884F16:
    case Opcode::kImma8816S8:
      return PipeClass::kTensor;
    case Opcode::kFadd:
    case Opcode::kFmul:
    case Opcode::kFfma:
      return PipeClass::kFma;
    case Opcode::kLdg:
    case Opcode::kStg:
    case Opcode::kLds:
    case Opcode::kSts:
      return PipeClass::kMio;
    case Opcode::kBar:
    case Opcode::kBra:
    case Opcode::kExit:
    case Opcode::kNop:
      return PipeClass::kControl;
    case Opcode::kS2r:
    case Opcode::kCs2rClock:
    case Opcode::kMovParam:
      return PipeClass::kSpecial;
    default:
      return PipeClass::kAlu;
  }
}

bool is_variable_latency(Opcode op) {
  switch (op) {
    case Opcode::kLdg:
    case Opcode::kStg:
    case Opcode::kLds:
    case Opcode::kSts:
      return true;
    default:
      return false;
  }
}

bool is_mma(Opcode op) {
  switch (op) {
    case Opcode::kHmma1688F16:
    case Opcode::kHmma1688F32:
    case Opcode::kHmma884F16:
    case Opcode::kImma8816S8:
      return true;
    default:
      return false;
  }
}

MmaRegCounts mma_reg_counts(Opcode op) {
  switch (op) {
    case Opcode::kHmma1688F16:
      return {2, 2, 1, 2};  // D 16x8 f16, A 16x8 f16, B 8x8 f16, C 16x8 f16
    case Opcode::kHmma1688F32:
      return {4, 2, 1, 4};  // D/C are FP32: 16x8 f32 = 4 warp registers
    case Opcode::kHmma884F16:
      return {1, 1, 1, 1};  // 8x8x8 compatibility form on single registers
    case Opcode::kImma8816S8:
      return {2, 1, 1, 2};  // A 8x16 s8, B 16x8 s8, D/C 8x8 s32
    default:
      TC_ASSERT(false, "mma_reg_counts on non-MMA opcode");
  }
}

std::string opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "NOP";
    case Opcode::kHmma1688F16: return "HMMA.1688.F16";
    case Opcode::kHmma1688F32: return "HMMA.1688.F32";
    case Opcode::kHmma884F16: return "HMMA.884.F16";
    case Opcode::kImma8816S8: return "IMMA.8816.S8";
    case Opcode::kLdg: return "LDG";
    case Opcode::kStg: return "STG";
    case Opcode::kLds: return "LDS";
    case Opcode::kSts: return "STS";
    case Opcode::kMov: return "MOV";
    case Opcode::kIadd3: return "IADD3";
    case Opcode::kImad: return "IMAD";
    case Opcode::kLop3And: return "LOP3.AND";
    case Opcode::kLop3Or: return "LOP3.OR";
    case Opcode::kLop3Xor: return "LOP3.XOR";
    case Opcode::kShfL: return "SHF.L";
    case Opcode::kShfR: return "SHF.R";
    case Opcode::kIsetp: return "ISETP";
    case Opcode::kSel: return "SEL";
    case Opcode::kFadd: return "FADD";
    case Opcode::kFmul: return "FMUL";
    case Opcode::kFfma: return "FFMA";
    case Opcode::kHadd2: return "HADD2";
    case Opcode::kHmul2: return "HMUL2";
    case Opcode::kHfma2: return "HFMA2";
    case Opcode::kHmax2: return "HMAX2";
    case Opcode::kHgelu2: return "HGELU2";
    case Opcode::kF2fF32ToF16: return "F2F.F16.F32";
    case Opcode::kF2fF16ToF32: return "F2F.F32.F16";
    case Opcode::kS2r: return "S2R";
    case Opcode::kCs2rClock: return "CS2R.CLOCK";
    case Opcode::kMovParam: return "MOV.PARAM";
    case Opcode::kBar: return "BAR.SYNC";
    case Opcode::kBra: return "BRA";
    case Opcode::kExit: return "EXIT";
  }
  return "UNKNOWN";
}

std::string cmp_name(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return "LT";
    case CmpOp::kLe: return "LE";
    case CmpOp::kGt: return "GT";
    case CmpOp::kGe: return "GE";
    case CmpOp::kEq: return "EQ";
    case CmpOp::kNe: return "NE";
  }
  return "??";
}

std::string special_name(SpecialReg sr) {
  switch (sr) {
    case SpecialReg::kLaneId: return "SR_LANEID";
    case SpecialReg::kTidX: return "SR_TID.X";
    case SpecialReg::kCtaIdX: return "SR_CTAID.X";
    case SpecialReg::kCtaIdY: return "SR_CTAID.Y";
    case SpecialReg::kCtaIdZ: return "SR_CTAID.Z";
    case SpecialReg::kNCtaIdX: return "SR_NCTAID.X";
    case SpecialReg::kSmId: return "SR_SMID";
  }
  return "SR_??";
}

}  // namespace tc::sass
