// The SASS-level instruction set modeled by tcgemm.
//
// This is the subset of Turing SASS that the paper's kernels and
// microbenchmarks use, plus the future-work extensions (HMMA.1688.F32,
// HMMA.884, IMMA.8816). Instructions are classified into execution-pipe
// classes; cycle costs live in src/sim (microarchitecture), not here.
#pragma once

#include <cstdint>
#include <string>

namespace tc::sass {

/// General-purpose register index. R0..R254 are ordinary registers; R255 is
/// RZ, the hardwired zero register (writes are discarded, reads return 0).
struct Reg {
  std::uint8_t idx = 255;
  constexpr Reg() = default;
  constexpr explicit Reg(std::uint8_t i) : idx(i) {}
  [[nodiscard]] constexpr bool is_rz() const { return idx == 255; }
  friend constexpr bool operator==(Reg, Reg) = default;
};
inline constexpr Reg RZ{255};

/// Predicate register index. P0..P6 are writable; P7 is PT (always true).
struct Pred {
  std::uint8_t idx = 7;
  constexpr Pred() = default;
  constexpr explicit Pred(std::uint8_t i) : idx(i) {}
  [[nodiscard]] constexpr bool is_pt() const { return idx == 7; }
  friend constexpr bool operator==(Pred, Pred) = default;
};
inline constexpr Pred PT{7};

/// Opcodes. Name suffixes follow SASS conventions (width and type variants
/// are carried in Instruction fields, not in the opcode, except for MMA
/// shapes where the shape is the instruction).
enum class Opcode : std::uint8_t {
  kNop,
  // --- Tensor Core ---
  kHmma1688F16,  // D16x8(f16) = A16x8 * B8x8 + C16x8
  kHmma1688F32,  // as above with FP32 accumulators (128-bit D/C)
  kHmma884F16,   // Volta-style compatibility op: 8x8x8 on single registers
  kImma8816S8,   // int8 inputs, int32 accumulators (future-work extension)
  // --- Memory ---
  kLdg,  // global load (width, cache-op)
  kStg,  // global store
  kLds,  // shared load
  kSts,  // shared store
  // --- Integer ALU ---
  kMov,     // reg or immediate source
  kIadd3,   // d = a + b + c  (b may be immediate)
  kImad,    // d = a * b + c  (b may be immediate)
  kLop3And, // d = a & b
  kLop3Or,  // d = a | b
  kLop3Xor, // d = a ^ b
  kShfL,    // d = a << imm
  kShfR,    // d = a >> imm (logical)
  kIsetp,   // p = cmp(a, b) (b may be immediate)
  kSel,     // d = p ? a : b
  // --- FP32 / FP16 ALU ---
  kFadd,
  kFmul,
  kFfma,
  kHadd2,   // packed fp16x2
  kHmul2,
  kHfma2,
  kHmax2,   // packed fp16x2 max (IEEE maxNum: a NaN input yields the other operand)
  kHgelu2,  // packed fp16x2 exact-GELU unary (models the device MUFU-based tail sequence)
  kF2fF32ToF16,  // narrow one fp32 reg into the low half of dst
  kF2fF16ToF32,  // widen the low half of src
  // --- Special / system ---
  kS2r,       // read a special register (tid, ctaid, laneid)
  kCs2rClock, // read the SM cycle counter
  kMovParam,  // read 32-bit word i of the kernel parameter buffer
  kBar,       // CTA-wide barrier (__syncthreads)
  kBra,       // branch to label (warp-uniform, optionally predicated)
  kExit,
};

/// Width of a memory access in bits. Determines the number of consecutive
/// destination/source registers (1, 2 or 4).
enum class MemWidth : std::uint8_t { k32 = 32, k64 = 64, k128 = 128 };

[[nodiscard]] constexpr int width_bytes(MemWidth w) { return static_cast<int>(w) / 8; }
[[nodiscard]] constexpr int width_regs(MemWidth w) { return static_cast<int>(w) / 32; }

/// Cache operator on LDG: .CA caches at all levels (L1+L2); .CG bypasses L1
/// and caches globally (L2 only). The paper's bandwidth benchmarks use .CG.
enum class CacheOp : std::uint8_t { kCa, kCg };

/// ISETP comparison (signed 32-bit).
enum class CmpOp : std::uint8_t { kLt, kLe, kGt, kGe, kEq, kNe };

/// Special registers readable via S2R.
enum class SpecialReg : std::uint8_t {
  kLaneId,
  kTidX,
  kCtaIdX,
  kCtaIdY,
  kCtaIdZ,   // batch / split-K slice index for multi-kernel GemmOp launches
  kNCtaIdX,  // grid dimension x
  kSmId,
};

/// Execution-pipe class: which functional unit consumes the instruction.
/// LDS/STS/LDG/STG all dispatch into the shared MIO pipe (Turing whitepaper),
/// which is why the paper's Eq. (4)/(5) add their CPIs together.
enum class PipeClass : std::uint8_t {
  kTensor,   // HMMA / IMMA
  kFma,      // FP32 math
  kAlu,      // integer / logic / fp16x2 / conversions
  kMio,      // shared+global memory instructions
  kControl,  // branches, barriers, exit, nop
  kSpecial,  // S2R / CS2R / param reads
};

[[nodiscard]] PipeClass pipe_class(Opcode op);

/// True for instructions whose completion time is data-dependent (memory):
/// they must signal completion through a scoreboard barrier, not stall counts.
[[nodiscard]] bool is_variable_latency(Opcode op);

/// True for tensor-core matrix instructions.
[[nodiscard]] bool is_mma(Opcode op);

/// Number of 32-bit registers in each MMA operand for the given opcode:
/// returned as {d, a, b, c}.
struct MmaRegCounts {
  int d, a, b, c;
};
[[nodiscard]] MmaRegCounts mma_reg_counts(Opcode op);

[[nodiscard]] std::string opcode_name(Opcode op);
[[nodiscard]] std::string cmp_name(CmpOp op);
[[nodiscard]] std::string special_name(SpecialReg sr);

}  // namespace tc::sass
