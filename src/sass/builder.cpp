#include "sass/builder.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sass/validator.hpp"

namespace tc::sass {

KernelBuilder::KernelBuilder(std::string name, bool unscheduled)
    : name_(std::move(name)), unscheduled_(unscheduled) {}

void KernelBuilder::check_scheduled_mode(const char* what) const {
  TC_CHECK(!unscheduled_, std::string("builder '") + name_ + "' is in unscheduled mode: " + what +
                              " is owned by the scheduler (tc::sched) and must not be set "
                              "manually");
}

int KernelBuilder::emit(Instruction inst) {
  TC_CHECK(!finalized_, "builder already finalized");
  code_.push_back(inst);
  return static_cast<int>(code_.size()) - 1;
}

Instruction& KernelBuilder::last() {
  TC_CHECK(!code_.empty(), "no instruction emitted yet");
  return code_.back();
}

Instruction& KernelBuilder::push(Opcode op) {
  Instruction inst;
  inst.op = op;
  code_.push_back(inst);
  return code_.back();
}

KernelBuilder& KernelBuilder::stall(int cycles) {
  check_scheduled_mode("the stall count");
  TC_CHECK(cycles >= 0 && cycles <= 15, "stall count must be 0..15");
  last().ctrl.stall = static_cast<std::uint8_t>(cycles);
  return *this;
}
KernelBuilder& KernelBuilder::yield() {
  last().ctrl.yield = true;
  return *this;
}
KernelBuilder& KernelBuilder::write_bar(int idx) {
  check_scheduled_mode("a write barrier");
  TC_CHECK(idx >= 0 && idx < kNumBarriers, "write barrier must be 0..5");
  last().ctrl.write_barrier = static_cast<std::uint8_t>(idx);
  return *this;
}
KernelBuilder& KernelBuilder::read_bar(int idx) {
  check_scheduled_mode("a read barrier");
  TC_CHECK(idx >= 0 && idx < kNumBarriers, "read barrier must be 0..5");
  last().ctrl.read_barrier = static_cast<std::uint8_t>(idx);
  return *this;
}
KernelBuilder& KernelBuilder::wait(std::uint8_t mask) {
  check_scheduled_mode("a wait mask");
  TC_CHECK(mask < (1u << kNumBarriers), "wait mask has 6 bits");
  last().ctrl.wait_mask |= mask;
  return *this;
}
KernelBuilder& KernelBuilder::wait_on(int idx) {
  check_scheduled_mode("a wait mask");
  TC_CHECK(idx >= 0 && idx < kNumBarriers, "barrier index must be 0..5");
  last().ctrl.wait_mask |= static_cast<std::uint8_t>(1u << idx);
  return *this;
}
KernelBuilder& KernelBuilder::reuse(std::uint8_t flags) {
  check_scheduled_mode("reuse flags");
  last().ctrl.reuse = flags;
  return *this;
}
KernelBuilder& KernelBuilder::pred(Pred p, bool neg) {
  last().guard = p;
  last().guard_negated = neg;
  return *this;
}

KernelBuilder& KernelBuilder::nop() {
  push(Opcode::kNop);
  return *this;
}
KernelBuilder& KernelBuilder::mov(Reg d, Reg s) {
  auto& i = push(Opcode::kMov);
  i.dst = d;
  i.srca = s;
  return *this;
}
KernelBuilder& KernelBuilder::mov_imm(Reg d, std::int32_t imm) {
  auto& i = push(Opcode::kMov);
  i.dst = d;
  i.imm = imm;
  i.has_imm = true;
  return *this;
}
KernelBuilder& KernelBuilder::mov_param(Reg d, int param_word) {
  TC_CHECK(param_word >= 0 && param_word < 64, "param word out of range");
  auto& i = push(Opcode::kMovParam);
  i.dst = d;
  i.param_index = static_cast<std::uint16_t>(param_word);
  return *this;
}
KernelBuilder& KernelBuilder::s2r(Reg d, SpecialReg sr) {
  auto& i = push(Opcode::kS2r);
  i.dst = d;
  i.sreg = sr;
  return *this;
}
KernelBuilder& KernelBuilder::cs2r_clock(Reg d) {
  auto& i = push(Opcode::kCs2rClock);
  i.dst = d;
  return *this;
}
KernelBuilder& KernelBuilder::iadd3(Reg d, Reg a, Reg b, Reg c) {
  auto& i = push(Opcode::kIadd3);
  i.dst = d;
  i.srca = a;
  i.srcb = b;
  i.srcc = c;
  return *this;
}
KernelBuilder& KernelBuilder::iadd_imm(Reg d, Reg a, std::int32_t imm) {
  auto& i = push(Opcode::kIadd3);
  i.dst = d;
  i.srca = a;
  i.imm = imm;
  i.has_imm = true;
  return *this;
}
KernelBuilder& KernelBuilder::imad(Reg d, Reg a, Reg b, Reg c) {
  auto& i = push(Opcode::kImad);
  i.dst = d;
  i.srca = a;
  i.srcb = b;
  i.srcc = c;
  return *this;
}
KernelBuilder& KernelBuilder::imad_imm(Reg d, Reg a, std::int32_t imm, Reg c) {
  auto& i = push(Opcode::kImad);
  i.dst = d;
  i.srca = a;
  i.imm = imm;
  i.has_imm = true;
  i.srcc = c;
  return *this;
}
KernelBuilder& KernelBuilder::land(Reg d, Reg a, Reg b) {
  auto& i = push(Opcode::kLop3And);
  i.dst = d;
  i.srca = a;
  i.srcb = b;
  return *this;
}
KernelBuilder& KernelBuilder::land_imm(Reg d, Reg a, std::int32_t imm) {
  auto& i = push(Opcode::kLop3And);
  i.dst = d;
  i.srca = a;
  i.imm = imm;
  i.has_imm = true;
  return *this;
}
KernelBuilder& KernelBuilder::lor(Reg d, Reg a, Reg b) {
  auto& i = push(Opcode::kLop3Or);
  i.dst = d;
  i.srca = a;
  i.srcb = b;
  return *this;
}
KernelBuilder& KernelBuilder::lxor(Reg d, Reg a, Reg b) {
  auto& i = push(Opcode::kLop3Xor);
  i.dst = d;
  i.srca = a;
  i.srcb = b;
  return *this;
}
KernelBuilder& KernelBuilder::shl(Reg d, Reg a, int amount) {
  TC_CHECK(amount >= 0 && amount < 32, "shift amount must be 0..31");
  auto& i = push(Opcode::kShfL);
  i.dst = d;
  i.srca = a;
  i.imm = amount;
  i.has_imm = true;
  return *this;
}
KernelBuilder& KernelBuilder::shr(Reg d, Reg a, int amount) {
  TC_CHECK(amount >= 0 && amount < 32, "shift amount must be 0..31");
  auto& i = push(Opcode::kShfR);
  i.dst = d;
  i.srca = a;
  i.imm = amount;
  i.has_imm = true;
  return *this;
}
KernelBuilder& KernelBuilder::isetp(Pred p, CmpOp cmp, Reg a, Reg b) {
  TC_CHECK(!p.is_pt(), "cannot write PT");
  auto& i = push(Opcode::kIsetp);
  i.pdst = p;
  i.cmp = cmp;
  i.srca = a;
  i.srcb = b;
  return *this;
}
KernelBuilder& KernelBuilder::isetp_imm(Pred p, CmpOp cmp, Reg a, std::int32_t imm) {
  TC_CHECK(!p.is_pt(), "cannot write PT");
  auto& i = push(Opcode::kIsetp);
  i.pdst = p;
  i.cmp = cmp;
  i.srca = a;
  i.imm = imm;
  i.has_imm = true;
  return *this;
}
KernelBuilder& KernelBuilder::sel(Reg d, Pred p, Reg a, Reg b) {
  auto& i = push(Opcode::kSel);
  i.dst = d;
  i.pdst = p;
  i.srca = a;
  i.srcb = b;
  return *this;
}
KernelBuilder& KernelBuilder::fadd(Reg d, Reg a, Reg b) {
  auto& i = push(Opcode::kFadd);
  i.dst = d;
  i.srca = a;
  i.srcb = b;
  return *this;
}
KernelBuilder& KernelBuilder::fmul(Reg d, Reg a, Reg b) {
  auto& i = push(Opcode::kFmul);
  i.dst = d;
  i.srca = a;
  i.srcb = b;
  return *this;
}
KernelBuilder& KernelBuilder::ffma(Reg d, Reg a, Reg b, Reg c) {
  auto& i = push(Opcode::kFfma);
  i.dst = d;
  i.srca = a;
  i.srcb = b;
  i.srcc = c;
  return *this;
}
KernelBuilder& KernelBuilder::hfma2(Reg d, Reg a, Reg b, Reg c) {
  auto& i = push(Opcode::kHfma2);
  i.dst = d;
  i.srca = a;
  i.srcb = b;
  i.srcc = c;
  return *this;
}
KernelBuilder& KernelBuilder::hadd2(Reg d, Reg a, Reg b) {
  auto& i = push(Opcode::kHadd2);
  i.dst = d;
  i.srca = a;
  i.srcb = b;
  return *this;
}
KernelBuilder& KernelBuilder::hmul2(Reg d, Reg a, Reg b) {
  auto& i = push(Opcode::kHmul2);
  i.dst = d;
  i.srca = a;
  i.srcb = b;
  return *this;
}
KernelBuilder& KernelBuilder::hmax2(Reg d, Reg a, Reg b) {
  auto& i = push(Opcode::kHmax2);
  i.dst = d;
  i.srca = a;
  i.srcb = b;
  return *this;
}
KernelBuilder& KernelBuilder::hgelu2(Reg d, Reg a) {
  auto& i = push(Opcode::kHgelu2);
  i.dst = d;
  i.srca = a;
  return *this;
}
KernelBuilder& KernelBuilder::f2f_f16_f32(Reg d, Reg a) {
  auto& i = push(Opcode::kF2fF16ToF32);
  i.dst = d;
  i.srca = a;
  return *this;
}
KernelBuilder& KernelBuilder::f2f_f32_f16(Reg d, Reg a) {
  auto& i = push(Opcode::kF2fF32ToF16);
  i.dst = d;
  i.srca = a;
  return *this;
}

namespace {
void fill_mma(Instruction& i, Reg d, Reg a, Reg b, Reg c) {
  i.dst = d;
  i.srca = a;
  i.srcb = b;
  i.srcc = c;
}
}  // namespace

KernelBuilder& KernelBuilder::hmma_1688_f16(Reg d, Reg a, Reg b, Reg c) {
  fill_mma(push(Opcode::kHmma1688F16), d, a, b, c);
  return *this;
}
KernelBuilder& KernelBuilder::hmma_1688_f32(Reg d, Reg a, Reg b, Reg c) {
  fill_mma(push(Opcode::kHmma1688F32), d, a, b, c);
  return *this;
}
KernelBuilder& KernelBuilder::hmma_884_f16(Reg d, Reg a, Reg b, Reg c) {
  fill_mma(push(Opcode::kHmma884F16), d, a, b, c);
  return *this;
}
KernelBuilder& KernelBuilder::imma_8816_s8(Reg d, Reg a, Reg b, Reg c) {
  fill_mma(push(Opcode::kImma8816S8), d, a, b, c);
  return *this;
}

KernelBuilder& KernelBuilder::ldg(MemWidth w, Reg d, Reg addr, std::int32_t offset,
                                  CacheOp cache) {
  auto& i = push(Opcode::kLdg);
  i.width = w;
  i.dst = d;
  i.srca = addr;
  i.imm = offset;
  i.cache = cache;
  return *this;
}
KernelBuilder& KernelBuilder::stg(MemWidth w, Reg addr, Reg src, std::int32_t offset) {
  auto& i = push(Opcode::kStg);
  i.width = w;
  i.srca = addr;
  i.srcb = src;
  i.imm = offset;
  return *this;
}
KernelBuilder& KernelBuilder::lds(MemWidth w, Reg d, Reg addr, std::int32_t offset) {
  auto& i = push(Opcode::kLds);
  i.width = w;
  i.dst = d;
  i.srca = addr;
  i.imm = offset;
  return *this;
}
KernelBuilder& KernelBuilder::sts(MemWidth w, Reg addr, Reg src, std::int32_t offset) {
  auto& i = push(Opcode::kSts);
  i.width = w;
  i.srca = addr;
  i.srcb = src;
  i.imm = offset;
  return *this;
}

KernelBuilder& KernelBuilder::bar_sync() {
  push(Opcode::kBar);
  return *this;
}
KernelBuilder& KernelBuilder::bra(const std::string& lbl) {
  push(Opcode::kBra);
  fixups_.emplace_back(static_cast<int>(code_.size()) - 1, lbl);
  return *this;
}
KernelBuilder& KernelBuilder::exit() {
  push(Opcode::kExit);
  return *this;
}

KernelBuilder& KernelBuilder::label(const std::string& lbl) {
  TC_CHECK(!labels_.contains(lbl), "duplicate label: " + lbl);
  labels_[lbl] = static_cast<int>(code_.size());
  return *this;
}

KernelBuilder& KernelBuilder::smem(std::uint32_t bytes) {
  smem_bytes_ = bytes;
  return *this;
}
KernelBuilder& KernelBuilder::threads(std::uint32_t n) {
  TC_CHECK(n >= 32 && n % 32 == 0 && n <= 1024, "threads must be a multiple of 32 in [32,1024]");
  cta_threads_ = n;
  return *this;
}

Program KernelBuilder::finalize() {
  TC_CHECK(!finalized_, "builder already finalized");
  finalized_ = true;

  for (const auto& [index, lbl] : fixups_) {
    auto it = labels_.find(lbl);
    TC_CHECK(it != labels_.end(), "undefined label: " + lbl);
    code_[static_cast<std::size_t>(index)].target = it->second;
  }

  Program prog;
  prog.name = name_;
  prog.code = std::move(code_);
  prog.smem_bytes = smem_bytes_;
  prog.cta_threads = cta_threads_;

  int max_reg = -1;
  std::uint32_t max_param = 0;
  for (const auto& inst : prog.code) {
    auto track = [&](Reg r, int count) {
      if (r.is_rz()) return;
      max_reg = std::max(max_reg, static_cast<int>(r.idx) + count - 1);
    };
    if (is_mma(inst.op)) {
      const auto rc = mma_reg_counts(inst.op);
      track(inst.dst, rc.d);
      track(inst.srca, rc.a);
      track(inst.srcb, rc.b);
      track(inst.srcc, rc.c);
    } else if (inst.op == Opcode::kLdg || inst.op == Opcode::kLds) {
      track(inst.dst, width_regs(inst.width));
      track(inst.srca, 1);
    } else if (inst.op == Opcode::kStg || inst.op == Opcode::kSts) {
      track(inst.srca, 1);
      track(inst.srcb, width_regs(inst.width));
    } else {
      track(inst.dst, 1);
      track(inst.srca, 1);
      if (!inst.has_imm) track(inst.srcb, 1);
      track(inst.srcc, 1);
    }
    if (inst.op == Opcode::kMovParam) {
      max_param = std::max(max_param, static_cast<std::uint32_t>(inst.param_index) + 1);
    }
  }
  prog.num_regs = max_reg + 1;
  prog.num_param_words = max_param;

  validate(prog);
  return prog;
}

}  // namespace tc::sass
