// A compiled SASS program: the unit loaded onto the simulated device.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sass/instruction.hpp"

namespace tc::sass {

/// Immutable kernel image: instruction stream plus launch resource needs.
/// Produced by KernelBuilder::finalize(), consumed by the executor and the
/// occupancy calculator.
struct Program {
  std::string name;
  std::vector<Instruction> code;

  /// Highest general-purpose register index used, +1 (occupancy input).
  int num_regs = 0;
  /// Static shared memory per CTA in bytes.
  std::uint32_t smem_bytes = 0;
  /// Threads per CTA the kernel was written for.
  std::uint32_t cta_threads = 0;
  /// Number of 32-bit parameter words the kernel reads via MOV.PARAM.
  std::uint32_t num_param_words = 0;

  [[nodiscard]] std::string disassemble() const;
};

}  // namespace tc::sass
