#include "sass/validator.hpp"

#include <algorithm>
#include <array>

#include "common/error.hpp"

namespace tc::sass {

namespace {

void check_operand_range(const Instruction& inst, Reg r, int count, const char* what, int pc) {
  if (r.is_rz()) return;
  TC_CHECK(static_cast<int>(r.idx) + count <= kMaxRegsPerThread - 1,
           opcode_name(inst.op) + " at pc " + std::to_string(pc) + ": " + what +
               " register range exceeds R254");
  // Multi-register operands must be naturally aligned, as on hardware.
  if (count == 2) {
    TC_CHECK(r.idx % 2 == 0, opcode_name(inst.op) + " at pc " + std::to_string(pc) + ": " +
                                 what + " must be an aligned register pair");
  } else if (count == 4) {
    TC_CHECK(r.idx % 4 == 0, opcode_name(inst.op) + " at pc " + std::to_string(pc) + ": " +
                                 what + " must be an aligned register quad");
  }
}

}  // namespace

void validate(const Program& prog) {
  TC_CHECK(!prog.code.empty(), "program '" + prog.name + "' is empty");
  TC_CHECK(prog.num_regs <= kMaxRegsPerThread, "program uses more than 256 registers/thread");
  TC_CHECK(prog.smem_bytes <= kMaxSmemPerCta,
           "program requests more than 64KB shared memory per CTA");
  TC_CHECK(prog.cta_threads >= 32 && prog.cta_threads % 32 == 0 && prog.cta_threads <= 1024,
           "CTA size must be a multiple of 32 in [32,1024]");

  bool has_exit = false;
  const int n = static_cast<int>(prog.code.size());

  // Barriers armed anywhere in the program. A wait_mask bit with no setter
  // at all can never clear on hardware (the scoreboard stays at zero only
  // because nothing ever arms it — silicon blocks forever on the first
  // elevated count a rescheduled kernel produces), so it is a hard error,
  // not a lint warning. The setter may sit *after* the wait in program
  // order: loop bodies legitimately wait at the top for a load issued at
  // the bottom of the previous iteration.
  std::uint32_t barriers_ever_set = 0;
  for (const auto& inst : prog.code) {
    if (inst.ctrl.write_barrier != kNoBarrier) barriers_ever_set |= 1u << inst.ctrl.write_barrier;
    if (inst.ctrl.read_barrier != kNoBarrier) barriers_ever_set |= 1u << inst.ctrl.read_barrier;
  }

  for (int pc = 0; pc < n; ++pc) {
    const auto& inst = prog.code[static_cast<std::size_t>(pc)];
    TC_CHECK(inst.ctrl.stall <= 15, "stall count out of range");
    TC_CHECK(inst.ctrl.write_barrier == kNoBarrier || inst.ctrl.write_barrier < kNumBarriers,
             "bad write barrier index");
    TC_CHECK(inst.ctrl.read_barrier == kNoBarrier || inst.ctrl.read_barrier < kNumBarriers,
             "bad read barrier index");
    TC_CHECK(inst.ctrl.wait_mask < (1u << kNumBarriers), "bad wait mask");
    if (const std::uint32_t orphan = inst.ctrl.wait_mask & ~barriers_ever_set; orphan != 0) {
      int b = 0;
      while (((orphan >> b) & 1u) == 0) ++b;
      TC_CHECK(false, opcode_name(inst.op) + " at pc " + std::to_string(pc) +
                          " waits on scoreboard barrier B" + std::to_string(b) +
                          " that no instruction ever sets; the wait could never clear");
    }
    if (inst.ctrl.write_barrier != kNoBarrier || inst.ctrl.read_barrier != kNoBarrier) {
      TC_CHECK(is_variable_latency(inst.op),
               opcode_name(inst.op) + " at pc " + std::to_string(pc) +
                   ": scoreboard barriers are only meaningful on memory instructions");
    }

    switch (inst.op) {
      case Opcode::kExit:
        has_exit = true;
        break;
      case Opcode::kBra:
        TC_CHECK(inst.target >= 0 && inst.target < n,
                 "unresolved/out-of-range branch target at pc " + std::to_string(pc));
        break;
      case Opcode::kLdg:
      case Opcode::kLds:
        check_operand_range(inst, inst.dst, width_regs(inst.width), "destination", pc);
        check_operand_range(inst, inst.srca, 1, "address", pc);
        TC_CHECK(!inst.srca.is_rz() || inst.imm >= 0, "load from RZ with negative offset");
        break;
      case Opcode::kStg:
      case Opcode::kSts:
        check_operand_range(inst, inst.srcb, width_regs(inst.width), "source", pc);
        check_operand_range(inst, inst.srca, 1, "address", pc);
        break;
      default:
        if (is_mma(inst.op)) {
          const auto rc = mma_reg_counts(inst.op);
          TC_CHECK(!inst.dst.is_rz() && !inst.srca.is_rz() && !inst.srcb.is_rz(),
                   "MMA D/A/B operands must be real registers (C may be RZ)");
          check_operand_range(inst, inst.dst, rc.d, "D", pc);
          check_operand_range(inst, inst.srca, rc.a, "A", pc);
          check_operand_range(inst, inst.srcb, rc.b, "B", pc);
          check_operand_range(inst, inst.srcc, rc.c, "C", pc);
        } else {
          check_operand_range(inst, inst.dst, 1, "destination", pc);
        }
        break;
    }
  }
  TC_CHECK(has_exit, "program '" + prog.name + "' has no EXIT");
}

std::vector<std::string> lint(const Program& prog) {
  std::vector<std::string> warnings;
  std::uint8_t barriers_set = 0;
  std::uint8_t barriers_waited = 0;

  const int n = static_cast<int>(prog.code.size());
  for (int pc = 0; pc < n; ++pc) {
    const auto& inst = prog.code[static_cast<std::size_t>(pc)];
    if (inst.ctrl.write_barrier != kNoBarrier) {
      barriers_set |= static_cast<std::uint8_t>(1u << inst.ctrl.write_barrier);
    }
    if (inst.ctrl.read_barrier != kNoBarrier) {
      barriers_set |= static_cast<std::uint8_t>(1u << inst.ctrl.read_barrier);
    }
    barriers_waited |= inst.ctrl.wait_mask;

    const bool is_load = inst.op == Opcode::kLdg || inst.op == Opcode::kLds;
    if (is_load && !inst.dst.is_rz() && inst.ctrl.write_barrier == kNoBarrier) {
      warnings.push_back("pc " + std::to_string(pc) + ": " + opcode_name(inst.op) +
                         " writes R" + std::to_string(inst.dst.idx) +
                         " without a write barrier; consumers cannot synchronize");
    }
  }

  for (int b = 0; b < kNumBarriers; ++b) {
    const auto bit = static_cast<std::uint8_t>(1u << b);
    if ((barriers_waited & bit) && !(barriers_set & bit)) {
      warnings.push_back("barrier B" + std::to_string(b) + " is waited on but never set");
    }
    if ((barriers_set & bit) && !(barriers_waited & bit)) {
      warnings.push_back("barrier B" + std::to_string(b) + " is set but never waited on");
    }
  }
  return warnings;
}

namespace {

struct RegRange {
  int lo = 0;
  int count = 0;
};

bool overlaps(const RegRange& a, const RegRange& b) {
  return a.count > 0 && b.count > 0 && a.lo < b.lo + b.count && b.lo < a.lo + a.count;
}

std::string range_name(const RegRange& r) {
  if (r.count == 1) return "R" + std::to_string(r.lo);
  return "R" + std::to_string(r.lo) + "..R" + std::to_string(r.lo + r.count - 1);
}

/// Registers `inst` writes through the fixed-latency (non-MIO) path.
RegRange write_range(const Instruction& inst) {
  if (inst.dst.is_rz()) return {};
  switch (inst.op) {
    case Opcode::kStg:
    case Opcode::kSts:
      return {};
    case Opcode::kLdg:
    case Opcode::kLds:
      // Variable latency: scoreboard-protected, handled by base lint().
      return {};
    default:
      if (pipe_class(inst.op) == PipeClass::kControl) return {};
      if (is_mma(inst.op)) return {inst.dst.idx, mma_reg_counts(inst.op).d};
      return {inst.dst.idx, 1};
  }
}

/// Register ranges `inst` reads at issue time (up to three operand slots).
std::array<RegRange, 3> read_ranges(const Instruction& inst) {
  std::array<RegRange, 3> out{};
  int slot = 0;
  const auto add = [&](Reg r, int count) {
    if (!r.is_rz() && count > 0) out[static_cast<std::size_t>(slot++)] = {r.idx, count};
  };
  switch (inst.op) {
    case Opcode::kLdg:
    case Opcode::kLds:
      add(inst.srca, 1);
      break;
    case Opcode::kStg:
    case Opcode::kSts:
      add(inst.srca, 1);
      add(inst.srcb, width_regs(inst.width));
      break;
    default:
      if (pipe_class(inst.op) == PipeClass::kControl) break;
      if (is_mma(inst.op)) {
        const auto rc = mma_reg_counts(inst.op);
        add(inst.srca, rc.a);
        add(inst.srcb, rc.b);
        add(inst.srcc, rc.c);
      } else {
        add(inst.srca, 1);
        if (!inst.has_imm) add(inst.srcb, 1);
        add(inst.srcc, 1);
      }
      break;
  }
  return out;
}

bool reads_any(const Instruction& inst, const RegRange& w) {
  for (const auto& r : read_ranges(inst)) {
    if (overlaps(r, w)) return true;
  }
  return false;
}

}  // namespace

std::vector<std::string> lint(const Program& prog, LatencyFn latency_of) {
  std::vector<std::string> warnings;
  const int n = static_cast<int>(prog.code.size());
  if (n == 0) return warnings;

  // Straight-line segment leaders: entry, branch targets, and the
  // instruction after any control instruction (branch/barrier/exit).
  std::vector<char> leader(static_cast<std::size_t>(n), 0);
  leader[0] = 1;
  for (int pc = 0; pc < n; ++pc) {
    const auto& inst = prog.code[static_cast<std::size_t>(pc)];
    if (inst.op == Opcode::kBra && inst.target >= 0 && inst.target < n) {
      leader[static_cast<std::size_t>(inst.target)] = 1;
    }
    if (pipe_class(inst.op) == PipeClass::kControl && pc + 1 < n) {
      leader[static_cast<std::size_t>(pc + 1)] = 1;
    }
  }

  const auto at = [&](int pc) -> const Instruction& {
    return prog.code[static_cast<std::size_t>(pc)];
  };

  int s = 0;
  while (s < n) {
    int e = s;
    while (e + 1 < n && !leader[static_cast<std::size_t>(e + 1)]) ++e;

    // Static issue times within the segment: t[i - s] is when instruction i
    // issues relative to the segment start, assuming no scoreboard waits
    // fire. Waits only ever ADD time, so these are lower bounds — which
    // makes excess-slack findings safe, and under-protection findings valid
    // exactly when no wait mask sits on the consumer path.
    std::vector<std::int64_t> t(static_cast<std::size_t>(e - s + 2), 0);
    for (int i = s; i <= e; ++i) {
      t[static_cast<std::size_t>(i - s + 1)] =
          t[static_cast<std::size_t>(i - s)] + std::max<int>(at(i).ctrl.stall, 1);
    }
    const auto& last = at(e);
    const bool self_loop = last.op == Opcode::kBra && last.target == s;

    for (int i = s; i <= e; ++i) {
      const auto& pinst = at(i);
      const RegRange w = write_range(pinst);
      if (w.count == 0) continue;
      int lat = 0;
      for (int off = 0; off < w.count; ++off) lat = std::max(lat, latency_of(pinst, off));

      bool waits = false;
      bool resolved = false;
      for (int j = i + 1; j <= e && !resolved; ++j) {
        const auto& cinst = at(j);
        if (cinst.ctrl.wait_mask != 0) waits = true;
        if (reads_any(cinst, w)) {
          const std::int64_t gap =
              t[static_cast<std::size_t>(j - s)] - t[static_cast<std::size_t>(i - s)];
          if (gap < lat) {
            if (!waits) {
              warnings.push_back(
                  "pc " + std::to_string(i) + " (" + opcode_name(pinst.op) + "): " +
                  range_name(w) + " read at pc " + std::to_string(j) + " only " +
                  std::to_string(gap) + " cycles after issue but ready after " +
                  std::to_string(lat) + "; under-protected by " + std::to_string(lat - gap) +
                  " cycles");
            }
          } else {
            // Each intermediate instruction needs >= 1 issue slot, so only
            // the (stall - 1) surplus of each is removable.
            const std::int64_t reducible = gap - (j - i);
            const std::int64_t excess = std::min(gap - lat, reducible);
            if (excess > 0) {
              warnings.push_back(
                  "pc " + std::to_string(i) + " (" + opcode_name(pinst.op) + "): " +
                  range_name(w) + " ready after " + std::to_string(lat) +
                  " cycles but first consumer at pc " + std::to_string(j) + " issues " +
                  std::to_string(gap) + " cycles later; " + std::to_string(excess) +
                  " cycles of excess stall slack");
            }
          }
          resolved = true;
        } else if (overlaps(write_range(cinst), w)) {
          resolved = true;  // overwritten before any read: dependency dead
        }
      }

      // Loop-carried check for single-block loops: the first consumer may be
      // at the top of the next iteration. Only under-protection is reported
      // (slack across a back edge is not removable per-instruction). The scan
      // includes j == i: a single-instruction loop body that reads its own
      // destination depends on itself across the back edge, with exactly one
      // full trip (loop_len) between issue and re-read.
      if (!resolved && self_loop) {
        const std::int64_t loop_len = t[static_cast<std::size_t>(e - s + 1)];
        for (int j = s; j <= i && !resolved; ++j) {
          const auto& cinst = at(j);
          if (cinst.ctrl.wait_mask != 0) waits = true;
          if (reads_any(cinst, w)) {
            const std::int64_t gap = loop_len - t[static_cast<std::size_t>(i - s)] +
                                     t[static_cast<std::size_t>(j - s)];
            if (gap < lat && !waits) {
              warnings.push_back(
                  "pc " + std::to_string(i) + " (" + opcode_name(pinst.op) + "): " +
                  range_name(w) + " read at pc " + std::to_string(j) +
                  " across the loop back-edge only " + std::to_string(gap) +
                  " cycles after issue but ready after " + std::to_string(lat) +
                  "; under-protected by " + std::to_string(lat - gap) + " cycles");
            }
            resolved = true;
          } else if (overlaps(write_range(cinst), w)) {
            resolved = true;
          }
        }
      }
    }
    s = e + 1;
  }
  return warnings;
}

}  // namespace tc::sass
