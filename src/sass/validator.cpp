#include "sass/validator.hpp"

#include "common/error.hpp"

namespace tc::sass {

namespace {

void check_operand_range(const Instruction& inst, Reg r, int count, const char* what, int pc) {
  if (r.is_rz()) return;
  TC_CHECK(static_cast<int>(r.idx) + count <= kMaxRegsPerThread - 1,
           opcode_name(inst.op) + " at pc " + std::to_string(pc) + ": " + what +
               " register range exceeds R254");
  // Multi-register operands must be naturally aligned, as on hardware.
  if (count == 2) {
    TC_CHECK(r.idx % 2 == 0, opcode_name(inst.op) + " at pc " + std::to_string(pc) + ": " +
                                 what + " must be an aligned register pair");
  } else if (count == 4) {
    TC_CHECK(r.idx % 4 == 0, opcode_name(inst.op) + " at pc " + std::to_string(pc) + ": " +
                                 what + " must be an aligned register quad");
  }
}

}  // namespace

void validate(const Program& prog) {
  TC_CHECK(!prog.code.empty(), "program '" + prog.name + "' is empty");
  TC_CHECK(prog.num_regs <= kMaxRegsPerThread, "program uses more than 256 registers/thread");
  TC_CHECK(prog.smem_bytes <= kMaxSmemPerCta,
           "program requests more than 64KB shared memory per CTA");
  TC_CHECK(prog.cta_threads >= 32 && prog.cta_threads % 32 == 0 && prog.cta_threads <= 1024,
           "CTA size must be a multiple of 32 in [32,1024]");

  bool has_exit = false;
  const int n = static_cast<int>(prog.code.size());
  for (int pc = 0; pc < n; ++pc) {
    const auto& inst = prog.code[static_cast<std::size_t>(pc)];
    TC_CHECK(inst.ctrl.stall <= 15, "stall count out of range");
    TC_CHECK(inst.ctrl.write_barrier == kNoBarrier || inst.ctrl.write_barrier < kNumBarriers,
             "bad write barrier index");
    TC_CHECK(inst.ctrl.read_barrier == kNoBarrier || inst.ctrl.read_barrier < kNumBarriers,
             "bad read barrier index");
    TC_CHECK(inst.ctrl.wait_mask < (1u << kNumBarriers), "bad wait mask");
    if (inst.ctrl.write_barrier != kNoBarrier || inst.ctrl.read_barrier != kNoBarrier) {
      TC_CHECK(is_variable_latency(inst.op),
               opcode_name(inst.op) + " at pc " + std::to_string(pc) +
                   ": scoreboard barriers are only meaningful on memory instructions");
    }

    switch (inst.op) {
      case Opcode::kExit:
        has_exit = true;
        break;
      case Opcode::kBra:
        TC_CHECK(inst.target >= 0 && inst.target < n,
                 "unresolved/out-of-range branch target at pc " + std::to_string(pc));
        break;
      case Opcode::kLdg:
      case Opcode::kLds:
        check_operand_range(inst, inst.dst, width_regs(inst.width), "destination", pc);
        check_operand_range(inst, inst.srca, 1, "address", pc);
        TC_CHECK(!inst.srca.is_rz() || inst.imm >= 0, "load from RZ with negative offset");
        break;
      case Opcode::kStg:
      case Opcode::kSts:
        check_operand_range(inst, inst.srcb, width_regs(inst.width), "source", pc);
        check_operand_range(inst, inst.srca, 1, "address", pc);
        break;
      default:
        if (is_mma(inst.op)) {
          const auto rc = mma_reg_counts(inst.op);
          TC_CHECK(!inst.dst.is_rz() && !inst.srca.is_rz() && !inst.srcb.is_rz(),
                   "MMA D/A/B operands must be real registers (C may be RZ)");
          check_operand_range(inst, inst.dst, rc.d, "D", pc);
          check_operand_range(inst, inst.srca, rc.a, "A", pc);
          check_operand_range(inst, inst.srcb, rc.b, "B", pc);
          check_operand_range(inst, inst.srcc, rc.c, "C", pc);
        } else {
          check_operand_range(inst, inst.dst, 1, "destination", pc);
        }
        break;
    }
  }
  TC_CHECK(has_exit, "program '" + prog.name + "' has no EXIT");
}

std::vector<std::string> lint(const Program& prog) {
  std::vector<std::string> warnings;
  std::uint8_t barriers_set = 0;
  std::uint8_t barriers_waited = 0;

  const int n = static_cast<int>(prog.code.size());
  for (int pc = 0; pc < n; ++pc) {
    const auto& inst = prog.code[static_cast<std::size_t>(pc)];
    if (inst.ctrl.write_barrier != kNoBarrier) {
      barriers_set |= static_cast<std::uint8_t>(1u << inst.ctrl.write_barrier);
    }
    if (inst.ctrl.read_barrier != kNoBarrier) {
      barriers_set |= static_cast<std::uint8_t>(1u << inst.ctrl.read_barrier);
    }
    barriers_waited |= inst.ctrl.wait_mask;

    const bool is_load = inst.op == Opcode::kLdg || inst.op == Opcode::kLds;
    if (is_load && !inst.dst.is_rz() && inst.ctrl.write_barrier == kNoBarrier) {
      warnings.push_back("pc " + std::to_string(pc) + ": " + opcode_name(inst.op) +
                         " writes R" + std::to_string(inst.dst.idx) +
                         " without a write barrier; consumers cannot synchronize");
    }
  }

  for (int b = 0; b < kNumBarriers; ++b) {
    const auto bit = static_cast<std::uint8_t>(1u << b);
    if ((barriers_waited & bit) && !(barriers_set & bit)) {
      warnings.push_back("barrier B" + std::to_string(b) + " is waited on but never set");
    }
    if ((barriers_set & bit) && !(barriers_waited & bit)) {
      warnings.push_back("barrier B" + std::to_string(b) + " is set but never waited on");
    }
  }
  return warnings;
}

}  // namespace tc::sass
