// The single shared latency table of the modeled Turing SM.
//
// Every layer that reasons about *when a result becomes readable* — the timed
// simulator (sim/pipes), the static hazard detector (check/hazard), the
// stall-slack lint (sass/validator), and the control-word scheduler
// (sched/schedule) — consumes these constants. They used to be duplicated
// between sim/pipes.hpp and check::LatencyModel; keeping one copy here is
// what makes "scheduler output is hazard-free by the detector's rules, and
// correct under the simulator's rules" a single coherent claim.
//
// Sources (paper Table I and Section IV):
//  * ALU / FMA results land 6 cycles after issue.
//  * S2R / CS2R / param reads land 12 cycles after issue.
//  * HMMA destination halves land 10 (low) / 14 (high) cycles after issue.
//  * Predicates written by ISETP travel the ALU path: 6 cycles.
//  * A taken branch blocks further issue for 10 cycles (fetch redirect).
#pragma once

#include "sass/instruction.hpp"

namespace tc::sass {

inline constexpr int kAluLatency = 6;
inline constexpr int kFmaLatency = 6;
inline constexpr int kSpecialLatency = 12;  // S2R / CS2R / param reads
/// HMMA destination halves (paper Table I).
inline constexpr int kMmaLatencyLow = 10;
inline constexpr int kMmaLatencyHigh = 14;
/// ISETP results travel the ALU datapath; guards read them at issue.
inline constexpr int kPredicateLatency = kAluLatency;
/// Cycles a taken branch blocks further issue of its warp (fetch redirect).
inline constexpr int kBranchRedirectCycles = 10;

/// Signature shared by every latency oracle: cycles from issue until
/// destination register `dst + dreg_offset` of `inst` holds the result.
using LatencyFn = int (*)(const Instruction& inst, int dreg_offset);

/// The table above as a LatencyFn. Memory loads are variable-latency and are
/// protected by scoreboard barriers, not stalls; for them this returns the
/// fixed-pipe default, which callers must not rely on.
[[nodiscard]] int fixed_latency(const Instruction& inst, int dreg_offset);

}  // namespace tc::sass
