// Textual rendering of instructions and programs (turingas-style syntax).
#include <sstream>

#include "sass/instruction.hpp"
#include "sass/program.hpp"

namespace tc::sass {

namespace {

std::string reg_name(Reg r) { return r.is_rz() ? "RZ" : "R" + std::to_string(r.idx); }
std::string pred_name(Pred p) { return p.is_pt() ? "PT" : "P" + std::to_string(p.idx); }

std::string mem_ref(const Instruction& i) {
  std::ostringstream os;
  os << "[" << reg_name(i.srca);
  if (i.imm != 0) {
    os << (i.imm > 0 ? "+" : "-") << "0x" << std::hex << std::abs(i.imm);
  }
  os << "]";
  return os.str();
}

std::string ctrl_str(const ControlInfo& c) {
  std::ostringstream os;
  os << "{S:" << static_cast<int>(c.stall);
  if (c.yield) os << " Y";
  if (c.write_barrier != kNoBarrier) os << " WB" << static_cast<int>(c.write_barrier);
  if (c.read_barrier != kNoBarrier) os << " RB" << static_cast<int>(c.read_barrier);
  if (c.wait_mask != 0) {
    os << " W:";
    for (int b = 0; b < kNumBarriers; ++b) {
      if (c.wait_mask & (1u << b)) os << b;
    }
  }
  if (c.reuse != 0) os << " RU:" << static_cast<int>(c.reuse);
  os << "}";
  return os.str();
}

}  // namespace

std::string Instruction::to_string() const {
  std::ostringstream os;
  if (!guard.is_pt() || guard_negated) {
    os << "@" << (guard_negated ? "!" : "") << pred_name(guard) << " ";
  }

  switch (op) {
    case Opcode::kLdg:
      os << "LDG." << static_cast<int>(width) << (cache == CacheOp::kCg ? ".CG " : " ")
         << reg_name(dst) << ", " << mem_ref(*this);
      break;
    case Opcode::kStg:
      os << "STG." << static_cast<int>(width) << " " << mem_ref(*this) << ", " << reg_name(srcb);
      break;
    case Opcode::kLds:
      os << "LDS." << static_cast<int>(width) << " " << reg_name(dst) << ", " << mem_ref(*this);
      break;
    case Opcode::kSts:
      os << "STS." << static_cast<int>(width) << " " << mem_ref(*this) << ", " << reg_name(srcb);
      break;
    case Opcode::kMov:
      os << "MOV " << reg_name(dst) << ", ";
      if (has_imm) {
        os << "0x" << std::hex << imm;
      } else {
        os << reg_name(srca);
      }
      break;
    case Opcode::kMovParam:
      os << "MOV " << reg_name(dst) << ", c[0x0][" << param_index << "]";
      break;
    case Opcode::kS2r:
      os << "S2R " << reg_name(dst) << ", " << special_name(sreg);
      break;
    case Opcode::kCs2rClock:
      os << "CS2R " << reg_name(dst) << ", SR_CLOCKLO";
      break;
    case Opcode::kIsetp:
      os << "ISETP." << cmp_name(cmp) << " " << pred_name(pdst) << ", " << reg_name(srca) << ", ";
      if (has_imm) {
        os << imm;
      } else {
        os << reg_name(srcb);
      }
      break;
    case Opcode::kSel:
      os << "SEL " << reg_name(dst) << ", " << pred_name(pdst) << ", " << reg_name(srca) << ", "
         << reg_name(srcb);
      break;
    case Opcode::kBra:
      os << "BRA " << target;
      break;
    case Opcode::kBar:
      os << "BAR.SYNC 0x0";
      break;
    case Opcode::kExit:
      os << "EXIT";
      break;
    case Opcode::kNop:
      os << "NOP";
      break;
    default:
      os << opcode_name(op) << " ";
      if (is_mma(op)) {
        os << reg_name(dst) << ", " << reg_name(srca) << ", " << reg_name(srcb) << ", "
           << reg_name(srcc);
      } else {
        os << reg_name(dst) << ", " << reg_name(srca);
        if (has_imm) {
          os << ", 0x" << std::hex << imm;
        } else if (!srcb.is_rz() || op == Opcode::kIadd3 || op == Opcode::kImad) {
          os << ", " << reg_name(srcb);
        }
        if (op == Opcode::kIadd3 || op == Opcode::kImad || op == Opcode::kFfma ||
            op == Opcode::kHfma2) {
          os << ", " << reg_name(srcc);
        }
      }
      break;
  }
  os << " ; " << ctrl_str(ctrl);
  return os.str();
}

std::string Program::disassemble() const {
  std::ostringstream os;
  os << "// kernel " << name << ": regs=" << num_regs << " smem=" << smem_bytes
     << "B threads=" << cta_threads << "\n";
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    os << "/*" << pc << "*/\t" << code[pc].to_string() << "\n";
  }
  return os.str();
}

}  // namespace tc::sass
