// Static validation of SASS programs.
//
// validate() enforces hard rules (register alignment and bounds, resolved
// branch targets, resource limits) and throws tc::Error on violation.
// lint() reports scheduling hazards that are legal but usually wrong —
// e.g. a load whose write barrier nobody waits on — so kernel generators and
// tests can assert clean schedules while microbenchmarks (which deliberately
// do not wait) stay expressible.
#pragma once

#include <string>
#include <vector>

#include "sass/program.hpp"

namespace tc::sass {

/// Hardware limits of the modeled Turing SM (per-thread / per-CTA).
inline constexpr int kMaxRegsPerThread = 256;  // R0..R254 + RZ
inline constexpr std::uint32_t kMaxSmemPerCta = 64 * 1024;

/// Throws tc::Error on the first hard violation.
void validate(const Program& prog);

/// Returns human-readable scheduling warnings (empty = clean).
std::vector<std::string> lint(const Program& prog);

}  // namespace tc::sass
