// Static validation of SASS programs.
//
// validate() enforces hard rules (register alignment and bounds, resolved
// branch targets, resource limits) and throws tc::Error on violation.
// lint() reports scheduling hazards that are legal but usually wrong —
// e.g. a load whose write barrier nobody waits on — so kernel generators and
// tests can assert clean schedules while microbenchmarks (which deliberately
// do not wait) stay expressible.
#pragma once

#include <string>
#include <vector>

#include "sass/latency.hpp"
#include "sass/program.hpp"

namespace tc::sass {

/// Hardware limits of the modeled Turing SM (per-thread / per-CTA).
inline constexpr int kMaxRegsPerThread = 256;  // R0..R254 + RZ
inline constexpr std::uint32_t kMaxSmemPerCta = 64 * 1024;

/// Throws tc::Error on the first hard violation.
void validate(const Program& prog);

/// Returns human-readable scheduling warnings (empty = clean).
std::vector<std::string> lint(const Program& prog);

/// Stall-slack analysis on top of lint(): for every fixed-latency
/// producer/first-consumer pair inside a straight-line segment it compares
/// the statically scheduled issue-time gap against the latency table and
/// reports
///  * EXCESS slack — the stall counts delay the consumer beyond the
///    producer's latency AND the spare cycles could be removed (scoreboard
///    waits only ever add time, so the static gap is a lower bound and
///    excess reports are safe);
///  * UNDER-protection — the consumer issues before the producer's result is
///    ready and no intervening instruction carries a wait mask that could
///    close the gap at run time (i.e. the stale read will really happen).
/// Segments are bounded by branch targets and control instructions; a
/// single-block loop (backward branch to its own start) is additionally
/// checked across the back edge for under-protection.
std::vector<std::string> lint(const Program& prog, LatencyFn latency_of);

}  // namespace tc::sass
