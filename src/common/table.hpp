// Minimal fixed-width table/CSV printer for the bench binaries.
//
// Every bench prints the same rows/series the paper's tables and figures
// report; TablePrinter keeps that output aligned and machine-greppable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tc {

/// Collects rows of strings and renders them as an aligned text table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a header rule.
  void print(std::ostream& os) const;

  /// Renders as CSV (for plotting scripts).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` places, trimming noise ("8.06", "59.7").
std::string fmt_fixed(double v, int digits);

}  // namespace tc
