// Error handling primitives shared by every tcgemm module.
//
// The library throws `tc::Error` (derived from std::runtime_error) for
// programmer-visible failures: malformed SASS, invalid launch configs,
// out-of-range memory accesses on the simulated device, and so on.
// Internal invariants use TC_ASSERT which also throws (so tests can assert
// on failures without aborting the process).
#pragma once

#include <stdexcept>
#include <string>

namespace tc {

/// Exception type thrown by all tcgemm components.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_error(const char* file, int line, const std::string& msg) {
  throw Error(std::string(file) + ":" + std::to_string(line) + ": " + msg);
}
}  // namespace detail

}  // namespace tc

/// Check a condition that reflects API misuse or simulated-program error.
#define TC_CHECK(cond, msg)                                            \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::tc::detail::throw_error(__FILE__, __LINE__, std::string(msg)); \
    }                                                                  \
  } while (0)

/// Check an internal invariant of the library itself.
#define TC_ASSERT(cond, msg) TC_CHECK(cond, std::string("internal: ") + (msg))
