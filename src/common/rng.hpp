// Deterministic random number generation for tests, workloads and benches.
//
// All randomness in tcgemm flows through Rng so that every experiment is
// reproducible from a seed printed in its output. The engine is
// xoshiro256** (public domain, Blackman & Vigna).
#pragma once

#include <cstdint>
#include <vector>

#include "common/half.hpp"

namespace tc {

/// Seeded xoshiro256** generator with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform float in [lo, hi).
  float next_float(float lo = 0.0f, float hi = 1.0f);

  /// A half drawn uniformly from [lo, hi) then rounded to binary16.
  half next_half(float lo = -1.0f, float hi = 1.0f);

  /// Fills a vector with halves in [lo, hi). Values are kept small so FP16
  /// GEMM accumulation does not overflow for the sizes used in experiments.
  std::vector<half> half_vector(std::size_t n, float lo = -1.0f, float hi = 1.0f);

 private:
  std::uint64_t s_[4];
};

}  // namespace tc
