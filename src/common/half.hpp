// IEEE 754 binary16 ("half") implemented in software.
//
// Turing Tensor Cores consume FP16 operands; this type is the element type of
// every simulated matrix and register in tcgemm. Conversions are bit-exact:
// float -> half uses round-to-nearest-even including subnormals, overflow to
// infinity, and NaN preservation; half -> float is exact. Arithmetic is
// performed by converting to float, operating, and rounding back — the same
// semantics as scalar HADD/HMUL on the device.
#pragma once

#include <cmath>
#include <cstdint>
#include <iosfwd>
#include <limits>

namespace tc {

/// IEEE binary16 value. POD, 2 bytes, safe to memcpy into simulated memory.
class half {
 public:
  constexpr half() = default;

  /// Converts from float with round-to-nearest-even.
  explicit half(float f) : bits_(from_float_bits(f)) {}

  /// Reinterprets a raw 16-bit pattern as a half.
  static constexpr half from_bits(std::uint16_t b) {
    half h;
    h.bits_ = b;
    return h;
  }

  /// Exact widening conversion.
  [[nodiscard]] float to_float() const;
  explicit operator float() const { return to_float(); }

  [[nodiscard]] constexpr std::uint16_t bits() const { return bits_; }

  [[nodiscard]] bool is_nan() const {
    return (bits_ & 0x7C00u) == 0x7C00u && (bits_ & 0x03FFu) != 0;
  }
  [[nodiscard]] bool is_inf() const { return (bits_ & 0x7FFFu) == 0x7C00u; }
  [[nodiscard]] bool is_zero() const { return (bits_ & 0x7FFFu) == 0; }
  [[nodiscard]] bool signbit() const { return (bits_ & 0x8000u) != 0; }

  /// Round-to-nearest-even conversion of a float to binary16 bits.
  static std::uint16_t from_float_bits(float f);

  friend bool operator==(half a, half b) {
    if (a.is_nan() || b.is_nan()) return false;
    if (a.is_zero() && b.is_zero()) return true;  // +0 == -0
    return a.bits_ == b.bits_;
  }
  friend bool operator!=(half a, half b) { return !(a == b); }
  friend bool operator<(half a, half b) { return a.to_float() < b.to_float(); }
  friend bool operator<=(half a, half b) { return a.to_float() <= b.to_float(); }
  friend bool operator>(half a, half b) { return a.to_float() > b.to_float(); }
  friend bool operator>=(half a, half b) { return a.to_float() >= b.to_float(); }

  friend half operator+(half a, half b) { return half(a.to_float() + b.to_float()); }
  friend half operator-(half a, half b) { return half(a.to_float() - b.to_float()); }
  friend half operator*(half a, half b) { return half(a.to_float() * b.to_float()); }
  friend half operator/(half a, half b) { return half(a.to_float() / b.to_float()); }
  friend half operator-(half a) { return from_bits(static_cast<std::uint16_t>(a.bits_ ^ 0x8000u)); }

  half& operator+=(half o) { return *this = *this + o; }
  half& operator-=(half o) { return *this = *this - o; }
  half& operator*=(half o) { return *this = *this * o; }

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(half) == 2, "half must be exactly 2 bytes");

/// Fused multiply-add in FP32 then rounded once to FP16: the rounding model of
/// HFMA2 and of the .F16 Tensor Core accumulate step used by this simulator.
half fma_round_half(half a, half b, half c);

/// IEEE-754 maxNum over halves: a NaN input yields the other operand, and
/// max(-0, +0) is +0 — which makes HMAX2 against RZ an exact ReLU.
half max_half(half a, half b);

/// Exact GELU (0.5*x*(1+erf(x/sqrt(2)))) evaluated in double precision with a
/// series-based erf (no libm transcendentals, so the result is bit-identical
/// across hosts) and rounded once to half: the semantics of HGELU2, the
/// simulator's model of the device's MUFU-based epilogue sequence.
half gelu_half(half x);

std::ostream& operator<<(std::ostream& os, half h);

/// Two packed halves — the contents of one 32-bit register lane holding FP16
/// data (lo = element 0, hi = element 1), matching the device's half2 packing.
struct half2 {
  half lo;
  half hi;

  constexpr half2() = default;
  half2(half l, half h) : lo(l), hi(h) {}

  /// Packs into the 32-bit register image (lo in bits [15:0]).
  [[nodiscard]] std::uint32_t pack() const {
    return static_cast<std::uint32_t>(lo.bits()) |
           (static_cast<std::uint32_t>(hi.bits()) << 16);
  }
  static half2 unpack(std::uint32_t word) {
    return {half::from_bits(static_cast<std::uint16_t>(word & 0xFFFFu)),
            half::from_bits(static_cast<std::uint16_t>(word >> 16))};
  }
};

}  // namespace tc

namespace std {
template <>
class numeric_limits<tc::half> {
 public:
  static constexpr bool is_specialized = true;
  static constexpr bool is_signed = true;
  static constexpr bool is_integer = false;
  static constexpr bool is_exact = false;
  static constexpr bool has_infinity = true;
  static constexpr bool has_quiet_NaN = true;
  static constexpr int digits = 11;        // implicit bit + 10 mantissa bits
  static constexpr int max_exponent = 16;  // 2^15 < max < 2^16
  static constexpr int min_exponent = -13;
  static tc::half max() { return tc::half::from_bits(0x7BFF); }        // 65504
  static tc::half min() { return tc::half::from_bits(0x0400); }        // 2^-14
  static tc::half denorm_min() { return tc::half::from_bits(0x0001); }  // 2^-24
  static tc::half lowest() { return tc::half::from_bits(0xFBFF); }
  static tc::half epsilon() { return tc::half::from_bits(0x1400); }  // 2^-10
  static tc::half infinity() { return tc::half::from_bits(0x7C00); }
  static tc::half quiet_NaN() { return tc::half::from_bits(0x7E00); }
};
}  // namespace std
