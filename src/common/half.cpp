#include "common/half.hpp"

#include <bit>
#include <cstring>
#include <ostream>

namespace tc {

float half::to_float() const {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits_ >> 15) & 1u;
  const std::uint32_t exp = static_cast<std::uint32_t>(bits_ >> 10) & 0x1Fu;
  const std::uint32_t man = bits_ & 0x3FFu;

  std::uint32_t out;
  if (exp == 0) {
    if (man == 0) {
      out = sign << 31;  // signed zero
    } else {
      // Subnormal: normalize into the float domain.
      int e = -1;
      std::uint32_t m = man;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      const std::uint32_t fexp = static_cast<std::uint32_t>(127 - 15 - e);
      const std::uint32_t fman = (m & 0x3FFu) << 13;
      out = (sign << 31) | (fexp << 23) | fman;
    }
  } else if (exp == 0x1F) {
    out = (sign << 31) | 0x7F800000u | (man << 13);  // inf / NaN
  } else {
    out = (sign << 31) | ((exp - 15 + 127) << 23) | (man << 13);
  }
  return std::bit_cast<float>(out);
}

std::uint16_t half::from_float_bits(float f) {
  const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::uint32_t aexp = (x >> 23) & 0xFFu;
  const std::uint32_t aman = x & 0x7FFFFFu;

  if (aexp == 0xFF) {  // inf or NaN
    if (aman == 0) return static_cast<std::uint16_t>(sign | 0x7C00u);
    // NaN: keep the top 10 payload bits untouched so half -> float -> half
    // round-trips bit-exactly (signalling NaNs included). Only when the
    // surviving bits are all zero — which would read back as infinity — do
    // we substitute the canonical quiet NaN.
    std::uint32_t payload = aman >> 13;
    if (payload == 0) payload = 0x200u;
    return static_cast<std::uint16_t>(sign | 0x7C00u | payload);
  }

  const int e = static_cast<int>(aexp) - 127 + 15;  // rebased exponent
  if (e >= 0x1F) return static_cast<std::uint16_t>(sign | 0x7C00u);  // overflow -> inf

  // Mantissa with implicit bit, in a 24-bit field.
  std::uint32_t man = aman | (aexp != 0 ? 0x800000u : 0u);
  int shift = 13;  // bits to drop for a normal result
  int hexp = e;
  if (e <= 0) {
    // Result is subnormal (or underflows to zero): shift further right.
    shift += 1 - e;
    hexp = 0;
    if (shift > 24 + 1) return static_cast<std::uint16_t>(sign);  // -> 0
  }

  const std::uint32_t kept = man >> shift;
  const std::uint32_t round_bit = (man >> (shift - 1)) & 1u;
  const std::uint32_t sticky = (man & ((1u << (shift - 1)) - 1u)) != 0 ? 1u : 0u;

  std::uint32_t h = (static_cast<std::uint32_t>(hexp) << 10) | (kept & 0x3FFu);
  if (hexp == 0) h = kept;  // subnormal: no exponent bits, kept includes them
  // Round to nearest even.
  if (round_bit && (sticky || (h & 1u))) {
    ++h;  // may carry into the exponent, which is exactly correct behaviour
  }
  if (h >= 0x7C00u) h = 0x7C00u;  // rounded up to infinity
  return static_cast<std::uint16_t>(sign | h);
}

half fma_round_half(half a, half b, half c) {
  return half(std::fma(a.to_float(), b.to_float(), c.to_float()));
}

half max_half(half a, half b) {
  if (a.is_nan()) return b;
  if (b.is_nan()) return a;
  // to_float is exact, and strict `>` resolves max(-0, +0) to the second
  // operand — i.e. +0 when the zero register supplies it (ReLU flushes -0).
  return a.to_float() > b.to_float() ? a : b;
}

namespace {

/// erf via its Maclaurin series, using only double +,-,*,/ so the value is
/// bit-deterministic across hosts (std::erf is libm- and platform-dependent).
/// Absolute error stays under ~1e-6 for |x| <= 4.7, orders of magnitude below
/// half-precision resolution; beyond that erf saturates to +-1 (erfc < 1e-10).
double erf_series(double x) {
  const double ax = x < 0 ? -x : x;
  if (ax > 4.7) return x < 0 ? -1.0 : 1.0;
  const double x2 = x * x;
  double term = x;  // (-1)^n * x^(2n+1) / n!
  double sum = 0.0;
  for (int n = 0; n < 96; ++n) {
    sum += term / (2 * n + 1);
    term = -term * x2 / (n + 1);
    if (term < 1e-18 && term > -1e-18) break;
  }
  constexpr double kTwoOverSqrtPi = 1.1283791670955126;
  return sum * kTwoOverSqrtPi;
}

}  // namespace

half gelu_half(half x) {
  if (x.is_nan()) return x;
  const double xf = static_cast<double>(x.to_float());
  // Deep negative tail: the exact value is below half's smallest subnormal,
  // and the -inf*0 form would otherwise manufacture a NaN.
  if (xf <= -6.5) return half::from_bits(0x8000);  // -0
  constexpr double kInvSqrt2 = 0.7071067811865476;
  const double g = 0.5 * xf * (1.0 + erf_series(xf * kInvSqrt2));
  return half(static_cast<float>(g));
}

std::ostream& operator<<(std::ostream& os, half h) { return os << h.to_float(); }

}  // namespace tc
