// Host-side matrix containers used by the HGEMM API, reference GEMM, tests
// and workload generators.
//
// Storage convention follows the paper's evaluation setup (Section VII):
// A (m x k) is row-major, B (n x k holding B^T, i.e. B column-major from the
// GEMM's point of view), C (m x n) row-major. HostMatrix carries an explicit
// Layout so the same container expresses all three.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "common/half.hpp"
#include "common/rng.hpp"

namespace tc {

enum class Layout { kRowMajor, kColMajor };

/// Owning dense matrix with an explicit storage layout.
template <typename T>
class HostMatrix {
 public:
  HostMatrix() = default;
  HostMatrix(std::size_t rows, std::size_t cols, Layout layout = Layout::kRowMajor)
      : rows_(rows), cols_(cols), layout_(layout), data_(rows * cols) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] Layout layout() const { return layout_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t size_bytes() const { return data_.size() * sizeof(T); }

  [[nodiscard]] std::size_t index(std::size_t r, std::size_t c) const {
    TC_CHECK(r < rows_ && c < cols_, "matrix index out of range");
    return layout_ == Layout::kRowMajor ? r * cols_ + c : c * rows_ + r;
  }

  T& at(std::size_t r, std::size_t c) { return data_[index(r, c)]; }
  const T& at(std::size_t r, std::size_t c) const { return data_[index(r, c)]; }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  void fill(T value) {
    for (auto& x : data_) x = value;
  }

  /// Fills with deterministic uniform values from `rng`.
  void randomize(Rng& rng, float lo = -1.0f, float hi = 1.0f) {
    for (auto& x : data_) x = T(rng.next_float(lo, hi));
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Layout layout_ = Layout::kRowMajor;
  std::vector<T> data_;
};

using HalfMatrix = HostMatrix<half>;
using FloatMatrix = HostMatrix<float>;

/// Problem size in the paper's m x n x k convention: C(m x n) = A(m x k) B(k x n).
struct GemmShape {
  std::size_t m = 0;
  std::size_t n = 0;
  std::size_t k = 0;

  [[nodiscard]] double flops() const {
    return 2.0 * static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(k);
  }
  friend bool operator==(const GemmShape&, const GemmShape&) = default;
};

}  // namespace tc
