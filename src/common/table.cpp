#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/error.hpp"

namespace tc {

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {
  TC_CHECK(!header_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  TC_CHECK(cells.size() == header_.size(), "row arity must match header");
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c == 0 ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void TablePrinter::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) os << (c == 0 ? "" : ",") << row[c];
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt_fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

}  // namespace tc
