// Minimal recursive-descent JSON parser (header-only, no dependencies).
//
// The read-side counterpart of common/json.hpp, used by the golden-file
// regression tests to load bench --json output back in and compare it with
// tolerance. Accepts exactly the subset the repo's writer emits (RFC 8259
// minus \uXXXX escapes beyond the control-character form the writer
// produces); malformed input trips TC_CHECK with a byte offset.
#pragma once

#include <cctype>
#include <charconv>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"

namespace tc {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue, std::less<>>;

/// A parsed JSON document node. Accessors TC_CHECK the type so tests fail
/// with a message instead of a variant exception.
class JsonValue {
 public:
  JsonValue() = default;
  explicit JsonValue(std::nullptr_t) {}
  explicit JsonValue(bool b) : v_(b) {}
  explicit JsonValue(double d) : v_(d) {}
  explicit JsonValue(std::string s) : v_(std::move(s)) {}
  explicit JsonValue(JsonArray a) : v_(std::make_shared<JsonArray>(std::move(a))) {}
  explicit JsonValue(JsonObject o) : v_(std::make_shared<JsonObject>(std::move(o))) {}

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }
  [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(v_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<std::shared_ptr<JsonArray>>(v_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(v_);
  }

  [[nodiscard]] bool as_bool() const {
    TC_CHECK(std::holds_alternative<bool>(v_), "JSON value is not a bool");
    return std::get<bool>(v_);
  }
  [[nodiscard]] double as_number() const {
    TC_CHECK(is_number(), "JSON value is not a number");
    return std::get<double>(v_);
  }
  [[nodiscard]] const std::string& as_string() const {
    TC_CHECK(is_string(), "JSON value is not a string");
    return std::get<std::string>(v_);
  }
  [[nodiscard]] const JsonArray& as_array() const {
    TC_CHECK(is_array(), "JSON value is not an array");
    return *std::get<std::shared_ptr<JsonArray>>(v_);
  }
  [[nodiscard]] const JsonObject& as_object() const {
    TC_CHECK(is_object(), "JSON value is not an object");
    return *std::get<std::shared_ptr<JsonObject>>(v_);
  }

  /// Object member access; missing keys are an error, not a default.
  [[nodiscard]] const JsonValue& at(std::string_view key) const {
    const auto& obj = as_object();
    const auto it = obj.find(key);
    TC_CHECK(it != obj.end(), "JSON object has no key '" + std::string(key) + "'");
    return it->second;
  }
  [[nodiscard]] bool has(std::string_view key) const {
    const auto& obj = as_object();
    return obj.find(key) != obj.end();
  }

 private:
  std::variant<std::monostate, bool, double, std::string, std::shared_ptr<JsonArray>,
               std::shared_ptr<JsonObject>>
      v_;
};

namespace detail {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    auto v = parse_value();
    skip_ws();
    TC_CHECK(pos_ == text_.size(), err("trailing content after JSON document"));
    return v;
  }

 private:
  [[nodiscard]] std::string err(const std::string& what) const {
    return what + " at byte " + std::to_string(pos_);
  }
  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    TC_CHECK(pos_ < text_.size(), err("unexpected end of JSON"));
    return text_[pos_];
  }
  void expect(char c) {
    TC_CHECK(peek() == c, err(std::string("expected '") + c + "'"));
    ++pos_;
  }
  bool consume(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool consume_word(std::string_view w) {
    skip_ws();
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue(parse_string());
    if (consume_word("true")) return JsonValue(true);
    if (consume_word("false")) return JsonValue(false);
    if (consume_word("null")) return JsonValue(nullptr);
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    if (!consume('}')) {
      do {
        std::string key = parse_string();
        expect(':');
        obj.emplace(std::move(key), parse_value());
      } while (consume(','));
      expect('}');
    }
    return JsonValue(std::move(obj));
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray arr;
    if (!consume(']')) {
      do {
        arr.push_back(parse_value());
      } while (consume(','));
      expect(']');
    }
    return JsonValue(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      TC_CHECK(pos_ < text_.size(), err("unterminated JSON string"));
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      TC_CHECK(pos_ < text_.size(), err("unterminated JSON escape"));
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          TC_CHECK(pos_ + 4 <= text_.size(), err("truncated \\u escape"));
          unsigned code = 0;
          const auto r = std::from_chars(text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
          TC_CHECK(r.ec == std::errc{} && r.ptr == text_.data() + pos_ + 4,
                   err("bad \\u escape"));
          TC_CHECK(code < 0x80, err("non-ASCII \\u escape unsupported"));
          pos_ += 4;
          out.push_back(static_cast<char>(code));
          break;
        }
        default: TC_CHECK(false, err("unknown JSON escape"));
      }
    }
  }

  JsonValue parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
                                   text_[pos_] == '.' || text_[pos_] == 'e' ||
                                   text_[pos_] == 'E' || text_[pos_] == '+' ||
                                   text_[pos_] == '-')) {
      ++pos_;
    }
    TC_CHECK(pos_ > start, err("expected a JSON value"));
    double d = 0.0;
    const auto r = std::from_chars(text_.data() + start, text_.data() + pos_, d);
    TC_CHECK(r.ec == std::errc{} && r.ptr == text_.data() + pos_, err("malformed JSON number"));
    return JsonValue(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parses a complete JSON document; TC_CHECKs on malformed input.
[[nodiscard]] inline JsonValue json_parse(std::string_view text) {
  return detail::JsonParser(text).parse_document();
}

/// Serializes a parsed node back through the streaming writer (value
/// position). Together with json_parse this round-trips every document the
/// repo's writers emit — the persistent tuning-cache file relies on it.
/// Object keys come out in JsonObject's sorted order, so dump(parse(x)) is a
/// canonical form: stable under repeated round-trips.
inline void json_write(JsonWriter& j, const JsonValue& v) {
  if (v.is_null()) {
    j.null();
  } else if (v.is_bool()) {
    j.value(v.as_bool());
  } else if (v.is_number()) {
    j.value(v.as_number());
  } else if (v.is_string()) {
    j.value(std::string_view(v.as_string()));
  } else if (v.is_array()) {
    j.begin_array();
    for (const JsonValue& e : v.as_array()) json_write(j, e);
    j.end_array();
  } else {
    j.begin_object();
    for (const auto& [key, val] : v.as_object()) {
      j.key(key);
      json_write(j, val);
    }
    j.end_object();
  }
}

/// json_write into a string (one complete document, no trailing newline).
[[nodiscard]] inline std::string json_dump(const JsonValue& v) {
  std::ostringstream os;
  JsonWriter j(os);
  json_write(j, v);
  return os.str();
}

}  // namespace tc
