#include "common/rng.hpp"

#include "common/error.hpp"

namespace tc {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64, used to expand the seed into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  TC_CHECK(bound > 0, "next_below requires a positive bound");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  TC_CHECK(lo <= hi, "next_int requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

float Rng::next_float(float lo, float hi) {
  const auto u = static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;  // [0,1)
  return lo + (hi - lo) * u;
}

half Rng::next_half(float lo, float hi) { return half(next_float(lo, hi)); }

std::vector<half> Rng::half_vector(std::size_t n, float lo, float hi) {
  std::vector<half> v(n);
  for (auto& x : v) x = next_half(lo, hi);
  return v;
}

}  // namespace tc
