// Minimal streaming JSON writer (header-only, no dependencies).
//
// Produces machine-readable output for tcgemm_cli --json and the bench
// binaries' --json files (see bench/bench_common.hpp for the shared bench
// schema). The matching reader lives in common/json_parse.hpp and exists
// only for the golden-file regression tests; production code is write-only.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace tc {

/// Escapes `s` into a JSON string literal (with surrounding quotes).
inline void json_escape(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Streaming writer with comma/nesting bookkeeping. Usage:
///
///   JsonWriter j(os);
///   j.begin_object();
///   j.field("tool", "tcgemm_cli");
///   j.key("rows"); j.begin_array(); ... j.end_array();
///   j.end_object();
///
/// Misuse (value without key inside an object, unbalanced end_*) trips
/// TC_CHECK rather than emitting malformed JSON.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin_object() {
    pre_value();
    os_ << '{';
    stack_.push_back({'}', true});
  }
  void end_object() { close('}'); }
  void begin_array() {
    pre_value();
    os_ << '[';
    stack_.push_back({']', true});
  }
  void end_array() { close(']'); }

  void key(std::string_view k) {
    TC_CHECK(!stack_.empty() && stack_.back().closer == '}', "JSON key outside an object");
    TC_CHECK(!after_key_, "JSON key after key");
    if (!stack_.back().first) os_ << ',';
    stack_.back().first = false;
    json_escape(os_, k);
    os_ << ':';
    after_key_ = true;
  }

  void value(std::string_view v) {
    pre_value();
    json_escape(os_, v);
  }
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v) {
    pre_value();
    os_ << (v ? "true" : "false");
  }
  void value(double v) {
    pre_value();
    if (!std::isfinite(v)) {
      os_ << "null";  // JSON has no NaN/Inf
      return;
    }
    char buf[32];
    const auto r = std::to_chars(buf, buf + sizeof(buf), v);
    os_.write(buf, r.ptr - buf);
  }
  void value(std::uint64_t v) {
    pre_value();
    os_ << v;
  }
  void value(std::int64_t v) {
    pre_value();
    os_ << v;
  }
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void null() {
    pre_value();
    os_ << "null";
  }

  template <typename T>
  void field(std::string_view k, T v) {
    key(k);
    value(v);
  }

  /// True once every begin_* has been matched; callers can assert on it.
  [[nodiscard]] bool complete() const { return stack_.empty() && !after_key_; }

 private:
  struct Level {
    char closer;
    bool first;
  };

  void pre_value() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    TC_CHECK(stack_.empty() || stack_.back().closer == ']',
             "JSON value inside an object needs a key");
    if (!stack_.empty()) {
      if (!stack_.back().first) os_ << ',';
      stack_.back().first = false;
    }
  }
  void close(char closer) {
    TC_CHECK(!stack_.empty() && stack_.back().closer == closer, "unbalanced JSON nesting");
    TC_CHECK(!after_key_, "JSON object closed after dangling key");
    stack_.pop_back();
    os_ << closer;
  }

  std::ostream& os_;
  std::vector<Level> stack_;
  bool after_key_ = false;
};

}  // namespace tc
