// SASS microbenchmark kernel generators (paper Sections IV-C and V).
//
// Each generator reproduces one of the paper's measurement kernels:
//
//  * hmma_cpi_kernel      — a loop of back-to-back HMMA.1688.F16 with CS2R
//                           clock reads around it (Table I CPI).
//  * hmma_latency_kernel  — one HMMA followed after `stall` cycles by a
//                           store of D; the paper finds the result is correct
//                           only for stall >= 10 (low half) / 14 (high half).
//  * smem_cpi_kernel      — 128-instruction LDS/STS loops per width with
//                           conflict-free offsets (Tables IV/V).
//  * ldg_cpi_kernel       — 128-instruction LDG loops per width, .CA within
//                           an L1-resident window or .CG within an
//                           L2-resident window (Table III).
//  * stream_load_kernel   — 512 KB of LDG.128.CG per CTA at distinct or
//                           shared locations (Table II DRAM/L2 bandwidth).
//  * lds_conflict_kernel  — LDS.32 with a configurable word stride, to map
//                           bank-conflict cost directly.
//
// All kernels write their CS2R clock samples to param-provided output
// buffers: out[lane] = start, out[32+lane] = end.
#pragma once

#include <cstdint>

#include "sass/program.hpp"

namespace tc::kernels {

/// Parameters: [0] = output buffer (2*32 u32: start/end clocks per lane).
/// One warp; `unroll` HMMAs per loop body, `iters` loop iterations.
[[nodiscard]] sass::Program hmma_cpi_kernel(int unroll, int iters);

/// Parameters: [0] = input buffer (A,B,C fragments as prepared by the
/// harness: 32 u32 A0, 32 u32 A1, 32 u32 B, 32 u32 C0, 32 u32 C1),
/// [1] = output buffer (64 u32: D0, D1 per lane).
/// Issues one HMMA.1688.F16 and stores D after `stall` cycles with NO
/// scoreboard protection; with stall < the true latency the stored values
/// are stale.
[[nodiscard]] sass::Program hmma_latency_kernel(int stall);

/// Parameters: [0] = output buffer. One warp; shared-memory op loop with
/// conflict-free addresses (lane-linear).
[[nodiscard]] sass::Program smem_cpi_kernel(sass::Opcode op, sass::MemWidth width, int unroll,
                                            int iters);

/// Parameters: [0] = output clocks, [1] = data buffer base. Loop of LDG
/// instructions over a `window_bytes` window (wraps), lane-linear addresses.
[[nodiscard]] sass::Program ldg_cpi_kernel(sass::MemWidth width, sass::CacheOp cache,
                                           int unroll, int iters, std::uint32_t window_bytes);

/// Parameters: [0] = output clocks, [1] = data base. Each CTA streams
/// `bytes_per_cta` bytes with LDG.128.CG, `passes` times. When
/// `distinct_per_cta`, CTA i reads at base + i*bytes_per_cta (DRAM test);
/// otherwise all CTAs read the same range (L2 test).
[[nodiscard]] sass::Program stream_load_kernel(std::uint32_t bytes_per_cta,
                                               bool distinct_per_cta, int passes);

/// Parameters: [0] = output clocks. LDS.32 where lane l reads word
/// l*stride_words — stride 1 is conflict-free, stride 2 is 2-way, etc.
[[nodiscard]] sass::Program lds_conflict_kernel(int stride_words, int unroll, int iters);

/// Harness-side helper: CPI from the clock samples of a loop kernel.
[[nodiscard]] double cpi_from_clocks(std::uint32_t start, std::uint32_t end, int unroll,
                                     int iters);

}  // namespace tc::kernels
