#include "kernels/micro.hpp"

#include "common/error.hpp"
#include "sass/builder.hpp"

namespace tc::kernels {

using sass::CacheOp;
using sass::CmpOp;
using sass::KernelBuilder;
using sass::MemWidth;
using sass::Opcode;
using sass::Pred;
using sass::Reg;
using sass::RZ;
using sass::SpecialReg;

namespace {

/// Emits the common loop prologue: R60 = lane id, R61 = output base,
/// R62 = out + lane*4, R63 = loop counter. Returns after clock start is in
/// R58 and stored to out[lane].
void emit_clocked_prologue(KernelBuilder& b, int iters) {
  b.s2r(Reg{60}, SpecialReg::kLaneId).stall(1);
  b.mov_param(Reg{61}, 0).stall(12);  // cover S2R/param latency before use
  b.shl(Reg{59}, Reg{60}, 2).stall(6);
  b.iadd3(Reg{62}, Reg{61}, Reg{59}).stall(6);
  b.mov_imm(Reg{63}, iters).stall(6);
  b.cs2r_clock(Reg{58}).stall(12);
  b.stg(MemWidth::k32, Reg{62}, Reg{58}, 0).stall(1);
}

/// Emits end-clock store to out[32 + lane] and EXIT.
void emit_clocked_epilogue(KernelBuilder& b) {
  b.cs2r_clock(Reg{58}).stall(12);
  b.stg(MemWidth::k32, Reg{62}, Reg{58}, 128).stall(1);
  b.exit();
}

/// Emits the loop counter decrement + compare early in the body so the
/// predicate is settled long before the closing BRA reads it.
void emit_loop_header(KernelBuilder& b, const char* label) {
  b.label(label);
  // The ALU latency must elapse before the compare reads the decremented
  // counter, or the loop runs one extra iteration (hazard-accurate model).
  b.iadd_imm(Reg{63}, Reg{63}, -1).stall(6);
  b.isetp_imm(Pred{0}, CmpOp::kGt, Reg{63}, 0).stall(1);
}

void emit_loop_close(KernelBuilder& b, const std::string& label) {
  b.bra(label).pred(Pred{0}).stall(1);
}

}  // namespace

sass::Program hmma_cpi_kernel(int unroll, int iters) {
  TC_CHECK(unroll >= 8 && unroll % 8 == 0, "unroll must be a positive multiple of 8");
  KernelBuilder b("micro_hmma_cpi");
  b.threads(32);
  emit_clocked_prologue(b, iters);

  // Operands: A = R2:R3, B = R6, four rotating accumulators D/C = R8..R15 so
  // the writeback latency (10/14) never races the next read (distance >= 32
  // issue cycles at CPI 8).
  for (int r = 2; r <= 15; ++r) b.mov_imm(Reg{static_cast<std::uint8_t>(r)}, 0).stall(1);
  b.nop().stall(6);

  emit_loop_header(b, "loop");
  for (int i = 0; i < unroll; ++i) {
    const auto d = static_cast<std::uint8_t>(8 + 2 * (i % 4));
    b.hmma_1688_f16(Reg{d}, Reg{2}, Reg{6}, Reg{d}).stall(1);
  }
  emit_loop_close(b, "loop");

  emit_clocked_epilogue(b);
  return b.finalize();
}

sass::Program hmma_latency_kernel(int stall) {
  TC_CHECK(stall >= 0 && stall <= 15, "stall must fit the 4-bit control field");
  KernelBuilder b("micro_hmma_latency");
  b.threads(32);

  // R40 = input base, R41 = output base, R42 = lane*4.
  b.s2r(Reg{44}, SpecialReg::kLaneId).stall(1);
  b.mov_param(Reg{40}, 0).stall(1);
  b.mov_param(Reg{41}, 1).stall(12);
  b.shl(Reg{42}, Reg{44}, 2).stall(6);

  // Load fragments: A0 A1 B C0 C1 at in + {0,128,256,384,512} + lane*4.
  b.iadd3(Reg{43}, Reg{40}, Reg{42}).stall(6);
  b.ldg(MemWidth::k32, Reg{2}, Reg{43}, 0);     // A0
  b.write_bar(0).stall(1);
  b.ldg(MemWidth::k32, Reg{3}, Reg{43}, 128);   // A1
  b.write_bar(0).stall(1);
  b.ldg(MemWidth::k32, Reg{6}, Reg{43}, 256);   // B
  b.write_bar(0).stall(1);
  b.ldg(MemWidth::k32, Reg{4}, Reg{43}, 384);   // C0
  b.write_bar(0).stall(1);
  b.ldg(MemWidth::k32, Reg{5}, Reg{43}, 512);   // C1
  b.write_bar(0).stall(1);

  // Poison D so stale reads are visible, and precompute the output address
  // out + lane*8 (STG.64 stores both destination registers).
  b.mov_imm(Reg{8}, 0x7E007E00).wait_on(0).stall(1);  // NaN|NaN
  b.mov_imm(Reg{9}, 0x7E007E00).stall(1);
  b.shl(Reg{46}, Reg{44}, 3).stall(6);
  b.iadd3(Reg{45}, Reg{41}, Reg{46}).stall(6);

  // The probe: HMMA, then store D after exactly `stall` cycles with no
  // scoreboard protection (the paper's methodology). STG.64 reads both
  // halves in one instruction, so the low half is correct iff
  // stall >= 10 and the high half iff stall >= 14.
  b.hmma_1688_f16(Reg{8}, Reg{2}, Reg{6}, Reg{4}).stall(stall == 0 ? 1 : stall);
  b.stg(MemWidth::k64, Reg{45}, Reg{8}, 0).stall(1);
  b.exit();
  return b.finalize();
}

sass::Program smem_cpi_kernel(Opcode op, MemWidth width, int unroll, int iters) {
  TC_CHECK(op == Opcode::kLds || op == Opcode::kSts, "op must be LDS or STS");
  TC_CHECK(unroll > 0, "unroll must be positive");
  KernelBuilder b("micro_smem_cpi");
  b.threads(32);
  b.smem(4096);
  emit_clocked_prologue(b, iters);

  // Conflict-free lane-linear shared address: lane * width_bytes.
  const int bytes = sass::width_bytes(width);
  b.imad_imm(Reg{50}, Reg{60}, bytes).stall(6);
  for (int r = 8; r < 8 + sass::width_regs(width); ++r) {
    b.mov_imm(Reg{static_cast<std::uint8_t>(r)}, 0x3C003C00).stall(1);  // 1.0|1.0
  }
  b.nop().stall(6);

  emit_loop_header(b, "loop");
  for (int i = 0; i < unroll; ++i) {
    if (op == Opcode::kLds) {
      b.lds(width, Reg{8}, Reg{50}, 0).stall(1);
    } else {
      b.sts(width, Reg{50}, Reg{8}, 0).stall(1);
    }
  }
  emit_loop_close(b, "loop");

  emit_clocked_epilogue(b);
  return b.finalize();
}

sass::Program ldg_cpi_kernel(MemWidth width, CacheOp cache, int unroll, int iters,
                             std::uint32_t window_bytes) {
  TC_CHECK(unroll > 0, "unroll must be positive");
  const auto bytes = static_cast<std::uint32_t>(sass::width_bytes(width));
  TC_CHECK(window_bytes % (32u * bytes) == 0, "window must hold whole warp accesses");
  KernelBuilder b("micro_ldg_cpi");
  b.threads(32);
  emit_clocked_prologue(b, iters);

  // R50 = data base + lane*bytes.
  b.mov_param(Reg{51}, 1).stall(12);
  b.imad_imm(Reg{50}, Reg{60}, static_cast<std::int32_t>(bytes)).stall(6);
  b.iadd3(Reg{50}, Reg{50}, Reg{51}).stall(6);

  emit_loop_header(b, "loop");
  for (int i = 0; i < unroll; ++i) {
    const auto offset = static_cast<std::int32_t>(
        (static_cast<std::uint32_t>(i) * 32u * bytes) % window_bytes);
    b.ldg(width, Reg{8}, Reg{50}, offset, cache).stall(1);
  }
  emit_loop_close(b, "loop");

  emit_clocked_epilogue(b);
  return b.finalize();
}

sass::Program stream_load_kernel(std::uint32_t bytes_per_cta, bool distinct_per_cta,
                                 int passes) {
  TC_CHECK(bytes_per_cta % (256 * 16) == 0, "bytes_per_cta must be a multiple of 4 KiB");
  KernelBuilder b("micro_stream_load");
  b.threads(256);
  emit_clocked_prologue(b, passes);  // loop counter counts passes

  // tid (not just lane) for addressing: R52 = tid.
  b.s2r(Reg{52}, SpecialReg::kTidX).stall(1);
  b.mov_param(Reg{51}, 1).stall(1);
  b.s2r(Reg{53}, SpecialReg::kCtaIdX).stall(12);
  // base = data + (distinct ? ctaid * bytes_per_cta : 0) + tid*16.
  if (distinct_per_cta) {
    b.imad_imm(Reg{54}, Reg{53}, static_cast<std::int32_t>(bytes_per_cta), Reg{51}).stall(6);
  } else {
    b.mov(Reg{54}, Reg{51}).stall(6);
  }
  b.shl(Reg{55}, Reg{52}, 4).stall(6);
  b.iadd3(Reg{50}, Reg{54}, Reg{55}).stall(6);

  // Each pass: stride over the CTA's range with 256 threads * 16 B chunks.
  const std::uint32_t chunk = 256 * 16;
  const auto chunks = static_cast<int>(bytes_per_cta / chunk);
  emit_loop_header(b, "loop");
  for (int i = 0; i < chunks; ++i) {
    b.ldg(MemWidth::k128, Reg{8}, Reg{50}, static_cast<std::int32_t>(i * chunk), CacheOp::kCg)
        .stall(1);
  }
  emit_loop_close(b, "loop");

  emit_clocked_epilogue(b);
  return b.finalize();
}

sass::Program lds_conflict_kernel(int stride_words, int unroll, int iters) {
  TC_CHECK(stride_words >= 1, "stride must be >= 1");
  KernelBuilder b("micro_lds_conflict");
  b.threads(32);
  b.smem(static_cast<std::uint32_t>(32 * stride_words * 4 + 4));
  emit_clocked_prologue(b, iters);

  b.imad_imm(Reg{50}, Reg{60}, 4 * stride_words).stall(6);

  emit_loop_header(b, "loop");
  for (int i = 0; i < unroll; ++i) {
    b.lds(MemWidth::k32, Reg{8}, Reg{50}, 0).stall(1);
  }
  emit_loop_close(b, "loop");

  emit_clocked_epilogue(b);
  return b.finalize();
}

double cpi_from_clocks(std::uint32_t start, std::uint32_t end, int unroll, int iters) {
  TC_CHECK(unroll > 0 && iters > 0, "bad loop dimensions");
  const auto delta = static_cast<double>(end - start);  // wraps correctly in u32
  return delta / (static_cast<double>(unroll) * iters);
}

}  // namespace tc::kernels
