// Reference GEMM implementations used to validate the simulated kernels.
//
// Conventions (paper Section VII): A is m x k row-major, B is supplied as
// B^T, an n x k row-major matrix (i.e. B column-major), C is m x n row-major.
//
// Two references:
//  * gemm_ref_f32   — FP32 accumulation throughout; the "ground truth" the
//    kernels are compared against with a tolerance.
//  * gemm_ref_tc    — bit-exact model of the Tensor-Core kernels: k is
//    consumed in chunks of 8; each chunk's dot product is accumulated in
//    FP32 and rounded once to FP16, matching HMMA.1688.F16 semantics and
//    accumulation order. Simulated kernel outputs must equal this reference
//    bit for bit.
#pragma once

#include "common/matrix.hpp"

namespace tc::core {

/// C = A * B^T' with FP32 accumulation (bt is n x k: bt(j, l) = B(l, j)).
[[nodiscard]] FloatMatrix gemm_ref_f32(const HalfMatrix& a, const HalfMatrix& bt);

/// Bit-exact Tensor Core reference (see header comment).
[[nodiscard]] HalfMatrix gemm_ref_tc(const HalfMatrix& a, const HalfMatrix& bt);

/// Bit-exact model of the scaled-epilogue kernel: for each element,
/// acc = gemm_ref_tc value, then round16(beta * c0), then
/// fma_round_half(alpha, acc, that) — matching the HMUL2/HFMA2 epilogue.
[[nodiscard]] HalfMatrix gemm_ref_tc_axpby(const HalfMatrix& a, const HalfMatrix& bt,
                                           const HalfMatrix& c0, float alpha, float beta);

/// Largest absolute elementwise difference |c - ref|.
[[nodiscard]] double max_abs_diff(const HalfMatrix& c, const FloatMatrix& ref);

/// Count of elements whose FP16 bit patterns differ (NaN == NaN here).
[[nodiscard]] std::size_t mismatch_count(const HalfMatrix& c, const HalfMatrix& ref);

}  // namespace tc::core
