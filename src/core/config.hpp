// HGEMM kernel configuration (Section VI): two-level blocking sizes, shared
// memory layout, instruction interleaving and prefetch policy.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "common/matrix.hpp"
#include "model/l2_reuse.hpp"
#include "numerics/numerics.hpp"
#include "sim/engine.hpp"

namespace tc::core {

/// Shared-memory layout for the A/B slabs.
enum class SmemLayout {
  /// 8x8 tiles stored contiguously in fragment-register order (one LDS.32
  /// per tile, banks 0..31 exactly once) plus 64 dead bytes per tile row to
  /// keep the paper's 36 KB footprint ("padding", Section VI-D). See
  /// DESIGN.md for the adaptation of the paper's literal pad formula to this
  /// simulator's bank model.
  kPaddedTile,
  /// Tile-major without padding — the "economical" 32 KB layout the paper
  /// attributes to cuBLAS 10.1 (conflict-free, no spare bytes).
  kTileMajor,
  /// Row-major A[bm][bk] / B[bn][bk] exactly as Algorithm 1 declares them —
  /// the naive layout of Fig. 5, heavily bank-conflicted.
  kNaiveRowMajor,
};

struct HgemmConfig {
  // Thread-block tile (shared memory blocking).
  int bm = 256, bn = 256, bk = 32;
  // Warp tile (register blocking).
  int wm = 128, wn = 64, wk = 8;

  SmemLayout layout = SmemLayout::kPaddedTile;
  /// HMMAs between consecutive STS.128 in the store phase (Section VI-C):
  /// the paper's Eq. (6) demands >= 5; cuBLAS 10.1 uses 2.
  int sts_interleave = 5;
  /// Double-buffer global loads into registers (Section VI-B). Disabling
  /// serializes LDG -> STS each iteration (ablation only).
  bool prefetch = true;

  /// CTA scheduling order: modeled by the L2 reuse machinery and, for the
  /// concrete orders (rowmajor/supertile/serpentine/hilbert), dispatched by
  /// TimedDevice. kSwizzled is the legacy analytic patch, dispatched
  /// row-major.
  model::LaunchOrder launch_order = model::LaunchOrder::kSwizzled;
  /// Grid width beyond which the swizzle degrades to row-major (models the
  /// cuBLAS 10.1 L2-blocking failure at W = 12032, i.e. grid_x = 94).
  int swizzle_max_grid_x = 1 << 30;
  /// Column-panel width when launch_order == kSupertile; ignored otherwise.
  int supertile_width = 8;

  /// Split-K factor (tc::op): the contract K range is cut into `split_k`
  /// equal slices, one per CTA z plane, each writing a partial C plane into
  /// a workspace that the reduction kernel folds in slice order. Power of
  /// two so the kernel decomposes CTAID.Z into (batch, slice) with
  /// LOP3.AND/SHF instead of a divide. 1 = the plain single-pass GEMM.
  /// Part of name(): the SASS changes (z-offset prologue, shortened main
  /// loop), unlike the numerics mode below.
  int split_k = 1;

  /// HMMA math semantics the launched kernel executes with: the historic
  /// idealized single-rounding model every recorded golden was produced
  /// with, or the bit-accurate SMT-formalization step model
  /// (numerics/numerics.hpp). Deliberately NOT part of name(): the mode
  /// changes the math, not the generated SASS, so tuning-cache keys and
  /// recorded kernel names stay stable.
  numerics::NumericsMode numerics = numerics::NumericsMode::kIdealized;

  /// Functional execution engine (sim/engine.hpp): the reference interpreter
  /// or the threaded-code JIT held bitwise to it. Like `numerics`,
  /// deliberately NOT part of name(): the engine changes how the SASS is
  /// executed, never the SASS or the results, so tuning-cache keys and
  /// recorded kernel names stay stable. The timed SM ignores it.
  sim::ExecEngine engine = sim::ExecEngine::kInterpret;

  /// The paper's optimized kernel (Table VII left column).
  static HgemmConfig optimized() { return {}; }

  /// cuBLAS 10.1's HGEMM configuration (Table VII right column).
  static HgemmConfig cublas_like() {
    HgemmConfig c;
    c.bm = 128;
    c.bn = 128;
    c.bk = 64;
    c.wm = 64;
    c.wn = 64;
    c.wk = 8;
    c.layout = SmemLayout::kTileMajor;
    c.sts_interleave = 2;
    c.swizzle_max_grid_x = 94;  // 94 * 128 = 12032, the observed cliff
    return c;
  }

  [[nodiscard]] int warps() const { return (bm / wm) * (bn / wn); }
  [[nodiscard]] int threads() const { return warps() * 32; }

  /// Shared memory bytes for one slab of `rows` x bk halves.
  [[nodiscard]] std::uint32_t slab_bytes(int rows) const {
    const auto data = static_cast<std::uint32_t>(rows) * static_cast<std::uint32_t>(bk) * 2;
    if (layout == SmemLayout::kPaddedTile) {
      return data + static_cast<std::uint32_t>(rows / 8) * 64;  // 64 dead B / tile row
    }
    return data;
  }
  [[nodiscard]] std::uint32_t smem_bytes() const { return slab_bytes(bm) + slab_bytes(bn); }

  /// The padded shape the generated kernel actually computes for a user
  /// shape: m/n round up to whole block tiles, k to whole bk slabs with at
  /// least two slabs (the double-buffered main loop needs >= 2 iterations).
  /// With split_k > 1 each K slice independently needs whole slabs and the
  /// two-iteration floor, so the padded k is split_k * padded-slice.
  [[nodiscard]] GemmShape contract_shape(const GemmShape& s) const {
    const auto round_up = [](std::size_t v, std::size_t to) { return (v + to - 1) / to * to; };
    const auto slices = static_cast<std::size_t>(split_k);
    const std::size_t per_slice =
        std::max(round_up((s.k + slices - 1) / slices, static_cast<std::size_t>(bk)),
                 static_cast<std::size_t>(2 * bk));
    return {round_up(s.m, static_cast<std::size_t>(bm)),
            round_up(s.n, static_cast<std::size_t>(bn)), per_slice * slices};
  }

  /// K elements one z slice of the contract shape loops over.
  [[nodiscard]] std::size_t slice_k(const GemmShape& contract) const {
    return contract.k / static_cast<std::size_t>(split_k);
  }

  /// Validates divisibility constraints the generator relies on.
  void check() const {
    TC_CHECK(wk == 8, "wk must be 8 (HMMA.1688 depth)");
    TC_CHECK(bm % wm == 0 && bn % wn == 0 && bk % wk == 0, "tile divisibility");
    TC_CHECK(wm % 16 == 0 && wn % 8 == 0, "warp tile must be HMMA-shaped");
    TC_CHECK(bm % 8 == 0 && bn % 8 == 0 && bk % 32 == 0, "block tile granularity");
    TC_CHECK(threads() >= 32 && threads() <= 1024, "1..32 warps per CTA");
    const int ldg_instrs = (bm / 8) * (bk / 8) / 4;
    TC_CHECK(ldg_instrs % warps() == 0, "global loads must divide evenly among warps");
    TC_CHECK((bn / 8) * (bk / 8) / 4 % warps() == 0, "B loads must divide evenly");
    // The staging-store address pattern assigns each warp a whole number of
    // slab tile-rows; fewer tile-rows than warps would make the generator's
    // per-warp row quotient zero.
    TC_CHECK((bm / 8) % warps() == 0 && (bn / 8) % warps() == 0,
             "each warp must cover a whole number of slab tile rows");
    TC_CHECK(sts_interleave >= 1, "sts_interleave must be >= 1");
    TC_CHECK(supertile_width >= 1, "supertile_width must be >= 1");
    TC_CHECK(split_k >= 1 && split_k <= 64 &&
                 std::has_single_bit(static_cast<unsigned>(split_k)),
             "split_k must be a power of two in [1, 64]");
  }

  [[nodiscard]] std::string name() const {
    std::string n =
        "hgemm_" + std::to_string(bm) + "x" + std::to_string(bn) + "x" + std::to_string(bk) +
        "_w" + std::to_string(wm) + "x" + std::to_string(wn) + "_i" +
        std::to_string(sts_interleave) +
        (layout == SmemLayout::kNaiveRowMajor
             ? "_naive"
             : (layout == SmemLayout::kPaddedTile ? "_pad" : "_tile"));
    if (split_k > 1) n += "_sk" + std::to_string(split_k);
    // Only non-default orders mark the name, so every legacy kernel name —
    // recorded tuning baselines included — is unchanged.
    if (launch_order != model::LaunchOrder::kSwizzled) {
      n += std::string("_") + sim::launch_order_name(launch_order);
      if (launch_order == model::LaunchOrder::kSupertile) {
        n += std::to_string(supertile_width);
      }
    }
    return n;
  }
};

}  // namespace tc::core
