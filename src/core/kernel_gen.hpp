// SASS generators for the blocked Tensor-Core HGEMM (Section VI) and the
// naive WMMA-style baseline.
//
// Like the paper's hand-written SASS (and like cuBLAS's shape-specialized
// kernels), programs are generated per GEMM shape: m, n, k and the leading
// strides are baked into immediates, which keeps the inner loop free of
// index arithmetic. One generator covers the optimized kernel, the
// cuBLAS-10.1-like baseline and every ablation (interleave spacing, shared
// memory layout, prefetch) through HgemmConfig.
//
// Kernel contract:
//  * params: [0] = A (m x k row-major), [1] = B^T (n x k row-major),
//            [2] = C (m x n row-major), all 2-byte half elements;
//  * grid: (n/bn) x (m/bm) CTAs; CTA (x, y) computes C block (y, x);
//    batched / split-K variants add a z axis (KernelVariant + cfg.split_k)
//    indexing whole padded planes of A / B^T / out;
//  * m % bm == 0, n % bn == 0, k % bk == 0, k >= 2*bk (the public API in
//    hgemm.hpp pads arbitrary sizes to this contract).
#pragma once

#include "common/matrix.hpp"
#include "core/config.hpp"
#include "sass/program.hpp"

namespace tc::core {

/// Elementwise activation applied at the very end of the epilogue (after
/// scaling and bias): one extra packed-half2 op per register pair.
enum class Activation { kNone, kRelu, kGelu };

[[nodiscard]] const char* activation_name(Activation act);

/// GEMM scalars (Section II-A standard form C = alpha*A*B + beta*C). The
/// paper evaluates alpha = 1, beta = 0; the general form adds an FP16x2
/// scaling epilogue (HMUL2/HFMA2 + a C reload when beta != 0) and an
/// optional activation tail (HMAX2 against RZ for ReLU, HGELU2 for GELU).
/// Scalars are rounded to binary16 and baked into the kernel as immediates.
struct Epilogue {
  float alpha = 1.0f;
  float beta = 0.0f;
  Activation act = Activation::kNone;
  [[nodiscard]] bool is_default() const {
    return alpha == 1.0f && beta == 0.0f && act == Activation::kNone;
  }
};

/// Extra GemmOp axes of the main-loop generator (tc::op lowering). The SASS
/// depends only on whether z indexing is emitted at all — the batch *count*
/// is a launch property (grid_z), never baked into the program — so batched
/// kernels are shape-stable across batch sizes.
struct KernelVariant {
  /// Emit the CTAID.Z-indexed prologue even when cfg.split_k == 1, so every
  /// z plane computes an independent GEMM over consecutive padded planes of
  /// A / B^T / out. Implied (and ignored) when cfg.split_k > 1, where z
  /// always decomposes into (batch, slice) = (z >> log2(split_k),
  /// z & (split_k - 1)).
  bool batched = false;
};

[[nodiscard]] sass::Program hgemm_kernel(const HgemmConfig& cfg, const GemmShape& shape,
                                         const Epilogue& epilogue = {},
                                         const KernelVariant& variant = {});

/// The latency-agnostic form of hgemm_kernel before tc::sched::schedule():
/// semantic instruction order with default control words. hgemm_kernel() is
/// exactly schedule() of this program; the CLI's `schedule` subcommand uses
/// it to compare scheduling modes on the real kernels.
[[nodiscard]] sass::Program hgemm_kernel_virtual(const HgemmConfig& cfg, const GemmShape& shape,
                                                 const Epilogue& epilogue = {},
                                                 const KernelVariant& variant = {});

/// The second kernel of a lowered GemmOp: folds split-K partials and/or
/// applies the non-fused epilogue (bias add, scaling, activation).
///
/// Contract:
///  * params: [0] = W (input: batch x parts contiguous m x n half planes,
///    slice-major within a batch), [1] = C (output: batch m x n planes),
///    [2] = bias (n halves, broadcast over rows) when `bias`;
///  * grid: (ceil(n/256), m, batch) — 128 threads, one half2 (two adjacent
///    columns) per thread, tail columns predicated off;
///  * semantics: acc = W[b][0][row][col], then acc = HADD2(acc, W[b][s]...)
///    for s = 1..parts-1 in slice order, then the epilogue with the exact
///    rounding sequence of the fused tail (round(beta*Cold), then
///    round(alpha*acc + that)), then + bias via HADD2, then activation.
struct ReducePlan {
  std::size_t m = 0;       // padded output rows (contract m)
  std::size_t n = 0;       // padded output columns (contract n)
  int parts = 1;           // split-K partials to fold; 1 = pure epilogue pass
  Epilogue epilogue;
  bool bias = false;
};

[[nodiscard]] sass::Program reduce_epilogue_kernel(const ReducePlan& plan);

/// Latency-agnostic form of reduce_epilogue_kernel (see hgemm_kernel_virtual).
[[nodiscard]] sass::Program reduce_epilogue_kernel_virtual(const ReducePlan& plan);

/// Naive WMMA-API-style kernel: each warp computes one 16x16 C tile, loading
/// fragments straight from global memory (no shared memory staging, no
/// prefetch) — the ~10%-of-peak baseline reported by Markidis et al. [5].
/// Grid: (n/128) x (m/16); CTA = 8 warps side by side.
[[nodiscard]] sass::Program wmma_naive_kernel(const GemmShape& shape);

/// Latency-agnostic form of wmma_naive_kernel (see hgemm_kernel_virtual).
[[nodiscard]] sass::Program wmma_naive_kernel_virtual(const GemmShape& shape);

}  // namespace tc::core
