// SASS generators for the blocked Tensor-Core HGEMM (Section VI) and the
// naive WMMA-style baseline.
//
// Like the paper's hand-written SASS (and like cuBLAS's shape-specialized
// kernels), programs are generated per GEMM shape: m, n, k and the leading
// strides are baked into immediates, which keeps the inner loop free of
// index arithmetic. One generator covers the optimized kernel, the
// cuBLAS-10.1-like baseline and every ablation (interleave spacing, shared
// memory layout, prefetch) through HgemmConfig.
//
// Kernel contract:
//  * params: [0] = A (m x k row-major), [1] = B^T (n x k row-major),
//            [2] = C (m x n row-major), all 2-byte half elements;
//  * grid: (n/bn) x (m/bm) CTAs; CTA (x, y) computes C block (y, x);
//  * m % bm == 0, n % bn == 0, k % bk == 0, k >= 2*bk (the public API in
//    hgemm.hpp pads arbitrary sizes to this contract).
#pragma once

#include "common/matrix.hpp"
#include "core/config.hpp"
#include "sass/program.hpp"

namespace tc::core {

/// GEMM scalars (Section II-A standard form C = alpha*A*B + beta*C). The
/// paper evaluates alpha = 1, beta = 0; the general form adds an FP16x2
/// scaling epilogue (HMUL2/HFMA2 + a C reload when beta != 0). Scalars are
/// rounded to binary16 and baked into the kernel as immediates.
struct Epilogue {
  float alpha = 1.0f;
  float beta = 0.0f;
  [[nodiscard]] bool is_default() const { return alpha == 1.0f && beta == 0.0f; }
};

[[nodiscard]] sass::Program hgemm_kernel(const HgemmConfig& cfg, const GemmShape& shape,
                                         const Epilogue& epilogue = {});

/// The latency-agnostic form of hgemm_kernel before tc::sched::schedule():
/// semantic instruction order with default control words. hgemm_kernel() is
/// exactly schedule() of this program; the CLI's `schedule` subcommand uses
/// it to compare scheduling modes on the real kernels.
[[nodiscard]] sass::Program hgemm_kernel_virtual(const HgemmConfig& cfg, const GemmShape& shape,
                                                 const Epilogue& epilogue = {});

/// Naive WMMA-API-style kernel: each warp computes one 16x16 C tile, loading
/// fragments straight from global memory (no shared memory staging, no
/// prefetch) — the ~10%-of-peak baseline reported by Markidis et al. [5].
/// Grid: (n/128) x (m/16); CTA = 8 warps side by side.
[[nodiscard]] sass::Program wmma_naive_kernel(const GemmShape& shape);

/// Latency-agnostic form of wmma_naive_kernel (see hgemm_kernel_virtual).
[[nodiscard]] sass::Program wmma_naive_kernel_virtual(const GemmShape& shape);

}  // namespace tc::core
