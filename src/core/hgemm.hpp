// Public HGEMM API — the library's front door.
//
// Functional path (correctness): `run` pads the inputs to the kernel's tile
// contract, uploads them to the simulated device, executes the full grid
// functionally and returns C. Results are bit-identical to
// `gemm_ref_tc` (see reference.hpp).
//
// Performance path (the paper's Figs. 4-9): `PerfEstimator` measures the
// kernel's steady-state cycles per main-loop iteration on the cycle-level SM
// model — with that SM's fair bandwidth share, the L2 reuse model's hit rate
// and the DRAM row-locality factor — and composes full-device time via the
// wave model. See DESIGN.md "Scale handling".
#pragma once

#include <map>
#include <optional>

#include "common/matrix.hpp"
#include "core/config.hpp"
#include "core/kernel_gen.hpp"
#include "core/reference.hpp"
#include "device/occupancy.hpp"
#include "driver/device.hpp"
#include "model/l2_reuse.hpp"
#include "model/wave_perf.hpp"

namespace tc::core {

/// C = A * B (A: m x k row-major; bt: B^T as n x k row-major; C: m x n
/// row-major), computed by the blocked Tensor-Core kernel on `dev`.
/// Arbitrary sizes are padded internally to the tile contract.
[[nodiscard]] HalfMatrix run_hgemm(driver::Device& dev, const HalfMatrix& a,
                                   const HalfMatrix& bt,
                                   const HgemmConfig& cfg = HgemmConfig::optimized());

/// General form C = alpha*A*B + beta*C_in (Section II-A). `c_in` must be
/// m x n row-major; it is only read when beta != 0.
[[nodiscard]] HalfMatrix run_hgemm_axpby(driver::Device& dev, const HalfMatrix& a,
                                         const HalfMatrix& bt, const HalfMatrix& c_in,
                                         float alpha, float beta,
                                         const HgemmConfig& cfg = HgemmConfig::optimized());

/// Same contract, executed by the naive WMMA-style kernel. `engine` picks the
/// functional execution engine (interpreter or JIT; results are bitwise
/// identical either way).
[[nodiscard]] HalfMatrix run_wmma_naive(driver::Device& dev, const HalfMatrix& a,
                                        const HalfMatrix& bt,
                                        sim::ExecEngine engine = sim::ExecEngine::kInterpret);

/// One point of a performance sweep.
struct PerfPoint {
  GemmShape shape;
  double seconds = 0.0;
  double tflops = 0.0;
  double cycles_per_iter = 0.0;
  double overhead_cycles = 0.0;
  double l2_hit_rate = 0.0;
  double dram_efficiency = 1.0;
  double waves = 0.0;
  int ctas_per_sm = 0;
};

/// Estimates full-device HGEMM time for a kernel configuration on a device.
/// Steady-state measurements are cached by (hit-rate, efficiency) bucket so
/// sweeps over many sizes stay fast.
class PerfEstimator {
 public:
  PerfEstimator(device::DeviceSpec spec, HgemmConfig cfg);

  [[nodiscard]] PerfPoint estimate(const GemmShape& shape);

  [[nodiscard]] const device::DeviceSpec& spec() const { return spec_; }
  [[nodiscard]] const HgemmConfig& config() const { return cfg_; }
  [[nodiscard]] int ctas_per_sm() const { return ctas_per_sm_; }

 private:
  model::SteadyState measure_steady(double l2_hit_rate, double dram_efficiency);

  device::DeviceSpec spec_;
  HgemmConfig cfg_;
  int ctas_per_sm_ = 1;
  std::map<std::pair<int, int>, model::SteadyState> steady_cache_;
};

}  // namespace tc::core
