#include "core/profile.hpp"

#include <algorithm>
#include <cmath>

#include "core/kernel_gen.hpp"
#include "device/occupancy.hpp"
#include "model/l2_reuse.hpp"
#include "prof/counters.hpp"

namespace tc::core {

int surrogate_ctas_per_sm(const device::DeviceSpec& spec, const HgemmConfig& cfg) {
  const GemmShape probe{static_cast<std::size_t>(cfg.bm), static_cast<std::size_t>(cfg.bn),
                        static_cast<std::size_t>(2 * cfg.bk)};
  const sass::Program prog = hgemm_kernel(cfg, probe);
  return device::occupancy(spec, prog).ctas_per_sm;
}

sim::TimedStats run_steady_surrogate(const device::DeviceSpec& spec, const HgemmConfig& cfg,
                                     int ctas_per_sm, const SurrogateOptions& opt) {
  // The surrogate grid is ctas_per_sm x 1 blocks tall so every resident CTA
  // exists; k = iterations * bk sets the main-loop trip count.
  const GemmShape s{static_cast<std::size_t>(cfg.bm) * static_cast<std::size_t>(ctas_per_sm),
                    static_cast<std::size_t>(cfg.bn),
                    static_cast<std::size_t>(cfg.bk) * static_cast<std::size_t>(opt.iterations)};
  const sass::Program prog = hgemm_kernel(cfg, s);

  sim::TimedConfig tc;
  tc.spec = spec;
  tc.dram_bytes_per_cycle = spec.dram_bytes_per_cycle_per_sm() * opt.dram_efficiency;
  tc.l2_bytes_per_cycle = spec.l2_bytes_per_cycle_per_sm();
  tc.forced_l2_hit_rate = opt.l2_hit_rate;
  tc.skip_mma_math = true;
  tc.profiler = opt.profiler;

  mem::GlobalMemory gmem;
  // Reserve the address range the surrogate touches; contents irrelevant.
  sim::Launch launch;
  launch.program = &prog;
  launch.grid_x = 1;
  launch.grid_y = static_cast<std::uint32_t>(ctas_per_sm);
  const auto a_addr = gmem.alloc(s.m * s.k * 2);
  const auto b_addr = gmem.alloc(s.n * s.k * 2);
  const auto c_addr = gmem.alloc(s.m * s.n * 2);
  launch.params = {a_addr, b_addr, c_addr};

  std::vector<sim::CtaCoord> ctas;
  for (int i = 0; i < ctas_per_sm; ++i) {
    ctas.push_back({0, static_cast<std::uint32_t>(i)});
  }
  sim::TimedSm sm(tc, gmem);
  return sm.run(launch, ctas);
}

HgemmProfile profile_hgemm(const device::DeviceSpec& spec, const HgemmConfig& cfg,
                           const GemmShape& shape, prof::TraceWriter* trace) {
  HgemmProfile out;
  out.ctas_per_sm = surrogate_ctas_per_sm(spec, cfg);

  // The same model inputs PerfEstimator::estimate feeds the timed run.
  const auto grid_x =
      (shape.n + static_cast<std::size_t>(cfg.bn) - 1) / static_cast<std::size_t>(cfg.bn);
  const auto grid_y =
      (shape.m + static_cast<std::size_t>(cfg.bm) - 1) / static_cast<std::size_t>(cfg.bm);
  model::L2ReuseInput reuse_in;
  reuse_in.bm = cfg.bm;
  reuse_in.bn = cfg.bn;
  reuse_in.bk = cfg.bk;
  reuse_in.grid_x = grid_x;
  reuse_in.grid_y = grid_y;
  reuse_in.wave_ctas = spec.num_sms * out.ctas_per_sm;
  reuse_in.order = cfg.launch_order;
  reuse_in.swizzle_max_grid_x = cfg.swizzle_max_grid_x;
  reuse_in.supertile_width = cfg.supertile_width;
  reuse_in.k_iters = std::ceil(static_cast<double>(shape.k) / cfg.bk);
  reuse_in.l2_capacity = spec.l2_size_bytes;
  out.l2_hit_rate = model::l2_reuse_predict(reuse_in).ldg_l2_hit_rate;
  out.dram_efficiency = model::dram_row_efficiency(static_cast<double>(shape.k) * 2.0);

  // Enough iterations to dominate prologue/epilogue, capped so huge k stays
  // cheap (the main loop is periodic; 48 iterations characterize it fully).
  const auto k_iters = static_cast<int>(shape.k / static_cast<std::size_t>(cfg.bk));
  out.iterations = std::clamp(k_iters, 2, 48);

  out.profiler.attach_trace(trace);
  SurrogateOptions opt;
  opt.iterations = out.iterations;
  opt.l2_hit_rate = out.l2_hit_rate;
  opt.dram_efficiency = out.dram_efficiency;
  opt.profiler = &out.profiler;
  out.stats = run_steady_surrogate(spec, cfg, out.ctas_per_sm, opt);
  return out;
}

ObservedPipeCycles observe_pipe_cycles(const device::DeviceSpec& spec, const HgemmConfig& cfg) {
  ObservedPipeCycles out;
  out.ctas_per_sm = surrogate_ctas_per_sm(spec, cfg);

  // Table VI's CPI inputs assume LDGs served from L2 at full DRAM health.
  const int it1 = 6;
  const int it2 = 14;
  prof::Profiler p1;
  prof::Profiler p2;
  SurrogateOptions opt;
  opt.l2_hit_rate = 1.0;
  opt.dram_efficiency = 1.0;
  opt.iterations = it1;
  opt.profiler = &p1;
  run_steady_surrogate(spec, cfg, out.ctas_per_sm, opt);
  opt.iterations = it2;
  opt.profiler = &p2;
  run_steady_surrogate(spec, cfg, out.ctas_per_sm, opt);

  const auto& c1 = p1.counters();
  const auto& c2 = p2.counters();
  const double cta_iters = static_cast<double>(it2 - it1) * out.ctas_per_sm;
  const int partitions = spec.processing_blocks_per_sm;

  const auto d_tensor = static_cast<double>(c2.pipe_busy[prof::kPipeTensor] -
                                            c1.pipe_busy[prof::kPipeTensor]);
  const auto d_mio =
      static_cast<double>(c2.pipe_busy[prof::kPipeMio] - c1.pipe_busy[prof::kPipeMio]);
  const double d_port = c2.l2_port_busy_cycles - c1.l2_port_busy_cycles;

  out.tensor_cycles = d_tensor / (cta_iters * partitions);
  out.memio_cycles = (d_mio + d_port) / cta_iters;
  // Utilizations from the same run-to-run deltas, so the prologue/drain
  // cycles (where both pipes idle) don't dilute the steady-state picture.
  const auto d_cycles = static_cast<double>(c2.cycles - c1.cycles);
  out.tensor_util = d_tensor / (d_cycles * partitions);
  out.mio_util = (d_mio + d_port) / d_cycles;
  return out;
}

}  // namespace tc::core
