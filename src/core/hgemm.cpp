#include "core/hgemm.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "core/profile.hpp"

namespace tc::core {

namespace {

std::size_t round_up(std::size_t v, std::size_t to) { return (v + to - 1) / to * to; }

/// Pads a row-major matrix with zeros to (rows_to, cols_to).
HalfMatrix pad_matrix(const HalfMatrix& src, std::size_t rows_to, std::size_t cols_to) {
  if (src.rows() == rows_to && src.cols() == cols_to) return src;
  HalfMatrix out(rows_to, cols_to);
  for (std::size_t r = 0; r < src.rows(); ++r) {
    for (std::size_t c = 0; c < src.cols(); ++c) out.at(r, c) = src.at(r, c);
  }
  return out;
}

HalfMatrix launch_and_collect(driver::Device& dev, const sass::Program& prog,
                              const HalfMatrix& a_pad, const HalfMatrix& bt_pad,
                              std::uint32_t grid_x, std::uint32_t grid_y, std::size_t out_m,
                              std::size_t out_n, const HalfMatrix* c_pad = nullptr,
                              numerics::NumericsMode numerics_mode =
                                  numerics::NumericsMode::kIdealized,
                              sim::ExecEngine engine = sim::ExecEngine::kInterpret) {
  const std::size_t mp = a_pad.rows();
  const std::size_t np = bt_pad.rows();

  auto da = dev.alloc<half>(a_pad.size());
  auto db = dev.alloc<half>(bt_pad.size());
  auto dc = dev.alloc<half>(mp * np);
  dev.upload(da, std::span(a_pad.data(), a_pad.size()));
  dev.upload(db, std::span(bt_pad.data(), bt_pad.size()));
  if (c_pad != nullptr) {
    dev.upload(dc, std::span(c_pad->data(), c_pad->size()));
  }


  sim::Launch launch;
  launch.program = &prog;
  launch.grid_x = grid_x;
  launch.grid_y = grid_y;
  launch.params = {da.addr, db.addr, dc.addr};
  launch.numerics = numerics_mode;
  launch.engine = engine;
  dev.launch(launch);

  HalfMatrix c_full(mp, np);
  dev.download(std::span(c_full.data(), c_full.size()), dc);

  HalfMatrix c(out_m, out_n);
  for (std::size_t r = 0; r < out_m; ++r) {
    for (std::size_t col = 0; col < out_n; ++col) c.at(r, col) = c_full.at(r, col);
  }
  return c;
}

}  // namespace

// run_hgemm and run_hgemm_axpby are implemented in src/op/hgemm_entry.cpp:
// both are trivial GemmOp instantiations of the tc::op lowering (the layer
// above tc_core), kept byte-identical to the historic single-kernel path.

HalfMatrix run_wmma_naive(driver::Device& dev, const HalfMatrix& a, const HalfMatrix& bt,
                          sim::ExecEngine engine) {
  TC_CHECK(a.cols() == bt.cols(), "A (m x k) and B^T (n x k): k mismatch");
  const std::size_t mp = round_up(a.rows(), 16);
  const std::size_t np = round_up(bt.rows(), 128);
  const std::size_t kp = round_up(a.cols(), 16);

  const HalfMatrix a_pad = pad_matrix(a, mp, kp);
  const HalfMatrix bt_pad = pad_matrix(bt, np, kp);

  const GemmShape shape{mp, np, kp};
  const sass::Program prog = wmma_naive_kernel(shape);
  return launch_and_collect(dev, prog, a_pad, bt_pad, static_cast<std::uint32_t>(np) / 128,
                            static_cast<std::uint32_t>(mp) / 16, a.rows(), bt.rows(),
                            /*c_pad=*/nullptr, numerics::NumericsMode::kIdealized, engine);
}

PerfEstimator::PerfEstimator(device::DeviceSpec spec, HgemmConfig cfg)
    : spec_(std::move(spec)), cfg_(std::move(cfg)) {
  // Occupancy of a representative instance decides CTAs/SM (Table VII).
  ctas_per_sm_ = surrogate_ctas_per_sm(spec_, cfg_);
}

model::SteadyState PerfEstimator::measure_steady(double l2_hit_rate, double dram_efficiency) {
  // Bucket the cache key so sweeps reuse measurements.
  const auto key = std::make_pair(static_cast<int>(std::lround(l2_hit_rate * 50)),
                                  static_cast<int>(std::lround(dram_efficiency * 50)));
  if (auto it = steady_cache_.find(key); it != steady_cache_.end()) return it->second;

  // Two surrogate kernels with different iteration counts isolate the
  // steady-state slope from prologue/epilogue cost (see core/profile.hpp for
  // the shared surrogate definition).
  const int it1 = 6;
  const int it2 = 14;
  SurrogateOptions opt;
  opt.l2_hit_rate = l2_hit_rate;
  opt.dram_efficiency = dram_efficiency;
  const auto run_iters = [&](int iters) {
    opt.iterations = iters;
    return static_cast<double>(run_steady_surrogate(spec_, cfg_, ctas_per_sm_, opt).cycles);
  };

  const double c1 = run_iters(it1);
  const double c2 = run_iters(it2);
  model::SteadyState steady;
  steady.cycles_per_iter = std::max((c2 - c1) / (it2 - it1), 1.0);
  steady.overhead_cycles = std::max(c1 - steady.cycles_per_iter * it1, 0.0);
  steady_cache_[key] = steady;
  return steady;
}

PerfPoint PerfEstimator::estimate(const GemmShape& shape) {
  PerfPoint p;
  p.shape = shape;
  p.ctas_per_sm = ctas_per_sm_;

  const auto grid_x = (shape.n + static_cast<std::size_t>(cfg_.bn) - 1) /
                      static_cast<std::size_t>(cfg_.bn);
  const auto grid_y = (shape.m + static_cast<std::size_t>(cfg_.bm) - 1) /
                      static_cast<std::size_t>(cfg_.bm);

  model::L2ReuseInput reuse_in;
  reuse_in.bm = cfg_.bm;
  reuse_in.bn = cfg_.bn;
  reuse_in.bk = cfg_.bk;
  reuse_in.grid_x = grid_x;
  reuse_in.grid_y = grid_y;
  reuse_in.wave_ctas = spec_.num_sms * ctas_per_sm_;
  reuse_in.order = cfg_.launch_order;
  reuse_in.swizzle_max_grid_x = cfg_.swizzle_max_grid_x;
  reuse_in.supertile_width = cfg_.supertile_width;
  reuse_in.k_iters = std::ceil(static_cast<double>(shape.k) / cfg_.bk);
  reuse_in.l2_capacity = spec_.l2_size_bytes;
  const model::L2Reuse reuse = model::l2_reuse_predict(reuse_in);
  p.l2_hit_rate = reuse.ldg_l2_hit_rate;
  p.dram_efficiency = model::dram_row_efficiency(static_cast<double>(shape.k) * 2.0);

  const model::SteadyState steady = measure_steady(p.l2_hit_rate, p.dram_efficiency);
  p.cycles_per_iter = steady.cycles_per_iter;
  p.overhead_cycles = steady.overhead_cycles;

  model::WaveInput wi;
  wi.spec = spec_;
  wi.shape = shape;
  wi.bm = cfg_.bm;
  wi.bn = cfg_.bn;
  wi.bk = cfg_.bk;
  wi.ctas_per_sm = ctas_per_sm_;
  wi.steady = steady;
  const model::WaveResult wr = model::compose(wi);
  p.seconds = wr.seconds;
  p.tflops = wr.tflops;
  p.waves = wr.waves;
  return p;
}

}  // namespace tc::core
