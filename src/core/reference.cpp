#include "core/reference.hpp"

#include "common/error.hpp"

namespace tc::core {

namespace {
void check_shapes(const HalfMatrix& a, const HalfMatrix& bt) {
  TC_CHECK(a.cols() == bt.cols(), "A is m x k and B^T is n x k: k must match");
  TC_CHECK(a.layout() == Layout::kRowMajor && bt.layout() == Layout::kRowMajor,
           "references expect row-major A and B^T");
}
}  // namespace

FloatMatrix gemm_ref_f32(const HalfMatrix& a, const HalfMatrix& bt) {
  check_shapes(a, bt);
  const std::size_t m = a.rows();
  const std::size_t n = bt.rows();
  const std::size_t k = a.cols();
  FloatMatrix c(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t l = 0; l < k; ++l) {
        acc += a.at(i, l).to_float() * bt.at(j, l).to_float();
      }
      c.at(i, j) = acc;
    }
  }
  return c;
}

HalfMatrix gemm_ref_tc(const HalfMatrix& a, const HalfMatrix& bt) {
  check_shapes(a, bt);
  const std::size_t m = a.rows();
  const std::size_t n = bt.rows();
  const std::size_t k = a.cols();
  HalfMatrix c(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      half acc(0.0f);
      for (std::size_t l0 = 0; l0 < k; l0 += 8) {
        // One HMMA.1688.F16 k-chunk: FP32 dot of <= 8 products + FP16
        // accumulator, rounded once to FP16.
        float chunk = acc.to_float();
        const std::size_t l1 = std::min(l0 + 8, k);
        for (std::size_t l = l0; l < l1; ++l) {
          chunk += a.at(i, l).to_float() * bt.at(j, l).to_float();
        }
        acc = half(chunk);
      }
      c.at(i, j) = acc;
    }
  }
  return c;
}

HalfMatrix gemm_ref_tc_axpby(const HalfMatrix& a, const HalfMatrix& bt, const HalfMatrix& c0,
                             float alpha, float beta) {
  TC_CHECK(c0.rows() == a.rows() && c0.cols() == bt.rows(), "C shape mismatch");
  HalfMatrix c = gemm_ref_tc(a, bt);
  const half ah(alpha);
  const half bh(beta);
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = 0; j < c.cols(); ++j) {
      const half scaled_c = bh.to_float() == 0.0f ? half(0.0f) : bh * c0.at(i, j);
      c.at(i, j) = fma_round_half(ah, c.at(i, j), scaled_c);
    }
  }
  return c;
}

double max_abs_diff(const HalfMatrix& c, const FloatMatrix& ref) {
  TC_CHECK(c.rows() == ref.rows() && c.cols() == ref.cols(), "shape mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = 0; j < c.cols(); ++j) {
      const double d = std::abs(static_cast<double>(c.at(i, j).to_float()) - ref.at(i, j));
      worst = std::max(worst, d);
    }
  }
  return worst;
}

std::size_t mismatch_count(const HalfMatrix& c, const HalfMatrix& ref) {
  TC_CHECK(c.rows() == ref.rows() && c.cols() == ref.cols(), "shape mismatch");
  std::size_t count = 0;
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = 0; j < c.cols(); ++j) {
      const auto x = c.at(i, j);
      const auto y = ref.at(i, j);
      const bool same = (x.is_nan() && y.is_nan()) || x.bits() == y.bits();
      count += same ? 0 : 1;
    }
  }
  return count;
}

}  // namespace tc::core
