#include "core/kernel_gen.hpp"

#include <algorithm>
#include <bit>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "sass/builder.hpp"
#include "sched/schedule.hpp"

namespace tc::core {

using sass::CacheOp;
using sass::CmpOp;
using sass::KernelBuilder;
using sass::MemWidth;
using sass::Pred;
using sass::Reg;
using sass::RZ;
using sass::SpecialReg;

namespace {

constexpr int align4(int r) { return (r + 3) & ~3; }

Reg R(int i) {
  TC_ASSERT(i >= 0 && i < 255, "register index out of range");
  return Reg{static_cast<std::uint8_t>(i)};
}

/// Everything the generator needs to know about one slab (A or B).
struct SlabPlan {
  int rows = 0;            // bm for A, bn for B
  std::uint32_t smem_base = 0;
  int ldg_slots = 0;       // LDG.128 per thread per slab
  int row_quotient = 0;    // (rows/8) / warps
  int stage_base = 0;      // first staging register
  int addr_reg = 0;        // global address register
  int sts_reg = 0;         // smem store-address register
  int frag_reg = 0;        // smem fragment-load-address register
};

/// Generates the blocked HGEMM per the plan in the header. Layout math
/// mirrors src/sim/mma_exec.cpp: 8x8 tiles are stored in shared memory in
/// their fragment-register word order, so LDS.32 with lane-linear addresses
/// (lane*4) yields row-major A fragments and column-major B fragments
/// directly (Fig. 1/2) — and covers banks 0..31 exactly once.
///
/// The generator emits the *virtual* program: semantic instruction order —
/// including the paper's compute/memory interleave, which the scheduler
/// preserves (memory ops are anchored) — but no stall counts, scoreboard
/// barriers, or wait masks. tc::sched::schedule() derives all of those from
/// the shared latency table; hgemm_kernel() is schedule(hgemm_kernel_virtual()).
class HgemmGenerator {
 public:
  HgemmGenerator(const HgemmConfig& cfg, const GemmShape& shape, const Epilogue& ep,
                 const KernelVariant& variant)
      : cfg_(cfg),
        shape_(shape),
        ep_(ep),
        z_indexed_(variant.batched || cfg.split_k > 1),
        b_(kernel_name(cfg, ep, variant), /*unscheduled=*/true) {
    cfg_.check();
    const auto slice = static_cast<std::size_t>(cfg_.slice_k(shape));
    TC_CHECK(shape.m % static_cast<std::size_t>(cfg.bm) == 0 &&
                 shape.n % static_cast<std::size_t>(cfg.bn) == 0 &&
                 slice % static_cast<std::size_t>(cfg.bk) == 0,
             "shape must be tile-aligned (the hgemm API pads)");
    TC_CHECK(slice >= 2 * static_cast<std::size_t>(cfg.bk), "slice k must be >= 2*bk");
    TC_CHECK(std::has_single_bit(static_cast<unsigned>(cfg.bn / cfg.wn)),
             "bn/wn must be a power of two");
    TC_CHECK(cfg.split_k == 1 || ep.is_default(),
             "split-K partials must store raw accumulators; the epilogue "
             "belongs to the reduction kernel");

    warps_ = cfg_.warps();
    ksteps_ = cfg_.bk / cfg_.wk;
    hmma_per_kstep_ = (cfg_.wm / 16) * (cfg_.wn / 8);
    a_frags_ = cfg_.wm / 8;
    b_frags_ = cfg_.wn / 8;
    iters_ = static_cast<int>(slice) / cfg_.bk;

    // Register file layout.
    rA_[0] = 0;
    rA_[1] = a_frags_;
    rB_[0] = 2 * a_frags_;
    rB_[1] = 2 * a_frags_ + b_frags_;
    rC_ = align4(2 * a_frags_ + 2 * b_frags_);
    nC_ = (cfg_.wm / 16) * (cfg_.wn / 8) * 2;

    a_.rows = cfg_.bm;
    bb_.rows = cfg_.bn;
    a_.smem_base = 0;
    bb_.smem_base = cfg_.slab_bytes(cfg_.bm);
    for (SlabPlan* s : {&a_, &bb_}) {
      s->ldg_slots = (s->rows / 8) * (cfg_.bk / 8) / 4 / warps_;
      s->row_quotient = (s->rows / 8) / warps_;
    }
    a_.stage_base = align4(rC_ + nC_);
    bb_.stage_base = a_.stage_base + a_.ldg_slots * 4;
    const int misc = bb_.stage_base + bb_.ldg_slots * 4;
    a_.addr_reg = misc + 0;
    bb_.addr_reg = misc + 1;
    a_.sts_reg = misc + 2;
    bb_.sts_reg = misc + 3;
    a_.frag_reg = misc + 4;
    bb_.frag_reg = misc + 5;
    rCAddr_ = misc + 6;
    rIter_ = misc + 7;
    t0_ = misc + 8;
    t1_ = misc + 9;
    t2_ = misc + 10;
    t3_ = misc + 11;
    TC_CHECK(misc + 12 <= 254, "register budget exceeded for config " + cfg_.name());
    TC_CHECK(!half(ep_.beta).is_nan() && !half(ep_.alpha).is_nan(), "NaN GEMM scalars");
  }

  sass::Program generate() {
    b_.threads(static_cast<std::uint32_t>(cfg_.threads()));
    b_.smem(cfg_.smem_bytes());

    emit_prologue();
    emit_body();
    emit_epilogue();
    return b_.finalize();
  }

 private:
  /// Program name: cfg.name() (which already carries _sk<N>), plus _bz for
  /// the z-indexed batched prologue when split_k alone would not imply it,
  /// plus the activation tail. Alpha/beta stay out of the name (immediates
  /// only), matching the existing axpby convention.
  static std::string kernel_name(const HgemmConfig& cfg, const Epilogue& ep,
                                 const KernelVariant& variant) {
    std::string n = cfg.name();
    if (variant.batched && cfg.split_k == 1) n += "_bz";
    if (ep.act != Activation::kNone) n += std::string("_") + activation_name(ep.act);
    return n;
  }

  // --- layout helpers -------------------------------------------------------

  [[nodiscard]] bool tile_layout() const { return cfg_.layout != SmemLayout::kNaiveRowMajor; }
  [[nodiscard]] int pad_bytes() const {
    return cfg_.layout == SmemLayout::kPaddedTile ? 64 : 0;
  }
  /// Smem byte stride between consecutive tile rows (8 matrix rows).
  [[nodiscard]] int tile_row_stride() const { return (cfg_.bk / 8) * 128 + pad_bytes(); }

  /// LDG slot deltas relative to slot 0. These are independent of the warp
  /// index because (rows/8) % warps == 0 (enforced by HgemmConfig::check).
  [[nodiscard]] int slot_drg(const SlabPlan& s, int t) const {
    return warps_ * (t % s.row_quotient);
  }
  [[nodiscard]] int slot_dcq(const SlabPlan& s, int t) const { return t / s.row_quotient; }

  [[nodiscard]] std::int32_t ldg_offset(const SlabPlan& s, int t) const {
    return slot_drg(s, t) * 8 * static_cast<std::int32_t>(shape_.k) * 2 +
           slot_dcq(s, t) * 64;
  }

  [[nodiscard]] std::int32_t sts_offset(const SlabPlan& s, int t) const {
    const int drg = slot_drg(s, t);
    const int dcq = slot_dcq(s, t);
    if (tile_layout()) {
      return drg * tile_row_stride() + dcq * 4 * 128;
    }
    return (drg * 8 * cfg_.bk + dcq * 32) * 2;  // naive: +rows*bk halves, +4 colblocks
  }

  /// Smem byte offset of fragment tile i at k-step `ks`, relative to the
  /// warp's fragment base register.
  [[nodiscard]] std::int32_t frag_offset(int i, int ks) const {
    if (tile_layout()) {
      return i * tile_row_stride() + ks * 128;
    }
    return (i * 8 * cfg_.bk + ks * 8) * 2;
  }

  // --- prologue --------------------------------------------------------------

  // Byte offsets for this CTA's z plane, stashed in the first three staging
  // registers — free until the first LDG group, which is emitted only after
  // every base address below has consumed them.
  [[nodiscard]] int zA() const { return a_.stage_base + 0; }
  [[nodiscard]] int zB() const { return a_.stage_base + 1; }
  [[nodiscard]] int zOut() const { return a_.stage_base + 2; }

  /// CTAID.Z-indexed base offsets (batched and/or split-K): the raw z is the
  /// output plane index (workspace planes are [batch][slice]-major), and for
  /// split_k > 1 it decomposes into slice = z & (split_k-1) — a k-offset of
  /// slice*slice_k elements into every A row and B^T row — and batch =
  /// z >> log2(split_k), a whole-plane offset into A and B^T.
  void emit_z_offsets() {
    const auto m = static_cast<std::int32_t>(shape_.m);
    const auto n = static_cast<std::int32_t>(shape_.n);
    const auto k = static_cast<std::int32_t>(shape_.k);
    b_.s2r(R(t0_), SpecialReg::kCtaIdZ);
    b_.imad_imm(R(zOut()), R(t0_), m * n * 2, RZ);
    if (cfg_.split_k > 1) {
      const auto slice2 = static_cast<std::int32_t>(cfg_.slice_k(shape_)) * 2;
      b_.land_imm(R(t1_), R(t0_), cfg_.split_k - 1);
      b_.imad_imm(R(zA()), R(t1_), slice2, RZ);
      b_.mov(R(zB()), R(zA()));
      b_.shr(R(t0_), R(t0_), std::countr_zero(static_cast<unsigned>(cfg_.split_k)));
      b_.imad_imm(R(zA()), R(t0_), m * k * 2, R(zA()));
      b_.imad_imm(R(zB()), R(t0_), n * k * 2, R(zB()));
    } else {
      b_.imad_imm(R(zA()), R(t0_), m * k * 2, RZ);
      b_.imad_imm(R(zB()), R(t0_), n * k * 2, RZ);
    }
  }

  void emit_prologue() {
    const auto k2 = static_cast<std::int32_t>(shape_.k) * 2;
    const auto n2 = static_cast<std::int32_t>(shape_.n) * 2;

    if (z_indexed_) emit_z_offsets();

    // lane7 = tid & 7 lives in t3_ for the whole slab-address section.
    b_.s2r(R(t0_), SpecialReg::kTidX);
    b_.land_imm(R(t3_), R(t0_), 7);

    // --- global-load and shared-store addresses per slab ----------------------
    for (SlabPlan* sp : {&a_, &bb_}) {
      SlabPlan& s = *sp;
      const bool is_a = sp == &a_;
      // addr = P [+ z offset] + (blk*dim + w*8 + lane7)*k*2 + cbq*16
      b_.mov_param(R(s.addr_reg), is_a ? 0 : 1);
      if (z_indexed_) b_.iadd3(R(s.addr_reg), R(s.addr_reg), R(is_a ? zA() : zB()));
      b_.s2r(R(s.sts_reg), SpecialReg::kTidX);  // tid scratch
      b_.s2r(R(t1_), is_a ? SpecialReg::kCtaIdY : SpecialReg::kCtaIdX);
      b_.imad_imm(R(t0_), R(t1_), (is_a ? cfg_.bm : cfg_.bn) * k2, R(s.addr_reg));
      b_.shr(R(s.frag_reg), R(s.sts_reg), 5);   // w
      b_.shl(R(t2_), R(s.frag_reg), 3);         // w8
      b_.iadd3(R(t2_), R(t2_), R(t3_));         // w8 + lane7
      b_.imad_imm(R(t0_), R(t2_), k2, R(t0_));
      b_.land_imm(R(t1_), R(s.sts_reg), 31);
      b_.shr(R(t1_), R(t1_), 3);                // cbq = (tid&31)>>3
      b_.imad_imm(R(s.addr_reg), R(t1_), 16, R(t0_));

      // STS base. Tile layouts: smem + w*tile_row_stride + cbq*128 + lane7*16.
      // Naive: smem + ((w8+lane7)*bk + cbq*8)*2.
      if (tile_layout()) {
        b_.imad_imm(R(s.sts_reg), R(s.frag_reg), tile_row_stride(), RZ);
        b_.imad_imm(R(s.sts_reg), R(t1_), 128, R(s.sts_reg));
        b_.imad_imm(R(s.sts_reg), R(t3_), 16, R(s.sts_reg));
      } else {
        b_.imad_imm(R(s.sts_reg), R(t2_), cfg_.bk * 2, RZ);
        b_.imad_imm(R(s.sts_reg), R(t1_), 16, R(s.sts_reg));
      }
      if (s.smem_base != 0) {
        b_.iadd_imm(R(s.sts_reg), R(s.sts_reg), static_cast<std::int32_t>(s.smem_base));
      }
    }

    // --- fragment (LDS) bases --------------------------------------------------
    // lane = tid&31, w = tid>>5, wy = w >> log2(bn/wn), wx = w & (bn/wn - 1).
    const int wn_cols = cfg_.bn / cfg_.wn;
    const int wx_shift = std::countr_zero(static_cast<unsigned>(wn_cols));
    b_.s2r(R(t0_), SpecialReg::kTidX);
    b_.land_imm(R(t3_), R(t0_), 31);  // lane
    b_.shr(R(t0_), R(t0_), 5);        // w
    b_.shr(R(t2_), R(t0_), wx_shift); // wy
    b_.land_imm(R(t1_), R(t0_), wn_cols - 1);  // wx

    if (tile_layout()) {
      b_.imad_imm(R(a_.frag_reg), R(t2_), (cfg_.wm / 8) * tile_row_stride(), RZ);
      b_.imad_imm(R(a_.frag_reg), R(t3_), 4, R(a_.frag_reg));
      b_.imad_imm(R(bb_.frag_reg), R(t1_), (cfg_.wn / 8) * tile_row_stride(), RZ);
      b_.imad_imm(R(bb_.frag_reg), R(t3_), 4, R(bb_.frag_reg));
    } else {
      // lane part of a naive 8x8-tile access: (l/4)*bk*2 + (l%4)*4.
      b_.shr(R(t0_), R(t3_), 2);
      b_.imad_imm(R(t0_), R(t0_), cfg_.bk * 2, RZ);
      b_.land_imm(R(rCAddr_), R(t3_), 3);
      b_.imad_imm(R(t0_), R(rCAddr_), 4, R(t0_));
      b_.imad_imm(R(a_.frag_reg), R(t2_), cfg_.wm * cfg_.bk * 2, R(t0_));
      b_.imad_imm(R(bb_.frag_reg), R(t1_), cfg_.wn * cfg_.bk * 2, R(t0_));
    }
    if (bb_.smem_base != 0) {
      b_.iadd_imm(R(bb_.frag_reg), R(bb_.frag_reg), static_cast<std::int32_t>(bb_.smem_base));
    }

    // --- C epilogue base ----------------------------------------------------
    // cAddr = C [+ z plane] + ((by*bm + wy*wm + l/4)*n + bx*bn + wx*wn + 2*(l%4))*2.
    // t2 = wy, t1 = wx, t3 = lane at this point.
    b_.mov_param(R(rCAddr_), 2);
    if (z_indexed_) b_.iadd3(R(rCAddr_), R(rCAddr_), R(zOut()));
    b_.s2r(R(t0_), SpecialReg::kCtaIdY);
    b_.imad_imm(R(t0_), R(t0_), cfg_.bm, RZ);
    b_.imad_imm(R(t0_), R(t2_), cfg_.wm, R(t0_));
    b_.shr(R(t2_), R(t3_), 2);  // l/4 (wy no longer needed)
    b_.iadd3(R(t0_), R(t0_), R(t2_));
    b_.imad_imm(R(t0_), R(t0_), n2, R(rCAddr_));
    b_.s2r(R(t2_), SpecialReg::kCtaIdX);
    b_.imad_imm(R(t0_), R(t2_), cfg_.bn * 2, R(t0_));
    b_.imad_imm(R(t0_), R(t1_), cfg_.wn * 2, R(t0_));
    b_.land_imm(R(t1_), R(t3_), 3);  // l%4
    b_.imad_imm(R(rCAddr_), R(t1_), 4, R(t0_));

    // --- zero the accumulators ------------------------------------------------
    for (int r = 0; r < nC_; ++r) b_.mov_imm(R(rC_ + r), 0);

    // --- slab 0: load, store, sync ---------------------------------------------
    emit_ldg_group(a_, /*guard=*/-1);
    emit_ldg_group(bb_, -1);
    emit_addr_advance();
    emit_sts_group(a_);
    emit_sts_group(bb_);
    b_.bar_sync();

    if (cfg_.prefetch) {
      emit_ldg_group(a_, -1);  // slab 1 into staging
      emit_ldg_group(bb_, -1);
      emit_addr_advance();
    }

    emit_lds_group(/*kstep=*/0, /*buf=*/0);  // fragments for k-step 0

    b_.mov_imm(R(rIter_), iters_);
  }

  // --- groups -----------------------------------------------------------------

  /// One prefetch LDG.128. `guard` < 0 means unguarded; otherwise the
  /// predicate index gating it (P1 = "two more iterations exist" on the
  /// prefetch path, P0 = "one more iteration exists" without prefetch). The
  /// WAR protection against the STS group still reading the staging
  /// registers is the scheduler's job (read-barrier demand on the STS,
  /// waited at its first overwriter — exactly this LDG).
  void emit_ldg(const SlabPlan& s, int t, int guard) {
    b_.ldg(MemWidth::k128, R(s.stage_base + 4 * t), R(s.addr_reg), ldg_offset(s, t),
           CacheOp::kCa);
    if (guard >= 0) b_.pred(Pred{static_cast<std::uint8_t>(guard)});
  }

  void emit_ldg_group(const SlabPlan& s, int guard) {
    for (int t = 0; t < s.ldg_slots; ++t) emit_ldg(s, t, guard);
  }

  void emit_addr_advance() {
    b_.iadd_imm(R(a_.addr_reg), R(a_.addr_reg), cfg_.bk * 2);
    b_.iadd_imm(R(bb_.addr_reg), R(bb_.addr_reg), cfg_.bk * 2);
  }

  void emit_sts(const SlabPlan& s, int t) {
    b_.sts(MemWidth::k128, R(s.sts_reg), R(s.stage_base + 4 * t), sts_offset(s, t));
  }

  void emit_sts_group(const SlabPlan& s) {
    for (int t = 0; t < s.ldg_slots; ++t) emit_sts(s, t);
  }

  void emit_lds(const SlabPlan& s, int frag_index, int kstep, int buf) {
    const int base = (&s == &a_) ? rA_[buf] : rB_[buf];
    b_.lds(MemWidth::k32, R(base + frag_index), R(s.frag_reg), frag_offset(frag_index, kstep));
  }

  void emit_lds_group(int kstep, int buf) {
    for (int i = 0; i < a_frags_; ++i) emit_lds(a_, i, kstep, buf);
    for (int i = 0; i < b_frags_; ++i) emit_lds(bb_, i, kstep, buf);
  }

  /// One k-step's HMMAs with interleaved memory work:
  ///  * interleave_lds: the next k-step's fragment loads, front-loaded to
  ///    finish by the k-step's midpoint so their latency is fully hidden;
  ///  * interleave_sts: the STS group at cfg_.sts_interleave spacing
  ///    (Section VI-C), and — once the stores are out — a mid-stream
  ///    BAR.SYNC followed by the *new* slab's k-step-0 fragment loads, one
  ///    per HMMA, so the iteration boundary has no bulk load phase.
  void emit_kstep(int kstep, bool interleave_lds, bool interleave_sts) {
    const int buf = kstep % 2;
    const int nextbuf = 1 - buf;
    const int H = hmma_per_kstep_;

    struct PendingLds {
      const SlabPlan* slab;
      int index;
      int kstep;
      int buf;
    };
    struct PendingSts {
      const SlabPlan* slab;
      int index;
    };
    std::vector<PendingLds> lds_ops;
    std::vector<PendingSts> sts_ops;
    std::vector<PendingLds> lds0_ops;  // after the mid-kstep barrier
    if (interleave_lds) {
      for (int i = 0; i < a_frags_; ++i) lds_ops.push_back({&a_, i, kstep + 1, nextbuf});
      for (int i = 0; i < b_frags_; ++i) lds_ops.push_back({&bb_, i, kstep + 1, nextbuf});
    }
    int sts_a_count = 0;
    if (interleave_sts) {
      for (int t = 0; t < a_.ldg_slots; ++t) sts_ops.push_back({&a_, t});
      sts_a_count = a_.ldg_slots;
      for (int t = 0; t < bb_.ldg_slots; ++t) sts_ops.push_back({&bb_, t});
      for (int i = 0; i < a_frags_; ++i) lds0_ops.push_back({&a_, i, 0, 0});
      for (int i = 0; i < b_frags_; ++i) lds0_ops.push_back({&bb_, i, 0, 0});
    }
    const int lds_total = static_cast<int>(lds_ops.size());

    std::size_t next_lds = 0;
    std::size_t next_sts = 0;
    std::size_t next_lds0 = 0;
    int next_ldg_a = interleave_sts ? 0 : a_.ldg_slots;  // slab i+2 prefetch
    int next_ldg_b = interleave_sts ? 0 : bb_.ldg_slots;
    bool bar_emitted = false;
    int hmma_since_sts = cfg_.sts_interleave;  // allow an STS at the first slot
    int hmma_since_ldg = 2;
    auto emit_pending = [&](int h) {
      // Fragment loads front-loaded: quota 2h*L/H, complete by the midpoint.
      const int lds_due =
          h >= H ? lds_total : std::min(lds_total, (2 * h * lds_total) / H + 1);
      while (static_cast<int>(next_lds) < lds_due) {
        const auto& op = lds_ops[next_lds++];
        emit_lds(*op.slab, op.index, op.kstep, op.buf);
      }
      // Stores at the configured spacing (bunched only in the final flush).
      bool emitted_mem = false;
      if (next_sts < sts_ops.size() &&
          (h >= H || hmma_since_sts >= cfg_.sts_interleave)) {
        const auto& op = sts_ops[next_sts++];
        emit_sts(*op.slab, op.index);
        hmma_since_sts = 0;
        emitted_mem = true;
      }
      // Prefetch LDGs for slab i+2, each slab's group as soon as its STS
      // group has consumed the staging registers (the scheduler's read
      // barriers enforce the WAR), one LDG every other HMMA.
      if (interleave_sts && !emitted_mem && (h >= H || hmma_since_ldg >= 2)) {
        if (next_ldg_a < a_.ldg_slots && static_cast<int>(next_sts) >= sts_a_count) {
          emit_ldg(a_, next_ldg_a, /*guard=*/1);
          ++next_ldg_a;
          hmma_since_ldg = 0;
          emitted_mem = true;
        } else if (next_ldg_b < bb_.ldg_slots && next_sts == sts_ops.size()) {
          emit_ldg(bb_, next_ldg_b, 1);
          ++next_ldg_b;
          hmma_since_ldg = 0;
          emitted_mem = true;
        }
      }
      // After the last store: barrier (the new slab is complete in smem),
      // then the new slab's first fragment group, one load per HMMA slot.
      if (interleave_sts && next_sts == sts_ops.size()) {
        if (!bar_emitted) {
          b_.bar_sync();
          bar_emitted = true;
        }
        while (next_lds0 < lds0_ops.size()) {
          const auto& op = lds0_ops[next_lds0++];
          emit_lds(*op.slab, op.index, op.kstep, op.buf);
          if (h < H && emitted_mem) break;
          if (h < H) {
            emitted_mem = true;
            break;
          }
        }
      }
      // Final flush must also drain the prefetch LDGs.
      if (h >= H) {
        while (next_ldg_a < a_.ldg_slots) {
          emit_ldg(a_, next_ldg_a, 1);
          ++next_ldg_a;
        }
        while (next_ldg_b < bb_.ldg_slots) {
          emit_ldg(bb_, next_ldg_b, 1);
          ++next_ldg_b;
        }
      }
    };

    for (int mi = 0; mi < cfg_.wm / 16; ++mi) {
      for (int nj = 0; nj < cfg_.wn / 8; ++nj) {
        const int h = mi * (cfg_.wn / 8) + nj;
        const int cpair = rC_ + h * 2;
        b_.hmma_1688_f16(R(cpair), R(rA_[buf] + 2 * mi), R(rB_[buf] + nj), R(cpair));
        ++hmma_since_sts;
        emit_pending(h + 1);
      }
    }
    emit_pending(H);  // flush whatever did not fit between HMMAs
  }

  // --- main loop ---------------------------------------------------------------

  void emit_body() {
    b_.label("body");
    // The ISETPs read the decremented counter — on silicon the ALU latency
    // must elapse first or the loop runs one extra iteration. The scheduler
    // derives that spacing (and the predicate-to-BRA gap) from the table.
    b_.iadd_imm(R(rIter_), R(rIter_), -1);
    b_.isetp_imm(Pred{0}, CmpOp::kGt, R(rIter_), 0);
    b_.isetp_imm(Pred{1}, CmpOp::kGt, R(rIter_), 1);

    if (!cfg_.prefetch) {
      // Ablation path: compute first, then load the next slab with the DRAM
      // latency fully exposed.
      for (int s = 0; s < ksteps_; ++s) {
        emit_kstep(s, /*interleave_lds=*/s + 1 < ksteps_, /*interleave_sts=*/false);
      }
      emit_ldg_group(a_, /*guard=*/0);   // P0: one more iteration
      emit_ldg_group(bb_, 0);
      emit_addr_advance();
      b_.bar_sync();  // every warp done reading the old slab
      emit_sts_group(a_);
      emit_sts_group(bb_);
      b_.bar_sync();
      emit_lds_group(0, 0);
      b_.bra("body").pred(Pred{0});
      return;
    }

    // k-steps 0 .. S-2: compute + load next k-step's fragments.
    for (int s = 0; s + 1 < ksteps_; ++s) {
      emit_kstep(s, /*interleave_lds=*/true, /*interleave_sts=*/false);
    }

    // Store k-step. Arriving at the barrier means the old slab can be
    // overwritten; the scheduler drains this warp's in-flight fragment reads
    // at the BAR.SYNC and holds the STS group on the staging registers'
    // write barriers. The k-step itself interleaves STS, a mid-stream
    // barrier and the new slab's k-step-0 fragment loads (see emit_kstep).
    b_.bar_sync();
    emit_kstep(ksteps_ - 1, /*interleave_lds=*/false, /*interleave_sts=*/true);
    emit_addr_advance();
    b_.bra("body").pred(Pred{0});
  }

  // --- epilogue -----------------------------------------------------------------

  void emit_epilogue() {
    const auto n2 = static_cast<std::int32_t>(shape_.n) * 2;
    const bool scaled = !ep_.is_default();
    const bool reload = half(ep_.beta).to_float() != 0.0f;
    if (scaled) {
      // alpha/beta as packed half2 immediates (each lane scales two halves).
      const half ah(ep_.alpha);
      const half bh(ep_.beta);
      b_.mov_imm(R(t1_), static_cast<std::int32_t>(half2{ah, ah}.pack()));
      b_.mov_imm(R(t2_), static_cast<std::int32_t>(half2{bh, bh}.pack()));
    }
    for (int mi = 0; mi < cfg_.wm / 16; ++mi) {
      for (int nj = 0; nj < cfg_.wn / 8; ++nj) {
        const int cpair = rC_ + (mi * (cfg_.wn / 8) + nj) * 2;
        for (int part = 0; part < 2; ++part) {
          const std::int32_t off = mi * 16 * n2 + nj * 8 * 2 + part * 8 * n2;
          if (!scaled) {
            b_.stg(MemWidth::k32, R(rCAddr_), R(cpair + part), off);
            continue;
          }
          // val = round(beta*Cold) then round(alpha*acc + val), per element,
          // then the activation tail. The reduction kernel mirrors this
          // exact rounding sequence for the non-fused path.
          if (reload) {
            b_.ldg(MemWidth::k32, R(t0_), R(rCAddr_), off);
            b_.hmul2(R(t3_), R(t2_), R(t0_));
          } else {
            b_.mov_imm(R(t3_), 0);
          }
          b_.hfma2(R(t3_), R(t1_), R(cpair + part), R(t3_));
          if (ep_.act == Activation::kRelu) b_.hmax2(R(t3_), R(t3_), RZ);
          if (ep_.act == Activation::kGelu) b_.hgelu2(R(t3_), R(t3_));
          b_.stg(MemWidth::k32, R(rCAddr_), R(t3_), off);
        }
      }
    }
    b_.exit();
  }

  HgemmConfig cfg_;
  GemmShape shape_;
  Epilogue ep_;
  bool z_indexed_ = false;
  KernelBuilder b_;

  int warps_ = 0;
  int ksteps_ = 0;
  int hmma_per_kstep_ = 0;
  int a_frags_ = 0;
  int b_frags_ = 0;
  int iters_ = 0;

  int rA_[2] = {0, 0};
  int rB_[2] = {0, 0};
  int rC_ = 0;
  int nC_ = 0;
  SlabPlan a_;
  SlabPlan bb_;
  int rCAddr_ = 0;
  int rIter_ = 0;
  int t0_ = 0, t1_ = 0, t2_ = 0, t3_ = 0;
};

}  // namespace

const char* activation_name(Activation act) {
  switch (act) {
    case Activation::kNone: return "none";
    case Activation::kRelu: return "relu";
    case Activation::kGelu: return "gelu";
  }
  return "unknown";
}

sass::Program hgemm_kernel_virtual(const HgemmConfig& cfg, const GemmShape& shape,
                                   const Epilogue& epilogue, const KernelVariant& variant) {
  return HgemmGenerator(cfg, shape, epilogue, variant).generate();
}

sass::Program hgemm_kernel(const HgemmConfig& cfg, const GemmShape& shape,
                           const Epilogue& epilogue, const KernelVariant& variant) {
  return sched::schedule(hgemm_kernel_virtual(cfg, shape, epilogue, variant));
}

sass::Program reduce_epilogue_kernel_virtual(const ReducePlan& plan) {
  TC_CHECK(plan.m >= 1 && plan.n >= 2 && plan.n % 2 == 0,
           "reduce_epilogue_kernel needs an even column count");
  TC_CHECK(plan.parts >= 1 && plan.parts <= 64, "parts must be in [1, 64]");
  TC_CHECK(plan.parts > 1 || plan.bias || !plan.epilogue.is_default(),
           "a 1-part reduction with a default epilogue is the identity");

  std::string name = "gemm_reduce_" + std::to_string(plan.m) + "x" + std::to_string(plan.n) +
                     "_p" + std::to_string(plan.parts);
  if (plan.bias) name += "_bias";
  if (plan.epilogue.act != Activation::kNone) {
    name += std::string("_") + activation_name(plan.epilogue.act);
  }
  KernelBuilder b(name, /*unscheduled=*/true);
  b.threads(128);

  const auto n2 = static_cast<std::int32_t>(plan.n) * 2;       // row stride, bytes
  const auto plane = static_cast<std::int32_t>(plan.m) * n2;   // one m x n plane, bytes
  const half ah(plan.epilogue.alpha);
  const half bh(plan.epilogue.beta);
  TC_CHECK(!ah.is_nan() && !bh.is_nan(), "NaN GEMM scalars");
  const bool reload = bh.to_float() != 0.0f;

  // Register map (straight-line kernel, no loop): r0..r3 scratch/address,
  // r4 accumulator, r5 alpha2 / r6 beta2 immediates, r7 bias address,
  // r8.. the partial-load staging window.
  constexpr int rIn = 0, rOut = 1, rT = 2, rAcc = 4, rAl = 5, rBe = 6, rBias = 7, rStage = 8;
  constexpr int kStage = 8;  // partial loads in flight per chunk

  // col2 = cta_x*128 + tid (one half2 per thread); P0 = col2 < n/2.
  b.s2r(R(rT), SpecialReg::kTidX);
  b.s2r(R(3), SpecialReg::kCtaIdX);
  b.imad_imm(R(rT), R(3), 128, R(rT));
  b.isetp_imm(Pred{0}, CmpOp::kLt, R(rT), static_cast<std::int32_t>(plan.n / 2));

  // In base:  W + (z*parts + 0)*plane + row*n2 + col2*4.
  // Out base: C + z*plane + row*n2 + col2*4.
  b.s2r(R(3), SpecialReg::kCtaIdZ);
  b.mov_param(R(rIn), 0);
  b.imad_imm(R(rIn), R(3), plane * plan.parts, R(rIn));
  b.mov_param(R(rOut), 1);
  b.imad_imm(R(rOut), R(3), plane, R(rOut));
  b.s2r(R(3), SpecialReg::kCtaIdY);
  b.imad_imm(R(3), R(3), n2, RZ);
  b.iadd3(R(rIn), R(rIn), R(3));
  b.iadd3(R(rOut), R(rOut), R(3));
  b.imad_imm(R(3), R(rT), 4, RZ);
  b.iadd3(R(rIn), R(rIn), R(3));
  b.iadd3(R(rOut), R(rOut), R(3));
  if (plan.bias) {
    b.mov_param(R(rBias), 2);
    b.iadd3(R(rBias), R(rBias), R(3));
  }

  const auto guarded = [&](auto&& emit) {
    emit();
    b.pred(Pred{0});
  };

  // Fold the partials in slice order: acc = p0, then acc = HADD2(acc, ps).
  guarded([&] { b.ldg(MemWidth::k32, R(rAcc), R(rIn), 0); });
  for (int s = 1; s < plan.parts;) {
    const int chunk = std::min(kStage, plan.parts - s);
    for (int j = 0; j < chunk; ++j) {
      guarded([&] { b.ldg(MemWidth::k32, R(rStage + j), R(rIn), (s + j) * plane); });
    }
    for (int j = 0; j < chunk; ++j) b.hadd2(R(rAcc), R(rAcc), R(rStage + j));
    s += chunk;
  }

  // Epilogue with the fused tail's exact rounding sequence.
  if (!plan.epilogue.is_default() || plan.bias) {
    b.mov_imm(R(rAl), static_cast<std::int32_t>(half2{ah, ah}.pack()));
    if (reload) {
      guarded([&] { b.ldg(MemWidth::k32, R(rT), R(rOut), 0); });
      b.mov_imm(R(rBe), static_cast<std::int32_t>(half2{bh, bh}.pack()));
      b.hmul2(R(3), R(rBe), R(rT));
    } else {
      b.mov_imm(R(3), 0);
    }
    b.hfma2(R(rAcc), R(rAl), R(rAcc), R(3));
    if (plan.bias) {
      guarded([&] { b.ldg(MemWidth::k32, R(rT), R(rBias), 0); });
      b.hadd2(R(rAcc), R(rAcc), R(rT));
    }
    if (plan.epilogue.act == Activation::kRelu) b.hmax2(R(rAcc), R(rAcc), RZ);
    if (plan.epilogue.act == Activation::kGelu) b.hgelu2(R(rAcc), R(rAcc));
  }
  guarded([&] { b.stg(MemWidth::k32, R(rOut), R(rAcc), 0); });
  b.exit();
  return b.finalize();
}

sass::Program reduce_epilogue_kernel(const ReducePlan& plan) {
  return sched::schedule(reduce_epilogue_kernel_virtual(plan));
}

sass::Program wmma_naive_kernel_virtual(const GemmShape& shape) {
  TC_CHECK(shape.m % 16 == 0 && shape.n % 128 == 0 && shape.k % 16 == 0,
           "wmma_naive needs m%16 == 0, n%128 == 0, k%16 == 0 (the hgemm API pads)");
  KernelBuilder b("hgemm_wmma_naive", /*unscheduled=*/true);
  b.threads(256);

  // Each warp computes one 16x16 C tile at (by*16, bx*128 + w*16), loading
  // fragments straight from global memory each 16-deep k-chunk.
  const auto k2 = static_cast<std::int32_t>(shape.k) * 2;
  const auto n2 = static_cast<std::int32_t>(shape.n) * 2;

  b.s2r(R(40), SpecialReg::kTidX);
  b.s2r(R(41), SpecialReg::kCtaIdX);
  b.s2r(R(42), SpecialReg::kCtaIdY);

  b.land_imm(R(43), R(40), 31);  // lane
  b.shr(R(44), R(43), 2);        // l/4
  b.land_imm(R(45), R(43), 3);   // l%4
  b.shr(R(46), R(40), 5);        // warp

  // A fragment address: A + ((by*16 + l/4)*k + 2*(l%4))*2; hi tile +8 rows.
  b.mov_param(R(32), 0);
  b.imad_imm(R(47), R(42), 16, RZ);
  b.iadd3(R(47), R(47), R(44));
  b.imad_imm(R(47), R(47), k2, R(32));
  b.imad_imm(R(32), R(45), 4, R(47));

  // B fragment address: Bt + ((bx*128 + w*16 + l/4)*k + 2*(l%4))*2.
  b.mov_param(R(33), 1);
  b.imad_imm(R(48), R(41), 128, RZ);
  b.imad_imm(R(48), R(46), 16, R(48));
  b.iadd3(R(48), R(48), R(44));
  b.imad_imm(R(48), R(48), k2, R(33));
  b.imad_imm(R(33), R(45), 4, R(48));

  // C address: C + ((by*16 + l/4)*n + bx*128 + w*16 + 2*(l%4))*2.
  b.mov_param(R(34), 2);
  b.imad_imm(R(49), R(42), 16, RZ);
  b.iadd3(R(49), R(49), R(44));
  b.imad_imm(R(49), R(49), n2, R(34));
  b.imad_imm(R(49), R(41), 256, R(49));
  b.imad_imm(R(49), R(46), 32, R(49));
  b.imad_imm(R(34), R(45), 4, R(49));

  for (int r = 12; r <= 15; ++r) b.mov_imm(R(r), 0);
  b.mov_imm(R(35), static_cast<std::int32_t>(shape.k / 16));

  b.label("loop");
  b.iadd_imm(R(35), R(35), -1);
  b.isetp_imm(Pred{0}, CmpOp::kGt, R(35), 0);
  // A 16x16 = {lo,hi} x {k0,k1} tiles; B 16x16 likewise by column group.
  b.ldg(MemWidth::k32, R(2), R(32), 0);             // A lo k0
  b.ldg(MemWidth::k32, R(4), R(32), 16);            // A lo k1
  b.ldg(MemWidth::k32, R(3), R(32), 8 * k2);        // A hi k0
  b.ldg(MemWidth::k32, R(5), R(32), 8 * k2 + 16);   // A hi k1
  b.ldg(MemWidth::k32, R(8), R(33), 0);             // B c0-7 k0
  b.ldg(MemWidth::k32, R(9), R(33), 16);            // B c0-7 k1
  b.ldg(MemWidth::k32, R(10), R(33), 8 * k2);       // B c8-15 k0
  b.ldg(MemWidth::k32, R(11), R(33), 8 * k2 + 16);  // B c8-15 k1
  b.iadd_imm(R(32), R(32), 32);
  b.iadd_imm(R(33), R(33), 32);
  // Interleave the two accumulator pairs so the in-place accumulation
  // latency overlaps the other pair's issue (the scheduler spaces them).
  b.hmma_1688_f16(R(12), R(2), R(8), R(12));
  b.hmma_1688_f16(R(14), R(2), R(10), R(14));
  b.hmma_1688_f16(R(12), R(4), R(9), R(12));
  b.hmma_1688_f16(R(14), R(4), R(11), R(14));
  b.bra("loop").pred(Pred{0});

  b.stg(MemWidth::k32, R(34), R(12), 0);
  b.stg(MemWidth::k32, R(34), R(13), 8 * n2);
  b.stg(MemWidth::k32, R(34), R(14), 16);
  b.stg(MemWidth::k32, R(34), R(15), 8 * n2 + 16);
  b.exit();
  return b.finalize();
}

sass::Program wmma_naive_kernel(const GemmShape& shape) {
  return sched::schedule(wmma_naive_kernel_virtual(shape));
}

}  // namespace tc::core
