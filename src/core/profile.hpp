// Profiling entry points over the steady-state HGEMM surrogate.
//
// PerfEstimator (hgemm.hpp) runs a small surrogate kernel — `ctas_per_sm`
// resident CTAs, a short main loop, the SM's fair bandwidth share — to
// measure cycles per iteration. The functions here run the *same* surrogate
// with a tc::prof::Profiler attached, so the counters describe exactly the
// workload whose timing the estimator reports:
//
//  * profile_hgemm:        one profiled run sized after a target GEMM shape
//                          (pipe utilization, stall table, optional trace).
//  * observe_pipe_cycles:  differential two-run measurement of per-iteration
//                          tensor and memory-IO cycles — the *observed*
//                          counterpart of the analytic Table VI columns in
//                          model/blocking.hpp.
#pragma once

#include "common/matrix.hpp"
#include "core/config.hpp"
#include "device/spec.hpp"
#include "prof/profiler.hpp"
#include "sim/timed_sm.hpp"

namespace tc::core {

/// One steady-state surrogate run. This is the measurement harness inside
/// PerfEstimator::measure_steady, exposed so profiled and unprofiled runs
/// share one definition of the workload.
struct SurrogateOptions {
  int iterations = 6;            // main-loop iterations (surrogate k = iterations * bk)
  double l2_hit_rate = 0.0;      // forced LDG L2 hit fraction (model-provided)
  double dram_efficiency = 1.0;  // DRAM row-locality derating of the bandwidth share
  prof::Profiler* profiler = nullptr;  // optional; null = plain timing run
};

/// CTAs of `cfg`'s kernel that fit on one SM (the occupancy probe
/// PerfEstimator uses to size the surrogate grid).
[[nodiscard]] int surrogate_ctas_per_sm(const device::DeviceSpec& spec, const HgemmConfig& cfg);

/// Runs `ctas_per_sm` resident CTAs of the surrogate on one simulated SM
/// with its fair bandwidth share and returns the timing stats.
sim::TimedStats run_steady_surrogate(const device::DeviceSpec& spec, const HgemmConfig& cfg,
                                     int ctas_per_sm, const SurrogateOptions& opt);

/// Result of profile_hgemm. `profiler` is sealed (end_run called); query
/// counters(), hot_pcs() or print_report() directly.
struct HgemmProfile {
  prof::Profiler profiler;
  sim::TimedStats stats;
  double l2_hit_rate = 0.0;
  double dram_efficiency = 1.0;
  int iterations = 0;
  int ctas_per_sm = 0;
};

/// Profiles the steady-state portion of `cfg` on `shape`: the surrogate main
/// loop runs min(k/bk, 48) iterations under the L2 hit rate and DRAM
/// efficiency the performance model assigns to this shape (the same inputs
/// PerfEstimator::estimate uses). Attach `trace` to also capture a timeline.
[[nodiscard]] HgemmProfile profile_hgemm(const device::DeviceSpec& spec, const HgemmConfig& cfg,
                                         const GemmShape& shape,
                                         prof::TraceWriter* trace = nullptr);

/// Counter-observed pipe cycles per main-loop iteration, measured as the
/// slope between two surrogate runs of different iteration counts (so
/// prologue/epilogue cost cancels), with LDGs served from L2 as the paper's
/// Table VI assumes.
struct ObservedPipeCycles {
  /// Tensor-pipe cycles per CTA-iteration per partition (Eq. (3) analogue).
  double tensor_cycles = 0.0;
  /// MIO-pipe + L2-return-port cycles per CTA-iteration (Eqs. (4)+(5)
  /// analogue: the surrogate's LDG cost is mostly port serialization).
  double memio_cycles = 0.0;
  /// Utilizations over the longer run (includes prologue/epilogue).
  double tensor_util = 0.0;
  /// MIO pipe + return port busy fraction; the "memory-IO pressure" the
  /// paper's blocking analysis ranks configurations by.
  double mio_util = 0.0;
  int ctas_per_sm = 0;
};

[[nodiscard]] ObservedPipeCycles observe_pipe_cycles(const device::DeviceSpec& spec,
                                                     const HgemmConfig& cfg);

}  // namespace tc::core
