// One compiled copy of every host-float lane operation, shared by the
// interpreter (sim/exec_core.cpp) and the JIT backend (jit/backend.cpp).
//
// Bitwise identity between the two engines requires exactly ONE machine-code
// implementation of each operation: for `a + b` with two NaN operands, x86
// returns whichever NaN codegen placed in the destination register, so two
// inlined copies of the same C++ expression can legally produce different
// NaN payloads. The engine-differential fuzzer caught exactly that (FFMA
// over NaN inputs) when these expressions lived inline in each executor.
// The definitions are noinline so even the defining TU goes through the one
// compiled body.
#pragma once

#include <cstdint>

namespace tc::sim {

std::uint32_t fadd_bits(std::uint32_t a, std::uint32_t b);
std::uint32_t fmul_bits(std::uint32_t a, std::uint32_t b);
std::uint32_t ffma_bits(std::uint32_t a, std::uint32_t b, std::uint32_t c);

std::uint32_t hadd2_bits(std::uint32_t a, std::uint32_t b);
std::uint32_t hmul2_bits(std::uint32_t a, std::uint32_t b);
std::uint32_t hfma2_bits(std::uint32_t a, std::uint32_t b, std::uint32_t c);
std::uint32_t hmax2_bits(std::uint32_t a, std::uint32_t b);
std::uint32_t hgelu2_bits(std::uint32_t a);

std::uint32_t f2f_narrow_bits(std::uint32_t a);  // F2F.F16.F32 (round-nearest)
std::uint32_t f2f_widen_bits(std::uint32_t a);   // F2F.F32.F16 (exact)

}  // namespace tc::sim
