// Final architectural state capture for differential testing.
//
// Both executors must agree bit-for-bit on what a kernel *computes*: the
// committed register file, the predicate file, and global memory. A
// StateProbe attached to a run records each warp's final state keyed by
// (cta_x, cta_y, cta_z, warp_in_cta) so the check layer (src/check) can diff a
// functional run against a timed run of the same launch. The functional
// executor runs CTAs on several host threads, so capture() locks.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "sim/reg_file.hpp"

namespace tc::sim {

struct WarpSnapshot {
  std::uint32_t cta_x = 0;
  std::uint32_t cta_y = 0;
  std::uint32_t cta_z = 0;
  int warp_in_cta = 0;
  std::vector<std::uint32_t> gprs;       // num_regs x kWarpSize, register-major
  std::array<std::uint32_t, 7> preds{};  // lane masks for P0..P6
};

class StateProbe {
 public:
  /// Registers [0, num_regs) are captured per warp; set before the run.
  void set_num_regs(int num_regs);

  /// Records the committed state of one warp (call after final settle).
  void capture(const WarpRegs& regs, std::uint32_t cta_x, std::uint32_t cta_y, int warp_in_cta);
  void capture(const WarpRegs& regs, std::uint32_t cta_x, std::uint32_t cta_y,
               std::uint32_t cta_z, int warp_in_cta);

  /// Snapshots sorted by (cta_z, cta_y, cta_x, warp_in_cta).
  [[nodiscard]] std::vector<WarpSnapshot> sorted() const;

  void clear();

  /// Empty string when both runs captured identical state; otherwise a
  /// description of the first differences (bounded, human-readable). The
  /// names label each side in the report — e.g. "interpret" vs "jit" for the
  /// engine-differential fuzzer.
  static std::string diff(const StateProbe& a, const StateProbe& b, int max_reports = 4,
                          const std::string& a_name = "functional",
                          const std::string& b_name = "timed");

 private:
  int num_regs_ = 0;
  std::vector<WarpSnapshot> snapshots_;
  mutable std::mutex mutex_;
};

}  // namespace tc::sim
