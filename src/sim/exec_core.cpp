#include "sim/exec_core.hpp"

#include <cstring>

#include "common/error.hpp"
#include "sim/lane_ops.hpp"
#include "sim/mma_exec.hpp"

namespace tc::sim {

namespace {

std::uint32_t special_value(const ExecContext& ctx, sass::SpecialReg sr, int lane) {
  return special_reg_value(sr, lane, ctx.warp_in_cta, ctx.cta_x, ctx.cta_y, ctx.cta_z,
                           ctx.launch->grid_x, ctx.sm_id);
}

}  // namespace

bool eval_cmp(sass::CmpOp op, std::int32_t a, std::int32_t b) {
  switch (op) {
    case sass::CmpOp::kLt: return a < b;
    case sass::CmpOp::kLe: return a <= b;
    case sass::CmpOp::kGt: return a > b;
    case sass::CmpOp::kGe: return a >= b;
    case sass::CmpOp::kEq: return a == b;
    case sass::CmpOp::kNe: return a != b;
  }
  return false;
}

std::uint32_t special_reg_value(sass::SpecialReg sr, int lane, int warp_in_cta,
                                std::uint32_t cta_x, std::uint32_t cta_y, std::uint32_t cta_z,
                                std::uint32_t grid_x, int sm_id) {
  switch (sr) {
    case sass::SpecialReg::kLaneId:
      return static_cast<std::uint32_t>(lane);
    case sass::SpecialReg::kTidX:
      return static_cast<std::uint32_t>(warp_in_cta * kWarpSize + lane);
    case sass::SpecialReg::kCtaIdX:
      return cta_x;
    case sass::SpecialReg::kCtaIdY:
      return cta_y;
    case sass::SpecialReg::kCtaIdZ:
      return cta_z;
    case sass::SpecialReg::kNCtaIdX:
      return grid_x;
    case sass::SpecialReg::kSmId:
      return static_cast<std::uint32_t>(sm_id);
  }
  return 0;
}

StepResult exec_step(const ExecContext& ctx, const sass::Instruction& inst, WriteSink& sink) {
  WarpRegs& regs = *ctx.regs;
  StepResult result;

  // Guard evaluation per lane.
  std::array<bool, kWarpSize> active{};
  bool any_active = false;
  bool all_active = true;
  for (int lane = 0; lane < kWarpSize; ++lane) {
    bool g = regs.read_pred(inst.guard, lane);
    if (inst.guard_negated) g = !g;
    active[static_cast<std::size_t>(lane)] = g;
    any_active |= g;
    all_active &= g;
  }

  using sass::Opcode;
  switch (inst.op) {
    case Opcode::kNop:
      break;

    case Opcode::kExit:
      TC_CHECK(all_active || !any_active, "divergent EXIT is not supported");
      if (any_active) result.kind = StepKind::kExit;
      break;

    case Opcode::kBra:
      TC_CHECK(all_active || !any_active,
               "divergent BRA is not supported (warp-uniform branches only)");
      if (any_active) {
        result.kind = StepKind::kBranch;
        result.branch_target = inst.target;
      }
      break;

    case Opcode::kBar:
      result.kind = StepKind::kBarrier;
      break;

    case Opcode::kMov:
      for (int lane = 0; lane < kWarpSize; ++lane) {
        if (!active[static_cast<std::size_t>(lane)]) continue;
        const std::uint32_t v =
            inst.has_imm ? static_cast<std::uint32_t>(inst.imm) : regs.read(inst.srca, lane);
        sink.gpr(inst.dst, lane, v);
      }
      break;

    case Opcode::kMovParam:
      TC_CHECK(inst.param_index < ctx.launch->params.size(),
               "MOV.PARAM reads word " + std::to_string(inst.param_index) + " but only " +
                   std::to_string(ctx.launch->params.size()) + " provided");
      for (int lane = 0; lane < kWarpSize; ++lane) {
        if (active[static_cast<std::size_t>(lane)]) {
          sink.gpr(inst.dst, lane, ctx.launch->params[inst.param_index]);
        }
      }
      break;

    case Opcode::kS2r:
      for (int lane = 0; lane < kWarpSize; ++lane) {
        if (active[static_cast<std::size_t>(lane)]) {
          sink.gpr(inst.dst, lane, special_value(ctx, inst.sreg, lane));
        }
      }
      break;

    case Opcode::kCs2rClock:
      for (int lane = 0; lane < kWarpSize; ++lane) {
        if (active[static_cast<std::size_t>(lane)]) {
          sink.gpr(inst.dst, lane, static_cast<std::uint32_t>(ctx.clock & 0xFFFFFFFFull));
        }
      }
      break;

    case Opcode::kIadd3:
    case Opcode::kImad:
    case Opcode::kLop3And:
    case Opcode::kLop3Or:
    case Opcode::kLop3Xor:
    case Opcode::kShfL:
    case Opcode::kShfR:
      for (int lane = 0; lane < kWarpSize; ++lane) {
        if (!active[static_cast<std::size_t>(lane)]) continue;
        const std::uint32_t a = regs.read(inst.srca, lane);
        const std::uint32_t b =
            inst.has_imm ? static_cast<std::uint32_t>(inst.imm) : regs.read(inst.srcb, lane);
        const std::uint32_t c = regs.read(inst.srcc, lane);
        std::uint32_t v = 0;
        switch (inst.op) {
          case Opcode::kIadd3: v = a + b + c; break;
          case Opcode::kImad: v = a * b + c; break;
          case Opcode::kLop3And: v = a & b; break;
          case Opcode::kLop3Or: v = a | b; break;
          case Opcode::kLop3Xor: v = a ^ b; break;
          case Opcode::kShfL: v = a << (b & 31u); break;
          case Opcode::kShfR: v = a >> (b & 31u); break;
          default: break;
        }
        sink.gpr(inst.dst, lane, v);
      }
      break;

    case Opcode::kIsetp:
      for (int lane = 0; lane < kWarpSize; ++lane) {
        if (!active[static_cast<std::size_t>(lane)]) continue;
        const auto a = static_cast<std::int32_t>(regs.read(inst.srca, lane));
        const auto b = inst.has_imm ? inst.imm
                                    : static_cast<std::int32_t>(regs.read(inst.srcb, lane));
        sink.pred(inst.pdst, lane, eval_cmp(inst.cmp, a, b));
      }
      break;

    case Opcode::kSel:
      for (int lane = 0; lane < kWarpSize; ++lane) {
        if (!active[static_cast<std::size_t>(lane)]) continue;
        const bool p = regs.read_pred(inst.pdst, lane);
        sink.gpr(inst.dst, lane, p ? regs.read(inst.srca, lane) : regs.read(inst.srcb, lane));
      }
      break;

    // Float and half lanes go through sim/lane_ops.cpp: one compiled copy of
    // each operation keeps NaN payloads identical across every executor.
    case Opcode::kFadd:
    case Opcode::kFmul:
    case Opcode::kFfma:
      for (int lane = 0; lane < kWarpSize; ++lane) {
        if (!active[static_cast<std::size_t>(lane)]) continue;
        const std::uint32_t a = regs.read(inst.srca, lane);
        const std::uint32_t b = regs.read(inst.srcb, lane);
        const std::uint32_t c = regs.read(inst.srcc, lane);
        std::uint32_t v = 0;
        switch (inst.op) {
          case Opcode::kFadd: v = fadd_bits(a, b); break;
          case Opcode::kFmul: v = fmul_bits(a, b); break;
          case Opcode::kFfma: v = ffma_bits(a, b, c); break;
          default: break;
        }
        sink.gpr(inst.dst, lane, v);
      }
      break;

    case Opcode::kHadd2:
    case Opcode::kHmul2:
    case Opcode::kHfma2:
    case Opcode::kHmax2:
      for (int lane = 0; lane < kWarpSize; ++lane) {
        if (!active[static_cast<std::size_t>(lane)]) continue;
        const std::uint32_t a = regs.read(inst.srca, lane);
        const std::uint32_t b = regs.read(inst.srcb, lane);
        const std::uint32_t c = regs.read(inst.srcc, lane);
        std::uint32_t v = 0;
        switch (inst.op) {
          case Opcode::kHadd2: v = hadd2_bits(a, b); break;
          case Opcode::kHmul2: v = hmul2_bits(a, b); break;
          case Opcode::kHfma2: v = hfma2_bits(a, b, c); break;
          case Opcode::kHmax2: v = hmax2_bits(a, b); break;
          default: break;
        }
        sink.gpr(inst.dst, lane, v);
      }
      break;

    case Opcode::kHgelu2:
      for (int lane = 0; lane < kWarpSize; ++lane) {
        if (!active[static_cast<std::size_t>(lane)]) continue;
        sink.gpr(inst.dst, lane, hgelu2_bits(regs.read(inst.srca, lane)));
      }
      break;

    case Opcode::kF2fF32ToF16:
      for (int lane = 0; lane < kWarpSize; ++lane) {
        if (!active[static_cast<std::size_t>(lane)]) continue;
        sink.gpr(inst.dst, lane, f2f_narrow_bits(regs.read(inst.srca, lane)));
      }
      break;

    case Opcode::kF2fF16ToF32:
      for (int lane = 0; lane < kWarpSize; ++lane) {
        if (!active[static_cast<std::size_t>(lane)]) continue;
        sink.gpr(inst.dst, lane, f2f_widen_bits(regs.read(inst.srca, lane)));
      }
      break;

    case Opcode::kHmma1688F16:
    case Opcode::kHmma1688F32:
    case Opcode::kHmma884F16:
    case Opcode::kImma8816S8:
      TC_CHECK(all_active, "predicated-off MMA lanes are not supported");
      exec_mma(inst.op, regs, inst.dst, inst.srca, inst.srcb, inst.srcc, sink,
               ctx.launch->numerics);
      break;

    case Opcode::kLdg:
    case Opcode::kStg:
    case Opcode::kLds:
    case Opcode::kSts: {
      const bool is_global = inst.op == Opcode::kLdg || inst.op == Opcode::kStg;
      const bool is_store = inst.op == Opcode::kStg || inst.op == Opcode::kSts;
      const int bytes = sass::width_bytes(inst.width);
      const int nregs = sass::width_regs(inst.width);

      result.mem.valid = true;
      result.mem.is_global = is_global;
      result.mem.is_store = is_store;
      result.mem.width = inst.width;
      result.mem.cache = inst.cache;
      result.mem.active = active;

      if (is_global) {
        TC_CHECK(ctx.gmem != nullptr, "global access without global memory");
      } else {
        TC_CHECK(ctx.smem != nullptr, "shared access in a kernel with no shared memory");
      }

      for (int lane = 0; lane < kWarpSize; ++lane) {
        const std::uint32_t addr =
            regs.read(inst.srca, lane) + static_cast<std::uint32_t>(inst.imm);
        result.mem.addrs[static_cast<std::size_t>(lane)] = addr;
        if (!active[static_cast<std::size_t>(lane)]) continue;
        TC_CHECK(addr % static_cast<std::uint32_t>(bytes) == 0,
                 "misaligned memory access at address " + std::to_string(addr));

        std::uint8_t buf[16];
        if (is_store) {
          for (int r = 0; r < nregs; ++r) {
            const std::uint32_t w =
                regs.read(sass::Reg{static_cast<std::uint8_t>(inst.srcb.idx + r)}, lane);
            std::memcpy(buf + 4 * r, &w, 4);
          }
          if (is_global) {
            ctx.gmem->write(addr, std::span(buf, static_cast<std::size_t>(bytes)));
          } else {
            ctx.smem->write(addr, std::span(buf, static_cast<std::size_t>(bytes)));
          }
        } else {
          if (is_global) {
            ctx.gmem->read(addr, std::span(buf, static_cast<std::size_t>(bytes)));
          } else {
            ctx.smem->read(addr, std::span(buf, static_cast<std::size_t>(bytes)));
          }
          for (int r = 0; r < nregs; ++r) {
            std::uint32_t w;
            std::memcpy(&w, buf + 4 * r, 4);
            sink.gpr(sass::Reg{static_cast<std::uint8_t>(inst.dst.idx + r)}, lane, w);
          }
        }
      }
      break;
    }
  }
  return result;
}

}  // namespace tc::sim
