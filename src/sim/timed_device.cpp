#include "sim/timed_device.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <memory>
#include <thread>

#include "common/error.hpp"

namespace tc::sim {

namespace {

void accumulate(TimedStats& total, const TimedStats& s) {
  total.instructions += s.instructions;
  total.hmma_count += s.hmma_count;
  total.tensor_busy += s.tensor_busy;
  total.fma_busy += s.fma_busy;
  total.alu_busy += s.alu_busy;
  total.mio_busy += s.mio_busy;
  total.mio_bw_stall += s.mio_bw_stall;
  total.l1_bytes += s.l1_bytes;
  total.l2_bytes += s.l2_bytes;
  total.dram_bytes += s.dram_bytes;
  total.smem_beats += s.smem_beats;
  total.smem_phases += s.smem_phases;
}

}  // namespace

TimedDevice::TimedDevice(TimedDeviceConfig cfg, mem::GlobalMemory& gmem)
    : cfg_(cfg), gmem_(gmem) {
  TC_CHECK(cfg_.ctas_per_sm > 0, "ctas_per_sm must be positive");
  TC_CHECK(cfg_.sync_window > 0, "sync_window must be positive");
}

DeviceResult TimedDevice::run(const Launch& launch) {
  TC_CHECK(launch.program != nullptr, "launch without a program");
  const auto num_ctas = launch.num_ctas();
  TC_CHECK(num_ctas > 0, "empty grid");

  // Priming is depth-first: SM i takes the next ctas_per_sm CTAs from the
  // x-major source, so co-residents are launch-order row neighbours — the
  // residency the model's steady-state surrogate (model/validate.cpp) and
  // the documented xval tolerance bands are calibrated against. Only as many
  // SMs as the grid can actually feed participate: a sub-wave grid
  // (num_ctas < num_sms * ctas_per_sm) concentrates onto
  // ceil(num_ctas / ctas_per_sm) SMs instead of starving trailing SMs of
  // their first CTA mid-priming. (Real GigaThread would spread a sub-wave
  // grid breadth-first across all SMs, one CTA each; that placement also
  // changes which operand slab co-residents share, so adopting it means
  // re-calibrating the surrogate geometry and the xval bands with it.)
  const auto per_sm = static_cast<std::uint64_t>(cfg_.ctas_per_sm);
  const int sms_used = static_cast<int>(std::min<std::uint64_t>(
      static_cast<std::uint64_t>(cfg_.spec.num_sms), (num_ctas + per_sm - 1) / per_sm));

  // kRowMajor / kSwizzled keep the exact GridCtaSource path above; the
  // locality-preserving orders dispatch through an OrderedCtaSource.
  const std::unique_ptr<CtaSource> source_owner = make_cta_source(launch);
  CtaSource& source = *source_owner;
  SharedMemSystem shared(cfg_.spec);

  std::vector<std::unique_ptr<TimedSm>> sms;
  sms.reserve(static_cast<std::size_t>(sms_used));
  for (int i = 0; i < sms_used; ++i) {
    TimedConfig tc;
    tc.spec = cfg_.spec;
    tc.model_l1 = cfg_.model_l1;
    tc.skip_mma_math = cfg_.skip_mma_math;
    tc.forced_l2_hit_rate = cfg_.forced_l2_hit_rate;
    tc.max_cycles = cfg_.max_cycles;
    tc.shared = &shared;
    tc.sm_id = i;
    sms.push_back(std::make_unique<TimedSm>(tc, gmem_));
    sms.back()->begin(launch, source, cfg_.ctas_per_sm);
  }

  const int threads = std::clamp(cfg_.threads, 1, sms_used);
  if (threads == 1) {
    // Deterministic lockstep: every SM advances exactly one cycle per round,
    // so cross-SM arbitration order is cycle-exact and reproducible. The
    // round's start index rotates each cycle — the shared buckets serve
    // same-cycle requests in call order, and a fixed order would hand SM0 a
    // standing bandwidth priority (measured: ~9-13% per-SM finish spread on
    // DRAM-bound kernels at an exactly integral wave).
    bool any = true;
    std::uint64_t round = 0;
    while (any) {
      any = false;
      for (int i = 0; i < sms_used; ++i) {
        auto& sm = sms[static_cast<std::size_t>((i + round) % sms_used)];
        if (!sm->done()) {
          sm->step();
          any = true;
        }
      }
      ++round;
    }
  } else {
    // Sharded pool with bounded skew: each worker steps its SMs through one
    // sync window, then all workers rendezvous; no SM's clock can lead
    // another's by more than sync_window cycles.
    std::atomic<bool> all_done{false};
    auto recheck = [&]() noexcept {
      bool done = true;
      for (auto& sm : sms) {
        if (!sm->done()) {
          done = false;
          break;
        }
      }
      all_done.store(done, std::memory_order_relaxed);
    };
    std::barrier bar(threads, recheck);
    auto worker = [&](int t) {
      while (!all_done.load(std::memory_order_relaxed)) {
        for (int c = 0; c < cfg_.sync_window; ++c) {
          for (int i = t; i < sms_used; i += threads) {
            if (!sms[static_cast<std::size_t>(i)]->done()) {
              sms[static_cast<std::size_t>(i)]->step();
            }
          }
        }
        bar.arrive_and_wait();
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (auto& th : pool) th.join();
  }

  DeviceResult res;
  res.sms_used = sms_used;
  res.per_sm.reserve(sms.size());
  for (auto& sm : sms) {
    res.per_sm.push_back(sm->finish());
    res.device_cycles = std::max(res.device_cycles, res.per_sm.back().cycles);
    accumulate(res.total, res.per_sm.back());
  }
  res.total.cycles = res.device_cycles;
  res.l2_hit_rate =
      cfg_.forced_l2_hit_rate >= 0.0 ? cfg_.forced_l2_hit_rate : shared.l2_hit_rate();
  res.ctas_run = source.issued();
  return res;
}

}  // namespace tc::sim
