#include "sim/mma_exec.hpp"

#include <cstring>

#include "common/error.hpp"
#include "sim/exec_core.hpp"

namespace tc::sim {

LanePos row_major_pos(int row, int col) {
  TC_ASSERT(row >= 0 && row < 8 && col >= 0 && col < 8, "8x8 coordinate out of range");
  return {row * 4 + col / 2, col % 2};
}

LanePos col_major_pos(int row, int col) {
  TC_ASSERT(row >= 0 && row < 8 && col >= 0 && col < 8, "8x8 coordinate out of range");
  return {col * 4 + row / 2, row % 2};
}

Coord row_major_coord(int lane, int part) {
  TC_ASSERT(lane >= 0 && lane < 32 && (part == 0 || part == 1), "lane/part out of range");
  return {lane / 4, (lane % 4) * 2 + part};
}

Coord col_major_coord(int lane, int part) {
  TC_ASSERT(lane >= 0 && lane < 32 && (part == 0 || part == 1), "lane/part out of range");
  return {(lane % 4) * 2 + part, lane / 4};
}

namespace {

half reg_half(const WarpRegs& regs, sass::Reg r, LanePos p) {
  const half2 pair = half2::unpack(regs.read(r, p.lane));
  return p.part == 0 ? pair.lo : pair.hi;
}

sass::Reg offset(sass::Reg r, int delta) {
  return sass::Reg{static_cast<std::uint8_t>(r.idx + delta)};
}

/// Packs a tile into the 32 per-lane words of one warp register.
std::array<std::uint32_t, kWarpSize> pack_row_major(const Tile8x8& t) {
  std::array<std::uint32_t, kWarpSize> words{};
  for (int lane = 0; lane < kWarpSize; ++lane) {
    const Coord lo = row_major_coord(lane, 0);
    const Coord hi = row_major_coord(lane, 1);
    words[static_cast<std::size_t>(lane)] =
        half2{t.m[lo.row][lo.col], t.m[hi.row][hi.col]}.pack();
  }
  return words;
}

std::array<std::uint32_t, kWarpSize> pack_col_major(const Tile8x8& t) {
  std::array<std::uint32_t, kWarpSize> words{};
  for (int lane = 0; lane < kWarpSize; ++lane) {
    const Coord lo = col_major_coord(lane, 0);
    const Coord hi = col_major_coord(lane, 1);
    words[static_cast<std::size_t>(lane)] =
        half2{t.m[lo.row][lo.col], t.m[hi.row][hi.col]}.pack();
  }
  return words;
}

void emit_words(WriteSink& sink, sass::Reg r, const std::array<std::uint32_t, kWarpSize>& w) {
  for (int lane = 0; lane < kWarpSize; ++lane) {
    sink.gpr(r, lane, w[static_cast<std::size_t>(lane)]);
  }
}

/// One output element's k = 8 half operands, gathered contiguously for the
/// bit-accurate engine.
struct DotOperands {
  half a[8];
  half b[8];
};

DotOperands gather_dot(const Tile8x8& at, const Tile8x8& bt, int i, int j) {
  DotOperands ops;
  for (int kk = 0; kk < 8; ++kk) {
    ops.a[kk] = at.m[i][kk];
    ops.b[kk] = bt.m[kk][j];
  }
  return ops;
}

/// One k = 8 FP16-accumulate element in the selected semantics.
half dot8_f16(const Tile8x8& at, const Tile8x8& bt, int i, int j, half c,
              numerics::NumericsMode mode) {
  if (mode == numerics::NumericsMode::kBitAccurate) {
    const DotOperands ops = gather_dot(at, bt, i, j);
    return numerics::hmma_dot8_f16(c, ops.a, ops.b);
  }
  float acc = c.to_float();
  for (int kk = 0; kk < 8; ++kk) acc += at.m[i][kk].to_float() * bt.m[kk][j].to_float();
  return half(acc);
}

// D(16x8) = A(16x8) * B(8x8) + C, FP16 accumulators.
void exec_hmma_1688_f16(const WarpRegs& regs, sass::Reg d, sass::Reg a, sass::Reg b,
                        sass::Reg c, WriteSink& sink, numerics::NumericsMode mode) {
  const Tile8x8 a_lo = gather_row_major(regs, a);
  const Tile8x8 a_hi = gather_row_major(regs, offset(a, 1));
  const Tile8x8 bt = gather_col_major(regs, b);
  const Tile8x8 c_lo = c.is_rz() ? Tile8x8{} : gather_row_major(regs, c);
  const Tile8x8 c_hi = c.is_rz() ? Tile8x8{} : gather_row_major(regs, offset(c, 1));

  for (int group = 0; group < 2; ++group) {
    const Tile8x8& at = group == 0 ? a_lo : a_hi;
    const Tile8x8& ct = group == 0 ? c_lo : c_hi;
    Tile8x8 dt;
    for (int i = 0; i < 8; ++i) {
      for (int j = 0; j < 8; ++j) {
        dt.m[i][j] = dot8_f16(at, bt, i, j, ct.m[i][j], mode);
      }
    }
    emit_words(sink, offset(d, group), pack_row_major(dt));
  }
}

// FP32 accumulator layout: reg 2g+p of lane l holds element
// (l/4 + 8g, (l%4)*2 + p) of the 16x8 FP32 accumulator.
float read_f32_acc(const WarpRegs& regs, sass::Reg base, int i, int j) {
  const int g = i / 8;
  const int p = j % 2;
  const int lane = (i % 8) * 4 + j / 2;
  const std::uint32_t bits = regs.read(offset(base, 2 * g + p), lane);
  float f;
  std::memcpy(&f, &bits, 4);
  return f;
}

void exec_hmma_1688_f32(const WarpRegs& regs, sass::Reg d, sass::Reg a, sass::Reg b,
                        sass::Reg c, WriteSink& sink, numerics::NumericsMode mode) {
  const Tile8x8 a_lo = gather_row_major(regs, a);
  const Tile8x8 a_hi = gather_row_major(regs, offset(a, 1));
  const Tile8x8 bt = gather_col_major(regs, b);

  std::array<std::array<std::uint32_t, kWarpSize>, 4> out{};
  for (int i = 0; i < 16; ++i) {
    const Tile8x8& at = i < 8 ? a_lo : a_hi;
    for (int j = 0; j < 8; ++j) {
      float acc = c.is_rz() ? 0.0f : read_f32_acc(regs, c, i, j);
      if (mode == numerics::NumericsMode::kBitAccurate) {
        const DotOperands ops = gather_dot(at, bt, i % 8, j);
        acc = numerics::hmma_dot8_f32(acc, ops.a, ops.b);
      } else {
        for (int kk = 0; kk < 8; ++kk) {
          acc += at.m[i % 8][kk].to_float() * bt.m[kk][j].to_float();
        }
      }
      const int g = i / 8;
      const int p = j % 2;
      const int lane = (i % 8) * 4 + j / 2;
      std::uint32_t bits;
      std::memcpy(&bits, &acc, 4);
      out[static_cast<std::size_t>(2 * g + p)][static_cast<std::size_t>(lane)] = bits;
    }
  }
  for (int r = 0; r < 4; ++r) emit_words(sink, offset(d, r), out[static_cast<std::size_t>(r)]);
}

// Volta-compatibility form: D(8x8) = A(8x8) * B(8x8) + C on single registers.
void exec_hmma_884_f16(const WarpRegs& regs, sass::Reg d, sass::Reg a, sass::Reg b,
                       sass::Reg c, WriteSink& sink, numerics::NumericsMode mode) {
  const Tile8x8 at = gather_row_major(regs, a);
  const Tile8x8 bt = gather_col_major(regs, b);
  const Tile8x8 ct = c.is_rz() ? Tile8x8{} : gather_row_major(regs, c);
  Tile8x8 dt;
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      dt.m[i][j] = dot8_f16(at, bt, i, j, ct.m[i][j], mode);
    }
  }
  emit_words(sink, d, pack_row_major(dt));
}

// Integer extension: D(8x8 s32) = A(8x16 s8) * B(16x8 s8) + C.
void exec_imma_8816_s8(const WarpRegs& regs, sass::Reg d, sass::Reg a, sass::Reg b,
                       sass::Reg c, WriteSink& sink) {
  std::int8_t A[8][16];
  std::int8_t B[16][8];
  for (int lane = 0; lane < kWarpSize; ++lane) {
    const std::uint32_t aw = regs.read(a, lane);
    const std::uint32_t bw = regs.read(b, lane);
    for (int byte = 0; byte < 4; ++byte) {
      A[lane / 4][(lane % 4) * 4 + byte] = static_cast<std::int8_t>((aw >> (8 * byte)) & 0xFF);
      B[(lane % 4) * 4 + byte][lane / 4] = static_cast<std::int8_t>((bw >> (8 * byte)) & 0xFF);
    }
  }
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      const int lane = i * 4 + j / 2;
      const int g = j % 2;
      std::int32_t acc = c.is_rz() ? 0 : static_cast<std::int32_t>(regs.read(offset(c, g), lane));
      for (int kk = 0; kk < 16; ++kk) {
        acc += static_cast<std::int32_t>(A[i][kk]) * static_cast<std::int32_t>(B[kk][j]);
      }
      sink.gpr(offset(d, g), lane, static_cast<std::uint32_t>(acc));
    }
  }
}

}  // namespace

Tile8x8 gather_row_major(const WarpRegs& regs, sass::Reg r) {
  Tile8x8 t;
  for (int row = 0; row < 8; ++row) {
    for (int col = 0; col < 8; ++col) t.m[row][col] = reg_half(regs, r, row_major_pos(row, col));
  }
  return t;
}

Tile8x8 gather_col_major(const WarpRegs& regs, sass::Reg r) {
  Tile8x8 t;
  for (int row = 0; row < 8; ++row) {
    for (int col = 0; col < 8; ++col) t.m[row][col] = reg_half(regs, r, col_major_pos(row, col));
  }
  return t;
}

void scatter_row_major(WarpRegs& regs, sass::Reg r, const Tile8x8& t) {
  const auto words = pack_row_major(t);
  for (int lane = 0; lane < kWarpSize; ++lane) {
    regs.write_now(r, lane, words[static_cast<std::size_t>(lane)]);
  }
}

void scatter_col_major(WarpRegs& regs, sass::Reg r, const Tile8x8& t) {
  const auto words = pack_col_major(t);
  for (int lane = 0; lane < kWarpSize; ++lane) {
    regs.write_now(r, lane, words[static_cast<std::size_t>(lane)]);
  }
}

void exec_mma(sass::Opcode op, const WarpRegs& regs, sass::Reg d, sass::Reg a, sass::Reg b,
              sass::Reg c, WriteSink& sink, numerics::NumericsMode mode) {
  switch (op) {
    case sass::Opcode::kHmma1688F16:
      exec_hmma_1688_f16(regs, d, a, b, c, sink, mode);
      break;
    case sass::Opcode::kHmma1688F32:
      exec_hmma_1688_f32(regs, d, a, b, c, sink, mode);
      break;
    case sass::Opcode::kHmma884F16:
      exec_hmma_884_f16(regs, d, a, b, c, sink, mode);
      break;
    case sass::Opcode::kImma8816S8:
      // Integer math is exact: both numerics modes are identical by
      // construction, so the mode is deliberately not consulted.
      exec_imma_8816_s8(regs, d, a, b, c, sink);
      break;
    default:
      TC_ASSERT(false, "exec_mma on non-MMA opcode");
  }
}

}  // namespace tc::sim
