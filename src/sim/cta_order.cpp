#include "sim/cta_order.hpp"

#include <memory>

#include "common/error.hpp"
#include "sim/timed_sm.hpp"

namespace tc::sim {
namespace {

/// One quadrant rotation/reflection step of the Hilbert curve.
void hilbert_rot(std::uint64_t s, std::uint64_t& x, std::uint64_t& y, std::uint64_t rx,
                 std::uint64_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      x = s - 1 - x;
      y = s - 1 - y;
    }
    std::swap(x, y);
  }
}

/// Curve index -> (x, y) on a side x side Hilbert curve (side a power of 2).
/// The model-side trace generator uses the inverse map (xy2d); the property
/// suite pins the two against each other.
std::pair<std::uint64_t, std::uint64_t> hilbert_d2xy(std::uint64_t side, std::uint64_t d) {
  std::uint64_t x = 0;
  std::uint64_t y = 0;
  std::uint64_t t = d;
  for (std::uint64_t s = 1; s < side; s <<= 1) {
    const std::uint64_t rx = 1 & (t / 2);
    const std::uint64_t ry = 1 & (t ^ rx);
    hilbert_rot(s, x, y, rx, ry);
    x += s * rx;
    y += s * ry;
    t >>= 2;
  }
  return {x, y};
}

}  // namespace

const char* launch_order_name(LaunchOrder order) {
  switch (order) {
    case LaunchOrder::kRowMajor:
      return "rowmajor";
    case LaunchOrder::kSwizzled:
      return "swizzled";
    case LaunchOrder::kSupertile:
      return "supertile";
    case LaunchOrder::kSerpentine:
      return "serpentine";
    case LaunchOrder::kHilbert:
      return "hilbert";
  }
  return "unknown";
}

LaunchOrder launch_order_from_name(const std::string& name) {
  if (name == "rowmajor") return LaunchOrder::kRowMajor;
  if (name == "swizzled") return LaunchOrder::kSwizzled;
  if (name == "supertile") return LaunchOrder::kSupertile;
  if (name == "serpentine") return LaunchOrder::kSerpentine;
  if (name == "hilbert") return LaunchOrder::kHilbert;
  TC_CHECK(false, "unknown launch order name: " + name);
  return LaunchOrder::kRowMajor;
}

CtaOrderMap::CtaOrderMap(LaunchOrder order, std::uint32_t grid_x, std::uint32_t grid_y,
                         int supertile_width)
    : order_(order),
      grid_x_(grid_x),
      grid_y_(grid_y),
      supertile_width_(static_cast<std::uint32_t>(supertile_width)),
      total_(static_cast<std::uint64_t>(grid_x) * grid_y) {
  TC_CHECK(grid_x >= 1 && grid_y >= 1, "CtaOrderMap: empty grid");
  TC_CHECK(supertile_width >= 1, "CtaOrderMap: supertile width must be >= 1");
  while (hilbert_side_ < grid_x_ || hilbert_side_ < grid_y_) hilbert_side_ <<= 1;
}

std::pair<std::uint32_t, std::uint32_t> CtaOrderMap::next() {
  TC_CHECK(issued_ < total_, "CtaOrderMap::next past the end of the grid");
  const std::uint64_t i = issued_++;
  switch (order_) {
    case LaunchOrder::kRowMajor:
    case LaunchOrder::kSwizzled: {
      // kSwizzled is an analytic patch shape, not a concrete dispatch order;
      // the simulator realizes it as the hardware row-major walk.
      return {static_cast<std::uint32_t>(i % grid_x_), static_cast<std::uint32_t>(i / grid_x_)};
    }
    case LaunchOrder::kSerpentine: {
      const std::uint64_t y = i / grid_x_;
      const std::uint64_t r = i % grid_x_;
      const std::uint64_t x = (y % 2 == 1) ? grid_x_ - 1 - r : r;
      return {static_cast<std::uint32_t>(x), static_cast<std::uint32_t>(y)};
    }
    case LaunchOrder::kSupertile: {
      const std::uint64_t w = std::min<std::uint64_t>(supertile_width_, grid_x_);
      const std::uint64_t full_panels = grid_x_ / w;
      const std::uint64_t full_cells = full_panels * w * grid_y_;
      if (i < full_cells) {
        const std::uint64_t panel = i / (w * grid_y_);
        const std::uint64_t r = i % (w * grid_y_);
        return {static_cast<std::uint32_t>(panel * w + r % w),
                static_cast<std::uint32_t>(r / w)};
      }
      // Trailing partial panel of grid_x % w columns.
      const std::uint64_t j = i - full_cells;
      const std::uint64_t rem = grid_x_ - full_panels * w;
      return {static_cast<std::uint32_t>(full_panels * w + j % rem),
              static_cast<std::uint32_t>(j / rem)};
    }
    case LaunchOrder::kHilbert: {
      for (;;) {
        const auto [x, y] = hilbert_d2xy(hilbert_side_, hilbert_d_++);
        if (x < grid_x_ && y < grid_y_) {
          return {static_cast<std::uint32_t>(x), static_cast<std::uint32_t>(y)};
        }
      }
    }
  }
  TC_CHECK(false, "CtaOrderMap: unhandled launch order");
  return {0, 0};
}

std::unique_ptr<CtaSource> make_cta_source(const Launch& launch) {
  if (launch.launch_order == LaunchOrder::kRowMajor ||
      launch.launch_order == LaunchOrder::kSwizzled) {
    return std::make_unique<GridCtaSource>(launch.grid_x, launch.grid_y, launch.grid_z);
  }
  return std::make_unique<OrderedCtaSource>(launch.launch_order, launch.grid_x, launch.grid_y,
                                            launch.supertile_width, launch.grid_z);
}

}  // namespace tc::sim
