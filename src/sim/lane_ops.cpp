#include "sim/lane_ops.hpp"

#include <cstring>

#include "common/half.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define TC_LANE_OP [[gnu::noinline]]
#else
#define TC_LANE_OP
#endif

namespace tc::sim {

namespace {

std::uint32_t float_bits(float f) {
  std::uint32_t b;
  std::memcpy(&b, &f, 4);
  return b;
}
float bits_float(std::uint32_t b) {
  float f;
  std::memcpy(&f, &b, 4);
  return f;
}

}  // namespace

TC_LANE_OP std::uint32_t fadd_bits(std::uint32_t a, std::uint32_t b) {
  return float_bits(bits_float(a) + bits_float(b));
}

TC_LANE_OP std::uint32_t fmul_bits(std::uint32_t a, std::uint32_t b) {
  return float_bits(bits_float(a) * bits_float(b));
}

TC_LANE_OP std::uint32_t ffma_bits(std::uint32_t a, std::uint32_t b, std::uint32_t c) {
  return float_bits(bits_float(a) * bits_float(b) + bits_float(c));
}

TC_LANE_OP std::uint32_t hadd2_bits(std::uint32_t a, std::uint32_t b) {
  const half2 x = half2::unpack(a);
  const half2 y = half2::unpack(b);
  return half2{x.lo + y.lo, x.hi + y.hi}.pack();
}

TC_LANE_OP std::uint32_t hmul2_bits(std::uint32_t a, std::uint32_t b) {
  const half2 x = half2::unpack(a);
  const half2 y = half2::unpack(b);
  return half2{x.lo * y.lo, x.hi * y.hi}.pack();
}

TC_LANE_OP std::uint32_t hfma2_bits(std::uint32_t a, std::uint32_t b, std::uint32_t c) {
  const half2 x = half2::unpack(a);
  const half2 y = half2::unpack(b);
  const half2 z = half2::unpack(c);
  return half2{fma_round_half(x.lo, y.lo, z.lo), fma_round_half(x.hi, y.hi, z.hi)}.pack();
}

TC_LANE_OP std::uint32_t hmax2_bits(std::uint32_t a, std::uint32_t b) {
  const half2 x = half2::unpack(a);
  const half2 y = half2::unpack(b);
  return half2{max_half(x.lo, y.lo), max_half(x.hi, y.hi)}.pack();
}

TC_LANE_OP std::uint32_t hgelu2_bits(std::uint32_t a) {
  const half2 x = half2::unpack(a);
  return half2{gelu_half(x.lo), gelu_half(x.hi)}.pack();
}

TC_LANE_OP std::uint32_t f2f_narrow_bits(std::uint32_t a) {
  return static_cast<std::uint32_t>(half(bits_float(a)).bits());
}

TC_LANE_OP std::uint32_t f2f_widen_bits(std::uint32_t a) {
  return float_bits(half2::unpack(a).lo.to_float());
}

}  // namespace tc::sim
