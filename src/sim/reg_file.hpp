// Per-warp register state with hazard-accurate delayed writeback.
//
// Fixed-latency pipes on Volta/Turing do not interlock: if a consumer issues
// before the producer's latency has elapsed (and no stall count or scoreboard
// wait protects it), it reads the *old* register value. WarpRegs models this
// by buffering writes with a due-cycle; `settle(now)` commits everything due.
// The functional executor simply settles immediately after each instruction.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "sass/isa.hpp"

namespace tc::sim {

inline constexpr int kWarpSize = 32;

/// One warp's 255 GPRs x 32 lanes, 7 predicates x 32 lanes, and the pending
/// writeback queue.
class WarpRegs {
 public:
  WarpRegs();

  /// Reads lane `lane` of register r (RZ reads as 0).
  [[nodiscard]] std::uint32_t read(sass::Reg r, int lane) const;

  /// Immediate write (functional mode / settled timing write).
  void write_now(sass::Reg r, int lane, std::uint32_t value);

  /// Schedules a write that becomes visible at `due_cycle`.
  void write_at(sass::Reg r, int lane, std::uint32_t value, std::uint64_t due_cycle);

  /// Commits all pending writes with due_cycle <= now.
  void settle(std::uint64_t now);

  /// Commits everything regardless of due time (end of functional step).
  void settle_all();

  [[nodiscard]] bool read_pred(sass::Pred p, int lane) const;
  void write_pred(sass::Pred p, int lane, bool value);

  /// True when a pending (not yet visible) write to r exists — used by the
  /// timing engine to detect writeback-port reuse, and by tests.
  [[nodiscard]] bool has_pending(sass::Reg r) const;

  /// Direct lane-row access for the JIT backend. Valid only while no write
  /// is pending (functional execution settles immediately, so always there);
  /// rows()[r] is register r's 32 lane values, r in [0, 255) — RZ has no row.
  [[nodiscard]] std::array<std::uint32_t, kWarpSize>* rows() { return gpr_.data(); }
  [[nodiscard]] const std::array<std::uint32_t, kWarpSize>* rows() const { return gpr_.data(); }

  /// Lane mask of predicate p (bit l = lane l). PT reads all-ones.
  [[nodiscard]] std::uint32_t pred_mask(sass::Pred p) const {
    return pred_[static_cast<std::size_t>(p.idx)];
  }
  /// Replaces the whole lane mask of p; PT stays read-only (write dropped).
  void set_pred_mask(sass::Pred p, std::uint32_t mask) {
    if (!p.is_pt()) pred_[static_cast<std::size_t>(p.idx)] = mask;
  }

 private:
  struct Pending {
    std::uint64_t due;
    std::uint8_t reg;
    std::uint8_t lane;
    std::uint32_t value;
  };

  std::array<std::array<std::uint32_t, kWarpSize>, 255> gpr_{};
  std::array<std::uint32_t, 8> pred_{};  // bitmask per predicate; P7 forced to all-ones
  std::vector<Pending> pending_;
};

}  // namespace tc::sim
