// CTA launch orders: how the GigaThread engine walks the 2D grid.
//
// The order a grid is dispatched in decides which CTA tiles are co-resident
// during a wave, and therefore which A-row / B-column slabs can share L2.
// Row-major (the hardware default) keeps a wave inside one long grid row on
// wide grids, so B reuse collapses once grid_x exceeds the wave size — the
// cuBLAS W~12032 cliff the paper autopsies. The locality-preserving orders
// below (supertile / serpentine / Hilbert) keep the wave's footprint closer
// to square, holding per-wave L2 reuse through arbitrarily wide grids.
//
// The same orders exist twice in the tree on purpose: here as the dispatch
// map driving TimedDevice, and independently as trace generators feeding the
// model's stack-distance sampler (model/stack_distance.*). A property test
// pins both implementations to the identical permutation of the grid.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace tc::sim {

/// CTA dispatch order over the grid.
enum class LaunchOrder {
  /// Hardware launch order: x fastest, then y.
  kRowMajor,
  /// Abstract cuBLAS-style L2 swizzle: modeled with the closed-form
  /// `model::l2_reuse` heuristic (including its grid_x cliff), dispatched
  /// row-major in simulation. This is the legacy default everywhere.
  kSwizzled,
  /// Width-S column panels: the grid is cut into vertical panels of
  /// `supertile_width` columns; each panel is walked row-major (x fastest
  /// within the panel) before the next panel starts.
  kSupertile,
  /// Row-major with every odd row traversed right-to-left (boustrophedon).
  kSerpentine,
  /// Hilbert curve over the smallest bounding 2^k square; cells outside the
  /// grid are skipped, preserving bijectivity on non-square grids.
  kHilbert,
};

[[nodiscard]] const char* launch_order_name(LaunchOrder order);

/// Inverse of launch_order_name; throws on an unknown name.
[[nodiscard]] LaunchOrder launch_order_from_name(const std::string& name);

/// Sequential (x, y) generator for a launch order over a grid_x x grid_y
/// grid. Emits each grid cell exactly once. Index arithmetic per order; the
/// Hilbert walk keeps an internal cursor, so cells must be drained in
/// sequence (which is all a CtaSource ever does).
class CtaOrderMap {
 public:
  CtaOrderMap(LaunchOrder order, std::uint32_t grid_x, std::uint32_t grid_y,
              int supertile_width);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint32_t grid_x() const { return grid_x_; }
  [[nodiscard]] std::uint32_t grid_y() const { return grid_y_; }

  /// Coordinates of the next CTA in dispatch order. Precondition: fewer than
  /// total() calls so far.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> next();

 private:
  LaunchOrder order_;
  std::uint32_t grid_x_;
  std::uint32_t grid_y_;
  std::uint32_t supertile_width_;
  std::uint64_t total_;
  std::uint64_t issued_ = 0;
  // Hilbert cursor: side of the bounding square and the next curve index.
  std::uint64_t hilbert_side_ = 1;
  std::uint64_t hilbert_d_ = 0;
};

}  // namespace tc::sim
