#include "sim/timed_sm.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <memory>

#include "common/error.hpp"
#include "mem/banked_smem.hpp"
#include "prof/profiler.hpp"
#include "mem/coalescer.hpp"
#include "mem/sector_cache.hpp"
#include "mem/token_bucket.hpp"
#include "sim/exec_core.hpp"
#include "sim/pipes.hpp"
#include "sim/probe.hpp"

namespace tc::sim {

namespace {

struct CapturedGpr {
  sass::Reg reg;
  std::uint8_t lane;
  std::uint32_t value;
};
struct CapturedPred {
  sass::Pred pred;
  std::uint8_t lane;
  bool value;
};

/// Buffers the writes of one instruction so the engine can retime them.
class CaptureSink final : public WriteSink {
 public:
  void gpr(sass::Reg r, int lane, std::uint32_t value) override {
    gprs.push_back({r, static_cast<std::uint8_t>(lane), value});
  }
  void pred(sass::Pred p, int lane, bool value) override {
    preds.push_back({p, static_cast<std::uint8_t>(lane), value});
  }
  void clear() {
    gprs.clear();
    preds.clear();
  }
  std::vector<CapturedGpr> gprs;
  std::vector<CapturedPred> preds;
};

struct PendingPred {
  std::uint64_t due;
  CapturedPred w;
};

struct TWarp {
  WarpRegs regs;
  std::int32_t pc = 0;
  bool exited = false;
  bool at_barrier = false;
  std::uint64_t ready_cycle = 0;
  std::array<int, sass::kNumBarriers> scoreboard{};
  std::vector<PendingPred> pending_preds;
  int cta_index = 0;
  int warp_in_cta = 0;
};

struct TCta {
  CtaCoord coord;
  std::unique_ptr<mem::SharedMemory> smem;
  int alive_warps = 0;
  int arrived = 0;
};

struct MioOp {
  int warp = 0;
  MemAccess access;
  std::vector<CapturedGpr> load_writes;  // applied at data arrival
  std::uint8_t write_barrier = sass::kNoBarrier;
  std::uint8_t read_barrier = sass::kNoBarrier;
  // Classification (filled on first service attempt).
  bool classified = false;
  double cost = 0.0;           // MIO pipe occupancy (address/L1/smem path)
  double port_bytes = 0.0;     // bytes crossing the L2-to-SM return port
  double need_l2_tokens = 0.0;  // bytes charged to the device L2 budget
  double need_dram_tokens = 0.0;  // bytes from DRAM
  int latency = 0;
};

struct BarrierRelease {
  std::uint64_t due;
  int warp;
  std::uint8_t barrier;
};

// Per-cycle warp-state scratch for stall attribution (profiling only).
constexpr std::uint8_t kWarpEligible = 200;
constexpr std::uint8_t kWarpDead = 255;

}  // namespace

struct TimedSm::Impl {
  TimedConfig cfg;
  mem::GlobalMemory& gmem;
  mem::SectorCache l1;
  mem::SectorCache l2;
  mem::TokenBucket dram_bw;
  mem::TokenBucket l2_bw;
  MemLatency lat;
  double forced_l2_accum = 0.0;

  // --- run state (valid from begin() until finish()) -----------------------
  const Launch* launch = nullptr;
  const sass::Program* prog = nullptr;
  CtaSource* source = nullptr;  // dynamic CTA refill; null = fixed resident set
  int partitions = 0;
  std::vector<TCta> cta_state;
  std::vector<std::unique_ptr<TWarp>> warps;
  int num_warps = 0;
  int alive = 0;
  prof::Profiler* prof = nullptr;
  std::vector<std::uint8_t> warp_state;
  std::vector<std::uint64_t> tensor_free;
  std::vector<std::uint64_t> fma_free;
  std::vector<std::uint64_t> alu_free;
  std::vector<int> rr;  // scheduler rotation
  std::deque<MioOp> mio_queue;
  std::uint64_t mio_free = 0;
  double port_free = 0.0;  // L2-to-SM return port availability
  int outstanding = 0;     // in-flight global requests (MSHR occupancy)
  std::vector<std::uint64_t> mshr_release;
  std::vector<BarrierRelease> releases;
  std::vector<int> free_slots;  // retired CTA slots awaiting refill
  TimedStats stats;
  CaptureSink sink;
  std::uint64_t now = 0;
  bool running = false;

  Impl(TimedConfig c, mem::GlobalMemory& g)
      : cfg(c),
        gmem(g),
        l1(c.spec.l1_size_bytes, c.spec.l1_ways),
        l2(c.spec.l2_size_bytes, c.spec.l2_ways),
        dram_bw(c.dram_bytes_per_cycle > 0 ? c.dram_bytes_per_cycle
                                           : c.spec.dram_bytes_per_cycle()),
        l2_bw(c.l2_bytes_per_cycle > 0 ? c.l2_bytes_per_cycle : c.spec.l2_bytes_per_cycle()),
        lat(mem_latency(c.spec)) {}

  // Round-robin partition assignment by global warp index, as on hardware.
  [[nodiscard]] int partition_of(int w) const { return w % partitions; }

  void settle_warp(TWarp& w) {
    w.regs.settle(now);
    if (!w.pending_preds.empty()) {
      auto keep = w.pending_preds.begin();
      for (auto it = w.pending_preds.begin(); it != w.pending_preds.end(); ++it) {
        if (it->due <= now) {
          w.regs.write_pred(it->w.pred, it->w.lane, it->w.value);
        } else {
          *keep++ = *it;
        }
      }
      w.pending_preds.erase(keep, w.pending_preds.end());
    }
  }

  /// Classifies one global access: which bytes come from L1/L2/DRAM, what
  /// MIO cost and latency it has. Mutates cache tag state (done exactly once
  /// per op). When bound to a SharedMemSystem the device-wide L2 tag array is
  /// probed (under its mutex) instead of the private per-SM copy, so hits
  /// produced by *other* SMs' traffic are observed — that is the inter-CTA
  /// reuse WavePerf only models analytically.
  void classify_global(MioOp& op) {
    const auto sectors =
        mem::coalesce_sectors(std::span(op.access.addrs), std::span(op.access.active),
                              op.access.width);
    double l1_bytes = 0.0;
    double l2_bytes = 0.0;
    double dram_bytes = 0.0;
    const bool use_l1 = cfg.model_l1 && op.access.cache == sass::CacheOp::kCa &&
                        !op.access.is_store;
    if (op.access.is_store) {
      int active_lanes = 0;
      for (bool a : op.access.active) active_lanes += a ? 1 : 0;
      dram_bytes = static_cast<double>(active_lanes) * sass::width_bytes(op.access.width);
    }
    for (const auto s : sectors) {
      if (use_l1 && l1.access(s) == mem::HitLevel::kHit) {
        l1_bytes += mem::kSectorBytes;
        continue;
      }
      if (op.access.is_store) {
        // Writes drain through L2 to DRAM; adjacent lanes/instructions are
        // write-combined downstream, so charge the bytes actually written
        // (accumulated below from the lane footprint, not whole sectors).
        continue;
      }
      bool l2_hit;
      if (cfg.forced_l2_hit_rate >= 0.0) {
        forced_l2_accum += cfg.forced_l2_hit_rate;
        l2_hit = forced_l2_accum >= 1.0;
        if (l2_hit) forced_l2_accum -= 1.0;
      } else if (cfg.shared != nullptr) {
        std::lock_guard lock(cfg.shared->l2_mutex);
        l2_hit = cfg.shared->l2.access(s) == mem::HitLevel::kHit;
      } else {
        l2_hit = l2.access(s) == mem::HitLevel::kHit;
      }
      if (l2_hit) {
        l2_bytes += mem::kSectorBytes;
      } else {
        dram_bytes += mem::kSectorBytes;
      }
    }
    // The MIO pipe is occupied only for the address/tag/L1 phase; bytes that
    // come from L2 or DRAM flow through the separate L2-to-SM return port.
    op.cost = std::max(4.0, l1_bytes / 64.0);
    op.port_bytes = l2_bytes + dram_bytes;
    op.need_l2_tokens = l2_bytes + dram_bytes;
    op.need_dram_tokens = dram_bytes;
    op.latency = dram_bytes > 0 ? lat.dram : (l2_bytes > 0 ? lat.l2 : lat.l1);
    stats.l1_bytes += l1_bytes;
    stats.l2_bytes += l2_bytes;
    stats.dram_bytes += dram_bytes;
    if (cfg.profiler != nullptr) {
      cfg.profiler->on_global_classified(l1_bytes, l2_bytes, dram_bytes);
    }
  }

  void classify_smem(MioOp& op) {
    const auto cost = mem::smem_access_cost(std::span(op.access.addrs),
                                            std::span(op.access.active), op.access.width,
                                            op.access.is_store);
    const sass::Opcode opc = op.access.is_store ? sass::Opcode::kSts : sass::Opcode::kLds;
    op.cost = smem_base_cost(opc, op.access.width) * cost.conflict_factor();
    op.latency = lat.smem;
    stats.smem_beats += static_cast<std::uint64_t>(cost.beats);
    stats.smem_phases += static_cast<std::uint64_t>(cost.phases);
    if (cfg.profiler != nullptr) {
      cfg.profiler->on_smem_classified(cost.beats, cost.phases);
    }
  }

  void begin(const Launch& l, std::span<const CtaCoord> initial, CtaSource* src) {
    TC_CHECK(l.program != nullptr, "launch without a program");
    TC_CHECK(!initial.empty(), "no CTAs to run");
    TC_CHECK(!running, "begin() while a run is already active");
    launch = &l;
    prog = l.program;
    source = src;
    partitions = cfg.spec.processing_blocks_per_sm;

    cta_state.clear();
    cta_state.resize(initial.size());
    warps.clear();
    for (std::size_t c = 0; c < initial.size(); ++c) {
      cta_state[c].coord = initial[c];
      cta_state[c].smem = std::make_unique<mem::SharedMemory>(prog->smem_bytes);
      cta_state[c].alive_warps = static_cast<int>(l.warps_per_cta());
      for (std::uint32_t w = 0; w < l.warps_per_cta(); ++w) {
        auto tw = std::make_unique<TWarp>();
        tw->cta_index = static_cast<int>(c);
        tw->warp_in_cta = static_cast<int>(w);
        warps.push_back(std::move(tw));
      }
    }
    num_warps = static_cast<int>(warps.size());
    alive = num_warps;

    // Profiling is off unless the caller attached a Profiler; every hook site
    // below is guarded by this one pointer test.
    prof = cfg.profiler;
    if (prof != nullptr) prof->begin_run(*prog, partitions, num_warps);
    warp_state.clear();
    if (prof != nullptr) warp_state.assign(static_cast<std::size_t>(num_warps), kWarpDead);

    tensor_free.assign(static_cast<std::size_t>(partitions), 0);
    fma_free.assign(static_cast<std::size_t>(partitions), 0);
    alu_free.assign(static_cast<std::size_t>(partitions), 0);
    rr.assign(static_cast<std::size_t>(partitions), 0);
    mio_queue.clear();
    mio_free = 0;
    port_free = 0.0;
    outstanding = 0;
    mshr_release.clear();
    releases.clear();
    free_slots.clear();
    stats = TimedStats{};
    forced_l2_accum = 0.0;
    now = 0;
    running = true;
  }

  [[nodiscard]] bool is_done() const {
    return !running || (alive == 0 && free_slots.empty());
  }

  /// A retired slot can be reused only once nothing in flight still names
  /// its warps. Every in-flight hazard (pending MIO op with a write/read
  /// barrier, scheduled BarrierRelease) holds a scoreboard count on its warp,
  /// so all-zero scoreboards across the slot's warps is the full condition;
  /// barrier-less stores still queued are timing-only and reference the slot
  /// harmlessly (empty load_writes, no releases).
  [[nodiscard]] bool slot_quiescent(int ci) const {
    for (const auto& wptr : warps) {
      if (wptr->cta_index != ci) continue;
      for (int b = 0; b < sass::kNumBarriers; ++b) {
        if (wptr->scoreboard[static_cast<std::size_t>(b)] > 0) return false;
      }
    }
    return true;
  }

  /// Relaunches a freed CTA slot with a new CTA (dynamic refill: the
  /// GigaThread engine places a new CTA as soon as one retires — not
  /// wave-by-wave — which is what makes uneven tail waves emerge).
  void respawn_slot(int ci, CtaCoord coord) {
    TCta& cta = cta_state[static_cast<std::size_t>(ci)];
    if (cfg.probe != nullptr) {
      // Preserve the retiring CTA's final state for divergence probes —
      // captured under the *retiring* coordinates, before the slot is
      // relabelled with the incoming CTA's.
      for (auto& wptr : warps) {
        if (wptr->cta_index != ci) continue;
        TWarp& w = *wptr;
        w.regs.settle_all();
        for (const auto& pp : w.pending_preds) {
          w.regs.write_pred(pp.w.pred, pp.w.lane, pp.w.value);
        }
        w.pending_preds.clear();
        cfg.probe->capture(w.regs, cta.coord.x, cta.coord.y, cta.coord.z, w.warp_in_cta);
      }
    }
    cta.coord = coord;
    cta.smem->clear();
    cta.arrived = 0;
    cta.alive_warps = static_cast<int>(launch->warps_per_cta());
    for (auto& wptr : warps) {
      if (wptr->cta_index != ci) continue;
      TWarp& w = *wptr;
      w.regs = WarpRegs{};
      w.pc = 0;
      w.exited = false;
      w.at_barrier = false;
      w.ready_cycle = now + 1;  // launched CTA starts issuing next cycle
      w.scoreboard.fill(0);
      w.pending_preds.clear();
      ++alive;
    }
  }

  void step_cycle() {
    TC_CHECK(now < cfg.max_cycles, "timed simulation exceeded max_cycles (deadlock?)");
    if (cfg.shared == nullptr) {
      dram_bw.tick();
      l2_bw.tick();
    }

    // --- scoreboard releases -----------------------------------------------
    if (!releases.empty()) {
      auto keep = releases.begin();
      for (auto it = releases.begin(); it != releases.end(); ++it) {
        if (it->due <= now) {
          TWarp& w = *warps[static_cast<std::size_t>(it->warp)];
          TC_ASSERT(w.scoreboard[it->barrier] > 0, "scoreboard underflow");
          --w.scoreboard[it->barrier];
        } else {
          *keep++ = *it;
        }
      }
      releases.erase(keep, releases.end());
    }

    // --- MSHR retirement -----------------------------------------------------
    if (!mshr_release.empty()) {
      auto keep = mshr_release.begin();
      for (auto it = mshr_release.begin(); it != mshr_release.end(); ++it) {
        if (*it <= now) {
          --outstanding;
        } else {
          *keep++ = *it;
        }
      }
      mshr_release.erase(keep, mshr_release.end());
    }

    // --- MIO service ---------------------------------------------------------
    if (mio_free <= now && !mio_queue.empty()) {
      MioOp& op = mio_queue.front();
      if (!op.classified) {
        if (op.access.is_global) {
          classify_global(op);
        } else {
          classify_smem(op);
        }
        op.classified = true;
      }
      // Global requests occupy an MSHR until their data returns; when all
      // MSHRs are busy the LSU stalls (this backpressure is what the paper's
      // Table III LDG CPIs measure).
      const bool mshr_ok = !op.access.is_global || op.access.is_store ||
                           op.port_bytes == 0.0 || outstanding < cfg.spec.mshr_limit;
      if (mshr_ok) {
        const auto cost_cycles = static_cast<std::uint64_t>(op.cost + 0.999);
        mio_free = now + cost_cycles;
        stats.mio_busy += cost_cycles;

        std::uint64_t arrive = mio_free + static_cast<std::uint64_t>(op.latency);
        double port_busy_cycles = 0.0;
        std::uint64_t bw_delay_cycles = 0;
        if (op.access.is_global && op.port_bytes > 0.0) {
          // Serialize through the L2-to-SM return port, then apply device
          // bandwidth debt (shortage delays completion, not the pipe).
          const double port_busy = op.port_bytes / cfg.spec.l2_port_bytes_per_cycle;
          const double data_ready = std::max(static_cast<double>(now), port_free) + port_busy;
          port_free = data_ready;
          double bw_delay;
          if (cfg.shared != nullptr) {
            // Device-shared budgets: all SMs' withdrawals deepen one common
            // debt, so bandwidth contention between SMs emerges here.
            bw_delay = std::max(
                cfg.shared->l2_bw.consume(op.need_l2_tokens, static_cast<double>(now)),
                cfg.shared->dram_bw.consume(op.need_dram_tokens, static_cast<double>(now)));
          } else {
            bw_delay = std::max(l2_bw.consume_with_debt(op.need_l2_tokens),
                                dram_bw.consume_with_debt(op.need_dram_tokens));
          }
          stats.mio_bw_stall += static_cast<std::uint64_t>(bw_delay);
          arrive = static_cast<std::uint64_t>(data_ready + bw_delay) +
                   static_cast<std::uint64_t>(op.latency);
          // Stores are fire-and-forget into L2 (write-back); only loads hold
          // an MSHR until their data returns.
          if (!op.access.is_store) {
            ++outstanding;
            mshr_release.push_back(arrive);
            if (prof != nullptr) prof->on_mshr_occupancy(outstanding);
          }
          port_busy_cycles = port_busy;
          bw_delay_cycles = static_cast<std::uint64_t>(bw_delay);
        }
        if (prof != nullptr) {
          prof->on_mio_service(op.access.is_global, op.access.is_store,
                               static_cast<int>(op.access.width), now, cost_cycles,
                               port_busy_cycles, bw_delay_cycles);
        }

        TWarp& w = *warps[static_cast<std::size_t>(op.warp)];
        for (const auto& cw : op.load_writes) {
          w.regs.write_at(cw.reg, cw.lane, cw.value, arrive);
        }
        if (op.write_barrier != sass::kNoBarrier) {
          releases.push_back({arrive, op.warp, op.write_barrier});
        }
        if (op.read_barrier != sass::kNoBarrier) {
          releases.push_back({mio_free, op.warp, op.read_barrier});
        }
        mio_queue.pop_front();
      }
    }

    // --- issue: one instruction per partition per cycle ----------------------
    for (int p = 0; p < partitions; ++p) {
      // Profiling pre-pass: classify every resident warp's scheduler state
      // this cycle with the same checks the issue loop applies, so idle
      // cycles can be attributed per warp and per PC (the software analogue
      // of Nsight's warp-state sampling). settle_warp is time-driven and
      // idempotent, so running it here does not perturb the issue loop.
      if (prof != nullptr) {
        for (int wi = 0; wi < num_warps; ++wi) {
          if (partition_of(wi) != p) continue;
          TWarp& w = *warps[static_cast<std::size_t>(wi)];
          std::uint8_t state = kWarpDead;
          if (w.exited) {
            state = kWarpDead;
          } else if (w.at_barrier) {
            state = static_cast<std::uint8_t>(prof::StallReason::kBarrier);
          } else if (w.ready_cycle > now) {
            state = static_cast<std::uint8_t>(prof::StallReason::kStallCount);
          } else {
            settle_warp(w);
            const auto& inst = prog->code[static_cast<std::size_t>(w.pc)];
            bool waiting = false;
            for (int b = 0; b < sass::kNumBarriers; ++b) {
              if (((inst.ctrl.wait_mask >> b) & 1) && w.scoreboard[b] > 0) {
                waiting = true;
                break;
              }
            }
            if (waiting) {
              state = static_cast<std::uint8_t>(prof::StallReason::kScoreboard);
            } else {
              state = kWarpEligible;
              switch (sass::pipe_class(inst.op)) {
                case sass::PipeClass::kTensor:
                  if (tensor_free[static_cast<std::size_t>(p)] > now)
                    state = static_cast<std::uint8_t>(prof::StallReason::kPipeBusy);
                  break;
                case sass::PipeClass::kFma:
                  if (fma_free[static_cast<std::size_t>(p)] > now)
                    state = static_cast<std::uint8_t>(prof::StallReason::kPipeBusy);
                  break;
                case sass::PipeClass::kAlu:
                case sass::PipeClass::kSpecial:
                  if (alu_free[static_cast<std::size_t>(p)] > now)
                    state = static_cast<std::uint8_t>(prof::StallReason::kPipeBusy);
                  break;
                case sass::PipeClass::kMio:
                  if (static_cast<int>(mio_queue.size()) >= cfg.mio_queue_depth)
                    state = static_cast<std::uint8_t>(prof::StallReason::kMioQueueFull);
                  break;
                case sass::PipeClass::kControl:
                  break;
              }
            }
          }
          warp_state[static_cast<std::size_t>(wi)] = state;
        }
      }

      // Collect this partition's warps in rotating order.
      int issued_warp = -1;
      std::int32_t issued_pc = -1;
      const sass::Instruction* issued_inst = nullptr;
      for (int probe = 0; probe < num_warps; ++probe) {
        const int wi = (rr[static_cast<std::size_t>(p)] + probe) % num_warps;
        if (partition_of(wi) != p) continue;
        TWarp& w = *warps[static_cast<std::size_t>(wi)];
        if (w.exited || w.at_barrier || w.ready_cycle > now) continue;
        settle_warp(w);
        const auto& inst = prog->code[static_cast<std::size_t>(w.pc)];

        // Scoreboard waits.
        bool waiting = false;
        for (int b = 0; b < sass::kNumBarriers; ++b) {
          if ((inst.ctrl.wait_mask >> b) & 1) {
            if (w.scoreboard[b] > 0) {
              waiting = true;
              break;
            }
          }
        }
        if (waiting) continue;

        // Pipe availability.
        const auto pclass = sass::pipe_class(inst.op);
        switch (pclass) {
          case sass::PipeClass::kTensor:
            if (tensor_free[static_cast<std::size_t>(p)] > now) continue;
            break;
          case sass::PipeClass::kFma:
            if (fma_free[static_cast<std::size_t>(p)] > now) continue;
            break;
          case sass::PipeClass::kAlu:
          case sass::PipeClass::kSpecial:
            if (alu_free[static_cast<std::size_t>(p)] > now) continue;
            break;
          case sass::PipeClass::kMio:
            if (static_cast<int>(mio_queue.size()) >= cfg.mio_queue_depth) continue;
            break;
          case sass::PipeClass::kControl:
            break;
        }

        // --- issue ----------------------------------------------------------
        issued_pc = w.pc;  // captured before the control-flow switch advances it
        issued_inst = &inst;
        TCta& cta = cta_state[static_cast<std::size_t>(w.cta_index)];
        ExecContext ctx;
        ctx.regs = &w.regs;
        ctx.smem = cta.smem.get();
        ctx.gmem = &gmem;
        ctx.launch = launch;
        ctx.cta_x = cta.coord.x;
        ctx.cta_y = cta.coord.y;
        ctx.cta_z = cta.coord.z;
        ctx.warp_in_cta = w.warp_in_cta;
        ctx.sm_id = cfg.sm_id;
        ctx.clock = now;
        sink.clear();
        StepResult r;
        if (cfg.skip_mma_math && sass::is_mma(inst.op)) {
          // Timing-only fast path: the tensor pipe is occupied and the
          // destination writeback is scheduled below, but the math (and the
          // cost of emulating it) is skipped.
          sink.gpr(inst.dst, 0, 0);
        } else {
          r = exec_step(ctx, inst, sink);
        }
        ++stats.instructions;
        if (sass::is_mma(inst.op)) ++stats.hmma_count;

        // Occupy the pipe.
        const int occ = pipe_occupancy(inst);
        switch (pclass) {
          case sass::PipeClass::kTensor:
            tensor_free[static_cast<std::size_t>(p)] = now + static_cast<std::uint64_t>(occ);
            stats.tensor_busy += static_cast<std::uint64_t>(occ);
            break;
          case sass::PipeClass::kFma:
            fma_free[static_cast<std::size_t>(p)] = now + static_cast<std::uint64_t>(occ);
            stats.fma_busy += static_cast<std::uint64_t>(occ);
            break;
          case sass::PipeClass::kAlu:
          case sass::PipeClass::kSpecial:
            alu_free[static_cast<std::size_t>(p)] = now + static_cast<std::uint64_t>(occ);
            stats.alu_busy += static_cast<std::uint64_t>(occ);
            break;
          default:
            break;
        }

        // Retire results.
        if (r.mem.valid) {
          MioOp op;
          op.warp = wi;
          op.access = r.mem;
          op.load_writes = sink.gprs;  // loads buffered until arrival
          op.write_barrier = inst.ctrl.write_barrier;
          op.read_barrier = inst.ctrl.read_barrier;
          if (op.write_barrier != sass::kNoBarrier) ++w.scoreboard[op.write_barrier];
          if (op.read_barrier != sass::kNoBarrier) ++w.scoreboard[op.read_barrier];
          mio_queue.push_back(std::move(op));
          if (prof != nullptr) {
            int active_lanes = 0;
            for (bool a : r.mem.active) active_lanes += a ? 1 : 0;
            prof->on_mem_issue(r.mem.is_global, r.mem.is_store, active_lanes,
                               sass::width_bytes(r.mem.width));
            prof->on_mio_queue_depth(static_cast<int>(mio_queue.size()));
          }
        } else {
          for (const auto& cw : sink.gprs) {
            const int off = cw.reg.idx - inst.dst.idx;
            w.regs.write_at(cw.reg, cw.lane, cw.value,
                            now + static_cast<std::uint64_t>(fixed_latency(inst, off)));
          }
          for (const auto& cp : sink.preds) {
            w.pending_preds.push_back({now + kAluLatency, cp});
          }
        }

        // Control flow + stall.
        const auto stall = static_cast<std::uint64_t>(std::max<int>(inst.ctrl.stall, 1));
        w.ready_cycle = now + stall;
        switch (r.kind) {
          case StepKind::kNext:
            ++w.pc;
            break;
          case StepKind::kBranch:
            w.pc = r.branch_target;
            w.ready_cycle = now + std::max<std::uint64_t>(stall, kBranchRedirectCycles);
            break;
          case StepKind::kBarrier:
            ++w.pc;
            w.at_barrier = true;
            ++cta.arrived;
            break;
          case StepKind::kExit:
            w.exited = true;
            --cta.alive_warps;
            --alive;
            if (cta.alive_warps == 0 && source != nullptr) {
              free_slots.push_back(w.cta_index);
            }
            break;
        }
        issued_warp = wi;
        break;
      }
      if (issued_warp >= 0) {
        rr[static_cast<std::size_t>(p)] = (issued_warp + 1) % num_warps;
      }

      // Profiling post-pass: report the issue, charge each blocked warp one
      // stall cycle at its current PC, and attribute this scheduler cycle.
      if (prof != nullptr) {
        std::array<std::uint32_t, prof::kNumStallReasons> reason_count{};
        int live = 0;
        for (int wi = 0; wi < num_warps; ++wi) {
          if (partition_of(wi) != p) continue;
          const std::uint8_t state = warp_state[static_cast<std::size_t>(wi)];
          if (state == kWarpDead) continue;
          ++live;
          if (wi == issued_warp) continue;
          const auto reason = state == kWarpEligible
                                  ? prof::StallReason::kNotSelected
                                  : static_cast<prof::StallReason>(state);
          // Non-issued warps did not move, so w.pc is still the blocked PC.
          prof->on_warp_stall(wi, warps[static_cast<std::size_t>(wi)]->pc, reason);
          ++reason_count[static_cast<std::size_t>(reason)];
        }
        if (issued_warp >= 0) {
          prof->on_issue(p, issued_warp, issued_pc, *issued_inst, now,
                         pipe_occupancy(*issued_inst), issued_inst->ctrl.stall);
          prof->on_sched_cycle(p, true, prof::StallReason::kNoInstruction);
        } else {
          auto dominant = prof::StallReason::kNoInstruction;
          std::uint32_t best = 0;
          if (live > 0) {
            for (int r = 0; r < prof::kNumStallReasons; ++r) {
              if (reason_count[static_cast<std::size_t>(r)] > best) {
                best = reason_count[static_cast<std::size_t>(r)];
                dominant = static_cast<prof::StallReason>(r);
              }
            }
          }
          prof->on_sched_cycle(p, false, dominant);
        }
      }
    }

    // --- CTA barrier release -------------------------------------------------
    for (std::size_t ci = 0; ci < cta_state.size(); ++ci) {
      TCta& cta = cta_state[ci];
      if (cta.arrived > 0 && cta.arrived == cta.alive_warps) {
        for (auto& wptr : warps) {
          if (wptr->cta_index == static_cast<int>(ci) && wptr->at_barrier) {
            wptr->at_barrier = false;
          }
        }
        cta.arrived = 0;
      }
      TC_CHECK(!(cta.alive_warps == 0 && cta.arrived > 0),
               "deadlock: warps wait at BAR.SYNC in an exited CTA");
    }

    // --- dynamic CTA refill --------------------------------------------------
    if (!free_slots.empty()) {
      auto keep = free_slots.begin();
      for (auto it = free_slots.begin(); it != free_slots.end(); ++it) {
        if (!slot_quiescent(*it)) {
          *keep++ = *it;  // in-flight hazards still name this slot; retry
          continue;
        }
        if (auto next = source->next()) {
          respawn_slot(*it, *next);
        }
        // Source drained: the slot stays empty for the rest of the run.
      }
      free_slots.erase(keep, free_slots.end());
    }

    ++now;
  }

  TimedStats finish() {
    TC_CHECK(running, "finish() without begin()");
    // Flush remaining writebacks — registers AND predicates — so functional
    // state is complete. Predicates used to be left pending here, which made
    // an ISETP issued shortly before EXIT invisible in the final state (the
    // differential fuzzer flags exactly this as a divergence).
    for (auto& w : warps) {
      w->regs.settle_all();
      for (const auto& pp : w->pending_preds) {
        w->regs.write_pred(pp.w.pred, pp.w.lane, pp.w.value);
      }
      w->pending_preds.clear();
      if (cfg.probe != nullptr) {
        const CtaCoord coord = cta_state[static_cast<std::size_t>(w->cta_index)].coord;
        cfg.probe->capture(w->regs, coord.x, coord.y, coord.z, w->warp_in_cta);
      }
    }

    if (prof != nullptr) prof->end_run(now);

    stats.cycles = now;
    running = false;
    return stats;
  }
};

TimedSm::TimedSm(TimedConfig cfg, mem::GlobalMemory& gmem)
    : impl_(std::make_unique<Impl>(cfg, gmem)) {}

TimedSm::~TimedSm() = default;

TimedStats TimedSm::run(const Launch& launch, std::span<const CtaCoord> ctas) {
  impl_->begin(launch, ctas, nullptr);
  while (!impl_->is_done()) impl_->step_cycle();
  return impl_->finish();
}

void TimedSm::begin(const Launch& launch, CtaSource& source, int resident_ctas) {
  TC_CHECK(resident_ctas > 0, "need at least one resident CTA slot");
  std::vector<CtaCoord> initial;
  initial.reserve(static_cast<std::size_t>(resident_ctas));
  for (int i = 0; i < resident_ctas; ++i) {
    auto c = source.next();
    if (!c) break;
    initial.push_back(*c);
  }
  TC_CHECK(!initial.empty(), "CTA source drained before this SM got any work");
  impl_->begin(launch, initial, &source);
}

bool TimedSm::step() {
  if (!impl_->is_done()) impl_->step_cycle();
  return !impl_->is_done();
}

bool TimedSm::done() const { return impl_->is_done(); }

std::uint64_t TimedSm::now() const { return impl_->now; }

TimedStats TimedSm::finish() { return impl_->finish(); }

}  // namespace tc::sim
