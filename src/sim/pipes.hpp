// Microarchitectural cost tables of the modeled Turing SM.
//
// These are the *theoretical* per-instruction costs; the microbenchmarks in
// bench/ re-measure them the paper's way (long loops + CS2R) and obtain the
// slightly larger "measured" values (8.06 for HMMA, 2.11 for LDS.32, ...)
// from loop overhead and queue drain — the same mechanism as on silicon.
//
// Sources for the theoretical values:
//  * HMMA.1688 CPI 8: 16 4x4x4 steps / 2 tensor cores per partition
//    (paper Section IV-C).
//  * HMMA latency 10/14 cycles for the low/high destination half (Table I).
//  * LDS/STS CPI per width: paper Table IV; LDG per width and level:
//    paper Table III, which implies a 64 B/cycle L1 return path and a
//    32 B/cycle L2-to-SM port with a 4-cycle minimum occupancy.
#pragma once

#include "device/spec.hpp"
#include "sass/instruction.hpp"
#include "sass/latency.hpp"

namespace tc::sim {

// --- fixed-latency pipes --------------------------------------------------

// Result latencies (cycles from issue to register visibility) live in the
// shared table sass/latency.hpp, consumed identically by this simulator, the
// static hazard detector, the stall-slack lint, and the scheduler. The sim::
// names below are aliases kept for existing call sites.
inline constexpr int kAluLatency = sass::kAluLatency;
inline constexpr int kFmaLatency = sass::kFmaLatency;
inline constexpr int kSpecialLatency = sass::kSpecialLatency;
/// HMMA destination halves (paper Table I).
inline constexpr int kMmaLatencyLow = sass::kMmaLatencyLow;
inline constexpr int kMmaLatencyHigh = sass::kMmaLatencyHigh;

/// Cycles a taken branch blocks further issue of its warp (fetch redirect).
inline constexpr int kBranchRedirectCycles = sass::kBranchRedirectCycles;

/// Issue-to-issue occupancy of the per-partition pipes (warp CPI).
[[nodiscard]] int pipe_occupancy(const sass::Instruction& inst);

/// Fixed-latency writeback delay for `inst`'s destination register `dreg`
/// (its index relative to inst.dst). Memory loads are variable-latency and
/// handled by the MIO unit instead. This IS the shared table's oracle —
/// a using-declaration, so &sim::fixed_latency == &sass::fixed_latency.
using sass::fixed_latency;

// --- MIO pipe ---------------------------------------------------------------

/// Base MIO occupancy for shared-memory instructions (before bank-conflict
/// multiplication): paper Table IV theoretical values.
[[nodiscard]] int smem_base_cost(sass::Opcode op, sass::MemWidth width);

/// MIO occupancy of a global access moving `bytes` in total, split by the
/// serving level. The L1 return path sustains 64 B/cycle; everything coming
/// from L2 or DRAM crosses the 32 B/cycle L2-to-SM port. 4-cycle minimum.
[[nodiscard]] double global_cost(double l1_bytes, double beyond_l1_bytes);

/// Data-return latency by serving level.
struct MemLatency {
  int smem;
  int l1;
  int l2;
  int dram;
};
[[nodiscard]] MemLatency mem_latency(const device::DeviceSpec& spec);

}  // namespace tc::sim
