// Functional execution engine selection.
//
// The interpreter (sim/exec_core + sim/functional) is the permanent
// semantics oracle: one decoded instruction at a time, shared with the
// timing engine. The JIT (src/jit) compiles SASS basic blocks to threaded
// code for ~order-of-magnitude faster functional runs and is held bitwise
// to the interpreter by the differential test layer (check::fuzz engine
// axis, tests/test_jit.cpp, tests/test_equivalence.cpp).
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace tc::sim {

enum class ExecEngine : std::uint8_t {
  kInterpret,  // instruction-at-a-time oracle (default)
  kJit,        // block-compiled threaded code (src/jit), bitwise-identical
};

[[nodiscard]] inline const char* exec_engine_name(ExecEngine e) {
  return e == ExecEngine::kJit ? "jit" : "interpret";
}

[[nodiscard]] inline ExecEngine parse_exec_engine(const std::string& name) {
  if (name == "interpret") return ExecEngine::kInterpret;
  if (name == "jit") return ExecEngine::kJit;
  TC_CHECK(false, "unknown exec engine '" + name + "' (interpret|jit)");
  return ExecEngine::kInterpret;
}

}  // namespace tc::sim
