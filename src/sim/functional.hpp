// Functional (timing-free) execution of a kernel launch.
//
// Runs every CTA of the grid to completion with immediate register
// writeback, so results are schedule-independent. This engine establishes
// *what* a kernel computes; the timing engine (timed_sm) establishes how
// long it takes and whether its stall/barrier schedule is actually correct.
// CTAs are independent (they communicate only through disjoint global
// stores here), so they execute in parallel on host threads.
#pragma once

#include <cstdint>

#include "mem/global_mem.hpp"
#include "sim/launch.hpp"

namespace tc::sim {

class StateProbe;

struct FunctionalStats {
  std::uint64_t instructions = 0;  // warp instructions across all CTAs
  std::uint64_t hmma_count = 0;
};

class FunctionalExecutor {
 public:
  /// `host_threads` 0 = use hardware concurrency.
  explicit FunctionalExecutor(mem::GlobalMemory& gmem, int host_threads = 0);

  /// Runs all CTAs of `launch` to completion; throws if any warp exceeds
  /// `max_warp_instructions` (runaway-loop guard).
  FunctionalStats run(const Launch& launch,
                      std::uint64_t max_warp_instructions = 200'000'000);

  /// Optional divergence probe: when set, each warp's final register and
  /// predicate state is captured as its CTA completes (see sim/probe.hpp).
  void set_probe(StateProbe* probe) { probe_ = probe; }

 private:
  mem::GlobalMemory& gmem_;
  int host_threads_;
  StateProbe* probe_ = nullptr;
};

}  // namespace tc::sim
