// Cycle-approximate timing model of one Turing SM.
//
// Structure (Turing whitepaper + the paper's Section IV/V findings):
//  * 4 processing blocks (partitions), each with its own warp scheduler
//    issuing at most one instruction per cycle, a tensor pipe (2 tensor
//    cores -> HMMA.1688 CPI 8), an FP32 pipe and an integer/ALU pipe.
//  * One SM-wide MIO unit serving LDS/STS/LDG/STG in order from a bounded
//    queue; shared-memory costs follow Table IV (x bank-conflict factor),
//    global costs follow Table III (64 B/cy L1 path, 32 B/cy L2 port).
//  * DRAM and L2 bandwidth are token buckets; the caller chooses the budget
//    (full device for single-SM microbenchmarks, a 1/num_SMs share for
//    steady-state HGEMM runs under full occupancy).
//  * Scheduling is hazard-accurate: fixed-latency results commit
//    `latency` cycles after issue; stall counts and scoreboard barriers are
//    the only protections, exactly as on silicon. Under-scheduled kernels
//    produce wrong results here while passing the functional engine — that
//    contrast is itself one of the paper's measurement tools.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "device/spec.hpp"
#include "mem/global_mem.hpp"
#include "mem/sector_cache.hpp"
#include "mem/token_bucket.hpp"
#include "sim/launch.hpp"

namespace tc::prof {
class Profiler;
}

namespace tc::sim {

class StateProbe;

/// CTA coordinates resident on the simulated SM.
struct CtaCoord {
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  std::uint32_t z = 0;
};

/// Hands out CTAs to SMs as their resident slots free up — the GigaThread
/// engine of a full-device simulation. Implementations must be thread-safe
/// when shared between SMs running on different host threads.
class CtaSource {
 public:
  virtual ~CtaSource() = default;
  /// Next CTA to place in a freed slot, or nullopt when the grid is drained.
  virtual std::optional<CtaCoord> next() = 0;
  /// How many CTAs have been handed out so far.
  [[nodiscard]] virtual std::uint64_t issued() const = 0;
};

/// Dispenses a grid_x x grid_y grid in hardware launch order (x fastest).
class GridCtaSource final : public CtaSource {
 public:
  GridCtaSource(std::uint32_t grid_x, std::uint32_t grid_y, std::uint32_t grid_z = 1)
      : grid_x_(grid_x),
        plane_(static_cast<std::uint64_t>(grid_x) * grid_y),
        total_(static_cast<std::uint64_t>(grid_x) * grid_y * grid_z) {}

  std::optional<CtaCoord> next() override {
    std::lock_guard lock(mutex_);
    if (issued_ >= total_) return std::nullopt;
    const std::uint64_t i = issued_++;
    const std::uint64_t p = i % plane_;
    return CtaCoord{static_cast<std::uint32_t>(p % grid_x_),
                    static_cast<std::uint32_t>(p / grid_x_),
                    static_cast<std::uint32_t>(i / plane_)};
  }

  [[nodiscard]] std::uint64_t issued() const override {
    std::lock_guard lock(mutex_);
    return issued_;
  }

 private:
  mutable std::mutex mutex_;
  std::uint32_t grid_x_;
  std::uint64_t plane_;
  std::uint64_t total_;
  std::uint64_t issued_ = 0;
};

/// Dispenses the grid in an arbitrary LaunchOrder (supertile, serpentine,
/// Hilbert) via a CtaOrderMap. Same thread-safety contract as GridCtaSource.
class OrderedCtaSource final : public CtaSource {
 public:
  OrderedCtaSource(LaunchOrder order, std::uint32_t grid_x, std::uint32_t grid_y,
                   int supertile_width, std::uint32_t grid_z = 1)
      : order_(order),
        supertile_width_(supertile_width),
        grid_z_(grid_z),
        map_(order, grid_x, grid_y, supertile_width) {}

  std::optional<CtaCoord> next() override {
    std::lock_guard lock(mutex_);
    if (issued_ >= map_.total() * grid_z_) return std::nullopt;
    // z-outer: each z plane re-walks the same 2D curve from its start.
    if (issued_ > 0 && issued_ % map_.total() == 0) {
      map_ = CtaOrderMap(order_, map_.grid_x(), map_.grid_y(), supertile_width_);
    }
    const auto z = static_cast<std::uint32_t>(issued_ / map_.total());
    ++issued_;
    const auto [x, y] = map_.next();
    return CtaCoord{x, y, z};
  }

  [[nodiscard]] std::uint64_t issued() const override {
    std::lock_guard lock(mutex_);
    return issued_;
  }

 private:
  mutable std::mutex mutex_;
  LaunchOrder order_;
  int supertile_width_;
  std::uint64_t grid_z_;
  CtaOrderMap map_;
  std::uint64_t issued_ = 0;
};

/// Source matching `launch.launch_order`: the exact GridCtaSource for the
/// row-major-dispatched orders (kRowMajor, kSwizzled), an OrderedCtaSource
/// otherwise.
[[nodiscard]] std::unique_ptr<CtaSource> make_cta_source(const Launch& launch);

/// Device-level memory resources shared by every SM of a full-device
/// simulation: one DRAM budget, one L2 bandwidth budget and one L2 tag
/// array. A TimedSm bound to a SharedMemSystem charges its global traffic
/// here instead of to its private per-SM budgets, so bandwidth contention
/// and inter-CTA L2 reuse across SMs emerge from simulation.
struct SharedMemSystem {
  explicit SharedMemSystem(const device::DeviceSpec& spec)
      : dram_bw(spec.dram_bytes_per_cycle()),
        l2_bw(spec.l2_bytes_per_cycle()),
        l2(spec.l2_size_bytes, spec.l2_ways) {}

  mem::MultiClientBucket dram_bw;
  mem::MultiClientBucket l2_bw;
  mem::SectorCache l2;  // guarded by l2_mutex
  std::mutex l2_mutex;

  /// Device-wide L2 sector hit rate observed so far.
  [[nodiscard]] double l2_hit_rate() {
    std::lock_guard lock(l2_mutex);
    return l2.stats().hit_rate();
  }
};

struct TimedConfig {
  device::DeviceSpec spec;

  /// Bandwidth budget visible to this simulation scope (bytes per cycle).
  /// Defaults (<0) resolve to the full device budget from `spec`.
  double dram_bytes_per_cycle = -1.0;
  double l2_bytes_per_cycle = -1.0;

  /// If >= 0, replace the L2 tag array by a deterministic hit fraction for
  /// L1-missing sectors. Used by the wave model, which computes inter-CTA
  /// reuse analytically (a single simulated SM cannot observe it).
  double forced_l2_hit_rate = -1.0;

  /// Disable the L1 tag array (every .CA load probes L2 directly).
  bool model_l1 = true;

  /// Skip the FP16 arithmetic of MMA instructions (pipe occupancy, latency
  /// and writeback scheduling are unchanged). Register values become
  /// meaningless, so this is only for pure timing measurements — kernels
  /// with no data-dependent control flow, which is all of them here.
  bool skip_mma_math = false;

  int mio_queue_depth = 12;
  std::uint64_t max_cycles = 4'000'000'000ull;

  /// Optional profiler (see src/prof). When null — the default — the engine
  /// takes one well-predicted branch per hook site and is otherwise
  /// unchanged; when set, hardware-style counters, stall attribution and
  /// (if a TraceWriter is attached) a timeline are collected for this run.
  prof::Profiler* profiler = nullptr;

  /// Optional divergence probe: when set, each warp's final committed
  /// register and predicate state is captured after the end-of-run flush,
  /// in the same format the functional executor produces (sim/probe.hpp).
  StateProbe* probe = nullptr;

  /// When set, this SM is one client of a full-device simulation: global
  /// traffic is charged to the shared DRAM/L2 budgets and the shared L2 tag
  /// array instead of the private per-SM budgets above (which are then
  /// unused). `forced_l2_hit_rate` and `sm_id` still apply.
  SharedMemSystem* shared = nullptr;

  /// Identity of this SM inside a TimedDevice (address hashing / debugging).
  int sm_id = 0;
};

struct TimedStats {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t hmma_count = 0;
  /// Partition-cycles each pipe was busy (sum over the 4 partitions).
  std::uint64_t tensor_busy = 0;
  std::uint64_t fma_busy = 0;
  std::uint64_t alu_busy = 0;
  /// Cycles the MIO unit was serving an operation / blocked on bandwidth.
  std::uint64_t mio_busy = 0;
  std::uint64_t mio_bw_stall = 0;
  /// Bytes moved by serving level.
  double l1_bytes = 0.0;
  double l2_bytes = 0.0;
  double dram_bytes = 0.0;
  /// Shared-memory conflict accounting: beats/phases ratio > 1 = conflicts.
  std::uint64_t smem_beats = 0;
  std::uint64_t smem_phases = 0;

  [[nodiscard]] double smem_conflict_factor() const {
    return smem_phases == 0 ? 1.0
                            : static_cast<double>(smem_beats) / static_cast<double>(smem_phases);
  }
};

class TimedSm {
 public:
  TimedSm(TimedConfig cfg, mem::GlobalMemory& gmem);
  ~TimedSm();
  TimedSm(const TimedSm&) = delete;
  TimedSm& operator=(const TimedSm&) = delete;

  /// Runs the given resident CTAs of `launch` to completion and returns
  /// cycle-level statistics. Functional side effects (global stores) are
  /// applied to the bound GlobalMemory.
  TimedStats run(const Launch& launch, std::span<const CtaCoord> ctas);

  /// Steppable interface, used by sim::TimedDevice to interleave several SMs
  /// cycle-by-cycle on shared memory-system state. `begin` fills up to
  /// `resident_ctas` CTA slots from `source`; each retired CTA's slot is
  /// refilled from `source` until it is drained (dynamic refill, like the
  /// GigaThread engine — not wave-by-wave). `step` advances one cycle and
  /// returns false once the SM has drained; `finish` flushes writebacks and
  /// returns the stats. run() == begin + step-until-done + finish.
  void begin(const Launch& launch, CtaSource& source, int resident_ctas);
  bool step();
  [[nodiscard]] bool done() const;
  [[nodiscard]] std::uint64_t now() const;
  TimedStats finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tc::sim
