// Cycle-approximate timing model of one Turing SM.
//
// Structure (Turing whitepaper + the paper's Section IV/V findings):
//  * 4 processing blocks (partitions), each with its own warp scheduler
//    issuing at most one instruction per cycle, a tensor pipe (2 tensor
//    cores -> HMMA.1688 CPI 8), an FP32 pipe and an integer/ALU pipe.
//  * One SM-wide MIO unit serving LDS/STS/LDG/STG in order from a bounded
//    queue; shared-memory costs follow Table IV (x bank-conflict factor),
//    global costs follow Table III (64 B/cy L1 path, 32 B/cy L2 port).
//  * DRAM and L2 bandwidth are token buckets; the caller chooses the budget
//    (full device for single-SM microbenchmarks, a 1/num_SMs share for
//    steady-state HGEMM runs under full occupancy).
//  * Scheduling is hazard-accurate: fixed-latency results commit
//    `latency` cycles after issue; stall counts and scoreboard barriers are
//    the only protections, exactly as on silicon. Under-scheduled kernels
//    produce wrong results here while passing the functional engine — that
//    contrast is itself one of the paper's measurement tools.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "device/spec.hpp"
#include "mem/global_mem.hpp"
#include "sim/launch.hpp"

namespace tc::prof {
class Profiler;
}

namespace tc::sim {

class StateProbe;

/// CTA coordinates resident on the simulated SM.
struct CtaCoord {
  std::uint32_t x = 0;
  std::uint32_t y = 0;
};

struct TimedConfig {
  device::DeviceSpec spec;

  /// Bandwidth budget visible to this simulation scope (bytes per cycle).
  /// Defaults (<0) resolve to the full device budget from `spec`.
  double dram_bytes_per_cycle = -1.0;
  double l2_bytes_per_cycle = -1.0;

  /// If >= 0, replace the L2 tag array by a deterministic hit fraction for
  /// L1-missing sectors. Used by the wave model, which computes inter-CTA
  /// reuse analytically (a single simulated SM cannot observe it).
  double forced_l2_hit_rate = -1.0;

  /// Disable the L1 tag array (every .CA load probes L2 directly).
  bool model_l1 = true;

  /// Skip the FP16 arithmetic of MMA instructions (pipe occupancy, latency
  /// and writeback scheduling are unchanged). Register values become
  /// meaningless, so this is only for pure timing measurements — kernels
  /// with no data-dependent control flow, which is all of them here.
  bool skip_mma_math = false;

  int mio_queue_depth = 12;
  std::uint64_t max_cycles = 4'000'000'000ull;

  /// Optional profiler (see src/prof). When null — the default — the engine
  /// takes one well-predicted branch per hook site and is otherwise
  /// unchanged; when set, hardware-style counters, stall attribution and
  /// (if a TraceWriter is attached) a timeline are collected for this run.
  prof::Profiler* profiler = nullptr;

  /// Optional divergence probe: when set, each warp's final committed
  /// register and predicate state is captured after the end-of-run flush,
  /// in the same format the functional executor produces (sim/probe.hpp).
  StateProbe* probe = nullptr;
};

struct TimedStats {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t hmma_count = 0;
  /// Partition-cycles each pipe was busy (sum over the 4 partitions).
  std::uint64_t tensor_busy = 0;
  std::uint64_t fma_busy = 0;
  std::uint64_t alu_busy = 0;
  /// Cycles the MIO unit was serving an operation / blocked on bandwidth.
  std::uint64_t mio_busy = 0;
  std::uint64_t mio_bw_stall = 0;
  /// Bytes moved by serving level.
  double l1_bytes = 0.0;
  double l2_bytes = 0.0;
  double dram_bytes = 0.0;
  /// Shared-memory conflict accounting: beats/phases ratio > 1 = conflicts.
  std::uint64_t smem_beats = 0;
  std::uint64_t smem_phases = 0;

  [[nodiscard]] double smem_conflict_factor() const {
    return smem_phases == 0 ? 1.0
                            : static_cast<double>(smem_beats) / static_cast<double>(smem_phases);
  }
};

class TimedSm {
 public:
  TimedSm(TimedConfig cfg, mem::GlobalMemory& gmem);
  ~TimedSm();
  TimedSm(const TimedSm&) = delete;
  TimedSm& operator=(const TimedSm&) = delete;

  /// Runs the given resident CTAs of `launch` to completion and returns
  /// cycle-level statistics. Functional side effects (global stores) are
  /// applied to the bound GlobalMemory.
  TimedStats run(const Launch& launch, std::span<const CtaCoord> ctas);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tc::sim
