// Cycle-level multi-SM device simulator.
//
// Runs one TimedSm per SM of the target device against *shared* DRAM/L2
// bandwidth budgets and a shared L2 tag array (SharedMemSystem), with CTAs
// handed out dynamically from a GridCtaSource as resident slots retire. The
// full-device effects the wave model (model::WavePerf) only *assumes* —
// bandwidth contention between SMs, wave quantization, uneven tail waves,
// inter-CTA L2 reuse — all emerge here from simulation, which is what makes
// this engine the validation oracle for the model (tests/test_device_xval).
//
// Threading: SMs are sharded across `threads` host workers, each stepping its
// SMs one cycle at a time; workers synchronize on a barrier every
// `sync_window` cycles, bounding clock skew between any two SMs to one
// window. With threads == 1 (the default) every SM is stepped in lockstep
// round-robin, so the global interleave is cycle-exact and the simulation is
// fully deterministic; multi-threaded runs may reorder same-window bucket
// withdrawals and L2 tag probes, shifting results by a bounded amount
// (test_device_xval pins the allowed drift).
#pragma once

#include <cstdint>
#include <vector>

#include "device/spec.hpp"
#include "mem/global_mem.hpp"
#include "sim/launch.hpp"
#include "sim/timed_sm.hpp"

namespace tc::sim {

struct TimedDeviceConfig {
  device::DeviceSpec spec;

  /// Resident CTA slots per SM. Use device::occupancy() for the kernel's
  /// actual occupancy; the simulator does not re-derive it.
  int ctas_per_sm = 1;

  /// Host worker threads. 1 = deterministic lockstep (recommended and the
  /// default; also what a single-core CI box can actually parallelize).
  int threads = 1;

  /// Cycles between cross-thread synchronization barriers (threads > 1).
  int sync_window = 64;

  /// Forwarded to each TimedSm (see TimedConfig).
  bool model_l1 = true;
  bool skip_mma_math = false;
  double forced_l2_hit_rate = -1.0;
  std::uint64_t max_cycles = 4'000'000'000ull;
};

struct DeviceResult {
  /// Device kernel time: the cycle the last SM drained (max over SMs).
  std::uint64_t device_cycles = 0;
  /// Per-SM stats; `cycles` of an early-drained SM is its own finish time,
  /// so the spread between min and max is the tail-wave imbalance.
  std::vector<TimedStats> per_sm;
  /// Sums over SMs (cycles field = device_cycles).
  TimedStats total;
  /// Emergent device-wide L2 sector hit rate (shared tag array).
  double l2_hit_rate = 0.0;
  /// CTAs dispensed (== grid size when the run completes).
  std::uint64_t ctas_run = 0;
  /// SMs that received at least one CTA.
  int sms_used = 0;
};

class TimedDevice {
 public:
  TimedDevice(TimedDeviceConfig cfg, mem::GlobalMemory& gmem);

  /// Simulates `launch` over the whole device to completion. Functional side
  /// effects (global stores) are applied to the bound GlobalMemory.
  DeviceResult run(const Launch& launch);

 private:
  TimedDeviceConfig cfg_;
  mem::GlobalMemory& gmem_;
};

}  // namespace tc::sim
