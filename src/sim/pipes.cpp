#include "sim/pipes.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tc::sim {

int pipe_occupancy(const sass::Instruction& inst) {
  using sass::Opcode;
  switch (inst.op) {
    case Opcode::kHmma1688F16:
    case Opcode::kHmma1688F32:
      return 8;  // 16 4x4x4 steps / 2 tensor cores per partition
    case Opcode::kHmma884F16:
      return 4;  // half the MACs of .1688
    case Opcode::kImma8816S8:
      return 8;
    case Opcode::kFadd:
    case Opcode::kFmul:
    case Opcode::kFfma:
      return 2;  // 16 FP32 lanes per partition
    case Opcode::kBar:
    case Opcode::kBra:
    case Opcode::kExit:
    case Opcode::kNop:
      return 1;
    case Opcode::kS2r:
    case Opcode::kCs2rClock:
    case Opcode::kMovParam:
      return 2;
    default:
      return 2;  // 16-lane integer/logic/fp16x2 path
  }
}

int smem_base_cost(sass::Opcode op, sass::MemWidth width) {
  const bool store = op == sass::Opcode::kSts;
  switch (width) {
    case sass::MemWidth::k32:
      return store ? 4 : 2;
    case sass::MemWidth::k64:
      return store ? 6 : 4;
    case sass::MemWidth::k128:
      return store ? 10 : 8;
  }
  TC_ASSERT(false, "unknown width");
}

double global_cost(double l1_bytes, double beyond_l1_bytes) {
  return std::max(4.0, l1_bytes / 64.0 + beyond_l1_bytes / 32.0);
}

MemLatency mem_latency(const device::DeviceSpec& spec) {
  return {spec.lat_smem, spec.lat_l1_hit, spec.lat_l2_hit, spec.lat_dram};
}

}  // namespace tc::sim
