#include "sim/functional.hpp"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "jit/jit.hpp"
#include "mem/banked_smem.hpp"
#include "sim/exec_core.hpp"
#include "sim/probe.hpp"

namespace tc::sim {

namespace {

struct WarpRun {
  std::unique_ptr<WarpRegs> regs = std::make_unique<WarpRegs>();
  std::int32_t pc = 0;
  bool exited = false;
  bool at_barrier = false;
  std::uint64_t executed = 0;  // lifetime instruction count (budget + stats)
};

/// Runs one CTA to completion; returns (instructions, hmma_count).
std::pair<std::uint64_t, std::uint64_t> run_cta(mem::GlobalMemory& gmem, const Launch& launch,
                                                std::uint32_t cta_x, std::uint32_t cta_y,
                                                std::uint32_t cta_z,
                                                std::uint64_t max_warp_instructions,
                                                StateProbe* probe) {
  const sass::Program& prog = *launch.program;
  const int num_warps = static_cast<int>(launch.warps_per_cta());
  mem::SharedMemory smem(prog.smem_bytes);

  std::vector<WarpRun> warps(static_cast<std::size_t>(num_warps));
  std::uint64_t instructions = 0;
  std::uint64_t hmma = 0;

  auto alive = [&] {
    int n = 0;
    for (const auto& w : warps) n += w.exited ? 0 : 1;
    return n;
  };

  while (alive() > 0) {
    int arrived = 0;
    // Advance each non-exited warp until it blocks at a barrier or exits.
    for (int wi = 0; wi < num_warps; ++wi) {
      WarpRun& w = warps[static_cast<std::size_t>(wi)];
      if (w.exited || w.at_barrier) {
        arrived += w.at_barrier ? 1 : 0;
        continue;
      }
      ExecContext ctx;
      ctx.regs = w.regs.get();
      ctx.smem = &smem;
      ctx.gmem = &gmem;
      ctx.launch = &launch;
      ctx.cta_x = cta_x;
      ctx.cta_y = cta_y;
      ctx.cta_z = cta_z;
      ctx.warp_in_cta = wi;
      ImmediateSink sink(*w.regs);

      while (true) {
        // Lifetime budget per warp: `executed` is never reset, so a runaway
        // loop is caught even when its body contains a BAR.SYNC (where the
        // warp repeatedly leaves and re-enters this inner stretch).
        TC_CHECK(w.executed < max_warp_instructions,
                 "warp exceeded instruction budget (runaway loop?) in kernel '" + prog.name +
                     "'");
        const auto& inst = prog.code[static_cast<std::size_t>(w.pc)];
        ctx.clock = w.executed;  // functional clock: instruction count
        const StepResult r = exec_step(ctx, inst, sink);
        ++w.executed;
        if (sass::is_mma(inst.op)) ++hmma;
        switch (r.kind) {
          case StepKind::kNext:
            ++w.pc;
            continue;
          case StepKind::kBranch:
            w.pc = r.branch_target;
            continue;
          case StepKind::kBarrier:
            ++w.pc;
            w.at_barrier = true;
            break;
          case StepKind::kExit:
            w.exited = true;
            break;
        }
        break;
      }
      if (w.at_barrier) ++arrived;
    }

    // Release the barrier once every live warp has arrived.
    if (arrived > 0) {
      TC_CHECK(arrived == alive(), "deadlock: some warps exited while others wait at BAR.SYNC");
      for (auto& w : warps) w.at_barrier = false;
    }
  }
  for (const auto& w : warps) instructions += w.executed;
  if (probe != nullptr) {
    for (int wi = 0; wi < num_warps; ++wi) {
      probe->capture(*warps[static_cast<std::size_t>(wi)].regs, cta_x, cta_y, cta_z, wi);
    }
  }
  return {instructions, hmma};
}

}  // namespace

FunctionalExecutor::FunctionalExecutor(mem::GlobalMemory& gmem, int host_threads)
    : gmem_(gmem),
      host_threads_(host_threads > 0
                        ? host_threads
                        : static_cast<int>(std::thread::hardware_concurrency())) {}

FunctionalStats FunctionalExecutor::run(const Launch& launch,
                                        std::uint64_t max_warp_instructions) {
  TC_CHECK(launch.program != nullptr, "launch without a program");
  TC_CHECK(launch.program->num_param_words <= launch.params.size(),
           "kernel '" + launch.program->name + "' reads " +
               std::to_string(launch.program->num_param_words) + " param words, " +
               std::to_string(launch.params.size()) + " provided");

  // JIT engine: compile once up front (validated, optimized, operand-bound);
  // the compiled program is read-only and shared by all CTA workers. The
  // interpreter path below stays byte-for-byte untouched — it is the oracle.
  std::unique_ptr<const jit::JitProgram> jp;
  if (launch.engine == ExecEngine::kJit) {
    jp = std::make_unique<const jit::JitProgram>(jit::compile(*launch.program));
  }

  const std::uint64_t total = launch.num_ctas();
  std::atomic<std::uint64_t> next{0};
  std::atomic<std::uint64_t> instructions{0};
  std::atomic<std::uint64_t> hmma{0};
  std::atomic<bool> failed{false};
  std::string error_msg;
  std::mutex error_mutex;

  const int nthreads = static_cast<int>(
      std::min<std::uint64_t>(static_cast<std::uint64_t>(std::max(host_threads_, 1)), total));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) {
    pool.emplace_back([&] {
      for (;;) {
        const std::uint64_t i = next.fetch_add(1);
        if (i >= total || failed.load()) return;
        const std::uint64_t plane = static_cast<std::uint64_t>(launch.grid_x) * launch.grid_y;
        const auto cz = static_cast<std::uint32_t>(i / plane);
        const auto cx = static_cast<std::uint32_t>((i % plane) % launch.grid_x);
        const auto cy = static_cast<std::uint32_t>((i % plane) / launch.grid_x);
        try {
          const auto [insts, hm] =
              jp != nullptr
                  ? jit::run_cta(*jp, gmem_, launch, cx, cy, cz, max_warp_instructions, probe_)
                  : run_cta(gmem_, launch, cx, cy, cz, max_warp_instructions, probe_);
          instructions.fetch_add(insts);
          hmma.fetch_add(hm);
        } catch (const std::exception& e) {
          std::lock_guard lock(error_mutex);
          if (!failed.exchange(true)) error_msg = e.what();
          return;
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  TC_CHECK(!failed.load(), "functional execution failed: " + error_msg);

  return {instructions.load(), hmma.load()};
}

}  // namespace tc::sim
