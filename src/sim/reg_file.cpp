#include "sim/reg_file.hpp"

#include <algorithm>

namespace tc::sim {

WarpRegs::WarpRegs() {
  pred_[7] = 0xFFFFFFFFu;  // PT
  pending_.reserve(64);
}

std::uint32_t WarpRegs::read(sass::Reg r, int lane) const {
  if (r.is_rz()) return 0;
  return gpr_[r.idx][static_cast<std::size_t>(lane)];
}

void WarpRegs::write_now(sass::Reg r, int lane, std::uint32_t value) {
  if (r.is_rz()) return;
  gpr_[r.idx][static_cast<std::size_t>(lane)] = value;
}

void WarpRegs::write_at(sass::Reg r, int lane, std::uint32_t value, std::uint64_t due_cycle) {
  if (r.is_rz()) return;
  pending_.push_back({due_cycle, r.idx, static_cast<std::uint8_t>(lane), value});
}

void WarpRegs::settle(std::uint64_t now) {
  if (pending_.empty()) return;
  auto keep = pending_.begin();
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->due <= now) {
      gpr_[it->reg][it->lane] = it->value;
    } else {
      *keep++ = *it;
    }
  }
  pending_.erase(keep, pending_.end());
}

void WarpRegs::settle_all() {
  for (const auto& p : pending_) gpr_[p.reg][p.lane] = p.value;
  pending_.clear();
}

bool WarpRegs::read_pred(sass::Pred p, int lane) const {
  return (pred_[p.idx] >> lane) & 1u;
}

void WarpRegs::write_pred(sass::Pred p, int lane, bool value) {
  if (p.is_pt()) return;  // PT is read-only
  if (value) {
    pred_[p.idx] |= (1u << lane);
  } else {
    pred_[p.idx] &= ~(1u << lane);
  }
}

bool WarpRegs::has_pending(sass::Reg r) const {
  if (r.is_rz()) return false;
  return std::any_of(pending_.begin(), pending_.end(),
                     [&](const Pending& p) { return p.reg == r.idx; });
}

}  // namespace tc::sim
