// Tensor Core data layouts and functional MMA execution.
//
// This encodes the paper's Section IV findings as executable definitions:
//
//  * The basic unit of half-precision Tensor Core programming is an 8x8
//    matrix held in one "warp register": 32 lanes x 32 bits = 128 bytes.
//  * Fig. 1 row-major order: lane l holds elements (l/4, (l%4)*2) and
//    (l/4, (l%4)*2+1) packed lo/hi in its 32-bit register.
//  * Fig. 1 column-major order: lane l holds ((l%4)*2, l/4) and
//    ((l%4)*2+1, l/4).
//  * HMMA.1688 computes D(16x8) = A(16x8) * B(8x8) + C(16x8) where D, A, C
//    are register pairs of row-major 8x8 tiles (low register = rows 0..7)
//    and B is a single column-major 8x8 tile (Fig. 2).
//
// Numerics (NumericsMode::kIdealized, the default): each output element is
// an FP32 dot product of the eight FP16 products plus the accumulator,
// rounded once to the accumulator type. This matches the "higher accuracy
// than FP16 units" observation [5] and is the reference semantics all
// recorded tcgemm goldens compare against. NumericsMode::kBitAccurate
// instead runs the SMT-formalization step model (two 4-term fused steps,
// RZ/RNE per accumulate type — see numerics/numerics.hpp and
// docs/numerics.md).
#pragma once

#include <cstdint>

#include "common/half.hpp"
#include "numerics/numerics.hpp"
#include "sass/isa.hpp"
#include "sim/reg_file.hpp"

namespace tc::sim {

class WriteSink;  // exec_core.hpp

/// Position of one FP16 element of an 8x8 matrix inside a warp register.
struct LanePos {
  int lane;  // 0..31
  int part;  // 0 = low half of the 32-bit register, 1 = high half
};

/// Fig. 1 (left): row-major placement of element (row, col), 0 <= row,col < 8.
[[nodiscard]] LanePos row_major_pos(int row, int col);
/// Fig. 1 (right): column-major placement of element (row, col).
[[nodiscard]] LanePos col_major_pos(int row, int col);

/// Inverse maps: which (row, col) does (lane, part) hold?
struct Coord {
  int row;
  int col;
};
[[nodiscard]] Coord row_major_coord(int lane, int part);
[[nodiscard]] Coord col_major_coord(int lane, int part);

/// An 8x8 FP16 tile staged to/from one warp register.
struct Tile8x8 {
  half m[8][8]{};
};

/// Reads one warp register as a row/column-major 8x8 tile (Fig. 1).
[[nodiscard]] Tile8x8 gather_row_major(const WarpRegs& regs, sass::Reg r);
[[nodiscard]] Tile8x8 gather_col_major(const WarpRegs& regs, sass::Reg r);
/// Writes a tile into one warp register with the given order.
void scatter_row_major(WarpRegs& regs, sass::Reg r, const Tile8x8& t);
void scatter_col_major(WarpRegs& regs, sass::Reg r, const Tile8x8& t);

/// Executes one MMA instruction's math, reading settled register state and
/// emitting all destination writes through `sink`. Handles all four opcodes:
/// HMMA.1688.F16/.F32, HMMA.884.F16, IMMA.8816.S8. `mode` selects between
/// the idealized single-rounding semantics above and the bit-accurate
/// per-step model in numerics/numerics.hpp; IMMA is integer-exact and
/// identical in both modes.
void exec_mma(sass::Opcode op, const WarpRegs& regs, sass::Reg d, sass::Reg a, sass::Reg b,
              sass::Reg c, WriteSink& sink,
              numerics::NumericsMode mode = numerics::NumericsMode::kIdealized);

}  // namespace tc::sim
