// Kernel launch description shared by the functional and timing engines.
#pragma once

#include <cstdint>
#include <vector>

#include "numerics/numerics.hpp"
#include "sass/program.hpp"
#include "sim/cta_order.hpp"
#include "sim/engine.hpp"

namespace tc::sim {

/// Grid of CTAs (2D tile grid plus a z axis for batched / split-K GemmOp
/// launches) plus kernel parameters.
/// Parameters are 32-bit words read by MOV.PARAM — device pointers, matrix
/// dimensions, leading strides.
struct Launch {
  const sass::Program* program = nullptr;
  std::uint32_t grid_x = 1;
  std::uint32_t grid_y = 1;
  /// Batch / split-K slice axis (SR_CTAID.Z); dispatch is z-outer, so each
  /// z plane is walked in the configured 2D launch order before the next.
  std::uint32_t grid_z = 1;
  std::vector<std::uint32_t> params;
  /// CTA dispatch order. kRowMajor and kSwizzled both dispatch in hardware
  /// row-major order (kSwizzled is an analytic model patch, not a concrete
  /// walk); the other orders drive an OrderedCtaSource.
  LaunchOrder launch_order = LaunchOrder::kRowMajor;
  /// Panel width for kSupertile; ignored by every other order.
  int supertile_width = 8;
  /// HMMA math semantics for this launch (both the functional and timed
  /// engines honor it): the historic idealized single-rounding model, or
  /// the bit-accurate SMT-formalization model (numerics/numerics.hpp).
  numerics::NumericsMode numerics = numerics::NumericsMode::kIdealized;
  /// Functional execution engine: the instruction interpreter (the oracle)
  /// or the block JIT. Bitwise-identical results by contract; the timing
  /// engine ignores this field (it models issue, not results).
  ExecEngine engine = ExecEngine::kInterpret;

  [[nodiscard]] std::uint64_t num_ctas() const {
    return static_cast<std::uint64_t>(grid_x) * grid_y * grid_z;
  }
  [[nodiscard]] std::uint32_t cta_threads() const { return program->cta_threads; }
  [[nodiscard]] std::uint32_t warps_per_cta() const { return program->cta_threads / 32; }
};

}  // namespace tc::sim
