#include "sim/probe.hpp"

#include <algorithm>
#include <cstdio>
#include <tuple>

namespace tc::sim {

void StateProbe::set_num_regs(int num_regs) {
  std::lock_guard lock(mutex_);
  num_regs_ = num_regs;
}

void StateProbe::capture(const WarpRegs& regs, std::uint32_t cta_x, std::uint32_t cta_y,
                         int warp_in_cta) {
  capture(regs, cta_x, cta_y, 0, warp_in_cta);
}

void StateProbe::capture(const WarpRegs& regs, std::uint32_t cta_x, std::uint32_t cta_y,
                         std::uint32_t cta_z, int warp_in_cta) {
  WarpSnapshot snap;
  snap.cta_x = cta_x;
  snap.cta_y = cta_y;
  snap.cta_z = cta_z;
  snap.warp_in_cta = warp_in_cta;
  std::lock_guard lock(mutex_);
  snap.gprs.reserve(static_cast<std::size_t>(num_regs_) * kWarpSize);
  for (int r = 0; r < num_regs_; ++r) {
    for (int lane = 0; lane < kWarpSize; ++lane) {
      snap.gprs.push_back(regs.read(sass::Reg{static_cast<std::uint8_t>(r)}, lane));
    }
  }
  for (int p = 0; p < 7; ++p) {
    std::uint32_t mask = 0;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (regs.read_pred(sass::Pred{static_cast<std::uint8_t>(p)}, lane)) mask |= 1u << lane;
    }
    snap.preds[static_cast<std::size_t>(p)] = mask;
  }
  snapshots_.push_back(std::move(snap));
}

std::vector<WarpSnapshot> StateProbe::sorted() const {
  std::lock_guard lock(mutex_);
  std::vector<WarpSnapshot> out = snapshots_;
  std::sort(out.begin(), out.end(), [](const WarpSnapshot& a, const WarpSnapshot& b) {
    return std::tie(a.cta_z, a.cta_y, a.cta_x, a.warp_in_cta) <
           std::tie(b.cta_z, b.cta_y, b.cta_x, b.warp_in_cta);
  });
  return out;
}

void StateProbe::clear() {
  std::lock_guard lock(mutex_);
  snapshots_.clear();
}

std::string StateProbe::diff(const StateProbe& a, const StateProbe& b, int max_reports,
                             const std::string& a_name, const std::string& b_name) {
  const auto fa = a.sorted();
  const auto ta = b.sorted();
  if (fa.size() != ta.size()) {
    return "warp count differs: " + a_name + " captured " + std::to_string(fa.size()) + ", " +
           b_name + " captured " + std::to_string(ta.size());
  }
  std::string out;
  int reports = 0;
  const auto warp_name = [](const WarpSnapshot& w) {
    return "cta(" + std::to_string(w.cta_x) + "," + std::to_string(w.cta_y) + "," +
           std::to_string(w.cta_z) + ") warp " + std::to_string(w.warp_in_cta);
  };
  for (std::size_t i = 0; i < fa.size() && reports < max_reports; ++i) {
    const WarpSnapshot& f = fa[i];
    const WarpSnapshot& t = ta[i];
    if (std::tie(f.cta_x, f.cta_y, f.cta_z, f.warp_in_cta) !=
        std::tie(t.cta_x, t.cta_y, t.cta_z, t.warp_in_cta)) {
      return "warp keys differ at index " + std::to_string(i) + ": " + a_name + " " +
             warp_name(f) + " vs " + b_name + " " + warp_name(t);
    }
    const std::size_t n = std::min(f.gprs.size(), t.gprs.size());
    if (f.gprs.size() != t.gprs.size()) {
      out += warp_name(f) + ": captured register counts differ\n";
      ++reports;
    }
    for (std::size_t g = 0; g < n && reports < max_reports; ++g) {
      if (f.gprs[g] != t.gprs[g]) {
        const int reg = static_cast<int>(g) / kWarpSize;
        const int lane = static_cast<int>(g) % kWarpSize;
        char buf[128];
        std::snprintf(buf, sizeof(buf), "R%d lane %d: %s 0x%08x vs %s 0x%08x", reg, lane,
                      a_name.c_str(), f.gprs[g], b_name.c_str(), t.gprs[g]);
        out += warp_name(f) + ": " + buf + "\n";
        ++reports;
      }
    }
    for (std::size_t p = 0; p < f.preds.size() && reports < max_reports; ++p) {
      if (f.preds[p] != t.preds[p]) {
        char buf[128];
        std::snprintf(buf, sizeof(buf), "P%zu lane mask: %s 0x%08x vs %s 0x%08x", p,
                      a_name.c_str(), f.preds[p], b_name.c_str(), t.preds[p]);
        out += warp_name(f) + ": " + buf + "\n";
        ++reports;
      }
    }
  }
  return out;
}

}  // namespace tc::sim
