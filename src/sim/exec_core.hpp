// Functional semantics of every SASS instruction, shared by the functional
// executor and the timing engine.
//
// Execution is split from state commitment: exec_step() computes results and
// routes register/predicate writes through a WriteSink. The functional
// executor commits immediately; the timing engine schedules each write at
// issue_cycle + latency, which is what makes under-scheduled programs
// observably wrong (the paper's latency-probe methodology).
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "mem/banked_smem.hpp"
#include "mem/global_mem.hpp"
#include "sass/instruction.hpp"
#include "sim/launch.hpp"
#include "sim/reg_file.hpp"

namespace tc::sim {

/// Receives the register/predicate writes produced by one instruction.
class WriteSink {
 public:
  virtual ~WriteSink() = default;
  virtual void gpr(sass::Reg r, int lane, std::uint32_t value) = 0;
  virtual void pred(sass::Pred p, int lane, bool value) = 0;
};

/// Sink that commits directly into the warp's registers.
class ImmediateSink final : public WriteSink {
 public:
  explicit ImmediateSink(WarpRegs& regs) : regs_(regs) {}
  void gpr(sass::Reg r, int lane, std::uint32_t value) override {
    regs_.write_now(r, lane, value);
  }
  void pred(sass::Pred p, int lane, bool value) override { regs_.write_pred(p, lane, value); }

 private:
  WarpRegs& regs_;
};

/// Description of a warp-wide memory access, produced at issue so the timing
/// engine can coalesce / arbitrate banks.
struct MemAccess {
  bool valid = false;
  bool is_global = false;
  bool is_store = false;
  sass::MemWidth width = sass::MemWidth::k32;
  sass::CacheOp cache = sass::CacheOp::kCa;
  std::array<std::uint32_t, kWarpSize> addrs{};
  std::array<bool, kWarpSize> active{};
};

/// How control leaves an instruction.
enum class StepKind { kNext, kBranch, kBarrier, kExit };

struct StepResult {
  StepKind kind = StepKind::kNext;
  std::int32_t branch_target = -1;
  MemAccess mem;  // filled for LDG/STG/LDS/STS
};

/// Everything an instruction can touch while executing for one warp.
struct ExecContext {
  WarpRegs* regs = nullptr;
  mem::SharedMemory* smem = nullptr;   // may be null for kernels without smem
  mem::GlobalMemory* gmem = nullptr;
  const Launch* launch = nullptr;
  std::uint32_t cta_x = 0;
  std::uint32_t cta_y = 0;
  std::uint32_t cta_z = 0;
  int warp_in_cta = 0;
  int sm_id = 0;
  std::uint64_t clock = 0;  // value returned by CS2R
};

/// Executes one instruction for a full warp. Register state is read from
/// ctx.regs (settled values only); all writes go to `sink`. Memory data moves
/// immediately (global/shared contents update at issue); the *visibility* of
/// loaded values in registers is the sink's concern.
StepResult exec_step(const ExecContext& ctx, const sass::Instruction& inst, WriteSink& sink);

/// ISETP comparison semantics (signed 32-bit), shared with the JIT so both
/// engines agree by construction.
[[nodiscard]] bool eval_cmp(sass::CmpOp op, std::int32_t a, std::int32_t b);

/// S2R special-register semantics, shared with the JIT. `grid_x` is the
/// launch's x dimension (SR_NCTAID.X).
[[nodiscard]] std::uint32_t special_reg_value(sass::SpecialReg sr, int lane, int warp_in_cta,
                                              std::uint32_t cta_x, std::uint32_t cta_y,
                                              std::uint32_t cta_z, std::uint32_t grid_x,
                                              int sm_id);

}  // namespace tc::sim
