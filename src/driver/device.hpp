// Host-side driver API over the simulated device — the moral equivalent of
// the CUDA driver API calls the paper's harness uses (cuMemAlloc, cuMemcpy,
// cuLaunchKernel, cuEvent*).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "device/spec.hpp"
#include "mem/global_mem.hpp"
#include "sass/program.hpp"
#include "sim/functional.hpp"
#include "sim/launch.hpp"
#include "sim/timed_device.hpp"
#include "sim/timed_sm.hpp"

namespace tc::driver {

/// Typed device pointer (an offset into the simulated global memory).
template <typename T>
struct DevPtr {
  std::uint32_t addr = 0;
  [[nodiscard]] bool is_null() const { return addr == 0; }
  /// Byte address of element i.
  [[nodiscard]] std::uint32_t at(std::uint64_t i) const {
    return addr + static_cast<std::uint32_t>(i * sizeof(T));
  }
};

/// One simulated GPU: global memory + spec + launch entry points.
class Device {
 public:
  explicit Device(device::DeviceSpec spec);

  [[nodiscard]] const device::DeviceSpec& spec() const { return spec_; }
  [[nodiscard]] mem::GlobalMemory& gmem() { return gmem_; }

  /// cudaMalloc analogue.
  template <typename T>
  DevPtr<T> alloc(std::uint64_t count) {
    return {gmem_.alloc(count * sizeof(T))};
  }

  /// cudaMemcpy H2D / D2H analogues.
  template <typename T>
  void upload(DevPtr<T> dst, std::span<const T> src) {
    gmem_.write(dst.addr, std::span(reinterpret_cast<const std::uint8_t*>(src.data()),
                                    src.size_bytes()));
  }
  template <typename T>
  void download(std::span<T> dst, DevPtr<T> src) {
    gmem_.read(src.addr,
               std::span(reinterpret_cast<std::uint8_t*>(dst.data()), dst.size_bytes()));
  }

  /// Releases all device allocations.
  void reset() { gmem_.reset(); }

  /// Runs the whole grid functionally (correctness semantics, no timing).
  sim::FunctionalStats launch(const sim::Launch& launch);

  /// Runs `ctas` resident on one simulated SM with cycle-level timing.
  /// `cfg_overrides` starts from a default TimedConfig for this device.
  sim::TimedStats run_timed(const sim::Launch& launch, std::span<const sim::CtaCoord> ctas,
                            const sim::TimedConfig& cfg);

  /// Runs the whole grid on the cycle-level multi-SM simulator (shared
  /// L2/DRAM, dynamic CTA dispatch — see sim/timed_device.hpp). Functional
  /// side effects land in this device's global memory, so results can be
  /// downloaded and checked like after launch().
  sim::DeviceResult run_timed_device(const sim::Launch& launch,
                                     const sim::TimedDeviceConfig& cfg);

  /// A TimedConfig preset: full-device bandwidth budgets (single-kernel
  /// microbenchmark scope).
  [[nodiscard]] sim::TimedConfig timing_whole_device() const;
  /// A TimedConfig preset: one SM's fair share of bandwidth (steady-state
  /// full-occupancy scope).
  [[nodiscard]] sim::TimedConfig timing_sm_share() const;
  /// A TimedDeviceConfig preset for run_timed_device: every SM of this
  /// device, shared memory system, given occupancy.
  [[nodiscard]] sim::TimedDeviceConfig timed_full_device(int ctas_per_sm) const;

 private:
  device::DeviceSpec spec_;
  mem::GlobalMemory gmem_;
};

/// cudaEvent-style timing helper: converts simulated cycles to seconds.
class EventPair {
 public:
  explicit EventPair(const device::DeviceSpec& spec) : spec_(&spec) {}
  void record(double cycles) { cycles_ = cycles; }
  [[nodiscard]] double elapsed_ms() const { return spec_->cycles_to_seconds(cycles_) * 1e3; }
  [[nodiscard]] double elapsed_s() const { return spec_->cycles_to_seconds(cycles_); }

 private:
  const device::DeviceSpec* spec_;
  double cycles_ = 0.0;
};

}  // namespace tc::driver
