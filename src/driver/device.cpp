#include "driver/device.hpp"

namespace tc::driver {

Device::Device(device::DeviceSpec spec) : spec_(std::move(spec)) {}

sim::FunctionalStats Device::launch(const sim::Launch& launch) {
  sim::FunctionalExecutor exec(gmem_);
  return exec.run(launch);
}

sim::TimedStats Device::run_timed(const sim::Launch& launch,
                                  std::span<const sim::CtaCoord> ctas,
                                  const sim::TimedConfig& cfg) {
  sim::TimedSm sm(cfg, gmem_);
  return sm.run(launch, ctas);
}

sim::DeviceResult Device::run_timed_device(const sim::Launch& launch,
                                           const sim::TimedDeviceConfig& cfg) {
  sim::TimedDevice dev(cfg, gmem_);
  return dev.run(launch);
}

sim::TimedConfig Device::timing_whole_device() const {
  sim::TimedConfig cfg;
  cfg.spec = spec_;
  cfg.dram_bytes_per_cycle = spec_.dram_bytes_per_cycle();
  cfg.l2_bytes_per_cycle = spec_.l2_bytes_per_cycle();
  return cfg;
}

sim::TimedConfig Device::timing_sm_share() const {
  sim::TimedConfig cfg;
  cfg.spec = spec_;
  cfg.dram_bytes_per_cycle = spec_.dram_bytes_per_cycle_per_sm();
  cfg.l2_bytes_per_cycle = spec_.l2_bytes_per_cycle_per_sm();
  return cfg;
}

sim::TimedDeviceConfig Device::timed_full_device(int ctas_per_sm) const {
  sim::TimedDeviceConfig cfg;
  cfg.spec = spec_;
  cfg.ctas_per_sm = ctas_per_sm;
  return cfg;
}

}  // namespace tc::driver
