// Fractional byte-per-cycle bandwidth budget.
//
// DRAM and L2 are modeled as sustained-bandwidth pipes: each simulated cycle
// deposits `rate` bytes of credit (capped at a small burst window), and a
// memory request must withdraw its bytes before completing. When credit runs
// dry the request's completion slips — this is how DRAM-boundness emerges in
// the HGEMM timing runs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>

#include "common/error.hpp"

namespace tc::mem {

class TokenBucket {
 public:
  /// `bytes_per_cycle` may be fractional; `burst_cycles` bounds how much
  /// unused credit can accumulate (keeps long idle periods from creating
  /// unrealistic bursts). The cap never drops below one maximal warp request
  /// (512 B) so low-rate buckets can still satisfy individual accesses.
  explicit TokenBucket(double bytes_per_cycle, double burst_cycles = 64.0)
      : rate_(bytes_per_cycle),
        cap_(std::max(bytes_per_cycle * burst_cycles, 1024.0)),
        credit_(cap_) {
    TC_CHECK(bytes_per_cycle > 0.0, "bandwidth must be positive");
  }

  /// Advances time by `cycles`, accruing credit.
  void tick(double cycles = 1.0) {
    credit_ = std::min(cap_, credit_ + rate_ * cycles);
  }

  /// Attempts to withdraw `bytes`; returns true on success.
  bool try_consume(double bytes) {
    if (credit_ + 1e-9 < bytes) return false;
    credit_ -= bytes;
    total_ += bytes;
    return true;
  }

  /// Returns credit taken by a try_consume that had to be rolled back
  /// (e.g. a sibling bucket refused its share of the same request).
  void refund(double bytes) {
    credit_ = std::min(cap_, credit_ + bytes);
    total_ -= bytes;
  }

  /// Cycles until `bytes` of credit will be available (0 if already there).
  [[nodiscard]] double cycles_until(double bytes) const {
    return credit_ >= bytes ? 0.0 : (bytes - credit_) / rate_;
  }

  /// Unconditionally withdraws `bytes`, letting credit go negative, and
  /// returns how many cycles the requester's data is delayed until the debt
  /// is repaid by refill. This models a memory system with outstanding-miss
  /// queues: bandwidth shortage delays *completions* without blocking the
  /// pipe that issued the request, while the sustained rate still converges
  /// to `rate` because debt (and hence delay) grows with over-subscription.
  double consume_with_debt(double bytes) {
    credit_ -= bytes;
    total_ += bytes;
    return credit_ >= 0.0 ? 0.0 : -credit_ / rate_;
  }

  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] double total_consumed() const { return total_; }
  void reset_stats() { total_ = 0.0; }

 private:
  double rate_;
  double cap_;
  double credit_;
  double total_ = 0.0;
};

/// A bandwidth budget shared by several concurrently simulated clients
/// (the SMs of a full-device simulation).
///
/// The single-client TokenBucket accrues credit from explicit tick() calls,
/// which assumes one simulation loop owns the clock. Here each client carries
/// its own cycle counter (bounded-skew, see sim::TimedDevice), so credit is
/// accrued from the *timestamps* of the requests themselves: the bucket
/// remembers the latest cycle it has seen and deposits `rate` bytes per
/// elapsed cycle. Consumption uses the same debt semantics as
/// TokenBucket::consume_with_debt — shortage delays a request's completion by
/// debt/rate cycles without blocking the issuing pipe — which is what makes
/// bandwidth *contention between SMs* emerge: every SM's withdrawals deepen
/// the common debt, so each one's completions slip.
///
/// Thread-safe; arbitration is first-come-first-served in wall-clock order,
/// which bounded clock skew keeps within one sync window of simulated-time
/// order.
class MultiClientBucket {
 public:
  explicit MultiClientBucket(double bytes_per_cycle, double burst_cycles = 64.0)
      : rate_(bytes_per_cycle),
        cap_(std::max(bytes_per_cycle * burst_cycles, 1024.0)),
        credit_(cap_) {
    TC_CHECK(bytes_per_cycle > 0.0, "bandwidth must be positive");
  }

  /// Withdraws `bytes` at the caller's cycle `now`, letting credit go
  /// negative, and returns the completion delay in cycles (0 when credit
  /// covered the request). Timestamps may arrive slightly out of order
  /// across clients; elapsed time is measured against the max seen so far.
  double consume(double bytes, double now) {
    std::lock_guard lock(mutex_);
    if (now > last_now_) {
      credit_ = std::min(cap_, credit_ + rate_ * (now - last_now_));
      last_now_ = now;
    }
    credit_ -= bytes;
    total_ += bytes;
    return credit_ >= 0.0 ? 0.0 : -credit_ / rate_;
  }

  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] double total_consumed() const {
    std::lock_guard lock(mutex_);
    return total_;
  }

 private:
  mutable std::mutex mutex_;
  double rate_;
  double cap_;
  double credit_;
  double last_now_ = 0.0;
  double total_ = 0.0;
};

}  // namespace tc::mem
