// Simulated device global memory: sparse paged storage + arena allocator.
//
// The device exposes a 32-bit virtual address window (SASS address registers
// are 32-bit in this model). Pages are allocated on first write, so timing
// simulations of a few representative CTAs of an enormous GEMM touch only a
// handful of pages even when the logical matrices would not fit in host RAM.
// Reads of never-written memory return zeros, like freshly cudaMalloc'ed
// memory in practice.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

namespace tc::mem {

inline constexpr std::uint32_t kPageBytes = 1u << 14;  // 16 KiB pages

/// Sparse global memory with bump allocation.
class GlobalMemory {
 public:
  /// `capacity` caps the allocator (default: the full 4 GiB window minus a
  /// guard page so addr+offset arithmetic cannot wrap).
  explicit GlobalMemory(std::uint64_t capacity = (1ull << 32) - kPageBytes);

  /// Allocates `bytes` aligned to 256 B; throws when the arena is exhausted.
  std::uint32_t alloc(std::uint64_t bytes);

  /// Releases everything allocated so far (arena-style reset).
  void reset();

  void read(std::uint32_t addr, std::span<std::uint8_t> out) const;
  void write(std::uint32_t addr, std::span<const std::uint8_t> in);

  /// Bytes currently allocated by `alloc`.
  [[nodiscard]] std::uint64_t allocated() const { return next_ - kBase; }
  /// Number of materialized pages (for tests / footprint checks).
  [[nodiscard]] std::size_t resident_pages() const {
    std::shared_lock lock(mutex_);
    return pages_.size();
  }

 private:
  // Address 0 is kept unmapped so that "null" device pointers fault loudly.
  static constexpr std::uint64_t kBase = 256;

  using Page = std::vector<std::uint8_t>;
  Page* page_for_write(std::uint64_t page_index);
  const Page* page_for_read(std::uint64_t page_index) const;

  std::uint64_t capacity_;
  std::uint64_t next_ = kBase;
  // Functional execution runs CTAs on host threads; page-table mutation and
  // lookup are guarded (CTAs write disjoint bytes, so page *contents* need no
  // finer locking once the page exists).
  mutable std::shared_mutex mutex_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
};

}  // namespace tc::mem
