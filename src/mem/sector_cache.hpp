// Set-associative sector cache model, used for both L1 (per SM) and L2
// (device-wide) hit/miss classification.
//
// NVIDIA caches since Pascal manage 128-byte lines split into four 32-byte
// sectors; a miss fills only the touched sector. This model keeps tags per
// line, a presence bit per sector, and LRU replacement per set. It is a
// timing classifier: data always lives in GlobalMemory; the cache decides
// which level serves each sector and what bandwidth it consumes.
#pragma once

#include <cstdint>
#include <vector>

namespace tc::mem {

inline constexpr std::uint32_t kLineBytes = 128;
inline constexpr std::uint32_t kSectorBytes = 32;
inline constexpr int kSectorsPerLine = 4;

enum class HitLevel { kHit, kMiss };

/// Statistics for bandwidth accounting and tests.
struct CacheStats {
  std::uint64_t sector_hits = 0;
  std::uint64_t sector_misses = 0;
  [[nodiscard]] double hit_rate() const {
    const double total = static_cast<double>(sector_hits + sector_misses);
    return total == 0 ? 0.0 : static_cast<double>(sector_hits) / total;
  }
};

class SectorCache {
 public:
  /// `size_bytes` total capacity, `ways` associativity.
  SectorCache(std::uint64_t size_bytes, int ways);

  /// Looks up one 32-byte sector (by any byte address inside it); on miss the
  /// sector is filled (allocate-on-miss for both loads and stores).
  HitLevel access(std::uint64_t addr);

  /// Non-allocating probe (for tests).
  [[nodiscard]] bool contains(std::uint64_t addr) const;

  void invalidate_all();

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  [[nodiscard]] std::uint64_t size_bytes() const { return size_bytes_; }
  [[nodiscard]] int num_sets() const { return num_sets_; }

 private:
  struct Line {
    std::uint64_t tag = ~std::uint64_t{0};
    std::uint8_t sector_valid = 0;  // bit per sector
    std::uint64_t lru = 0;
  };

  std::uint64_t size_bytes_;
  int ways_;
  int num_sets_;
  std::uint64_t tick_ = 0;
  std::vector<Line> lines_;  // num_sets_ * ways_
  CacheStats stats_;
};

}  // namespace tc::mem
