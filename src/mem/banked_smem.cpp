#include "mem/banked_smem.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/error.hpp"

namespace tc::mem {

SmemAccessCost smem_access_cost(std::span<const std::uint32_t> addrs,
                                std::span<const bool> active, sass::MemWidth width,
                                bool is_store) {
  TC_CHECK(addrs.size() == 32 && active.size() == 32, "warp access needs 32 lanes");
  const int bytes = sass::width_bytes(width);
  const int lanes_per_phase = 128 / bytes;  // 32, 16 or 8
  const int num_phases = 32 / lanes_per_phase;

  SmemAccessCost cost;
  cost.phases = num_phases;

  for (int phase = 0; phase < num_phases; ++phase) {
    // Each lane in the phase touches `bytes/4` consecutive 4-byte words.
    // Gather the distinct words per bank; same-word loads broadcast.
    std::array<std::vector<std::uint32_t>, kNumBanks> words_per_bank;
    bool any_active = false;
    for (int l = 0; l < lanes_per_phase; ++l) {
      const int lane = phase * lanes_per_phase + l;
      if (!active[static_cast<std::size_t>(lane)]) continue;
      any_active = true;
      const std::uint32_t base = addrs[static_cast<std::size_t>(lane)];
      TC_CHECK(base % static_cast<std::uint32_t>(bytes) == 0,
               "misaligned shared memory access");
      for (int wword = 0; wword < bytes / kBankWidthBytes; ++wword) {
        const std::uint32_t word_addr = base / kBankWidthBytes + static_cast<std::uint32_t>(wword);
        const auto bank = word_addr % kNumBanks;
        auto& v = words_per_bank[bank];
        if (is_store || std::find(v.begin(), v.end(), word_addr) == v.end()) {
          v.push_back(word_addr);
        }
      }
    }
    if (!any_active) {
      cost.beats += 1;  // the phase still occupies the pipe
      continue;
    }
    int ways = 1;
    for (const auto& v : words_per_bank) {
      ways = std::max(ways, static_cast<int>(v.size()));
    }
    cost.beats += ways;
  }
  return cost;
}

SharedMemory::SharedMemory(std::uint32_t bytes) : data_(bytes) {}

void SharedMemory::read(std::uint32_t addr, std::span<std::uint8_t> out) const {
  TC_CHECK(static_cast<std::size_t>(addr) + out.size() <= data_.size(),
           "shared memory read out of range: addr=" + std::to_string(addr) +
               " size=" + std::to_string(out.size()) + " smem=" + std::to_string(data_.size()));
  std::memcpy(out.data(), data_.data() + addr, out.size());
}

void SharedMemory::write(std::uint32_t addr, std::span<const std::uint8_t> in) {
  TC_CHECK(static_cast<std::size_t>(addr) + in.size() <= data_.size(),
           "shared memory write out of range: addr=" + std::to_string(addr) +
               " size=" + std::to_string(in.size()) + " smem=" + std::to_string(data_.size()));
  std::memcpy(data_.data() + addr, in.data(), in.size());
}

std::uint32_t SharedMemory::read_u32(std::uint32_t addr) const {
  std::uint32_t v = 0;
  read(addr, std::span(reinterpret_cast<std::uint8_t*>(&v), 4));
  return v;
}

void SharedMemory::write_u32(std::uint32_t addr, std::uint32_t value) {
  write(addr, std::span(reinterpret_cast<const std::uint8_t*>(&value), 4));
}

void SharedMemory::clear() { std::fill(data_.begin(), data_.end(), std::uint8_t{0}); }

}  // namespace tc::mem
