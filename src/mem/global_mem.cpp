#include "mem/global_mem.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace tc::mem {

GlobalMemory::GlobalMemory(std::uint64_t capacity) : capacity_(capacity) {
  TC_CHECK(capacity_ <= (1ull << 32), "global memory window is 32-bit addressed");
}

std::uint32_t GlobalMemory::alloc(std::uint64_t bytes) {
  TC_CHECK(bytes > 0, "zero-byte device allocation");
  const std::uint64_t aligned = (next_ + 255) & ~std::uint64_t{255};
  TC_CHECK(aligned + bytes <= capacity_,
           "simulated device out of memory: need " + std::to_string(bytes) + " bytes, " +
               std::to_string(capacity_ - aligned) + " free in the 4 GiB window");
  next_ = aligned + bytes;
  return static_cast<std::uint32_t>(aligned);
}

void GlobalMemory::reset() {
  std::unique_lock lock(mutex_);
  next_ = kBase;
  pages_.clear();
}

// Raw Page pointers stay valid across map rehashes (the map owns unique_ptrs)
// and pages are only destroyed in reset(), so returning them is safe.
GlobalMemory::Page* GlobalMemory::page_for_write(std::uint64_t page_index) {
  {
    std::shared_lock lock(mutex_);
    auto it = pages_.find(page_index);
    if (it != pages_.end()) return it->second.get();
  }
  std::unique_lock lock(mutex_);
  auto& slot = pages_[page_index];
  if (!slot) slot = std::make_unique<Page>(kPageBytes, std::uint8_t{0});
  return slot.get();
}

const GlobalMemory::Page* GlobalMemory::page_for_read(std::uint64_t page_index) const {
  std::shared_lock lock(mutex_);
  auto it = pages_.find(page_index);
  return it == pages_.end() ? nullptr : it->second.get();
}

void GlobalMemory::read(std::uint32_t addr, std::span<std::uint8_t> out) const {
  TC_CHECK(addr >= kBase, "read through simulated null pointer");
  std::uint64_t a = addr;
  std::size_t done = 0;
  while (done < out.size()) {
    const std::uint64_t page = a / kPageBytes;
    const std::uint64_t off = a % kPageBytes;
    const std::size_t chunk =
        std::min<std::size_t>(out.size() - done, kPageBytes - static_cast<std::size_t>(off));
    if (const Page* p = page_for_read(page)) {
      std::memcpy(out.data() + done, p->data() + off, chunk);
    } else {
      std::memset(out.data() + done, 0, chunk);
    }
    done += chunk;
    a += chunk;
  }
}

void GlobalMemory::write(std::uint32_t addr, std::span<const std::uint8_t> in) {
  TC_CHECK(addr >= kBase, "write through simulated null pointer");
  std::uint64_t a = addr;
  std::size_t done = 0;
  while (done < in.size()) {
    const std::uint64_t page = a / kPageBytes;
    const std::uint64_t off = a % kPageBytes;
    const std::size_t chunk =
        std::min<std::size_t>(in.size() - done, kPageBytes - static_cast<std::size_t>(off));
    std::memcpy(page_for_write(page)->data() + off, in.data() + done, chunk);
    done += chunk;
    a += chunk;
  }
}

}  // namespace tc::mem
