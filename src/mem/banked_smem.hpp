// Shared memory: functional storage plus the 32-bank conflict model.
//
// Turing shared memory has 32 banks of 4 bytes with a 128 B/cycle load path.
// A warp's LDS/STS is processed in phases (LDS.32: one phase of 32 lanes,
// LDS.64: two phases of 16, LDS.128: four phases of 8). Within a phase, lanes
// that touch distinct 4-byte words in the same bank serialize; lanes reading
// the *same* word broadcast for free. The paper's Fig. 5 shows that a naive
// A[256][32]/B[256][32] layout doubles HGEMM time through exactly these
// conflicts; the padded layout (8 halves every other row) removes them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sass/isa.hpp"

namespace tc::mem {

inline constexpr int kNumBanks = 32;
inline constexpr int kBankWidthBytes = 4;

/// Result of arbitrating one warp-wide shared memory access.
struct SmemAccessCost {
  /// Total bank beats consumed (>= phases; == phases when conflict-free).
  int beats = 0;
  /// Minimum beats for this width (the conflict-free count of phases).
  int phases = 0;

  /// Multiplier the MIO pipe applies to the base CPI of this access.
  [[nodiscard]] double conflict_factor() const {
    return phases == 0 ? 1.0 : static_cast<double>(beats) / phases;
  }
  [[nodiscard]] bool conflict_free() const { return beats == phases; }
};

/// Computes bank-conflict cost for a warp access. `addrs[i]` is lane i's byte
/// address; `active[i]` false lanes are ignored (predicated off).
/// `is_store` disables the read-broadcast optimization.
[[nodiscard]] SmemAccessCost smem_access_cost(std::span<const std::uint32_t> addrs,
                                              std::span<const bool> active,
                                              sass::MemWidth width, bool is_store);

/// Functional shared memory array for one CTA.
class SharedMemory {
 public:
  explicit SharedMemory(std::uint32_t bytes);

  [[nodiscard]] std::uint32_t size() const { return static_cast<std::uint32_t>(data_.size()); }

  /// Reads `n` bytes at `addr` into `out`; throws on out-of-range access.
  void read(std::uint32_t addr, std::span<std::uint8_t> out) const;
  void write(std::uint32_t addr, std::span<const std::uint8_t> in);

  std::uint32_t read_u32(std::uint32_t addr) const;
  void write_u32(std::uint32_t addr, std::uint32_t value);

  void clear();

 private:
  std::vector<std::uint8_t> data_;
};

}  // namespace tc::mem
