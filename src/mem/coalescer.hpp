// Global-access coalescer: maps a warp's LDG/STG lane addresses onto the set
// of distinct 32-byte sectors the memory system must move.
//
// Coalescing is what makes the paper's Eq. (4) work: a warp-wide LDG.128 of
// consecutive lanes touches 512 bytes = 16 sectors, and the MIO/L2 cost is
// proportional to sectors, not lanes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sass/isa.hpp"

namespace tc::mem {

/// Distinct 32B sector base addresses touched by one warp access, ascending.
[[nodiscard]] std::vector<std::uint64_t> coalesce_sectors(
    std::span<const std::uint32_t> lane_addrs, std::span<const bool> active,
    sass::MemWidth width);

}  // namespace tc::mem
