#include "mem/sector_cache.hpp"

#include <bit>

#include "common/error.hpp"

namespace tc::mem {

SectorCache::SectorCache(std::uint64_t size_bytes, int ways)
    : size_bytes_(size_bytes), ways_(ways) {
  TC_CHECK(ways_ > 0, "cache needs at least one way");
  const std::uint64_t lines = size_bytes_ / kLineBytes;
  TC_CHECK(lines % static_cast<std::uint64_t>(ways_) == 0, "cache size not divisible by ways");
  num_sets_ = static_cast<int>(lines / static_cast<std::uint64_t>(ways_));
  TC_CHECK(std::has_single_bit(static_cast<std::uint64_t>(num_sets_)),
           "number of sets must be a power of two");
  lines_.resize(lines);
}

HitLevel SectorCache::access(std::uint64_t addr) {
  const std::uint64_t line_addr = addr / kLineBytes;
  const auto sector = static_cast<int>((addr / kSectorBytes) % kSectorsPerLine);
  const auto set = static_cast<std::uint64_t>(line_addr & (static_cast<std::uint64_t>(num_sets_) - 1));
  const std::uint64_t tag = line_addr >> std::countr_zero(static_cast<std::uint64_t>(num_sets_));
  const std::uint8_t sector_bit = static_cast<std::uint8_t>(1u << sector);

  Line* base = &lines_[set * static_cast<std::uint64_t>(ways_)];
  ++tick_;

  Line* victim = base;
  for (int w = 0; w < ways_; ++w) {
    Line& line = base[w];
    if (line.tag == tag) {
      line.lru = tick_;
      if (line.sector_valid & sector_bit) {
        ++stats_.sector_hits;
        return HitLevel::kHit;
      }
      line.sector_valid |= sector_bit;
      ++stats_.sector_misses;
      return HitLevel::kMiss;
    }
    if (line.lru < victim->lru) victim = &base[w];
  }

  // Line miss: evict LRU way, fill only the touched sector.
  victim->tag = tag;
  victim->sector_valid = sector_bit;
  victim->lru = tick_;
  ++stats_.sector_misses;
  return HitLevel::kMiss;
}

bool SectorCache::contains(std::uint64_t addr) const {
  const std::uint64_t line_addr = addr / kLineBytes;
  const auto sector = static_cast<int>((addr / kSectorBytes) % kSectorsPerLine);
  const auto set = static_cast<std::uint64_t>(line_addr & (static_cast<std::uint64_t>(num_sets_) - 1));
  const std::uint64_t tag = line_addr >> std::countr_zero(static_cast<std::uint64_t>(num_sets_));
  const Line* base = &lines_[set * static_cast<std::uint64_t>(ways_)];
  for (int w = 0; w < ways_; ++w) {
    if (base[w].tag == tag && (base[w].sector_valid & (1u << sector))) return true;
  }
  return false;
}

void SectorCache::invalidate_all() {
  for (auto& line : lines_) line = Line{};
}

}  // namespace tc::mem
