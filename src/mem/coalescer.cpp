#include "mem/coalescer.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "mem/sector_cache.hpp"

namespace tc::mem {

std::vector<std::uint64_t> coalesce_sectors(std::span<const std::uint32_t> lane_addrs,
                                            std::span<const bool> active,
                                            sass::MemWidth width) {
  TC_CHECK(lane_addrs.size() == 32 && active.size() == 32, "warp access needs 32 lanes");
  const auto bytes = static_cast<std::uint32_t>(sass::width_bytes(width));

  std::vector<std::uint64_t> sectors;
  sectors.reserve(32);
  for (std::size_t lane = 0; lane < 32; ++lane) {
    if (!active[lane]) continue;
    const std::uint64_t lo = lane_addrs[lane] / kSectorBytes;
    const std::uint64_t hi = (lane_addrs[lane] + bytes - 1) / kSectorBytes;
    for (std::uint64_t s = lo; s <= hi; ++s) sectors.push_back(s * kSectorBytes);
  }
  std::sort(sectors.begin(), sectors.end());
  sectors.erase(std::unique(sectors.begin(), sectors.end()), sectors.end());
  return sectors;
}

}  // namespace tc::mem
