// Hardware-style profiler counters for the simulated SM (tc::prof).
//
// The counter taxonomy mirrors what Nsight Compute exposes on real Turing
// parts, restricted to what this simulator actually models: per-pipe
// issue/active cycles (tensor / FMA / ALU / MIO), memory transaction and byte
// counts per instruction class, shared-memory bank-conflict replays, sector
// traffic per serving level (L1 / L2 / DRAM), bandwidth-debt stalls, MSHR and
// MIO-queue occupancy high-water marks, and per-scheduler issue/idle cycles.
// The paper argues entirely in these units (CPI x instruction mix = pipe
// cycles); the profiler turns that argument from an analytic derivation into
// an observation of the run.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace tc::prof {

/// Pipe indices; values mirror sass::PipeClass so the timing engine can index
/// with static_cast (checked by a static_assert in profiler.cpp).
inline constexpr int kPipeTensor = 0;
inline constexpr int kPipeFma = 1;
inline constexpr int kPipeAlu = 2;
inline constexpr int kPipeMio = 3;
inline constexpr int kPipeControl = 4;
inline constexpr int kPipeSpecial = 5;
inline constexpr int kNumPipes = 6;

[[nodiscard]] const char* pipe_name(int pipe);

/// Why a resident warp could not issue in a given scheduler cycle — the
/// simulator-side equivalent of Nsight's warp-state sampling taxonomy.
enum class StallReason : std::uint8_t {
  kScoreboard = 0,    // waiting on a scoreboard barrier (memory dependency)
  kStallCount = 1,    // inside the previous instruction's stall-count window
  kPipeBusy = 2,      // target execution pipe still occupied
  kMioQueueFull = 3,  // MIO instruction queue at capacity
  kBarrier = 4,       // waiting at BAR.SYNC for the rest of the CTA
  kNotSelected = 5,   // eligible, but the scheduler picked another warp
  kNoInstruction = 6, // scheduler had no live warp to consider
};
inline constexpr int kNumStallReasons = 7;

[[nodiscard]] const char* stall_reason_name(StallReason r);

/// Per-warp-scheduler (per processing block) issue statistics.
struct SchedCounters {
  std::uint64_t issue_cycles = 0;  // cycles with an instruction issued
  std::uint64_t idle_cycles = 0;   // cycles without
  /// Idle cycles attributed to the dominant blocker among this partition's
  /// resident warps that cycle.
  std::array<std::uint64_t, kNumStallReasons> idle_by_reason{};
};

/// The full counter set of one timed run.
struct CounterSet {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;

  /// Instructions issued into each pipe class.
  std::array<std::uint64_t, kNumPipes> pipe_issue{};
  /// Pipe-occupancy cycles. Tensor/FMA/ALU are summed over the partitions
  /// (utilization denominator: cycles x partitions); MIO is SM-wide
  /// (denominator: cycles).
  std::array<std::uint64_t, kNumPipes> pipe_busy{};
  /// Cycles the L2-to-SM return port was streaming data (SM-wide).
  double l2_port_busy_cycles = 0.0;
  /// Completion-delay cycles charged by the DRAM/L2 token buckets.
  std::uint64_t bw_debt_stall_cycles = 0;

  // --- memory instruction mix -------------------------------------------
  std::uint64_t ldg_count = 0, stg_count = 0, lds_count = 0, sts_count = 0;
  /// Bytes requested by active lanes (the lane footprint, pre-coalescing).
  std::uint64_t ldg_bytes = 0, stg_bytes = 0, lds_bytes = 0, sts_bytes = 0;

  /// Extra shared-memory bank beats beyond the conflict-free phase count
  /// (Nsight: "shared memory bank conflict replays").
  std::uint64_t smem_bank_replays = 0;
  std::uint64_t smem_phases = 0;

  /// 32-byte sectors served by each level of the global-memory hierarchy.
  std::uint64_t l1_sectors = 0, l2_sectors = 0, dram_sectors = 0;
  double l1_bytes = 0.0, l2_bytes = 0.0, dram_bytes = 0.0;

  /// Occupancy high-water marks.
  int mshr_highwater = 0;
  int mio_queue_highwater = 0;

  /// One entry per processing block (warp scheduler).
  std::vector<SchedCounters> sched;

  /// Busy fraction of a pipe. `partitions` is the per-SM processing-block
  /// count; SM-wide pipes (MIO) ignore it.
  [[nodiscard]] double utilization(int pipe, int partitions) const {
    if (cycles == 0) return 0.0;
    const double denom = (pipe == kPipeMio) ? static_cast<double>(cycles)
                                            : static_cast<double>(cycles) * partitions;
    return static_cast<double>(pipe_busy[static_cast<std::size_t>(pipe)]) / denom;
  }

  [[nodiscard]] double l2_port_utilization() const {
    return cycles == 0 ? 0.0 : l2_port_busy_cycles / static_cast<double>(cycles);
  }
};

}  // namespace tc::prof
