#include "prof/profiler.hpp"

#include <algorithm>
#include <ostream>

#include "common/table.hpp"
#include "prof/trace.hpp"
#include "sass/isa.hpp"

namespace tc::prof {

// The pipe indices in counters.hpp are documented to mirror sass::PipeClass.
static_assert(kPipeTensor == static_cast<int>(sass::PipeClass::kTensor));
static_assert(kPipeFma == static_cast<int>(sass::PipeClass::kFma));
static_assert(kPipeAlu == static_cast<int>(sass::PipeClass::kAlu));
static_assert(kPipeMio == static_cast<int>(sass::PipeClass::kMio));
static_assert(kPipeControl == static_cast<int>(sass::PipeClass::kControl));
static_assert(kPipeSpecial == static_cast<int>(sass::PipeClass::kSpecial));

const char* pipe_name(int pipe) {
  switch (pipe) {
    case kPipeTensor: return "tensor";
    case kPipeFma: return "fma";
    case kPipeAlu: return "alu";
    case kPipeMio: return "mio";
    case kPipeControl: return "control";
    case kPipeSpecial: return "special";
    default: return "?";
  }
}

const char* stall_reason_name(StallReason r) {
  switch (r) {
    case StallReason::kScoreboard: return "scoreboard";
    case StallReason::kStallCount: return "stall_count";
    case StallReason::kPipeBusy: return "pipe_busy";
    case StallReason::kMioQueueFull: return "mio_queue_full";
    case StallReason::kBarrier: return "barrier";
    case StallReason::kNotSelected: return "not_selected";
    case StallReason::kNoInstruction: return "no_instruction";
  }
  return "?";
}

namespace {

std::string mem_op_name(bool is_global, bool is_store, int width_bits) {
  std::string name = is_global ? (is_store ? "STG" : "LDG") : (is_store ? "STS" : "LDS");
  return name + "." + std::to_string(width_bits);
}

}  // namespace

int Profiler::warp_track(int warp) const { return partitions_ * 3 + 1 + warp; }

void Profiler::begin_run(const sass::Program& prog, int partitions, int num_warps) {
  counters_ = CounterSet{};
  counters_.sched.assign(static_cast<std::size_t>(partitions), SchedCounters{});
  pc_counters_.assign(prog.code.size(), PcCounters{});
  warp_counters_.assign(static_cast<std::size_t>(num_warps), WarpCounters{});
  inst_text_.clear();
  inst_text_.reserve(prog.code.size());
  for (const auto& inst : prog.code) inst_text_.push_back(inst.to_string());
  program_name_ = prog.name;
  partitions_ = partitions;

  if (trace_ != nullptr) {
    for (int p = 0; p < partitions; ++p) {
      trace_->track(p * 3 + 0, "p" + std::to_string(p) + ".tensor");
      trace_->track(p * 3 + 1, "p" + std::to_string(p) + ".fma");
      trace_->track(p * 3 + 2, "p" + std::to_string(p) + ".alu");
    }
    trace_->track(partitions * 3, "mio");
    for (int w = 0; w < num_warps; ++w) {
      trace_->track(warp_track(w), "warp " + std::to_string(w));
    }
  }
}

void Profiler::end_run(std::uint64_t cycles) { counters_.cycles = cycles; }

void Profiler::on_issue(int partition, int warp, int pc, const sass::Instruction& inst,
                        std::uint64_t now, int occupancy, int stall) {
  ++counters_.instructions;
  const int pipe = static_cast<int>(sass::pipe_class(inst.op));
  ++counters_.pipe_issue[static_cast<std::size_t>(pipe)];
  if (pipe == kPipeTensor || pipe == kPipeFma || pipe == kPipeAlu || pipe == kPipeSpecial) {
    // Special-register reads share the ALU datapath; fold them in there so
    // pipe_busy[kPipeAlu] matches what the engine's alu_free tracking does.
    const int busy_pipe = pipe == kPipeSpecial ? kPipeAlu : pipe;
    counters_.pipe_busy[static_cast<std::size_t>(busy_pipe)] +=
        static_cast<std::uint64_t>(occupancy);
  }
  ++pc_counters_[static_cast<std::size_t>(pc)].issued;
  ++warp_counters_[static_cast<std::size_t>(warp)].issued;

  if (trace_ != nullptr) {
    const std::string name = sass::opcode_name(inst.op);
    if (pipe == kPipeTensor || pipe == kPipeFma || pipe == kPipeAlu) {
      trace_->event(partition * 3 + (pipe - kPipeTensor), name, now,
                    static_cast<std::uint64_t>(occupancy));
    }
    trace_->event(warp_track(warp), name, now, static_cast<std::uint64_t>(std::max(stall, 1)));
  }
}

void Profiler::on_warp_stall(int warp, int pc, StallReason reason) {
  ++pc_counters_[static_cast<std::size_t>(pc)].stall_cycles[static_cast<int>(reason)];
  ++warp_counters_[static_cast<std::size_t>(warp)].stall_cycles[static_cast<int>(reason)];
}

void Profiler::on_sched_cycle(int partition, bool issued, StallReason dominant) {
  auto& s = counters_.sched[static_cast<std::size_t>(partition)];
  if (issued) {
    ++s.issue_cycles;
  } else {
    ++s.idle_cycles;
    ++s.idle_by_reason[static_cast<int>(dominant)];
  }
}

void Profiler::on_mem_issue(bool is_global, bool is_store, int active_lanes, int width_bytes) {
  const auto bytes = static_cast<std::uint64_t>(active_lanes) * width_bytes;
  if (is_global) {
    if (is_store) {
      ++counters_.stg_count;
      counters_.stg_bytes += bytes;
    } else {
      ++counters_.ldg_count;
      counters_.ldg_bytes += bytes;
    }
  } else {
    if (is_store) {
      ++counters_.sts_count;
      counters_.sts_bytes += bytes;
    } else {
      ++counters_.lds_count;
      counters_.lds_bytes += bytes;
    }
  }
}

void Profiler::on_mio_service(bool is_global, bool is_store, int width_bits, std::uint64_t now,
                              std::uint64_t busy_cycles, double port_busy_cycles,
                              std::uint64_t bw_delay_cycles) {
  counters_.pipe_busy[kPipeMio] += busy_cycles;
  counters_.l2_port_busy_cycles += port_busy_cycles;
  counters_.bw_debt_stall_cycles += bw_delay_cycles;
  if (trace_ != nullptr) {
    trace_->event(partitions_ * 3, mem_op_name(is_global, is_store, width_bits), now,
                  std::max<std::uint64_t>(busy_cycles, 1));
  }
}

void Profiler::on_smem_classified(int beats, int phases) {
  counters_.smem_bank_replays += static_cast<std::uint64_t>(beats - phases);
  counters_.smem_phases += static_cast<std::uint64_t>(phases);
}

void Profiler::on_global_classified(double l1_bytes, double l2_bytes, double dram_bytes) {
  counters_.l1_bytes += l1_bytes;
  counters_.l2_bytes += l2_bytes;
  counters_.dram_bytes += dram_bytes;
  counters_.l1_sectors += static_cast<std::uint64_t>(l1_bytes / 32.0 + 0.5);
  counters_.l2_sectors += static_cast<std::uint64_t>(l2_bytes / 32.0 + 0.5);
  counters_.dram_sectors += static_cast<std::uint64_t>(dram_bytes / 32.0 + 0.5);
}

void Profiler::on_mshr_occupancy(int outstanding) {
  counters_.mshr_highwater = std::max(counters_.mshr_highwater, outstanding);
}

void Profiler::on_mio_queue_depth(int depth) {
  counters_.mio_queue_highwater = std::max(counters_.mio_queue_highwater, depth);
}

std::vector<HotPc> Profiler::hot_pcs(int n) const {
  std::vector<HotPc> all;
  all.reserve(pc_counters_.size());
  for (std::size_t pc = 0; pc < pc_counters_.size(); ++pc) {
    const auto& c = pc_counters_[pc];
    std::uint64_t total = 0;
    StallReason dominant = StallReason::kNoInstruction;
    std::uint64_t dominant_cycles = 0;
    for (int r = 0; r < kNumStallReasons; ++r) {
      total += c.stall_cycles[r];
      if (c.stall_cycles[r] > dominant_cycles) {
        dominant_cycles = c.stall_cycles[r];
        dominant = static_cast<StallReason>(r);
      }
    }
    if (total == 0 && c.issued == 0) continue;
    all.push_back({static_cast<int>(pc), inst_text_[pc], c.issued, total, dominant,
                   dominant_cycles});
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const HotPc& a, const HotPc& b) { return a.stall_cycles > b.stall_cycles; });
  if (static_cast<int>(all.size()) > n) all.resize(static_cast<std::size_t>(n));
  return all;
}

void Profiler::print_report(std::ostream& os, int top_n) const {
  const auto& c = counters_;
  const auto pct = [](double v) { return fmt_fixed(v * 100.0, 1) + "%"; };

  os << "== profile: " << program_name_ << " ==\n";
  os << "cycles " << c.cycles << ", instructions " << c.instructions << ", IPC "
     << fmt_fixed(c.cycles ? static_cast<double>(c.instructions) / c.cycles : 0.0, 2) << "\n\n";

  {
    TablePrinter t({"pipe", "issued", "busy_cycles", "utilization"});
    for (const int pipe : {kPipeTensor, kPipeFma, kPipeAlu, kPipeMio}) {
      t.add_row({pipe_name(pipe), std::to_string(c.pipe_issue[pipe]),
                 std::to_string(c.pipe_busy[pipe]), pct(c.utilization(pipe, partitions_))});
    }
    t.add_row({"l2_port", "-", fmt_fixed(c.l2_port_busy_cycles, 0),
               pct(c.l2_port_utilization())});
    t.print(os);
    os << "bw-debt stall cycles " << c.bw_debt_stall_cycles << ", MSHR high-water "
       << c.mshr_highwater << ", MIO queue high-water " << c.mio_queue_highwater << "\n\n";
  }

  {
    TablePrinter t({"mem_op", "count", "lane_bytes"});
    t.add_row({"LDG", std::to_string(c.ldg_count), std::to_string(c.ldg_bytes)});
    t.add_row({"STG", std::to_string(c.stg_count), std::to_string(c.stg_bytes)});
    t.add_row({"LDS", std::to_string(c.lds_count), std::to_string(c.lds_bytes)});
    t.add_row({"STS", std::to_string(c.sts_count), std::to_string(c.sts_bytes)});
    t.print(os);
    os << "smem bank replays " << c.smem_bank_replays << " (conflict factor "
       << fmt_fixed(c.smem_phases ? 1.0 + static_cast<double>(c.smem_bank_replays) /
                                              static_cast<double>(c.smem_phases)
                                  : 1.0,
                    2)
       << "); sectors L1 " << c.l1_sectors << " / L2 " << c.l2_sectors << " / DRAM "
       << c.dram_sectors << "\n\n";
  }

  {
    TablePrinter t({"scheduler", "issue_cycles", "idle_cycles", "top_idle_reason"});
    for (std::size_t p = 0; p < c.sched.size(); ++p) {
      const auto& s = c.sched[p];
      int top = 0;
      for (int r = 1; r < kNumStallReasons; ++r) {
        if (s.idle_by_reason[r] > s.idle_by_reason[top]) top = r;
      }
      t.add_row({"p" + std::to_string(p), std::to_string(s.issue_cycles),
                 std::to_string(s.idle_cycles),
                 s.idle_cycles == 0
                     ? "-"
                     : std::string(stall_reason_name(static_cast<StallReason>(top))) + " (" +
                           pct(static_cast<double>(s.idle_by_reason[top]) /
                               static_cast<double>(s.idle_cycles)) +
                           ")"});
    }
    t.print(os);
    os << "\n";
  }

  {
    os << "top " << top_n << " hot instructions by blocked warp-cycles:\n";
    TablePrinter t({"pc", "instruction", "issued", "stall_cycles", "top_reason"});
    for (const auto& h : hot_pcs(top_n)) {
      t.add_row({std::to_string(h.pc), h.text, std::to_string(h.issued),
                 std::to_string(h.stall_cycles),
                 h.stall_cycles == 0
                     ? "-"
                     : std::string(stall_reason_name(h.dominant)) + " (" +
                           pct(static_cast<double>(h.dominant_cycles) /
                               static_cast<double>(h.stall_cycles)) +
                           ")"});
    }
    t.print(os);
  }
}

}  // namespace tc::prof
