// The profiler object and the zero-overhead-when-off hook the timing engine
// calls into.
//
// Design: tc::sim::TimedSm carries a `ProfileHook` — a nullable pointer
// wrapper whose inline methods reduce to one predictable branch when no
// profiler is attached, so untraced runs keep their performance. When a
// Profiler is attached it accumulates the CounterSet (counters.hpp), per-warp
// and per-PC stall attribution (the Nsight-style warp-state sampling
// equivalent), and optionally streams timeline events into a TraceWriter.
//
// A Profiler instance covers ONE timed run: begin_run() resets all state and
// snapshots the program's disassembly (so reports never dangle on the
// Program), end_run() seals the cycle count. Differential measurements
// (cycles per main-loop iteration) use two Profilers and subtract counters.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "prof/counters.hpp"
#include "sass/program.hpp"

namespace tc::prof {

class TraceWriter;

/// One hot program counter in the stall report.
struct HotPc {
  int pc = 0;
  std::string text;             // disassembled instruction
  std::uint64_t issued = 0;     // times the instruction issued
  std::uint64_t stall_cycles = 0;  // warp-cycles spent blocked at this pc
  StallReason dominant = StallReason::kNoInstruction;
  std::uint64_t dominant_cycles = 0;
};

class Profiler {
 public:
  Profiler() = default;

  /// Attaches a timeline sink; must outlive the profiled run. Null detaches.
  void attach_trace(TraceWriter* trace) { trace_ = trace; }
  [[nodiscard]] TraceWriter* trace() const { return trace_; }

  // --- hooks called by the timing engine ---------------------------------
  void begin_run(const sass::Program& prog, int partitions, int num_warps);
  void end_run(std::uint64_t cycles);

  void on_issue(int partition, int warp, int pc, const sass::Instruction& inst,
                std::uint64_t now, int occupancy, int stall);
  /// One warp-cycle spent blocked at `pc` for `reason`.
  void on_warp_stall(int warp, int pc, StallReason reason);
  /// One scheduler cycle of partition `p`; `dominant` attributes idle cycles.
  void on_sched_cycle(int partition, bool issued, StallReason dominant);

  /// A memory instruction issued into the MIO queue (footprint accounting).
  void on_mem_issue(bool is_global, bool is_store, int active_lanes, int width_bytes);
  /// The MIO unit started serving an operation.
  void on_mio_service(bool is_global, bool is_store, int width_bits, std::uint64_t now,
                      std::uint64_t busy_cycles, double port_busy_cycles,
                      std::uint64_t bw_delay_cycles);
  void on_smem_classified(int beats, int phases);
  void on_global_classified(double l1_bytes, double l2_bytes, double dram_bytes);
  void on_mshr_occupancy(int outstanding);
  void on_mio_queue_depth(int depth);

  // --- results ------------------------------------------------------------
  [[nodiscard]] const CounterSet& counters() const { return counters_; }
  [[nodiscard]] int partitions() const { return partitions_; }
  [[nodiscard]] const std::string& program_name() const { return program_name_; }

  /// The `n` PCs with the most blocked warp-cycles, most-blocked first.
  [[nodiscard]] std::vector<HotPc> hot_pcs(int n) const;

  /// Pipe-utilization, memory and scheduler tables plus the top-`top_n`
  /// stall table.
  void print_report(std::ostream& os, int top_n = 10) const;

 private:
  struct PcCounters {
    std::uint64_t issued = 0;
    std::array<std::uint64_t, kNumStallReasons> stall_cycles{};
  };
  struct WarpCounters {
    std::uint64_t issued = 0;
    std::array<std::uint64_t, kNumStallReasons> stall_cycles{};
  };

  [[nodiscard]] int warp_track(int warp) const;

  CounterSet counters_;
  std::vector<PcCounters> pc_counters_;
  std::vector<WarpCounters> warp_counters_;
  std::vector<std::string> inst_text_;
  std::string program_name_;
  int partitions_ = 0;
  TraceWriter* trace_ = nullptr;
};

/// Nullable profiler handle embedded in the timing engine. Every method is an
/// inlined null check, so an unattached hook costs one well-predicted branch
/// per call site and profiling-off runs are indistinguishable from the
/// pre-profiler simulator.
class ProfileHook {
 public:
  ProfileHook() = default;
  explicit ProfileHook(Profiler* p) : p_(p) {}

  [[nodiscard]] bool on() const { return p_ != nullptr; }
  [[nodiscard]] Profiler* get() const { return p_; }

 private:
  Profiler* p_ = nullptr;
};

}  // namespace tc::prof
