// Chrome-trace ("chrome://tracing" / Perfetto) timeline emission.
//
// The profiler records one track per sub-partition execution pipe, one for
// the SM-wide MIO pipe and one per warp; each issued instruction (or MIO
// service) becomes a complete event ("ph":"X"). Timestamps are SM cycles
// written as microseconds, so 1 us in the viewer = 1 simulated cycle.
// Event names are interned; the event list is capped so tracing a long run
// degrades to a truncated (never multi-GB) file.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace tc::prof {

class TraceWriter {
 public:
  explicit TraceWriter(std::size_t max_events = 2'000'000);

  /// Names a track (Chrome metadata event). Tracks sort by tid.
  void track(int tid, std::string name);

  /// Records one complete event of `dur` cycles starting at `ts` cycles.
  void event(int tid, std::string_view name, std::uint64_t ts, std::uint64_t dur);

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }

  /// Writes the Chrome trace JSON object ({"traceEvents": [...]}).
  void write(std::ostream& os) const;
  void write_file(const std::string& path) const;

 private:
  struct Event {
    std::uint64_t ts = 0;
    std::uint32_t dur = 0;
    std::int32_t tid = 0;
    std::uint32_t name_id = 0;
  };

  std::uint32_t intern(std::string_view name);

  std::size_t max_events_;
  std::size_t dropped_ = 0;
  std::vector<Event> events_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t> name_ids_;
  std::vector<std::pair<int, std::string>> tracks_;
};

}  // namespace tc::prof
