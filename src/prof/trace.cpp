#include "prof/trace.hpp"

#include <fstream>
#include <ostream>

#include "common/error.hpp"

namespace tc::prof {

TraceWriter::TraceWriter(std::size_t max_events) : max_events_(max_events) {}

void TraceWriter::track(int tid, std::string name) {
  tracks_.emplace_back(tid, std::move(name));
}

std::uint32_t TraceWriter::intern(std::string_view name) {
  if (auto it = name_ids_.find(std::string(name)); it != name_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  return id;
}

void TraceWriter::event(int tid, std::string_view name, std::uint64_t ts, std::uint64_t dur) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back({ts, static_cast<std::uint32_t>(dur), tid, intern(name)});
}

namespace {

void write_escaped(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      default: os << c; break;
    }
  }
}

}  // namespace

void TraceWriter::write(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [tid, name] : tracks_) {
    if (!first) os << ",";
    first = false;
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    write_escaped(os, name);
    os << "\"}}";
    os << ",{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
       << ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" << tid << "}}";
  }
  for (const auto& ev : events_) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"ph\":\"X\",\"pid\":0,\"tid\":" << ev.tid << ",\"ts\":" << ev.ts
       << ",\"dur\":" << ev.dur << ",\"name\":\"";
    write_escaped(os, names_[ev.name_id]);
    os << "\"}";
  }
  os << "\n]}\n";
}

void TraceWriter::write_file(const std::string& path) const {
  std::ofstream os(path);
  TC_CHECK(os.good(), "cannot open trace output file " + path);
  write(os);
}

}  // namespace tc::prof
