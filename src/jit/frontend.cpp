// JIT frontend: basic-block partitioning + SASS -> IR translation.
//
// Leaders are pc 0, every BRA target, and the instruction after each
// BRA/EXIT/BAR (a predicated-off EXIT falls through; a warp resumes after a
// BAR). Blocks are maximal leader-to-terminator runs, so every pc the
// executor can land on — entry, branch target, barrier resume — is a block
// start, which is what lets run_cta() dispatch whole blocks.
#include "common/error.hpp"
#include "jit/ir.hpp"

namespace tc::jit {

namespace {

using sass::Opcode;

[[nodiscard]] Ref reg_ref(sass::Reg r) {
  // RZ reads as zero in the interpreter; lower it to a splat constant.
  return r.is_rz() ? Ref::of_const(0) : Ref::of_reg(r.idx);
}

/// srcb for IADD3/IMAD/ISETP/MOV/shifts: an immediate when has_imm is set.
[[nodiscard]] Ref b_ref(const sass::Instruction& in) {
  return in.has_imm ? Ref::of_const(static_cast<std::uint32_t>(in.imm)) : reg_ref(in.srcb);
}

[[nodiscard]] IrInst translate(const sass::Instruction& in, std::int32_t pc,
                               std::int32_t block_first_pc) {
  IrInst ir;
  ir.sass_op = in.op;
  ir.guard = in.guard;
  ir.guard_negated = in.guard_negated;
  ir.dst = in.dst.idx;
  ir.dst_count = 1;
  ir.pc = pc;
  switch (in.op) {
    case Opcode::kMov:
      ir.op = IrOp::kMov;
      ir.a = in.has_imm ? Ref::of_const(static_cast<std::uint32_t>(in.imm)) : reg_ref(in.srca);
      break;
    case Opcode::kMovParam:
      ir.op = IrOp::kParam;
      ir.param_index = in.param_index;
      break;
    case Opcode::kS2r:
      ir.op = IrOp::kSpecial;
      ir.sreg = in.sreg;
      break;
    case Opcode::kCs2rClock:
      ir.op = IrOp::kClock;
      ir.imm = pc - block_first_pc;  // executed-at = block entry count + offset
      break;
    case Opcode::kIadd3:
    case Opcode::kImad:
      ir.op = in.op == Opcode::kIadd3 ? IrOp::kIadd3 : IrOp::kImad;
      ir.a = reg_ref(in.srca);
      ir.b = b_ref(in);
      ir.c = reg_ref(in.srcc);
      break;
    case Opcode::kLop3And:
    case Opcode::kLop3Or:
    case Opcode::kLop3Xor:
      ir.op = in.op == Opcode::kLop3And ? IrOp::kAnd
              : in.op == Opcode::kLop3Or ? IrOp::kOr
                                         : IrOp::kXor;
      ir.a = reg_ref(in.srca);
      ir.b = b_ref(in);
      break;
    case Opcode::kShfL:
    case Opcode::kShfR:
      ir.op = in.op == Opcode::kShfL ? IrOp::kShl : IrOp::kShr;
      ir.a = reg_ref(in.srca);
      ir.b = b_ref(in);
      break;
    case Opcode::kIsetp:
      ir.op = IrOp::kIsetp;
      ir.dst = 255;
      ir.dst_count = 0;
      ir.pdst = in.pdst.idx;
      ir.cmp = in.cmp;
      ir.a = reg_ref(in.srca);
      ir.b = b_ref(in);
      break;
    case Opcode::kSel:
      ir.op = IrOp::kSel;
      ir.pdst = in.pdst.idx;
      ir.a = reg_ref(in.srca);
      ir.b = reg_ref(in.srcb);
      break;
    case Opcode::kFadd:
    case Opcode::kFmul:
    case Opcode::kFfma:
      ir.op = in.op == Opcode::kFadd ? IrOp::kFadd
              : in.op == Opcode::kFmul ? IrOp::kFmul
                                       : IrOp::kFfma;
      ir.a = reg_ref(in.srca);
      ir.b = reg_ref(in.srcb);
      ir.c = reg_ref(in.srcc);
      break;
    case Opcode::kHadd2:
    case Opcode::kHmul2:
    case Opcode::kHfma2:
    case Opcode::kHmax2:
      ir.op = in.op == Opcode::kHadd2   ? IrOp::kHadd2
              : in.op == Opcode::kHmul2 ? IrOp::kHmul2
              : in.op == Opcode::kHfma2 ? IrOp::kHfma2
                                        : IrOp::kHmax2;
      ir.a = reg_ref(in.srca);
      ir.b = reg_ref(in.srcb);
      ir.c = reg_ref(in.srcc);
      break;
    case Opcode::kHgelu2:
      ir.op = IrOp::kHgelu2;
      ir.a = reg_ref(in.srca);
      break;
    case Opcode::kF2fF32ToF16:
      ir.op = IrOp::kF2fNarrow;
      ir.a = reg_ref(in.srca);
      break;
    case Opcode::kF2fF16ToF32:
      ir.op = IrOp::kF2fWiden;
      ir.a = reg_ref(in.srca);
      break;
    case Opcode::kLdg:
    case Opcode::kLds:
      ir.op = IrOp::kLoad;
      ir.a = reg_ref(in.srca);
      ir.imm = in.imm;
      ir.width = in.width;
      ir.dst_count = static_cast<std::uint8_t>(sass::width_regs(in.width));
      break;
    case Opcode::kStg:
    case Opcode::kSts:
      ir.op = IrOp::kStore;
      ir.a = reg_ref(in.srca);
      ir.imm = in.imm;
      ir.width = in.width;
      ir.dst = 255;
      ir.dst_count = 0;
      ir.data = in.srcb.idx;
      break;
    case Opcode::kHmma1688F16:
    case Opcode::kHmma1688F32:
    case Opcode::kHmma884F16:
    case Opcode::kImma8816S8: {
      ir.op = IrOp::kMma;
      const auto counts = sass::mma_reg_counts(in.op);
      ir.dst_count = static_cast<std::uint8_t>(counts.d);
      ir.ma = in.srca.idx;
      ir.mb = in.srcb.idx;
      ir.mc = in.srcc.idx;
      break;
    }
    case Opcode::kNop:
    case Opcode::kBar:
    case Opcode::kBra:
    case Opcode::kExit:
      TC_CHECK(false, "jit: control opcode reached body translation");
      break;
  }
  return ir;
}

}  // namespace

std::vector<IrBlock> build_blocks(const sass::Program& prog) {
  const auto& code = prog.code;
  const auto n = static_cast<std::int32_t>(code.size());
  std::vector<bool> leader(static_cast<std::size_t>(n), false);
  if (n > 0) leader[0] = true;
  for (std::int32_t pc = 0; pc < n; ++pc) {
    const auto& in = code[static_cast<std::size_t>(pc)];
    if (in.op == Opcode::kBra) {
      if (in.target >= 0 && in.target < n) leader[static_cast<std::size_t>(in.target)] = true;
    }
    if ((in.op == Opcode::kBra || in.op == Opcode::kExit || in.op == Opcode::kBar) &&
        pc + 1 < n) {
      leader[static_cast<std::size_t>(pc + 1)] = true;
    }
  }

  std::vector<IrBlock> blocks;
  std::int32_t pc = 0;
  while (pc < n) {
    IrBlock b;
    b.first_pc = pc;
    std::int32_t end = pc;
    bool terminated = false;
    while (end < n) {
      const Opcode op = code[static_cast<std::size_t>(end)].op;
      ++end;
      if (op == Opcode::kBra || op == Opcode::kExit || op == Opcode::kBar) {
        terminated = true;
        break;
      }
      if (end < n && leader[static_cast<std::size_t>(end)]) break;
    }
    b.past_pc = end;
    b.next_pc = end;
    b.static_count = static_cast<std::uint32_t>(end - pc);
    const std::int32_t body_end = terminated ? end - 1 : end;
    for (std::int32_t i = pc; i < body_end; ++i) {
      const auto& in = code[static_cast<std::size_t>(i)];
      if (sass::is_mma(in.op)) ++b.static_mma;
      if (in.op == Opcode::kNop) continue;  // counted, no work
      b.insts.push_back(translate(in, i, pc));
    }
    if (terminated) {
      const auto& t = code[static_cast<std::size_t>(end - 1)];
      b.term_guard = t.guard;
      b.term_negated = t.guard_negated;
      switch (t.op) {
        case Opcode::kBra:
          b.term = Term::kBra;
          b.target = t.target;
          break;
        case Opcode::kExit:
          b.term = Term::kExit;
          break;
        case Opcode::kBar:
          // The interpreter barriers unconditionally, guard ignored.
          b.term = Term::kBar;
          break;
        default:
          break;
      }
    }
    blocks.push_back(std::move(b));
    pc = end;
  }
  return blocks;
}

}  // namespace tc::jit
