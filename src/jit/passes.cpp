// JIT pass pipeline: forwarding (load-store elimination over the register
// file), constant folding, and dead-code/dead-store elimination — all block-
// local, all remove-or-rewrite-only (never reorder), each independently
// toggleable so tests can translation-validate one pass at a time.
//
// Forwarding tracks what each register cell holds while walking a block in
// order: an unconditional single-register def installs itself (or its splat
// constant), any other write to the cell — guarded defs, load/MMA ranges —
// kills it. A kReg operand whose cell is known becomes kConst/kDef; since
// nothing between the def and the use writes the cell, the backend binding
// the def's dst row reads exactly the bytes the interpreter would.
//
// Folding rewrites integer/logic/shift ops whose (forwarded) operands are
// all constants into constant moves, using the interpreter's uint32
// expressions verbatim. Forward+fold iterate to propagate through chains.
//
// DCE walks backward with per-cell liveness. Every register and predicate
// is live at block end (StateProbe observes final state; successor blocks
// read freely), so only values unconditionally overwritten later in the
// SAME block with no intervening read can die. Memory ops, MMA, and
// out-of-range param reads are never removed: their checks (alignment,
// bounds) must still fire exactly where the interpreter fires them.
#include <array>
#include <cstdint>
#include <vector>

#include "jit/ir.hpp"

namespace tc::jit {

namespace {

using sass::Opcode;

[[nodiscard]] bool unconditional(const IrInst& x) { return x.guard.is_pt() && !x.guard_negated; }

// ---------------------------------------------------------------- forwarding

struct Cell {
  enum class K : std::uint8_t { kUnknown, kConst, kDef };
  K k = K::kUnknown;
  std::uint32_t cval = 0;
  std::int32_t def = -1;
};

/// Which Refs an op reads from the register file / prior defs. Store data
/// and MMA sources stay raw register ranges (never forwarded).
template <typename Fn>
void for_each_src(IrInst& x, Fn&& fn) {
  switch (x.op) {
    case IrOp::kMov:
    case IrOp::kF2fNarrow:
    case IrOp::kF2fWiden:
    case IrOp::kHgelu2:
    case IrOp::kLoad:
    case IrOp::kStore:
      fn(x.a);
      break;
    case IrOp::kAnd:
    case IrOp::kOr:
    case IrOp::kXor:
    case IrOp::kShl:
    case IrOp::kShr:
    case IrOp::kIsetp:
    case IrOp::kSel:
      fn(x.a);
      fn(x.b);
      break;
    case IrOp::kIadd3:
    case IrOp::kImad:
    case IrOp::kFadd:
    case IrOp::kFmul:
    case IrOp::kFfma:
    case IrOp::kHadd2:
    case IrOp::kHmul2:
    case IrOp::kHfma2:
    case IrOp::kHmax2:
      fn(x.a);
      fn(x.b);
      fn(x.c);
      break;
    case IrOp::kParam:
    case IrOp::kSpecial:
    case IrOp::kClock:
    case IrOp::kMma:
      break;
  }
}

/// True when the op writes exactly one register row (a forwardable def).
[[nodiscard]] bool single_def(const IrInst& x) {
  return x.op != IrOp::kStore && x.op != IrOp::kIsetp && x.op != IrOp::kLoad &&
         x.op != IrOp::kMma && x.dst != 255;
}

void kill_range(std::array<Cell, 255>& cells, std::uint8_t base, int count) {
  for (int r = 0; r < count; ++r) {
    const auto idx = static_cast<std::uint8_t>(base + r);  // uint8 wrap like exec_step
    if (idx != 255) cells[idx] = Cell{};
  }
}

bool forward_block(IrBlock& b, PassStats& stats) {
  std::array<Cell, 255> cells{};
  bool changed = false;
  for (std::size_t i = 0; i < b.insts.size(); ++i) {
    IrInst& x = b.insts[i];
    if (x.removed) continue;
    for_each_src(x, [&](Ref& r) {
      if (r.kind != Ref::Kind::kReg) return;
      const Cell& c = cells[r.reg];
      if (c.k == Cell::K::kConst) {
        r = Ref::of_const(c.cval);
      } else if (c.k == Cell::K::kDef) {
        r = Ref::of_def(c.def);
      } else {
        return;
      }
      ++stats.forwarded;
      changed = true;
    });
    // Update cell knowledge with this op's writes.
    if (single_def(x)) {
      if (unconditional(x)) {
        Cell c;
        if (x.op == IrOp::kMov && x.a.kind == Ref::Kind::kConst) {
          c.k = Cell::K::kConst;
          c.cval = x.a.cval;
        } else {
          c.k = Cell::K::kDef;
          c.def = static_cast<std::int32_t>(i);
        }
        cells[x.dst] = c;
      } else {
        cells[x.dst] = Cell{};
      }
    } else if (x.op == IrOp::kLoad || x.op == IrOp::kMma) {
      kill_range(cells, x.dst, x.dst_count);
    }
  }
  return changed;
}

// ------------------------------------------------------------------- folding

bool fold_block(IrBlock& b, PassStats& stats) {
  bool changed = false;
  for (IrInst& x : b.insts) {
    if (x.removed) continue;
    const bool abc = x.op == IrOp::kIadd3 || x.op == IrOp::kImad;
    const bool ab = x.op == IrOp::kAnd || x.op == IrOp::kOr || x.op == IrOp::kXor ||
                    x.op == IrOp::kShl || x.op == IrOp::kShr;
    if (!abc && !ab) continue;
    if (x.a.kind != Ref::Kind::kConst || x.b.kind != Ref::Kind::kConst) continue;
    if (abc && x.c.kind != Ref::Kind::kConst) continue;
    const std::uint32_t a = x.a.cval;
    const std::uint32_t bb = x.b.cval;
    const std::uint32_t c = abc ? x.c.cval : 0;
    std::uint32_t v = 0;
    switch (x.op) {  // the interpreter's expressions, verbatim
      case IrOp::kIadd3: v = a + bb + c; break;
      case IrOp::kImad: v = a * bb + c; break;
      case IrOp::kAnd: v = a & bb; break;
      case IrOp::kOr: v = a | bb; break;
      case IrOp::kXor: v = a ^ bb; break;
      case IrOp::kShl: v = a << (bb & 31u); break;
      case IrOp::kShr: v = a >> (bb & 31u); break;
      default: break;
    }
    x.op = IrOp::kMov;
    x.a = Ref::of_const(v);
    x.b = Ref::none();
    x.c = Ref::none();
    ++stats.folded;
    changed = true;
  }
  return changed;
}

// ----------------------------------------------------------------------- DCE

[[nodiscard]] bool removable(const IrInst& x, const sass::Program& prog) {
  switch (x.op) {
    case IrOp::kLoad:
    case IrOp::kStore:
    case IrOp::kMma:
      // Side effects and/or checks (alignment, bounds) must still fire.
      return false;
    case IrOp::kParam:
      // The interpreter range-checks at execution; only reads the run-level
      // precheck already proves in range may disappear.
      return x.param_index < prog.num_param_words;
    default:
      return true;
  }
}

bool dce_block(IrBlock& b, const sass::Program& prog, PassStats& stats) {
  // Use counts pin defs referenced by surviving kDef operands.
  std::vector<int> uses(b.insts.size(), 0);
  for (IrInst& x : b.insts) {
    if (x.removed) continue;
    for_each_src(x, [&](Ref& r) {
      if (r.kind == Ref::Kind::kDef) ++uses[static_cast<std::size_t>(r.def)];
    });
  }

  // Backward liveness. Everything is live at block end.
  std::array<bool, 255> live_gpr;
  live_gpr.fill(true);
  std::array<bool, 7> live_pred;
  live_pred.fill(true);

  auto mark_ref = [&](const Ref& r) {
    if (r.kind == Ref::Kind::kReg) {
      live_gpr[r.reg] = true;
    } else if (r.kind == Ref::Kind::kDef) {
      // A forwarded use still reads the producer's dst row at run time.
      live_gpr[b.insts[static_cast<std::size_t>(r.def)].dst] = true;
    }
  };
  auto mark_range = [&](std::uint8_t base, int count) {
    for (int r = 0; r < count; ++r) {
      const auto idx = static_cast<std::uint8_t>(base + r);
      if (idx != 255) live_gpr[idx] = true;
    }
  };

  bool changed = false;
  for (std::size_t ii = b.insts.size(); ii-- > 0;) {
    IrInst& x = b.insts[ii];
    if (x.removed) continue;

    // Removal decision against liveness *after* this op.
    if (removable(x, prog) && uses[ii] == 0) {
      const bool dead_gpr = x.op != IrOp::kIsetp && (x.dst == 255 || !live_gpr[x.dst]);
      const bool dead_pred = x.op == IrOp::kIsetp && (x.pdst >= 7 || !live_pred[x.pdst]);
      if (dead_gpr || dead_pred) {
        x.removed = true;
        ++stats.removed;
        changed = true;
        continue;
      }
    }

    // live_before = (live_after - unconditional defs) + uses.
    if (unconditional(x)) {
      if (x.op == IrOp::kIsetp) {
        if (x.pdst < 7) live_pred[x.pdst] = false;
      } else if (x.op == IrOp::kLoad || x.op == IrOp::kMma) {
        for (int r = 0; r < x.dst_count; ++r) {
          const auto idx = static_cast<std::uint8_t>(x.dst + r);
          if (idx != 255) live_gpr[idx] = false;
        }
      } else if (single_def(x)) {
        live_gpr[x.dst] = false;
      }
    }
    for_each_src(x, [&](Ref& r) { mark_ref(r); });
    if (x.op == IrOp::kStore) mark_range(x.data, sass::width_regs(x.width));
    if (x.op == IrOp::kMma) {
      const auto counts = sass::mma_reg_counts(x.sass_op);
      mark_range(x.ma, counts.a);
      mark_range(x.mb, counts.b);
      mark_range(x.mc, counts.c);
      mark_range(x.dst, counts.d);  // accumulate-in-place: C aliases D's cells
    }
    if (x.op == IrOp::kSel && x.pdst < 7) live_pred[x.pdst] = true;
    if (x.guard.idx < 7) live_pred[x.guard.idx] = true;
  }
  return changed;
}

}  // namespace

void run_passes(std::vector<IrBlock>& blocks, const sass::Program& prog, const JitOptions& opts,
                PassStats& stats) {
  for (IrBlock& b : blocks) {
    if (opts.forward || opts.fold) {
      // Iterate so folded constants feed further forwarding; each round only
      // rewrites operands, so this terminates (bounded by operand count).
      for (int round = 0; round < 8; ++round) {
        bool changed = false;
        if (opts.forward) changed |= forward_block(b, stats);
        if (opts.fold) changed |= fold_block(b, stats);
        if (!changed) break;
      }
    }
    if (opts.dce) {
      // Removing a consumer can free its producers; iterate to a fixpoint.
      while (dce_block(b, prog, stats)) {
      }
    }
  }
}

}  // namespace tc::jit
