// Basic-block IR for the SASS JIT (internal to tc::jit, visible to tests).
//
// The frontend (frontend.cpp) partitions a validated program into maximal
// basic blocks — leaders are pc 0, every branch target, and the instruction
// after each BRA/EXIT/BAR — and translates each block's body into a linear
// list of warp-level IrInsts. Each IrInst computes one value (or performs
// one memory/MMA side effect); source operands are SSA-ish `Ref`s that name
// an architectural register, a splat constant, or a defining instruction in
// the same block. Control never appears in the body: the block's terminator
// (fallthrough / BRA / EXIT / BAR) is stored on the block itself.
//
// Pass discipline (passes.cpp): passes only *rewrite operands* or *remove
// instructions*; they never reorder, so every surviving register read still
// happens at its original program position. That property — plus forwarding
// only across write-free ranges — is what makes direct register-row binding
// in the backend bitwise-equal to the interpreter.
#pragma once

#include <cstdint>
#include <vector>

#include "sass/instruction.hpp"
#include "sass/program.hpp"

namespace tc::jit {

/// Where a source operand's 32 lane values come from.
struct Ref {
  enum class Kind : std::uint8_t {
    kNone,   // operand unused by this op
    kReg,    // architectural register row, read at execution time
    kConst,  // splat constant (RZ reads lower to kConst 0)
    kDef,    // result of insts[def] in the same block (still stored in its
             // dst register row; forwarding guarantees no intervening write)
  };
  Kind kind = Kind::kNone;
  std::uint8_t reg = 0;     // kReg
  std::uint32_t cval = 0;   // kConst
  std::int32_t def = -1;    // kDef

  [[nodiscard]] static Ref none() { return {}; }
  [[nodiscard]] static Ref of_reg(std::uint8_t r) {
    Ref x;
    x.kind = Kind::kReg;
    x.reg = r;
    return x;
  }
  [[nodiscard]] static Ref of_const(std::uint32_t v) {
    Ref x;
    x.kind = Kind::kConst;
    x.cval = v;
    return x;
  }
  [[nodiscard]] static Ref of_def(std::int32_t i) {
    Ref x;
    x.kind = Kind::kDef;
    x.def = i;
    return x;
  }
};

/// IR operations. One SASS body instruction lowers to exactly one IrInst
/// (NOPs lower to none); MOV with an immediate becomes kMov with a const
/// operand, which is also what constant folding rewrites foldable ALU ops to.
enum class IrOp : std::uint8_t {
  kMov,     // d = a
  kParam,   // d = params[param_index] (bounds-checked like the interpreter)
  kSpecial, // d = special register (sreg)
  kClock,   // d = low 32 bits of warp instruction counter at this pc
  kIadd3,   // d = a + b + c
  kImad,    // d = a * b + c
  kAnd,
  kOr,
  kXor,
  kShl,     // d = a << (b & 31)
  kShr,     // d = a >> (b & 31)
  kSel,     // d = pdst-lane ? a : b
  kIsetp,   // pdst-lane = cmp(a, b), active lanes only
  kFadd,
  kFmul,
  kFfma,
  kHadd2,
  kHmul2,
  kHfma2,
  kHmax2,
  kHgelu2,
  kF2fNarrow,  // f32 -> f16 (low half of d)
  kF2fWiden,   // low f16 of a -> f32
  kLoad,       // LDG/LDS: regs [dst, dst+dst_count) <- mem[a + imm]
  kStore,      // STG/STS: mem[a + imm] <- regs [data, data+n)
  kMma,        // HMMA/IMMA via sim::exec_mma (ma/mb/mc/dst register bases)
};

struct IrInst {
  IrOp op = IrOp::kMov;
  sass::Opcode sass_op = sass::Opcode::kNop;  // memory kind / MMA shape
  sass::Pred guard = sass::PT;
  bool guard_negated = false;
  std::uint8_t dst = 255;      // dst GPR base; 255 = RZ (writes discarded)
  std::uint8_t dst_count = 0;  // 1 for ALU, width_regs for loads, d-regs for MMA
  std::uint8_t pdst = 7;       // ISETP destination / SEL source predicate
  std::uint8_t data = 255;     // store source-data base register
  std::uint8_t ma = 255, mb = 255, mc = 255;  // MMA source bases
  Ref a, b, c;
  std::int32_t imm = 0;        // memory byte offset / kClock pc offset in block
  sass::MemWidth width = sass::MemWidth::k32;
  sass::CmpOp cmp = sass::CmpOp::kLt;
  sass::SpecialReg sreg = sass::SpecialReg::kLaneId;
  std::uint16_t param_index = 0;
  std::int32_t pc = 0;         // source SASS pc (diagnostics)
  bool removed = false;        // set by DCE; skipped at emission
};

/// How control leaves a block.
enum class Term : std::uint8_t { kFall, kBra, kExit, kBar };

struct IrBlock {
  std::int32_t first_pc = 0;  // SASS range [first_pc, past_pc)
  std::int32_t past_pc = 0;
  std::vector<IrInst> insts;
  Term term = Term::kFall;
  sass::Pred term_guard = sass::PT;  // BRA/EXIT guard (BAR ignores its guard)
  bool term_negated = false;
  std::int32_t target = -1;   // BRA taken target
  std::int32_t next_pc = -1;  // fallthrough / branch-not-taken / barrier resume
  /// SASS instructions this block accounts for — terminator, NOPs and
  /// predicated-off bodies included — so `executed` and the budget check
  /// advance exactly like the interpreter's per-instruction accounting.
  std::uint32_t static_count = 0;
  std::uint32_t static_mma = 0;  // MMA count (stats parity with functional.cpp)
};

struct PassStats {
  std::uint64_t forwarded = 0;  // operand reads rewired to defs/constants (LSE)
  std::uint64_t folded = 0;     // ALU ops reduced to constant moves
  std::uint64_t removed = 0;    // dead instructions eliminated (DCE/DSE)
};

/// Pass toggles, all on by default. tests/test_jit.cpp drives each pass
/// alone and translation-validates the result against the interpreter.
struct JitOptions {
  bool forward = true;  // load-store elimination over the register file
  bool fold = true;     // constant folding (integer/logic/shift ops)
  bool dce = true;      // dead-code / dead-store elimination
};

/// Splits a program into translated basic blocks. The program must already
/// be sass::validate()-clean (compile() enforces this).
[[nodiscard]] std::vector<IrBlock> build_blocks(const sass::Program& prog);

/// Runs the enabled passes over every block, accumulating stats.
void run_passes(std::vector<IrBlock>& blocks, const sass::Program& prog, const JitOptions& opts,
                PassStats& stats);

}  // namespace tc::jit
