// compile(): validate -> blocks -> passes -> emit.
// run_cta(): the interpreter's warp/barrier loop (sim/functional.cpp) over
// compiled blocks, with identical stats, budget, and error behavior.
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "jit/backend.hpp"
#include "jit/jit.hpp"
#include "mem/banked_smem.hpp"
#include "sass/validator.hpp"
#include "sim/probe.hpp"

namespace tc::jit {

JitProgram compile(const sass::Program& prog, const JitOptions& opts) {
  sass::validate(prog);
  std::vector<IrBlock> blocks = build_blocks(prog);
  std::uint32_t ir_instructions = 0;
  for (const IrBlock& b : blocks) ir_instructions += static_cast<std::uint32_t>(b.insts.size());
  PassStats stats;
  run_passes(blocks, prog, opts, stats);
  return emit(prog, blocks, stats, ir_instructions);
}

namespace {

struct WarpRun {
  std::unique_ptr<sim::WarpRegs> regs = std::make_unique<sim::WarpRegs>();
  std::int32_t pc = 0;
  bool exited = false;
  bool at_barrier = false;
  std::uint64_t executed = 0;
};

}  // namespace

std::pair<std::uint64_t, std::uint64_t> run_cta(const JitProgram& jp, mem::GlobalMemory& gmem,
                                                const sim::Launch& launch, std::uint32_t cta_x,
                                                std::uint32_t cta_y, std::uint32_t cta_z,
                                                std::uint64_t max_warp_instructions,
                                                sim::StateProbe* probe) {
  const sass::Program& prog = *jp.program;
  const int num_warps = static_cast<int>(launch.warps_per_cta());
  mem::SharedMemory smem(prog.smem_bytes);

  std::vector<WarpRun> warps(static_cast<std::size_t>(num_warps));
  std::uint64_t instructions = 0;
  std::uint64_t hmma = 0;

  auto alive = [&] {
    int n = 0;
    for (const auto& w : warps) n += w.exited ? 0 : 1;
    return n;
  };
  auto block_at = [&](std::int32_t pc) -> const CompiledBlock& {
    TC_CHECK(pc >= 0 && static_cast<std::size_t>(pc) < jp.block_of_pc.size() &&
                 jp.block_of_pc[static_cast<std::size_t>(pc)] >= 0,
             "jit: control transfer to pc " + std::to_string(pc) +
                 " which is not a compiled block entry in kernel '" + prog.name + "'");
    return jp.blocks[static_cast<std::size_t>(jp.block_of_pc[static_cast<std::size_t>(pc)])];
  };

  while (alive() > 0) {
    int arrived = 0;
    for (int wi = 0; wi < num_warps; ++wi) {
      WarpRun& w = warps[static_cast<std::size_t>(wi)];
      if (w.exited || w.at_barrier) {
        arrived += w.at_barrier ? 1 : 0;
        continue;
      }
      RunCtx ctx;
      ctx.gpr = w.regs->rows();
      ctx.regs = w.regs.get();
      ctx.cpool = jp.cpool.data();
      ctx.smem = &smem;
      ctx.gmem = &gmem;
      ctx.launch = &launch;
      ctx.cta_x = cta_x;
      ctx.cta_y = cta_y;
      ctx.cta_z = cta_z;
      ctx.warp_in_cta = wi;

      while (true) {
        const CompiledBlock& b = block_at(w.pc);
        // Block-entry form of the interpreter's per-instruction budget
        // check: the interpreter would trip inside this block iff
        // executed + static_count exceeds the budget (worst instruction is
        // the block's last), and the failed run's partial effects are
        // unobservable, so the trigger sets are identical.
        TC_CHECK(w.executed + b.static_count <= max_warp_instructions,
                 "warp exceeded instruction budget (runaway loop?) in kernel '" + prog.name +
                     "'");
        ctx.clock_base = w.executed;
        exec_block(b, ctx);
        w.executed += b.static_count;
        hmma += b.static_mma;
        if (b.term == Term::kFall) {
          w.pc = b.next_pc;
          continue;
        }
        if (b.term == Term::kBra || b.term == Term::kExit) {
          const std::uint32_t m =
              w.regs->pred_mask(sass::Pred{b.term_guard}) ^ b.term_gxor;
          const bool any = m != 0;
          const bool all = m == ~0u;
          if (b.term == Term::kBra) {
            TC_CHECK(all || !any, "divergent BRA is not supported (warp-uniform branches only)");
            w.pc = any ? b.target : b.next_pc;
            continue;
          }
          TC_CHECK(all || !any, "divergent EXIT is not supported");
          if (!any) {  // predicated-off EXIT falls through
            w.pc = b.next_pc;
            continue;
          }
          w.exited = true;
          break;
        }
        // Term::kBar — the interpreter barriers regardless of the guard.
        w.pc = b.next_pc;
        w.at_barrier = true;
        break;
      }
      if (w.at_barrier) ++arrived;
    }

    if (arrived > 0) {
      TC_CHECK(arrived == alive(), "deadlock: some warps exited while others wait at BAR.SYNC");
      for (auto& w : warps) w.at_barrier = false;
    }
  }
  for (const auto& w : warps) instructions += w.executed;
  if (probe != nullptr) {
    for (int wi = 0; wi < num_warps; ++wi) {
      probe->capture(*warps[static_cast<std::size_t>(wi)].regs, cta_x, cta_y, cta_z, wi);
    }
  }
  return {instructions, hmma};
}

}  // namespace tc::jit
