// Threaded-code backend: operand binding + computed-goto dispatch.
//
// Emission resolves every source Ref to a row slot — an architectural
// register row, a def's dst row (safe: forwarding never crosses a write),
// or a deduplicated const-pool row — so handlers are straight 32-lane array
// loops with zero per-lane call overhead. That loop shape (contiguous rows,
// PT fast path) is where the 10x+ over the per-lane virtual-sink
// interpreter comes from; the compiler auto-vectorizes most handlers.
//
// Dispatch uses GNU computed goto when available (one indirect jump per op,
// no bounds check, per-site branch prediction) with a switch fallback; both
// share the same inline handler bodies, so there is exactly one definition
// of each op's semantics here — and that definition mirrors exec_step()'s
// active-lane behavior bit for bit.
#include "jit/backend.hpp"

#include <cstring>
#include <unordered_map>

#include "common/error.hpp"
#include "sim/exec_core.hpp"
#include "sim/lane_ops.hpp"
#include "sim/mma_exec.hpp"

namespace tc::jit {

namespace {

// ---------------------------------------------------------------- emission

class ConstPool {
 public:
  explicit ConstPool(std::vector<std::array<std::uint32_t, 32>>& rows) : rows_(rows) {}

  [[nodiscard]] std::uint16_t row(std::uint32_t v) {
    const auto it = index_.find(v);
    if (it != index_.end()) return it->second;
    TC_CHECK(rows_.size() < kConstBit, "jit: const pool overflow");
    const auto slot = static_cast<std::uint16_t>(kConstBit | rows_.size());
    std::array<std::uint32_t, 32> splat;
    splat.fill(v);
    rows_.push_back(splat);
    index_.emplace(v, slot);
    return slot;
  }

 private:
  std::vector<std::array<std::uint32_t, 32>>& rows_;
  std::unordered_map<std::uint32_t, std::uint16_t> index_;
};

[[nodiscard]] std::uint16_t bind(const IrBlock& b, const Ref& r, ConstPool& pool) {
  switch (r.kind) {
    case Ref::Kind::kReg:
      return r.reg;
    case Ref::Kind::kConst:
      return pool.row(r.cval);
    case Ref::Kind::kDef: {
      const IrInst& def = b.insts[static_cast<std::size_t>(r.def)];
      TC_CHECK(def.dst != 255 && !def.removed, "jit: forwarded def is not a live register def");
      return def.dst;
    }
    case Ref::Kind::kNone:
      return pool.row(0);
  }
  return pool.row(0);
}

[[nodiscard]] std::uint16_t handler_for(const IrInst& x) {
  switch (x.op) {
    case IrOp::kMov: return hMov;
    case IrOp::kParam: return hParam;
    case IrOp::kSpecial: return hSpecial;
    case IrOp::kClock: return hClock;
    case IrOp::kIadd3: return hIadd3;
    case IrOp::kImad: return hImad;
    case IrOp::kAnd: return hAnd;
    case IrOp::kOr: return hOr;
    case IrOp::kXor: return hXor;
    case IrOp::kShl: return hShl;
    case IrOp::kShr: return hShr;
    case IrOp::kSel: return hSel;
    case IrOp::kIsetp: return hIsetp;
    case IrOp::kFadd: return hFadd;
    case IrOp::kFmul: return hFmul;
    case IrOp::kFfma: return hFfma;
    case IrOp::kHadd2: return hHadd2;
    case IrOp::kHmul2: return hHmul2;
    case IrOp::kHfma2: return hHfma2;
    case IrOp::kHmax2: return hHmax2;
    case IrOp::kHgelu2: return hHgelu2;
    case IrOp::kF2fNarrow: return hF2fNarrow;
    case IrOp::kF2fWiden: return hF2fWiden;
    case IrOp::kLoad: return x.sass_op == sass::Opcode::kLdg ? hLdg : hLds;
    case IrOp::kStore: return x.sass_op == sass::Opcode::kStg ? hStg : hSts;
    case IrOp::kMma: return hMma;
  }
  return hMov;
}

}  // namespace

JitProgram emit(const sass::Program& prog, const std::vector<IrBlock>& blocks,
                const PassStats& pass_stats, std::uint32_t ir_instructions) {
  JitProgram jp;
  jp.program = &prog;
  jp.block_of_pc.assign(prog.code.size() + 1, -1);
  ConstPool pool(jp.cpool);

  for (const IrBlock& b : blocks) {
    CompiledBlock cb;
    cb.term = b.term;
    cb.term_guard = b.term_guard.idx;
    cb.term_gxor = b.term_negated ? ~0u : 0u;
    cb.target = b.target;
    cb.next_pc = b.next_pc;
    cb.static_count = b.static_count;
    cb.static_mma = b.static_mma;
    cb.ops.reserve(b.insts.size());
    for (const IrInst& x : b.insts) {
      if (x.removed) continue;
      TOp op;
      op.handler = handler_for(x);
      op.dst = x.op == IrOp::kIsetp ? x.pdst : x.dst;
      op.guard = x.guard.idx;
      op.gxor = x.guard_negated ? ~0u : 0u;
      op.imm = static_cast<std::uint32_t>(x.imm);
      switch (x.op) {
        case IrOp::kParam:
          op.imm = x.param_index;
          break;
        case IrOp::kSpecial:
          op.aux = static_cast<std::uint8_t>(x.sreg);
          break;
        case IrOp::kIsetp:
          op.aux = static_cast<std::uint8_t>(x.cmp);
          op.a = bind(b, x.a, pool);
          op.b = bind(b, x.b, pool);
          break;
        case IrOp::kSel:
          op.aux = x.pdst;
          op.a = bind(b, x.a, pool);
          op.b = bind(b, x.b, pool);
          break;
        case IrOp::kLoad:
          op.aux = static_cast<std::uint8_t>(sass::width_regs(x.width));
          op.a = bind(b, x.a, pool);
          break;
        case IrOp::kStore:
          op.aux = static_cast<std::uint8_t>(sass::width_regs(x.width));
          op.a = bind(b, x.a, pool);
          op.data = x.data;
          break;
        case IrOp::kMma:
          op.imm = static_cast<std::uint32_t>(x.sass_op);
          op.data = x.ma;
          op.b = x.mb;
          op.c = x.mc;
          break;
        default:
          op.a = bind(b, x.a, pool);
          op.b = bind(b, x.b, pool);
          op.c = bind(b, x.c, pool);
          break;
      }
      cb.ops.push_back(op);
    }
    jp.stats.emitted_ops += static_cast<std::uint32_t>(cb.ops.size());
    jp.block_of_pc[static_cast<std::size_t>(b.first_pc)] =
        static_cast<std::int32_t>(jp.blocks.size());
    jp.blocks.push_back(std::move(cb));
  }
  if (jp.cpool.empty()) (void)pool.row(0);  // keep cpool pointers valid
  jp.stats.blocks = static_cast<std::uint32_t>(jp.blocks.size());
  jp.stats.sass_instructions = static_cast<std::uint32_t>(prog.code.size());
  jp.stats.ir_instructions = ir_instructions;
  jp.stats.passes = pass_stats;
  return jp;
}

// ---------------------------------------------------------------- handlers

namespace {

[[nodiscard]] inline const std::uint32_t* srow(const RunCtx& c, std::uint16_t slot) {
  return ((slot & kConstBit) != 0 ? c.cpool[slot & (kConstBit - 1)] : c.gpr[slot]).data();
}
[[nodiscard]] inline std::uint32_t* drow(RunCtx& c, std::uint8_t r) {
  return (r == 255 ? c.dump : c.gpr[r]).data();
}
[[nodiscard]] inline std::uint32_t guard_mask(const RunCtx& c, const TOp& op) {
  return c.regs->pred_mask(sass::Pred{op.guard}) ^ op.gxor;
}

/// Applies `fn(lane) -> value` to dst under the guard mask; the all-active
/// path is a plain 32-iteration loop the compiler vectorizes.
template <typename Fn>
inline void lanewise(RunCtx& c, const TOp& op, Fn&& fn) {
  const std::uint32_t m = guard_mask(c, op);
  std::uint32_t* d = drow(c, op.dst);
  if (m == ~0u) {
    for (int l = 0; l < 32; ++l) d[l] = fn(l);
  } else if (m != 0) {
    for (int l = 0; l < 32; ++l) {
      if ((m >> l) & 1u) d[l] = fn(l);
    }
  }
}

inline void do_mov(RunCtx& c, const TOp& op) {
  const std::uint32_t* a = srow(c, op.a);
  lanewise(c, op, [&](int l) { return a[l]; });
}

inline void do_param(RunCtx& c, const TOp& op) {
  TC_CHECK(op.imm < c.launch->params.size(),
           "MOV.PARAM reads word " + std::to_string(op.imm) + " but only " +
               std::to_string(c.launch->params.size()) + " provided");
  const std::uint32_t v = c.launch->params[op.imm];
  lanewise(c, op, [&](int) { return v; });
}

inline void do_special(RunCtx& c, const TOp& op) {
  const auto sr = static_cast<sass::SpecialReg>(op.aux);
  lanewise(c, op, [&](int l) {
    return sim::special_reg_value(sr, l, c.warp_in_cta, c.cta_x, c.cta_y, c.cta_z,
                                  c.launch->grid_x, 0);
  });
}

inline void do_clock(RunCtx& c, const TOp& op) {
  const auto v = static_cast<std::uint32_t>((c.clock_base + op.imm) & 0xFFFFFFFFull);
  lanewise(c, op, [&](int) { return v; });
}

inline void do_iadd3(RunCtx& c, const TOp& op) {
  const std::uint32_t* a = srow(c, op.a);
  const std::uint32_t* b = srow(c, op.b);
  const std::uint32_t* cc = srow(c, op.c);
  lanewise(c, op, [&](int l) { return a[l] + b[l] + cc[l]; });
}

inline void do_imad(RunCtx& c, const TOp& op) {
  const std::uint32_t* a = srow(c, op.a);
  const std::uint32_t* b = srow(c, op.b);
  const std::uint32_t* cc = srow(c, op.c);
  lanewise(c, op, [&](int l) { return a[l] * b[l] + cc[l]; });
}

inline void do_and(RunCtx& c, const TOp& op) {
  const std::uint32_t* a = srow(c, op.a);
  const std::uint32_t* b = srow(c, op.b);
  lanewise(c, op, [&](int l) { return a[l] & b[l]; });
}

inline void do_or(RunCtx& c, const TOp& op) {
  const std::uint32_t* a = srow(c, op.a);
  const std::uint32_t* b = srow(c, op.b);
  lanewise(c, op, [&](int l) { return a[l] | b[l]; });
}

inline void do_xor(RunCtx& c, const TOp& op) {
  const std::uint32_t* a = srow(c, op.a);
  const std::uint32_t* b = srow(c, op.b);
  lanewise(c, op, [&](int l) { return a[l] ^ b[l]; });
}

inline void do_shl(RunCtx& c, const TOp& op) {
  const std::uint32_t* a = srow(c, op.a);
  const std::uint32_t* b = srow(c, op.b);
  lanewise(c, op, [&](int l) { return a[l] << (b[l] & 31u); });
}

inline void do_shr(RunCtx& c, const TOp& op) {
  const std::uint32_t* a = srow(c, op.a);
  const std::uint32_t* b = srow(c, op.b);
  lanewise(c, op, [&](int l) { return a[l] >> (b[l] & 31u); });
}

inline void do_sel(RunCtx& c, const TOp& op) {
  const std::uint32_t* a = srow(c, op.a);
  const std::uint32_t* b = srow(c, op.b);
  const std::uint32_t p = c.regs->pred_mask(sass::Pred{op.aux});
  lanewise(c, op, [&](int l) { return ((p >> l) & 1u) != 0 ? a[l] : b[l]; });
}

inline void do_isetp(RunCtx& c, const TOp& op) {
  const std::uint32_t m = guard_mask(c, op);
  if (m == 0) return;
  const std::uint32_t* a = srow(c, op.a);
  const std::uint32_t* b = srow(c, op.b);
  const auto cmp = static_cast<sass::CmpOp>(op.aux);
  std::uint32_t result = 0;
  for (int l = 0; l < 32; ++l) {
    if (sim::eval_cmp(cmp, static_cast<std::int32_t>(a[l]), static_cast<std::int32_t>(b[l]))) {
      result |= 1u << l;
    }
  }
  const sass::Pred pd{op.dst};
  c.regs->set_pred_mask(pd, (c.regs->pred_mask(pd) & ~m) | (result & m));
}

// Float and half lanes call sim/lane_ops.cpp — the SAME compiled bodies the
// interpreter executes. Inlining local copies here is not an option: x86 NaN
// propagation depends on codegen operand placement, so a second compiled
// copy of `a * b + c` can legally return a different NaN payload.
inline void do_fadd(RunCtx& c, const TOp& op) {
  const std::uint32_t* a = srow(c, op.a);
  const std::uint32_t* b = srow(c, op.b);
  lanewise(c, op, [&](int l) { return sim::fadd_bits(a[l], b[l]); });
}

inline void do_fmul(RunCtx& c, const TOp& op) {
  const std::uint32_t* a = srow(c, op.a);
  const std::uint32_t* b = srow(c, op.b);
  lanewise(c, op, [&](int l) { return sim::fmul_bits(a[l], b[l]); });
}

inline void do_ffma(RunCtx& c, const TOp& op) {
  const std::uint32_t* a = srow(c, op.a);
  const std::uint32_t* b = srow(c, op.b);
  const std::uint32_t* cc = srow(c, op.c);
  lanewise(c, op, [&](int l) { return sim::ffma_bits(a[l], b[l], cc[l]); });
}

inline void do_hadd2(RunCtx& c, const TOp& op) {
  const std::uint32_t* a = srow(c, op.a);
  const std::uint32_t* b = srow(c, op.b);
  lanewise(c, op, [&](int l) { return sim::hadd2_bits(a[l], b[l]); });
}

inline void do_hmul2(RunCtx& c, const TOp& op) {
  const std::uint32_t* a = srow(c, op.a);
  const std::uint32_t* b = srow(c, op.b);
  lanewise(c, op, [&](int l) { return sim::hmul2_bits(a[l], b[l]); });
}

inline void do_hfma2(RunCtx& c, const TOp& op) {
  const std::uint32_t* a = srow(c, op.a);
  const std::uint32_t* b = srow(c, op.b);
  const std::uint32_t* cc = srow(c, op.c);
  lanewise(c, op, [&](int l) { return sim::hfma2_bits(a[l], b[l], cc[l]); });
}

inline void do_hmax2(RunCtx& c, const TOp& op) {
  const std::uint32_t* a = srow(c, op.a);
  const std::uint32_t* b = srow(c, op.b);
  lanewise(c, op, [&](int l) { return sim::hmax2_bits(a[l], b[l]); });
}

inline void do_hgelu2(RunCtx& c, const TOp& op) {
  const std::uint32_t* a = srow(c, op.a);
  lanewise(c, op, [&](int l) { return sim::hgelu2_bits(a[l]); });
}

inline void do_f2f_narrow(RunCtx& c, const TOp& op) {
  const std::uint32_t* a = srow(c, op.a);
  lanewise(c, op, [&](int l) { return sim::f2f_narrow_bits(a[l]); });
}

inline void do_f2f_widen(RunCtx& c, const TOp& op) {
  const std::uint32_t* a = srow(c, op.a);
  lanewise(c, op, [&](int l) { return sim::f2f_widen_bits(a[l]); });
}

template <bool kGlobal, bool kStore>
inline void do_memory(RunCtx& c, const TOp& op) {
  if constexpr (kGlobal) {
    TC_CHECK(c.gmem != nullptr, "global access without global memory");
  } else {
    TC_CHECK(c.smem != nullptr, "shared access in a kernel with no shared memory");
  }
  const std::uint32_t m = guard_mask(c, op);
  if (m == 0) return;
  const std::uint32_t* addr_row = srow(c, op.a);
  const int nregs = op.aux;
  const int bytes = nregs * 4;
  for (int l = 0; l < 32; ++l) {
    if (((m >> l) & 1u) == 0) continue;
    const std::uint32_t addr = addr_row[l] + op.imm;
    TC_CHECK(addr % static_cast<std::uint32_t>(bytes) == 0,
             "misaligned memory access at address " + std::to_string(addr));
    std::uint8_t buf[16];
    if constexpr (kStore) {
      for (int r = 0; r < nregs; ++r) {
        // uint8 index wrap matches exec_step; a wrapped-to-255 row reads RZ.
        const auto idx = static_cast<std::uint8_t>(op.data + r);
        const std::uint32_t w = idx == 255 ? 0 : c.gpr[idx][static_cast<std::size_t>(l)];
        std::memcpy(buf + 4 * r, &w, 4);
      }
      if constexpr (kGlobal) {
        c.gmem->write(addr, std::span(buf, static_cast<std::size_t>(bytes)));
      } else {
        c.smem->write(addr, std::span(buf, static_cast<std::size_t>(bytes)));
      }
    } else {
      if constexpr (kGlobal) {
        c.gmem->read(addr, std::span(buf, static_cast<std::size_t>(bytes)));
      } else {
        c.smem->read(addr, std::span(buf, static_cast<std::size_t>(bytes)));
      }
      for (int r = 0; r < nregs; ++r) {
        std::uint32_t w;
        std::memcpy(&w, buf + 4 * r, 4);
        const auto idx = static_cast<std::uint8_t>(op.dst + r);
        if (idx != 255) c.gpr[idx][static_cast<std::size_t>(l)] = w;
      }
    }
  }
}

inline void do_mma(RunCtx& c, const TOp& op) {
  const std::uint32_t m = guard_mask(c, op);
  TC_CHECK(m == ~0u, "predicated-off MMA lanes are not supported");
  sim::ImmediateSink sink(*c.regs);
  sim::exec_mma(static_cast<sass::Opcode>(op.imm), *c.regs, sass::Reg{op.dst},
                sass::Reg{op.data}, sass::Reg{static_cast<std::uint8_t>(op.b)},
                sass::Reg{static_cast<std::uint8_t>(op.c)}, sink, c.launch->numerics);
}

}  // namespace

#if defined(__GNUC__) || defined(__clang__)
#define TC_JIT_COMPUTED_GOTO 1
#else
#define TC_JIT_COMPUTED_GOTO 0
#endif

void exec_block(const CompiledBlock& blk, RunCtx& ctx) {
  const TOp* ops = blk.ops.data();
  const std::size_t n = blk.ops.size();
  std::size_t i = 0;

#if TC_JIT_COMPUTED_GOTO
  // Table order must match the Handler enum exactly.
  static const void* kTable[kNumHandlers] = {
      &&L_mov,   &&L_param, &&L_special, &&L_clock, &&L_iadd3,  &&L_imad,   &&L_and,
      &&L_or,    &&L_xor,   &&L_shl,     &&L_shr,   &&L_sel,    &&L_isetp,  &&L_fadd,
      &&L_fmul,  &&L_ffma,  &&L_hadd2,   &&L_hmul2, &&L_hfma2,  &&L_hmax2,  &&L_hgelu2,
      &&L_f2f16, &&L_f2f32, &&L_ldg,     &&L_lds,   &&L_stg,    &&L_sts,    &&L_mma,
  };
  const TOp* op = nullptr;
#define TC_DISPATCH()            \
  do {                           \
    if (i == n) return;          \
    op = &ops[i++];              \
    goto* kTable[op->handler];   \
  } while (0)

  TC_DISPATCH();
L_mov:
  do_mov(ctx, *op);
  TC_DISPATCH();
L_param:
  do_param(ctx, *op);
  TC_DISPATCH();
L_special:
  do_special(ctx, *op);
  TC_DISPATCH();
L_clock:
  do_clock(ctx, *op);
  TC_DISPATCH();
L_iadd3:
  do_iadd3(ctx, *op);
  TC_DISPATCH();
L_imad:
  do_imad(ctx, *op);
  TC_DISPATCH();
L_and:
  do_and(ctx, *op);
  TC_DISPATCH();
L_or:
  do_or(ctx, *op);
  TC_DISPATCH();
L_xor:
  do_xor(ctx, *op);
  TC_DISPATCH();
L_shl:
  do_shl(ctx, *op);
  TC_DISPATCH();
L_shr:
  do_shr(ctx, *op);
  TC_DISPATCH();
L_sel:
  do_sel(ctx, *op);
  TC_DISPATCH();
L_isetp:
  do_isetp(ctx, *op);
  TC_DISPATCH();
L_fadd:
  do_fadd(ctx, *op);
  TC_DISPATCH();
L_fmul:
  do_fmul(ctx, *op);
  TC_DISPATCH();
L_ffma:
  do_ffma(ctx, *op);
  TC_DISPATCH();
L_hadd2:
  do_hadd2(ctx, *op);
  TC_DISPATCH();
L_hmul2:
  do_hmul2(ctx, *op);
  TC_DISPATCH();
L_hfma2:
  do_hfma2(ctx, *op);
  TC_DISPATCH();
L_hmax2:
  do_hmax2(ctx, *op);
  TC_DISPATCH();
L_hgelu2:
  do_hgelu2(ctx, *op);
  TC_DISPATCH();
L_f2f16:
  do_f2f_narrow(ctx, *op);
  TC_DISPATCH();
L_f2f32:
  do_f2f_widen(ctx, *op);
  TC_DISPATCH();
L_ldg:
  do_memory<true, false>(ctx, *op);
  TC_DISPATCH();
L_lds:
  do_memory<false, false>(ctx, *op);
  TC_DISPATCH();
L_stg:
  do_memory<true, true>(ctx, *op);
  TC_DISPATCH();
L_sts:
  do_memory<false, true>(ctx, *op);
  TC_DISPATCH();
L_mma:
  do_mma(ctx, *op);
  TC_DISPATCH();
#undef TC_DISPATCH
#else
  for (; i < n; ++i) {
    const TOp& op = ops[i];
    switch (op.handler) {
      case hMov: do_mov(ctx, op); break;
      case hParam: do_param(ctx, op); break;
      case hSpecial: do_special(ctx, op); break;
      case hClock: do_clock(ctx, op); break;
      case hIadd3: do_iadd3(ctx, op); break;
      case hImad: do_imad(ctx, op); break;
      case hAnd: do_and(ctx, op); break;
      case hOr: do_or(ctx, op); break;
      case hXor: do_xor(ctx, op); break;
      case hShl: do_shl(ctx, op); break;
      case hShr: do_shr(ctx, op); break;
      case hSel: do_sel(ctx, op); break;
      case hIsetp: do_isetp(ctx, op); break;
      case hFadd: do_fadd(ctx, op); break;
      case hFmul: do_fmul(ctx, op); break;
      case hFfma: do_ffma(ctx, op); break;
      case hHadd2: do_hadd2(ctx, op); break;
      case hHmul2: do_hmul2(ctx, op); break;
      case hHfma2: do_hfma2(ctx, op); break;
      case hHmax2: do_hmax2(ctx, op); break;
      case hHgelu2: do_hgelu2(ctx, op); break;
      case hF2fNarrow: do_f2f_narrow(ctx, op); break;
      case hF2fWiden: do_f2f_widen(ctx, op); break;
      case hLdg: do_memory<true, false>(ctx, op); break;
      case hLds: do_memory<false, false>(ctx, op); break;
      case hStg: do_memory<true, true>(ctx, op); break;
      case hSts: do_memory<false, true>(ctx, op); break;
      case hMma: do_mma(ctx, op); break;
      default: TC_CHECK(false, "jit: unknown handler"); break;
    }
  }
#endif
}

}  // namespace tc::jit
