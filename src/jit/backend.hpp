// Backend-internal interface: emission (IR -> threaded code) and the block
// dispatcher. Split from jit.hpp so a future native emitter can slot in as a
// second implementation of the same two entry points.
#pragma once

#include <array>
#include <cstdint>

#include "jit/jit.hpp"
#include "mem/banked_smem.hpp"
#include "mem/global_mem.hpp"
#include "sim/launch.hpp"
#include "sim/reg_file.hpp"

namespace tc::jit {

/// Binds operands and packs each surviving IrInst into a TOp; fills the
/// const pool and stats.
[[nodiscard]] JitProgram emit(const sass::Program& prog, const std::vector<IrBlock>& blocks,
                              const PassStats& pass_stats, std::uint32_t ir_instructions);

/// Per-warp execution context for one CTA. `gpr` aliases regs->rows();
/// `dump` receives RZ-destination writes (discarded, like write_now on RZ).
struct RunCtx {
  std::array<std::uint32_t, 32>* gpr = nullptr;
  sim::WarpRegs* regs = nullptr;
  const std::array<std::uint32_t, 32>* cpool = nullptr;
  mem::SharedMemory* smem = nullptr;
  mem::GlobalMemory* gmem = nullptr;
  const sim::Launch* launch = nullptr;
  std::uint32_t cta_x = 0;
  std::uint32_t cta_y = 0;
  std::uint32_t cta_z = 0;
  int warp_in_cta = 0;
  std::uint64_t clock_base = 0;  // warp's executed count at block entry
  std::array<std::uint32_t, 32> dump{};
};

/// Executes one compiled block's body (not the terminator) for one warp.
void exec_block(const CompiledBlock& blk, RunCtx& ctx);

}  // namespace tc::jit
