// Block JIT for the functional executor: SASS -> IR -> passes -> threaded code.
//
// compile() validates the program, builds the basic-block IR (ir.hpp), runs
// the pass pipeline, and emits portable threaded code: per block, a flat
// array of TOps whose operand slots are pre-bound to register rows or
// const-pool rows, dispatched by computed goto (backend.cpp). run_cta()
// mirrors sim/functional.cpp's warp/barrier loop over compiled blocks.
//
// Bitwise contract with the interpreter (the oracle, kept permanently):
//  * handlers compute lane-wise under the guard mask, writing only active
//    lanes — exactly exec_step()'s per-lane guard semantics;
//  * passes never reorder, so every surviving register read happens at its
//    original program position; forwarded operands only cross write-free
//    ranges, so binding a def's dst row is indistinguishable from re-reading;
//  * MMA steps call sim::exec_mma with the same NumericsMode, so both
//    numerics modes stay exact;
//  * error behavior (divergent BRA/EXIT, predicated MMA, misalignment,
//    param bounds, instruction budget, barrier deadlock) reproduces the
//    interpreter's messages; the budget trips at block entry exactly when
//    the interpreter's per-instruction check would trip inside the block.
//
// The backend interface is deliberately narrow — a CompiledBlock is a
// self-contained (ops, terminator) pair and exec_block() is the only entry —
// so a native x64 emitter can later replace the threaded dispatch per block
// without touching the frontend, the passes, or the executor loop.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "jit/ir.hpp"
#include "mem/global_mem.hpp"
#include "sass/program.hpp"
#include "sim/launch.hpp"

namespace tc::sim {
class StateProbe;
}

namespace tc::jit {

/// Threaded-code handler ids (dense; backend.cpp owns the dispatch table).
enum Handler : std::uint16_t {
  hMov,
  hParam,
  hSpecial,
  hClock,
  hIadd3,
  hImad,
  hAnd,
  hOr,
  hXor,
  hShl,
  hShr,
  hSel,
  hIsetp,
  hFadd,
  hFmul,
  hFfma,
  hHadd2,
  hHmul2,
  hHfma2,
  hHmax2,
  hHgelu2,
  hF2fNarrow,
  hF2fWiden,
  hLdg,
  hLds,
  hStg,
  hSts,
  hMma,
  kNumHandlers,
};

/// Source-operand slot: a register row index, or a const-pool row when
/// kConstBit is set. Bound once at compile time.
inline constexpr std::uint16_t kConstBit = 0x8000;

/// One threaded op: handler id plus pre-bound operand slots. Memory ops keep
/// their base registers (`dst`/`data`) and width (`aux`); MMA keeps its SASS
/// opcode in `imm` and its source bases in `data`/`b`/`c`.
struct TOp {
  std::uint16_t handler = hMov;
  std::uint8_t dst = 255;    // dst GPR base; ISETP predicate index; 255 discards
  std::uint8_t aux = 0;      // mem nregs / SEL pred / ISETP CmpOp / S2R sreg
  std::uint8_t guard = 7;    // guard predicate index (7 = PT)
  std::uint8_t data = 255;   // store data base / MMA srca base
  std::uint32_t gxor = 0;    // 0 or ~0u: XORed into the guard lane mask (@!P)
  std::uint16_t a = 0;       // source row slots (kConstBit selects const pool)
  std::uint16_t b = 0;
  std::uint16_t c = 0;
  std::uint32_t imm = 0;     // imm / mem offset / param index / clock offset
};

struct CompiledBlock {
  std::vector<TOp> ops;
  Term term = Term::kFall;
  std::uint8_t term_guard = 7;
  std::uint32_t term_gxor = 0;
  std::int32_t target = -1;   // BRA taken pc
  std::int32_t next_pc = -1;  // fallthrough / not-taken / barrier resume pc
  std::uint32_t static_count = 0;  // SASS instructions represented (see ir.hpp)
  std::uint32_t static_mma = 0;
};

struct JitStats {
  std::uint32_t blocks = 0;
  std::uint32_t sass_instructions = 0;
  std::uint32_t ir_instructions = 0;  // translated, before passes
  std::uint32_t emitted_ops = 0;      // surviving TOps after passes
  PassStats passes;
};

/// A compiled program: read-only after compile(), safe to share across the
/// functional executor's CTA worker threads.
struct JitProgram {
  const sass::Program* program = nullptr;
  std::vector<CompiledBlock> blocks;
  /// pc -> block index for block leaders; -1 for mid-block pcs (never a
  /// branch target by construction).
  std::vector<std::int32_t> block_of_pc;
  /// Splat constants, one 32-lane row per distinct value.
  std::vector<std::array<std::uint32_t, 32>> cpool;
  JitStats stats;
};

/// Validates (sass::validate) and compiles. Throws tc::Error on invalid
/// programs; hazard gating (check::find_hazards) stays with the callers that
/// already enforce it — src/check cannot be linked from here without a cycle.
[[nodiscard]] JitProgram compile(const sass::Program& prog, const JitOptions& opts = {});

/// Runs one CTA to completion over compiled blocks, mirroring the
/// interpreter's warp/barrier loop bit for bit. Returns (instructions, mma).
std::pair<std::uint64_t, std::uint64_t> run_cta(const JitProgram& jp, mem::GlobalMemory& gmem,
                                                const sim::Launch& launch, std::uint32_t cta_x,
                                                std::uint32_t cta_y, std::uint32_t cta_z,
                                                std::uint64_t max_warp_instructions,
                                                sim::StateProbe* probe);

}  // namespace tc::jit
