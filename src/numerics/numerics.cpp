#include "numerics/numerics.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>

#include "common/error.hpp"

namespace tc::numerics {

const char* numerics_mode_name(NumericsMode mode) {
  return mode == NumericsMode::kBitAccurate ? "bitaccurate" : "idealized";
}

bool parse_numerics_mode(std::string_view name, NumericsMode& out) {
  if (name == "idealized") {
    out = NumericsMode::kIdealized;
    return true;
  }
  if (name == "bitaccurate") {
    out = NumericsMode::kBitAccurate;
    return true;
  }
  return false;
}

namespace {

// ---------------------------------------------------------------------------
// Fixed-point accumulation.
//
// Every finite term is an integer multiple of 2^-149 (the binary32 subnormal
// quantum):
//   * an FP16 value is M * 2^E with M < 2^11 and E >= -24, so an exact FP16
//     product is M1*M2 * 2^(E1+E2) with M1*M2 < 2^22 and E1+E2 in [-48, 10];
//   * a binary32 accumulator is M * 2^E with M < 2^24 and E in [-149, 104].
// At scale 2^-149 the largest shift is 104 + 149 = 253 and the largest
// magnitude 2^24, so five terms fit in 253 + 24 + 3 = 280 bits. A 320-bit
// (5 x 64) two's-complement accumulator therefore holds the fused sum
// EXACTLY, and rounding happens exactly once, at the end of the step.
// ---------------------------------------------------------------------------

constexpr int kScalePow = 149;  // accumulator unit is 2^-149
constexpr int kLimbs = 5;

struct Acc320 {
  std::array<std::uint64_t, kLimbs> w{};  // little-endian two's complement

  /// Adds (neg ? -1 : +1) * mag * 2^shift; mag < 2^48, 0 <= shift <= 253.
  void add(std::uint64_t mag, int shift, bool neg) {
    if (mag == 0) return;
    const int limb = shift >> 6;
    const int off = shift & 63;
    const unsigned __int128 v = static_cast<unsigned __int128>(mag) << off;
    const std::uint64_t part[2] = {static_cast<std::uint64_t>(v),
                                   static_cast<std::uint64_t>(v >> 64)};
    if (!neg) {
      unsigned __int128 carry = 0;
      for (int i = limb; i < kLimbs; ++i) {
        const unsigned __int128 s = static_cast<unsigned __int128>(w[static_cast<std::size_t>(i)]) +
                                    (i - limb < 2 ? part[i - limb] : 0) + carry;
        w[static_cast<std::size_t>(i)] = static_cast<std::uint64_t>(s);
        carry = s >> 64;
      }
    } else {
      std::uint64_t borrow = 0;
      for (int i = limb; i < kLimbs; ++i) {
        const __int128 s = static_cast<__int128>(w[static_cast<std::size_t>(i)]) -
                           static_cast<__int128>(i - limb < 2 ? part[i - limb] : 0) -
                           static_cast<__int128>(borrow);
        w[static_cast<std::size_t>(i)] = static_cast<std::uint64_t>(s);
        borrow = s < 0 ? 1 : 0;
      }
    }
  }

  [[nodiscard]] bool is_zero() const {
    for (const std::uint64_t limb : w) {
      if (limb != 0) return false;
    }
    return true;
  }

  [[nodiscard]] bool negative() const { return (w[kLimbs - 1] >> 63) != 0; }

  /// Two's-complement magnitude (valid because |sum| < 2^280 << 2^319).
  [[nodiscard]] std::array<std::uint64_t, kLimbs> magnitude() const {
    std::array<std::uint64_t, kLimbs> m = w;
    if (negative()) {
      unsigned __int128 carry = 1;
      for (std::uint64_t& limb : m) {
        const unsigned __int128 s = static_cast<unsigned __int128>(~limb) + carry;
        limb = static_cast<std::uint64_t>(s);
        carry = s >> 64;
      }
    }
    return m;
  }
};

using Mag = std::array<std::uint64_t, kLimbs>;

/// Index of the highest set bit, or -1 when zero.
int top_bit(const Mag& m) {
  for (int i = kLimbs - 1; i >= 0; --i) {
    const std::uint64_t limb = m[static_cast<std::size_t>(i)];
    if (limb != 0) return i * 64 + (63 - std::countl_zero(limb));
  }
  return -1;
}

/// floor(m / 2^pos) masked to `count` bits (count <= 57, pos >= 0).
std::uint64_t bits_at(const Mag& m, int pos, int count) {
  const int limb = pos >> 6;
  const int off = pos & 63;
  std::uint64_t lo = limb < kLimbs ? m[static_cast<std::size_t>(limb)] >> off : 0;
  if (off != 0 && limb + 1 < kLimbs) lo |= m[static_cast<std::size_t>(limb + 1)] << (64 - off);
  return lo & ((std::uint64_t{1} << count) - 1);
}

bool bit_at(const Mag& m, int pos) { return bits_at(m, pos, 1) != 0; }

/// True when any bit strictly below `pos` is set.
bool sticky_below(const Mag& m, int pos) {
  const int limb = pos >> 6;
  const int off = pos & 63;
  for (int i = 0; i < limb && i < kLimbs; ++i) {
    if (m[static_cast<std::size_t>(i)] != 0) return true;
  }
  if (off != 0 && limb < kLimbs) {
    if ((m[static_cast<std::size_t>(limb)] & ((std::uint64_t{1} << off) - 1)) != 0) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Term decoding. A term is sign * mag * 2^(shift - 149).
// ---------------------------------------------------------------------------

struct Term {
  std::uint64_t mag = 0;
  int shift = 0;
  bool neg = false;
};

Term decode_half(std::uint16_t bits) {
  Term t;
  t.neg = (bits & 0x8000u) != 0;
  const std::uint32_t exp = (bits >> 10) & 0x1Fu;
  const std::uint32_t man = bits & 0x3FFu;
  if (exp == 0) {
    t.mag = man;                 // subnormal: man * 2^-24
    t.shift = kScalePow - 24;
  } else {
    t.mag = man | 0x400u;        // normal: (1024 + man) * 2^(exp - 25)
    t.shift = kScalePow + static_cast<int>(exp) - 25;
  }
  return t;
}

Term decode_float(float f) {
  std::uint32_t bits;
  std::memcpy(&bits, &f, 4);
  Term t;
  t.neg = (bits >> 31) != 0;
  const std::uint32_t exp = (bits >> 23) & 0xFFu;
  const std::uint32_t man = bits & 0x7FFFFFu;
  if (exp == 0) {
    t.mag = man;                 // subnormal: man * 2^-149
    t.shift = 0;
  } else {
    t.mag = man | 0x800000u;     // normal: (2^23 + man) * 2^(exp - 150)
    t.shift = static_cast<int>(exp) - 1;
  }
  return t;
}

// ---------------------------------------------------------------------------
// Rounding the exact sum. `sign` is the sign to apply to a nonzero result;
// an exactly-zero sum is handled by the callers (IEEE zero-sign rules).
// ---------------------------------------------------------------------------

std::uint32_t round_f32_bits(const Mag& m, bool sign, const GenerationModel& model) {
  const std::uint32_t sbit = sign ? 0x80000000u : 0u;
  const int msb = top_bit(m);
  TC_ASSERT(msb >= 0, "round_f32_bits on zero magnitude");
  int e = msb - kScalePow;  // value in [2^e, 2^(e+1))
  if (e < -126) {
    // Subnormal: the accumulator unit IS the binary32 subnormal quantum, so
    // the value is exactly representable (msb <= 22 here).
    return sbit | static_cast<std::uint32_t>(m[0]);
  }
  const int sh = msb - 23;
  std::uint32_t kept = static_cast<std::uint32_t>(bits_at(m, sh, 24));
  if (!model.f32_round_rz && sh > 0) {
    const bool round = bit_at(m, sh - 1);
    const bool sticky = sticky_below(m, sh - 1);
    if (round && (sticky || (kept & 1u))) {
      ++kept;
      if (kept == (1u << 24)) {
        kept = 1u << 23;
        ++e;
      }
    }
  }
  if (e > 127) {
    // RZ saturates to the largest finite value; RNE overflows to infinity.
    if (model.f32_round_rz) return sbit | 0x7F7FFFFFu;
    return sbit | 0x7F800000u;
  }
  return sbit | (static_cast<std::uint32_t>(e + 127) << 23) | (kept & 0x7FFFFFu);
}

std::uint16_t round_f16_bits(const Mag& m, bool sign, const GenerationModel& model) {
  const std::uint16_t sbit = sign ? 0x8000u : 0u;
  const int msb = top_bit(m);
  TC_ASSERT(msb >= 0, "round_f16_bits on zero magnitude");
  int e = msb - kScalePow;
  std::uint32_t kept;
  std::uint16_t h;
  if (e >= -14) {
    const int sh = msb - 10;  // keep 11 bits including the implicit one
    kept = static_cast<std::uint32_t>(bits_at(m, sh, 11));
    const bool round = sh > 0 && bit_at(m, sh - 1);
    const bool sticky = sh > 0 && sticky_below(m, sh - 1);
    if (round && (sticky || (kept & 1u))) {
      ++kept;
      if (kept == (1u << 11)) {
        kept = 1u << 10;
        ++e;
      }
    }
    if (e > 15) return sbit | 0x7C00u;  // RNE overflow to infinity
    h = static_cast<std::uint16_t>((static_cast<std::uint32_t>(e + 15) << 10) | (kept & 0x3FFu));
  } else {
    // Subnormal: quantum 2^-24 sits at accumulator bit 125 (msb <= 134 here,
    // so `kept` < 2^10; an RNE carry into 0x400 is exactly the minimum
    // normal and needs no special case).
    kept = static_cast<std::uint32_t>(bits_at(m, 125, 11));
    const bool round = bit_at(m, 124);
    const bool sticky = sticky_below(m, 124);
    if (round && (sticky || (kept & 1u))) ++kept;
    h = static_cast<std::uint16_t>(kept);
  }
  if (model.f16_ftz_out && (h & 0x7C00u) == 0) h = 0;  // flush subnormal outputs
  return sbit | h;
}

// ---------------------------------------------------------------------------
// Special-value scan (performed before any accumulation, as the unit
// resolves NaN/infinity structurally, not arithmetically).
// ---------------------------------------------------------------------------

struct StepScan {
  bool nan = false;
  bool pos_inf = false;
  bool neg_inf = false;
  bool all_zero = true;   // every term is a signed zero...
  bool all_neg = true;    // ...and every one of them is negative
};

void scan_product(half a, half b, StepScan& s) {
  const bool a_inf = a.is_inf();
  const bool b_inf = b.is_inf();
  if (a.is_nan() || b.is_nan() || (a_inf && b.is_zero()) || (b_inf && a.is_zero())) {
    s.nan = true;
    return;
  }
  if (a_inf || b_inf) {
    const bool neg = a.signbit() != b.signbit();
    (neg ? s.neg_inf : s.pos_inf) = true;
    s.all_zero = false;
    return;
  }
  if (a.is_zero() || b.is_zero()) {
    s.all_neg = s.all_neg && (a.signbit() != b.signbit());
  } else {
    s.all_zero = false;
  }
}

}  // namespace

float fdp_step_f32(float c, const half* a, const half* b, int n, const GenerationModel& model) {
  TC_ASSERT(n >= 0 && n <= 8, "fdp step width out of range");
  std::uint32_t cbits;
  std::memcpy(&cbits, &c, 4);

  StepScan scan;
  if ((cbits & 0x7F800000u) == 0x7F800000u) {
    if ((cbits & 0x7FFFFFu) != 0) {
      scan.nan = true;
    } else {
      ((cbits >> 31) != 0 ? scan.neg_inf : scan.pos_inf) = true;
      scan.all_zero = false;
    }
  } else if ((cbits & 0x7FFFFFFFu) == 0) {
    scan.all_neg = scan.all_neg && (cbits >> 31) != 0;
  } else {
    scan.all_zero = false;
  }
  for (int i = 0; i < n; ++i) scan_product(a[i], b[i], scan);

  float out;
  std::uint32_t obits;
  if (scan.nan || (scan.pos_inf && scan.neg_inf)) {
    obits = model.qnan32;
  } else if (scan.pos_inf || scan.neg_inf) {
    obits = scan.neg_inf ? 0xFF800000u : 0x7F800000u;
  } else {
    Acc320 acc;
    {
      const Term t = decode_float(c);
      acc.add(t.mag, t.shift, t.neg);
    }
    for (int i = 0; i < n; ++i) {
      const Term ta = decode_half(a[i].bits());
      const Term tb = decode_half(b[i].bits());
      // Exact product: magnitudes multiply (< 2^22), scales add. Both
      // decode at scale 2^-149, so re-center the product's shift once.
      acc.add(ta.mag * tb.mag, ta.shift + tb.shift - kScalePow, ta.neg != tb.neg);
    }
    if (acc.is_zero()) {
      // Exact cancellation gives +0; an all-(-0) term list gives -0.
      obits = (scan.all_zero && scan.all_neg) ? 0x80000000u : 0u;
    } else {
      obits = round_f32_bits(acc.magnitude(), acc.negative(), model);
    }
  }
  std::memcpy(&out, &obits, 4);
  return out;
}

half fdp_step_f16(half c, const half* a, const half* b, int n, const GenerationModel& model) {
  TC_ASSERT(n >= 0 && n <= 8, "fdp step width out of range");
  StepScan scan;
  if (c.is_nan()) {
    scan.nan = true;
  } else if (c.is_inf()) {
    (c.signbit() ? scan.neg_inf : scan.pos_inf) = true;
    scan.all_zero = false;
  } else if (c.is_zero()) {
    scan.all_neg = scan.all_neg && c.signbit();
  } else {
    scan.all_zero = false;
  }
  for (int i = 0; i < n; ++i) scan_product(a[i], b[i], scan);

  if (scan.nan || (scan.pos_inf && scan.neg_inf)) return half::from_bits(model.qnan16);
  if (scan.pos_inf || scan.neg_inf) {
    return half::from_bits(scan.neg_inf ? std::uint16_t{0xFC00} : std::uint16_t{0x7C00});
  }

  Acc320 acc;
  {
    const Term t = decode_half(c.bits());
    acc.add(t.mag, t.shift, t.neg);
  }
  for (int i = 0; i < n; ++i) {
    const Term ta = decode_half(a[i].bits());
    const Term tb = decode_half(b[i].bits());
    acc.add(ta.mag * tb.mag, ta.shift + tb.shift - kScalePow, ta.neg != tb.neg);
  }
  if (acc.is_zero()) {
    return half::from_bits((scan.all_zero && scan.all_neg) ? std::uint16_t{0x8000}
                                                           : std::uint16_t{0});
  }
  return half::from_bits(round_f16_bits(acc.magnitude(), acc.negative(), model));
}

float hmma_dot8_f32(float c, const half* a, const half* b, const GenerationModel& model) {
  TC_ASSERT(model.terms_per_step >= 1 && model.terms_per_step <= 8,
            "terms_per_step out of range");
  float acc = c;
  for (int kk = 0; kk < 8; kk += model.terms_per_step) {
    const int n = std::min(model.terms_per_step, 8 - kk);
    acc = fdp_step_f32(acc, a + kk, b + kk, n, model);
  }
  return acc;
}

half hmma_dot8_f16(half c, const half* a, const half* b, const GenerationModel& model) {
  TC_ASSERT(model.terms_per_step >= 1 && model.terms_per_step <= 8,
            "terms_per_step out of range");
  half acc = c;
  for (int kk = 0; kk < 8; kk += model.terms_per_step) {
    const int n = std::min(model.terms_per_step, 8 - kk);
    acc = fdp_step_f16(acc, a + kk, b + kk, n, model);
  }
  return acc;
}

}  // namespace tc::numerics
