#include "numerics/curves.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/error.hpp"

namespace tc::numerics {

namespace {

void check_shapes(const HalfMatrix& a, const HalfMatrix& bt) {
  TC_CHECK(a.cols() == bt.cols(), "A is m x k and B^T is n x k: k must match");
  TC_CHECK(a.layout() == Layout::kRowMajor && bt.layout() == Layout::kRowMajor,
           "numerics references expect row-major A and B^T");
}

double rel_err(double v, double ref) {
  const double denom = std::max(std::abs(ref), 1e-30);
  return std::abs(v - ref) / denom;
}

}  // namespace

HalfMatrix gemm_bitacc_f16(const HalfMatrix& a, const HalfMatrix& bt,
                           const GenerationModel& model) {
  check_shapes(a, bt);
  const std::size_t m = a.rows();
  const std::size_t n = bt.rows();
  const std::size_t k = a.cols();
  const auto step = static_cast<std::size_t>(model.terms_per_step);
  HalfMatrix c(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    const half* arow = a.data() + i * k;  // rows are contiguous (row-major)
    for (std::size_t j = 0; j < n; ++j) {
      const half* brow = bt.data() + j * k;
      half acc(0.0f);
      for (std::size_t l = 0; l < k; l += step) {
        const int width = static_cast<int>(std::min(step, k - l));
        acc = fdp_step_f16(acc, arow + l, brow + l, width, model);
      }
      c.at(i, j) = acc;
    }
  }
  return c;
}

FloatMatrix gemm_bitacc_f32(const HalfMatrix& a, const HalfMatrix& bt,
                            const GenerationModel& model) {
  check_shapes(a, bt);
  const std::size_t m = a.rows();
  const std::size_t n = bt.rows();
  const std::size_t k = a.cols();
  const auto step = static_cast<std::size_t>(model.terms_per_step);
  FloatMatrix c(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    const half* arow = a.data() + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const half* brow = bt.data() + j * k;
      float acc = 0.0f;
      for (std::size_t l = 0; l < k; l += step) {
        const int width = static_cast<int>(std::min(step, k - l));
        acc = fdp_step_f32(acc, arow + l, brow + l, width, model);
      }
      c.at(i, j) = acc;
    }
  }
  return c;
}

HalfMatrix gemm_idealized_f16(const HalfMatrix& a, const HalfMatrix& bt) {
  check_shapes(a, bt);
  const std::size_t m = a.rows();
  const std::size_t n = bt.rows();
  const std::size_t k = a.cols();
  HalfMatrix c(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      half acc(0.0f);
      for (std::size_t l0 = 0; l0 < k; l0 += 8) {
        float chunk = acc.to_float();
        const std::size_t l1 = std::min(l0 + 8, k);
        for (std::size_t l = l0; l < l1; ++l) {
          chunk += a.at(i, l).to_float() * bt.at(j, l).to_float();
        }
        acc = half(chunk);
      }
      c.at(i, j) = acc;
    }
  }
  return c;
}

std::vector<double> gemm_oracle_f64(const HalfMatrix& a, const HalfMatrix& bt) {
  check_shapes(a, bt);
  const std::size_t m = a.rows();
  const std::size_t n = bt.rows();
  const std::size_t k = a.cols();
  std::vector<double> c(m * n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t l = 0; l < k; ++l) {
        // FP16 -> double is exact and the product of two 11-bit significands
        // is exact in double, so the only oracle error is the final sum's
        // double rounding — ~2^-52 per term, negligible against FP16/FP32.
        acc += static_cast<double>(a.at(i, l).to_float()) *
               static_cast<double>(bt.at(j, l).to_float());
      }
      c[i * n + j] = acc;
    }
  }
  return c;
}

std::vector<ErrorPoint> error_curves(const CurveOptions& opts) {
  std::vector<ErrorPoint> points;
  points.reserve(opts.ks.size());
  for (const std::size_t k : opts.ks) {
    Rng rng(opts.seed + k);
    HalfMatrix a(opts.m, k);
    HalfMatrix bt(opts.n, k);
    a.randomize(rng, opts.lo, opts.hi);
    bt.randomize(rng, opts.lo, opts.hi);

    const std::vector<double> oracle = gemm_oracle_f64(a, bt);
    const HalfMatrix ideal = gemm_idealized_f16(a, bt);
    const HalfMatrix bit16 = gemm_bitacc_f16(a, bt, opts.model);
    const FloatMatrix bit32 = gemm_bitacc_f32(a, bt, opts.model);

    ErrorPoint p;
    p.k = k;
    const std::size_t count = opts.m * opts.n;
    for (std::size_t i = 0; i < opts.m; ++i) {
      for (std::size_t j = 0; j < opts.n; ++j) {
        const double ref = oracle[i * opts.n + j];
        const double e_ideal = rel_err(static_cast<double>(ideal.at(i, j).to_float()), ref);
        const double e_b16 = rel_err(static_cast<double>(bit16.at(i, j).to_float()), ref);
        const double e_b32 = rel_err(static_cast<double>(bit32.at(i, j)), ref);
        p.idealized_f16.max_rel = std::max(p.idealized_f16.max_rel, e_ideal);
        p.bitacc_f16.max_rel = std::max(p.bitacc_f16.max_rel, e_b16);
        p.bitacc_f32.max_rel = std::max(p.bitacc_f32.max_rel, e_b32);
        p.idealized_f16.mean_rel += e_ideal;
        p.bitacc_f16.mean_rel += e_b16;
        p.bitacc_f32.mean_rel += e_b32;
      }
    }
    p.idealized_f16.mean_rel /= static_cast<double>(count);
    p.bitacc_f16.mean_rel /= static_cast<double>(count);
    p.bitacc_f32.mean_rel /= static_cast<double>(count);
    points.push_back(p);
  }
  return points;
}

}  // namespace tc::numerics
