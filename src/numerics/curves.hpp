// Matrix-level bit-accurate GEMM references and error-vs-shape curves.
//
// These lift the per-element step semantics of numerics.hpp to whole
// matrices using the repo's GEMM convention (A is m x k row-major, B is
// supplied transposed as an n x k row-major matrix). A kernel that chains
// HMMA.1688 over k in wk = 8 chunks through a register accumulator computes
// exactly a sequential walk of fused steps per output element, so these
// functions are the bit-exact oracle for the functional executor running in
// NumericsMode::kBitAccurate (tests/test_numerics.cpp proves the e2e match).
//
// error_curves() reproduces the FP16- vs FP32-accumulate precision
// observations of the related work ("Accurate Models of NVIDIA Tensor
// Cores"): FP16 accumulation loses accuracy roughly with k while FP32
// accumulation stays flat. `tcgemm_cli numerics` emits them as tc-cli-v1
// JSON; the golden fixtures live in tests/test_numerics.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "numerics/numerics.hpp"

namespace tc::numerics {

/// C = A * B^T' with bit-accurate FP16 accumulation: each output element is
/// a left-to-right chain of `model.terms_per_step`-wide fused steps, the
/// accumulator rounding to binary16 at every step boundary.
[[nodiscard]] HalfMatrix gemm_bitacc_f16(const HalfMatrix& a, const HalfMatrix& bt,
                                         const GenerationModel& model = GenerationModel{});

/// Same walk with a binary32 accumulator (round-toward-zero per step under
/// the default model), rounded to FP16 once at the very end — the HMMA
/// .F32 epilogue-store semantics.
[[nodiscard]] FloatMatrix gemm_bitacc_f32(const HalfMatrix& a, const HalfMatrix& bt,
                                          const GenerationModel& model = GenerationModel{});

/// The executor's historic idealized semantics (one FP32 dot per 8-chunk,
/// rounded once to FP16) — a local copy of core::gemm_ref_tc so this
/// library stays below tc_core; asserted bit-identical to it in tests.
[[nodiscard]] HalfMatrix gemm_idealized_f16(const HalfMatrix& a, const HalfMatrix& bt);

/// Double-precision oracle (exact products, double accumulation).
[[nodiscard]] std::vector<double> gemm_oracle_f64(const HalfMatrix& a, const HalfMatrix& bt);

struct ErrorStats {
  double max_rel = 0.0;
  double mean_rel = 0.0;
};

/// One point of the error-vs-k curve: all three semantics against the
/// double oracle at the same inputs.
struct ErrorPoint {
  std::size_t k = 0;
  ErrorStats idealized_f16;
  ErrorStats bitacc_f16;
  ErrorStats bitacc_f32;
};

struct CurveOptions {
  std::size_t m = 64;
  std::size_t n = 64;
  std::vector<std::size_t> ks = {64, 128, 256, 512, 1024};
  std::uint64_t seed = 1;
  // Positive operands by default: with sign cancellation the oracle passes
  // near zero and relative error is dominated by a handful of catastrophic
  // cases, burying the accumulate-width signal the curves exist to show.
  float lo = 0.0f;
  float hi = 1.0f;
  GenerationModel model;
};

/// Sweeps k, drawing fresh deterministic inputs per point (seed + k).
[[nodiscard]] std::vector<ErrorPoint> error_curves(const CurveOptions& opts);

}  // namespace tc::numerics
