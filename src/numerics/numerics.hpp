// Bit-accurate HMMA dot-product numerics (ROADMAP: numerics oracle).
//
// The functional executor's default HMMA semantics are idealized: one FP32
// dot product of the eight FP16 products, rounded once to the accumulator
// type (`sim/mma_exec.hpp`). Two related-work papers pin down what the
// hardware unit actually does (see docs/numerics.md for the mapping):
//
//  * "An SMT Formalization of Mixed-Precision Matrix Multiplication"
//    formalizes the per-generation step semantics: a fused dot product of a
//    fixed number of exact FP16 products plus the accumulator, summed in
//    wide intermediate precision and rounded ONCE per step.
//  * "Accurate Models of NVIDIA Tensor Cores" characterizes the rounding
//    mode (round-toward-zero for FP32 accumulation on Volta/Turing,
//    round-to-nearest-even at the FP16 output conversion) and full
//    subnormal support on inputs and outputs.
//
// This module implements that model exactly, with no floating-point
// arithmetic in the accumulation path: every term (the incoming accumulator
// plus `terms_per_step` exact FP16 products) is converted to a shared
// fixed-point scale of 2^-149 and summed in a 320-bit two's-complement
// accumulator, which represents the 5-term left-to-right fused sum exactly
// — so the single final rounding is correct by construction. HMMA.1688
// (k = 8) issues two sequential 4-term steps; the step boundary is the only
// place the model rounds mid-instruction, which is what makes chunk-order
// sensitivity and double rounding observable (tests/test_numerics.cpp).
//
// Everything here is deterministic and host-FPU-independent.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/half.hpp"

namespace tc::numerics {

/// Which HMMA math the functional executor runs. kIdealized is the historic
/// semantics every recorded golden fixture was produced with; kBitAccurate
/// is the SMT-formalization model below. Threaded through `sim::Launch`,
/// `core::HgemmConfig` and the `tcgemm_cli numerics` subcommand.
enum class NumericsMode : std::uint8_t {
  kIdealized = 0,
  kBitAccurate = 1,
};

[[nodiscard]] const char* numerics_mode_name(NumericsMode mode);
/// Parses "idealized" / "bitaccurate" (the CLI spelling). Returns false and
/// leaves `out` untouched on anything else.
[[nodiscard]] bool parse_numerics_mode(std::string_view name, NumericsMode& out);

/// Per-generation knobs of the SMT model. The defaults are the Turing
/// (sm_75) instantiation this simulator targets; other generations are a
/// different parameterization, not different code (docs/numerics.md
/// "adding a generation").
struct GenerationModel {
  /// FP16 products fused per accumulate step (4 on Volta/Turing: HMMA.1688
  /// executes k = 8 as two sequential steps, rounding between them).
  int terms_per_step = 4;
  /// FP32-accumulate steps round toward zero (Volta/Turing). When false the
  /// step rounds to nearest-even instead (the idealized assumption).
  bool f32_round_rz = true;
  /// Flush subnormal FP16 step results to zero. Turing keeps subnormals
  /// (its key numeric advantage over the FP16 FPU path); FTZ generations
  /// set this. Inputs are never flushed in either case.
  bool f16_ftz_out = false;
  /// Canonical quiet-NaN bit patterns the unit emits: input NaN payloads
  /// are not propagated.
  std::uint32_t qnan32 = 0x7FC00000u;
  std::uint16_t qnan16 = 0x7E00u;
};

/// The default model for this simulator's target generation.
[[nodiscard]] inline GenerationModel turing_model() { return GenerationModel{}; }

/// One FP32-accumulate fused step: c + a[0]*b[0] + ... + a[n-1]*b[n-1] with
/// exact products, exact wide accumulation, and a single rounding to
/// binary32 (round-toward-zero under the default model; overflow saturates
/// to the maximum finite value, since RZ never rounds up to infinity).
/// n must be in [0, 8].
[[nodiscard]] float fdp_step_f32(float c, const half* a, const half* b, int n,
                                 const GenerationModel& model = GenerationModel{});

/// One FP16-accumulate fused step, rounded once to binary16 with
/// round-to-nearest-even; subnormal results are exact unless the model
/// flushes them. n must be in [0, 8].
[[nodiscard]] half fdp_step_f16(half c, const half* a, const half* b, int n,
                                const GenerationModel& model = GenerationModel{});

/// One HMMA element with k = 8: sequential fused steps of
/// `model.terms_per_step` products each, left to right — the accumulator
/// rounds at every step boundary.
[[nodiscard]] float hmma_dot8_f32(float c, const half* a, const half* b,
                                  const GenerationModel& model = GenerationModel{});
[[nodiscard]] half hmma_dot8_f16(half c, const half* a, const half* b,
                                 const GenerationModel& model = GenerationModel{});

}  // namespace tc::numerics
