// The classic public HGEMM entry points (core/hgemm.hpp), implemented as
// trivial GemmOp instantiations of the tc::op lowering. They live here — not
// in tc_core — because the op layer sits above the kernel library. The
// lowered trivial plan allocates, uploads and launches in exactly the
// historic single-kernel order, so outputs (and device memory layout) are
// byte-identical to the pre-GemmOp implementation; tests/test_equivalence
// pins that with FNV-1a digests.
#include "common/error.hpp"
#include "core/hgemm.hpp"
#include "op/op.hpp"

namespace tc::core {

HalfMatrix run_hgemm(driver::Device& dev, const HalfMatrix& a, const HalfMatrix& bt,
                     const HgemmConfig& cfg) {
  TC_CHECK(a.cols() == bt.cols(), "A (m x k) and B^T (n x k): k mismatch");
  op::GemmOp gemm;
  gemm.shape = {a.rows(), bt.rows(), a.cols()};
  gemm.split_k = cfg.split_k;  // a split-K tile config lowers to the 2-kernel plan
  HalfMatrix c(a.rows(), bt.rows());
  op::OpInputs in;
  in.a = std::span(a.data(), a.size());
  in.bt = std::span(bt.data(), bt.size());
  op::run_gemm_op(dev, gemm, in, std::span(c.data(), c.size()), cfg);
  return c;
}

HalfMatrix run_hgemm_axpby(driver::Device& dev, const HalfMatrix& a, const HalfMatrix& bt,
                           const HalfMatrix& c_in, float alpha, float beta,
                           const HgemmConfig& cfg) {
  TC_CHECK(a.cols() == bt.cols(), "A (m x k) and B^T (n x k): k mismatch");
  TC_CHECK(c_in.rows() == a.rows() && c_in.cols() == bt.rows(), "C shape mismatch");
  op::GemmOp gemm;
  gemm.shape = {a.rows(), bt.rows(), a.cols()};
  gemm.split_k = cfg.split_k;
  gemm.epilogue.alpha = alpha;
  gemm.epilogue.beta = beta;
  HalfMatrix c(a.rows(), bt.rows());
  op::OpInputs in;
  in.a = std::span(a.data(), a.size());
  in.bt = std::span(bt.data(), bt.size());
  in.c_in = std::span(c_in.data(), c_in.size());
  op::run_gemm_op(dev, gemm, in, std::span(c.data(), c.size()), cfg);
  return c;
}

}  // namespace tc::core
