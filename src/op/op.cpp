#include "op/op.hpp"

#include <algorithm>

#include "check/hazard.hpp"
#include "common/error.hpp"
#include "device/occupancy.hpp"
#include "mem/global_mem.hpp"
#include "sass/diag.hpp"
#include "sass/validator.hpp"
#include "sim/launch.hpp"
#include "sim/timed_device.hpp"

namespace tc::op {

namespace {

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

void check_op(const GemmOp& g) {
  TC_CHECK(g.shape.m >= 1 && g.shape.n >= 1 && g.shape.k >= 1, "GemmOp shape must be non-empty");
  TC_CHECK(g.batch.count >= 1, "GemmOp batch count must be >= 1");
  const auto check_stride = [&](std::size_t stride, std::size_t plane, const char* which) {
    TC_CHECK(stride == 0 || stride >= plane,
             std::string("GemmOp ") + which + " batch stride smaller than one plane");
  };
  check_stride(g.batch.stride_a, g.shape.m * g.shape.k, "A");
  check_stride(g.batch.stride_b, g.shape.n * g.shape.k, "B");
  check_stride(g.batch.stride_c, g.shape.m * g.shape.n, "C");
}

/// Hard gate shared by both execution entry points: no program of a lowered
/// plan reaches a simulator engine unvalidated or with hazard diagnostics.
void gate(const PlannedLaunch& launch) {
  sass::validate(launch.program);
  const auto diags = check::find_hazards(launch.program);
  TC_CHECK(diags.empty(), "GemmOp lowering produced a hazardous kernel: " +
                              launch.program.name + " — " + sass::format(diags.front()));
}

/// Whether the lowered kernels read the previous C (generation-time
/// condition: beta as a *half* immediate, matching the fused tail).
bool reloads_c(const EpilogueSpec& ep) { return half(ep.beta).to_float() != 0.0f; }

}  // namespace

OpPlan lower(const GemmOp& gemm, const core::HgemmConfig& cfg) {
  check_op(gemm);
  TC_CHECK(cfg.split_k == 1 || cfg.split_k == gemm.split_k,
           "tile config split_k must be 1 or match the op's split_k");

  OpPlan plan;
  plan.op = gemm;
  plan.cfg = cfg;
  plan.cfg.split_k = gemm.split_k;
  plan.cfg.check();
  plan.contract = plan.cfg.contract_shape(gemm.shape);
  plan.slice_k = plan.cfg.slice_k(plan.contract);
  plan.fused = gemm.epilogue.fusible() && gemm.split_k == 1;

  const auto batch = static_cast<std::uint32_t>(gemm.batch.count);
  const core::KernelVariant variant{.batched = gemm.batch.count > 1};
  const core::Epilogue main_ep = plan.fused ? gemm.epilogue.scalars() : core::Epilogue{};

  PlannedLaunch main;
  main.role = LaunchRole::kMain;
  main.program = core::hgemm_kernel(plan.cfg, plan.contract, main_ep, variant);
  main.grid_x = static_cast<std::uint32_t>(plan.contract.n / static_cast<std::size_t>(plan.cfg.bn));
  main.grid_y = static_cast<std::uint32_t>(plan.contract.m / static_cast<std::size_t>(plan.cfg.bm));
  main.grid_z = batch * static_cast<std::uint32_t>(gemm.split_k);
  plan.launches.push_back(std::move(main));

  if (!plan.fused) {
    plan.workspace_elems = static_cast<std::size_t>(batch) *
                           static_cast<std::size_t>(gemm.split_k) * plan.contract.m *
                           plan.contract.n;
    core::ReducePlan rp;
    rp.m = plan.contract.m;
    rp.n = plan.contract.n;
    rp.parts = gemm.split_k;
    rp.epilogue = gemm.epilogue.scalars();
    rp.bias = gemm.epilogue.bias;
    PlannedLaunch reduce;
    reduce.role = LaunchRole::kReduce;
    reduce.program = core::reduce_epilogue_kernel(rp);
    reduce.grid_x = static_cast<std::uint32_t>(ceil_div(plan.contract.n, 256));
    reduce.grid_y = static_cast<std::uint32_t>(plan.contract.m);
    reduce.grid_z = batch;
    plan.launches.push_back(std::move(reduce));
  }
  return plan;
}

void run_gemm_op(driver::Device& dev, const GemmOp& gemm, const OpInputs& in,
                 std::span<half> out, const core::HgemmConfig& cfg, const OpExec& exec) {
  const OpPlan plan = lower(gemm, cfg);
  for (const auto& launch : plan.launches) gate(launch);

  const std::size_t m = gemm.shape.m;
  const std::size_t n = gemm.shape.n;
  const std::size_t k = gemm.shape.k;
  const std::size_t mp = plan.contract.m;
  const std::size_t np = plan.contract.n;
  const std::size_t kp = plan.contract.k;
  const auto batch = static_cast<std::size_t>(gemm.batch.count);
  const std::size_t sa = gemm.batch.a_stride(gemm.shape);
  const std::size_t sb = gemm.batch.b_stride(gemm.shape);
  const std::size_t sc = gemm.batch.c_stride(gemm.shape);
  const bool reload = reloads_c(gemm.epilogue);

  TC_CHECK(in.a.size() >= (batch - 1) * sa + m * k, "GemmOp A span too small");
  TC_CHECK(in.bt.size() >= (batch - 1) * sb + n * k, "GemmOp B^T span too small");
  TC_CHECK(!reload || in.c_in.size() >= (batch - 1) * sc + m * n,
           "GemmOp C input span too small (beta != 0)");
  TC_CHECK(!gemm.epilogue.bias || in.bias.size() >= n, "GemmOp bias span too small");
  TC_CHECK(out.size() >= (batch - 1) * sc + m * n, "GemmOp output span too small");

  // Gather user batch planes into dense zero-padded contract planes. Device
  // buffers are allocated in the same A, B, C order as the classic
  // single-kernel path, so the trivial GemmOp is byte-identical to it.
  const auto gather = [](std::span<const half> src, std::size_t stride, std::size_t count,
                         std::size_t rows, std::size_t cols, std::size_t rows_to,
                         std::size_t cols_to) {
    std::vector<half> dst(count * rows_to * cols_to);
    for (std::size_t b = 0; b < count; ++b) {
      for (std::size_t r = 0; r < rows; ++r) {
        const half* s = &src[b * stride + r * cols];
        half* d = &dst[b * rows_to * cols_to + r * cols_to];
        std::copy(s, s + cols, d);
      }
    }
    return dst;
  };
  const std::vector<half> a_pad = gather(in.a, sa, batch, m, k, mp, kp);
  const std::vector<half> bt_pad = gather(in.bt, sb, batch, n, k, np, kp);

  auto da = dev.alloc<half>(a_pad.size());
  auto db = dev.alloc<half>(bt_pad.size());
  auto dc = dev.alloc<half>(batch * mp * np);
  dev.upload(da, std::span<const half>(a_pad));
  dev.upload(db, std::span<const half>(bt_pad));
  if (reload) {
    const std::vector<half> c_pad = gather(in.c_in, sc, batch, m, n, mp, np);
    dev.upload(dc, std::span<const half>(c_pad));
  }
  driver::DevPtr<half> dw;
  if (plan.workspace_elems > 0) dw = dev.alloc<half>(plan.workspace_elems);
  driver::DevPtr<half> dbias;
  if (gemm.epilogue.bias) {
    std::vector<half> bias_pad(np);
    std::copy(in.bias.begin(), in.bias.begin() + static_cast<std::ptrdiff_t>(n),
              bias_pad.begin());
    dbias = dev.alloc<half>(bias_pad.size());
    dev.upload(dbias, std::span<const half>(bias_pad));
  }

  if (exec.timing != nullptr) *exec.timing = {};
  for (const auto& planned : plan.launches) {
    sim::Launch launch;
    launch.program = &planned.program;
    launch.grid_x = planned.grid_x;
    launch.grid_y = planned.grid_y;
    launch.grid_z = planned.grid_z;
    launch.numerics = plan.cfg.numerics;
    launch.engine = plan.cfg.engine;
    if (planned.role == LaunchRole::kMain) {
      launch.params = {da.addr, db.addr, plan.fused ? dc.addr : dw.addr};
    } else {
      launch.params = {dw.addr, dc.addr};
      if (gemm.epilogue.bias) launch.params.push_back(dbias.addr);
    }
    if (exec.timed) {
      launch.launch_order = plan.cfg.launch_order;
      launch.supertile_width = plan.cfg.supertile_width;
      const device::Occupancy occ = device::occupancy(dev.spec(), planned.program);
      sim::TimedDeviceConfig tdc = dev.timed_full_device(occ.ctas_per_sm);
      tdc.threads = exec.threads;
      const sim::DeviceResult dr = dev.run_timed_device(launch, tdc);
      if (exec.timing != nullptr) {
        exec.timing->launch_cycles.push_back(dr.device_cycles);
        exec.timing->device_cycles += dr.device_cycles;
        if (planned.role == LaunchRole::kMain) {
          exec.timing->main_l2_hit_rate = dr.l2_hit_rate;
          exec.timing->main_sms_used = dr.sms_used;
        }
      }
    } else {
      dev.launch(launch);
    }
  }

  std::vector<half> c_full(batch * mp * np);
  dev.download(std::span<half>(c_full), dc);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t r = 0; r < m; ++r) {
      const half* s = &c_full[b * mp * np + r * np];
      std::copy(s, s + n, &out[b * sc + r * n]);
    }
  }
}

std::vector<half> run_gemm_op(driver::Device& dev, const GemmOp& gemm, const OpInputs& in,
                              const core::HgemmConfig& cfg) {
  const auto batch = static_cast<std::size_t>(gemm.batch.count);
  std::vector<half> out((batch - 1) * gemm.batch.c_stride(gemm.shape) +
                        gemm.shape.m * gemm.shape.n);
  run_gemm_op(dev, gemm, in, std::span<half>(out), cfg);
  return out;
}

void gemm_op_ref(const GemmOp& gemm, const OpInputs& in, std::span<half> out,
                 const core::HgemmConfig& cfg, numerics::NumericsMode mode) {
  check_op(gemm);
  core::HgemmConfig c = cfg;
  c.split_k = gemm.split_k;
  c.check();
  const GemmShape contract = c.contract_shape(gemm.shape);
  const std::size_t slice = c.slice_k(contract);

  const std::size_t m = gemm.shape.m;
  const std::size_t n = gemm.shape.n;
  const std::size_t k = gemm.shape.k;
  const auto batch = static_cast<std::size_t>(gemm.batch.count);
  const std::size_t sa = gemm.batch.a_stride(gemm.shape);
  const std::size_t sb = gemm.batch.b_stride(gemm.shape);
  const std::size_t sc = gemm.batch.c_stride(gemm.shape);
  const bool reload = reloads_c(gemm.epilogue);
  TC_CHECK(in.a.size() >= (batch - 1) * sa + m * k, "GemmOp A span too small");
  TC_CHECK(in.bt.size() >= (batch - 1) * sb + n * k, "GemmOp B^T span too small");
  TC_CHECK(!reload || in.c_in.size() >= (batch - 1) * sc + m * n,
           "GemmOp C input span too small (beta != 0)");
  TC_CHECK(!gemm.epilogue.bias || in.bias.size() >= n, "GemmOp bias span too small");
  TC_CHECK(out.size() >= (batch - 1) * sc + m * n, "GemmOp output span too small");

  const EpilogueSpec& ep = gemm.epilogue;
  const half ah(ep.alpha);
  const half bh(ep.beta);

  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        // Split-K partials: each slice accumulates from zero in k-chunks of
        // 8 (one HMMA.1688.F16 step), then the partials fold in slice order
        // with HADD2 — exactly what the workspace + reduction kernel do.
        half acc(0.0f);
        for (int s = 0; s < gemm.split_k; ++s) {
          half part(0.0f);
          for (std::size_t l0 = static_cast<std::size_t>(s) * slice;
               l0 < static_cast<std::size_t>(s + 1) * slice; l0 += 8) {
            half av[8];
            half bv[8];
            for (std::size_t t = 0; t < 8; ++t) {
              const std::size_t l = l0 + t;
              av[t] = l < k ? in.a[b * sa + i * k + l] : half(0.0f);
              bv[t] = l < k ? in.bt[b * sb + j * k + l] : half(0.0f);
            }
            if (mode == numerics::NumericsMode::kIdealized) {
              float chunk = part.to_float();
              for (std::size_t t = 0; t < 8; ++t) chunk += av[t].to_float() * bv[t].to_float();
              part = half(chunk);
            } else {
              part = numerics::hmma_dot8_f16(part, av, bv);
            }
          }
          acc = s == 0 ? part : acc + part;  // HADD2 fold
        }

        // Epilogue with the kernels' exact rounding sequence (fused tail and
        // reduction kernel are identical here): round(beta * Cold) via
        // HMUL2, round(alpha * acc + that) via HFMA2, bias via HADD2, then
        // the activation op.
        if (!ep.is_default()) {
          half scaled(0.0f);
          if (reload) scaled = bh * in.c_in[b * sc + i * n + j];
          acc = fma_round_half(ah, acc, scaled);
          if (ep.bias) acc = acc + in.bias[j];
          if (ep.act == Activation::kRelu) acc = max_half(acc, half::from_bits(0));
          if (ep.act == Activation::kGelu) acc = gelu_half(acc);
        }
        out[b * sc + i * n + j] = acc;
      }
    }
  }
}

std::vector<half> gemm_op_ref(const GemmOp& gemm, const OpInputs& in,
                              const core::HgemmConfig& cfg, numerics::NumericsMode mode) {
  const auto batch = static_cast<std::size_t>(gemm.batch.count);
  std::vector<half> out((batch - 1) * gemm.batch.c_stride(gemm.shape) +
                        gemm.shape.m * gemm.shape.n);
  gemm_op_ref(gemm, in, std::span<half>(out), cfg, mode);
  return out;
}

OpTiming time_gemm_op(const device::DeviceSpec& spec, const OpPlan& plan,
                      const TimedOpOptions& opts) {
  OpTiming t;
  const auto batch = static_cast<std::size_t>(plan.op.batch.count);
  const std::size_t mp = plan.contract.m;
  const std::size_t np = plan.contract.n;
  const std::size_t kp = plan.contract.k;

  mem::GlobalMemory gmem;
  const auto a_addr = gmem.alloc(batch * mp * kp * 2);
  const auto b_addr = gmem.alloc(batch * np * kp * 2);
  const auto c_addr = gmem.alloc(batch * mp * np * 2);
  const std::uint32_t w_addr =
      plan.workspace_elems > 0 ? gmem.alloc(plan.workspace_elems * 2) : c_addr;
  const std::uint32_t bias_addr = plan.op.epilogue.bias ? gmem.alloc(np * 2) : c_addr;

  for (const auto& planned : plan.launches) {
    gate(planned);
    const device::Occupancy occ = device::occupancy(spec, planned.program);

    sim::Launch launch;
    launch.program = &planned.program;
    launch.grid_x = planned.grid_x;
    launch.grid_y = planned.grid_y;
    launch.grid_z = planned.grid_z;
    launch.launch_order = plan.cfg.launch_order;
    launch.supertile_width = plan.cfg.supertile_width;
    launch.numerics = plan.cfg.numerics;
    launch.engine = plan.cfg.engine;
    if (planned.role == LaunchRole::kMain) {
      launch.params = {a_addr, b_addr, plan.fused ? c_addr : w_addr};
    } else {
      launch.params = {w_addr, c_addr};
      if (plan.op.epilogue.bias) launch.params.push_back(bias_addr);
    }

    sim::TimedDeviceConfig dc;
    dc.spec = spec;
    dc.ctas_per_sm = occ.ctas_per_sm;
    dc.threads = opts.threads;
    dc.skip_mma_math = opts.skip_mma_math;
    dc.forced_l2_hit_rate =
        planned.role == LaunchRole::kMain ? opts.forced_l2_hit_rate : -1.0;
    sim::TimedDevice dev(dc, gmem);
    const sim::DeviceResult dr = dev.run(launch);

    t.launch_cycles.push_back(dr.device_cycles);
    t.device_cycles += dr.device_cycles;
    if (planned.role == LaunchRole::kMain) {
      t.main_l2_hit_rate = dr.l2_hit_rate;
      t.main_sms_used = dr.sms_used;
    }
  }
  return t;
}

}  // namespace tc::op
