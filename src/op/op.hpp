// tc::op — the driver-level operation graph over the HGEMM pipeline.
//
// A GemmOp describes one logical tensor-core operation: a (possibly
// strided-batched) C = alpha * A * B + beta * C with an optional bias row,
// activation tail, and a split-K factor. lower() turns it into an ordered
// list of kernel launches — the batched/split-K main GEMM pass plus, when
// the epilogue cannot ride in the main kernel's tail, the reduction /
// epilogue kernel — and run_gemm_op() / time_gemm_op() execute that plan
// functionally (bitwise against gemm_op_ref) or on the cycle-level device
// model (per-launch grids, inter-launch overhead).
//
// Lowering rules (see docs/ops.md):
//  * split_k == 1 and a fusible epilogue  -> one launch, epilogue fused
//    into the main kernel's STG tail. The trivial GemmOp (batch 1, no
//    split, default epilogue) is byte-identical to the classic run_hgemm
//    kernel and launch.
//  * bias is never fusible (the fused tail has no spare register for the
//    bias pointer), so it forces the separate epilogue pass.
//  * split_k > 1 always stores raw partial accumulators to the workspace
//    and moves the whole epilogue into the reduction kernel, which folds
//    the partials in slice order with HADD2 before applying it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/matrix.hpp"
#include "core/config.hpp"
#include "core/kernel_gen.hpp"
#include "driver/device.hpp"
#include "numerics/numerics.hpp"
#include "sass/program.hpp"

namespace tc::op {

using core::Activation;

/// Op-level epilogue: alpha/beta scaling, optional per-column bias row,
/// optional activation. Scaling and activation can fuse into the main
/// kernel's tail; bias cannot (fusion legality, docs/ops.md).
struct EpilogueSpec {
  float alpha = 1.0f;
  float beta = 0.0f;
  bool bias = false;
  Activation act = Activation::kNone;

  [[nodiscard]] bool is_default() const {
    return alpha == 1.0f && beta == 0.0f && !bias && act == Activation::kNone;
  }
  /// Whether the epilogue can ride in the main GEMM kernel's STG tail.
  [[nodiscard]] bool fusible() const { return !bias; }
  [[nodiscard]] core::Epilogue scalars() const { return {alpha, beta, act}; }
};

/// Strided batch axis. Strides are element counts between the starts of
/// consecutive batch planes in the *user* buffers; 0 means dense (m*k for A,
/// n*k for B^T, m*n for C). Device-side planes are always dense padded
/// contract planes — user strides apply at the host gather/scatter.
struct BatchSpec {
  int count = 1;
  std::size_t stride_a = 0;
  std::size_t stride_b = 0;
  std::size_t stride_c = 0;

  [[nodiscard]] std::size_t a_stride(const GemmShape& s) const {
    return stride_a != 0 ? stride_a : s.m * s.k;
  }
  [[nodiscard]] std::size_t b_stride(const GemmShape& s) const {
    return stride_b != 0 ? stride_b : s.n * s.k;
  }
  [[nodiscard]] std::size_t c_stride(const GemmShape& s) const {
    return stride_c != 0 ? stride_c : s.m * s.n;
  }
};

/// One logical tensor-core operation. The default-constructed axes make it
/// collapse to the plain single-kernel HGEMM.
struct GemmOp {
  GemmShape shape;  // per-batch user m, n, k
  BatchSpec batch;
  int split_k = 1;  // power of two in [1, 64]
  EpilogueSpec epilogue;
};

/// Role of one launch inside a lowered plan.
enum class LaunchRole { kMain, kReduce };

/// One kernel launch of a lowered GemmOp, in dependency order. Parameter
/// conventions: main = {A, B^T, out} where out is C (fused) or the split-K
/// workspace; reduce = {workspace, C, bias?}.
struct PlannedLaunch {
  LaunchRole role = LaunchRole::kMain;
  sass::Program program;
  std::uint32_t grid_x = 1;
  std::uint32_t grid_y = 1;
  std::uint32_t grid_z = 1;
};

/// A lowered GemmOp: padded geometry plus the ordered launch list.
struct OpPlan {
  GemmOp op;
  core::HgemmConfig cfg;  // with op.split_k applied
  GemmShape contract;     // padded per-batch {mp, np, kp}
  std::size_t slice_k = 0;
  bool fused = false;               // epilogue fused into the main tail
  std::size_t workspace_elems = 0;  // halves; 0 when the plan has no reduce pass
  std::vector<PlannedLaunch> launches;
};

/// Lowers `op` with tile config `cfg` (whose split_k must be 1 or equal to
/// op.split_k). Every emitted program went through tc::sched::schedule; the
/// execution entry points below additionally hard-gate each one through
/// sass::validate + check::find_hazards.
[[nodiscard]] OpPlan lower(const GemmOp& op, const core::HgemmConfig& cfg);

/// Host-side views of the op operands. c_in is read only when beta != 0
/// (batch planes at the C stride); bias is n halves, read only when
/// epilogue.bias.
struct OpInputs {
  std::span<const half> a;
  std::span<const half> bt;
  std::span<const half> c_in;
  std::span<const half> bias;
};

/// Cycle-level cost of one lowered plan on the multi-SM device model.
struct OpTiming {
  /// Per-launch device cycles, in plan order.
  std::vector<std::uint64_t> launch_cycles;
  /// Sum of launch_cycles (no overhead).
  std::uint64_t device_cycles = 0;
  /// Main-pass emergent (or forced) L2 hit rate and SMs used.
  double main_l2_hit_rate = 0.0;
  int main_sms_used = 0;

  /// Cost with a per-launch overhead charge — the amortization story of
  /// batched GEMM vs a loop of singles uses every launch; relative tuner
  /// ranking charges only the launches beyond the first (the common first
  /// launch cancels).
  [[nodiscard]] std::uint64_t total_with_overhead(std::uint64_t overhead) const {
    return device_cycles + overhead * launch_cycles.size();
  }
  [[nodiscard]] std::uint64_t total_extra_overhead(std::uint64_t overhead) const {
    return device_cycles + overhead * (launch_cycles.empty() ? 0 : launch_cycles.size() - 1);
  }
};

/// Execution engine selection for run_gemm_op.
struct OpExec {
  /// false: functional executor (correctness semantics, no timing).
  /// true: cycle-level TimedDevice per launch (full math — outputs stay
  /// bitwise identical to the functional engine), occupancy from
  /// device::occupancy, per-launch cycles reported through `timing`.
  bool timed = false;
  int threads = 1;  // TimedDevice host workers; 1 = deterministic lockstep
  OpTiming* timing = nullptr;  // optional, filled when timed
};

/// Executes the lowered plan on `dev` and scatters the batch outputs into
/// `out` at the C stride (gap elements are left untouched).
void run_gemm_op(driver::Device& dev, const GemmOp& gemm, const OpInputs& in,
                 std::span<half> out, const core::HgemmConfig& cfg, const OpExec& exec = {});

/// Convenience: dense output buffer at the op's C stride, gaps zero.
[[nodiscard]] std::vector<half> run_gemm_op(driver::Device& dev, const GemmOp& gemm,
                                            const OpInputs& in, const core::HgemmConfig& cfg);

/// Bit-exact host reference for the lowered semantics under `mode`:
/// per-slice chunked HMMA accumulation (idealized single-rounding or the
/// bit-accurate two-step model), slice-order HADD2 folding, and the fused
/// tail's exact epilogue rounding sequence. Same output layout as
/// run_gemm_op.
void gemm_op_ref(const GemmOp& gemm, const OpInputs& in, std::span<half> out,
                 const core::HgemmConfig& cfg,
                 numerics::NumericsMode mode = numerics::NumericsMode::kIdealized);
[[nodiscard]] std::vector<half> gemm_op_ref(const GemmOp& gemm, const OpInputs& in,
                                            const core::HgemmConfig& cfg,
                                            numerics::NumericsMode mode =
                                                numerics::NumericsMode::kIdealized);

struct TimedOpOptions {
  int threads = 1;  // 1 = deterministic lockstep device
  bool skip_mma_math = true;
  /// Forced L2 hit rate for the *main* pass (tune's reuse-model input);
  /// negative = emergent. The reduce pass always runs emergent — each
  /// launch starts with a cold L2 (conservative: no inter-kernel reuse).
  double forced_l2_hit_rate = -1.0;
};

/// Runs every launch of the plan in order on the cycle-level device model
/// (own GlobalMemory, zero-filled operand buffers — contents are irrelevant
/// for timing), hard-gating each program through sass::validate +
/// check::find_hazards. Per-launch occupancy comes from device::occupancy.
[[nodiscard]] OpTiming time_gemm_op(const device::DeviceSpec& spec, const OpPlan& plan,
                                    const TimedOpOptions& opts = {});

}  // namespace tc::op
