#include "serve/traffic.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace tc::serve {

namespace {

struct PaletteEntry {
  GemmShape shape;
  int weight;  // integer popularity weight (Zipf-ish skew)
};

// Decode-step GEMMs dominate; the rare large entry models a prefill burst.
// m is jittered per request (below) to exercise shape bucketing; the jitter
// never crosses a power-of-two bucket edge, so the palette maps to a small,
// stable set of tuning buckets.
constexpr PaletteEntry kPalette[] = {
    {{256, 256, 64}, 32},  //
    {{128, 256, 64}, 16},  //
    {{64, 64, 64}, 8},     //
    {{64, 512, 64}, 4},    //
    {{128, 64, 128}, 2},   //
    {{512, 256, 64}, 1},   // prefill
};

}  // namespace

std::vector<Request> llm_traffic(const TrafficOptions& opt) {
  TC_CHECK(opt.requests >= 0, "negative request count");
  TC_CHECK(opt.tenants >= 1, "traffic needs at least one tenant");
  Rng rng(opt.seed);

  int palette_total = 0;
  for (const PaletteEntry& p : kPalette) palette_total += p.weight;
  // Tenant demand skew: tenant t draws with weight (tenants - t).
  int tenant_total = 0;
  for (int t = 0; t < opt.tenants; ++t) tenant_total += opt.tenants - t;

  std::vector<Request> out;
  out.reserve(static_cast<std::size_t>(opt.requests));
  std::uint64_t clock = 0;
  for (int i = 0; i < opt.requests; ++i) {
    // Exponential inter-arrival gap (Poisson process in virtual cycles).
    const double u = static_cast<double>(rng.next_float(0.0f, 1.0f));
    clock += static_cast<std::uint64_t>(-opt.mean_gap_cycles * std::log(1.0 - u));

    auto pick = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(palette_total)));
    GemmShape shape = kPalette[0].shape;
    for (const PaletteEntry& p : kPalette) {
      if (pick < p.weight) {
        shape = p.shape;
        break;
      }
      pick -= p.weight;
    }
    // Jitter m downward by < 1/4 of its bucket: distinct user shapes, same
    // tuning bucket (bucket_dim rounds up to the power of two it came from).
    shape.m -= rng.next_below(shape.m / 4);

    auto tpick = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(tenant_total)));
    int tenant = 0;
    for (int t = 0; t < opt.tenants; ++t) {
      if (tpick < opt.tenants - t) {
        tenant = t;
        break;
      }
      tpick -= opt.tenants - t;
    }

    out.push_back({static_cast<std::uint64_t>(i), tenant, shape, clock});
  }
  return out;
}

}  // namespace tc::serve
