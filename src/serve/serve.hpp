// tc::serve — multi-tenant GEMM serving over the simulated device fleet.
//
// The ROADMAP's "millions of users" scenario: production traffic is a
// *stream* of shapes, and the tuned-kernel payoff only counts if a warm
// server answers every request from the persistent tuning cache
// (tune::TuneCache, the cublasLt-heuristics pattern) without ever re-tuning
// on the hot path. The server here is a discrete-event simulation of that
// fleet: requests carry arrival timestamps in device cycles, a bounded
// admission queue sheds overload, a start-time-fair weighted scheduler picks
// the next tenant, compatible requests (same tuning bucket, same tenant) are
// batched onto one worker pass, and each pass costs what the cycle-level
// multi-SM simulator (sim::TimedDevice) says the batched kernel costs.
//
// Everything — latency percentiles, QPS, wall-clock milliseconds — is
// derived from the virtual device clock (spec.cycles_to_seconds), so the
// whole run is bitwise deterministic: identical options + request stream
// give byte-identical metrics JSON regardless of the host thread count
// (`threads` only parallelizes cold-bucket tuning inside tc::tune, which is
// itself pinned deterministic). tests/test_serve.cpp holds this the same way
// test_tune holds the 1-vs-7-thread pin.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/matrix.hpp"
#include "device/spec.hpp"
#include "tune/cache.hpp"
#include "tune/space.hpp"

namespace tc::serve {

/// One GEMM request in the stream. The two trailing fields make a request
/// op-shaped (tc::op): both are defaulted so every pre-existing call site
/// and the traffic generator describe the classic single-GEMM request
/// unchanged.
struct Request {
  std::uint64_t id = 0;
  int tenant = 0;
  GemmShape shape{};
  std::uint64_t arrival_cycle = 0;  // virtual device-clock timestamp
  /// Op batch axis: the request is a strided-batched GEMM of `batch`
  /// independent `shape` problems (one CTA z plane each), served by a single
  /// batched kernel launch — launch overhead amortizes across the planes.
  int batch = 1;
  /// Element dtype; part of the tuning-bucket identity (tune::CacheKey).
  /// "f16" is the only type the kernel library generates today.
  std::string dtype = "f16";
};

struct ServerOptions {
  device::DeviceSpec spec;
  /// Simulated TimedDevice workers (whole devices). More workers = more
  /// concurrent passes; affects results deterministically.
  int workers = 2;
  /// Host threads for cold-bucket tuning (forwarded to tune::TuneOptions).
  /// Never affects results — only how fast a cold start warms up.
  int threads = 1;
  /// Admission bound: requests arriving while this many are queued are shed.
  std::size_t queue_capacity = 64;
  /// Max requests fused into one worker pass (same tenant + same bucket).
  int batch_max = 4;
  /// Weighted-fair shares, one per tenant; empty = every observed tenant
  /// gets weight 1. Tenant t of a request indexes this vector.
  std::vector<int> tenant_weights;
  /// Cold-bucket tuning: the search space / budget / seed spent on a cache
  /// miss. Engine is always the timed device (bucket shapes are small).
  tune::SearchSpace space{};
  int tune_budget = 6;
  std::uint64_t tune_seed = 1;
  /// Persistent cache file: loaded at construction, appended after every
  /// miss. Empty = in-memory only (still warm across run() calls).
  std::string cache_path;
};

/// prof-style counter set for one run (exact integers, no rates).
struct Counters {
  std::uint64_t requests = 0;   // offered = accepted + shed
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;       // rejected by admission control
  std::uint64_t completed = 0;
  std::uint64_t batches = 0;            // worker passes dispatched
  std::uint64_t batched_requests = 0;   // requests carried by those passes
  std::uint64_t cache_lookups = 0;      // one per pass
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;       // each miss runs the tuner once
  std::uint64_t tune_evals = 0;         // timed-budget evaluations spent (0 when warm)
  std::uint64_t hazard_diags = 0;       // from the per-kernel hard gate; always 0
  std::uint64_t sim_passes = 0;         // distinct TimedDevice cost simulations
  std::uint64_t worker_busy_cycles = 0; // summed over workers
};

struct TenantStats {
  int tenant = 0;
  int weight = 1;
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t busy_cycles = 0;  // worker cycles consumed by this tenant
  double share = 0.0;             // busy_cycles / total busy cycles
  double p50_cycles = 0.0;
  double p99_cycles = 0.0;
};

/// Per-request completion record (virtual cycles); exposed for tests and
/// trace-style analysis, not serialized into the metrics JSON.
struct Completion {
  std::uint64_t id = 0;
  int tenant = 0;
  std::uint64_t arrival_cycle = 0;
  std::uint64_t start_cycle = 0;
  std::uint64_t completion_cycle = 0;
  int batch = 1;  // requests fused into the pass that served this one
};

/// How many requests and worker passes one tuning bucket absorbed.
struct BucketStats {
  std::uint64_t requests = 0;  // requests dispatched against the bucket
  std::uint64_t batches = 0;   // worker passes dispatched against it
};

struct Metrics {
  Counters counters;
  std::uint64_t makespan_cycles = 0;  // last completion (virtual clock from 0)
  double mean_cycles = 0.0;
  double p50_cycles = 0.0;
  double p99_cycles = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double qps = 0.0;                 // completed / makespan seconds
  double cache_hit_rate = 0.0;      // hits / lookups
  double worker_utilization = 0.0;  // busy / (workers * makespan)
  /// Per-request batch-size distribution: completed requests keyed by how
  /// many requests were fused into the pass that served them. std::map so
  /// iteration (and the JSON) is deterministically sorted.
  std::map<int, std::uint64_t> batch_size_hist;
  /// Bucket-occupancy distribution, keyed by CacheKey::str().
  std::map<std::string, BucketStats> bucket_occupancy;
  std::vector<TenantStats> tenants;
  std::vector<Completion> completions;  // completion order (not in JSON)
};

/// Writes the deterministic metrics payload (the "serve" object body of the
/// tc-cli-v1 document). The writer must be positioned at a value slot.
void write_metrics_json(JsonWriter& j, const Metrics& m);

class Server {
 public:
  /// Loads the persistent cache from opt.cache_path (when set); rejected
  /// entries are reported in load_stats() and re-tuned on first use.
  explicit Server(ServerOptions opt);
  /// Starts from an in-memory cache image instead (bench warm starts).
  Server(ServerOptions opt, tune::TuneCache warm);

  /// Replays `requests` (sorted by arrival; ties by id) to completion and
  /// returns fresh metrics. The tuning cache and the pass-cost memo persist
  /// across calls, so a second run() on the same Server is a warm run.
  Metrics run(const std::vector<Request>& requests);

  [[nodiscard]] const tune::TuneCache& cache() const { return cache_; }
  [[nodiscard]] const tune::CacheLoadStats& load_stats() const { return load_stats_; }
  [[nodiscard]] const ServerOptions& options() const { return opt_; }

 private:
  struct PassCost {
    std::uint64_t cycles = 0;
    std::uint64_t hazard_diags = 0;
    bool simulated = false;  // true when this lookup ran the simulator
  };

  /// Winner config for `key`: cache hit, or tune-and-append on miss.
  const core::HgemmConfig& winner_for(const tune::CacheKey& key, Counters& c);
  /// Cycle cost of one pass: `fused` bucket-shaped requests concatenated
  /// along M, each an op batch of `batch` planes, executed as the winner's
  /// lowered GemmOp plan (split-K plans launch the reduction kernel too and
  /// are charged the inter-launch overhead).
  PassCost pass_cost(const core::HgemmConfig& cfg, const tune::CacheKey& key, int fused,
                     int batch);

  ServerOptions opt_;
  tune::TuneCache cache_;
  tune::CacheLoadStats load_stats_;
  /// Pass-cost memo: (config name, contract m, n, k, op batch) -> cycles.
  std::map<std::string, std::uint64_t> cost_memo_;
};

}  // namespace tc::serve
