#include "serve/serve.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <utility>

#include "common/error.hpp"
#include "device/occupancy.hpp"
#include "op/op.hpp"
#include "tune/tune.hpp"

namespace tc::serve {

namespace {

/// Nearest-rank percentile of an ascending-sorted sample (q in (0, 1]).
double percentile(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return static_cast<double>(sorted[std::min(idx, sorted.size() - 1)]);
}

struct TenantState {
  std::deque<const Request*> queue;
  double vtag = 0.0;  // SFQ virtual start tag
  TenantStats stats;
  std::vector<std::uint64_t> latencies;
};

}  // namespace

Server::Server(ServerOptions opt) : opt_(std::move(opt)) {
  if (!opt_.cache_path.empty()) {
    cache_ = tune::TuneCache::load(opt_.cache_path, &load_stats_);
  }
}

Server::Server(ServerOptions opt, tune::TuneCache warm)
    : opt_(std::move(opt)), cache_(std::move(warm)) {}

const core::HgemmConfig& Server::winner_for(const tune::CacheKey& key, Counters& c) {
  ++c.cache_lookups;
  if (const tune::CacheEntry* hit = cache_.find(key)) {
    ++c.cache_hits;
    return hit->cfg;
  }
  // Cold bucket: spend the tuning budget once, persist the winner. Tuning is
  // control-plane work — it costs host time but no virtual device cycles
  // (the pass still runs with the tuned winner); see docs/serving.md.
  ++c.cache_misses;
  tune::TuneOptions topt;
  topt.shape = tune::bucket_shape(key);
  topt.budget = opt_.tune_budget;
  topt.seed = opt_.tune_seed;
  topt.threads = opt_.threads;
  topt.engine = tune::Engine::kTimedDevice;
  topt.space = opt_.space;
  const tune::TuneResult r = tune::tune(opt_.spec, topt);
  c.tune_evals += static_cast<std::uint64_t>(r.prune.evaluated);
  const tune::Candidate& best = r.best();
  tune::CacheEntry e;
  e.key = key;
  e.cfg = best.cfg;
  e.sim_cycles = best.sim_cycles;
  e.budget = opt_.tune_budget;
  e.seed = opt_.tune_seed;
  e.engine = tune::engine_name(topt.engine);
  cache_.insert(std::move(e));
  if (!opt_.cache_path.empty()) cache_.save(opt_.cache_path);
  const tune::CacheEntry* stored = cache_.find(key);
  TC_CHECK(stored != nullptr, "tuning-cache insert lost key " + key.str());
  return stored->cfg;
}

Server::PassCost Server::pass_cost(const core::HgemmConfig& cfg, const tune::CacheKey& key,
                                   int fused, int batch) {
  // Fused requests concatenate along M (shared B operand — the LLM batching
  // shape); the request's own batch axis rides as the GemmOp's z-batched
  // planes. Lowering reuses the winner's split_k, so a split-K winner costs
  // its full multi-launch plan here.
  op::GemmOp gemm;
  gemm.shape = {static_cast<std::size_t>(fused) * key.m, key.n, key.k};
  gemm.batch.count = batch;
  gemm.split_k = cfg.split_k;
  const op::OpPlan plan = op::lower(gemm, cfg);
  const GemmShape s = plan.contract;

  std::string memo_key = tune::candidate_name(cfg) + "@" + std::to_string(s.m) + "x" +
                         std::to_string(s.n) + "x" + std::to_string(s.k);
  if (batch > 1) memo_key += "b" + std::to_string(batch);  // legacy keys unchanged
  if (const auto it = cost_memo_.find(memo_key); it != cost_memo_.end()) {
    return {it->second, 0, false};
  }

  // Same harness as tune::eval_timed_device: time_gemm_op hard-gates every
  // launch (validate + hazard scan — a diagnostic throws, so the counter
  // stays 0), then runs the lockstep full-grid simulation with the
  // model-pinned L2 hit rate on the main pass. Launches beyond the first are
  // charged the kernel-launch overhead; the first launch's overhead is
  // outside the virtual busy window, exactly as before.
  const device::Occupancy occ = device::occupancy(opt_.spec, plan.launches.front().program);
  op::TimedOpOptions topt;
  topt.threads = 1;  // lockstep: serving determinism rides on simulator determinism
  topt.skip_mma_math = true;
  topt.forced_l2_hit_rate = tune::predicted_l2_hit_rate(opt_.spec, plan.cfg, occ, s);
  const op::OpTiming t = op::time_gemm_op(opt_.spec, plan, topt);
  const std::uint64_t cycles = t.total_extra_overhead(opt_.spec.launch_overhead_cycles);

  cost_memo_.emplace(memo_key, cycles);
  return {cycles, 0, true};
}

Metrics Server::run(const std::vector<Request>& requests) {
  TC_CHECK(opt_.workers >= 1, "server needs at least one worker");
  TC_CHECK(opt_.batch_max >= 1, "batch_max must be >= 1");

  // Arrival order: (arrival_cycle, id) — the stream's canonical total order.
  std::vector<const Request*> arrivals;
  arrivals.reserve(requests.size());
  for (const Request& r : requests) arrivals.push_back(&r);
  std::sort(arrivals.begin(), arrivals.end(), [](const Request* a, const Request* b) {
    if (a->arrival_cycle != b->arrival_cycle) return a->arrival_cycle < b->arrival_cycle;
    return a->id < b->id;
  });

  std::size_t num_tenants = opt_.tenant_weights.size();
  for (const Request& r : requests) {
    TC_CHECK(r.tenant >= 0, "negative tenant id");
    TC_CHECK(r.batch >= 1, "request batch must be >= 1");
    TC_CHECK(r.dtype == "f16", "unsupported request dtype '" + r.dtype +
                                   "' (the kernel library generates f16 only)");
    num_tenants = std::max(num_tenants, static_cast<std::size_t>(r.tenant) + 1);
  }
  std::vector<TenantState> tenants(num_tenants);
  for (std::size_t t = 0; t < num_tenants; ++t) {
    tenants[t].stats.tenant = static_cast<int>(t);
    tenants[t].stats.weight =
        t < opt_.tenant_weights.size() ? opt_.tenant_weights[t] : 1;
    TC_CHECK(tenants[t].stats.weight >= 1, "tenant weights must be >= 1");
  }

  Metrics m;
  Counters& c = m.counters;
  c.requests = requests.size();

  // Simulated worker fleet: free ids (lowest first) + in-flight passes in a
  // min-heap keyed (completion cycle, dispatch seq) so ties resolve by
  // dispatch order.
  struct InFlight {
    std::uint64_t completion = 0;
    std::uint64_t seq = 0;
    int worker = 0;
    int tenant = 0;
    std::uint64_t start = 0;
    std::vector<const Request*> reqs;
  };
  const auto later = [](const InFlight& a, const InFlight& b) {
    if (a.completion != b.completion) return a.completion > b.completion;
    return a.seq > b.seq;
  };
  std::priority_queue<InFlight, std::vector<InFlight>, decltype(later)> inflight(later);
  std::vector<int> free_workers;
  for (int w = opt_.workers - 1; w >= 0; --w) free_workers.push_back(w);  // pop lowest id

  double global_vtime = 0.0;
  std::size_t queued_total = 0;
  std::uint64_t dispatch_seq = 0;
  std::vector<std::uint64_t> latencies;

  const auto dispatch = [&](std::uint64_t now) {
    while (!free_workers.empty() && queued_total > 0) {
      // SFQ: serve the backlogged tenant with the smallest (vtag, id).
      std::size_t pick = num_tenants;
      for (std::size_t t = 0; t < num_tenants; ++t) {
        if (tenants[t].queue.empty()) continue;
        if (pick == num_tenants || tenants[t].vtag < tenants[pick].vtag) pick = t;
      }
      TenantState& ts = tenants[pick];
      global_vtime = std::max(global_vtime, ts.vtag);

      // Batch from the queue head: FIFO within the tenant, fusing only
      // consecutive requests that share the tuning bucket (dtype included)
      // and the op batch axis.
      const Request& head = *ts.queue.front();
      const tune::CacheKey key = tune::cache_key(opt_.spec, head.shape, head.dtype);
      const int op_batch = head.batch;
      InFlight f;
      while (!ts.queue.empty() &&
             static_cast<int>(f.reqs.size()) < opt_.batch_max &&
             ts.queue.front()->batch == op_batch &&
             tune::cache_key(opt_.spec, ts.queue.front()->shape, ts.queue.front()->dtype) ==
                 key) {
        f.reqs.push_back(ts.queue.front());
        ts.queue.pop_front();
      }
      queued_total -= f.reqs.size();

      const core::HgemmConfig& cfg = winner_for(key, c);
      const PassCost pc = pass_cost(cfg, key, static_cast<int>(f.reqs.size()), op_batch);
      c.hazard_diags += pc.hazard_diags;
      if (pc.simulated) ++c.sim_passes;
      ++c.batches;
      c.batched_requests += f.reqs.size();
      BucketStats& bo = m.bucket_occupancy[key.str()];
      bo.requests += f.reqs.size();
      ++bo.batches;
      c.worker_busy_cycles += pc.cycles;
      ts.stats.busy_cycles += pc.cycles;
      ts.vtag += static_cast<double>(pc.cycles) / ts.stats.weight;

      f.worker = free_workers.back();
      free_workers.pop_back();
      f.tenant = static_cast<int>(pick);
      f.start = now;
      f.completion = now + pc.cycles;
      f.seq = dispatch_seq++;
      inflight.push(std::move(f));
    }
  };

  std::size_t ai = 0;
  while (ai < arrivals.size() || !inflight.empty()) {
    std::uint64_t now;
    if (!inflight.empty() &&
        (ai >= arrivals.size() || inflight.top().completion <= arrivals[ai]->arrival_cycle)) {
      now = inflight.top().completion;
    } else {
      now = arrivals[ai]->arrival_cycle;
    }

    // Completions first: workers freed at cycle T serve the queue before
    // cycle-T arrivals are admitted against it.
    while (!inflight.empty() && inflight.top().completion == now) {
      const InFlight f = inflight.top();
      inflight.pop();
      free_workers.push_back(f.worker);
      std::sort(free_workers.begin(), free_workers.end(), std::greater<>());
      for (const Request* r : f.reqs) {
        ++c.completed;
        ++tenants[f.tenant].stats.completed;
        const std::uint64_t lat = f.completion - r->arrival_cycle;
        latencies.push_back(lat);
        tenants[f.tenant].latencies.push_back(lat);
        ++m.batch_size_hist[static_cast<int>(f.reqs.size())];
        m.completions.push_back({r->id, f.tenant, r->arrival_cycle, f.start, f.completion,
                                 static_cast<int>(f.reqs.size())});
      }
      m.makespan_cycles = std::max(m.makespan_cycles, f.completion);
    }
    dispatch(now);

    // Admission: a request arriving with queue_capacity requests already
    // waiting is shed (load is bounded; latency never grows without bound).
    while (ai < arrivals.size() && arrivals[ai]->arrival_cycle == now) {
      const Request* r = arrivals[ai++];
      TenantState& ts = tenants[static_cast<std::size_t>(r->tenant)];
      if (queued_total >= opt_.queue_capacity) {
        ++c.shed;
        ++ts.stats.shed;
        continue;
      }
      ++c.accepted;
      ++ts.stats.accepted;
      if (ts.queue.empty()) ts.vtag = std::max(ts.vtag, global_vtime);
      ts.queue.push_back(r);
      ++queued_total;
    }
    dispatch(now);
  }

  // Aggregate metrics — everything from the virtual clock, so byte-identical
  // across hosts and host thread counts.
  std::sort(latencies.begin(), latencies.end());
  double sum = 0.0;
  for (const std::uint64_t l : latencies) sum += static_cast<double>(l);
  m.mean_cycles = latencies.empty() ? 0.0 : sum / static_cast<double>(latencies.size());
  m.p50_cycles = percentile(latencies, 0.50);
  m.p99_cycles = percentile(latencies, 0.99);
  m.p50_ms = opt_.spec.cycles_to_seconds(m.p50_cycles) * 1e3;
  m.p99_ms = opt_.spec.cycles_to_seconds(m.p99_cycles) * 1e3;
  const double makespan_s =
      opt_.spec.cycles_to_seconds(static_cast<double>(m.makespan_cycles));
  m.qps = makespan_s > 0.0 ? static_cast<double>(c.completed) / makespan_s : 0.0;
  m.cache_hit_rate = c.cache_lookups > 0
                         ? static_cast<double>(c.cache_hits) / static_cast<double>(c.cache_lookups)
                         : 0.0;
  m.worker_utilization =
      m.makespan_cycles > 0
          ? static_cast<double>(c.worker_busy_cycles) /
                (static_cast<double>(opt_.workers) * static_cast<double>(m.makespan_cycles))
          : 0.0;

  for (TenantState& ts : tenants) {
    std::sort(ts.latencies.begin(), ts.latencies.end());
    ts.stats.share = c.worker_busy_cycles > 0
                         ? static_cast<double>(ts.stats.busy_cycles) /
                               static_cast<double>(c.worker_busy_cycles)
                         : 0.0;
    ts.stats.p50_cycles = percentile(ts.latencies, 0.50);
    ts.stats.p99_cycles = percentile(ts.latencies, 0.99);
    m.tenants.push_back(ts.stats);
  }
  return m;
}

void write_metrics_json(JsonWriter& j, const Metrics& m) {
  j.begin_object();
  j.key("counters");
  j.begin_object();
  j.field("requests", m.counters.requests);
  j.field("accepted", m.counters.accepted);
  j.field("shed", m.counters.shed);
  j.field("completed", m.counters.completed);
  j.field("batches", m.counters.batches);
  j.field("batched_requests", m.counters.batched_requests);
  j.field("cache_lookups", m.counters.cache_lookups);
  j.field("cache_hits", m.counters.cache_hits);
  j.field("cache_misses", m.counters.cache_misses);
  j.field("tune_evals", m.counters.tune_evals);
  j.field("hazard_diags", m.counters.hazard_diags);
  j.field("sim_passes", m.counters.sim_passes);
  j.field("worker_busy_cycles", m.counters.worker_busy_cycles);
  j.end_object();
  j.field("makespan_cycles", m.makespan_cycles);
  j.field("mean_cycles", m.mean_cycles);
  j.field("p50_cycles", m.p50_cycles);
  j.field("p99_cycles", m.p99_cycles);
  j.field("p50_ms", m.p50_ms);
  j.field("p99_ms", m.p99_ms);
  j.field("qps", m.qps);
  j.field("cache_hit_rate", m.cache_hit_rate);
  j.field("worker_utilization", m.worker_utilization);
  j.key("batch_size_hist");
  j.begin_array();
  for (const auto& [batch, count] : m.batch_size_hist) {
    j.begin_object();
    j.field("batch", batch);
    j.field("requests", count);
    j.end_object();
  }
  j.end_array();
  j.key("bucket_occupancy");
  j.begin_array();
  for (const auto& [bucket, b] : m.bucket_occupancy) {
    j.begin_object();
    j.field("bucket", bucket);
    j.field("requests", b.requests);
    j.field("batches", b.batches);
    j.end_object();
  }
  j.end_array();
  j.key("tenants");
  j.begin_array();
  for (const TenantStats& t : m.tenants) {
    j.begin_object();
    j.field("tenant", t.tenant);
    j.field("weight", t.weight);
    j.field("accepted", t.accepted);
    j.field("shed", t.shed);
    j.field("completed", t.completed);
    j.field("busy_cycles", t.busy_cycles);
    j.field("share", t.share);
    j.field("p50_cycles", t.p50_cycles);
    j.field("p99_cycles", t.p99_cycles);
    j.end_object();
  }
  j.end_array();
  j.end_object();
}

}  // namespace tc::serve
