// Deterministic seeded traffic for the GEMM server.
//
// The stream mimics LLM-inference serving: a small palette of GEMM shapes
// (decode-step projections at a few batch sizes, an occasional large prefill)
// with a heavily skewed popularity distribution, Poisson-like arrivals, and
// tenants of unequal demand. Every draw flows through tc::Rng, so one seed
// reproduces the stream byte-for-byte — the serve tests and bench depend on
// that the same way the tuner tests depend on their seeds.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/serve.hpp"

namespace tc::serve {

struct TrafficOptions {
  int requests = 120;
  int tenants = 2;
  std::uint64_t seed = 1;
  /// Mean inter-arrival gap in device cycles (exponentially distributed).
  double mean_gap_cycles = 20000.0;
};

/// Generates `opt.requests` requests, ids 0..n-1 in arrival order.
[[nodiscard]] std::vector<Request> llm_traffic(const TrafficOptions& opt);

}  // namespace tc::serve
