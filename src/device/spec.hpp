// Device descriptions of the two GPUs the paper evaluates.
//
// Structural parameters (SM count, partitions, tensor cores, register file,
// shared memory) come from the Turing whitepaper; bandwidth calibration
// constants are the paper's *measured* Table II values — the simulator treats
// measured DRAM/L2 bandwidth as the device's sustained capability, so the
// microbenchmarks recover them and the roofline/HGEMM analysis inherits them.
#pragma once

#include <cstdint>
#include <string>

namespace tc::device {

/// Static description of a simulated Turing GPU.
struct DeviceSpec {
  std::string name;

  // --- compute structure ---
  int num_sms = 0;
  int processing_blocks_per_sm = 4;  // warp-scheduler sub-partitions
  int tensor_cores_per_pb = 2;
  int fp32_lanes_per_pb = 16;
  double sm_clock_ghz = 0.0;

  // --- per-SM resources ---
  int regs_per_sm = 64 * 1024;       // 32-bit registers
  int max_regs_per_thread = 256;
  std::uint32_t smem_per_sm = 64 * 1024;
  int max_threads_per_sm = 1024;
  int max_ctas_per_sm = 16;

  // --- memory system ---
  double dram_bw_theoretical_gbps = 0.0;
  double dram_bw_gbps = 0.0;  // sustained (paper Table II "measured")
  double l2_bw_gbps = 0.0;    // sustained (paper Table II "measured")
  std::uint64_t l2_size_bytes = 4ull * 1024 * 1024;
  /// L1 data cache per SM (96 KB unified minus the 64 KB smem carve-out).
  std::uint64_t l1_size_bytes = 32 * 1024;
  int l1_ways = 4;
  int l2_ways = 16;
  /// L2-to-SM return port (paper Table III implies 32 B/cycle: LDG.128 from
  /// L2 sustains one 512 B warp access per ~16 cycles).
  double l2_port_bytes_per_cycle = 32.0;
  /// Outstanding global sector-request groups per SM before the LSU stalls.
  int mshr_limit = 64;

  // --- latencies in SM cycles (Turing-class values) ---
  int lat_l1_hit = 32;
  int lat_l2_hit = 188;
  int lat_dram = 400;
  int lat_smem = 22;

  /// Host-side kernel launch overhead in SM cycles (~2.5 us at Turing
  /// clocks — the driver/runtime submission cost a multi-kernel GemmOp plan
  /// pays per launch; see tc::op::OpTiming). Batched GEMM amortizes it.
  std::uint64_t launch_overhead_cycles = 4000;

  /// Peak Tensor Core throughput in FLOP/s. Each tensor core retires 64
  /// FP16 FMAs (128 FLOP) per cycle.
  [[nodiscard]] double tensor_peak_flops() const {
    return static_cast<double>(num_sms) * processing_blocks_per_sm * tensor_cores_per_pb *
           64.0 * 2.0 * sm_clock_ghz * 1e9;
  }

  /// Peak FP16-unit (non-tensor) throughput: 4x lower than tensor cores.
  [[nodiscard]] double fp16_peak_flops() const { return tensor_peak_flops() / 4.0; }

  /// Sustained DRAM bandwidth in bytes per SM-clock cycle (whole device).
  [[nodiscard]] double dram_bytes_per_cycle() const {
    return dram_bw_gbps * 1e9 / (sm_clock_ghz * 1e9);
  }
  [[nodiscard]] double l2_bytes_per_cycle() const {
    return l2_bw_gbps * 1e9 / (sm_clock_ghz * 1e9);
  }

  /// One SM's fair share of device DRAM bandwidth, bytes/cycle.
  [[nodiscard]] double dram_bytes_per_cycle_per_sm() const {
    return dram_bytes_per_cycle() / num_sms;
  }
  [[nodiscard]] double l2_bytes_per_cycle_per_sm() const {
    return l2_bytes_per_cycle() / num_sms;
  }

  [[nodiscard]] double cycles_to_seconds(double cycles) const {
    return cycles / (sm_clock_ghz * 1e9);
  }
};

/// GeForce RTX 2070: TU106, 36 SMs @ ~1.62 GHz, 448 GB/s GDDR6.
[[nodiscard]] DeviceSpec rtx2070();

/// Tesla T4: TU104, 40 SMs @ 1.59 GHz (paper's locked clock), 320 GB/s GDDR6.
[[nodiscard]] DeviceSpec t4();

/// Looks up a spec by name ("rtx2070" or "t4"); throws on unknown name.
[[nodiscard]] DeviceSpec spec_by_name(const std::string& name);

}  // namespace tc::device
