#include "device/occupancy.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tc::device {

int allocated_regs_per_thread(int regs_used) {
  const int kGranule = 8;
  const int rounded = ((std::max(regs_used, 1) + kGranule - 1) / kGranule) * kGranule;
  return std::min(rounded, 256);
}

Occupancy occupancy(const DeviceSpec& spec, const sass::Program& prog) {
  TC_CHECK(prog.cta_threads > 0, "kernel has no threads");
  TC_CHECK(prog.num_regs <= spec.max_regs_per_thread,
           "kernel exceeds per-thread register limit");
  TC_CHECK(prog.smem_bytes <= spec.smem_per_sm, "kernel exceeds per-SM shared memory");

  const int threads = static_cast<int>(prog.cta_threads);
  const int regs_per_cta = allocated_regs_per_thread(prog.num_regs) * threads;

  const int by_regs = spec.regs_per_sm / std::max(regs_per_cta, 1);
  const int by_smem = prog.smem_bytes == 0
                          ? spec.max_ctas_per_sm
                          : static_cast<int>(spec.smem_per_sm / prog.smem_bytes);
  const int by_threads = spec.max_threads_per_sm / threads;
  const int by_slots = spec.max_ctas_per_sm;

  Occupancy occ;
  occ.ctas_per_sm = std::min({by_regs, by_smem, by_threads, by_slots});
  TC_CHECK(occ.ctas_per_sm >= 1, "kernel '" + prog.name + "' does not fit on one SM");
  occ.warps_per_sm = occ.ctas_per_sm * threads / 32;

  if (occ.ctas_per_sm == by_regs) {
    occ.limiter = Occupancy::Limiter::kRegisters;
  } else if (occ.ctas_per_sm == by_smem) {
    occ.limiter = Occupancy::Limiter::kSharedMem;
  } else if (occ.ctas_per_sm == by_threads) {
    occ.limiter = Occupancy::Limiter::kThreads;
  } else {
    occ.limiter = Occupancy::Limiter::kCtaSlots;
  }
  return occ;
}

const char* limiter_name(Occupancy::Limiter l) {
  switch (l) {
    case Occupancy::Limiter::kRegisters: return "registers";
    case Occupancy::Limiter::kSharedMem: return "shared-memory";
    case Occupancy::Limiter::kThreads: return "threads";
    case Occupancy::Limiter::kCtaSlots: return "cta-slots";
  }
  return "?";
}

}  // namespace tc::device
