// Occupancy calculator: how many CTAs of a kernel fit on one SM.
//
// Reproduces the "Active CTAs/SM" and "Active warps/SM" rows of the paper's
// Table VII for both our kernel and the cuBLAS 10.1 configuration.
#pragma once

#include "device/spec.hpp"
#include "sass/program.hpp"

namespace tc::device {

struct Occupancy {
  int ctas_per_sm = 0;
  int warps_per_sm = 0;
  /// Which resource capped the result (for diagnostics/tests).
  enum class Limiter { kRegisters, kSharedMem, kThreads, kCtaSlots } limiter =
      Limiter::kCtaSlots;
};

/// Registers are allocated per warp with the per-thread count rounded up to a
/// multiple of 8, matching the hardware allocation granularity.
[[nodiscard]] int allocated_regs_per_thread(int regs_used);

/// Computes occupancy of `prog` on `spec`; throws if the kernel cannot run
/// at all (zero CTAs fit).
[[nodiscard]] Occupancy occupancy(const DeviceSpec& spec, const sass::Program& prog);

[[nodiscard]] const char* limiter_name(Occupancy::Limiter l);

}  // namespace tc::device
