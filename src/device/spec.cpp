#include "device/spec.hpp"

#include "common/error.hpp"

namespace tc::device {

DeviceSpec rtx2070() {
  DeviceSpec d;
  d.name = "RTX2070";
  d.num_sms = 36;
  d.sm_clock_ghz = 1.62;  // boost clock; yields the paper's 59.7 TFLOPS peak
  d.dram_bw_theoretical_gbps = 448.0;
  d.dram_bw_gbps = 380.0;  // Table II measured
  d.l2_bw_gbps = 750.0;    // Table II measured
  d.l2_size_bytes = 4ull * 1024 * 1024;
  return d;
}

DeviceSpec t4() {
  DeviceSpec d;
  d.name = "T4";
  d.num_sms = 40;
  d.sm_clock_ghz = 1.59;  // paper locks the clock at 1590 MHz
  d.dram_bw_theoretical_gbps = 320.0;
  d.dram_bw_gbps = 238.0;  // Table II measured
  d.l2_bw_gbps = 910.0;    // Table II measured
  d.l2_size_bytes = 4ull * 1024 * 1024;
  return d;
}

DeviceSpec spec_by_name(const std::string& name) {
  if (name == "rtx2070" || name == "RTX2070") return rtx2070();
  if (name == "t4" || name == "T4") return t4();
  throw Error("unknown device: " + name + " (expected rtx2070 or t4)");
}

}  // namespace tc::device
