// Model-guided HGEMM autotuner over the scheduled kernel space.
//
// The paper's Table VI workflow, automated: enumerate every legal blocking /
// layout / interleave / prefetch configuration (space.hpp), rank all of them
// with the analytical pipe model (Eqs. (3)-(6) plus occupancy and wave
// composition — microseconds per candidate), then spend the timed-evaluation
// budget on the most promising survivors. Timed evaluation runs the fully
// scheduled kernel (PR 4's tc::sched, via core::hgemm_kernel) on the
// cycle-level simulator; every evaluated program is hard-gated through
// sass::validate and check::find_hazards first.
//
// Determinism: candidate enumeration, model ranking and the final sort use
// only fixed tie-broken orderings; exploration picks come from tc::Rng with
// the caller's seed; every simulator run uses the single-threaded lockstep
// device (sim threads = 1) regardless of how many *host* threads evaluate
// candidates concurrently. Same options in, bitwise-identical TuneResult
// out — tests/test_tune.cpp holds this across host thread counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "core/config.hpp"
#include "device/occupancy.hpp"
#include "device/spec.hpp"
#include "tune/space.hpp"

namespace tc::tune {

/// How the timed budget is spent.
enum class Engine {
  /// sim::TimedDevice full-grid makespan at the candidate's padded contract
  /// shape (skip_mma_math, model-pinned L2 hit rate — the same harness as
  /// `tcgemm_cli perf --engine device`). Cycle-level; intended for the
  /// small probe shapes the recorded baselines use.
  kTimedDevice,
  /// core::PerfEstimator: measured steady-state surrogate + wave
  /// composition. Handles paper-scale shapes (W = 4096+) where full-grid
  /// simulation is infeasible; this is what bench/table6_autotune uses.
  kWaveModel,
};

/// Analytic prediction for one candidate at the evaluation shape.
struct ModelScore {
  double cycles = 0.0;          // predicted kernel cycles (ranking key)
  double iter_cycles = 0.0;     // per-SM cycles per main-loop iteration
  double tensor_cycles = 0.0;   // Eq. (3), per CTA-iteration
  double memio_cycles = 0.0;    // Eqs. (4)+(5) with layout/interleave penalties
  double overhead_cycles = 0.0; // modeled prologue/epilogue per wave
  double waves = 0.0;
  double l2_hit_rate = 0.0;     // l2_reuse prediction used for DRAM demand
};

struct Candidate {
  core::HgemmConfig cfg;
  std::string name;  // cfg.name() plus "_nopf" when prefetch is disabled
  int regs = 0;
  device::Occupancy occ{};
  ModelScore model{};
  int model_rank = 0;  // 0-based position in the pure model ranking
  bool evaluated = false;
  bool explored = false;  // chosen by seeded exploration, not model rank
  // Valid when evaluated:
  std::uint64_t sim_cycles = 0;
  double seconds = 0.0;
  double tflops = 0.0;
  int sms_used = 0;
  std::size_t hazard_diags = 0;  // always 0 — the hard gate rejects otherwise
};

struct TuneOptions {
  GemmShape shape{256, 256, 64};
  /// Timed evaluations to spend. The acceptance bar (ISSUE 5) is finding
  /// the recorded optimized-kernel cycles within 64.
  int budget = 24;
  /// Of the budget, how many picks are drawn (seeded) from outside the
  /// model's top ranks — insurance against model blind spots. -1 = budget/4.
  int explore = -1;
  std::uint64_t seed = 1;
  /// Host threads evaluating candidates concurrently. Does not affect
  /// results: each evaluation owns its memory and a lockstep simulator.
  int threads = 1;
  Engine engine = Engine::kTimedDevice;
  SearchSpace space{};
};

struct TuneResult {
  device::DeviceSpec spec;
  TuneOptions opt;
  /// Evaluated candidates first, ascending sim_cycles; then unevaluated
  /// ones, ascending model cycles. Ties broken by (model cycles, name).
  std::vector<Candidate> ranked;
  PruneStats prune;

  /// The winner (ranked.front()); throws if nothing was evaluated.
  [[nodiscard]] const Candidate& best() const;
};

/// Analytic score of one legal candidate (exposed for tests/benches).
[[nodiscard]] ModelScore model_score(const device::DeviceSpec& spec,
                                     const core::HgemmConfig& cfg,
                                     const device::Occupancy& occ, const GemmShape& shape);

/// Model-predicted LDG L2 hit rate for `cfg` at `shape` — the value the
/// timed-device evaluation pins the shared L2 to. Exposed so other timed
/// harnesses (tc::serve's worker passes) evaluate kernels under exactly the
/// conditions the tuner's recorded winners were measured in.
[[nodiscard]] double predicted_l2_hit_rate(const device::DeviceSpec& spec,
                                           const core::HgemmConfig& cfg,
                                           const device::Occupancy& occ, const GemmShape& shape);

/// Runs the full search. Deterministic for fixed options (see file header).
[[nodiscard]] TuneResult tune(const device::DeviceSpec& spec, const TuneOptions& opt);

/// Fraction of evaluated candidate pairs whose model ordering disagrees
/// with the simulated ordering (0 = model ranks perfectly). The regression
/// suite bounds this so model drift is caught.
[[nodiscard]] double rank_inversion_rate(const TuneResult& r);

/// Display name for a config under tuning (adds the prefetch suffix that
/// HgemmConfig::name() omits).
[[nodiscard]] std::string candidate_name(const core::HgemmConfig& cfg);

[[nodiscard]] const char* engine_name(Engine e);

}  // namespace tc::tune
