// Persistent shape-bucketed tuning cache — the cublasLt-heuristics pattern.
//
// Production GEMM traffic is a stream of shapes; tuning is expensive and
// deterministic, so winners are computed once per *shape bucket* and reused
// bit-for-bit forever after. A CacheKey buckets the user shape (each of
// m/n/k rounds up to the next power of two with a floor of 64 — see
// docs/serving.md for the rationale and the pinned edge table), and a
// TuneCache maps keys to the tc::tune winner found at the bucket shape.
//
// The cache round-trips through a JSON file (`tc-tune-cache-v1`, written by
// common/json.hpp, read back by common/json_parse.hpp) so a server restart
// or an offline `tcgemm_cli tune --cache` pre-warm never re-tunes a bucket.
// Load is defensive: an entry whose config no longer passes the SearchSpace
// legality mirror, the SASS validator or the hazard detector is rejected
// with a diagnostic and simply re-tuned on next use — a stale or corrupt
// cache can cost time, never correctness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "core/config.hpp"
#include "device/spec.hpp"

namespace tc::tune {

/// Identity of one tuning bucket: device spec name + bucketed shape +
/// element dtype.
struct CacheKey {
  std::string device;
  std::size_t m = 0, n = 0, k = 0;  // bucket edges (power-of-two, >= 64)
  /// Element type of the bucket. Defaulted (PR-7 launch_order precedent) so
  /// existing v1 cache files — which predate the field — load unchanged;
  /// "f16" is the only type the kernel library generates today, and
  /// validate_cache_entry rejects anything else as unservable.
  std::string dtype = "f16";

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
  friend auto operator<=>(const CacheKey&, const CacheKey&) = default;

  /// "rtx2070:256x256x64" — stable display / map form. Only a non-default
  /// dtype marks the string ("rtx2070:256x256x64:bf16"), so every legacy
  /// display form is unchanged.
  [[nodiscard]] std::string str() const;
};

/// One shape dimension's bucket edge: the next power of two, floored at 64.
/// Pinned by a golden test so cache files stay forward-compatible.
[[nodiscard]] std::size_t bucket_dim(std::size_t v);

/// The bucket `shape` falls into on `spec`.
[[nodiscard]] CacheKey cache_key(const device::DeviceSpec& spec, const GemmShape& shape,
                                 const std::string& dtype = "f16");

/// The canonical shape a bucket is tuned at (its upper edges).
[[nodiscard]] GemmShape bucket_shape(const CacheKey& key);

/// One persisted winner: the full kernel config plus provenance, so a hit
/// reproduces the tuned kernel bit-for-bit and a reader can tell how the
/// entry was derived.
struct CacheEntry {
  CacheKey key;
  core::HgemmConfig cfg;
  std::uint64_t sim_cycles = 0;  // winner's simulated cycles at the bucket shape
  int budget = 0;                // timed evaluations the search spent
  std::uint64_t seed = 0;        // tuner seed
  std::string engine;            // tune::engine_name() of the search
};

/// Why load() dropped entries (and what it kept).
struct CacheLoadStats {
  std::size_t loaded = 0;
  std::size_t rejected = 0;
  std::vector<std::string> diagnostics;  // one line per rejected entry / parse failure
};

/// Validates one entry against the current build: spec must resolve, the
/// config must pass the SearchSpace legality mirror, and the generated
/// kernel must pass sass::validate + check::find_hazards at the bucket's
/// contract shape. Returns "" when servable, else a one-line diagnostic.
[[nodiscard]] std::string validate_cache_entry(const CacheEntry& e);

/// In-memory image of one cache file. Entries are kept sorted by key so
/// save() output is canonical (same winners -> byte-identical file).
class TuneCache {
 public:
  static constexpr const char* kSchema = "tc-tune-cache-v1";

  /// Parses a cache document. Malformed JSON or a wrong schema yields an
  /// *empty* cache plus a diagnostic (the server re-tunes; it never throws
  /// away a process over a bad cache file). Individually invalid entries
  /// are dropped with per-entry diagnostics.
  [[nodiscard]] static TuneCache from_json(std::string_view text,
                                           CacheLoadStats* stats = nullptr);

  /// from_json over a file; a missing file is an empty cache (cold start).
  [[nodiscard]] static TuneCache load(const std::string& path, CacheLoadStats* stats = nullptr);

  [[nodiscard]] std::string to_json() const;
  void save(const std::string& path) const;

  /// nullptr on miss. The pointer is invalidated by insert().
  [[nodiscard]] const CacheEntry* find(const CacheKey& key) const;

  /// Inserts or replaces the entry for e.key.
  void insert(CacheEntry e);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<CacheEntry>& entries() const { return entries_; }

 private:
  std::vector<CacheEntry> entries_;  // sorted by key
};

}  // namespace tc::tune
