// Legal kernel-configuration space of the blocked HGEMM generator.
//
// The tuner must never hand the builder a config it will reject, so the
// legality filter here mirrors *every* structural constraint downstream of
// it: HgemmConfig::check(), the generator's own demands (bn/wn a power of
// two, the misc+12 <= 254 register budget), and the device limits
// device::occupancy() enforces (per-thread registers, shared memory, the
// one-CTA-must-fit rule). tests/test_property.cpp asserts the mirror is
// exact: every config enumerate() emits builds and schedules cleanly, and
// the predicted register count / occupancy equal the built program's.
//
// LDG width is deliberately not a dimension: the generator stages slabs
// with LDG.128/STS.128 only (four 8-half tiles per instruction), so
// narrower widths would be a different generator, not a different config.
// docs/tuning.md discusses this.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "device/occupancy.hpp"
#include "device/spec.hpp"

namespace tc::tune {

/// Grids of candidate values per HgemmConfig knob; enumerate() takes their
/// cartesian product and filters. Defaults cover the paper's Table VI
/// blocking space plus the layout / interleave / prefetch ablations of
/// Figs. 4-5 and Table VII.
struct SearchSpace {
  std::vector<int> bm{64, 128, 256};
  std::vector<int> bn{64, 128, 256};
  std::vector<int> bk{32, 64, 128};
  std::vector<int> wm{16, 32, 64, 128, 256};
  std::vector<int> wn{8, 16, 32, 64, 128, 256};
  std::vector<core::SmemLayout> layouts{core::SmemLayout::kPaddedTile,
                                        core::SmemLayout::kTileMajor,
                                        core::SmemLayout::kNaiveRowMajor};
  std::vector<int> sts_interleave{1, 2, 5, 8};
  std::vector<bool> prefetch{true, false};
  /// CTA launch orders to search. The default keeps the legacy analytic
  /// swizzle only, so the stock space (and every recorded baseline) is
  /// unchanged; add concrete orders (kSupertile, ...) to tune dispatch.
  std::vector<model::LaunchOrder> launch_orders{model::LaunchOrder::kSwizzled};
  /// Panel widths tried for kSupertile. Orders that don't consume a width
  /// are enumerated once, carrying the canonical default width.
  std::vector<int> supertile_widths{8};
  /// Split-K factors tried (tc::op lowering: >1 means the 2-kernel
  /// main+reduce plan, costed with the inter-launch overhead). The default
  /// keeps the stock single-pass space — and every recorded baseline —
  /// unchanged; add powers of two to search skinny-K shapes.
  std::vector<int> split_ks{1};

  /// Number of raw cartesian points (before any legality filtering).
  [[nodiscard]] std::int64_t raw_points() const;
};

/// Why a raw cartesian point was rejected (prune accounting).
enum class Reject {
  kNone,
  kTiling,       // divisibility / warp-coverage rules of HgemmConfig::check()
  kGenerator,    // generator structure: bn/wn must be a power of two
  kRegisters,    // register budget (builder's R254 cap or spec's per-thread cap)
  kResources,    // smem over per-SM capacity, or zero CTAs fit on the SM
  kLaunchOrder,  // invalid supertile width, or a width on an order that ignores it
  kSplitK,       // split_k not a power of two in [1, 64]
};

[[nodiscard]] const char* reject_name(Reject r);

/// Verdict of the static legality filter for one config.
struct Legality {
  Reject reject = Reject::kNone;
  int regs = 0;             // predicted Program::num_regs (valid unless kTiling/kGenerator)
  device::Occupancy occ{};  // valid only when ok()
  [[nodiscard]] bool ok() const { return reject == Reject::kNone; }
};

/// Exact register count of the program hgemm_kernel() would emit for `cfg`
/// (mirrors the generator's register map; see kernel_gen.cpp).
[[nodiscard]] int predicted_regs(const core::HgemmConfig& cfg);

/// Classifies `cfg` against the full constraint stack without building it.
[[nodiscard]] Legality classify(const device::DeviceSpec& spec, const core::HgemmConfig& cfg);

/// Per-reason prune counters for one enumeration.
struct PruneStats {
  std::int64_t raw = 0;
  std::int64_t tiling = 0;
  std::int64_t generator = 0;
  std::int64_t registers = 0;
  std::int64_t resources = 0;
  std::int64_t launch_order = 0;
  std::int64_t split_k = 0;
  std::int64_t legal = 0;
  std::int64_t evaluated = 0;  // filled by tune(): configs run on the simulator
};

/// All legal configs of `space` on `spec`, in deterministic enumeration
/// order (bm-major, prefetch-minor). `stats`, when given, receives the
/// prune accounting.
[[nodiscard]] std::vector<core::HgemmConfig> enumerate(const device::DeviceSpec& spec,
                                                       const SearchSpace& space,
                                                       PruneStats* stats = nullptr);

}  // namespace tc::tune
