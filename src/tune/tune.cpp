#include "tune/tune.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <thread>

#include "check/hazard.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/hgemm.hpp"
#include "core/kernel_gen.hpp"
#include "mem/global_mem.hpp"
#include "model/blocking.hpp"
#include "model/l2_reuse.hpp"
#include "op/op.hpp"
#include "sass/diag.hpp"
#include "sass/validator.hpp"
#include "sim/launch.hpp"
#include "sim/timed_device.hpp"

namespace tc::tune {

namespace {

/// Average bank-serialization factor of the naive row-major layout's shared
/// memory accesses (Fig. 5): an 8x8 tile column strides bk*2 bytes, so the
/// 8 rows of a fragment land on the same bank.
constexpr double kNaiveBankConflict = 8.0;

}  // namespace

/// Model-predicted LDG L2 hit rate — the same l2_reuse inputs PerfEstimator
/// and validate_wave use, so pinned-hit-rate evaluation matches them.
double predicted_l2_hit_rate(const device::DeviceSpec& spec, const core::HgemmConfig& cfg,
                             const device::Occupancy& occ, const GemmShape& s) {
  model::L2ReuseInput ri;
  ri.bm = cfg.bm;
  ri.bn = cfg.bn;
  ri.bk = cfg.bk;
  ri.grid_x = s.n / static_cast<std::size_t>(cfg.bn);
  ri.grid_y = s.m / static_cast<std::size_t>(cfg.bm);
  ri.wave_ctas = spec.num_sms * occ.ctas_per_sm;
  ri.order = cfg.launch_order;
  ri.swizzle_max_grid_x = cfg.swizzle_max_grid_x;
  ri.supertile_width = cfg.supertile_width;
  ri.k_iters = std::ceil(static_cast<double>(s.k) / cfg.bk);
  ri.l2_capacity = spec.l2_size_bytes;
  return model::l2_reuse_predict(ri).ldg_l2_hit_rate;
}

namespace {

/// One timed-device evaluation: the validate_wave device-side harness
/// (skip_mma_math, lockstep, model-pinned L2 hit rate) over the full grid at
/// the candidate's padded contract shape.
void eval_timed_device(const device::DeviceSpec& spec, const GemmShape& user_shape,
                       Candidate& c) {
  const GemmShape s = c.cfg.contract_shape(user_shape);

  // Split-K candidates lower to the multi-kernel GemmOp plan (main pass +
  // reduction) and are costed with the inter-launch overhead, so they only
  // win when the extra parallelism actually pays for the second kernel.
  if (c.cfg.split_k > 1) {
    op::GemmOp gemm;
    gemm.shape = user_shape;
    gemm.split_k = c.cfg.split_k;
    const op::OpPlan plan = op::lower(gemm, c.cfg);
    const sass::Program& prog = plan.launches.front().program;
    c.hazard_diags = 0;  // time_gemm_op hard-gates every launch (throws on any)
    TC_CHECK(prog.num_regs == c.regs, "predicted register count diverged for " + c.name);
    const device::Occupancy built = device::occupancy(spec, prog);
    TC_CHECK(built.ctas_per_sm == c.occ.ctas_per_sm,
             "predicted occupancy diverged for " + c.name);

    op::TimedOpOptions topts;
    topts.threads = 1;  // lockstep: candidate-level parallelism lives in tune()
    topts.forced_l2_hit_rate = predicted_l2_hit_rate(spec, c.cfg, c.occ, s);
    const op::OpTiming t = op::time_gemm_op(spec, plan, topts);
    // Launches beyond the first carry the launch overhead; the first one's
    // cost is common to every candidate and cancels in the ranking.
    c.sim_cycles = t.total_extra_overhead(spec.launch_overhead_cycles);
    c.sms_used = t.main_sms_used;
    c.seconds = spec.cycles_to_seconds(static_cast<double>(c.sim_cycles));
    c.tflops = s.flops() / c.seconds / 1e12;
    return;
  }

  const sass::Program prog = core::hgemm_kernel(c.cfg, s);

  // Hard gate: no kernel reaches the simulator unvalidated.
  sass::validate(prog);
  const auto diags = check::find_hazards(prog);
  c.hazard_diags = diags.size();
  TC_CHECK(diags.empty(),
           "tuner built a hazardous kernel: " + c.name + " — " + sass::format(diags.front()));

  // The static space filter must have predicted this program exactly.
  TC_CHECK(prog.num_regs == c.regs, "predicted register count diverged for " + c.name);
  const device::Occupancy built = device::occupancy(spec, prog);
  TC_CHECK(built.ctas_per_sm == c.occ.ctas_per_sm, "predicted occupancy diverged for " + c.name);

  mem::GlobalMemory gmem;
  sim::Launch launch;
  launch.program = &prog;
  launch.grid_x = static_cast<std::uint32_t>(s.n / static_cast<std::size_t>(c.cfg.bn));
  launch.grid_y = static_cast<std::uint32_t>(s.m / static_cast<std::size_t>(c.cfg.bm));
  launch.launch_order = c.cfg.launch_order;
  launch.supertile_width = c.cfg.supertile_width;
  const auto a_addr = gmem.alloc(s.m * s.k * 2);
  const auto b_addr = gmem.alloc(s.n * s.k * 2);
  const auto c_addr = gmem.alloc(s.m * s.n * 2);
  launch.params = {a_addr, b_addr, c_addr};

  sim::TimedDeviceConfig dc;
  dc.spec = spec;
  dc.ctas_per_sm = c.occ.ctas_per_sm;
  dc.threads = 1;  // lockstep: candidate-level parallelism lives in tune()
  dc.skip_mma_math = true;
  dc.forced_l2_hit_rate = predicted_l2_hit_rate(spec, c.cfg, c.occ, s);
  sim::TimedDevice dev(dc, gmem);
  const sim::DeviceResult dr = dev.run(launch);

  c.sim_cycles = dr.device_cycles;
  c.sms_used = dr.sms_used;
  c.seconds = spec.cycles_to_seconds(static_cast<double>(dr.device_cycles));
  c.tflops = s.flops() / c.seconds / 1e12;
}

/// One wave-model evaluation: PerfEstimator's measured-surrogate pipeline
/// (handles paper-scale shapes). The kernel is still built and hard-gated.
void eval_wave_model(const device::DeviceSpec& spec, const GemmShape& user_shape,
                     Candidate& c) {
  const GemmShape s = c.cfg.contract_shape(user_shape);
  const sass::Program prog = core::hgemm_kernel(c.cfg, s);
  sass::validate(prog);
  const auto diags = check::find_hazards(prog);
  c.hazard_diags = diags.size();
  TC_CHECK(diags.empty(), "tuner built a hazardous kernel: " + c.name);
  TC_CHECK(prog.num_regs == c.regs, "predicted register count diverged for " + c.name);
  const device::Occupancy built = device::occupancy(spec, prog);
  TC_CHECK(built.ctas_per_sm == c.occ.ctas_per_sm, "predicted occupancy diverged for " + c.name);

  // PerfEstimator's surrogate pipeline is single-pass; split-K candidates
  // fall back to the split-aware analytic model score (still hard-gated
  // above).
  if (c.cfg.split_k > 1) {
    c.sim_cycles = static_cast<std::uint64_t>(std::llround(c.model.cycles));
    c.seconds = spec.cycles_to_seconds(c.model.cycles);
    c.tflops = user_shape.flops() / c.seconds / 1e12;
    c.sms_used = spec.num_sms;
    return;
  }

  core::PerfEstimator est(spec, c.cfg);
  const core::PerfPoint p = est.estimate(user_shape);
  const double iters = std::ceil(static_cast<double>(s.k) / c.cfg.bk);
  // Kernel cycles without the fixed host launch overhead, comparable to the
  // timed engine's device_cycles.
  const double kernel_cycles = p.waves * (p.overhead_cycles + iters * p.cycles_per_iter);
  c.sim_cycles = static_cast<std::uint64_t>(std::llround(kernel_cycles));
  c.seconds = p.seconds;
  c.tflops = p.tflops;
  c.sms_used = spec.num_sms;
}

}  // namespace

std::string candidate_name(const core::HgemmConfig& cfg) {
  return cfg.name() + (cfg.prefetch ? "" : "_nopf");
}

const char* engine_name(Engine e) {
  return e == Engine::kTimedDevice ? "timed-device" : "wave-model";
}

ModelScore model_score(const device::DeviceSpec& spec, const core::HgemmConfig& cfg,
                       const device::Occupancy& occ, const GemmShape& shape) {
  const GemmShape s = cfg.contract_shape(shape);
  // Split-K multiplies the grid by the slice count and divides the per-CTA
  // main-loop depth; the reduction pass is added to the total below.
  const double grid = static_cast<double>(s.m / static_cast<std::size_t>(cfg.bm)) *
                      static_cast<double>(s.n / static_cast<std::size_t>(cfg.bn)) *
                      cfg.split_k;
  const double iters = static_cast<double>(cfg.slice_k(s)) / cfg.bk;

  const model::BlockConfig b{cfg.bm, cfg.bn, cfg.bk, cfg.wm, cfg.wn, cfg.wk};
  const model::CpiSet cpi{};

  ModelScore ms;
  ms.tensor_cycles = model::hmma_cycles(b, cpi);
  double lds = model::lds_cycles(b, cpi);
  double ldgsts = model::ldg_sts_cycles(b, cpi);
  const double sts_part =
      static_cast<double>(cfg.bm + cfg.bn) * cfg.bk * 2.0 / (32.0 * 16.0) * cpi.sts128;
  double exposure = model::sts_exposed_cycles(b, cpi, cfg.sts_interleave);
  if (cfg.layout == core::SmemLayout::kNaiveRowMajor) {
    lds *= kNaiveBankConflict;
    ldgsts += sts_part * (kNaiveBankConflict - 1.0);
    exposure *= kNaiveBankConflict;
  }
  ms.memio_cycles = ldgsts + lds;
  ms.l2_hit_rate = predicted_l2_hit_rate(spec, cfg, occ, s);

  // TimedDevice primes SMs depth-first, so a small grid packs onto few SMs.
  const double sms_used =
      std::min<double>(spec.num_sms, std::ceil(grid / occ.ctas_per_sm));
  const double ctas_max = std::ceil(grid / sms_used);  // busiest SM's share
  const double resident = std::min<double>(occ.ctas_per_sm, ctas_max);
  ms.waves = std::ceil(ctas_max / resident);

  // Per-SM steady iteration: `resident` CTAs multiplex the four tensor
  // partitions and the MIO pipe (throughput terms scale), exposure stalls
  // are latency-like and counted once.
  const double blended_lat =
      ms.l2_hit_rate * spec.lat_l2_hit + (1.0 - ms.l2_hit_rate) * spec.lat_dram;
  double iter = std::max(resident * ms.tensor_cycles, resident * ms.memio_cycles) + exposure;
  if (!cfg.prefetch) iter += blended_lat;  // serialized LDG->STS each iteration

  // DRAM demand of the resident set vs the SM's share of sustained bandwidth.
  const double dram_bytes =
      resident * static_cast<double>(cfg.bm + cfg.bn) * cfg.bk * 2.0 * (1.0 - ms.l2_hit_rate);
  const double dram_share = spec.dram_bytes_per_cycle() / sms_used *
                            model::dram_row_efficiency(static_cast<double>(s.k) * 2.0);
  iter = std::max(iter, dram_bytes / dram_share);
  ms.iter_cycles = iter;

  // Wave overhead: first two slabs' fill latency plus the MIO port time of
  // the prologue loads and the C-store epilogue for the resident set.
  const double ldg_bytes = static_cast<double>(cfg.bm + cfg.bn) * cfg.bk * 2.0;
  const double c_bytes = static_cast<double>(cfg.bm) * cfg.bn * 2.0;
  ms.overhead_cycles =
      blended_lat + resident * (2.0 * ldg_bytes + c_bytes) / spec.l2_port_bytes_per_cycle;

  ms.cycles = ms.waves * (ms.overhead_cycles + iters * ms.iter_cycles);
  if (cfg.split_k > 1) {
    // Reduction pass (streaming: split_k partial planes in, one plane out,
    // DRAM-bound) plus one extra kernel launch.
    const double reduce_bytes =
        (cfg.split_k + 1.0) * static_cast<double>(s.m) * static_cast<double>(s.n) * 2.0;
    ms.cycles += reduce_bytes / spec.dram_bytes_per_cycle() +
                 static_cast<double>(spec.launch_overhead_cycles);
  }
  return ms;
}

const Candidate& TuneResult::best() const {
  TC_CHECK(!ranked.empty() && ranked.front().evaluated, "tune() evaluated no candidates");
  return ranked.front();
}

TuneResult tune(const device::DeviceSpec& spec, const TuneOptions& opt) {
  TC_CHECK(opt.budget >= 1, "tune budget must be >= 1");
  TC_CHECK(opt.threads >= 1, "tune threads must be >= 1");

  TuneResult r;
  r.spec = spec;
  r.opt = opt;

  // 1. Enumerate the legal space and attach static predictions.
  const auto configs = enumerate(spec, opt.space, &r.prune);
  TC_CHECK(!configs.empty(), "search space has no legal configurations on " + spec.name);
  std::vector<Candidate> cands;
  cands.reserve(configs.size());
  for (const auto& cfg : configs) {
    Candidate c;
    c.cfg = cfg;
    c.name = candidate_name(cfg);
    const Legality v = classify(spec, cfg);
    c.regs = v.regs;
    c.occ = v.occ;
    c.model = model_score(spec, cfg, v.occ, opt.shape);
    cands.push_back(std::move(c));
  }

  // 2. Model ranking (deterministic tie-breaks).
  std::sort(cands.begin(), cands.end(), [](const Candidate& a, const Candidate& b) {
    if (a.model.cycles != b.model.cycles) return a.model.cycles < b.model.cycles;
    return a.name < b.name;
  });
  for (std::size_t i = 0; i < cands.size(); ++i) cands[i].model_rank = static_cast<int>(i);

  // 3. Pick the evaluation set: the model's top ranks plus seeded
  //    exploration picks from the remainder.
  const int budget = std::min<int>(opt.budget, static_cast<int>(cands.size()));
  int explore = opt.explore < 0 ? budget / 4 : std::min(opt.explore, budget);
  if (budget >= static_cast<int>(cands.size())) explore = 0;
  const int top = budget - explore;
  std::vector<std::size_t> eval_ids;
  eval_ids.reserve(static_cast<std::size_t>(budget));
  for (int i = 0; i < top; ++i) eval_ids.push_back(static_cast<std::size_t>(i));
  if (explore > 0) {
    Rng rng(opt.seed);
    std::vector<std::size_t> rest;
    for (std::size_t i = static_cast<std::size_t>(top); i < cands.size(); ++i) rest.push_back(i);
    for (int e = 0; e < explore && !rest.empty(); ++e) {
      const auto pick = static_cast<std::size_t>(rng.next_below(rest.size()));
      eval_ids.push_back(rest[pick]);
      cands[rest[pick]].explored = true;
      rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }

  // 4. Evaluate. Host threads share an atomic work index; every evaluation
  //    owns its memory and runs the lockstep simulator, so results are
  //    independent of the worker count.
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(eval_ids.size());
  const auto worker = [&] {
    for (std::size_t w; (w = next.fetch_add(1)) < eval_ids.size();) {
      Candidate& c = cands[eval_ids[w]];
      try {
        if (opt.engine == Engine::kTimedDevice) {
          eval_timed_device(spec, opt.shape, c);
        } else {
          eval_wave_model(spec, opt.shape, c);
        }
        c.evaluated = true;
      } catch (...) {
        errors[w] = std::current_exception();
      }
    }
  };
  const int workers = std::min<int>(opt.threads, static_cast<int>(eval_ids.size()));
  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  r.prune.evaluated = static_cast<std::int64_t>(eval_ids.size());

  // 5. Final ranking: evaluated first by simulated cycles, then the
  //    unevaluated tail in model order.
  std::sort(cands.begin(), cands.end(), [](const Candidate& a, const Candidate& b) {
    if (a.evaluated != b.evaluated) return a.evaluated;
    if (a.evaluated && a.sim_cycles != b.sim_cycles) return a.sim_cycles < b.sim_cycles;
    if (a.model.cycles != b.model.cycles) return a.model.cycles < b.model.cycles;
    return a.name < b.name;
  });
  r.ranked = std::move(cands);
  return r;
}

double rank_inversion_rate(const TuneResult& r) {
  std::vector<const Candidate*> ev;
  for (const auto& c : r.ranked) {
    if (c.evaluated) ev.push_back(&c);
  }
  if (ev.size() < 2) return 0.0;
  std::int64_t pairs = 0;
  std::int64_t inverted = 0;
  for (std::size_t i = 0; i < ev.size(); ++i) {
    for (std::size_t j = i + 1; j < ev.size(); ++j) {
      if (ev[i]->sim_cycles == ev[j]->sim_cycles) continue;  // simulated tie: no order to invert
      ++pairs;
      const bool sim_less = ev[i]->sim_cycles < ev[j]->sim_cycles;
      const bool model_less = ev[i]->model.cycles < ev[j]->model.cycles;
      if (sim_less != model_less) ++inverted;
    }
  }
  return pairs == 0 ? 0.0 : static_cast<double>(inverted) / static_cast<double>(pairs);
}

}  // namespace tc::tune
