#include "tune/space.hpp"

#include <bit>

namespace tc::tune {

std::int64_t SearchSpace::raw_points() const {
  return static_cast<std::int64_t>(bm.size()) * static_cast<std::int64_t>(bn.size()) *
         static_cast<std::int64_t>(bk.size()) * static_cast<std::int64_t>(wm.size()) *
         static_cast<std::int64_t>(wn.size()) * static_cast<std::int64_t>(layouts.size()) *
         static_cast<std::int64_t>(sts_interleave.size()) *
         static_cast<std::int64_t>(prefetch.size()) *
         static_cast<std::int64_t>(launch_orders.size()) *
         static_cast<std::int64_t>(supertile_widths.size()) *
         static_cast<std::int64_t>(split_ks.size());
}

const char* reject_name(Reject r) {
  switch (r) {
    case Reject::kNone: return "legal";
    case Reject::kTiling: return "tiling";
    case Reject::kGenerator: return "generator";
    case Reject::kRegisters: return "registers";
    case Reject::kResources: return "resources";
    case Reject::kLaunchOrder: return "launch_order";
    case Reject::kSplitK: return "split_k";
  }
  return "?";
}

namespace {

/// Mirror of HgemmConfig::check() as a predicate (check() throws).
bool tiling_ok(const core::HgemmConfig& c) {
  if (c.bm <= 0 || c.bn <= 0 || c.bk <= 0 || c.wm <= 0 || c.wn <= 0) return false;
  if (c.wk != 8) return false;
  if (c.bm % c.wm != 0 || c.bn % c.wn != 0 || c.bk % c.wk != 0) return false;
  if (c.wm % 16 != 0 || c.wn % 8 != 0) return false;
  if (c.bm % 8 != 0 || c.bn % 8 != 0 || c.bk % 32 != 0) return false;
  const int warps = c.warps();
  if (c.threads() < 32 || c.threads() > 1024) return false;
  if ((c.bm / 8) * (c.bk / 8) / 4 % warps != 0) return false;
  if ((c.bn / 8) * (c.bk / 8) / 4 % warps != 0) return false;
  if ((c.bm / 8) % warps != 0 || (c.bn / 8) % warps != 0) return false;
  return c.sts_interleave >= 1;
}

/// Structural demands of HgemmGenerator beyond check().
bool generator_ok(const core::HgemmConfig& c) {
  return std::has_single_bit(static_cast<unsigned>(c.bn / c.wn));
}

/// Launch-order dimension: the supertile width must be a sane panel size
/// (mirrors HgemmConfig::check()'s >= 1 demand; the cap is a model-sanity
/// bound, panels wider than any real grid are meaningless).
bool launch_order_ok(const core::HgemmConfig& c) {
  return c.supertile_width >= 1 && c.supertile_width <= 1024;
}

/// Split-K dimension: mirror of HgemmConfig::check()'s power-of-two rule.
/// The z-offset prologue reuses staging/scratch registers, so split_k never
/// changes predicted_regs or occupancy.
bool split_k_ok(const core::HgemmConfig& c) {
  return c.split_k >= 1 && c.split_k <= 64 &&
         std::has_single_bit(static_cast<unsigned>(c.split_k));
}

}  // namespace

int predicted_regs(const core::HgemmConfig& cfg) {
  // Mirror of HgemmGenerator's register map (kernel_gen.cpp): fragment
  // double-buffers, aligned C accumulators, per-slab staging slots, then 12
  // misc registers; Program::num_regs is the highest index used + 1.
  const auto align4 = [](int r) { return (r + 3) & ~3; };
  const int a_frags = cfg.wm / 8;
  const int b_frags = cfg.wn / 8;
  const int acc_base = align4(2 * a_frags + 2 * b_frags);
  const int acc_count = (cfg.wm / 16) * (cfg.wn / 8) * 2;
  const int a_slots = (cfg.bm / 8) * (cfg.bk / 8) / 4 / cfg.warps();
  const int b_slots = (cfg.bn / 8) * (cfg.bk / 8) / 4 / cfg.warps();
  const int misc = align4(acc_base + acc_count) + 4 * (a_slots + b_slots);
  return misc + 12;
}

Legality classify(const device::DeviceSpec& spec, const core::HgemmConfig& cfg) {
  Legality v;
  if (!tiling_ok(cfg)) {
    v.reject = Reject::kTiling;
    return v;
  }
  if (!generator_ok(cfg)) {
    v.reject = Reject::kGenerator;
    return v;
  }
  if (!launch_order_ok(cfg)) {
    v.reject = Reject::kLaunchOrder;
    return v;
  }
  if (!split_k_ok(cfg)) {
    v.reject = Reject::kSplitK;
    return v;
  }
  v.regs = predicted_regs(cfg);
  // The generator's own budget is R0..R253 (num_regs <= 254); the spec may
  // cap lower still.
  if (v.regs > 254 || v.regs > spec.max_regs_per_thread) {
    v.reject = Reject::kRegisters;
    return v;
  }
  // Fit pre-check so device::occupancy() (which throws on zero fit) is only
  // called for configs that land on the SM.
  const int regs_per_cta = device::allocated_regs_per_thread(v.regs) * cfg.threads();
  if (cfg.smem_bytes() > spec.smem_per_sm || cfg.threads() > spec.max_threads_per_sm ||
      regs_per_cta > spec.regs_per_sm) {
    v.reject = Reject::kResources;
    return v;
  }
  sass::Program footprint;
  footprint.name = cfg.name();
  footprint.num_regs = v.regs;
  footprint.smem_bytes = cfg.smem_bytes();
  footprint.cta_threads = static_cast<std::uint32_t>(cfg.threads());
  v.occ = device::occupancy(spec, footprint);
  return v;
}

std::vector<core::HgemmConfig> enumerate(const device::DeviceSpec& spec,
                                         const SearchSpace& space, PruneStats* stats) {
  PruneStats local;
  std::vector<core::HgemmConfig> out;
  for (int bm : space.bm) {
    for (int bn : space.bn) {
      for (int bk : space.bk) {
        for (int wm : space.wm) {
          for (int wn : space.wn) {
            for (core::SmemLayout layout : space.layouts) {
              for (int il : space.sts_interleave) {
                for (bool pf : space.prefetch) {
                  for (model::LaunchOrder order : space.launch_orders) {
                    for (int sw : space.supertile_widths) {
                      for (int sk : space.split_ks) {
                        ++local.raw;
                        core::HgemmConfig cfg;
                        cfg.bm = bm;
                        cfg.bn = bn;
                        cfg.bk = bk;
                        cfg.wm = wm;
                        cfg.wn = wn;
                        cfg.layout = layout;
                        cfg.sts_interleave = il;
                        cfg.prefetch = pf;
                        cfg.launch_order = order;
                        cfg.supertile_width = sw;
                        cfg.split_k = sk;
                        // Orders that ignore the width collapse onto one
                        // config: only the first width value is enumerated,
                        // the rest are duplicate points pruned by reason.
                        if (order != model::LaunchOrder::kSupertile &&
                            sw != space.supertile_widths.front()) {
                          ++local.launch_order;
                          continue;
                        }
                        const Legality v = classify(spec, cfg);
                        switch (v.reject) {
                          case Reject::kTiling: ++local.tiling; break;
                          case Reject::kGenerator: ++local.generator; break;
                          case Reject::kRegisters: ++local.registers; break;
                          case Reject::kResources: ++local.resources; break;
                          case Reject::kLaunchOrder: ++local.launch_order; break;
                          case Reject::kSplitK: ++local.split_k; break;
                          case Reject::kNone:
                            ++local.legal;
                            out.push_back(cfg);
                            break;
                        }
                      }
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace tc::tune
