#include "tune/cache.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "check/hazard.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/json_parse.hpp"
#include "core/kernel_gen.hpp"
#include "sass/validator.hpp"
#include "sim/cta_order.hpp"
#include "tune/space.hpp"

namespace tc::tune {

namespace {

const char* layout_name(core::SmemLayout l) {
  switch (l) {
    case core::SmemLayout::kPaddedTile: return "padded_tile";
    case core::SmemLayout::kTileMajor: return "tile_major";
    case core::SmemLayout::kNaiveRowMajor: return "naive_row_major";
  }
  return "?";
}

core::SmemLayout layout_from_name(const std::string& s) {
  if (s == "padded_tile") return core::SmemLayout::kPaddedTile;
  if (s == "tile_major") return core::SmemLayout::kTileMajor;
  if (s == "naive_row_major") return core::SmemLayout::kNaiveRowMajor;
  throw Error("unknown smem layout '" + s + "' in cache entry");
}

int int_field(const JsonValue& o, const char* key) {
  return static_cast<int>(o.at(key).as_number());
}

CacheEntry entry_from_json(const JsonValue& v) {
  CacheEntry e;
  e.key.device = v.at("device").as_string();
  e.key.m = static_cast<std::size_t>(v.at("m").as_number());
  e.key.n = static_cast<std::size_t>(v.at("n").as_number());
  e.key.k = static_cast<std::size_t>(v.at("k").as_number());
  // dtype postdates the v1 schema: absence == the f16 default, no bump.
  if (v.has("dtype")) e.key.dtype = v.at("dtype").as_string();
  const JsonValue& c = v.at("config");
  e.cfg.bm = int_field(c, "bm");
  e.cfg.bn = int_field(c, "bn");
  e.cfg.bk = int_field(c, "bk");
  e.cfg.wm = int_field(c, "wm");
  e.cfg.wn = int_field(c, "wn");
  e.cfg.wk = int_field(c, "wk");
  e.cfg.layout = layout_from_name(c.at("layout").as_string());
  e.cfg.sts_interleave = int_field(c, "sts_interleave");
  e.cfg.prefetch = c.at("prefetch").as_bool();
  // Launch-order fields postdate the v1 schema; caches written before them
  // carry the defaults (the legacy analytic swizzle), so absence == default
  // and no schema bump is needed.
  if (c.has("launch_order")) {
    e.cfg.launch_order = sim::launch_order_from_name(c.at("launch_order").as_string());
  }
  if (c.has("supertile_width")) {
    e.cfg.supertile_width = int_field(c, "supertile_width");
  }
  // split_k postdates the v1 schema too: absent == 1 (single-pass kernel).
  if (c.has("split_k")) {
    e.cfg.split_k = int_field(c, "split_k");
  }
  e.sim_cycles = static_cast<std::uint64_t>(v.at("sim_cycles").as_number());
  e.budget = int_field(v, "budget");
  e.seed = static_cast<std::uint64_t>(v.at("seed").as_number());
  e.engine = v.at("engine").as_string();
  return e;
}

void entry_to_json(JsonWriter& j, const CacheEntry& e) {
  j.begin_object();
  j.field("device", e.key.device);
  j.field("m", static_cast<std::uint64_t>(e.key.m));
  j.field("n", static_cast<std::uint64_t>(e.key.n));
  j.field("k", static_cast<std::uint64_t>(e.key.k));
  j.field("dtype", e.key.dtype);
  j.key("config");
  j.begin_object();
  j.field("bm", e.cfg.bm);
  j.field("bn", e.cfg.bn);
  j.field("bk", e.cfg.bk);
  j.field("wm", e.cfg.wm);
  j.field("wn", e.cfg.wn);
  j.field("wk", e.cfg.wk);
  j.field("layout", layout_name(e.cfg.layout));
  j.field("sts_interleave", e.cfg.sts_interleave);
  j.field("prefetch", e.cfg.prefetch);
  j.field("launch_order", sim::launch_order_name(e.cfg.launch_order));
  j.field("supertile_width", e.cfg.supertile_width);
  j.field("split_k", e.cfg.split_k);
  j.end_object();
  j.field("sim_cycles", e.sim_cycles);
  j.field("budget", e.budget);
  j.field("seed", e.seed);
  j.field("engine", e.engine);
  j.end_object();
}

}  // namespace

std::string CacheKey::str() const {
  std::string s =
      device + ":" + std::to_string(m) + "x" + std::to_string(n) + "x" + std::to_string(k);
  if (dtype != "f16") s += ":" + dtype;
  return s;
}

std::size_t bucket_dim(std::size_t v) {
  std::size_t b = 64;
  while (b < v) b *= 2;
  return b;
}

CacheKey cache_key(const device::DeviceSpec& spec, const GemmShape& shape,
                   const std::string& dtype) {
  return {spec.name, bucket_dim(shape.m), bucket_dim(shape.n), bucket_dim(shape.k), dtype};
}

GemmShape bucket_shape(const CacheKey& key) { return {key.m, key.n, key.k}; }

std::string validate_cache_entry(const CacheEntry& e) {
  device::DeviceSpec spec;
  try {
    spec = device::spec_by_name(e.key.device);
  } catch (const Error&) {
    return e.key.str() + ": unknown device spec '" + e.key.device + "'";
  }
  if (e.key.dtype != "f16") {
    return e.key.str() + ": unsupported dtype '" + e.key.dtype +
           "' (the kernel library generates f16 only)";
  }
  // The static legality mirror first: cheap, and the builder would throw on
  // anything it rejects.
  Legality v{};
  try {
    v = classify(spec, e.cfg);
  } catch (const Error& err) {
    return e.key.str() + ": config rejected by legality filter (" + err.what() + ")";
  }
  if (!v.ok()) {
    return e.key.str() + ": config fails SearchSpace legality (" +
           std::string(reject_name(v.reject)) + ")";
  }
  // Then the full gate the tuner applies to every evaluated kernel: build at
  // the bucket's contract shape, validate, scan for hazards.
  try {
    const GemmShape s = e.cfg.contract_shape(bucket_shape(e.key));
    const sass::Program prog = core::hgemm_kernel(e.cfg, s);
    sass::validate(prog);
    const auto diags = check::find_hazards(prog);
    if (!diags.empty()) {
      return e.key.str() + ": cached kernel fails the hazard gate (" +
             sass::format(diags.front()) + ")";
    }
  } catch (const Error& err) {
    return e.key.str() + ": cached kernel fails validation (" + std::string(err.what()) + ")";
  }
  return {};
}

TuneCache TuneCache::from_json(std::string_view text, CacheLoadStats* stats) {
  TuneCache cache;
  CacheLoadStats local;
  CacheLoadStats& st = stats != nullptr ? *stats : local;
  JsonValue doc;
  try {
    doc = json_parse(text);
    TC_CHECK(doc.is_object() && doc.has("schema"), "not a cache document");
    TC_CHECK(doc.at("schema").as_string() == kSchema,
             "schema is '" + doc.at("schema").as_string() + "', expected " + kSchema);
    for (const JsonValue& v : doc.at("entries").as_array()) {
      CacheEntry e;
      try {
        e = entry_from_json(v);
      } catch (const Error& err) {
        ++st.rejected;
        st.diagnostics.push_back(std::string("malformed cache entry: ") + err.what());
        continue;
      }
      const std::string diag = validate_cache_entry(e);
      if (!diag.empty()) {
        ++st.rejected;
        st.diagnostics.push_back(diag);
        continue;
      }
      ++st.loaded;
      cache.insert(std::move(e));
    }
  } catch (const Error& err) {
    st.diagnostics.push_back(std::string("unreadable tuning cache: ") + err.what());
    return TuneCache{};  // a bad file is a cold start, never a crashed server
  }
  return cache;
}

TuneCache TuneCache::load(const std::string& path, CacheLoadStats* stats) {
  std::ifstream is(path);
  if (!is.good()) return TuneCache{};  // missing file: cold start
  std::ostringstream ss;
  ss << is.rdbuf();
  return from_json(ss.str(), stats);
}

std::string TuneCache::to_json() const {
  std::ostringstream os;
  JsonWriter j(os);
  j.begin_object();
  j.field("schema", kSchema);
  j.key("entries");
  j.begin_array();
  for (const auto& e : entries_) entry_to_json(j, e);
  j.end_array();
  j.end_object();
  os << "\n";
  return os.str();
}

void TuneCache::save(const std::string& path) const {
  std::ofstream os(path);
  TC_CHECK(os.good(), "cannot open tuning cache " + path + " for writing");
  os << to_json();
}

const CacheEntry* TuneCache::find(const CacheKey& key) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const CacheEntry& e, const CacheKey& k) { return e.key < k; });
  if (it == entries_.end() || !(it->key == key)) return nullptr;
  return &*it;
}

void TuneCache::insert(CacheEntry e) {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), e.key,
      [](const CacheEntry& a, const CacheKey& k) { return a.key < k; });
  if (it != entries_.end() && it->key == e.key) {
    *it = std::move(e);
  } else {
    entries_.insert(it, std::move(e));
  }
}

}  // namespace tc::tune
