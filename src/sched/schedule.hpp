// Automatic SASS control-word scheduler.
//
// Takes a *virtual* sass::Program — instructions in semantic order with
// default control words (stall 1, no scoreboard barriers, no wait masks) —
// and produces a fully scheduled one against the shared latency table
// (sass/latency.hpp), the same table the timed simulator executes and the
// static hazard detector (check::find_hazards) analyzes. Pass pipeline:
//
//  1. block partition — straight-line regions bounded by branch targets and
//     BRA/EXIT, mirroring the detector's segment structure; a BAR.SYNC does
//     not end a block but acts as a full fence inside one;
//  2. within-block list scheduling (optional) — greedy, latency-aware,
//     lowest-original-index priority; memory, control, and load-consuming
//     instructions are *anchored* (never issue before any earlier
//     instruction) so the pass only hoists fixed-latency ALU work into
//     stall shadows and never migrates a scoreboard wait;
//  3. minimal stall assignment — longest-path issue times over RAW/WAW/
//     predicate dependence edges weighted with the shared latency table;
//     gaps wider than the 4-bit stall field become NOP padding, and
//     loop-carried dependences of single-block self-loops constrain the
//     back edge (branch redirect included);
//  4. scoreboard allocation — every load demands a write barrier waited at
//     its first consumer, every store demands a read barrier waited at the
//     first overwriter of its sources; demands are colored onto the six
//     hardware barriers by interval interference (sharing a barrier is
//     always legal, it only over-synchronizes); BAR.SYNC drains outstanding
//     shared-memory-read barriers, EXIT drains everything still armed;
//     per-consumer waits whose (setter, waiter] window already contains a
//     kept wait on the same barrier are elided — a wait releases every op
//     counted on the barrier, so one wait per group suffices;
//  5. redundant-wait elimination — wait bits the detector would prove
//     useless at every visit (including the second walk of an unrolled
//     self-loop) are dropped;
//  6. register reuse flags — back-to-back same-pipe instructions reading
//     the same register in the same operand slot get the slot's reuse bit
//     (perf-inert in the model, kept representable per the paper).
//
// The result is verified: sass::validate() plus check::find_hazards() with
// zero diagnostics is a hard postcondition (ScheduleOptions::verify).
#pragma once

#include <cstdint>

#include "sass/latency.hpp"
#include "sass/program.hpp"

namespace tc::sched {

struct ScheduleOptions {
  /// Enables the within-block list-scheduling pass. When false the program
  /// keeps its semantic order and only receives stalls/barriers/waits —
  /// the "minimally correct" schedule used as the comparison baseline by
  /// `tcgemm_cli schedule`.
  bool reorder = true;
  /// Assigns register reuse-cache flags (pass 6).
  bool assign_reuse = true;
  /// Latency oracle; defaults to the shared table the simulator executes.
  sass::LatencyFn fixed = &sass::fixed_latency;
  int predicate_latency = sass::kPredicateLatency;
  int branch_redirect = sass::kBranchRedirectCycles;
  /// Hard-gate the result through validate() + find_hazards() (throws
  /// tc::Error when any diagnostic survives). Disable only in tests that
  /// probe the passes individually.
  bool verify = true;
};

/// Counters describing what the pipeline did; filled by schedule().
struct ScheduleStats {
  int instructions = 0;    ///< final instruction count (including NOP padding)
  int nops_inserted = 0;   ///< NOPs added for stall gaps > 15
  int reordered = 0;       ///< instructions moved off their original position
  int barriers_used = 0;   ///< distinct scoreboard barriers allocated
  int waits_placed = 0;    ///< wait-mask bits surviving in the final program
  int waits_elided = 0;    ///< per-consumer waits covered by an earlier wait
  int waits_dropped = 0;   ///< wait-mask bits removed as provably redundant
  int waits_hoisted = 0;   ///< loop waits moved to the preheader
  int reuse_flags = 0;     ///< reuse bits set
  std::int64_t static_issue_cycles = 0;  ///< sum of final stall counts
};

/// Schedules `virt` (a latency-agnostic program: every control word must be
/// the default except predicates and yield hints) and returns the scheduled
/// program. Throws tc::Error if `virt` already carries manual scheduling,
/// or — with opts.verify — if the result fails the hazard oracle.
[[nodiscard]] sass::Program schedule(const sass::Program& virt, const ScheduleOptions& opts,
                                     ScheduleStats& stats);
[[nodiscard]] sass::Program schedule(const sass::Program& virt, const ScheduleOptions& opts = {});

}  // namespace tc::sched
